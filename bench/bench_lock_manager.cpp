// Micro-benchmarks of the lock manager (paper §1.1 asks for "avoiding
// excessive overhead for managing locks or performing conflict tests"):
// acquire/release cycles per protocol, the cost of the Figure 9 conflict
// test as ancestor chains deepen and lock tables fill, and the raw
// commutativity lookup.
#include <benchmark/benchmark.h>

#include "cc/compatibility.h"
#include "cc/lock_manager.h"

namespace semcc {
namespace {

constexpr TypeId kT = 1;

CompatibilityRegistry* Registry() {
  static CompatibilityRegistry* reg = [] {
    auto* r = new CompatibilityRegistry();
    r->Define(kT, "Ma", "Mb", true);
    r->Define(kT, "Ma", "Ma", false);
    r->Define(kT, "Mb", "Mb", true);
    r->DefinePredicate(kT, "Pa", "Pb", [](const Args& a, const Args& b) {
      return !a.empty() && !b.empty() && !(a[0] == b[0]);
    });
    return r;
  }();
  return reg;
}

void BM_SemanticAcquireRelease(benchmark::State& state) {
  ProtocolOptions opts;
  LockManager lm(opts, Registry());
  for (auto _ : state) {
    TxnTree tree(TxnTree::NextId(), "T", kDatabaseOid, 0);
    SubTxn* n = tree.NewNode(tree.root(), 7, kT, "Ma", {});
    benchmark::DoNotOptimize(lm.Acquire(n, LockTarget::ForObject(7), true));
    n->set_state(TxnState::kCommitted);
    lm.OnSubTxnCompleted(n);
    tree.root()->set_state(TxnState::kCommitted);
    lm.OnSubTxnCompleted(tree.root());
    lm.ReleaseTree(tree.root());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SemanticAcquireRelease);

void BM_Flat2plAcquireRelease(benchmark::State& state) {
  ProtocolOptions opts;
  opts.protocol = Protocol::kFlat2PL;
  LockManager lm(opts, Registry());
  for (auto _ : state) {
    TxnTree tree(TxnTree::NextId(), "T", kDatabaseOid, 0);
    SubTxn* n = tree.NewNode(tree.root(), 7, kT, generic_ops::kPut, {});
    benchmark::DoNotOptimize(lm.Acquire(n, LockTarget::ForObject(7), true));
    n->set_state(TxnState::kCommitted);
    lm.OnSubTxnCompleted(n);
    tree.root()->set_state(TxnState::kCommitted);
    lm.OnSubTxnCompleted(tree.root());
    lm.ReleaseTree(tree.root());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Flat2plAcquireRelease);

/// Cost of the Figure 9 test against a holder tree of the given depth, with
/// the commuting pair sitting at the top (worst-case full chain walk).
void BM_TestConflictAncestorWalk(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  ProtocolOptions opts;
  LockManager lm(opts, Registry());
  // Holder: root -> Ma(obj 1) -> Ma(obj 2) -> ... -> leaf Put(obj 99).
  TxnTree holder(TxnTree::NextId(), "H", kDatabaseOid, 0);
  SubTxn* cur = holder.root();
  for (int d = 0; d < depth; ++d) {
    cur = holder.NewNode(cur, static_cast<Oid>(d == 0 ? 1 : 100 + d), kT, "Ma", {});
    (void)lm.Acquire(cur, LockTarget::ForObject(cur->object()), true);
  }
  SubTxn* leaf = holder.NewNode(cur, 99, 0, generic_ops::kPut, {Value(1)});
  (void)lm.Acquire(leaf, LockTarget::ForObject(99), true);
  // Complete bottom-up so the locks are retained and Case 1 applies.
  leaf->set_state(TxnState::kCommitted);
  lm.OnSubTxnCompleted(leaf);
  for (SubTxn* n = cur; n != holder.root(); n = n->parent()) {
    n->set_state(TxnState::kCommitted);
    lm.OnSubTxnCompleted(n);
  }
  for (auto _ : state) {
    TxnTree req(TxnTree::NextId(), "R", kDatabaseOid, 0);
    SubTxn* mb = req.NewNode(req.root(), 1, kT, "Mb", {});
    SubTxn* get = req.NewNode(mb, 99, 0, generic_ops::kGet, {});
    benchmark::DoNotOptimize(lm.Acquire(mb, LockTarget::ForObject(1), true));
    benchmark::DoNotOptimize(lm.Acquire(get, LockTarget::ForObject(99), false));
    lm.ReleaseTree(req.root());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TestConflictAncestorWalk)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/// Scan cost against a queue of n compatible retained locks on one object.
void BM_AcquireWithManyHolders(benchmark::State& state) {
  const int holders = static_cast<int>(state.range(0));
  ProtocolOptions opts;
  LockManager lm(opts, Registry());
  std::vector<std::unique_ptr<TxnTree>> trees;
  for (int i = 0; i < holders; ++i) {
    trees.push_back(
        std::make_unique<TxnTree>(TxnTree::NextId(), "H", kDatabaseOid, 0));
    SubTxn* n = trees.back()->NewNode(trees.back()->root(), 7, kT, "Mb", {});
    (void)lm.Acquire(n, LockTarget::ForObject(7), true);
  }
  for (auto _ : state) {
    TxnTree req(TxnTree::NextId(), "R", kDatabaseOid, 0);
    SubTxn* n = req.NewNode(req.root(), 7, kT, "Mb", {});
    benchmark::DoNotOptimize(lm.Acquire(n, LockTarget::ForObject(7), true));
    lm.ReleaseTree(req.root());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AcquireWithManyHolders)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

/// §5.4 tentpole measurement: a transaction re-acquiring the same semantic
/// lock class over and over (the QuantityOnHand read-modify-write shape)
/// against a queue pre-filled with foreign commuting holders. With the fast
/// path off (Arg 0) every re-acquire pays a full-queue commute scan plus a
/// fresh LockEntry; with it on (Arg 1) warm re-acquires are a grant-cache
/// hit — no shard mutex, no allocation. run_bench.sh records this pair in
/// BENCH_lockpath.json; the ON/OFF real_time ratio is the tracked speedup.
void BM_RepeatedReacquire(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  ProtocolOptions opts;
  opts.debug_lock_checks = false;
  opts.lock_fast_path = fast;
  opts.coalesce_entries = fast;
  opts.memoize_conflicts = fast;
  opts.pool_entries = fast;
  LockManager lm(opts, Registry());
  // Foreign holders: 64 trees with granted commuting Mb locks on the target,
  // so the slow path scans a realistic hot-object queue every time.
  constexpr Oid kHot = 7;
  std::vector<std::unique_ptr<TxnTree>> holders;
  for (int i = 0; i < 64; ++i) {
    holders.push_back(
        std::make_unique<TxnTree>(TxnTree::NextId(), "H", kDatabaseOid, 0));
    SubTxn* n = holders.back()->NewNode(holders.back()->root(), kHot, kT,
                                        "Mb", {});
    (void)lm.Acquire(n, LockTarget::ForObject(kHot), true);
  }
  constexpr int kReacquires = 256;
  for (auto _ : state) {
    TxnTree tree(TxnTree::NextId(), "R", kDatabaseOid, 0);
    for (int i = 0; i < kReacquires; ++i) {
      SubTxn* n = tree.NewNode(tree.root(), kHot, kT, "Mb", {});
      benchmark::DoNotOptimize(lm.Acquire(n, LockTarget::ForObject(kHot), true));
      n->set_state(TxnState::kCommitted);
      lm.OnSubTxnCompleted(n);
    }
    lm.ReleaseTree(tree.root());
  }
  state.SetItemsProcessed(state.iterations() * kReacquires);
}
BENCHMARK(BM_RepeatedReacquire)->ArgNames({"fastpath"})->Arg(0)->Arg(1);

void BM_CommuteStaticLookup(benchmark::State& state) {
  CompatibilityRegistry* reg = Registry();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg->Commute(kT, "Ma", {}, "Mb", {}));
  }
}
BENCHMARK(BM_CommuteStaticLookup);

void BM_CommutePredicateLookup(benchmark::State& state) {
  CompatibilityRegistry* reg = Registry();
  Args a{Value(1)};
  Args b{Value(2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg->Commute(kT, "Pa", a, "Pb", b));
  }
}
BENCHMARK(BM_CommutePredicateLookup);

void BM_CommuteGenericRule(benchmark::State& state) {
  CompatibilityRegistry* reg = Registry();
  Args a{Value(1), Value::Ref(5)};
  Args b{Value(2)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reg->Commute(99, generic_ops::kInsert, a, generic_ops::kRemove, b));
  }
}
BENCHMARK(BM_CommuteGenericRule);

}  // namespace
}  // namespace semcc

BENCHMARK_MAIN();
