# Bench targets are built into build/bench/ (executables only), so that
#   for b in build/bench/*; do $b; done
# runs every benchmark without tripping over CMake artifacts.
function(semcc_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} semcc_orderentry semcc_core benchmark::benchmark)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

semcc_bench(bench_matrices)
semcc_bench(bench_fig4_interleaving)
semcc_bench(bench_fig5_bypass)
semcc_bench(bench_fig6_case1)
semcc_bench(bench_fig7_case2)
semcc_bench(bench_throughput)
semcc_bench(bench_contention)
semcc_bench(bench_mix)
semcc_bench(bench_ablation)
semcc_bench(bench_lock_manager)
semcc_bench(bench_storage)
semcc_bench(bench_recovery)
