// Reproduces paper Figure 7 (Case 2 — commutative but not yet committed
// ancestor): T1 is parked inside ShipOrder(i1, o1) after its
// ChangeStatus(o1, shipped) child committed; T5 runs TotalPayment(i1), which
// bypasses Order encapsulation by reading o1.Status directly. The Get
// conflicts with the retained Put(o1.Status); the commuting ancestor pair
// (ShipOrder(i1,o1), TotalPayment(i1)) is found but the ShipOrder side is
// still active, so T5 waits exactly until that *subtransaction* completes —
// not until T1's top-level commit.
#include <cstdio>

#include "app/orderentry/scenario.h"

using namespace semcc;
using namespace semcc::orderentry;

namespace {

void RunUnder(const char* name, bool ancestor_walk) {
  ProtocolOptions opts;
  opts.ancestor_walk = ancestor_walk;
  auto s = MakePaperScenario(opts).ValueOrDie();
  ScenarioOutcome out = RunFig7(s.get());
  std::printf("--- %s ---\n", name);
  std::printf("%s\n", out.note.c_str());
  std::printf("T5 finished before T1 committed: %s\n\n",
              out.right_overlapped_left
                  ? "YES (resumed at ShipOrder completion — Case 2)"
                  : "no (had to wait for T1's top-level commit)");
}

}  // namespace

int main() {
  std::printf("== Paper Figure 7: Conflicting Actions with Commutative but "
              "not yet Committed Ancestors (Case 2) ==\n\n");
  RunUnder("paper protocol (commutative-ancestor test ON)", true);
  RunUnder("ablation (commutative-ancestor test OFF)", false);
  std::printf("Expected shape: with the test ON, T5 blocks while "
              "ShipOrder(i1,o1) is active\n(case2 >= 1) and resumes on the "
              "subtransaction's completion, well before T1's\ncommit; with "
              "the test OFF it waits for the top-level commit.\n");
  return 0;
}
