// Micro-benchmarks of the storage substrate and object store.
#include <benchmark/benchmark.h>

#include "object/object_store.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/record_manager.h"

namespace semcc {
namespace {

void BM_PageInsert(benchmark::State& state) {
  Page page;
  page.Reset(0);
  const std::string rec(64, 'x');
  for (auto _ : state) {
    auto r = page.Insert(rec);
    if (!r.ok()) page.Reset(0);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PageInsert);

void BM_PageRead(benchmark::State& state) {
  Page page;
  page.Reset(0);
  uint16_t slot = page.Insert(std::string(64, 'x')).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(page.Read(slot));
  }
}
BENCHMARK(BM_PageRead);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(64, &disk);
  PageId id;
  {
    auto g = pool.NewPage().ValueOrDie();
    id = g->page_id();
  }
  for (auto _ : state) {
    auto g = pool.FetchPage(id);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_BufferPoolFetchMissEvict(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(2, &disk);  // every fetch of a third page evicts
  PageId ids[3];
  for (PageId& id : ids) {
    auto g = pool.NewPage().ValueOrDie();
    id = g->page_id();
    g.MarkDirty();
  }
  int i = 0;
  for (auto _ : state) {
    auto g = pool.FetchPage(ids[i++ % 3]);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolFetchMissEvict);

void BM_RecordInsert(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(1024, &disk);
  RecordManager rm(&pool);
  const std::string rec(32, 'r');
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm.Insert(rec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordInsert);

void BM_RecordReadUpdate(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(64, &disk);
  RecordManager rm(&pool);
  Rid rid = rm.Insert(Value(int64_t{1}).Serialize()).ValueOrDie();
  for (auto _ : state) {
    auto v = rm.Read(rid);
    benchmark::DoNotOptimize(v);
    (void)rm.Update(rid, Value(int64_t{2}).Serialize());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordReadUpdate);

void BM_ObjectStoreGetPut(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(64, &disk);
  RecordManager rm(&pool);
  Schema schema;
  ObjectStore store(&schema, &rm);
  TypeId num = schema.DefineAtomicType("Num").ValueOrDie();
  Oid a = store.CreateAtomic(num, Value(int64_t{0})).ValueOrDie();
  int64_t i = 0;
  for (auto _ : state) {
    auto v = store.Get(a);
    benchmark::DoNotOptimize(v);
    (void)store.Put(a, Value(++i));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectStoreGetPut);

void BM_SetSelect(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  DiskManager disk;
  BufferPool pool(256, &disk);
  RecordManager rm(&pool);
  Schema schema;
  ObjectStore store(&schema, &rm);
  TypeId num = schema.DefineAtomicType("Num").ValueOrDie();
  TypeId elem =
      schema.DefineTupleType("E", {{"k", num}}, false).ValueOrDie();
  TypeId bag = schema.DefineSetType("Bag", elem, "k").ValueOrDie();
  Oid set = store.CreateSet(bag).ValueOrDie();
  for (int m = 0; m < members; ++m) {
    Oid k = store.CreateAtomic(num, Value(static_cast<int64_t>(m))).ValueOrDie();
    Oid e = store.CreateTuple(elem, {{"k", k}}).ValueOrDie();
    (void)store.SetInsert(set, Value(static_cast<int64_t>(m)), e);
  }
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.SetSelect(set, Value(i++ % members)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetSelect)->Arg(8)->Arg(256)->Arg(4096);

void BM_ValueSerializeRoundTrip(benchmark::State& state) {
  Value v("a medium sized string value");
  for (auto _ : state) {
    std::string bytes = v.Serialize();
    benchmark::DoNotOptimize(Value::Deserialize(bytes));
  }
}
BENCHMARK(BM_ValueSerializeRoundTrip);

}  // namespace
}  // namespace semcc

BENCHMARK_MAIN();
