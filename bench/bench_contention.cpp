// Contention sweep: fixed concurrency, varying hot-spot skew (Zipf theta)
// and database size — the knobs that create the paper's data-contention
// problem. Reported for every protocol.
#include <cstdio>

#include "bench_common.h"

using namespace semcc;
using namespace semcc::bench;

int main(int argc, char** argv) {
  JsonSink json(argc, argv);
  const int txns = TxnsPerThread(100);
  std::printf("== Contention sweep: skew (8 threads, 16 items, 1 ms think) ==\n\n");
  for (double theta : {0.0, 0.6, 0.9, 0.99}) {
    std::printf("--- zipf theta = %.2f ---\n", theta);
    PrintHeader();
    for (const ProtocolConfig& proto : AllProtocols()) {
      orderentry::WorkloadOptions wopts;
      wopts.load.num_items = 16;
      wopts.load.orders_per_item = 8;
      wopts.load.pre_paid = 0.3;
      wopts.load.pre_shipped = 0.3;
      wopts.zipf_theta = theta;
      wopts.think_micros = 1000;
      wopts.seed = 2;
      wopts.t5_double_scan = true;  // warm reacquire: drives the grant cache
      RunSummary s = RunWorkload(proto, wopts, 8, txns);
      PrintRow(s);
      char label[32];
      std::snprintf(label, sizeof(label), "theta=%.2f", theta);
      json.Add(s, label);
    }
    std::printf("\n");
  }

  std::printf("== Contention sweep: database size (8 threads, zipf 0.9, "
              "1 ms think) ==\n\n");
  for (int items : {2, 4, 16, 64}) {
    std::printf("--- %d items ---\n", items);
    PrintHeader();
    for (const ProtocolConfig& proto : AllProtocols()) {
      orderentry::WorkloadOptions wopts;
      wopts.load.num_items = items;
      wopts.load.orders_per_item = 8;
      wopts.load.pre_paid = 0.3;
      wopts.load.pre_shipped = 0.3;
      wopts.zipf_theta = 0.9;
      wopts.think_micros = 1000;
      wopts.seed = 3;
      wopts.t5_double_scan = true;  // warm reacquire: drives the grant cache
      RunSummary s = RunWorkload(proto, wopts, 8, txns);
      PrintRow(s);
      char label[32];
      std::snprintf(label, sizeof(label), "items=%d", items);
      json.Add(s, label);
    }
    std::printf("\n");
  }
  // --- hot-set sweep: key-range locks on ONE item -------------------------
  //
  // Every transaction hits the same item, so its Orders set is the single
  // hot object and the method-level matrix is the only concurrency left.
  // Sweeping the NewOrder (insert) share shows what the key intervals buy:
  // NewOrder carries a [hint,+inf) footprint and Ship/Pay carry point
  // footprints at existing order numbers, so with keyrange_locks on their
  // matrix conflicts vanish whenever the keys are disjoint. The off/on pair
  // per mix is the flag's ablation record.
  std::printf("== Hot-set sweep: NewOrder share on 1 item (8 threads, "
              "1 ms think, keyrange off/on) ==\n\n");
  ProtocolConfig hot_base;
  hot_base.name = "semantic-param";
  hot_base.refined_matrix = true;
  ProtocolConfig hot_keyrange = hot_base;
  hot_keyrange.name = "semantic-keyrange";
  hot_keyrange.options.keyrange_locks = true;
  for (int insert_pct : {10, 30, 50}) {
    std::printf("--- %d%% NewOrder ---\n", insert_pct);
    PrintHeader();
    for (const ProtocolConfig& proto : {hot_base, hot_keyrange}) {
      orderentry::WorkloadOptions wopts;
      wopts.load.num_items = 1;
      wopts.load.orders_per_item = 16;
      wopts.load.pre_paid = 0.3;
      wopts.load.pre_shipped = 0.3;
      // Writer-heavy mix: ship/pay split what NewOrder does not take, a
      // thin reader tail (T3/T4 5% each, T5 the 10% remainder).
      wopts.pct_t1 = (80 - insert_pct) / 2;
      wopts.pct_t2 = (80 - insert_pct) / 2;
      wopts.pct_t3 = 5;
      wopts.pct_t4 = 5;
      wopts.pct_new_order = insert_pct;
      wopts.think_micros = 1000;
      wopts.seed = 4;
      RunSummary s = RunWorkload(proto, wopts, 8, txns);
      PrintRow(s);
      char label[48];
      std::snprintf(label, sizeof(label),
                    proto.options.keyrange_locks ? "hotset-insert%d-keyrange-t8"
                                                 : "hotset-insert%d-t8",
                    insert_pct);
      json.Add(s, label);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape: the gap between semantic-param and the conventional\n"
      "protocols widens as skew grows and as the database shrinks (hotter\n"
      "items); at theta=0 with many items all protocols converge. In the\n"
      "hot-set sweep the keyrange rows shed blocked acquires and deadlock\n"
      "retries as the insert share grows — disjoint-key ops on the one hot\n"
      "set stop conflicting — while the off rows keep paying the\n"
      "method-level matrix.\n");
  return 0;
}
