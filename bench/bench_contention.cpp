// Contention sweep: fixed concurrency, varying hot-spot skew (Zipf theta)
// and database size — the knobs that create the paper's data-contention
// problem. Reported for every protocol.
#include <cstdio>

#include "bench_common.h"

using namespace semcc;
using namespace semcc::bench;

int main(int argc, char** argv) {
  JsonSink json(argc, argv);
  const int txns = TxnsPerThread(100);
  std::printf("== Contention sweep: skew (8 threads, 16 items, 1 ms think) ==\n\n");
  for (double theta : {0.0, 0.6, 0.9, 0.99}) {
    std::printf("--- zipf theta = %.2f ---\n", theta);
    PrintHeader();
    for (const ProtocolConfig& proto : AllProtocols()) {
      orderentry::WorkloadOptions wopts;
      wopts.load.num_items = 16;
      wopts.load.orders_per_item = 8;
      wopts.load.pre_paid = 0.3;
      wopts.load.pre_shipped = 0.3;
      wopts.zipf_theta = theta;
      wopts.think_micros = 1000;
      wopts.seed = 2;
      wopts.t5_double_scan = true;  // warm reacquire: drives the grant cache
      RunSummary s = RunWorkload(proto, wopts, 8, txns);
      PrintRow(s);
      char label[32];
      std::snprintf(label, sizeof(label), "theta=%.2f", theta);
      json.Add(s, label);
    }
    std::printf("\n");
  }

  std::printf("== Contention sweep: database size (8 threads, zipf 0.9, "
              "1 ms think) ==\n\n");
  for (int items : {2, 4, 16, 64}) {
    std::printf("--- %d items ---\n", items);
    PrintHeader();
    for (const ProtocolConfig& proto : AllProtocols()) {
      orderentry::WorkloadOptions wopts;
      wopts.load.num_items = items;
      wopts.load.orders_per_item = 8;
      wopts.load.pre_paid = 0.3;
      wopts.load.pre_shipped = 0.3;
      wopts.zipf_theta = 0.9;
      wopts.think_micros = 1000;
      wopts.seed = 3;
      wopts.t5_double_scan = true;  // warm reacquire: drives the grant cache
      RunSummary s = RunWorkload(proto, wopts, 8, txns);
      PrintRow(s);
      char label[32];
      std::snprintf(label, sizeof(label), "items=%d", items);
      json.Add(s, label);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: the gap between semantic-param and the conventional\n"
      "protocols widens as skew grows and as the database shrinks (hotter\n"
      "items); at theta=0 with many items all protocols converge.\n");
  return 0;
}
