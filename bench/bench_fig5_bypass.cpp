// Reproduces paper Figure 5: transaction T3 bypasses the encapsulation of
// item i1 by invoking TestStatus directly on the Order subobject while T1 is
// between its two ShipOrder actions.
//
// Under the §3 protocol (locks dropped at subtransaction completion) T3
// slips through and observes o1 shipped / o2 not shipped — a state no serial
// execution produces; the history checker reports the T1 <-> T3 cycle.
// Under the paper's §4 protocol (retained locks) T3 blocks until T1 commits.
#include <cstdio>

#include "app/orderentry/scenario.h"
#include "core/serializability.h"

using namespace semcc;
using namespace semcc::orderentry;

namespace {

void RunUnder(const char* name, bool retain_locks) {
  ProtocolOptions opts;
  opts.retain_locks = retain_locks;
  auto s = MakePaperScenario(opts).ValueOrDie();
  ScenarioOutcome out = RunFig5(s.get());
  SemanticSerializabilityChecker checker(s->db->compat());
  auto check = checker.Check(s->db->history()->Snapshot());
  std::printf("--- %s ---\n", name);
  std::printf("T3 ran between T1's two ShipOrder actions: %s\n",
              out.right_overlapped_left ? "YES (bypass slipped through)"
                                        : "no (blocked until T1 commit)");
  std::printf("%s\n", out.note.c_str());
  std::printf("history verdict: %s\n\n",
              check.serializable
                  ? "semantically serializable"
                  : ("NOT SERIALIZABLE — " + check.violations[0]).c_str());
}

}  // namespace

int main() {
  std::printf("== Paper Figure 5: Bypassing an Encapsulated Object ==\n\n");
  RunUnder("naive open nesting (paper §3; locks released at subtxn end)",
           /*retain_locks=*/false);
  RunUnder("the paper's protocol (paper §4; retained locks)",
           /*retain_locks=*/true);
  std::printf(
      "Expected shape: the naive protocol admits the execution and the\n"
      "checker finds the T1 -> T3 -> T1 cycle; the paper's protocol blocks\n"
      "T3 (root_waits >= 1) and the history is serializable.\n");
  return 0;
}
