// Ablation of the paper's two mechanisms on the full workload:
//   (1) retained locks      — correctness (Figure 5): benched only in its
//                             correct ON state, but the OFF state's raw
//                             speed is shown to quantify the price of
//                             correctness under bypassing;
//   (2) the commutative-ancestor walk (Cases 1 and 2) — pure performance:
//                             OFF is correct but blocks needlessly;
//   (3) parameter-refined Figure 2 matrix (extension, §3 "taking into
//                             account the actual input parameters").
#include <cstdio>

#include "bench_common.h"

using namespace semcc;
using namespace semcc::bench;

namespace {

RunSummary RunVariant(const char* name, ProtocolOptions opts,
                      bool refined_matrix) {
  DatabaseOptions dopts;
  dopts.protocol = opts;
  dopts.record_history = false;
  Database db(dopts);
  orderentry::InstallOptions iopts;
  iopts.parameter_refined_item_matrix = refined_matrix;
  auto types = orderentry::Install(&db, iopts).ValueOrDie();
  orderentry::WorkloadOptions wopts;
  wopts.load.num_items = 8;
  wopts.load.orders_per_item = 8;
  wopts.load.pre_paid = 0.3;
  wopts.load.pre_shipped = 0.3;
  wopts.zipf_theta = 0.9;
  wopts.think_micros = 1000;
  wopts.seed = 5;
  orderentry::OrderEntryWorkload workload(&db, types, wopts);
  (void)workload.Setup();
  auto result = workload.Run(8, 100);
  RunSummary s;
  s.protocol = name;
  s.threads = 8;
  s.tps = result.throughput_tps;
  s.committed = result.committed;
  s.failed = result.failed;
  const LockStats ls = db.locks()->stats();
  s.blocked = ls.blocked_acquires;
  s.root_waits = ls.root_waits;
  s.case1 = ls.case1_grants;
  s.case2 = ls.case2_waits;
  s.deadlocks = ls.deadlocks;
  s.retries = db.txns()->stats().retries;
  s.wait_p95_us = ls.wait_micros.p95;
  s.commute = ls.commute_grants;
  s.retained_hits = ls.retained_hits;
  s.fast_path_hits = ls.fast_path_hits;
  s.coalesced = ls.coalesced_grants;
  s.memo_hits = ls.memo_hits;
  s.timeouts = ls.timeouts;
  return s;
}

}  // namespace

int main() {
  std::printf("== Ablation of the protocol's mechanisms (8 threads, 8 items, "
              "zipf 0.9, 1 ms think) ==\n\n");
  PrintHeader("variant");

  ProtocolOptions full;
  PrintRow(RunVariant("full", full, false), "full");

  ProtocolOptions no_walk;
  no_walk.ancestor_walk = false;
  PrintRow(RunVariant("no-anc-walk", no_walk, false), "no-anc-walk");

  ProtocolOptions no_retain;
  no_retain.retain_locks = false;
  PrintRow(RunVariant("no-retain(!)", no_retain, false), "no-retain(!)");

  ProtocolOptions refined;
  PrintRow(RunVariant("refined-fig2", refined, true), "refined-fig2");

  // §5.4 fast-path mechanisms (each verdict-preserving; the ablation prices
  // them individually against `full`, which has all four on by default).
  ProtocolOptions no_fast_path;
  no_fast_path.lock_fast_path = false;
  PrintRow(RunVariant("no-fast-path", no_fast_path, false), "no-fast-path");

  ProtocolOptions no_coalesce;
  no_coalesce.coalesce_entries = false;
  PrintRow(RunVariant("no-coalesce", no_coalesce, false), "no-coalesce");

  ProtocolOptions no_memoize;
  no_memoize.memoize_conflicts = false;
  PrintRow(RunVariant("no-memoize", no_memoize, false), "no-memoize");

  ProtocolOptions no_pool;
  no_pool.pool_entries = false;
  PrintRow(RunVariant("no-pool", no_pool, false), "no-pool");

  std::printf(
      "\n(!) no-retain is the §3 protocol: fastest, but INCORRECT under\n"
      "bypassing (see bench_fig5_bypass) — shown only to price the retained\n"
      "locks. Expected shape: full >> no-anc-walk (Cases 1/2 remove most\n"
      "root-commit waits); refined-fig2 adds a further edge on same-item\n"
      "ShipOrder/ShipOrder pairs addressing different orders. The no-* rows\n"
      "below it each disable one §5.4 acquisition fast-path mechanism; all\n"
      "four are verdict-preserving, so only throughput may move.\n");
  return 0;
}
