// Shared helpers for the experiment-reproduction benches.
#ifndef SEMCC_BENCH_BENCH_COMMON_H_
#define SEMCC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "app/orderentry/workload.h"
#include "core/database.h"

namespace semcc {
namespace bench {

struct ProtocolConfig {
  std::string name;
  ProtocolOptions options;
  /// Use the parameter-refined Figure 2 matrix (paper §3: compatibility may
  /// take "into account the actual input parameters of operations";
  /// ShipOrder/ShipOrder and PayOrder/PayOrder commute on different orders).
  bool refined_matrix = false;
};

inline std::vector<ProtocolConfig> AllProtocols() {
  std::vector<ProtocolConfig> out;
  {
    ProtocolConfig c;
    c.name = "semantic-param";  // parameter-refined matrix (paper §3)
    c.refined_matrix = true;
    out.push_back(c);
  }
  {
    ProtocolConfig c;
    c.name = "semantic-fig2";  // the literal state-independent Figure 2
    out.push_back(c);
  }
  {
    ProtocolConfig c;
    c.name = "closed-nested";
    c.options.protocol = Protocol::kClosedNested;
    out.push_back(c);
  }
  {
    ProtocolConfig c;
    c.name = "2pl-object";
    c.options.protocol = Protocol::kFlat2PL;
    c.options.granularity = LockGranularity::kObject;
    out.push_back(c);
  }
  {
    ProtocolConfig c;
    c.name = "2pl-record";
    c.options.protocol = Protocol::kFlat2PL;
    c.options.granularity = LockGranularity::kRecord;
    out.push_back(c);
  }
  {
    ProtocolConfig c;
    c.name = "2pl-page";
    c.options.protocol = Protocol::kFlat2PL;
    c.options.granularity = LockGranularity::kPage;
    out.push_back(c);
  }
  return out;
}

struct RunSummary {
  std::string protocol;
  int threads = 0;
  double tps = 0;
  uint64_t committed = 0;
  uint64_t failed = 0;
  uint64_t blocked = 0;
  uint64_t root_waits = 0;
  uint64_t case1 = 0;
  uint64_t case2 = 0;
  uint64_t deadlocks = 0;
  uint64_t retries = 0;
  uint64_t wait_p50_us = 0;
  uint64_t wait_p95_us = 0;
  uint64_t wait_p99_us = 0;
  // Verdict breakdown / fast-path columns (emitted with --stats).
  uint64_t commute = 0;
  uint64_t retained_hits = 0;
  uint64_t fast_path_hits = 0;
  uint64_t coalesced = 0;
  uint64_t memo_hits = 0;
  uint64_t timeouts = 0;
  // Reader/writer split (readers = T3/T4/T5) and MVCC counters; the
  // versions_* fields stay zero unless the run had mvcc_reads on.
  double read_tps = 0;
  double write_tps = 0;
  uint64_t reader_root_waits = 0;
  uint64_t writer_root_waits = 0;
  uint64_t snapshot_reads = 0;
  uint64_t versions_installed = 0;
  uint64_t versions_reclaimed = 0;
};

/// Per-thread transaction count, overridable via SEMCC_BENCH_TXNS (the CI
/// perf-smoke leg shortens the runs this way).
inline int TxnsPerThread(int default_count) {
  const char* env = std::getenv("SEMCC_BENCH_TXNS");
  if (env != nullptr && env[0] != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return default_count;
}

/// Machine-readable result sink: when `--json=<path>` is passed or
/// SEMCC_BENCH_JSON is set, every recorded row is written as one object of
/// a JSON array at that path (see scripts/run_bench.sh, which tracks the
/// repo's perf trajectory in the committed BENCH_*.json files). Disabled —
/// zero-cost — otherwise.
class JsonSink {
 public:
  JsonSink(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
      if (arg == "--stats") stats_ = true;
    }
    if (path_.empty()) {
      const char* env = std::getenv("SEMCC_BENCH_JSON");
      if (env != nullptr && env[0] != '\0') path_ = env;
    }
    if (!stats_) {
      const char* env = std::getenv("SEMCC_BENCH_STATS");
      stats_ = env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
    }
  }
  ~JsonSink() { Flush(); }

  bool enabled() const { return !path_.empty(); }
  /// `--stats` (or SEMCC_BENCH_STATS): append the verdict-breakdown and
  /// fast-path columns to every row.
  bool stats() const { return stats_; }

  /// `label` distinguishes sweep points sharing a protocol name (e.g.
  /// "theta=0.90"); keep it free of JSON-significant characters.
  void Add(const RunSummary& s, const std::string& label = "") {
    if (!enabled()) return;
    char buf[1536];
    int n = std::snprintf(
        buf, sizeof(buf),
        "  {\"protocol\": \"%s\", \"label\": \"%s\", \"threads\": %d, "
        "\"throughput_tps\": %.2f, \"committed\": %llu, \"failed\": %llu, "
        "\"blocked\": %llu, \"deadlocks\": %llu, \"retries\": %llu, "
        "\"wait_p50_us\": %llu, \"wait_p95_us\": %llu, \"wait_p99_us\": %llu",
        s.protocol.c_str(), label.c_str(), s.threads, s.tps,
        static_cast<unsigned long long>(s.committed),
        static_cast<unsigned long long>(s.failed),
        static_cast<unsigned long long>(s.blocked),
        static_cast<unsigned long long>(s.deadlocks),
        static_cast<unsigned long long>(s.retries),
        static_cast<unsigned long long>(s.wait_p50_us),
        static_cast<unsigned long long>(s.wait_p95_us),
        static_cast<unsigned long long>(s.wait_p99_us));
    if (stats_ && n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
      n += std::snprintf(
          buf + n, sizeof(buf) - n,
          ", \"commute\": %llu, \"case1\": %llu, \"case2\": %llu, "
          "\"root_waits\": %llu, \"retained_hits\": %llu, "
          "\"fast_path_hits\": %llu, \"coalesced\": %llu, "
          "\"memo_hits\": %llu, \"timeouts\": %llu",
          static_cast<unsigned long long>(s.commute),
          static_cast<unsigned long long>(s.case1),
          static_cast<unsigned long long>(s.case2),
          static_cast<unsigned long long>(s.root_waits),
          static_cast<unsigned long long>(s.retained_hits),
          static_cast<unsigned long long>(s.fast_path_hits),
          static_cast<unsigned long long>(s.coalesced),
          static_cast<unsigned long long>(s.memo_hits),
          static_cast<unsigned long long>(s.timeouts));
      if (n > 0 && static_cast<size_t>(n) < sizeof(buf)) {
        n += std::snprintf(
            buf + n, sizeof(buf) - n,
            ", \"read_tps\": %.2f, \"write_tps\": %.2f, "
            "\"reader_root_waits\": %llu, \"writer_root_waits\": %llu, "
            "\"snapshot_reads\": %llu, \"versions_installed\": %llu, "
            "\"versions_reclaimed\": %llu",
            s.read_tps, s.write_tps,
            static_cast<unsigned long long>(s.reader_root_waits),
            static_cast<unsigned long long>(s.writer_root_waits),
            static_cast<unsigned long long>(s.snapshot_reads),
            static_cast<unsigned long long>(s.versions_installed),
            static_cast<unsigned long long>(s.versions_reclaimed));
      }
    }
    if (n > 0 && static_cast<size_t>(n) + 1 < sizeof(buf)) {
      buf[n] = '}';
      buf[n + 1] = '\0';
    }
    rows_.push_back(buf);
  }

  void Flush() {
    if (!enabled() || rows_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    rows_.clear();
  }

 private:
  std::string path_;
  bool stats_ = false;
  std::vector<std::string> rows_;
};

/// Build a fresh database + workload for one configuration and run it.
inline RunSummary RunWorkload(const ProtocolConfig& proto,
                              orderentry::WorkloadOptions wopts, int threads,
                              int txns_per_thread) {
  DatabaseOptions dopts;
  dopts.protocol = proto.options;
  dopts.record_history = false;  // perf run: do not accumulate trees
  // Production flags regardless of build type: debug_lock_checks defaults
  // on in Debug builds and force-disables the lock fast path, which is why
  // an earlier perf trajectory showed fast_path_hits == 0 — perf rows must
  // always come from the production configuration.
  dopts.protocol.debug_lock_checks = false;
  Database db(dopts);
  orderentry::InstallOptions iopts;
  iopts.parameter_refined_item_matrix = proto.refined_matrix;
  auto types = orderentry::Install(&db, iopts).ValueOrDie();
  orderentry::OrderEntryWorkload workload(&db, types, wopts);
  Status st = workload.Setup();
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return {};
  }
  auto result = workload.Run(threads, txns_per_thread);
  RunSummary s;
  s.protocol = proto.name;
  s.threads = threads;
  s.tps = result.throughput_tps;
  s.committed = result.committed;
  s.failed = result.failed;
  const LockStats ls = db.locks()->stats();
  s.blocked = ls.blocked_acquires;
  s.root_waits = ls.root_waits;
  s.case1 = ls.case1_grants;
  s.case2 = ls.case2_waits;
  s.deadlocks = ls.deadlocks;
  s.retries = db.txns()->stats().retries;
  s.wait_p50_us = ls.wait_micros.p50;
  s.wait_p95_us = ls.wait_micros.p95;
  s.wait_p99_us = ls.wait_micros.p99;
  s.commute = ls.commute_grants;
  s.retained_hits = ls.retained_hits;
  s.fast_path_hits = ls.fast_path_hits;
  s.coalesced = ls.coalesced_grants;
  s.memo_hits = ls.memo_hits;
  s.timeouts = ls.timeouts;
  s.read_tps = result.read_tps;
  s.write_tps = result.write_tps;
  s.reader_root_waits = result.reader_root_waits;
  s.writer_root_waits = result.writer_root_waits;
  const DatabaseStats ds = db.Stats();
  if (ds.mvcc_enabled) {
    s.snapshot_reads = ds.versions.snapshot_reads;
    s.versions_installed = ds.versions.versions_installed;
    s.versions_reclaimed = ds.versions.versions_reclaimed;
  }
  return s;
}

inline void PrintHeader(const char* first_col = "protocol") {
  std::printf("%-14s %7s %9s %9s %7s %8s %10s %8s %8s %9s %9s %10s\n",
              first_col, "threads", "commits", "failed", "tps", "blocked",
              "root_waits", "case1", "case2", "deadlocks", "retries",
              "waitp95us");
  std::printf("%s\n", std::string(124, '-').c_str());
}

inline void PrintRow(const RunSummary& s, const std::string& first_col = "") {
  std::printf(
      "%-14s %7d %9llu %9llu %7.0f %8llu %10llu %8llu %8llu %9llu %9llu "
      "%10llu\n",
      (first_col.empty() ? s.protocol : first_col).c_str(), s.threads,
      static_cast<unsigned long long>(s.committed),
      static_cast<unsigned long long>(s.failed), s.tps,
      static_cast<unsigned long long>(s.blocked),
      static_cast<unsigned long long>(s.root_waits),
      static_cast<unsigned long long>(s.case1),
      static_cast<unsigned long long>(s.case2),
      static_cast<unsigned long long>(s.deadlocks),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.wait_p95_us));
}

}  // namespace bench
}  // namespace semcc

#endif  // SEMCC_BENCH_BENCH_COMMON_H_
