// Reproduces paper Figures 2 and 3: the compatibility matrices of the
// encapsulated types Item and Order, printed from the live registry that
// the lock manager actually consults.
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "app/orderentry/order_entry.h"
#include "core/database.h"

using namespace semcc;

namespace {

void PrintMatrix(Database* db, TypeId type, const std::string& title,
                 const std::vector<std::string>& methods,
                 const std::vector<Args>& rep_args) {
  std::printf("%s\n", title.c_str());
  std::printf("%-22s", "");
  for (const std::string& m : methods) std::printf("%-15s", m.c_str());
  std::printf("\n");
  for (size_t i = 0; i < methods.size(); ++i) {
    std::printf("%-22s", methods[i].c_str());
    for (size_t j = 0; j < methods.size(); ++j) {
      std::optional<bool> entry =
          db->compat()->StaticEntry(type, methods[i], methods[j]);
      std::string cell;
      if (entry.has_value()) {
        cell = *entry ? "ok" : "conflict";
      } else if (db->compat()->HasPredicate(type, methods[i], methods[j])) {
        // Parameter-dependent: show the verdict for representative args.
        bool ok = db->compat()->Commute(type, methods[i], rep_args[i],
                                        methods[j], rep_args[j]);
        cell = std::string(ok ? "ok" : "conflict") + "*";
      } else {
        cell = "conflict";  // unregistered default
      }
      std::printf("%-15s", cell.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Database db;
  auto types = orderentry::Install(&db).ValueOrDie();

  std::printf("== Paper Figure 2: Compatibility Matrix for the Methods of "
              "Object Type Item ==\n\n");
  PrintMatrix(&db, types.item, "(rows = holder, columns = requester)",
              {"NewOrder", "ShipOrder", "PayOrder", "TotalPayment"},
              {{Value(7), Value(1)}, {Value(1)}, {Value(1)}, {}});

  std::printf("== Paper Figure 3: Compatibility Matrix for the Methods of "
              "Object Type Order ==\n");
  std::printf("   (method(event) pairs; '*' marks parameter-dependent "
              "entries, shown here for the listed events)\n\n");
  // Expand the event parameter into pseudo-methods, as the paper does.
  const std::vector<std::pair<std::string, std::string>> expanded = {
      {"ChangeStatus", orderentry::kShipped},
      {"ChangeStatus", orderentry::kPaid},
      {"TestStatus", orderentry::kShipped},
      {"TestStatus", orderentry::kPaid},
  };
  std::printf("%-26s", "");
  for (const auto& [m, e] : expanded) {
    std::printf("%-24s", (m + "(" + e + ")").c_str());
  }
  std::printf("\n");
  for (const auto& [mi, ei] : expanded) {
    std::printf("%-26s", (mi + "(" + ei + ")").c_str());
    for (const auto& [mj, ej] : expanded) {
      bool ok = db.compat()->Commute(types.order, mi, {Value(ei)}, mj,
                                     {Value(ej)});
      std::printf("%-24s", ok ? "ok" : "conflict");
    }
    std::printf("\n");
  }
  std::printf(
      "\nNotes: Figure 2 is reconstructed from the paper's prose constraints "
      "(see DESIGN.md);\nShipOrder/PayOrder are compatible per §2.2, "
      "ShipOrder/TotalPayment per Figure 7,\nNewOrder/NewOrder per the queue "
      "analogy of §1.1. Figure 3 entries marked by the\npredicate: "
      "ChangeStatus(e) conflicts with TestStatus(e') iff e == e'.\n");
  return 0;
}
