// Transaction-mix sweep: varies the share of bypassing readers (T3/T4
// status checks and T5 TotalPayment scans) against updaters (T1/T2) — the
// coexistence of "truly object-oriented" and "conventional" transactions
// that the paper's protocol is built for (§1.1, §4).
#include <cstdio>

#include "bench_common.h"

using namespace semcc;
using namespace semcc::bench;

int main() {
  std::printf("== Mix sweep: share of bypassing readers (8 threads, 8 items, "
              "zipf 0.8, 1 ms think) ==\n\n");
  struct Mix {
    const char* name;
    int t1, t2, t3, t4, tn;  // remainder = T5
  };
  const Mix mixes[] = {
      {"update-heavy (90% upd)", 45, 45, 4, 4, 2},
      {"balanced (50% upd)", 25, 25, 15, 15, 10},
      {"reader-heavy (20% upd)", 10, 10, 30, 30, 5},
      {"scan-heavy (T5 40%)", 20, 20, 8, 8, 4},
  };
  for (const Mix& mix : mixes) {
    std::printf("--- %s ---\n", mix.name);
    PrintHeader();
    for (const ProtocolConfig& proto : AllProtocols()) {
      orderentry::WorkloadOptions wopts;
      wopts.load.num_items = 8;
      wopts.load.orders_per_item = 8;
      wopts.load.pre_paid = 0.3;
      wopts.load.pre_shipped = 0.3;
      wopts.zipf_theta = 0.8;
      wopts.think_micros = 1000;
      wopts.pct_t1 = mix.t1;
      wopts.pct_t2 = mix.t2;
      wopts.pct_t3 = mix.t3;
      wopts.pct_t4 = mix.t4;
      wopts.pct_new_order = mix.tn;
      wopts.seed = 4;
      PrintRow(RunWorkload(proto, wopts, 8, 100));
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: update-heavy mixes maximize the semantic win\n"
      "(ShipOrder/PayOrder commute, ChangeStatus commutes with itself);\n"
      "scan-heavy mixes narrow it because TotalPayment conflicts with\n"
      "PayOrder even semantically (Figure 2).\n");
  return 0;
}
