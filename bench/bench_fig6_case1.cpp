// Reproduces paper Figure 6 (Case 1 — commutative and committed ancestor):
// after T1 completed ShipOrder(i1, o1), T4 checks the *payment* of o1. The
// leaf read formally conflicts with the retained Put(o1.Status), but
// ChangeStatus(o1, shipped) and TestStatus(o1, paid) commute and the
// ChangeStatus side is committed, so the paper's protocol grants at once.
// The ablation (ancestor walk disabled) shows the unnecessary blocking the
// rule removes.
#include <cstdio>

#include "app/orderentry/scenario.h"
#include "util/stopwatch.h"

using namespace semcc;
using namespace semcc::orderentry;

namespace {

void RunUnder(const char* name, bool ancestor_walk) {
  ProtocolOptions opts;
  opts.ancestor_walk = ancestor_walk;
  auto s = MakePaperScenario(opts).ValueOrDie();
  StopWatch sw;
  ScenarioOutcome out = RunFig6(s.get());
  std::printf("--- %s ---\n", name);
  std::printf("T4 completed while T1 was still active: %s\n",
              out.right_overlapped_left ? "YES (Case 1 grant)"
                                        : "no (waited for T1 commit)");
  std::printf("case1 grants: %llu, root waits: %llu, scenario wall time: %llu ms\n\n",
              static_cast<unsigned long long>(
                  s->db->locks()->stats().case1_grants),
              static_cast<unsigned long long>(
                  s->db->locks()->stats().root_waits),
              static_cast<unsigned long long>(sw.ElapsedMillis()));
}

}  // namespace

int main() {
  std::printf("== Paper Figure 6: Conflicting Actions with Commutative and "
              "Committed Ancestors (Case 1) ==\n\n");
  RunUnder("paper protocol (commutative-ancestor test ON)", true);
  RunUnder("ablation (commutative-ancestor test OFF)", false);
  std::printf("Expected shape: with the test ON, T4 never blocks "
              "(case1 >= 1, root_waits == 0)\nand finishes inside T1's "
              "window; with the test OFF it waits for T1's commit.\n");
  return 0;
}
