// Recovery extension bench: logging overhead (throughput with/without WAL,
// log volume per transaction) and restart cost as the log grows — the
// paper's future-work direction ("extend the recovery methods for
// multi-level transactions towards OODBS transactions").
#include <cstdio>

#include "app/orderentry/workload.h"
#include "util/stopwatch.h"

using namespace semcc;
using namespace semcc::orderentry;

namespace {

struct WalRun {
  double tps = 0;
  uint64_t committed = 0;
  size_t log_records = 0;
  uint64_t log_bytes = 0;
  uint64_t flushes = 0;
  double recover_seconds = 0;
  size_t redo_applied = 0;
};

WalRun RunOnce(bool enable_wal, int threads, int txns_per_thread,
               uint32_t flush_micros = 0, bool group_commit = false) {
  DatabaseOptions options;
  options.enable_wal = enable_wal;
  options.record_history = false;
  options.wal_flush_micros = flush_micros;
  options.group_commit = group_commit;
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  WorkloadOptions wopts;
  wopts.load.num_items = 8;
  wopts.load.orders_per_item = 8;
  wopts.seed = 11;
  OrderEntryWorkload workload(&db, types, wopts);
  (void)workload.Setup();
  auto result = workload.Run(threads, txns_per_thread);
  WalRun out;
  out.tps = result.throughput_tps;
  out.committed = result.committed;
  if (enable_wal) {
    db.wal()->Flush();
    out.flushes = db.wal()->flush_count();
    out.log_records = db.wal()->stable_count();
    out.log_bytes = db.wal()->stable_bytes();
    // Restart into a fresh database.
    DatabaseOptions ropts;
    ropts.enable_wal = true;
    Database recovered(ropts);
    InstallOptions iopts;
    iopts.register_only = true;
    (void)Install(&recovered, iopts).ValueOrDie();
    StopWatch sw;
    auto stats = recovered.RecoverFrom(db.wal()->StableRecords());
    out.recover_seconds = sw.ElapsedSeconds();
    if (stats.ok()) out.redo_applied = stats.ValueOrDie().redo_applied;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== Logging overhead (semantic protocol, 4 threads) ==\n\n");
  std::printf("%-10s %9s %7s %12s %12s %14s %10s\n", "wal", "commits", "tps",
              "log_records", "log_KiB", "recover_ms", "redo_ops");
  std::printf("%s\n", std::string(80, '-').c_str());
  for (bool wal : {false, true}) {
    WalRun r = RunOnce(wal, 4, 250);
    std::printf("%-10s %9llu %7.0f %12zu %12llu %14.1f %10zu\n",
                wal ? "on" : "off",
                static_cast<unsigned long long>(r.committed), r.tps,
                r.log_records,
                static_cast<unsigned long long>(r.log_bytes / 1024),
                r.recover_seconds * 1000, r.redo_applied);
  }

  std::printf("\n== Restart cost vs. log size (single-threaded producer) ==\n\n");
  std::printf("%-12s %12s %12s %14s\n", "txns", "log_records", "log_KiB",
              "recover_ms");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (int txns : {100, 400, 1600, 6400}) {
    WalRun r = RunOnce(true, 1, txns);
    std::printf("%-12d %12zu %12llu %14.1f\n", txns, r.log_records,
                static_cast<unsigned long long>(r.log_bytes / 1024),
                r.recover_seconds * 1000);
  }
  std::printf("\n== Group commit under a 100 µs simulated fsync "
              "(8 threads, 100 txns each) ==\n\n");
  std::printf("%-22s %9s %7s %10s %14s\n", "commit policy", "commits", "tps",
              "flushes", "flushes/commit");
  std::printf("%s\n", std::string(68, '-').c_str());
  {
    WalRun force = RunOnce(true, 8, 100, /*flush_micros=*/100,
                           /*group_commit=*/false);
    std::printf("%-22s %9llu %7.0f %10llu %14.2f\n", "force-per-commit",
                static_cast<unsigned long long>(force.committed), force.tps,
                static_cast<unsigned long long>(force.flushes),
                force.committed ? static_cast<double>(force.flushes) /
                                      static_cast<double>(force.committed)
                                : 0.0);
    WalRun group = RunOnce(true, 8, 100, /*flush_micros=*/100,
                           /*group_commit=*/true);
    std::printf("%-22s %9llu %7.0f %10llu %14.2f\n", "group-commit",
                static_cast<unsigned long long>(group.committed), group.tps,
                static_cast<unsigned long long>(group.flushes),
                group.committed ? static_cast<double>(group.flushes) /
                                      static_cast<double>(group.committed)
                                : 0.0);
  }

  std::printf(
      "\nExpected shape: WAL costs a modest constant factor in throughput;\n"
      "restart time grows linearly with the log (full-replay restart, no\n"
      "checkpoints — checkpointing is the natural next step and falls out of\n"
      "the chained-recovery design: replaying into a fresh log IS a\n"
      "checkpoint, see tests/recovery_test.cc RecoveredDatabaseKeepsWorking).\n");
  return 0;
}
