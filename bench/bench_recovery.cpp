// Recovery extension bench: logging overhead (throughput with/without WAL,
// log volume per transaction), restart cost as the log grows, group commit
// under a slow fsync, and the file-backed log device (real write/fsync
// path, in-place RestartFromLog) — the paper's future-work direction
// ("extend the recovery methods for multi-level transactions towards OODBS
// transactions").
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "app/orderentry/workload.h"
#include "bench_common.h"
#include "storage/posix_file.h"
#include "util/stopwatch.h"

using namespace semcc;
using namespace semcc::orderentry;

namespace {

struct WalRun {
  double tps = 0;
  uint64_t committed = 0;
  size_t log_records = 0;
  size_t retained_records = 0;
  uint64_t log_bytes = 0;
  uint64_t flushes = 0;
  uint64_t device_syncs = 0;
  double recover_seconds = 0;
  size_t redo_applied = 0;
};

enum class LogBackend { kNone, kMemory, kFile };

/// Fresh directory for one file-backed run (removed by CleanLogDir).
std::string MakeLogDir(const char* tag) {
  const char* base = std::getenv("TMPDIR");
  if (base == nullptr || base[0] == '\0') base = "/tmp";
  std::string dir = std::string(base) + "/semcc_bench_wal_" +
                    std::to_string(getpid()) + "_" + tag;
  CleanupDirectoryForTesting(dir);
  return dir;
}

void CleanLogDir(const std::string& dir) { CleanupDirectoryForTesting(dir); }

WalRun RunOnce(LogBackend backend, int threads, int txns_per_thread,
               uint32_t flush_micros = 0, bool group_commit = false,
               const char* tag = "run", uint64_t checkpoint_every = 0,
               int num_items = 64) {
  DatabaseOptions options;
  options.enable_wal = backend != LogBackend::kNone;
  options.record_history = false;
  options.recovery.wal_flush_micros = flush_micros;
  options.recovery.group_commit = group_commit;
  options.recovery.checkpoint_every_records = checkpoint_every;
  std::string log_dir;
  if (backend == LogBackend::kFile) {
    log_dir = MakeLogDir(tag);
    options.recovery.log_dir = log_dir;
    options.recovery.log_segment_bytes = 1u << 20;  // exercise rotation
  }
  WalRun out;
  {
    Database db(options);
    auto types = Install(&db).ValueOrDie();
    WorkloadOptions wopts;
    // 64 items by default: enough spread that semantic-lock conflicts are
    // rare, so the WAL sections measure commit-policy cost (sync count and
    // batching), not lock-handoff latency. At 8 items the lock chains couple
    // every thread to the parked committers and mask the device entirely.
    wopts.load.num_items = num_items;
    wopts.load.orders_per_item = 8;
    wopts.seed = 11;
    OrderEntryWorkload workload(&db, types, wopts);
    (void)workload.Setup();
    auto result = workload.Run(threads, txns_per_thread);
    out.tps = result.throughput_tps;
    out.committed = result.committed;
    if (backend == LogBackend::kNone) return out;
    (void)db.wal()->Flush();
    out.flushes = db.wal()->flush_count();
    out.device_syncs = db.wal()->device()->sync_count();
    out.log_records = db.wal()->stable_count();
    out.retained_records = db.wal()->retained_count();
    out.log_bytes = db.wal()->stable_bytes();

    if (backend == LogBackend::kMemory) {
      // Restart into a fresh database (chained checkpoint path).
      DatabaseOptions ropts;
      ropts.enable_wal = true;
      Database recovered(ropts);
      InstallOptions iopts;
      iopts.register_only = true;
      (void)Install(&recovered, iopts).ValueOrDie();
      StopWatch sw;
      auto stats = recovered.RecoverFrom(db.wal()->StableRecords().ValueOrDie());
      out.recover_seconds = sw.ElapsedSeconds();
      if (stats.ok()) out.redo_applied = stats.ValueOrDie().redo_applied;
      return out;
    }
  }
  // File backend: the first database is gone (process "crashed"); restart
  // in place from the on-disk segments.
  DatabaseOptions ropts;
  ropts.enable_wal = true;
  ropts.recovery.log_dir = log_dir;
  Database recovered(ropts);
  InstallOptions iopts;
  iopts.register_only = true;
  (void)Install(&recovered, iopts).ValueOrDie();
  StopWatch sw;
  auto stats = recovered.RestartFromLog();
  out.recover_seconds = sw.ElapsedSeconds();
  if (stats.ok()) {
    out.redo_applied = stats.ValueOrDie().redo_applied;
  } else {
    std::fprintf(stderr, "RestartFromLog failed: %s\n",
                 stats.status().ToString().c_str());
  }
  CleanLogDir(log_dir);
  return out;
}

const char* BackendName(LogBackend b) {
  switch (b) {
    case LogBackend::kNone:
      return "off";
    case LogBackend::kMemory:
      return "memory";
    case LogBackend::kFile:
      return "file";
  }
  return "?";
}

/// Recovery-specific JSON rows (same --json=/SEMCC_BENCH_JSON contract as
/// bench::JsonSink, different fields).
class RecoveryJsonSink {
 public:
  RecoveryJsonSink(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) path_ = arg.substr(7);
    }
    if (path_.empty()) {
      const char* env = std::getenv("SEMCC_BENCH_JSON");
      if (env != nullptr && env[0] != '\0') path_ = env;
    }
  }
  ~RecoveryJsonSink() { Flush(); }

  void Add(const std::string& section, const std::string& label,
           const WalRun& r) {
    if (path_.empty()) return;
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"section\": \"%s\", \"label\": \"%s\", "
        "\"throughput_tps\": %.2f, \"committed\": %llu, "
        "\"log_records\": %zu, \"retained_records\": %zu, "
        "\"log_bytes\": %llu, \"flushes\": %llu, "
        "\"device_syncs\": %llu, \"recover_ms\": %.3f, \"redo_applied\": %zu}",
        section.c_str(), label.c_str(), r.tps,
        static_cast<unsigned long long>(r.committed), r.log_records,
        r.retained_records,
        static_cast<unsigned long long>(r.log_bytes),
        static_cast<unsigned long long>(r.flushes),
        static_cast<unsigned long long>(r.device_syncs),
        r.recover_seconds * 1000, r.redo_applied);
    rows_.push_back(buf);
  }

  void Flush() {
    if (path_.empty() || rows_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    rows_.clear();
  }

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  RecoveryJsonSink json(argc, argv);
  // 8 threads: on the sync-bound file backend a batch can only carry
  // committers that exist, so the thread count bounds the batching win —
  // match the simulated-fsync group-commit section below for an
  // apples-to-apples file/memory gap.
  const int base_txns = bench::TxnsPerThread(125);

  std::printf("== Logging overhead (semantic protocol, 8 threads) ==\n\n");
  std::printf("%-10s %9s %7s %12s %12s %10s %14s %10s\n", "wal", "commits",
              "tps", "log_records", "log_KiB", "fsyncs", "recover_ms",
              "redo_ops");
  std::printf("%s\n", std::string(92, '-').c_str());
  for (LogBackend b :
       {LogBackend::kNone, LogBackend::kMemory, LogBackend::kFile}) {
    // Same commit policy (group commit) on both durable backends, so the
    // memory/file ratio isolates what the *device* costs — not a policy
    // difference. The force-vs-group policy comparison has its own
    // sections below.
    WalRun r = RunOnce(b, 8, base_txns, /*flush_micros=*/0,
                       /*group_commit=*/b != LogBackend::kNone, "overhead");
    std::printf("%-10s %9llu %7.0f %12zu %12llu %10llu %14.1f %10zu\n",
                BackendName(b), static_cast<unsigned long long>(r.committed),
                r.tps, r.log_records,
                static_cast<unsigned long long>(r.log_bytes / 1024),
                static_cast<unsigned long long>(r.device_syncs),
                r.recover_seconds * 1000, r.redo_applied);
    json.Add("logging-overhead", BackendName(b), r);
  }

  std::printf("\n== Restart cost vs. log size (single-threaded producer) ==\n\n");
  std::printf("%-12s %12s %12s %14s\n", "txns", "log_records", "log_KiB",
              "recover_ms");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (int txns : {100, 400, 1600, 6400}) {
    WalRun r = RunOnce(LogBackend::kMemory, 1, txns);
    std::printf("%-12d %12zu %12llu %14.1f\n", txns, r.log_records,
                static_cast<unsigned long long>(r.log_bytes / 1024),
                r.recover_seconds * 1000);
    json.Add("restart-cost", "txns=" + std::to_string(txns), r);
  }

  std::printf("\n== Restart cost with periodic fuzzy checkpoints "
              "(6400 txns, single-threaded) ==\n\n");
  std::printf("%-18s %12s %12s %14s %10s\n", "checkpoint every",
              "log_records", "retained", "recover_ms", "redo_ops");
  std::printf("%s\n", std::string(72, '-').c_str());
  for (uint64_t every : {0ull, 32768ull, 8192ull, 2048ull}) {
    WalRun r = RunOnce(LogBackend::kMemory, 1, 6400, 0, false, "ckpt", every);
    std::printf("%-18s %12zu %12zu %14.1f %10zu\n",
                every == 0 ? "off" : std::to_string(every).c_str(),
                r.log_records, r.retained_records, r.recover_seconds * 1000,
                r.redo_applied);
    json.Add("checkpoint-restart",
             every == 0 ? "off" : "every=" + std::to_string(every), r);
  }

  std::printf("\n== Group commit under a 100 µs simulated fsync "
              "(8 threads, 100 txns each) ==\n\n");
  std::printf("%-22s %9s %7s %10s %14s\n", "commit policy", "commits", "tps",
              "flushes", "flushes/commit");
  std::printf("%s\n", std::string(68, '-').c_str());
  {
    WalRun force = RunOnce(LogBackend::kMemory, 8, 100, /*flush_micros=*/100,
                           /*group_commit=*/false);
    std::printf("%-22s %9llu %7.0f %10llu %14.2f\n", "force-per-commit",
                static_cast<unsigned long long>(force.committed), force.tps,
                static_cast<unsigned long long>(force.flushes),
                force.committed ? static_cast<double>(force.flushes) /
                                      static_cast<double>(force.committed)
                                : 0.0);
    json.Add("group-commit", "force-per-commit", force);
    WalRun group = RunOnce(LogBackend::kMemory, 8, 100, /*flush_micros=*/100,
                           /*group_commit=*/true);
    std::printf("%-22s %9llu %7.0f %10llu %14.2f\n", "group-commit",
                static_cast<unsigned long long>(group.committed), group.tps,
                static_cast<unsigned long long>(group.flushes),
                static_cast<unsigned long long>(group.committed)
                    ? static_cast<double>(group.flushes) /
                          static_cast<double>(group.committed)
                    : 0.0);
    json.Add("group-commit", "group-commit", group);
  }

  std::printf("\n== File-backed log: real fsync, force vs group commit "
              "(8 threads) ==\n\n");
  std::printf("%-22s %9s %7s %10s %12s %14s\n", "commit policy", "commits",
              "tps", "fsyncs", "log_KiB", "restart_ms");
  std::printf("%s\n", std::string(80, '-').c_str());
  {
    const int file_txns = bench::TxnsPerThread(125);
    WalRun force = RunOnce(LogBackend::kFile, 8, file_txns, 0,
                           /*group_commit=*/false, "file-force");
    std::printf("%-22s %9llu %7.0f %10llu %12llu %14.1f\n", "force-per-commit",
                static_cast<unsigned long long>(force.committed), force.tps,
                static_cast<unsigned long long>(force.device_syncs),
                static_cast<unsigned long long>(force.log_bytes / 1024),
                force.recover_seconds * 1000);
    json.Add("file-backed", "force-per-commit", force);
    WalRun group = RunOnce(LogBackend::kFile, 8, file_txns, 0,
                           /*group_commit=*/true, "file-group");
    std::printf("%-22s %9llu %7.0f %10llu %12llu %14.1f\n", "group-commit",
                static_cast<unsigned long long>(group.committed), group.tps,
                static_cast<unsigned long long>(group.device_syncs),
                static_cast<unsigned long long>(group.log_bytes / 1024),
                group.recover_seconds * 1000);
    json.Add("file-backed", "group-commit", group);
  }

  std::printf(
      "\nExpected shape: WAL costs a modest constant factor in throughput\n"
      "(more with a real fsync per commit). On the file-backed device the\n"
      "pipelined group commit must BEAT force-per-commit — absorption during\n"
      "the in-flight fsync batches followers for free (the adaptive window\n"
      "converges to ~0). Without checkpoints restart time grows linearly\n"
      "with the log; periodic fuzzy checkpoints truncate the replayed prefix\n"
      "so retained records and restart time plateau at the checkpoint\n"
      "interval plus one dump.\n");
  return 0;
}
