// The paper's §1.1 motivation experiment: data contention under the
// order-entry workload (transaction types T1-T5 + NewOrder), comparing the
// semantic open-nested protocol against the conventional baselines across
// thread counts. Transactions carry think time between their two top-level
// actions ("transactions tend to be longer in applications with complex
// operations on complex objects"), so lock hold time — and therefore the
// protocol — dominates.
#include <cstdio>

#include "bench_common.h"

using namespace semcc;
using namespace semcc::bench;

int main(int argc, char** argv) {
  JsonSink json(argc, argv);
  const int txns = TxnsPerThread(120);
  std::printf("== Throughput vs. concurrency (order-entry mix, 8 items, "
              "zipf 0.8, 2 ms think time) ==\n\n");
  orderentry::WorkloadOptions wopts;
  wopts.load.num_items = 8;
  wopts.load.orders_per_item = 8;
  wopts.load.pre_paid = 0.3;
  wopts.load.pre_shipped = 0.3;
  wopts.zipf_theta = 0.8;
  wopts.think_micros = 2000;
  wopts.seed = 1;

  PrintHeader();
  for (const ProtocolConfig& proto : AllProtocols()) {
    for (int threads : {1, 2, 4, 8, 16}) {
      RunSummary s = RunWorkload(proto, wopts, threads, txns);
      PrintRow(s);
      char label[64];
      std::snprintf(label, sizeof(label), "orderentry-zipf0.8-t%d", threads);
      json.Add(s, label);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper §1.1): with growing concurrency the semantic\n"
      "protocol with parameter-aware commutativity (semantic-param) keeps\n"
      "scaling — commuting methods do not block, and leaf conflicts under\n"
      "them (the QuantityOnHand read-modify-write hot spot) are relieved by\n"
      "Case 1/2 into sub-millisecond subtransaction waits instead of\n"
      "commit-duration waits. Conventional read/write locking (object or\n"
      "record granularity) serializes those transactions for their full\n"
      "length (think time included); page locks are coarsest and collapse\n"
      "first. The literal state-independent Figure 2 matrix (semantic-fig2)\n"
      "sits in between: same-method pairs on one item conflict at method\n"
      "level, which is precisely why §3 allows parameters in the conflict\n"
      "test.\n");
  return 0;
}
