// The paper's §1.1 motivation experiment: data contention under the
// order-entry workload (transaction types T1-T5 + NewOrder), comparing the
// semantic open-nested protocol against the conventional baselines across
// thread counts. Transactions carry think time between their two top-level
// actions ("transactions tend to be longer in applications with complex
// operations on complex objects"), so lock hold time — and therefore the
// protocol — dominates.
#include <cstdio>

#include "bench_common.h"

using namespace semcc;
using namespace semcc::bench;

int main(int argc, char** argv) {
  JsonSink json(argc, argv);
  const int txns = TxnsPerThread(120);
  std::printf("== Throughput vs. concurrency (order-entry mix, 8 items, "
              "zipf 0.8, 2 ms think time) ==\n\n");
  orderentry::WorkloadOptions wopts;
  wopts.load.num_items = 8;
  wopts.load.orders_per_item = 8;
  wopts.load.pre_paid = 0.3;
  wopts.load.pre_shipped = 0.3;
  wopts.zipf_theta = 0.8;
  wopts.think_micros = 2000;
  wopts.seed = 1;
  wopts.t5_double_scan = true;  // warm reacquire: drives the grant cache

  PrintHeader();
  for (const ProtocolConfig& proto : AllProtocols()) {
    for (int threads : {1, 2, 4, 8, 16}) {
      RunSummary s = RunWorkload(proto, wopts, threads, txns);
      PrintRow(s);
      char label[64];
      std::snprintf(label, sizeof(label), "orderentry-zipf0.8-t%d", threads);
      json.Add(s, label);
    }
    std::printf("\n");
  }
  // --- key-range ablation: same sweep, keyrange_locks on ------------------
  //
  // Identical workload and matrix to the semantic-param rows above; only
  // ProtocolOptions::keyrange_locks differs, so the row pair is the flag's
  // ablation record. NewOrder's [hint,+inf) footprint and Ship/Pay's point
  // footprints stop conflicting whenever their keys are disjoint, which
  // shows up as fewer blocked acquires and deadlock retries at high thread
  // counts.
  std::printf("== Key-range ablation (semantic-param + keyrange_locks) ==\n\n");
  PrintHeader();
  {
    ProtocolConfig keyrange;
    keyrange.name = "semantic-keyrange";
    keyrange.refined_matrix = true;
    keyrange.options.keyrange_locks = true;
    for (int threads : {1, 2, 4, 8, 16}) {
      RunSummary s = RunWorkload(keyrange, wopts, threads, txns);
      PrintRow(s);
      char label[64];
      std::snprintf(label, sizeof(label), "orderentry-zipf0.8-keyrange-t%d",
                    threads);
      json.Add(s, label);
    }
    std::printf("\n");
  }

  // --- read-mix sections: MVCC snapshot reads vs locking readers ----------
  //
  // Same workload code on both sides (readers go through
  // RunReadTransaction); only protocol.mvcc_reads differs. With it on,
  // T3/T4/T5 take zero semantic locks — reader root waits drop to ~0 and
  // read throughput scales with threads while the write path is untouched.
  ProtocolConfig locking;
  locking.name = "semantic-param";
  locking.refined_matrix = true;
  ProtocolConfig mvcc = locking;
  mvcc.options.mvcc_reads = true;

  struct Mix {
    const char* title;
    const char* label_fmt;       // locking side
    const char* label_mvcc_fmt;  // mvcc side
    int t1, t2, t3, t4, tn;
  };
  const Mix mixes[] = {
      // 90% readers: T3 15, T4 15, T5 60 (remainder); writers T1 4, T2 4,
      // NewOrder 2.
      {"90/10 read mix", "readmix90-t%d", "readmix90-mvcc-t%d", 4, 4, 15, 15,
       2},
      // 50% readers: T3 10, T4 10, T5 30 (remainder); writers T1 20, T2 20,
      // NewOrder 10.
      {"50/50 read mix", "readmix50-t%d", "readmix50-mvcc-t%d", 20, 20, 10, 10,
       10},
  };
  for (const Mix& mix : mixes) {
    std::printf("== %s (8 items, zipf 0.8, writers think 2 ms, readers don't, "
                "T5 scans all items) ==\n\n",
                mix.title);
    std::printf("%-22s %7s %9s %9s %9s %9s %12s %12s\n", "config", "threads",
                "tps", "read_tps", "write_tps", "failed", "rd_rootwait",
                "wr_rootwait");
    std::printf("%s\n", std::string(96, '-').c_str());
    orderentry::WorkloadOptions ropts = wopts;
    ropts.pct_t1 = mix.t1;
    ropts.pct_t2 = mix.t2;
    ropts.pct_t3 = mix.t3;
    ropts.pct_t4 = mix.t4;
    ropts.pct_new_order = mix.tn;
    ropts.snapshot_readers = true;
    // Writers keep the 2 ms think time (they hold write locks across it —
    // that is what readers collide with); readers run at full speed and T5
    // scans the whole item set, so under plain locking reader throughput is
    // bounded by waiting behind updaters while under mvcc it is unbounded.
    ropts.reader_think_micros = 0;
    ropts.t5_scan_all = true;
    for (int threads : {4, 16}) {
      for (bool use_mvcc : {false, true}) {
        RunSummary s = RunWorkload(use_mvcc ? mvcc : locking, ropts, threads,
                                   txns);
        char label[64];
        std::snprintf(label, sizeof(label),
                      use_mvcc ? mix.label_mvcc_fmt : mix.label_fmt, threads);
        std::printf("%-22s %7d %9.0f %9.0f %9.0f %9llu %12llu %12llu\n", label,
                    threads, s.tps, s.read_tps, s.write_tps,
                    static_cast<unsigned long long>(s.failed),
                    static_cast<unsigned long long>(s.reader_root_waits),
                    static_cast<unsigned long long>(s.writer_root_waits));
        json.Add(s, label);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper §1.1): with growing concurrency the semantic\n"
      "protocol with parameter-aware commutativity (semantic-param) keeps\n"
      "scaling — commuting methods do not block, and leaf conflicts under\n"
      "them (the QuantityOnHand read-modify-write hot spot) are relieved by\n"
      "Case 1/2 into sub-millisecond subtransaction waits instead of\n"
      "commit-duration waits. Conventional read/write locking (object or\n"
      "record granularity) serializes those transactions for their full\n"
      "length (think time included); page locks are coarsest and collapse\n"
      "first. The literal state-independent Figure 2 matrix (semantic-fig2)\n"
      "sits in between: same-method pairs on one item conflict at method\n"
      "level, which is precisely why §3 allows parameters in the conflict\n"
      "test.\n");
  return 0;
}
