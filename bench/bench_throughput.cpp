// The paper's §1.1 motivation experiment: data contention under the
// order-entry workload (transaction types T1-T5 + NewOrder), comparing the
// semantic open-nested protocol against the conventional baselines across
// thread counts. Transactions carry think time between their two top-level
// actions ("transactions tend to be longer in applications with complex
// operations on complex objects"), so lock hold time — and therefore the
// protocol — dominates.
#include <cstdio>

#include "bench_common.h"

using namespace semcc;
using namespace semcc::bench;

int main(int argc, char** argv) {
  JsonSink json(argc, argv);
  const int txns = TxnsPerThread(120);
  std::printf("== Throughput vs. concurrency (order-entry mix, 8 items, "
              "zipf 0.8, 2 ms think time) ==\n\n");
  orderentry::WorkloadOptions wopts;
  wopts.load.num_items = 8;
  wopts.load.orders_per_item = 8;
  wopts.load.pre_paid = 0.3;
  wopts.load.pre_shipped = 0.3;
  wopts.zipf_theta = 0.8;
  wopts.think_micros = 2000;
  wopts.seed = 1;
  wopts.t5_double_scan = true;  // warm reacquire: drives the grant cache

  PrintHeader();
  for (const ProtocolConfig& proto : AllProtocols()) {
    for (int threads : {1, 2, 4, 8, 16}) {
      RunSummary s = RunWorkload(proto, wopts, threads, txns);
      PrintRow(s);
      char label[64];
      std::snprintf(label, sizeof(label), "orderentry-zipf0.8-t%d", threads);
      json.Add(s, label);
    }
    std::printf("\n");
  }
  // --- key-range ablation: same sweep, keyrange_locks on ------------------
  //
  // Identical workload and matrix to the semantic-param rows above; only
  // ProtocolOptions::keyrange_locks differs, so the row pair is the flag's
  // ablation record. NewOrder's [hint,+inf) footprint and Ship/Pay's point
  // footprints stop conflicting whenever their keys are disjoint, which
  // shows up as fewer blocked acquires and deadlock retries at high thread
  // counts.
  std::printf("== Key-range ablation (semantic-param + keyrange_locks) ==\n\n");
  PrintHeader();
  {
    ProtocolConfig keyrange;
    keyrange.name = "semantic-keyrange";
    keyrange.refined_matrix = true;
    keyrange.options.keyrange_locks = true;
    for (int threads : {1, 2, 4, 8, 16}) {
      RunSummary s = RunWorkload(keyrange, wopts, threads, txns);
      PrintRow(s);
      char label[64];
      std::snprintf(label, sizeof(label), "orderentry-zipf0.8-keyrange-t%d",
                    threads);
      json.Add(s, label);
    }
    std::printf("\n");
  }

  // --- read-mix sections: MVCC snapshot reads vs locking readers ----------
  //
  // Same workload code on both sides (readers go through
  // RunReadTransaction); only protocol.mvcc_reads differs. With it on,
  // T3/T4/T5 take zero semantic locks — reader root waits drop to ~0 and
  // read throughput scales with threads while the write path is untouched.
  ProtocolConfig locking;
  locking.name = "semantic-param";
  locking.refined_matrix = true;
  ProtocolConfig mvcc = locking;
  mvcc.options.mvcc_reads = true;

  struct Mix {
    const char* title;
    const char* label_fmt;       // locking side
    const char* label_mvcc_fmt;  // mvcc side
    int t1, t2, t3, t4, tn;
  };
  const Mix mixes[] = {
      // 90% readers: T3 15, T4 15, T5 60 (remainder); writers T1 4, T2 4,
      // NewOrder 2.
      {"90/10 read mix", "readmix90-t%d", "readmix90-mvcc-t%d", 4, 4, 15, 15,
       2},
      // 50% readers: T3 10, T4 10, T5 30 (remainder); writers T1 20, T2 20,
      // NewOrder 10.
      {"50/50 read mix", "readmix50-t%d", "readmix50-mvcc-t%d", 20, 20, 10, 10,
       10},
  };
  for (const Mix& mix : mixes) {
    std::printf("== %s (8 items, zipf 0.8, writers think 2 ms, readers don't, "
                "T5 scans all items) ==\n\n",
                mix.title);
    std::printf("%-22s %7s %9s %9s %9s %9s %12s %12s\n", "config", "threads",
                "tps", "read_tps", "write_tps", "failed", "rd_rootwait",
                "wr_rootwait");
    std::printf("%s\n", std::string(96, '-').c_str());
    orderentry::WorkloadOptions ropts = wopts;
    ropts.pct_t1 = mix.t1;
    ropts.pct_t2 = mix.t2;
    ropts.pct_t3 = mix.t3;
    ropts.pct_t4 = mix.t4;
    ropts.pct_new_order = mix.tn;
    ropts.snapshot_readers = true;
    // Writers keep the 2 ms think time (they hold write locks across it —
    // that is what readers collide with); readers run at full speed and T5
    // scans the whole item set, so under plain locking reader throughput is
    // bounded by waiting behind updaters while under mvcc it is unbounded.
    ropts.reader_think_micros = 0;
    ropts.t5_scan_all = true;
    for (int threads : {4, 16}) {
      for (bool use_mvcc : {false, true}) {
        RunSummary s = RunWorkload(use_mvcc ? mvcc : locking, ropts, threads,
                                   txns);
        char label[64];
        std::snprintf(label, sizeof(label),
                      use_mvcc ? mix.label_mvcc_fmt : mix.label_fmt, threads);
        std::printf("%-22s %7d %9.0f %9.0f %9.0f %9llu %12llu %12llu\n", label,
                    threads, s.tps, s.read_tps, s.write_tps,
                    static_cast<unsigned long long>(s.failed),
                    static_cast<unsigned long long>(s.reader_root_waits),
                    static_cast<unsigned long long>(s.writer_root_waits));
        json.Add(s, label);
      }
    }
    std::printf("\n");
  }

  // --- adaptive phase-shift sweep (DESIGN.md §5.9) ------------------------
  //
  // One database lives through three workload phases whose best concurrency-
  // control mode differs:
  //   A read-heavy / uniform   — commute-rich; semantic testing pays off,
  //   B hot-item write burst   — zipf 0.99 + 2 ms think; waiter convoys on
  //                              the hot item's shard favor kPrudent bypass,
  //   C uniform default mix    — back to the balanced §2.3 mix.
  // Four configs replay the same phase sequence: three statically pinned
  // modes (ProtocolOptions::adaptive.pin_mode) and the live controller.
  // The adaptive row must track the best static per phase and beat the
  // worst static overall — that inversion is what
  // scripts/check_bench_regression.py gates on.
  std::printf("== Adaptive phase-shift (A read-heavy -> B hot burst -> C "
              "uniform; 4 threads) ==\n\n");
  {
    const int pthreads = 4;
    auto phase_opts = [&wopts](char phase) {
      orderentry::WorkloadOptions o = wopts;  // same load/seed as above
      o.think_micros = 1000;
      switch (phase) {
        case 'A':  // read-heavy, uniform access
          o.zipf_theta = 0.0;
          o.pct_t1 = 2;
          o.pct_t2 = 2;
          o.pct_t3 = 18;
          o.pct_t4 = 18;
          o.pct_new_order = 0;  // remainder: 60% T5
          break;
        case 'B':  // hot-item write burst
          o.zipf_theta = 0.99;
          o.pct_t1 = 40;
          o.pct_t2 = 40;
          o.pct_t3 = 5;
          o.pct_t4 = 5;
          o.pct_new_order = 10;
          o.think_micros = 2000;
          break;
        default:  // 'C': the default balanced mix, uniform
          o.zipf_theta = 0.0;
          break;
      }
      return o;
    };

    struct PsConfig {
      const char* name;
      ProtocolOptions opts;
    };
    std::vector<PsConfig> configs;
    {
      PsConfig c{"semantic", ProtocolOptions{}};
      configs.push_back(c);
    }
    {
      PsConfig c{"2pl", ProtocolOptions{}};
      c.opts.adaptive_mode = true;
      c.opts.adaptive.pin_mode = 1;  // CcMode::k2PL everywhere
      configs.push_back(c);
    }
    {
      PsConfig c{"prudent", ProtocolOptions{}};
      c.opts.adaptive_mode = true;
      c.opts.adaptive.pin_mode = 2;  // CcMode::kPrudent everywhere
      configs.push_back(c);
    }
    {
      PsConfig c{"adaptive", ProtocolOptions{}};
      c.opts.adaptive_mode = true;
      c.opts.adaptive.pin_mode = -1;
      c.opts.adaptive.background_thread = true;
      c.opts.adaptive.sample_interval_micros = 20000;
      configs.push_back(c);
    }

    PrintHeader("config-phase");
    for (const PsConfig& cfg : configs) {
      DatabaseOptions dopts;
      dopts.protocol = cfg.opts;
      dopts.protocol.debug_lock_checks = false;
      dopts.record_history = false;
      Database db(dopts);
      orderentry::InstallOptions iopts;
      iopts.parameter_refined_item_matrix = true;
      auto types = orderentry::Install(&db, iopts).ValueOrDie();

      orderentry::OrderEntryWorkload wa(&db, types, phase_opts('A'));
      orderentry::OrderEntryWorkload wb(&db, types, phase_opts('B'));
      orderentry::OrderEntryWorkload wc(&db, types, phase_opts('C'));
      if (!wa.Setup().ok()) return 1;
      wb.AdoptData(wa);
      wc.AdoptData(wa);

      uint64_t committed = 0;
      double seconds = 0;
      uint64_t failed = 0;
      LockStats prev = db.locks()->stats();
      orderentry::OrderEntryWorkload* phases[] = {&wa, &wb, &wc};
      const char* phase_names[] = {"phaseA", "phaseB", "phaseC"};
      for (int p = 0; p < 3; ++p) {
        auto result = phases[p]->Run(pthreads, txns);
        const LockStats now = db.locks()->stats();
        RunSummary s;
        s.protocol = cfg.name;
        s.threads = pthreads;
        s.tps = result.throughput_tps;
        s.committed = result.committed;
        s.failed = result.failed;
        s.blocked = now.blocked_acquires - prev.blocked_acquires;
        s.root_waits = now.root_waits - prev.root_waits;
        s.case1 = now.case1_grants - prev.case1_grants;
        s.case2 = now.case2_waits - prev.case2_waits;
        s.commute = now.commute_grants - prev.commute_grants;
        s.deadlocks = now.deadlocks - prev.deadlocks;
        s.timeouts = now.timeouts - prev.timeouts;
        s.retries = db.txns()->stats().retries;
        // Wait percentiles are lifetime histograms, not deltas.
        s.wait_p50_us = now.wait_micros.p50;
        s.wait_p95_us = now.wait_micros.p95;
        s.wait_p99_us = now.wait_micros.p99;
        prev = now;
        committed += result.committed;
        failed += result.failed;
        seconds += result.seconds;
        char label[64];
        std::snprintf(label, sizeof(label), "phaseshift-%s-%s", cfg.name,
                      phase_names[p]);
        PrintRow(s, label);
        json.Add(s, label);
      }
      RunSummary overall;
      overall.protocol = cfg.name;
      overall.threads = pthreads;
      overall.committed = committed;
      overall.failed = failed;
      overall.tps = seconds > 0 ? static_cast<double>(committed) / seconds : 0;
      const LockStats fin = db.locks()->stats();
      overall.blocked = fin.blocked_acquires;
      overall.root_waits = fin.root_waits;
      overall.case1 = fin.case1_grants;
      overall.case2 = fin.case2_waits;
      overall.commute = fin.commute_grants;
      overall.deadlocks = fin.deadlocks;
      overall.timeouts = fin.timeouts;
      overall.retries = db.txns()->stats().retries;
      overall.wait_p50_us = fin.wait_micros.p50;
      overall.wait_p95_us = fin.wait_micros.p95;
      overall.wait_p99_us = fin.wait_micros.p99;
      char label[64];
      std::snprintf(label, sizeof(label), "phaseshift-%s-overall", cfg.name);
      PrintRow(overall, label);
      json.Add(overall, label);
      if (db.adaptive() != nullptr) {
        const AdaptiveStats as = db.adaptive()->stats();
        std::printf("  [%s: epochs %llu, flips %llu, drain_stalls %llu, "
                    "hot_shards %llu, modes s/2pl/pr %llu/%llu/%llu]\n",
                    cfg.name, static_cast<unsigned long long>(as.epochs),
                    static_cast<unsigned long long>(as.flips),
                    static_cast<unsigned long long>(as.drain_stalls),
                    static_cast<unsigned long long>(as.hot_shards),
                    static_cast<unsigned long long>(as.types_semantic),
                    static_cast<unsigned long long>(as.types_2pl),
                    static_cast<unsigned long long>(as.types_prudent));
      }
      std::printf("\n");
    }
  }

  std::printf(
      "Expected shape (paper §1.1): with growing concurrency the semantic\n"
      "protocol with parameter-aware commutativity (semantic-param) keeps\n"
      "scaling — commuting methods do not block, and leaf conflicts under\n"
      "them (the QuantityOnHand read-modify-write hot spot) are relieved by\n"
      "Case 1/2 into sub-millisecond subtransaction waits instead of\n"
      "commit-duration waits. Conventional read/write locking (object or\n"
      "record granularity) serializes those transactions for their full\n"
      "length (think time included); page locks are coarsest and collapse\n"
      "first. The literal state-independent Figure 2 matrix (semantic-fig2)\n"
      "sits in between: same-method pairs on one item conflict at method\n"
      "level, which is precisely why §3 allows parameters in the conflict\n"
      "test.\n");
  return 0;
}
