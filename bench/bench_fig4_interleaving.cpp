// Reproduces paper Figure 4: a concurrent execution of two open nested
// transactions — T1 ships orders o1@i1, o2@i2 while T2 pays the same two
// orders. Under the semantic protocol the interleaving is admitted (the
// method pairs commute); under conventional protocols T2 blocks on T1.
#include <cstdio>

#include "app/orderentry/scenario.h"
#include "core/serializability.h"

using namespace semcc;
using namespace semcc::orderentry;

namespace {

void RunUnder(const char* name, const ProtocolOptions& opts) {
  auto s = MakePaperScenario(opts).ValueOrDie();
  ScenarioOutcome out = RunFig4(s.get());
  SemanticSerializabilityChecker checker(s->db->compat());
  auto check = checker.Check(s->db->history()->Snapshot());
  std::printf("--- protocol: %s ---\n", name);
  std::printf("T1 committed: %s, T2 committed: %s\n",
              out.t_left_committed ? "yes" : "no",
              out.t_right_committed ? "yes" : "no");
  std::printf("T2 interleaved with T1 (paper's Figure 4 concurrency): %s\n",
              out.right_overlapped_left ? "YES" : "no (serialized behind T1)");
  std::printf("lock stats: %s\n", out.note.c_str());
  std::printf("history: %s\n", check.ToString().c_str());
  std::printf("\ntransaction trees (grant/completion logical timestamps):\n%s\n",
              out.trace.c_str());
}

}  // namespace

int main() {
  std::printf("== Paper Figure 4: Concurrent Execution of Two Open Nested "
              "Transactions ==\n\n");
  ProtocolOptions semantic;
  RunUnder("semantic-ont (the paper)", semantic);

  ProtocolOptions flat;
  flat.protocol = Protocol::kFlat2PL;
  flat.granularity = LockGranularity::kObject;
  RunUnder("flat 2PL, object locks (conventional)", flat);

  ProtocolOptions closed;
  closed.protocol = Protocol::kClosedNested;
  RunUnder("closed nested transactions [Mo85]", closed);
  return 0;
}
