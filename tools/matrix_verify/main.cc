// matrix_verify: build-time verification of the commutativity matrices.
//
// Installs the full application registry (the paper's order-entry schema
// with the parameter-refined Fig. 2/3 predicates and key footprints, plus
// the standard ADTs — which register exact generic-op footprints for their
// keyed sets, so the derived Orders/QueueEntries cells are covered) into a
// scratch in-memory database and runs cc/matrix_verifier.h over it: cell
// symmetry, registration/dense agreement, args_sensitive soundness,
// predicate symmetry + determinism, matrix totality (the retained-lock
// closure property the ancestor-commutativity walk relies on), and
// spec-derivation agreement (every cell between two exact footprints must
// re-derive to itself, derived predicates must track SpecsCommute, and
// derivation from the generic footprints must reproduce the built-in
// generic key rules).
//
// The golden table (tests/golden/compat_matrix.txt) now also lists each
// registered footprint as a `spec` line, so spec edits — like matrix edits
// — cannot land without the reviewed table changing. Regenerate with:
//   build/tools/matrix_verify/matrix_verify --dump > tests/golden/compat_matrix.txt
//
// Runs as a ctest (see tools/matrix_verify/CMakeLists.txt) and as the CI
// `lint` leg. Modes:
//   matrix_verify                       verify; non-zero exit on any finding
//   matrix_verify --dump                verify, then print the exhaustive
//                                       verdict table to stdout
//   matrix_verify --check-golden=PATH   verify, then compare the table
//                                       against the committed golden file
//                                       (tests/golden/compat_matrix.txt) so
//                                       a matrix edit cannot land without
//                                       the reviewed table changing with it
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "adt/standard_adts.h"
#include "app/orderentry/order_entry.h"
#include "cc/matrix_verifier.h"
#include "core/database.h"

namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "matrix_verify: %s\n", msg.c_str());
  return 1;
}

/// First line where the two texts differ, for a pointed golden-mismatch
/// message (the full table is regenerable with --dump).
std::string FirstDiff(const std::string& want, const std::string& got) {
  std::istringstream ws(want);
  std::istringstream gs(got);
  std::string wline;
  std::string gline;
  int line = 0;
  while (true) {
    ++line;
    const bool wok = static_cast<bool>(std::getline(ws, wline));
    const bool gok = static_cast<bool>(std::getline(gs, gline));
    if (!wok && !gok) return "texts are equal";
    if (wok != gok || wline != gline) {
      std::ostringstream os;
      os << "line " << line << ":\n  golden: "
         << (wok ? wline : "<end of file>")
         << "\n  actual: " << (gok ? gline : "<end of file>");
      return os.str();
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool dump = false;
  std::string golden_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dump") == 0) {
      dump = true;
    } else if (std::strncmp(argv[i], "--check-golden=", 15) == 0) {
      golden_path = argv[i] + 15;
    } else {
      return Fail(std::string("unknown argument: ") + argv[i] +
                  " (usage: matrix_verify [--dump] [--check-golden=PATH])");
    }
  }

  semcc::Database db;
  semcc::orderentry::InstallOptions opts;
  // Verify the parameter-refined variant: it is a strict superset of the
  // paper's Figure 2 (two extra predicate cells) and exercises every cell
  // kind the registry can compile.
  opts.parameter_refined_item_matrix = true;
  auto installed = semcc::orderentry::Install(&db, opts);
  if (!installed.ok()) {
    return Fail("order-entry install failed: " +
                installed.status().ToString());
  }
  auto queue = semcc::adt::InstallQueue(&db);  // installs Counter too
  if (!queue.ok()) {
    return Fail("standard-ADT install failed: " + queue.status().ToString());
  }

  semcc::MatrixVerifier verifier(db.compat());
  const semcc::MatrixVerifyReport report = verifier.Verify();
  std::fprintf(stderr, "%s\n", report.ToString().c_str());
  if (!report.ok()) return 1;

  std::map<semcc::TypeId, std::string> names;
  for (semcc::TypeId t : db.compat()->RegisteredTypes()) {
    names[t] = db.schema()->TypeName(t);
  }
  const std::string table = verifier.DumpTable(&names);
  if (dump) std::fputs(table.c_str(), stdout);
  if (!golden_path.empty()) {
    std::ifstream in(golden_path);
    if (!in) return Fail("cannot open golden file " + golden_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (buf.str() != table) {
      return Fail("verdict table diverged from " + golden_path +
                  " — regenerate with `matrix_verify --dump > " +
                  golden_path + "` and review the diff\n" +
                  FirstDiff(buf.str(), table));
    }
    std::fprintf(stderr, "matrix_verify: table matches %s\n",
                 golden_path.c_str());
  }
  return 0;
}
