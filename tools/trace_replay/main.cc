// trace_replay: re-execute a binary lock-trace capture (SEMCC_TRACE_CAPTURE,
// util/trace.h) against a fresh lock manager — the capture-then-analyze
// closed loop of DESIGN.md §5.9.
//
//   # capture two seconds of the throughput bench
//   SEMCC_TRACE_CAPTURE=/tmp/run.trace ./bench_throughput
//   # deterministic single-threaded verification (CI replay-smoke leg)
//   ./trace_replay --trace=/tmp/run.trace --mode=verify --json
//   # closed-loop re-execution under a different configuration
//   ./trace_replay --trace=/tmp/run.trace --mode=bench --threads=8 --adaptive
//
// The order-entry schema's compatibility matrices are installed before the
// replay, so captures taken from the stock benches re-run through the same
// commutativity decisions they recorded.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "app/orderentry/order_entry.h"
#include "core/database.h"
#include "replay/replayer.h"
#include "util/trace.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --trace=<capture> [--mode=verify|bench] [--threads=N]\n"
      "          [--protocol=semantic|nested|2pl] [--keyrange] [--adaptive]\n"
      "          [--timeout-ms=N] [--json]\n",
      argv0);
}

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  out->assign(arg + n + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using semcc::replay::ReplayMode;
  std::string trace_path;
  semcc::replay::ReplayOptions opts;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--trace", &v)) {
      trace_path = v;
    } else if (FlagValue(argv[i], "--mode", &v)) {
      if (v == "verify") {
        opts.mode = ReplayMode::kVerify;
      } else if (v == "bench") {
        opts.mode = ReplayMode::kBench;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (FlagValue(argv[i], "--threads", &v)) {
      opts.threads = std::atoi(v.c_str());
    } else if (FlagValue(argv[i], "--timeout-ms", &v)) {
      opts.protocol.wait_timeout = std::chrono::milliseconds(
          std::atoll(v.c_str()));
    } else if (FlagValue(argv[i], "--protocol", &v)) {
      if (v == "semantic") {
        opts.protocol.protocol = semcc::Protocol::kSemanticONT;
      } else if (v == "nested") {
        opts.protocol.protocol = semcc::Protocol::kClosedNested;
      } else if (v == "2pl") {
        opts.protocol.protocol = semcc::Protocol::kFlat2PL;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--keyrange") == 0) {
      opts.protocol.keyrange_locks = true;
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      opts.protocol.adaptive_mode = true;
      opts.protocol.adaptive.background_thread = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (trace_path.empty()) {
    Usage(argv[0]);
    return 2;
  }

  std::vector<semcc::trace::Event> events;
  semcc::Status st = semcc::trace::ReadBinary(trace_path, &events);
  if (!st.ok()) {
    std::fprintf(stderr, "trace_replay: %s\n", st.ToString().c_str());
    return 1;
  }

  // A scratch database carries the order-entry compatibility registry; the
  // replay drives its own LockManager built from opts.protocol.
  semcc::Database db;
  semcc::orderentry::InstallOptions iopts;
  iopts.parameter_refined_item_matrix = true;
  auto types = semcc::orderentry::Install(&db, iopts);
  if (!types.ok()) {
    std::fprintf(stderr, "trace_replay: install failed: %s\n",
                 types.status().ToString().c_str());
    return 1;
  }

  const semcc::replay::ReplayResult r =
      semcc::replay::Replay(events, db.compat(), opts);
  if (json) {
    std::printf("%s\n", r.ToJson().c_str());
  } else {
    std::printf(
        "replayed %llu events: %llu roots, %llu actions "
        "(%llu granted, %llu denied, %llu skipped) in %.3f ms\n",
        static_cast<unsigned long long>(events.size()),
        static_cast<unsigned long long>(r.roots),
        static_cast<unsigned long long>(r.actions),
        static_cast<unsigned long long>(r.granted),
        static_cast<unsigned long long>(r.denied),
        static_cast<unsigned long long>(r.skipped_events),
        static_cast<double>(r.wall_micros) / 1000.0);
    std::printf("verdicts: %s\n", r.VerdictJson().c_str());
    if (opts.mode == ReplayMode::kBench && r.wall_micros > 0) {
      std::printf("throughput: %.0f roots/s\n",
                  static_cast<double>(r.roots) * 1e6 /
                      static_cast<double>(r.wall_micros));
    }
  }
  return 0;
}
