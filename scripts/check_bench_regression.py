#!/usr/bin/env python3
"""Non-gating perf-regression check over the committed BENCH_*.json files.

Usage: check_bench_regression.py OLD.json NEW.json [--threshold 0.15]

Understands both result schemas in this repo:
  * RunSummary row arrays (bench_throughput / bench_contention /
    bench_recovery): a JSON array of objects keyed by
    (protocol|experiment, label, threads), compared on throughput_tps
    (higher is better), deadlocks / retries (lower is better, skipped below
    a count of 10 — single-digit counts are run-to-run noise), or
    *_us / *_micros fields (lower is better).
  * google-benchmark --benchmark_out files (bench_lock_manager): an object
    with a "benchmarks" array, compared on real_time per benchmark name
    (lower is better).

Prints a WARNING line for every metric that regressed by more than the
threshold. Rows written with --stats additionally carry the verdict
breakdown (commute/case1/case2/root_waits/retained_hits/...); those are
compared as *shares of the row's verdict total* and a drift beyond
--verdict-drift (default 10 percentage points) warns — catching protocol-
behavior changes (e.g. Case 1 relief silently stopping) that throughput
alone would hide.

Timing and verdict-mix drifts never gate (exit 0) — gating on shared-runner
timing would make CI flaky. *Coverage* loss does gate: a (protocol, label,
threads) row — or a google-benchmark name — present in the old baseline but
absent from the new run means a bench configuration silently disappeared,
and the script exits 1. One *ordering* invariant also gates, because it is
timing-ratio-based and robust to runner speed: on the file-backed log the
group-commit row must not be slower than force-per-commit (group commit
exists to amortize fsyncs; losing to the unbatched policy means the
batching layer itself is broken).
"""

import argparse
import json
import sys

# Verdict-breakdown columns emitted by JsonSink with --stats. Compared as
# shares of their row sum, not absolute counts (counts scale with run
# length; the *mix* is the protocol's signature).
VERDICT_COLS = ("commute", "case1", "case2", "root_waits", "retained_hits")


def row_key(row):
    name = (row.get("protocol") or row.get("experiment") or
            row.get("section") or "?")
    label = row.get("label", "")
    threads = row.get("threads", "")
    return f"{name}/{label}/t{threads}"


def group_commit_inversion(data):
    """Gating invariant over a bench_recovery result: on the file-backed
    (real-fsync) device, group commit must not be slower than forcing every
    commit. Group commit exists purely to amortize fsyncs; if it loses to
    the policy it amortizes, the batching layer is broken (the PR 8 bug),
    no matter how the absolute numbers moved. Returns an error string or
    None."""
    if not isinstance(data, list):
        return None
    tps = {}
    for row in data:
        if isinstance(row, dict) and row.get("section") == "file-backed":
            tps[row.get("label")] = float(row.get("throughput_tps", 0.0))
    force = tps.get("force-per-commit")
    group = tps.get("group-commit")
    if force is None or group is None or force <= 0:
        return None
    if group < force:
        return (f"file-backed group-commit ({group:.0f} tps) is slower than "
                f"force-per-commit ({force:.0f} tps) — the batching layer "
                "costs more than the fsyncs it saves")
    return None


def adaptive_inversion(data):
    """Gating invariant over a bench_throughput result: in the phase-shift
    sweep the live adaptive controller must not end up slower overall than
    the WORST statically pinned mode. The controller's entire job is to
    avoid being stuck in the wrong mode as the workload shifts; losing to
    the worst pin means mode selection (or the flip machinery's overhead)
    is actively harmful, no matter how the absolute numbers moved. A small
    tolerance absorbs runner noise — the recorded trajectory shows the
    adaptive row beating the worst static by well over 1.3x. Returns an
    error string or None."""
    if not isinstance(data, list):
        return None
    tps = {}
    for row in data:
        if isinstance(row, dict):
            label = row.get("label", "")
            if label.startswith("phaseshift-") and label.endswith("-overall"):
                tps[label] = float(row.get("throughput_tps", 0.0))
    adaptive = tps.get("phaseshift-adaptive-overall")
    statics = [tps[k] for k in ("phaseshift-semantic-overall",
                                "phaseshift-2pl-overall",
                                "phaseshift-prudent-overall") if k in tps]
    if adaptive is None or not statics or min(statics) <= 0:
        return None
    worst = min(statics)
    if adaptive < worst * 0.95:
        return (f"phase-shift adaptive overall ({adaptive:.0f} tps) is slower "
                f"than the worst static pin ({worst:.0f} tps) — the adaptive "
                "controller is losing to the configuration it exists to avoid")
    return None


def row_metrics(row):
    """Yield (metric_name, value, higher_is_better) for a RunSummary row."""
    for key, value in row.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key in ("threads", "committed", "failed", "txns"):
            continue
        if key == "throughput_tps":
            yield key, float(value), True
        elif key in ("deadlocks", "retries"):
            # Lower is better, same warn policy as throughput: a >threshold
            # rise in deadlock aborts/retries is a contention regression even
            # when tps holds (retries hide the wasted work).
            yield key, float(value), False
        elif key.endswith("_us") or key.endswith("_micros") or key.endswith("_ms"):
            yield key, float(value), False


def verdict_shares(row):
    """The row's verdict counts as fractions of their sum, or None."""
    counts = {c: float(row[c]) for c in VERDICT_COLS if c in row}
    total = sum(counts.values())
    if not counts or total <= 0:
        return None
    return {c: v / total for c, v in counts.items()}


def index_rows(data):
    out = {}
    if isinstance(data, dict) and "benchmarks" in data:
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            out[b["name"]] = {"real_time": (float(b["real_time"]), False)}
    elif isinstance(data, list):
        for row in data:
            if not isinstance(row, dict):
                continue
            out[row_key(row)] = {
                m: (v, higher) for m, v, higher in row_metrics(row)
            }
    return out


def index_verdicts(data):
    out = {}
    if isinstance(data, list):
        for row in data:
            if isinstance(row, dict):
                shares = verdict_shares(row)
                if shares is not None:
                    out[row_key(row)] = shares
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=0.15)
    ap.add_argument("--verdict-drift", type=float, default=0.10,
                    help="warn when a verdict's share of the breakdown "
                         "moves by more than this (absolute fraction)")
    args = ap.parse_args()

    try:
        with open(args.old) as f:
            old_data = json.load(f)
        with open(args.new) as f:
            new_data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: cannot compare ({e})", file=sys.stderr)
        return 0
    old = index_rows(old_data)
    new = index_rows(new_data)
    old_verdicts = index_verdicts(old_data)
    new_verdicts = index_verdicts(new_data)

    # Coverage: every baseline row must still exist in the new run. A row
    # vanishing means a bench configuration was silently dropped (e.g. a
    # label renamed or a sweep section deleted) — that gates, unlike timing.
    missing = sorted(k for k in old if k not in new)
    for key in missing:
        print(f"ERROR: baseline row {key} missing from {args.new} "
              "(bench configuration disappeared)")

    inversion = group_commit_inversion(new_data)
    if inversion is not None:
        print(f"ERROR: {inversion}")
    adp_inversion = adaptive_inversion(new_data)
    if adp_inversion is not None:
        print(f"ERROR: {adp_inversion}")

    warned = 0
    for key, metrics in sorted(new.items()):
        old_metrics = old.get(key)
        if old_metrics is None:
            continue
        for metric, (value, higher_is_better) in metrics.items():
            ref = old_metrics.get(metric)
            if ref is None:
                continue
            old_value = ref[0]
            if old_value <= 0:
                continue
            if metric in ("deadlocks", "retries") and old_value < 10:
                # Noise floor: single-digit counts swing by whole multiples
                # run to run; a ratio over them is meaningless.
                continue
            if higher_is_better:
                change = (old_value - value) / old_value  # drop = regression
            else:
                change = (value - old_value) / old_value  # rise = regression
            if change > args.threshold:
                print(
                    f"WARNING: perf regression {key} {metric}: "
                    f"{old_value:.2f} -> {value:.2f} "
                    f"({change * 100.0:.1f}% worse, threshold "
                    f"{args.threshold * 100.0:.0f}%)"
                )
                warned += 1
    drifted = 0
    for key, shares in sorted(new_verdicts.items()):
        old_shares = old_verdicts.get(key)
        if old_shares is None:
            continue
        for verdict in VERDICT_COLS:
            before = old_shares.get(verdict, 0.0)
            after = shares.get(verdict, 0.0)
            if abs(after - before) > args.verdict_drift:
                print(
                    f"WARNING: verdict drift {key} {verdict}: "
                    f"{before * 100.0:.1f}% -> {after * 100.0:.1f}% of the "
                    f"breakdown (threshold {args.verdict_drift * 100.0:.0f} "
                    "points)"
                )
                drifted += 1

    if (warned == 0 and drifted == 0 and not missing and inversion is None
            and adp_inversion is None):
        print(f"check_bench_regression: {args.new} OK vs {args.old} "
              f"(no metric >{args.threshold * 100.0:.0f}% worse, "
              "no verdict drift, all baseline rows present)")
    # Timing and behavior mix never gate; lost coverage and the
    # group-commit / adaptive ordering inversions do.
    return 1 if (missing or inversion is not None
                 or adp_inversion is not None) else 0


if __name__ == "__main__":
    sys.exit(main())
