#!/usr/bin/env bash
# Run the experiment benches and write the machine-readable perf-trajectory
# files BENCH_throughput.json, BENCH_contention.json, BENCH_recovery.json
# (logging overhead, restart cost, group commit, file-backed log), and
# BENCH_lockpath.json (repeated-reacquire fast-path microbench) at the
# repo root.
#
# Usage:
#   scripts/run_bench.sh [build-dir]
#
# Environment:
#   SEMCC_BENCH_TXNS   shorten runs (per-thread transaction count); used by
#                      the CI perf-smoke leg.
#
# Every emitted file is validated as JSON — a bench that writes a malformed
# or empty file fails the script. If a previous copy of a BENCH file exists
# (the committed perf trajectory), scripts/check_bench_regression.py compares
# new against old: >15% timing regressions WARN only (perf is tracked, not
# gated, here), but a baseline row missing from the new run FAILS the script
# — bench coverage must never shrink silently.
#
# The build directory must be a Release build (cmake -DCMAKE_BUILD_TYPE=Release)
# or the numbers are meaningless.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${BUILD_DIR:-$repo_root/build-rel}}"

for bench in bench_throughput bench_contention bench_recovery bench_lock_manager; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not found (build with" >&2
    echo "  cmake -B $build_dir -S $repo_root -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

# Validate that a bench actually produced a well-formed, non-empty JSON file.
validate_json() {
  local path="$1"
  if [[ ! -s "$path" ]]; then
    echo "error: $path missing or empty (bench silently failed?)" >&2
    exit 1
  fi
  if ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
if isinstance(data, list) and len(data) == 0:
    sys.exit("empty result array")
' "$path"; then
    echo "error: $path is not valid JSON" >&2
    exit 1
  fi
}

# Stash the previous trajectory (if any) for the regression comparison.
stash_dir="$(mktemp -d)"
trap 'rm -rf "$stash_dir"' EXIT
bench_files=(BENCH_throughput.json BENCH_contention.json BENCH_recovery.json BENCH_lockpath.json)
for f in "${bench_files[@]}"; do
  [[ -f "$repo_root/$f" ]] && cp "$repo_root/$f" "$stash_dir/$f"
done

# --stats adds the verdict-breakdown + fast-path columns to every row
# (commute/case1/case2/root_waits/retained_hits/...), so the trajectory
# files track protocol behavior, not just throughput.
"$build_dir/bench/bench_throughput" --stats --json="$repo_root/BENCH_throughput.json"
validate_json "$repo_root/BENCH_throughput.json"
# The read-mix sections (MVCC snapshot reads vs locking readers) must be
# present — their rows are the mvcc_reads ablation record.
if ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    labels = {row.get("label", "") for row in json.load(f)}
required = ["readmix90-t16", "readmix90-mvcc-t16",
            "readmix50-t16", "readmix50-mvcc-t16"]
missing = [l for l in required if l not in labels]
if missing:
    sys.exit("missing read-mix rows: " + ", ".join(missing))
' "$repo_root/BENCH_throughput.json"; then
  echo "error: BENCH_throughput.json lacks the read-mix (mvcc) rows" >&2
  exit 1
fi
# The key-range ablation rows (keyrange_locks on, same workload as the
# semantic-param sweep) are that flag's ablation record.
if ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    labels = {row.get("label", "") for row in json.load(f)}
required = ["orderentry-zipf0.8-keyrange-t1", "orderentry-zipf0.8-keyrange-t16"]
missing = [l for l in required if l not in labels]
if missing:
    sys.exit("missing key-range ablation rows: " + ", ".join(missing))
' "$repo_root/BENCH_throughput.json"; then
  echo "error: BENCH_throughput.json lacks the keyrange ablation rows" >&2
  exit 1
fi
# The adaptive phase-shift rows (static pins vs live controller over the
# A/B/C phase sequence) are the adaptive_mode ablation record.
if ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    labels = {row.get("label", "") for row in json.load(f)}
required = ["phaseshift-%s-%s" % (cfg, ph)
            for cfg in ("semantic", "2pl", "prudent", "adaptive")
            for ph in ("phaseA", "phaseB", "phaseC", "overall")]
missing = [l for l in required if l not in labels]
if missing:
    sys.exit("missing phase-shift rows: " + ", ".join(missing))
' "$repo_root/BENCH_throughput.json"; then
  echo "error: BENCH_throughput.json lacks the adaptive phase-shift rows" >&2
  exit 1
fi
"$build_dir/bench/bench_contention" --stats --json="$repo_root/BENCH_contention.json"
validate_json "$repo_root/BENCH_contention.json"
# The hot-set sweep rows (one item, insert-share sweep, keyrange off/on per
# mix) must be present in both variants or the ablation record is broken.
if ! python3 -c '
import json, sys
with open(sys.argv[1]) as f:
    labels = {row.get("label", "") for row in json.load(f)}
required = ["hotset-insert%d-t8" % p for p in (10, 30, 50)]
required += ["hotset-insert%d-keyrange-t8" % p for p in (10, 30, 50)]
missing = [l for l in required if l not in labels]
if missing:
    sys.exit("missing hot-set rows: " + ", ".join(missing))
' "$repo_root/BENCH_contention.json"; then
  echo "error: BENCH_contention.json lacks the hot-set (keyrange) rows" >&2
  exit 1
fi
"$build_dir/bench/bench_recovery" --stats --json="$repo_root/BENCH_recovery.json"
validate_json "$repo_root/BENCH_recovery.json"
"$build_dir/bench/bench_lock_manager" \
  --benchmark_filter='BM_RepeatedReacquire' \
  --benchmark_out="$repo_root/BENCH_lockpath.json" \
  --benchmark_out_format=json
validate_json "$repo_root/BENCH_lockpath.json"

echo
for f in "${bench_files[@]}"; do
  echo "wrote $repo_root/$f"
  if [[ -f "$stash_dir/$f" ]]; then
    # Timing regressions only warn (exit 0), but a baseline row that
    # disappeared from the new run exits 1 and fails the script: bench
    # coverage must never shrink silently.
    python3 "$repo_root/scripts/check_bench_regression.py" \
      "$stash_dir/$f" "$repo_root/$f"
  fi
done
