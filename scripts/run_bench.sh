#!/usr/bin/env bash
# Run the experiment benches and write the machine-readable perf-trajectory
# files BENCH_throughput.json, BENCH_contention.json, and BENCH_recovery.json
# (logging overhead, restart cost, group commit, file-backed log) at the
# repo root.
#
# Usage:
#   scripts/run_bench.sh [build-dir]
#
# Environment:
#   SEMCC_BENCH_TXNS   shorten runs (per-thread transaction count); used by
#                      the CI perf-smoke leg.
#
# The build directory must be a Release build (cmake -DCMAKE_BUILD_TYPE=Release)
# or the numbers are meaningless.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${BUILD_DIR:-$repo_root/build-rel}}"

for bench in bench_throughput bench_contention bench_recovery; do
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "error: $build_dir/bench/$bench not found (build with" >&2
    echo "  cmake -B $build_dir -S $repo_root -DCMAKE_BUILD_TYPE=Release" >&2
    echo "  cmake --build $build_dir -j)" >&2
    exit 1
  fi
done

"$build_dir/bench/bench_throughput" --json="$repo_root/BENCH_throughput.json"
"$build_dir/bench/bench_contention" --json="$repo_root/BENCH_contention.json"
"$build_dir/bench/bench_recovery" --json="$repo_root/BENCH_recovery.json"

echo
echo "wrote $repo_root/BENCH_throughput.json"
echo "wrote $repo_root/BENCH_contention.json"
echo "wrote $repo_root/BENCH_recovery.json"
