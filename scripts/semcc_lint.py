#!/usr/bin/env python3
"""semcc-lint: protocol-aware static analysis for the semcc tree.

Usage:
    scripts/semcc_lint.py [--repo ROOT] [--engine auto|clang|regex]
                          [--compile-commands build/compile_commands.json]
                          [--waivers scripts/semcc_lint_waivers.txt]
                          [--no-waivers] [--list-checks] [-v]

Checks (see DESIGN.md §5.6 for the architecture):

  relaxed-order
      `std::memory_order_relaxed` is sanctioned only inside the §5.5
      statistics layers (src/util/metrics.*, src/util/trace.*). Every other
      use needs a waiver entry naming the site and the reason the relaxed
      ordering is sound (typically: monotonic hint, or a counter whose
      consistency is repaired under a mutex elsewhere).

  raw-sync
      `std::mutex` / `std::shared_mutex` / `std::condition_variable` /
      `std::lock_guard` / `std::unique_lock` / ... anywhere but
      src/util/annotations.h bypass the capability-annotated wrappers
      (semcc::Mutex, MutexLock, CondVar), which makes the code invisible to
      clang -Werror=thread-safety. Use the wrappers.

  blocking-under-shard-lock
      A blocking call (condition-variable wait, fsync/device Sync, thread
      sleep) must not be reachable while a lock-table shard mutex is held:
      every waiter on that shard — including waiters for unrelated objects —
      would stall behind it. Detected by extracting function bodies, seeding
      "blocking" from direct primitives, propagating through the name-level
      call graph, and intersecting with shard-mutex-held regions (functions
      annotated SEMCC_REQUIRES(shard.mu) and scopes below a
      `MutexLock <var>(shard.mu)` construction). The one sanctioned site is
      the shard condvar park in LockManager::Acquire — the wait *releases*
      shard.mu — and it is waived with that reason.

  discarded-status
      Status and Result<T> must carry [[nodiscard]] (the regex engine
      verifies the attribute is present on both class declarations, which
      makes every gcc/clang build reject dropped values via
      -Wunused-result). With the clang engine, call sites whose Status /
      Result result is discarded are additionally flagged directly.

Engines:
  regex   dependency-free tokenizer over the tree (comments and string
          literals stripped; line numbers preserved). Always available.
  clang   adds AST-precise discarded-status call-site analysis via
          clang.cindex + compile_commands.json. Needs the libclang python
          bindings (CI installs them; the dev container may not have them).
  auto    (default) regex checks always run; the clang pass is added when
          clang.cindex imports and a compilation database is found.

Waivers: scripts/semcc_lint_waivers.txt, lines of
    check | path | line-substring | reason
A finding is waived when its check and repo-relative path match and the
flagged source line contains the substring. The reason is mandatory —
the waiver file IS the documented-per-site-waiver list DESIGN.md §5.5
refers to. Unused waiver entries are reported (stale entries rot).

Exit status: 0 when no unwaived findings, 1 otherwise, 2 on usage errors.
"""

import argparse
import pathlib
import re
import sys

# --- file collection ---------------------------------------------------------

SOURCE_DIRS = ("src", "tests", "bench", "examples", "tools")
SOURCE_EXTS = (".h", ".cc", ".cpp")

# §5.5: the statistics layers own their relaxed-ordering proofs.
RELAXED_SANCTIONED = {
    "src/util/metrics.h",
    "src/util/metrics.cc",
    "src/util/trace.h",
    "src/util/trace.cc",
}

# The capability-annotated wrappers are the one place std primitives live.
RAW_SYNC_SANCTIONED = {"src/util/annotations.h"}

RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")

# Direct blocking primitives (reason strings feed the diagnostic).
BLOCKING_DIRECT = (
    (re.compile(r"\bstd::this_thread::sleep_(?:for|until)\b"), "thread sleep"),
    (re.compile(r"\bf(?:data)?sync\s*\("), "fsync"),
    (re.compile(r"(?:\.|->)\s*(?:Wait|WaitFor|WaitUntil)\s*\("),
     "condition-variable wait"),
    (re.compile(r"(?:\.|->)\s*Sync\s*\("), "device sync"),
)

# A shard mutex becomes held either by annotation or by construction.
SHARD_REQUIRES_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\((?:[^()]|\([^()]*\))*\)[^;{}]*"
    r"SEMCC_REQUIRES(?:_SHARED)?\s*\(([^()]*shard(?:\.|->)mu[^()]*)\)"
)
SHARD_LOCK_RE = re.compile(
    r"\bMutexLock\s+\w+\s*\(\s*shard(?:\.|->)mu\s*\)"
)

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
NON_CALL_NAMES = frozenset({
    "if", "for", "while", "switch", "catch", "return", "sizeof", "new",
    "delete", "do", "else", "case", "default", "static_cast", "const_cast",
    "reinterpret_cast", "dynamic_cast", "alignof", "decltype", "noexcept",
    "static_assert", "throw", "assert", "defined",
})

HEADER_RE = re.compile(
    r"\b(?P<name>[A-Za-z_~]\w*)\s*\((?:[^()]|\([^()]*\))*\)\s*"
    r"(?:(?:const|noexcept|override|final|mutable|&&?"
    r"|->\s*[\w:<>,&*\s]+?"
    r"|SEMCC_\w+(?:\s*\((?:[^()]|\([^()]*\))*\))?)\s*)*"
    r"(?::(?!:)[^;]*)?$"
)


class Finding:
    def __init__(self, check, path, line, message, source_line, context=None):
        self.check = check
        self.path = path          # repo-relative, forward slashes
        self.line = line          # 1-based
        self.message = message
        self.source_line = source_line
        # Waiver matching window: the flagged line plus its predecessor, so
        # a statement wrapped across lines still matches its distinctive
        # substring (e.g. `foo.fetch_add(1,\n  std::memory_order_relaxed);`).
        self.context = context if context is not None else source_line
        self.waived_by = None

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def collect_files(repo):
    files = []
    for d in SOURCE_DIRS:
        root = repo / d
        if not root.is_dir():
            continue
        for p in sorted(root.rglob("*")):
            if p.suffix in SOURCE_EXTS and p.is_file():
                files.append(p)
    return files


def strip_code(text):
    """Blank out comments and string/char literals, preserving offsets.

    Every replaced character becomes a space (newlines are kept), so line
    numbers and column positions in the stripped text match the original.
    """
    out = list(text)
    i, n = 0, len(text)

    def blank(a, b):
        for k in range(a, min(b, n)):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank(i, j)
            i = j
        elif c == "R" and text[i + 1:i + 3] == '"(':
            j = text.find(')"', i + 3)
            j = n if j < 0 else j + 2
            blank(i, j)
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            blank(i + 1, j)  # keep the quotes so `'"'` stays balanced-looking
            i = j + 1
        else:
            i += 1
    return "".join(out)


def line_of(text, idx):
    return text.count("\n", 0, idx) + 1


def source_line(original, lineno):
    lines = original.splitlines()
    return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""


def source_context(original, lineno):
    lines = original.splitlines()
    lo = max(0, lineno - 2)
    return "\n".join(line.strip() for line in lines[lo:lineno])


# --- simple per-line checks --------------------------------------------------

def check_relaxed_order(relpath, original, stripped, findings):
    if relpath in RELAXED_SANCTIONED:
        return
    for m in RELAXED_RE.finditer(stripped):
        ln = line_of(stripped, m.start())
        findings.append(Finding(
            "relaxed-order", relpath, ln,
            "memory_order_relaxed outside the sanctioned §5.5 statistics "
            "layers (util/metrics, util/trace) — document the site in "
            "scripts/semcc_lint_waivers.txt or use seq_cst/acq_rel",
            source_line(original, ln), source_context(original, ln)))


def check_raw_sync(relpath, original, stripped, findings):
    if relpath in RAW_SYNC_SANCTIONED:
        return
    for m in RAW_SYNC_RE.finditer(stripped):
        ln = line_of(stripped, m.start())
        findings.append(Finding(
            "raw-sync", relpath, ln,
            f"{m.group(0)} bypasses the annotated util/annotations.h "
            "wrappers (semcc::Mutex / MutexLock / CondVar) and is invisible "
            "to thread-safety analysis",
            source_line(original, ln)))


def check_nodiscard_structural(repo, findings):
    for relpath, cls in (("src/util/status.h", "Status"),
                         ("src/util/result.h", "Result")):
        p = repo / relpath
        if not p.is_file():
            findings.append(Finding(
                "discarded-status", relpath, 1, f"{relpath} not found", ""))
            continue
        text = p.read_text()
        if not re.search(rf"class\s*\[\[nodiscard\]\]\s*{cls}\b", text):
            decl = re.search(rf"class\s+{cls}\b", text)
            ln = line_of(text, decl.start()) if decl else 1
            findings.append(Finding(
                "discarded-status", relpath, ln,
                f"class {cls} lost its [[nodiscard]] attribute — dropped "
                f"{cls} values would no longer fail -Wunused-result builds",
                source_line(text, ln)))


# --- blocking-under-shard-lock ----------------------------------------------

class Function:
    def __init__(self, name, path, header, body, body_start_idx, stripped):
        self.name = name
        self.path = path
        self.header = header
        self.body = body
        self.body_start_idx = body_start_idx
        self.stripped = stripped  # whole-file stripped text, for line_of


def extract_functions(relpath, stripped):
    """Brace-matching pass: every `{ ... }` whose preceding header looks
    like a function definition yields a Function (nested text included)."""
    funcs = []
    stack = []  # (name_or_None, header, open_idx)
    last_boundary = 0
    for i, ch in enumerate(stripped):
        if ch == "{":
            header = stripped[last_boundary:i].strip()
            name = None
            m = HEADER_RE.search(header)
            if m and m.group("name") not in NON_CALL_NAMES:
                name = m.group("name").lstrip("~")
            stack.append((name, header, i))
            last_boundary = i + 1
        elif ch == "}":
            if stack:
                name, header, start = stack.pop()
                if name:
                    funcs.append(Function(name, relpath, header,
                                          stripped[start + 1:i], start + 1,
                                          stripped))
            last_boundary = i + 1
        elif ch == ";":
            last_boundary = i + 1
    return funcs


def held_subregions(body):
    """[(start, end)] body slices below a `MutexLock <var>(shard.mu)`
    construction, ending at the innermost enclosing scope's close."""
    regions = []
    for m in SHARD_LOCK_RE.finditer(body):
        depth = 0
        end = len(body)
        for j in range(m.end(), len(body)):
            if body[j] == "{":
                depth += 1
            elif body[j] == "}":
                depth -= 1
                if depth < 0:
                    end = j
                    break
        regions.append((m.start(), end))
    return regions


def body_calls(text):
    for m in CALL_RE.finditer(text):
        name = m.group(1)
        if name not in NON_CALL_NAMES:
            yield name, m.start()


def check_blocking_under_shard_lock(files_text, findings):
    """files_text: {relpath: (original, stripped)}."""
    functions = []
    held_names = set()
    for relpath, (_original, stripped) in files_text.items():
        functions.extend(extract_functions(relpath, stripped))
        for m in SHARD_REQUIRES_RE.finditer(stripped):
            held_names.add(m.group(1))

    # Seed "blocking" with direct primitives, then propagate through the
    # name-level call graph to a fixpoint. The graph has no overload/class
    # resolution, so a NAME is considered blocking only when EVERY definition
    # of it blocks — an ambiguous name (e.g. a `Put` on an in-memory cache
    # sharing its name with a WAL-backed `Put`) does not propagate. Direct
    # primitives inside held regions are still always flagged.
    defs_by_name = {}
    for f in functions:
        defs_by_name.setdefault(f.name, []).append(f)

    def direct_reason(f):
        for rx, reason in BLOCKING_DIRECT:
            if rx.search(f.body):
                return reason
        return None

    blocking = {}  # name -> human-readable reason chain
    changed = True
    while changed:
        changed = False
        for name, defs in defs_by_name.items():
            if name in blocking:
                continue
            reason = None
            for f in defs:
                r = direct_reason(f)
                if r is None:
                    r = next((f"calls {callee} ({blocking[callee]})"
                              for callee, _pos in body_calls(f.body)
                              if callee != name and callee in blocking),
                             None)
                if r is None:
                    reason = None
                    break
                reason = reason or r
            if reason is not None:
                blocking[name] = reason
                changed = True

    def flag_region(f, region_start, region_end, why_held):
        original = files_text[f.path][0]
        text = f.body[region_start:region_end]
        base = f.body_start_idx + region_start
        for rx, reason in BLOCKING_DIRECT:
            for m in rx.finditer(text):
                ln = line_of(f.stripped, base + m.start())
                findings.append(Finding(
                    "blocking-under-shard-lock", f.path, ln,
                    f"{reason} in {f.name} while a shard mutex is held "
                    f"({why_held}) — every waiter on the shard stalls "
                    "behind it",
                    source_line(original, ln)))
        for callee, pos in body_calls(text):
            if callee in blocking and callee != f.name:
                ln = line_of(f.stripped, base + pos)
                findings.append(Finding(
                    "blocking-under-shard-lock", f.path, ln,
                    f"{f.name} calls {callee}, which blocks "
                    f"({blocking[callee]}), while a shard mutex is held "
                    f"({why_held})",
                    source_line(original, ln)))

    for f in functions:
        if f.name in held_names:
            flag_region(f, 0, len(f.body),
                        f"SEMCC_REQUIRES(shard.mu) on {f.name}")
        for start, end in held_subregions(f.body):
            flag_region(f, start, end, "MutexLock on shard.mu in scope")


# --- clang engine (optional precision pass) ----------------------------------

STATUS_TYPES_RE = re.compile(r"^(?:const\s+)?(?:semcc::)?(?:Status$|Result<)")


def run_clang_discarded_status(repo, ccmds_path, findings, verbose):
    """AST pass: Status/Result call results discarded at statement level.

    Returns None on success or a string explaining why the pass was skipped
    (missing bindings / database). Never raises: this pass adds precision on
    top of the always-on regex checks, it must not take the linter down with
    environment problems.
    """
    try:
        from clang import cindex
    except ImportError:
        return "clang.cindex not importable (install python3-clang)"
    if not ccmds_path.is_file():
        return f"{ccmds_path} not found (configure with " \
               "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
    try:
        db = cindex.CompilationDatabase.fromDirectory(str(ccmds_path.parent))
    except cindex.CompilationDatabaseError as e:
        return f"cannot load compilation database: {e}"

    index = cindex.Index.create()
    seen = set()
    parse_failures = 0
    for cmd in db.getAllCompileCommands():
        src = pathlib.Path(cmd.directory) / cmd.filename
        try:
            rel = src.resolve().relative_to(repo).as_posix()
        except ValueError:
            continue
        if not rel.startswith(("src/", "tools/")) or rel in seen:
            continue
        seen.add(rel)
        args = [a for a in list(cmd.arguments)[1:]
                if a not in ("-c", "-o", cmd.filename)]
        args = [a for a, prev in zip(args, [""] + args) if prev != "-o"]
        try:
            tu = index.parse(str(src), args=args)
        except cindex.TranslationUnitLoadError:
            parse_failures += 1
            continue

        def flag_if_discarded(node, ancestors):
            if (node.kind != cindex.CursorKind.CALL_EXPR
                    or node.location.file is None
                    or not pathlib.Path(str(node.location.file)).resolve()
                    .as_posix().endswith(rel)
                    or not STATUS_TYPES_RE.match(node.type.spelling or "")):
                return
            discarded = False
            for anc in reversed(ancestors):
                if anc.kind in (cindex.CursorKind.UNEXPOSED_EXPR,
                                cindex.CursorKind.PAREN_EXPR):
                    continue
                if (anc.kind in (cindex.CursorKind.CSTYLE_CAST_EXPR,
                                 cindex.CursorKind.CXX_STATIC_CAST_EXPR)
                        and anc.type.spelling == "void"):
                    break  # explicit (void) discard — intentional
                discarded = anc.kind == cindex.CursorKind.COMPOUND_STMT
                break
            if discarded:
                findings.append(Finding(
                    "discarded-status", rel, node.location.line,
                    f"call result of type {node.type.spelling} is discarded "
                    "(check it, or cast to void with a comment)",
                    ""))

        # Iterative walk with an explicit ancestor chain.
        stack = [(tu.cursor, [])]
        while stack:
            node, ancestors = stack.pop()
            flag_if_discarded(node, ancestors)
            child_ancestors = ancestors + [node]
            for child in node.get_children():
                stack.append((child, child_ancestors))
    if verbose:
        print(f"clang engine: {len(seen)} TUs, {parse_failures} parse "
              "failures", file=sys.stderr)
    return None


# --- waivers -----------------------------------------------------------------

class Waiver:
    def __init__(self, check, path, pattern, reason, lineno):
        self.check = check
        self.path = path
        self.pattern = pattern
        self.reason = reason
        self.lineno = lineno
        self.used = 0

    def matches(self, finding):
        return (self.check == finding.check and self.path == finding.path
                and (self.pattern == "*"
                     or self.pattern in finding.context))


def load_waivers(path):
    waivers = []
    if not path.is_file():
        return waivers
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = [p.strip() for p in line.split("|")]
        if len(parts) != 4 or not all(parts):
            print(f"{path}:{lineno}: malformed waiver (want "
                  "'check | path | line-substring | reason')",
                  file=sys.stderr)
            sys.exit(2)
        waivers.append(Waiver(*parts, lineno))
    return waivers


# --- driver ------------------------------------------------------------------

CHECKS = ("relaxed-order", "raw-sync", "blocking-under-shard-lock",
          "discarded-status")


def main():
    ap = argparse.ArgumentParser(
        description="protocol-aware static checks for the semcc tree")
    default_repo = pathlib.Path(__file__).resolve().parent.parent
    ap.add_argument("--repo", default=str(default_repo))
    ap.add_argument("--engine", choices=("auto", "clang", "regex"),
                    default="auto")
    ap.add_argument("--compile-commands",
                    default=None,
                    help="compile_commands.json for the clang engine "
                         "(default: REPO/build/compile_commands.json)")
    ap.add_argument("--waivers", default=None,
                    help="waiver file (default: REPO/scripts/"
                         "semcc_lint_waivers.txt)")
    ap.add_argument("--no-waivers", action="store_true",
                    help="report every finding, ignoring the waiver file")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0

    repo = pathlib.Path(args.repo).resolve()
    ccmds = pathlib.Path(args.compile_commands) if args.compile_commands \
        else repo / "build" / "compile_commands.json"
    waiver_path = pathlib.Path(args.waivers) if args.waivers \
        else repo / "scripts" / "semcc_lint_waivers.txt"

    files = collect_files(repo)
    if not files:
        print(f"semcc_lint: no sources under {repo}", file=sys.stderr)
        return 2

    findings = []
    files_text = {}
    for p in files:
        relpath = p.relative_to(repo).as_posix()
        original = p.read_text(errors="replace")
        stripped = strip_code(original)
        files_text[relpath] = (original, stripped)
        check_relaxed_order(relpath, original, stripped, findings)
        check_raw_sync(relpath, original, stripped, findings)
    check_nodiscard_structural(repo, findings)
    check_blocking_under_shard_lock(files_text, findings)

    engine_note = None
    if args.engine in ("auto", "clang"):
        engine_note = run_clang_discarded_status(repo, ccmds, findings,
                                                 args.verbose)
        if engine_note and args.engine == "clang":
            print(f"semcc_lint: clang engine unavailable: {engine_note}",
                  file=sys.stderr)
            return 2
    if args.verbose and engine_note:
        print(f"semcc_lint: clang pass skipped: {engine_note} "
              "(regex checks still ran)", file=sys.stderr)

    waivers = [] if args.no_waivers else load_waivers(waiver_path)
    unwaived = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.check)):
        w = next((w for w in waivers if w.matches(f)), None)
        if w:
            w.used += 1
            f.waived_by = w
            if args.verbose:
                print(f"waived: {f} ({w.reason})")
        else:
            unwaived.append(f)

    for f in unwaived:
        print(f)
        if f.source_line:
            print(f"    {f.source_line}")
    for w in waivers:
        if w.used == 0:
            print(f"note: unused waiver {waiver_path.name}:{w.lineno} "
                  f"({w.check} | {w.path} | {w.pattern})", file=sys.stderr)

    waived_count = len(findings) - len(unwaived)
    print(f"semcc_lint: {len(files)} files, {len(findings)} findings "
          f"({waived_count} waived, {len(unwaived)} blocking)",
          file=sys.stderr)
    return 1 if unwaived else 0


if __name__ == "__main__":
    sys.exit(main())
