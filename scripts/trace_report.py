#!/usr/bin/env python3
"""Render a semcc JSON-lines trace (util/trace.h) as a readable report.

Usage:
    trace_report.py TRACE.jsonl [--root ID] [--timeline] [--json]

Obtain a trace by running any bench or example with SEMCC_TRACE set to an
output path, e.g.:

    SEMCC_TRACE=/tmp/fig5.jsonl ./build/bench/bench_fig5_bypass
    scripts/trace_report.py /tmp/fig5.jsonl

The report has two parts:
  * a verdict summary — how many lock decisions fell into each outcome
    (commute / Case 1 / Case 2 / root wait), how many blocks hit a
    *retained* lock, fast-path hits, wait times;
  * a per-transaction decision timeline (--timeline, or automatically when
    the trace is small) — every grant/block/wakeup/commit in emit order,
    grouped under the top-level transaction that issued it.

--root ID restricts the timeline to one top-level transaction.
--json emits the summary as one JSON object instead of text.
"""

import argparse
import collections
import json
import os
import sys

# ConflictOutcome (src/cc/lock_manager.h) — keep in sync.
VERDICTS = {
    0: "no-lock",
    1: "same-txn",
    2: "commute",
    3: "case1-grant",
    4: "case2-wait",
    5: "root-wait",
    6: "shared-grant",
    7: "holder-wait",
}

FLAG_BLOCKER_RETAINED = 1
FLAG_KEYRANGE = 2

# CcMode (src/cc/lock_manager.h) — the adaptive controller's per-type modes;
# mode-flip events carry the new mode in `value` and the old in `verdict`.
MODES = {0: "semantic", 1: "2pl", 2: "prudent"}

# Sentinel bounds the runtime uses for half-open key intervals: kAll hulls to
# [INT64_MIN, INT64_MAX] and kLowerBound hulls to [k, INT64_MAX].
KEY_LO_NEG_INF = -(2**63)
KEY_HI_INF = 2**63 - 1

# Event kinds that represent a lock decision on the acquire path.
DECISION_KINDS = {"grant", "fastpath-grant", "block"}


def load_events(path):
    events = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as e:
                print(f"{path}:{lineno}: skipping malformed line ({e})",
                      file=sys.stderr)
    events.sort(key=lambda e: e.get("seq", 0))
    return events


def summarize(events):
    s = {
        "events": len(events),
        "decisions": 0,
        "verdicts": collections.Counter(),
        "retained_hits": 0,
        "keyed_decisions": 0,
        "fastpath_grants": 0,
        "blocks": 0,
        "grants_after_wait": 0,
        "deadlock_victims": 0,
        "timeouts": 0,
        "txn_begins": 0,
        "txn_commits": 0,
        "txn_aborts": 0,
        "txn_retries": 0,
        "wal_flushes": 0,
        "snapshot_reads": 0,
        "mode_flips": collections.Counter(),
        "wait_us": [],
        "roots": set(),
    }
    for e in events:
        kind = e.get("kind", "?")
        if e.get("root"):
            s["roots"].add(e["root"])
        if kind in DECISION_KINDS:
            s["decisions"] += 1
            if e.get("flags", 0) & FLAG_KEYRANGE:
                s["keyed_decisions"] += 1
            verdict = VERDICTS.get(e.get("verdict", 0), "?")
            if kind == "block":
                s["blocks"] += 1
                s["verdicts"][verdict] += 1
                if e.get("flags", 0) & FLAG_BLOCKER_RETAINED:
                    s["retained_hits"] += 1
            elif kind == "fastpath-grant":
                s["fastpath_grants"] += 1
            elif verdict != "no-lock":
                s["verdicts"][verdict] += 1
        elif kind == "grant-after-wait":
            s["grants_after_wait"] += 1
            s["wait_us"].append(e.get("value", 0))
        elif kind == "deadlock-victim":
            s["deadlock_victims"] += 1
        elif kind == "lock-timeout":
            s["timeouts"] += 1
        elif kind == "txn-begin":
            s["txn_begins"] += 1
        elif kind == "txn-commit":
            s["txn_commits"] += 1
        elif kind == "txn-abort":
            s["txn_aborts"] += 1
        elif kind == "txn-retry":
            s["txn_retries"] += 1
        elif kind == "wal-flush":
            s["wal_flushes"] += 1
        elif kind == "snapshot-read":
            s["snapshot_reads"] += 1
        elif kind == "mode-flip":
            old = MODES.get(e.get("verdict", 0), "?")
            new = MODES.get(e.get("value", 0), "?")
            s["mode_flips"][f"{old}->{new}"] += 1
    return s


def print_summary(s):
    print(f"events           : {s['events']} "
          f"({len(s['roots'])} top-level transactions)")
    print(f"lock decisions   : {s['decisions']} "
          f"({s['fastpath_grants']} fast-path, {s['blocks']} blocked)")
    if s["verdicts"]:
        print("verdicts         :")
        for verdict, n in s["verdicts"].most_common():
            print(f"  {verdict:<14} {n}")
    print(f"retained-lock hits: {s['retained_hits']} "
          "(blocks against a completed holder's retained lock)")
    if s["keyed_decisions"]:
        print(f"keyed decisions  : {s['keyed_decisions']} "
              "(lock targets carrying a key interval)")
    print(f"txns             : {s['txn_begins']} begun, "
          f"{s['txn_commits']} committed, {s['txn_aborts']} aborted, "
          f"{s['txn_retries']} retried")
    if s["deadlock_victims"] or s["timeouts"]:
        print(f"failures         : {s['deadlock_victims']} deadlock victims, "
              f"{s['timeouts']} timeouts")
    if s["wal_flushes"]:
        print(f"wal flushes      : {s['wal_flushes']}")
    if s["snapshot_reads"]:
        print(f"snapshot reads   : {s['snapshot_reads']} "
              "(MVCC reads that took no semantic lock)")
    if s["mode_flips"]:
        total = sum(s["mode_flips"].values())
        print(f"mode flips       : {total} "
              "(adaptive controller changed a type's cc mode)")
        for transition, n in s["mode_flips"].most_common():
            print(f"  {transition:<22} {n}")
    if s["wait_us"]:
        waits = sorted(s["wait_us"])

        def p(q):
            return waits[min(len(waits) - 1, int(len(waits) * q))]

        print(f"wait us          : n={len(waits)} p50={p(0.5)} "
              f"p95={p(0.95)} max={waits[-1]}")


def event_line(e):
    kind = e.get("kind", "?")
    parts = [f"{e.get('us', 0):>8}us", f"{kind:<16}"]
    method = e.get("method", "")
    if method:
        parts.append(f"{method}")
    if e.get("target"):
        parts.append(f"target={e['target']}")
    if e.get("flags", 0) & FLAG_KEYRANGE:
        lo = e.get("key_lo", 0)
        hi = e.get("key_hi", 0)
        lo_s = "-inf" if lo == KEY_LO_NEG_INF else str(lo)
        hi_s = "+inf" if hi == KEY_HI_INF else str(hi)
        parts.append(f"keys=[{lo_s},{hi_s}]")
    if kind in DECISION_KINDS or kind == "wakeup":
        verdict = VERDICTS.get(e.get("verdict", 0), "?")
        if verdict != "no-lock":
            parts.append(f"verdict={verdict}")
    if kind == "block":
        parts.append(f"blocker=txn{e.get('other', 0)}")
        if e.get("flags", 0) & FLAG_BLOCKER_RETAINED:
            parts.append("[retained]")
    if kind == "grant-after-wait" and e.get("value"):
        parts.append(f"waited={e['value']}us")
    if kind == "txn-retry":
        parts.append(f"attempt={e.get('value', 0)}")
    if kind == "wal-flush":
        parts.append(f"batch={e.get('other', 0)} device={e.get('value', 0)}us")
    if kind == "snapshot-read":
        parts.append(f"S={e.get('other', 0)} saw=ts{e.get('value', 0)}")
    if kind == "mode-flip":
        old = MODES.get(e.get("verdict", 0), "?")
        new = MODES.get(e.get("value", 0), "?")
        parts.append(f"slot={e.get('other', 0)} {old}->{new} "
                     f"epoch={e.get('txn', 0)}")
    return "  " + " ".join(parts)


def print_timeline(events, only_root):
    by_root = collections.defaultdict(list)
    for e in events:
        root = e.get("root", 0)
        if only_root is not None and root != only_root:
            continue
        by_root[root].append(e)
    for root in sorted(by_root):
        label = f"txn {root}" if root else "(no transaction)"
        print(f"\n-- {label} " + "-" * max(1, 60 - len(label)))
        for e in by_root[root]:
            subtxn = e.get("txn", 0)
            prefix = f"  [sub {subtxn}]" if subtxn != root else "  [root  ]"
            print(prefix + event_line(e))


def main():
    ap = argparse.ArgumentParser(
        description="Render a semcc JSON-lines trace.")
    ap.add_argument("trace", help="JSON-lines trace file (SEMCC_TRACE dump)")
    ap.add_argument("--root", type=int, default=None,
                    help="limit the timeline to one top-level txn id")
    ap.add_argument("--timeline", action="store_true",
                    help="always print the per-transaction timeline")
    ap.add_argument("--json", action="store_true",
                    help="emit the summary as JSON")
    args = ap.parse_args()

    events = load_events(args.trace)
    if not events:
        print(f"{args.trace}: no events", file=sys.stderr)
        return 1
    s = summarize(events)
    if args.json:
        out = dict(s)
        out["verdicts"] = dict(s["verdicts"])
        out["roots"] = len(s["roots"])
        out["wait_us"] = {"n": len(s["wait_us"]),
                          "max": max(s["wait_us"], default=0)}
        print(json.dumps(out, indent=2))
    else:
        print_summary(s)
        if args.timeline or args.root is not None or s["events"] <= 400:
            print_timeline(events, args.root)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
