#!/usr/bin/env python3
"""Doc-lint: ProtocolOptions and the docs must agree in both directions.

Usage: check_doc_flags.py [--header src/cc/lock_manager.h] [--doc README.md]
                          [--design DESIGN.md] [--experiments EXPERIMENTS.md]

Parses the `struct ProtocolOptions { ... }` block out of the header with a
small brace-tracking scanner (no compiler needed), then checks:

  1. every field appears in the README flag reference AND in DESIGN.md AND
     in EXPERIMENTS.md (a new knob cannot land without user docs, a design
     rationale, and a recorded experiment or explicit mention), and
  2. every `ProtocolOptions::x` mention in any of the three docs names a
     real field (renaming or deleting a knob cannot leave stale prose
     behind).

Exits non-zero listing each violation — this runs as the CI doc-lint step.
"""

import argparse
import pathlib
import re
import sys

FIELD_RE = re.compile(
    r"^\s*(?:[A-Za-z_][A-Za-z0-9_:<>,\s]*?)\s+"  # type (possibly qualified)
    r"([a-z_][a-z0-9_]*)\s*"                     # field name
    r"(?:=[^;]*|\{[^;]*\})?;"                    # optional = or {} default
)


def protocol_options_fields(header_text):
    start = header_text.find("struct ProtocolOptions")
    if start < 0:
        raise ValueError("struct ProtocolOptions not found")
    brace = header_text.find("{", start)
    depth = 0
    end = brace
    for i in range(brace, len(header_text)):
        if header_text[i] == "{":
            depth += 1
        elif header_text[i] == "}":
            depth -= 1
            if depth == 0:
                end = i
                break
    body = header_text[brace + 1:end]
    fields = []
    for line in body.splitlines():
        stripped = line.split("//")[0].strip()
        if not stripped or stripped.startswith("#"):
            continue
        m = FIELD_RE.match(stripped)
        if m:
            fields.append(m.group(1))
    if not fields:
        raise ValueError("no fields parsed from ProtocolOptions")
    return list(dict.fromkeys(fields))  # dedupe #if-branched fields


def stale_mentions(doc_text, fields):
    """`ProtocolOptions::x` mentions that name no real field, with lines."""
    known = set(fields)
    stale = []
    for lineno, line in enumerate(doc_text.splitlines(), 1):
        for m in re.finditer(r"ProtocolOptions::([A-Za-z_][A-Za-z0-9_]*)",
                             line):
            if m.group(1) not in known:
                stale.append((lineno, m.group(1)))
    return stale


def main():
    ap = argparse.ArgumentParser()
    repo = pathlib.Path(__file__).resolve().parent.parent
    ap.add_argument("--header", default=str(repo / "src/cc/lock_manager.h"))
    ap.add_argument("--doc", default=str(repo / "README.md"))
    ap.add_argument("--design", default=str(repo / "DESIGN.md"))
    ap.add_argument("--experiments", default=str(repo / "EXPERIMENTS.md"))
    args = ap.parse_args()

    header_text = pathlib.Path(args.header).read_text()
    fields = protocol_options_fields(header_text)

    hints = {
        args.doc: "(add a row for each to the README flag-reference table)",
        args.design: "(describe the mechanism in the relevant DESIGN.md "
                     "section)",
        args.experiments: "(record the knob's ablation/experiment, or at "
                          "least name it, in EXPERIMENTS.md)",
    }

    failed = False
    for doc in (args.doc, args.design, args.experiments):
        path = pathlib.Path(doc)
        if not path.is_file():
            print(f"doc-lint: required doc {doc} is missing")
            failed = True
            continue
        text = path.read_text()
        missing = [f for f in fields
                   if not re.search(rf"\b{re.escape(f)}\b", text)]
        if missing:
            print(f"doc-lint: {doc} is missing these ProtocolOptions "
                  "fields:")
            for f in missing:
                print(f"  {f}")
            print(hints[doc])
            failed = True
        stale = stale_mentions(text, fields)
        for lineno, name in stale:
            print(f"doc-lint: {doc}:{lineno}: "
                  f"ProtocolOptions::{name} does not name a real field "
                  "(renamed or removed knob? update the prose)")
        failed = failed or bool(stale)

    if failed:
        return 1
    print(f"doc-lint: all {len(fields)} ProtocolOptions fields documented "
          f"in README, DESIGN, and EXPERIMENTS; all mentions resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
