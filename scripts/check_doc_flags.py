#!/usr/bin/env python3
"""Doc-lint: every ProtocolOptions field must appear in the README flag
reference.

Usage: check_doc_flags.py [--header src/cc/lock_manager.h] [--doc README.md]

Parses the `struct ProtocolOptions { ... }` block out of the header with a
small brace-tracking scanner (no compiler needed) and greps README.md for
each field name (as a word, typically inside backticks). Exits non-zero
listing any undocumented field — this runs as the CI doc-lint step so a new
knob cannot land without a README entry.
"""

import argparse
import pathlib
import re
import sys

FIELD_RE = re.compile(
    r"^\s*(?:[A-Za-z_][A-Za-z0-9_:<>,\s]*?)\s+"  # type (possibly qualified)
    r"([a-z_][a-z0-9_]*)\s*"                     # field name
    r"(?:=[^;]*)?;"                              # optional default
)


def protocol_options_fields(header_text):
    start = header_text.find("struct ProtocolOptions")
    if start < 0:
        raise ValueError("struct ProtocolOptions not found")
    brace = header_text.find("{", start)
    depth = 0
    end = brace
    for i in range(brace, len(header_text)):
        if header_text[i] == "{":
            depth += 1
        elif header_text[i] == "}":
            depth -= 1
            if depth == 0:
                end = i
                break
    body = header_text[brace + 1:end]
    fields = []
    for line in body.splitlines():
        stripped = line.split("//")[0].strip()
        if not stripped or stripped.startswith("#"):
            continue
        m = FIELD_RE.match(stripped)
        if m:
            fields.append(m.group(1))
    if not fields:
        raise ValueError("no fields parsed from ProtocolOptions")
    return list(dict.fromkeys(fields))  # dedupe #if-branched fields


def main():
    ap = argparse.ArgumentParser()
    repo = pathlib.Path(__file__).resolve().parent.parent
    ap.add_argument("--header", default=str(repo / "src/cc/lock_manager.h"))
    ap.add_argument("--doc", default=str(repo / "README.md"))
    args = ap.parse_args()

    header_text = pathlib.Path(args.header).read_text()
    doc_text = pathlib.Path(args.doc).read_text()
    fields = protocol_options_fields(header_text)

    missing = [f for f in fields
               if not re.search(rf"\b{re.escape(f)}\b", doc_text)]
    if missing:
        print(f"doc-lint: {args.doc} is missing these ProtocolOptions "
              "fields from the flag reference:")
        for f in missing:
            print(f"  {f}")
        print("(add a row for each to the README flag-reference table)")
        return 1
    print(f"doc-lint: all {len(fields)} ProtocolOptions fields documented "
          f"in {args.doc}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
