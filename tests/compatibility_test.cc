// Unit tests for the commutativity registry, including cell-by-cell checks
// of the paper's compatibility matrices (Figures 2 and 3).
#include <gtest/gtest.h>

#include "app/orderentry/order_entry.h"
#include "cc/compatibility.h"
#include "core/database.h"

namespace semcc {
namespace {

using namespace generic_ops;

TEST(Compatibility, UnknownPairsConflictByDefault) {
  CompatibilityRegistry reg;
  EXPECT_FALSE(reg.Commute(1, "Foo", {}, "Bar", {}));
  EXPECT_FALSE(reg.Commute(1, "Foo", {}, "Foo", {}));
}

TEST(Compatibility, StaticEntriesAreSymmetric) {
  CompatibilityRegistry reg;
  reg.Define(1, "A", "B", true);
  EXPECT_TRUE(reg.Commute(1, "A", {}, "B", {}));
  EXPECT_TRUE(reg.Commute(1, "B", {}, "A", {}));
  reg.Define(1, "C", "D", false);
  EXPECT_FALSE(reg.Commute(1, "C", {}, "D", {}));
  EXPECT_FALSE(reg.Commute(1, "D", {}, "C", {}));
}

TEST(Compatibility, EntriesArePerType) {
  CompatibilityRegistry reg;
  reg.Define(1, "A", "B", true);
  EXPECT_TRUE(reg.Commute(1, "A", {}, "B", {}));
  EXPECT_FALSE(reg.Commute(2, "A", {}, "B", {}));
}

TEST(Compatibility, PredicateReceivesArgsInRegistrationOrder) {
  CompatibilityRegistry reg;
  // Registered as (Zeta, Alpha): predicate's first args are Zeta's.
  reg.DefinePredicate(1, "Zeta", "Alpha", [](const Args& z, const Args& a) {
    return z.size() == 1 && a.size() == 2;
  });
  EXPECT_TRUE(reg.Commute(1, "Zeta", {Value(1)}, "Alpha", {Value(1), Value(2)}));
  EXPECT_TRUE(reg.Commute(1, "Alpha", {Value(1), Value(2)}, "Zeta", {Value(1)}));
  EXPECT_FALSE(reg.Commute(1, "Zeta", {Value(1), Value(2)}, "Alpha", {Value(1)}));
}

TEST(Compatibility, StaticEntryIntrospection) {
  CompatibilityRegistry reg;
  reg.Define(1, "A", "B", true);
  reg.DefinePredicate(1, "A", "C", [](const Args&, const Args&) { return true; });
  EXPECT_EQ(reg.StaticEntry(1, "A", "B"), true);
  EXPECT_EQ(reg.StaticEntry(1, "B", "A"), true);
  EXPECT_FALSE(reg.StaticEntry(1, "A", "C").has_value());
  EXPECT_TRUE(reg.HasPredicate(1, "A", "C"));
  EXPECT_FALSE(reg.HasPredicate(1, "A", "B"));
}

TEST(Compatibility, DeclareMethodDeduplicates) {
  CompatibilityRegistry reg;
  reg.DeclareMethod(1, "M");
  reg.DeclareMethod(1, "M");
  reg.DeclareMethod(1, "N");
  EXPECT_EQ(reg.MethodsOf(1).size(), 2u);
  EXPECT_TRUE(reg.MethodsOf(2).empty());
}

// --- built-in generic operation rules (paper §2.2 generic types) -----------

TEST(GenericCommute, AtomicObjects) {
  CompatibilityRegistry reg;
  EXPECT_TRUE(reg.Commute(9, kGet, {}, kGet, {}));
  EXPECT_FALSE(reg.Commute(9, kGet, {}, kPut, {Value(1)}));
  EXPECT_FALSE(reg.Commute(9, kPut, {Value(1)}, kPut, {Value(1)}));
}

TEST(GenericCommute, SetReadsCommute) {
  CompatibilityRegistry reg;
  EXPECT_TRUE(reg.Commute(9, kSelect, {Value(1)}, kSelect, {Value(1)}));
  EXPECT_TRUE(reg.Commute(9, kSelect, {Value(1)}, kScan, {}));
  EXPECT_TRUE(reg.Commute(9, kScan, {}, kScan, {}));
  EXPECT_TRUE(reg.Commute(9, kSize, {}, kSelect, {Value(1)}));
}

TEST(GenericCommute, KeyedUpdatesCommuteOnDifferentKeys) {
  CompatibilityRegistry reg;
  EXPECT_TRUE(reg.Commute(9, kInsert, {Value(1), Value::Ref(5)}, kInsert,
                          {Value(2), Value::Ref(6)}));
  EXPECT_FALSE(reg.Commute(9, kInsert, {Value(1), Value::Ref(5)}, kInsert,
                           {Value(1), Value::Ref(6)}));
  EXPECT_TRUE(reg.Commute(9, kInsert, {Value(1), Value::Ref(5)}, kRemove,
                          {Value(2)}));
  EXPECT_FALSE(
      reg.Commute(9, kInsert, {Value(1), Value::Ref(5)}, kRemove, {Value(1)}));
  EXPECT_TRUE(reg.Commute(9, kRemove, {Value(1)}, kSelect, {Value(2)}));
  EXPECT_FALSE(reg.Commute(9, kRemove, {Value(1)}, kSelect, {Value(1)}));
}

TEST(GenericCommute, MembershipSensitiveReadsConflictWithUpdates) {
  CompatibilityRegistry reg;
  EXPECT_FALSE(reg.Commute(9, kScan, {}, kInsert, {Value(1), Value::Ref(5)}));
  EXPECT_FALSE(reg.Commute(9, kSize, {}, kRemove, {Value(1)}));
}

TEST(GenericCommute, PerTypeOverrideWins) {
  CompatibilityRegistry reg;
  // An explicit per-type entry overrides the generic rule.
  reg.Define(9, kGet, kPut, true);
  EXPECT_TRUE(reg.Commute(9, kGet, {}, kPut, {Value(1)}));
  EXPECT_FALSE(reg.Commute(8, kGet, {}, kPut, {Value(1)}));
}

// --- paper Figure 2 (Item), every cell ------------------------------------

struct ItemMatrixTest : public ::testing::Test {
  void SetUp() override {
    types = orderentry::Install(&db).ValueOrDie();
  }
  bool Cell(const std::string& a, const std::string& b) {
    // Representative parameters: all on the same order number.
    Args args_a, args_b;
    if (a == "NewOrder") args_a = {Value(7), Value(1)};
    if (a == "ShipOrder" || a == "PayOrder") args_a = {Value(1)};
    if (b == "NewOrder") args_b = {Value(8), Value(2)};
    if (b == "ShipOrder" || b == "PayOrder") args_b = {Value(1)};
    return db.compat()->Commute(types.item, a, args_a, b, args_b);
  }
  Database db;
  orderentry::OrderEntryTypes types;
};

TEST_F(ItemMatrixTest, Figure2AllCells) {
  const char* m[4] = {"NewOrder", "ShipOrder", "PayOrder", "TotalPayment"};
  const bool expected[4][4] = {
      // NewOrder  ShipOrder  PayOrder  TotalPayment
      {true, false, false, true},   // NewOrder
      {false, false, true, true},   // ShipOrder
      {false, true, false, false},  // PayOrder
      {true, true, false, true},    // TotalPayment
  };
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(Cell(m[i], m[j]), expected[i][j])
          << m[i] << " vs " << m[j];
    }
  }
}

TEST_F(ItemMatrixTest, Figure2IsSymmetric) {
  const char* m[4] = {"NewOrder", "ShipOrder", "PayOrder", "TotalPayment"};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(Cell(m[i], m[j]), Cell(m[j], m[i])) << m[i] << "/" << m[j];
    }
  }
}

TEST_F(ItemMatrixTest, AllFourMethodsDeclared) {
  auto methods = db.compat()->MethodsOf(types.item);
  EXPECT_GE(methods.size(), 4u);
}

TEST(ItemMatrixRefined, ParameterRefinedShipPairs) {
  Database db;
  orderentry::InstallOptions opts;
  opts.parameter_refined_item_matrix = true;
  auto types = orderentry::Install(&db, opts).ValueOrDie();
  // Different order numbers commute; the same order number conflicts.
  EXPECT_TRUE(db.compat()->Commute(types.item, "ShipOrder", {Value(1)},
                                   "ShipOrder", {Value(2)}));
  EXPECT_FALSE(db.compat()->Commute(types.item, "ShipOrder", {Value(1)},
                                    "ShipOrder", {Value(1)}));
  EXPECT_TRUE(db.compat()->Commute(types.item, "PayOrder", {Value(3)},
                                   "PayOrder", {Value(4)}));
  EXPECT_FALSE(db.compat()->Commute(types.item, "PayOrder", {Value(3)},
                                    "PayOrder", {Value(3)}));
}

// --- paper Figure 3 (Order), every cell -------------------------------------

struct OrderMatrixTest : public ItemMatrixTest {
  bool OrderCell(const std::string& a, const std::string& ea,
                 const std::string& b, const std::string& eb) {
    return db.compat()->Commute(types.order, a, {Value(ea)}, b, {Value(eb)});
  }
};

TEST_F(OrderMatrixTest, Figure3AllCells) {
  using orderentry::kPaid;
  using orderentry::kShipped;
  // ChangeStatus commutes with itself regardless of events.
  EXPECT_TRUE(OrderCell("ChangeStatus", kShipped, "ChangeStatus", kShipped));
  EXPECT_TRUE(OrderCell("ChangeStatus", kShipped, "ChangeStatus", kPaid));
  EXPECT_TRUE(OrderCell("ChangeStatus", kPaid, "ChangeStatus", kPaid));
  // ChangeStatus(e) vs TestStatus(e'): conflict iff e == e'.
  EXPECT_FALSE(OrderCell("ChangeStatus", kShipped, "TestStatus", kShipped));
  EXPECT_TRUE(OrderCell("ChangeStatus", kShipped, "TestStatus", kPaid));
  EXPECT_TRUE(OrderCell("ChangeStatus", kPaid, "TestStatus", kShipped));
  EXPECT_FALSE(OrderCell("ChangeStatus", kPaid, "TestStatus", kPaid));
  // TestStatus pairs always commute.
  EXPECT_TRUE(OrderCell("TestStatus", kShipped, "TestStatus", kShipped));
  EXPECT_TRUE(OrderCell("TestStatus", kShipped, "TestStatus", kPaid));
  EXPECT_TRUE(OrderCell("TestStatus", kPaid, "TestStatus", kPaid));
}

TEST_F(OrderMatrixTest, UnchangeStatusBehavesLikeChangeStatus) {
  using orderentry::kPaid;
  using orderentry::kShipped;
  EXPECT_TRUE(OrderCell("UnchangeStatus", kShipped, "ChangeStatus", kPaid));
  EXPECT_TRUE(OrderCell("UnchangeStatus", kShipped, "UnchangeStatus", kPaid));
  EXPECT_FALSE(OrderCell("UnchangeStatus", kShipped, "TestStatus", kShipped));
  EXPECT_TRUE(OrderCell("UnchangeStatus", kShipped, "TestStatus", kPaid));
}

TEST_F(OrderMatrixTest, Figure3IsSymmetric) {
  using orderentry::kPaid;
  using orderentry::kShipped;
  const char* methods[] = {"ChangeStatus", "TestStatus", "UnchangeStatus"};
  const char* events[] = {kShipped, kPaid};
  for (const char* ma : methods) {
    for (const char* mb : methods) {
      for (const char* ea : events) {
        for (const char* eb : events) {
          EXPECT_EQ(OrderCell(ma, ea, mb, eb), OrderCell(mb, eb, ma, ea))
              << ma << "(" << ea << ") vs " << mb << "(" << eb << ")";
        }
      }
    }
  }
}

}  // namespace
}  // namespace semcc
