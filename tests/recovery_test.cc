// Tests for the multi-level recovery extension: log record codec, WAL
// crash semantics, redo replay, and logical (compensation-based) undo of
// loser transactions — including the property that a loser's undo must not
// wipe out a winner's commuting update.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "app/orderentry/order_entry.h"
#include "app/orderentry/workload.h"
#include "core/database.h"
#include "recovery/log_record.h"
#include "recovery/wal.h"

namespace semcc {
namespace {

using namespace orderentry;

// --- log record codec ---------------------------------------------------

TEST(LogRecordCodec, RoundTripAllFields) {
  LogRecord rec;
  rec.lsn = 42;
  rec.type = LogType::kMethodCommit;
  rec.txn = 7;
  rec.subtxn = 8;
  rec.parent = 7;
  rec.object = 99;
  rec.obj_type = 3;
  rec.aux_oid = 55;
  rec.flag = true;
  rec.method = "ShipOrder";
  rec.name = "Items";
  rec.args = {Value(int64_t{1}), Value("shipped"), Value::Ref(12)};
  rec.value = Value(3.25);
  rec.components = {{"a", 1}, {"b", 2}};
  rec.path = {8, 7};
  auto back = LogRecord::Decode(rec.Encode());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  const LogRecord& b = back.ValueOrDie();
  EXPECT_EQ(b.lsn, rec.lsn);
  EXPECT_EQ(b.type, rec.type);
  EXPECT_EQ(b.txn, rec.txn);
  EXPECT_EQ(b.subtxn, rec.subtxn);
  EXPECT_EQ(b.object, rec.object);
  EXPECT_EQ(b.obj_type, rec.obj_type);
  EXPECT_EQ(b.aux_oid, rec.aux_oid);
  EXPECT_EQ(b.flag, rec.flag);
  EXPECT_EQ(b.method, rec.method);
  EXPECT_EQ(b.name, rec.name);
  EXPECT_EQ(b.args, rec.args);
  EXPECT_EQ(b.value, rec.value);
  EXPECT_EQ(b.components, rec.components);
  EXPECT_EQ(b.path, rec.path);
}

TEST(LogRecordCodec, EmptyRecordRoundTrips) {
  LogRecord rec;
  auto back = LogRecord::Decode(rec.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.ValueOrDie().args.empty());
  EXPECT_TRUE(back.ValueOrDie().path.empty());
}

TEST(LogRecordCodec, TruncationRejected) {
  LogRecord rec;
  rec.method = "M";
  std::string bytes = rec.Encode();
  for (size_t cut = 1; cut < bytes.size(); cut += 7) {
    EXPECT_FALSE(LogRecord::Decode(bytes.substr(0, bytes.size() - cut)).ok());
  }
}

// --- WAL ------------------------------------------------------------------

TEST(Wal, AppendAssignsMonotoneLsns) {
  WriteAheadLog wal;
  LogRecord rec;
  Lsn a = wal.Append(rec);
  Lsn b = wal.Append(rec);
  EXPECT_LT(a, b);
  EXPECT_EQ(wal.total_count(), 2u);
  EXPECT_EQ(wal.stable_count(), 0u);
}

TEST(Wal, CrashDropsVolatileTail) {
  WriteAheadLog wal;
  LogRecord rec;
  rec.type = LogType::kTxnBegin;
  rec.txn = 1;
  wal.Append(rec);
  ASSERT_TRUE(wal.Flush().ok());
  rec.txn = 2;
  wal.Append(rec);
  EXPECT_EQ(wal.total_count(), 2u);
  EXPECT_EQ(wal.stable_count(), 1u);
  wal.LoseVolatileTail();
  auto records = wal.AllRecords().ValueOrDie();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, 1u);
}

TEST(Wal, StableRecordsDecodeInOrder) {
  WriteAheadLog wal;
  for (int i = 0; i < 10; ++i) {
    LogRecord rec;
    rec.type = LogType::kAtomWrite;
    rec.object = static_cast<Oid>(i);
    wal.Append(rec);
  }
  ASSERT_TRUE(wal.Flush().ok());
  auto records = wal.StableRecords().ValueOrDie();
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(records[i].object, static_cast<Oid>(i));
    if (i > 0) {
      EXPECT_GT(records[i].lsn, records[i - 1].lsn);
    }
  }
}

// --- end-to-end restart -----------------------------------------------------

struct RecoveryTest : public ::testing::Test {
  std::unique_ptr<Database> MakeWalDb() {
    DatabaseOptions options;
    options.enable_wal = true;
    return std::make_unique<Database>(options);
  }
  /// Fresh database with schema/methods registered but no objects, ready to
  /// replay a log into.
  std::unique_ptr<Database> MakeRecoveryTarget() {
    DatabaseOptions options;
    options.enable_wal = true;
    auto db = std::make_unique<Database>(options);
    InstallOptions iopts;
    iopts.register_only = true;
    (void)Install(db.get(), iopts).ValueOrDie();
    return db;
  }
};

TEST_F(RecoveryTest, CommittedWorkSurvivesRestart) {
  auto db = MakeWalDb();
  auto types = Install(db.get()).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 3;
  spec.orders_per_item = 4;
  spec.initial_qoh = 100;
  auto data = Load(db.get(), types, spec).ValueOrDie();
  ASSERT_TRUE(db->RunTransaction(
                    "t1", T1_ShipTwoOrders(data.item_oids[0], 1,
                                           data.item_oids[1], 2)).ok());
  ASSERT_TRUE(db->RunTransaction(
                    "t2", T2_PayTwoOrders(data.item_oids[0], 1,
                                          data.item_oids[2], 3)).ok());
  const int64_t qoh0 = ReadQohRaw(db.get(), data.item_oids[0]).ValueOrDie();

  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db->wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie().losers, 0u);
  EXPECT_EQ(stats.ValueOrDie().winners, 2u);

  // Same oids, same state.
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  EXPECT_EQ(items, types.items);
  Oid item0 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  EXPECT_EQ(item0, data.item_oids[0]);
  EXPECT_EQ(ReadQohRaw(db2.get(), item0).ValueOrDie(), qoh0);
  Oid o1 = FindOrder(db2.get(), item0, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(db2.get(), o1).ValueOrDie(),
            kEventShippedBit | kEventPaidBit);
}

TEST_F(RecoveryTest, LoserShipOrderIsCompensatedAtRestart) {
  auto db = MakeWalDb();
  auto types = Install(db.get()).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 2;
  spec.initial_qoh = 50;
  auto data = Load(db.get(), types, spec).ValueOrDie();
  Oid item = data.item_oids[0];

  // An in-flight transaction: ShipOrder committed as a subtransaction, but
  // the top level neither commits nor aborts — then the system "crashes".
  {
    TxnTree tree(TxnTree::NextId(), "loser", kDatabaseOid,
                 Schema::kDatabaseTypeId);
    TxnCtx ctx(db->store(), db->locks(), db->methods(), &tree, db->recovery());
    db->recovery()->OnTxnBegin(tree.root()->id());
    ASSERT_TRUE(ctx.Invoke(item, "ShipOrder", {Value(1)}).ok());
    ASSERT_TRUE(db->wal()->Flush().ok());  // work reached disk, commit did not
  }
  // The damage is visible pre-crash.
  ASSERT_LT(ReadQohRaw(db.get(), item).ValueOrDie(), 50);

  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db->wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie().losers, 1u);
  EXPECT_GE(stats.ValueOrDie().inverses_run, 1u);

  // Fully rolled back: QuantityOnHand restored, shipped bit cleared.
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item2 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  EXPECT_EQ(ReadQohRaw(db2.get(), item2).ValueOrDie(), 50);
  Oid o1 = FindOrder(db2.get(), item2, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(db2.get(), o1).ValueOrDie(), 0);
}

TEST_F(RecoveryTest, LoserUndoPreservesWinnersCommutingUpdate) {
  // The multi-level recovery property at restart (mirrors the online test
  // TxnTestBase.CompensationIsSemanticNotPhysical): T_loser shipped order 1,
  // then T_winner PAID the same order and committed; the crash-time undo of
  // T_loser must remove only the shipped bit.
  auto db = MakeWalDb();
  auto types = Install(db.get()).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 2;
  auto data = Load(db.get(), types, spec).ValueOrDie();
  Oid item = data.item_oids[0];
  {
    TxnTree tree(TxnTree::NextId(), "loser", kDatabaseOid,
                 Schema::kDatabaseTypeId);
    TxnCtx ctx(db->store(), db->locks(), db->methods(), &tree, db->recovery());
    db->recovery()->OnTxnBegin(tree.root()->id());
    ASSERT_TRUE(ctx.Invoke(item, "ShipOrder", {Value(1)}).ok());
    // Winner pays the same order while the loser is still in flight — legal,
    // ShipOrder and PayOrder commute (Figure 2).
    ASSERT_TRUE(db->RunTransaction(
                      "winner", T2_PayTwoOrders(item, 1, data.item_oids[1], 1))
                    .ok());
    ASSERT_TRUE(db->wal()->Flush().ok());
  }
  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db->wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.ValueOrDie().losers, 1u);
  EXPECT_EQ(stats.ValueOrDie().winners, 1u);

  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item2 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  Oid o1 = FindOrder(db2.get(), item2, 1).ValueOrDie();
  const int64_t status = ReadStatusRaw(db2.get(), o1).ValueOrDie();
  EXPECT_EQ(status & kEventShippedBit, 0) << "loser's bit must be gone";
  EXPECT_EQ(status & kEventPaidBit, kEventPaidBit) << "winner's bit survives";
}

TEST_F(RecoveryTest, LoserNewOrderRemovedAtRestart) {
  auto db = MakeWalDb();
  auto types = Install(db.get()).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 1;
  spec.orders_per_item = 2;
  auto data = Load(db.get(), types, spec).ValueOrDie();
  Oid item = data.item_oids[0];
  {
    TxnTree tree(TxnTree::NextId(), "loser", kDatabaseOid,
                 Schema::kDatabaseTypeId);
    TxnCtx ctx(db->store(), db->locks(), db->methods(), &tree, db->recovery());
    db->recovery()->OnTxnBegin(tree.root()->id());
    auto ono = ctx.Invoke(item, "NewOrder", {Value(9), Value(4)});
    ASSERT_TRUE(ono.ok());
    EXPECT_EQ(ono.ValueOrDie().AsInt(), 3);
    ASSERT_TRUE(db->wal()->Flush().ok());
  }
  auto db2 = MakeRecoveryTarget();
  ASSERT_TRUE(db2->RecoverFrom(db->wal()->StableRecords().ValueOrDie()).ok());
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item2 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  Oid orders = db2->store()->Component(item2, "Orders").ValueOrDie();
  EXPECT_EQ(db2->store()->SetSize(orders).ValueOrDie(), 2u);
  EXPECT_TRUE(db2->store()->SetSelect(orders, Value(3)).status().IsNotFound());
}

TEST_F(RecoveryTest, UncommittedLeafOnlyWorkIsPhysicallyUndone) {
  // A bypassing transaction wrote an atom directly; its enclosing method
  // never existed, so restart must use the leaf before-image.
  auto db = MakeWalDb();
  auto types = Install(db.get()).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 1;
  spec.orders_per_item = 1;
  auto data = Load(db.get(), types, spec).ValueOrDie();
  Oid item = data.item_oids[0];
  Oid o1 = FindOrder(db.get(), item, 1).ValueOrDie();
  Oid status_atom = db->store()->Component(o1, "Status").ValueOrDie();
  {
    TxnTree tree(TxnTree::NextId(), "loser", kDatabaseOid,
                 Schema::kDatabaseTypeId);
    TxnCtx ctx(db->store(), db->locks(), db->methods(), &tree, db->recovery());
    db->recovery()->OnTxnBegin(tree.root()->id());
    ASSERT_TRUE(ctx.Put(status_atom, Value(int64_t{3})).ok());  // raw bypass
    ASSERT_TRUE(db->wal()->Flush().ok());
  }
  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db->wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.ValueOrDie().leaf_undos, 1u);
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item2 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  Oid o1b = FindOrder(db2.get(), item2, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(db2.get(), o1b).ValueOrDie(), 0);
}

TEST_F(RecoveryTest, VolatileTailLossDropsUnflushedWork) {
  auto db = MakeWalDb();
  auto types = Install(db.get()).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 1;
  spec.orders_per_item = 1;
  auto data = Load(db.get(), types, spec).ValueOrDie();
  ASSERT_TRUE(db->wal()->Flush().ok());
  const size_t stable_before = db->wal()->stable_count();
  // A committed transaction forces the log (survives)...
  ASSERT_TRUE(db->RunTransaction("t", T2_PayTwoOrders(data.item_oids[0], 1,
                                                      data.item_oids[0], 1))
                  .ok());
  // ...then an in-flight transaction appends without flushing (lost).
  {
    TxnTree tree(TxnTree::NextId(), "loser", kDatabaseOid,
                 Schema::kDatabaseTypeId);
    TxnCtx ctx(db->store(), db->locks(), db->methods(), &tree, db->recovery());
    db->recovery()->OnTxnBegin(tree.root()->id());
    ASSERT_TRUE(ctx.Invoke(data.item_oids[0], "ShipOrder", {Value(1)}).ok());
  }
  db->wal()->LoseVolatileTail();
  EXPECT_GT(db->wal()->stable_count(), stable_before);

  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db->wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok());
  // The unflushed ShipOrder never happened; the committed PayOrder did.
  EXPECT_EQ(stats.ValueOrDie().losers, 0u);
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item2 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  Oid o1 = FindOrder(db2.get(), item2, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(db2.get(), o1).ValueOrDie(), kEventPaidBit);
}

TEST_F(RecoveryTest, RecoveredDatabaseKeepsWorkingAndChains) {
  auto db = MakeWalDb();
  auto types = Install(db.get()).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 2;
  auto data = Load(db.get(), types, spec).ValueOrDie();
  ASSERT_TRUE(db->RunTransaction("t", T2_PayTwoOrders(data.item_oids[0], 1,
                                                      data.item_oids[1], 1))
                  .ok());
  // First restart.
  auto db2 = MakeRecoveryTarget();
  ASSERT_TRUE(db2->RecoverFrom(db->wal()->StableRecords().ValueOrDie()).ok());
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item0 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  Oid item1 = db2->store()->SetSelect(items, Value(2)).ValueOrDie();
  // New work on the recovered database.
  ASSERT_TRUE(db2->RunTransaction("t", T1_ShipTwoOrders(item0, 1, item1, 2)).ok());
  // Second restart, from the NEW database's log (which was seeded by replay).
  auto db3 = MakeRecoveryTarget();
  ASSERT_TRUE(db3->RecoverFrom(db2->wal()->StableRecords().ValueOrDie()).ok());
  Oid items3 = db3->GetNamedRoot("Items").ValueOrDie();
  Oid item0c = db3->store()->SetSelect(items3, Value(1)).ValueOrDie();
  Oid o1 = FindOrder(db3.get(), item0c, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(db3.get(), o1).ValueOrDie(),
            kEventShippedBit | kEventPaidBit);
}

TEST_F(RecoveryTest, ConcurrentWorkloadSurvivesRestartConsistently) {
  DatabaseOptions options;
  options.enable_wal = true;
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  WorkloadOptions wopts;
  wopts.load.num_items = 4;
  wopts.load.orders_per_item = 4;
  wopts.load.initial_qoh = 100000;
  wopts.seed = 99;
  OrderEntryWorkload workload(&db, types, wopts);
  ASSERT_TRUE(workload.Setup().ok());
  auto result = workload.Run(/*threads=*/4, /*txns_per_thread=*/50);
  EXPECT_GT(result.committed, 100u);
  // Probe the pre-crash state.
  std::vector<int64_t> qoh_before;
  for (Oid item : workload.data().item_oids) {
    qoh_before.push_back(ReadQohRaw(&db, item).ValueOrDie());
  }
  // Restart.
  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db.wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie().losers, 0u);  // everything finished
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  for (size_t i = 0; i < workload.data().item_oids.size(); ++i) {
    Oid item = db2->store()
                   ->SetSelect(items, Value(static_cast<int64_t>(i) + 1))
                   .ValueOrDie();
    EXPECT_EQ(ReadQohRaw(db2.get(), item).ValueOrDie(), qoh_before[i])
        << "item " << i;
  }
}

TEST_F(RecoveryTest, RecoverIntoNonEmptyDatabaseRejected) {
  auto db = MakeWalDb();
  (void)Install(db.get()).ValueOrDie();  // creates the Items set
  auto st = db->RecoverFrom({});
  EXPECT_TRUE(st.status().IsPreconditionFailed());
}

TEST_F(RecoveryTest, GroupCommitIsDurableAndBatchesFlushes) {
  DatabaseOptions options;
  options.enable_wal = true;
  options.recovery.group_commit = true;
  options.recovery.group_window = std::chrono::microseconds(300);
  options.recovery.wal_flush_micros = 200;  // slow fsync: committers pile up
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 8;
  spec.orders_per_item = 2;
  auto data = Load(&db, types, spec).ValueOrDie();

  // Concurrent committers on DISJOINT items (no lock conflicts, so commits
  // genuinely overlap and share group flushes).
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      Oid a = data.item_oids[static_cast<size_t>(t) * 2];
      Oid b = data.item_oids[static_cast<size_t>(t) * 2 + 1];
      for (int i = 0; i < 25; ++i) {
        ASSERT_TRUE(db.RunTransaction("t", T2_PayTwoOrders(a, 1, b, 1)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every commit was made durable...
  EXPECT_GE(db.wal()->stable_count(), 100u);
  // ...with fewer device writes than commits (the group-commit win).
  EXPECT_LT(db.wal()->flush_count(), 80u);

  // And the crash-recovery contract still holds.
  db.wal()->LoseVolatileTail();
  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db.wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie().winners, 100u);
  EXPECT_EQ(stats.ValueOrDie().losers, 0u);
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  Oid o1 = FindOrder(db2.get(), item, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(db2.get(), o1).ValueOrDie(), kEventPaidBit);
}

TEST_F(RecoveryTest, CheckpointedRestartReplaysFromImage) {
  // After a truncating checkpoint, the log prefix is gone: restart must
  // rebuild pre-checkpoint state purely from the dumped image, then replay
  // the tail on top of it.
  DatabaseOptions options;
  options.enable_wal = true;
  options.recovery.checkpoint_truncate = true;
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 2;
  auto data = Load(&db, types, spec).ValueOrDie();
  ASSERT_TRUE(db.RunTransaction("pre", T2_PayTwoOrders(data.item_oids[0], 1,
                                                       data.item_oids[1], 1))
                  .ok());
  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_GT(db.wal()->truncated_count(), 0u);
  ASSERT_TRUE(db.RunTransaction("post", T1_ShipTwoOrders(data.item_oids[0], 1,
                                                         data.item_oids[1], 2))
                  .ok());

  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db.wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.ValueOrDie().used_checkpoint);
  EXPECT_EQ(stats.ValueOrDie().losers, 0u);
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  EXPECT_EQ(items, types.items);
  Oid item0 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  EXPECT_EQ(item0, data.item_oids[0]);
  Oid o1 = FindOrder(db2.get(), item0, 1).ValueOrDie();
  // Paid before the checkpoint, shipped after: both effects survive.
  EXPECT_EQ(ReadStatusRaw(db2.get(), o1).ValueOrDie(),
            kEventShippedBit | kEventPaidBit);
}

TEST_F(RecoveryTest, AutoCheckpointBoundsWalMemory) {
  // The WAL used to retain every record ever appended; with periodic
  // truncating checkpoints its in-memory footprint must plateau instead of
  // growing linearly with committed transactions.
  DatabaseOptions options;
  options.enable_wal = true;
  options.recovery.checkpoint_every_records = 64;
  options.recovery.checkpoint_truncate = true;
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 1;
  spec.initial_qoh = 1'000'000;
  auto data = Load(&db, types, spec).ValueOrDie();

  size_t retained_half = 0;
  const int kTxns = 300;
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(db.RunTransaction("t", T2_PayTwoOrders(data.item_oids[0], 1,
                                                       data.item_oids[1], 1))
                    .ok());
    if (i == kTxns / 2) retained_half = db.wal()->retained_count();
  }
  const size_t retained_full = db.wal()->retained_count();
  const size_t total = db.wal()->total_count();
  EXPECT_GT(db.wal()->truncated_count(), total / 2)
      << "checkpoints did not reclaim the bulk of the log";
  // Doubling the transaction count must not double the retained window:
  // allow one checkpoint cycle of slack, not linear growth.
  EXPECT_LT(retained_full, retained_half + 2 * 64 + 64)
      << "WAL memory still grows linearly with committed transactions "
      << "(half=" << retained_half << " full=" << retained_full << ")";
  // Logical counters stay monotonic across all that truncation.
  EXPECT_EQ(db.wal()->stable_count(),
            db.wal()->truncated_count() + retained_full);
  // And the bounded log still restarts correctly.
  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db.wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats.ValueOrDie().used_checkpoint);
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  Oid item0 = db2->store()->SetSelect(items, Value(1)).ValueOrDie();
  Oid o1 = FindOrder(db2.get(), item0, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(db2.get(), o1).ValueOrDie(), kEventPaidBit);
}

TEST_F(RecoveryTest, FuzzyCheckpointConcurrentWithWriters) {
  // Checkpoints taken while committers are running: the dump interleaves
  // with live transactions, and restart from the resulting (truncated) log
  // must still reproduce the exact final state.
  DatabaseOptions options;
  options.enable_wal = true;
  options.recovery.group_commit = true;
  options.recovery.checkpoint_truncate = true;
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 8;
  spec.orders_per_item = 1;
  spec.initial_qoh = 1'000'000;
  auto data = Load(&db, types, spec).ValueOrDie();

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t]() {
      Oid a = data.item_oids[static_cast<size_t>(t) * 2];
      Oid b = data.item_oids[static_cast<size_t>(t) * 2 + 1];
      for (int i = 0; i < 25; ++i) {
        ASSERT_TRUE(db.RunTransaction("t", T2_PayTwoOrders(a, 1, b, 1)).ok());
      }
    });
  }
  std::thread checkpointer([&]() {
    while (!done.load()) {
      ASSERT_TRUE(db.Checkpoint().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& th : threads) th.join();
  done.store(true);
  checkpointer.join();
  EXPECT_TRUE(db.recovery()->health().ok());

  std::vector<int64_t> qoh_before;
  for (Oid item : data.item_oids) {
    qoh_before.push_back(ReadQohRaw(&db, item).ValueOrDie());
  }
  auto db2 = MakeRecoveryTarget();
  auto stats = db2->RecoverFrom(db.wal()->StableRecords().ValueOrDie());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.ValueOrDie().losers, 0u);
  Oid items = db2->GetNamedRoot("Items").ValueOrDie();
  for (size_t i = 0; i < data.item_oids.size(); ++i) {
    Oid item = db2->store()
                   ->SetSelect(items, Value(static_cast<int64_t>(i) + 1))
                   .ValueOrDie();
    EXPECT_EQ(ReadQohRaw(db2.get(), item).ValueOrDie(), qoh_before[i])
        << "item " << i;
  }
}

TEST_F(RecoveryTest, NamedRootsAreDurable) {
  auto db = MakeWalDb();
  TypeId num = db->schema()->DefineAtomicType("Num").ValueOrDie();
  Oid a = db->store()->CreateAtomic(num, Value(int64_t{5})).ValueOrDie();
  ASSERT_TRUE(db->SetNamedRoot("answer", a).ok());
  DatabaseOptions options;
  options.enable_wal = true;
  Database db2(options);
  (void)db2.schema()->DefineAtomicType("Num").ValueOrDie();
  ASSERT_TRUE(db2.RecoverFrom(db->wal()->StableRecords().ValueOrDie()).ok());
  Oid back = db2.GetNamedRoot("answer").ValueOrDie();
  EXPECT_EQ(back, a);
  EXPECT_EQ(db2.store()->Get(back).ValueOrDie().AsInt(), 5);
  EXPECT_TRUE(db2.GetNamedRoot("missing").status().IsNotFound());
}

}  // namespace
}  // namespace semcc
