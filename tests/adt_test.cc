// Tests for the reusable ADT components: Counter and the paper's §1.1
// Queue, including the ADT-built-from-an-ADT concurrency behavior (inner
// Counter.Next conflicts relieved by outer Enqueue/Enqueue commutativity).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "adt/standard_adts.h"
#include "core/serializability.h"
#include "util/annotations.h"
#include "util/sync.h"

namespace semcc {
namespace adt {
namespace {

struct CounterTest : public ::testing::Test {
  void SetUp() override {
    type = InstallCounter(&db).ValueOrDie();
    counter = NewCounter(&db, type, 10).ValueOrDie();
  }
  Result<Value> Call(const std::string& m, Args a = {}) {
    // NOTE: transaction bodies are re-executed on retry — never move
    // captured state out of them.
    return db.RunTransaction(m, [&](TxnCtx& ctx) {
      return ctx.Invoke(counter, m, a);
    });
  }
  Database db;
  CounterType type;
  Oid counter = kInvalidOid;
};

TEST_F(CounterTest, IncrementDecrementRead) {
  ASSERT_TRUE(Call("Increment", {Value(5)}).ok());
  ASSERT_TRUE(Call("Decrement", {Value(3)}).ok());
  EXPECT_EQ(Call("Read").ValueOrDie().AsInt(), 12);
}

TEST_F(CounterTest, NextReturnsAndAdvances) {
  EXPECT_EQ(Call("Next").ValueOrDie().AsInt(), 11);
  EXPECT_EQ(Call("Next").ValueOrDie().AsInt(), 12);
  EXPECT_EQ(Call("Read").ValueOrDie().AsInt(), 12);
}

TEST_F(CounterTest, ConcurrentBlindUpdatesNeverLost) {
  constexpr int kThreads = 8;
  constexpr int kOps = 200;
  std::vector<std::thread> threads;
  Mutex fail_mu;
  std::vector<std::string> failures;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kOps; ++i) {
        auto r = Call("Increment", {Value(1)});
        if (!r.ok()) {
          MutexLock guard(fail_mu);
          failures.push_back(r.status().ToString());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(failures.empty()) << failures.size() << " failed, first: "
                                << failures.front();
  EXPECT_EQ(Call("Read").ValueOrDie().AsInt(), 10 + kThreads * kOps);
  SemanticSerializabilityChecker checker(db.compat());
  EXPECT_TRUE(checker.Check(db.history()->Snapshot()).serializable);
}

TEST_F(CounterTest, AbortCompensatesThroughInverseMethod) {
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(counter, "Increment", {Value(7)}));
    (void)a;
    return Status::PreconditionFailed("abort");
  });
  EXPECT_TRUE(r.status().IsPreconditionFailed());
  EXPECT_EQ(Call("Read").ValueOrDie().AsInt(), 10);
}

TEST_F(CounterTest, MethodMayInvokeMethodOnSameObject) {
  // Paper footnote 3: "a method is allowed to operate on the same object as
  // one of its ancestors."
  ASSERT_TRUE(db.RegisterMethod(
                    {type.counter, "Bump2", false,
                     [](TxnCtx& ctx, Oid self, const Args&) -> Result<Value> {
                       SEMCC_ASSIGN_OR_RETURN(
                           Value a, ctx.Invoke(self, "Increment", {Value(1)}));
                       (void)a;
                       return ctx.Invoke(self, "Increment", {Value(1)});
                     },
                     [](TxnCtx& ctx, Oid self, const Args&, const Value&) {
                       auto r = ctx.Invoke(self, "Decrement", {Value(2)});
                       return r.ok() ? Status::OK() : r.status();
                     }})
                  .ok());
  ASSERT_TRUE(Call("Bump2").ok());
  EXPECT_EQ(Call("Read").ValueOrDie().AsInt(), 12);
}

struct QueueTest : public ::testing::Test {
  void SetUp() override {
    type = InstallQueue(&db).ValueOrDie();
    queue = NewQueue(&db, type).ValueOrDie();
  }
  Result<Value> Call(const std::string& m, Args a = {}) {
    return db.RunTransaction(m, [&](TxnCtx& ctx) {
      return ctx.Invoke(queue, m, a);
    });
  }
  Database db;
  QueueType type;
  Oid queue = kInvalidOid;
};

TEST_F(QueueTest, FifoOrder) {
  for (int64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(Call("Enqueue", {Value(i * 100)}).ok());
  }
  EXPECT_EQ(Call("Size").ValueOrDie().AsInt(), 5);
  EXPECT_EQ(Call("Front").ValueOrDie().AsInt(), 100);
  for (int64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(Call("Dequeue").ValueOrDie().AsInt(), i * 100);
  }
  EXPECT_EQ(Call("Size").ValueOrDie().AsInt(), 0);
}

TEST_F(QueueTest, DequeueEmptyFails) {
  EXPECT_TRUE(Call("Dequeue").status().IsPreconditionFailed());
  EXPECT_TRUE(Call("Front").status().IsPreconditionFailed());
}

TEST_F(QueueTest, EnqueueAbortLeavesHarmlessHole) {
  ASSERT_TRUE(Call("Enqueue", {Value(1)}).ok());
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value p, ctx.Invoke(queue, "Enqueue", {Value(2)}));
    (void)p;
    return Status::PreconditionFailed("abort");
  });
  EXPECT_TRUE(r.status().IsPreconditionFailed());
  ASSERT_TRUE(Call("Enqueue", {Value(3)}).ok());
  EXPECT_EQ(Call("Size").ValueOrDie().AsInt(), 2);
  EXPECT_EQ(Call("Dequeue").ValueOrDie().AsInt(), 1);
  EXPECT_EQ(Call("Dequeue").ValueOrDie().AsInt(), 3);  // 2 never existed
}

TEST_F(QueueTest, DequeueAbortRestoresFront) {
  ASSERT_TRUE(Call("Enqueue", {Value(1)}).ok());
  ASSERT_TRUE(Call("Enqueue", {Value(2)}).ok());
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Invoke(queue, "Dequeue", {}));
    EXPECT_EQ(v.AsInt(), 1);
    return Status::PreconditionFailed("abort");
  });
  EXPECT_TRUE(r.status().IsPreconditionFailed());
  EXPECT_EQ(Call("Size").ValueOrDie().AsInt(), 2);
  EXPECT_EQ(Call("Dequeue").ValueOrDie().AsInt(), 1);  // back at the front
  EXPECT_EQ(Call("Dequeue").ValueOrDie().AsInt(), 2);
}

TEST_F(QueueTest, ConcurrentEnqueuesAllLandAndDoNotBlockAtTxnLevel) {
  // The paper's §1.1 example, end to end: concurrent Enqueues commute.
  constexpr int kThreads = 8;
  constexpr int kOps = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kOps; ++i) {
        ASSERT_TRUE(
            Call("Enqueue", {Value(int64_t{t * 1000 + i})}).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(Call("Size").ValueOrDie().AsInt(), kThreads * kOps);
  // Enqueue/Enqueue never waits for a top-level commit: the only blocking is
  // the Case-2 wait on the inner Counter.Next subtransaction.
  EXPECT_EQ(db.locks()->stats().root_waits, 0u);
  // Drain: every element exactly once.
  std::set<int64_t> seen;
  for (int i = 0; i < kThreads * kOps; ++i) {
    auto v = Call("Dequeue");
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(seen.insert(v.ValueOrDie().AsInt()).second);
  }
  SemanticSerializabilityChecker checker(db.compat());
  auto check = checker.Check(db.history()->Snapshot());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

TEST_F(QueueTest, InnerCounterConflictIsRelievedByOuterCommutativity) {
  // Two enqueues from different transactions where the second arrives while
  // the first is still inside its top-level transaction: the Counter.Next
  // pair conflicts, but (Enqueue, Enqueue) commute -> Case 1 (the first
  // Enqueue subtransaction is committed when the second runs).
  ScriptedSchedule sched;
  std::thread t1([&]() {
    auto r = db.RunTransactionOnce("e1", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value p, ctx.Invoke(queue, "Enqueue", {Value(1)}));
      (void)p;
      sched.Signal("first.done");
      sched.WaitFor("second.done", std::chrono::milliseconds(2000));
      return Value();
    });
    EXPECT_TRUE(r.ok());
  });
  std::thread t2([&]() {
    sched.WaitFor("first.done");
    auto r = db.RunTransactionOnce("e2", [&](TxnCtx& ctx) {
      return ctx.Invoke(queue, "Enqueue", {Value(2)});
    });
    EXPECT_TRUE(r.ok());
    sched.Signal("second.done");
  });
  t1.join();
  t2.join();
  EXPECT_GE(db.locks()->stats().case1_grants +
                db.locks()->stats().case2_waits,
            1u);
  EXPECT_EQ(db.locks()->stats().root_waits, 0u);
  EXPECT_EQ(Call("Size").ValueOrDie().AsInt(), 2);
}

TEST_F(QueueTest, MixedProducersConsumersStayConsistent) {
  std::atomic<int64_t> produced{0};
  std::atomic<int64_t> consumed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 100; ++i) {
        if (Call("Enqueue", {Value(1)}).ok()) produced.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 150; ++i) {
        auto r = Call("Dequeue");
        if (r.ok()) consumed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(Call("Size").ValueOrDie().AsInt(),
            produced.load() - consumed.load());
}

TEST(AdtInstall, QueueInstallsCounterOnce) {
  Database db;
  auto q = InstallQueue(&db).ValueOrDie();
  auto c = InstallCounter(&db).ValueOrDie();  // idempotent
  EXPECT_EQ(q.counter.counter, c.counter);
}

TEST(AdtInstall, CounterMatrixMatchesSpec) {
  Database db;
  auto t = InstallCounter(&db).ValueOrDie();
  CompatibilityRegistry* c = db.compat();
  EXPECT_TRUE(c->Commute(t.counter, "Increment", {Value(1)}, "Decrement", {Value(2)}));
  EXPECT_FALSE(c->Commute(t.counter, "Next", {}, "Next", {}));
  EXPECT_FALSE(c->Commute(t.counter, "Read", {}, "Increment", {Value(1)}));
  EXPECT_TRUE(c->Commute(t.counter, "Read", {}, "Read", {}));
}

}  // namespace
}  // namespace adt
}  // namespace semcc
