// Tests for record forwarding (grow-beyond-page relocation with stable
// RIDs) and the WAL under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "recovery/wal.h"
#include "storage/buffer_pool.h"
#include "storage/record_manager.h"

namespace semcc {
namespace {

struct ForwardingTest : public ::testing::Test {
  ForwardingTest() : pool(32, &disk), rm(&pool) {}
  DiskManager disk;
  BufferPool pool;
  RecordManager rm;
};

TEST_F(ForwardingTest, GrowBeyondPageKeepsRidValid) {
  // Fill the current page so the grown record cannot stay.
  Rid victim = rm.Insert("small").ValueOrDie();
  while (true) {
    auto r = rm.Insert(std::string(200, 'f'));
    ASSERT_TRUE(r.ok());
    if (r.ValueOrDie().page_id != victim.page_id) break;  // page rolled over
  }
  // Grow far beyond what the original page can hold.
  const std::string big(3000, 'B');
  ASSERT_TRUE(rm.Update(victim, big).ok());
  EXPECT_EQ(rm.Read(victim).ValueOrDie(), big);
}

TEST_F(ForwardingTest, RepeatedGrowthKeepsChainShort) {
  Rid victim = rm.Insert("x").ValueOrDie();
  while (true) {
    auto r = rm.Insert(std::string(200, 'f'));
    ASSERT_TRUE(r.ok());
    if (r.ValueOrDie().page_id != victim.page_id) break;
  }
  // Grow repeatedly; every update must stay readable through the entry rid.
  for (int i = 1; i <= 12; ++i) {
    std::string payload(static_cast<size_t>(i) * 300, static_cast<char>('a' + i));
    ASSERT_TRUE(rm.Update(victim, payload).ok()) << "iteration " << i;
    EXPECT_EQ(rm.Read(victim).ValueOrDie(), payload);
  }
  // Shrinking again works too (lands in whatever page currently hosts it).
  ASSERT_TRUE(rm.Update(victim, "tiny").ok());
  EXPECT_EQ(rm.Read(victim).ValueOrDie(), "tiny");
}

TEST_F(ForwardingTest, DeleteThroughForwardRemovesBothEnds) {
  Rid victim = rm.Insert("y").ValueOrDie();
  while (true) {
    auto r = rm.Insert(std::string(200, 'f'));
    ASSERT_TRUE(r.ok());
    if (r.ValueOrDie().page_id != victim.page_id) break;
  }
  ASSERT_TRUE(rm.Update(victim, std::string(3000, 'Z')).ok());
  ASSERT_TRUE(rm.Delete(victim).ok());
  EXPECT_TRUE(rm.Read(victim).status().IsNotFound());
  EXPECT_TRUE(rm.Delete(victim).IsNotFound());
}

TEST_F(ForwardingTest, EmptyPayloadRecordsWork) {
  Rid rid = rm.Insert("").ValueOrDie();
  EXPECT_EQ(rm.Read(rid).ValueOrDie(), "");
  ASSERT_TRUE(rm.Update(rid, std::string(2000, 'q')).ok());
  EXPECT_EQ(rm.Read(rid).ValueOrDie().size(), 2000u);
}

// --- WAL under concurrency ------------------------------------------------

TEST(WalConcurrency, ParallelAppendsGetUniqueMonotoneLsns) {
  WriteAheadLog wal;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec;
        rec.type = LogType::kAtomWrite;
        rec.object = static_cast<Oid>(t);
        rec.value = Value(static_cast<int64_t>(i));
        wal.Append(rec);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(wal.Flush().ok());
  auto records = wal.StableRecords().ValueOrDie();
  ASSERT_EQ(records.size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<Lsn> lsns;
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(lsns.insert(records[i].lsn).second);
    if (i > 0) {
      EXPECT_GT(records[i].lsn, records[i - 1].lsn);
    }
  }
  // Per-producer order preserved.
  std::map<Oid, int64_t> last;
  for (const LogRecord& rec : records) {
    auto it = last.find(rec.object);
    if (it != last.end()) {
      EXPECT_GT(rec.value.AsInt(), it->second);
    }
    last[rec.object] = rec.value.AsInt();
  }
}

TEST(WalConcurrency, FlushRacesWithAppends) {
  WriteAheadLog wal;
  std::atomic<bool> stop{false};
  std::thread appender([&]() {
    // Bounded producer: an unthrottled append loop can outrun the flush
    // loop indefinitely on a loaded single-core machine (StableRecords
    // decodes everything stable, so the log must stay bounded for the test
    // to terminate). 200k appends still overlap all 200 flushes.
    for (int i = 0; i < 200000 && !stop.load(); ++i) {
      LogRecord rec;
      rec.type = LogType::kTxnBegin;
      wal.Append(rec);
    }
  });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(wal.Flush().ok());
    // Decodes everything stable.
    auto records = wal.StableRecords().ValueOrDie();
    EXPECT_LE(records.size(), wal.total_count());
  }
  stop.store(true);
  appender.join();
}

}  // namespace
}  // namespace semcc
