// Tests for the object-assembly query module (the generic bypassing reader
// of paper §1.1): path parsing, navigation, assembly, and its concurrency
// behavior against method-invoking transactions.
#include <gtest/gtest.h>

#include <thread>

#include "app/orderentry/order_entry.h"
#include "core/serializability.h"
#include "query/object_assembly.h"
#include "util/sync.h"

namespace semcc {
namespace query {
namespace {

using namespace orderentry;

// --- parsing --------------------------------------------------------------

TEST(PathParse, SimpleComponent) {
  auto p = PathExpr::Parse("Status").ValueOrDie();
  ASSERT_EQ(p.steps().size(), 1u);
  EXPECT_EQ(p.steps()[0].kind, PathStep::Kind::kComponent);
  EXPECT_EQ(p.ToString(), "Status");
}

TEST(PathParse, KeyedSelection) {
  auto p = PathExpr::Parse("Orders[3].Status").ValueOrDie();
  ASSERT_EQ(p.steps().size(), 3u);
  EXPECT_EQ(p.steps()[1].kind, PathStep::Kind::kSelect);
  EXPECT_EQ(p.steps()[1].key, Value(int64_t{3}));
  EXPECT_EQ(p.ToString(), "Orders[3].Status");
}

TEST(PathParse, StringKeyAndScan) {
  auto p = PathExpr::Parse("Items[\"widget\"].Orders[*].Quantity").ValueOrDie();
  ASSERT_EQ(p.steps().size(), 5u);
  EXPECT_EQ(p.steps()[1].key, Value("widget"));
  EXPECT_EQ(p.steps()[3].kind, PathStep::Kind::kScan);
}

TEST(PathParse, NegativeKey) {
  auto p = PathExpr::Parse("S[-5]").ValueOrDie();
  EXPECT_EQ(p.steps()[1].key, Value(int64_t{-5}));
}

TEST(PathParse, Rejections) {
  EXPECT_FALSE(PathExpr::Parse("").ok());
  EXPECT_FALSE(PathExpr::Parse(".x").ok());
  EXPECT_FALSE(PathExpr::Parse("a.").ok());
  EXPECT_FALSE(PathExpr::Parse("a[").ok());
  EXPECT_FALSE(PathExpr::Parse("a[]").ok());
  EXPECT_FALSE(PathExpr::Parse("a[\"x]").ok());
  EXPECT_FALSE(PathExpr::Parse("a[3").ok());
  EXPECT_FALSE(PathExpr::Parse("a b").ok());
}

// --- evaluation over the order-entry schema -----------------------------------

struct QueryEval : public ::testing::Test {
  void SetUp() override {
    types = Install(&db).ValueOrDie();
    LoadSpec spec;
    spec.num_items = 2;
    spec.orders_per_item = 3;
    spec.initial_qoh = 77;
    spec.price_cents = 100;
    data = Load(&db, types, spec).ValueOrDie();
  }
  Result<std::vector<Value>> Read(Oid root, const std::string& path) {
    PathExpr expr = PathExpr::Parse(path).ValueOrDie();
    return db.RunTransaction("q", [&](TxnCtx& ctx) -> Result<Value> {
      auto values = expr.ReadValues(ctx, root);
      if (!values.ok()) return values.status();
      out = values.ValueOrDie();
      return Value();
    }).ok()
               ? Result<std::vector<Value>>(out)
               : Result<std::vector<Value>>(Status::Internal("query failed"));
  }
  Database db;
  OrderEntryTypes types;
  LoadedData data;
  std::vector<Value> out;
};

TEST_F(QueryEval, ReadsScalarComponent) {
  auto values = Read(data.item_oids[0], "QuantityOnHand").ValueOrDie();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 77);
}

TEST_F(QueryEval, KeyedNavigationIntoSet) {
  auto values = Read(data.item_oids[0], "Orders[2].OrderNo").ValueOrDie();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 2);
}

TEST_F(QueryEval, ScanFansOut) {
  auto values = Read(data.item_oids[1], "Orders[*].Status").ValueOrDie();
  EXPECT_EQ(values.size(), 3u);
}

TEST_F(QueryEval, RootedAtTheItemsSet) {
  PathExpr expr = PathExpr::Parse("Items").ValueOrDie();
  (void)expr;  // Items is a named root, navigate from it directly:
  auto r = db.RunTransaction("q", [&](TxnCtx& ctx) -> Result<Value> {
    PathExpr p = PathExpr::Parse("Orders[1].Quantity").ValueOrDie();
    SEMCC_ASSIGN_OR_RETURN(Oid item, ctx.SetSelect(types.items, Value(1)));
    SEMCC_ASSIGN_OR_RETURN(auto values, p.ReadValues(ctx, item));
    return values[0];
  });
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.ValueOrDie().AsInt(), 0);
}

TEST_F(QueryEval, MissingComponentFailsTheQuery) {
  auto r = db.RunTransaction("q", [&](TxnCtx& ctx) -> Result<Value> {
    PathExpr p = PathExpr::Parse("Nope").ValueOrDie();
    SEMCC_ASSIGN_OR_RETURN(auto values, p.ReadValues(ctx, data.item_oids[0]));
    (void)values;
    return Value();
  });
  EXPECT_TRUE(r.status().IsNotFound());
}

// --- assembly -------------------------------------------------------------------

TEST_F(QueryEval, AssemblesTheWholeItem) {
  std::unique_ptr<AssembledObject> assembled;
  auto r = db.RunTransaction("assemble", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(assembled, Assemble(ctx, data.item_oids[0]));
    return Value();
  });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_NE(assembled, nullptr);
  EXPECT_EQ(assembled->kind, ObjectKind::kTuple);
  EXPECT_EQ(assembled->type_name, "Item");
  ASSERT_EQ(assembled->components.size(), 5u);
  // Item = 4 atoms + Orders set; each Order = tuple of 4 atoms.
  // 1 item + 4 atoms + 1 set + 3*(1 tuple + 4 atoms) = 21 nodes.
  EXPECT_EQ(assembled->NodeCount(), 21u);
  std::string rendered = assembled->ToString();
  EXPECT_NE(rendered.find("QuantityOnHand"), std::string::npos);
  EXPECT_NE(rendered.find("Orders"), std::string::npos);
}

TEST_F(QueryEval, AssemblyHonorsDepthLimit) {
  std::unique_ptr<AssembledObject> assembled;
  auto r = db.RunTransaction("assemble", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(assembled, Assemble(ctx, data.item_oids[0], 1));
    return Value();
  });
  ASSERT_TRUE(r.ok());
  // Children exist but are truncated placeholders.
  ASSERT_EQ(assembled->components.size(), 5u);
  EXPECT_TRUE(assembled->components[0].second->truncated);
  EXPECT_LT(assembled->NodeCount(), 21u);
}

// --- coexistence with method-invoking transactions ------------------------------

TEST_F(QueryEval, AssemblyIsBlockedByConflictingRetainedLocks) {
  // The assembling reader Gets every Status atom; a transaction that shipped
  // an order holds a retained Put on that atom whose commuting-ancestor walk
  // finds nothing for a generic reader at top level -> the query waits for
  // the updater's commit (Figure 5 discipline for object-assembly queries).
  ScriptedSchedule sched;
  std::thread updater([&]() {
    auto r = db.RunTransactionOnce("t1", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(data.item_oids[0], "ShipOrder", {Value(1)}));
      (void)a;
      sched.Signal("shipped");
      sched.WaitFor("assembled", std::chrono::milliseconds(400));
      return Value();
    });
    EXPECT_TRUE(r.ok());
    sched.Signal("updater.committed");
  });
  sched.WaitFor("shipped");
  // Robust blocking witness: the lock manager's counter, not a race between
  // the woken reader and the updater thread reaching its post-commit signal.
  const uint64_t blocked_before = db.locks()->stats().blocked_acquires;
  auto r = db.RunTransaction("assemble", [&](TxnCtx& ctx) -> Result<Value> {
    auto assembled = Assemble(ctx, data.item_oids[0]);
    if (!assembled.ok()) return assembled.status();
    return Value();
  });
  sched.Signal("assembled");
  updater.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The query blocked on the retained Put and completed only after the
  // commit released it (the serializability check below validates the order).
  EXPECT_GT(db.locks()->stats().blocked_acquires, blocked_before);
  SemanticSerializabilityChecker checker(db.compat());
  EXPECT_TRUE(checker.Check(db.history()->Snapshot()).serializable);
}

TEST_F(QueryEval, PathReadRunsConcurrentlyWithCommutingUpdates) {
  // Reading a DIFFERENT item's data is untouched by the updater entirely.
  ScriptedSchedule sched;
  std::thread updater([&]() {
    auto r = db.RunTransactionOnce("t1", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(data.item_oids[0], "ShipOrder", {Value(1)}));
      (void)a;
      sched.Signal("shipped");
      sched.WaitFor("read.done", std::chrono::milliseconds(2000));
      return Value();
    });
    EXPECT_TRUE(r.ok());
  });
  sched.WaitFor("shipped");
  auto values = Read(data.item_oids[1], "Orders[*].Quantity");
  sched.Signal("read.done");
  updater.join();
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values.ValueOrDie().size(), 3u);
}

}  // namespace
}  // namespace query
}  // namespace semcc
