// Tests for the history recorder and the tree formatter.
#include <gtest/gtest.h>

#include "app/orderentry/order_entry.h"
#include "core/database.h"
#include "txn/history.h"

namespace semcc {
namespace {

using namespace orderentry;

struct HistoryTest : public ::testing::Test {
  void SetUp() override {
    types = Install(&db).ValueOrDie();
    LoadSpec spec;
    spec.num_items = 2;
    spec.orders_per_item = 2;
    data = Load(&db, types, spec).ValueOrDie();
  }
  Database db;
  OrderEntryTypes types;
  LoadedData data;
};

TEST_F(HistoryTest, RecordsOneEntryPerTransaction) {
  ASSERT_TRUE(db.RunTransaction("a", T5_TotalPayment(data.item_oids[0])).ok());
  ASSERT_TRUE(db.RunTransaction("b", T5_TotalPayment(data.item_oids[1])).ok());
  auto snap = db.history()->Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_TRUE(snap[0].committed);
}

TEST_F(HistoryTest, ActionTimestampsAreMonotonePerAction) {
  ASSERT_TRUE(
      db.RunTransaction("t", T1_ShipTwoOrders(data.item_oids[0], 1,
                                              data.item_oids[1], 2)).ok());
  auto snap = db.history()->Snapshot();
  for (const ActionRecord& a : snap[0].actions) {
    EXPECT_LE(a.grant_seq, a.end_seq) << a.Label();
  }
}

TEST_F(HistoryTest, ParentPointersFormATree) {
  ASSERT_TRUE(
      db.RunTransaction("t", T1_ShipTwoOrders(data.item_oids[0], 1,
                                              data.item_oids[1], 2)).ok());
  const TxnRecord txn = db.history()->Snapshot()[0];
  int roots = 0;
  for (const ActionRecord& a : txn.actions) {
    if (a.id == a.parent_id) {
      roots++;
    } else {
      EXPECT_NE(txn.Find(a.parent_id), nullptr) << a.Label();
      EXPECT_EQ(a.depth, txn.Find(a.parent_id)->depth + 1);
    }
    EXPECT_EQ(a.root_id, txn.id);
  }
  EXPECT_EQ(roots, 1);
}

TEST_F(HistoryTest, FindLocatesActions) {
  ASSERT_TRUE(db.RunTransaction("t", T5_TotalPayment(data.item_oids[0])).ok());
  const TxnRecord txn = db.history()->Snapshot()[0];
  EXPECT_NE(txn.Find(txn.id), nullptr);
  EXPECT_EQ(txn.Find(999999), nullptr);
}

TEST_F(HistoryTest, FormatTxnTreeShowsNestingAndTimestamps) {
  ASSERT_TRUE(
      db.RunTransaction("T1", T1_ShipTwoOrders(data.item_oids[0], 1,
                                               data.item_oids[1], 2)).ok());
  std::string tree = FormatTxnTree(db.history()->Snapshot()[0]);
  // Root at indent 0, methods at indent 2, leaves deeper.
  EXPECT_NE(tree.find("T1"), std::string::npos);
  EXPECT_NE(tree.find("  ShipOrder"), std::string::npos);
  EXPECT_NE(tree.find("    ChangeStatus"), std::string::npos);
  EXPECT_NE(tree.find("      Put"), std::string::npos);
  EXPECT_NE(tree.find("["), std::string::npos);  // timestamps
}

TEST_F(HistoryTest, AbortedTreesMarked) {
  (void)db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a,
                           ctx.Invoke(data.item_oids[0], "ShipOrder", {Value(1)}));
    (void)a;
    return Status::PreconditionFailed("stop");
  });
  const TxnRecord txn = db.history()->Snapshot()[0];
  EXPECT_FALSE(txn.committed);
  std::string tree = FormatTxnTree(txn);
  EXPECT_NE(tree.find("(compensation)"), std::string::npos);
}

TEST_F(HistoryTest, ClearEmptiesTheRecorder) {
  ASSERT_TRUE(db.RunTransaction("t", T5_TotalPayment(data.item_oids[0])).ok());
  EXPECT_GT(db.history()->size(), 0u);
  db.history()->Clear();
  EXPECT_EQ(db.history()->size(), 0u);
}

TEST(ActionRecordLabel, IncludesObjectAndArgs) {
  ActionRecord a;
  a.method = "ShipOrder";
  a.object = 12;
  a.args = {Value(3)};
  EXPECT_EQ(a.Label(), "ShipOrder(@12, 3)");
}

}  // namespace
}  // namespace semcc
