// Functional tests of the order-entry application (paper §2): schema shape,
// method semantics, and the five transaction types.
#include <gtest/gtest.h>

#include "app/orderentry/order_entry.h"
#include "core/database.h"

namespace semcc {
namespace orderentry {
namespace {

struct OrderEntryTest : public ::testing::Test {
  void SetUp() override {
    types = Install(&db).ValueOrDie();
    LoadSpec spec;
    spec.num_items = 3;
    spec.orders_per_item = 4;
    spec.initial_qoh = 500;
    spec.price_cents = 100;
    data = Load(&db, types, spec).ValueOrDie();
  }
  Database db;
  OrderEntryTypes types;
  LoadedData data;
};

TEST_F(OrderEntryTest, SchemaMatchesFigure1) {
  // DB.Items : Set<Item>; Item tuple with 5 components; Order with 4.
  auto items_desc = db.schema()->GetByName("Items").ValueOrDie();
  EXPECT_EQ(items_desc.kind, ObjectKind::kSet);
  EXPECT_EQ(items_desc.key_component, "ItemNo");
  auto item_desc = db.schema()->GetByName("Item").ValueOrDie();
  EXPECT_TRUE(item_desc.encapsulated);
  ASSERT_EQ(item_desc.components.size(), 5u);
  EXPECT_EQ(item_desc.components[0].name, "ItemNo");
  EXPECT_EQ(item_desc.components[4].name, "Orders");
  auto order_desc = db.schema()->GetByName("Order").ValueOrDie();
  EXPECT_TRUE(order_desc.encapsulated);
  EXPECT_EQ(order_desc.components.size(), 4u);
  // The Items set is populated.
  EXPECT_EQ(db.store()->SetSize(types.items).ValueOrDie(), 3u);
}

TEST_F(OrderEntryTest, LoadCreatesOrdersWithSequentialNumbers) {
  for (Oid item : data.item_oids) {
    Oid orders = db.store()->Component(item, "Orders").ValueOrDie();
    EXPECT_EQ(db.store()->SetSize(orders).ValueOrDie(), 4u);
    for (int64_t o = 1; o <= 4; ++o) {
      EXPECT_TRUE(db.store()->SetSelect(orders, Value(o)).ok());
    }
  }
}

TEST_F(OrderEntryTest, NewOrderAssignsNextNumber) {
  Oid item = data.item_oids[0];
  auto r = db.RunTransaction("tn", TN_EnterOrder(item, 77, 5));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().AsInt(), 5);
  Oid order = FindOrder(&db, item, 5).ValueOrDie();
  Oid cust = db.store()->Component(order, "CustomerNo").ValueOrDie();
  EXPECT_EQ(db.store()->Get(cust).ValueOrDie().AsInt(), 77);
  EXPECT_EQ(ReadStatusRaw(&db, order).ValueOrDie(), 0);  // status "new"
  auto r2 = db.RunTransaction("tn", TN_EnterOrder(item, 78, 2));
  EXPECT_EQ(r2.ValueOrDie().AsInt(), 6);
}

TEST_F(OrderEntryTest, ShipOrderUpdatesQohAndStatus) {
  Oid item = data.item_oids[0];
  Oid order = FindOrder(&db, item, 2).ValueOrDie();
  Oid qty_oid = db.store()->Component(order, "Quantity").ValueOrDie();
  const int64_t qty = db.store()->Get(qty_oid).ValueOrDie().AsInt();
  ASSERT_TRUE(db.RunTransaction("t", [&](TxnCtx& ctx) {
                  return ctx.Invoke(item, "ShipOrder", {Value(2)});
                }).ok());
  EXPECT_EQ(ReadQohRaw(&db, item).ValueOrDie(), 500 - qty);
  EXPECT_EQ(ReadStatusRaw(&db, order).ValueOrDie() & kEventShippedBit,
            kEventShippedBit);
}

TEST_F(OrderEntryTest, PayOrderSetsPaidBitOnly) {
  Oid item = data.item_oids[1];
  Oid order = FindOrder(&db, item, 3).ValueOrDie();
  ASSERT_TRUE(db.RunTransaction("t", [&](TxnCtx& ctx) {
                  return ctx.Invoke(item, "PayOrder", {Value(3)});
                }).ok());
  EXPECT_EQ(ReadStatusRaw(&db, order).ValueOrDie(), kEventPaidBit);
  EXPECT_EQ(ReadQohRaw(&db, item).ValueOrDie(), 500);  // untouched
}

TEST_F(OrderEntryTest, StatusAccumulatesAsEventSet) {
  Oid item = data.item_oids[0];
  Oid order = FindOrder(&db, item, 1).ValueOrDie();
  ASSERT_TRUE(db.RunTransaction("t", T2_PayTwoOrders(item, 1, data.item_oids[1], 1)).ok());
  ASSERT_TRUE(db.RunTransaction("t", T1_ShipTwoOrders(item, 1, data.item_oids[1], 1)).ok());
  // "shipped&paid" — both events recorded, no ordering remembered.
  EXPECT_EQ(ReadStatusRaw(&db, order).ValueOrDie(),
            kEventShippedBit | kEventPaidBit);
}

TEST_F(OrderEntryTest, TotalPaymentSumsOnlyPaidOrders) {
  Oid item = data.item_oids[0];
  // Pay orders 1 and 3; ship order 2 (shipping alone does not count).
  ASSERT_TRUE(db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
                  SEMCC_ASSIGN_OR_RETURN(Value a,
                                         ctx.Invoke(item, "PayOrder", {Value(1)}));
                  SEMCC_ASSIGN_OR_RETURN(Value b,
                                         ctx.Invoke(item, "PayOrder", {Value(3)}));
                  (void)a;
                  (void)b;
                  return ctx.Invoke(item, "ShipOrder", {Value(2)});
                }).ok());
  auto total = db.RunTransaction("t5", T5_TotalPayment(item));
  ASSERT_TRUE(total.ok());
  Oid o1 = FindOrder(&db, item, 1).ValueOrDie();
  Oid o3 = FindOrder(&db, item, 3).ValueOrDie();
  int64_t q1 = db.store()
                   ->Get(db.store()->Component(o1, "Quantity").ValueOrDie())
                   .ValueOrDie()
                   .AsInt();
  int64_t q3 = db.store()
                   ->Get(db.store()->Component(o3, "Quantity").ValueOrDie())
                   .ValueOrDie()
                   .AsInt();
  EXPECT_EQ(total.ValueOrDie().AsInt(), 100 * (q1 + q3));
}

TEST_F(OrderEntryTest, TotalPaymentOfFreshItemIsZero) {
  auto total = db.RunTransaction("t5", T5_TotalPayment(data.item_oids[2]));
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.ValueOrDie().AsInt(), 0);
}

TEST_F(OrderEntryTest, TestStatusReflectsEvents) {
  Oid item1 = data.item_oids[0];
  Oid item2 = data.item_oids[1];
  ASSERT_TRUE(db.RunTransaction("t1", T1_ShipTwoOrders(item1, 1, item2, 1)).ok());
  auto r3 = db.RunTransaction("t3", T3_CheckShipment(item1, 1, item2, 1));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.ValueOrDie().AsInt(), 3);  // both shipped
  auto r4 = db.RunTransaction("t4", T4_CheckPayment(item1, 1, item2, 1));
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.ValueOrDie().AsInt(), 0);  // neither paid
}

TEST_F(OrderEntryTest, UnchangeStatusRemovesOneEvent) {
  Oid item = data.item_oids[0];
  Oid order = FindOrder(&db, item, 1).ValueOrDie();
  ASSERT_TRUE(db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
                  SEMCC_ASSIGN_OR_RETURN(
                      Value a, ctx.Invoke(order, "ChangeStatus", {Value(kShipped)}));
                  (void)a;
                  return ctx.Invoke(order, "ChangeStatus", {Value(kPaid)});
                }).ok());
  ASSERT_TRUE(db.RunTransaction("t", [&](TxnCtx& ctx) {
                  return ctx.Invoke(order, "UnchangeStatus", {Value(kShipped)});
                }).ok());
  EXPECT_EQ(ReadStatusRaw(&db, order).ValueOrDie(), kEventPaidBit);
}

TEST_F(OrderEntryTest, ChangeStatusRejectsUnknownEvent) {
  Oid item = data.item_oids[0];
  Oid order = FindOrder(&db, item, 1).ValueOrDie();
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) {
    return ctx.Invoke(order, "ChangeStatus", {Value("lost")});
  });
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(OrderEntryTest, ShipUnknownOrderFails) {
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) {
    return ctx.Invoke(data.item_oids[0], "ShipOrder", {Value(int64_t{99})});
  });
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(OrderEntryTest, EventBitMapping) {
  EXPECT_EQ(EventBit(kShipped), kEventShippedBit);
  EXPECT_EQ(EventBit(kPaid), kEventPaidBit);
  EXPECT_EQ(EventBit("bogus"), 0);
}

TEST_F(OrderEntryTest, PreloadedStatusDistribution) {
  Database db2;
  auto types2 = Install(&db2).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 50;
  spec.pre_paid = 1.0;  // everything pre-paid
  auto data2 = Load(&db2, types2, spec).ValueOrDie();
  auto total = db2.RunTransaction("t5", T5_TotalPayment(data2.item_oids[0]));
  ASSERT_TRUE(total.ok());
  EXPECT_GT(total.ValueOrDie().AsInt(), 0);
}

}  // namespace
}  // namespace orderentry
}  // namespace semcc
