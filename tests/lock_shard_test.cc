// Tests for the sharded lock table and the targeted-wakeup protocol:
// shard dispersion of the target hash, shard-count clamping, FCFS grant
// order within one queue (paper footnote 5) under sharding, deadlock cycles
// spanning multiple shards, and wakeup liveness — a waiter must wake
// promptly on its unblocking event, never by riding out a timeout (there is
// no polling fallback to hide a lost notification).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cc/compatibility.h"
#include "cc/lock_manager.h"
#include "cc/subtxn.h"
#include "util/annotations.h"

namespace semcc {
namespace {

constexpr TypeId kItemT = 1;  // methods Ma (self-conflicting), Mb
constexpr TypeId kAtomT = 2;  // atomic leaves via generic Get/Put
constexpr Oid kObjA = 100;

// Parameterized over the §5.4 acquisition fast-path flag mask
// (1 = lock_fast_path, 2 = coalesce_entries, 4 = memoize_conflicts,
// 8 = pool_entries): sharding, FCFS order, deadlock handling, and wakeup
// liveness must be byte-identical with the mechanisms off, with coalescing
// alone, and with everything on — they are verdict-preserving.
struct LockShardTest : public ::testing::TestWithParam<int> {
  LockShardTest() {
    compat.Define(kItemT, "Ma", "Ma", false);
    compat.Define(kItemT, "Ma", "Mb", true);
    compat.Define(kItemT, "Mb", "Mb", true);
  }

  std::unique_ptr<LockManager> Make(ProtocolOptions o) {
    const int mask = GetParam();
    o.lock_fast_path = (mask & 1) != 0;
    o.coalesce_entries = (mask & 2) != 0;
    o.memoize_conflicts = (mask & 4) != 0;
    o.pool_entries = (mask & 8) != 0;
    return std::make_unique<LockManager>(o, &compat);
  }

  void Complete(LockManager* lm, SubTxn* t) {
    t->set_state(TxnState::kCommitted);
    lm->OnSubTxnCompleted(t);
  }

  CompatibilityRegistry compat;
};

// --- hash dispersion ------------------------------------------------------

TEST_P(LockShardTest, ShardCountClampsToPowerOfTwo) {
  ProtocolOptions o;
  o.lock_table_shards = 0;
  EXPECT_EQ(Make(o)->num_shards(), 1);
  o.lock_table_shards = 1;
  EXPECT_EQ(Make(o)->num_shards(), 1);
  o.lock_table_shards = 3;
  EXPECT_EQ(Make(o)->num_shards(), 4);
  o.lock_table_shards = 16;
  EXPECT_EQ(Make(o)->num_shards(), 16);
  o.lock_table_shards = 100000;
  EXPECT_EQ(Make(o)->num_shards(), LockManager::kMaxShards);
}

TEST_P(LockShardTest, SequentialOidsDisperseAcrossShards) {
  auto lm = Make(ProtocolOptions{});  // default 16 shards
  const int shards = lm->num_shards();
  ASSERT_EQ(shards, 16);
  std::vector<int> hits(shards, 0);
  const int kKeys = 512;
  for (Oid oid = 1; oid <= kKeys; ++oid) {
    ++hits[lm->ShardIndexOf(LockTarget::ForObject(oid))];
  }
  // A good mixer keeps every shard populated and no shard dominant; the
  // bounds are loose (expected load is 32 per shard).
  for (int i = 0; i < shards; ++i) {
    EXPECT_GT(hits[i], 0) << "shard " << i << " never hit";
    EXPECT_LT(hits[i], kKeys / 4) << "shard " << i << " is a hot spot";
  }
}

TEST_P(LockShardTest, SlotZeroRecordsDisperseAcrossShards) {
  // ForRecord({page, 0}) keys are all multiples of 1<<16 — the structured
  // pattern that defeated the previous `key * 3 + space` hash (std::hash of
  // an integer is the identity on this platform, so every such key landed
  // in shard 0).
  auto lm = Make(ProtocolOptions{});
  const int shards = lm->num_shards();
  std::vector<int> hits(shards, 0);
  const int kKeys = 512;
  for (PageId page = 1; page <= kKeys; ++page) {
    ++hits[lm->ShardIndexOf(LockTarget::ForRecord(Rid{page, 0}))];
  }
  for (int i = 0; i < shards; ++i) {
    EXPECT_GT(hits[i], 0) << "shard " << i << " never hit";
    EXPECT_LT(hits[i], kKeys / 4) << "shard " << i << " is a hot spot";
  }
}

TEST_P(LockShardTest, SequentialPagesDisperseAcrossShards) {
  auto lm = Make(ProtocolOptions{});
  const int shards = lm->num_shards();
  std::vector<int> hits(shards, 0);
  const int kKeys = 512;
  for (PageId page = 1; page <= kKeys; ++page) {
    ++hits[lm->ShardIndexOf(LockTarget::ForPage(page))];
  }
  for (int i = 0; i < shards; ++i) {
    EXPECT_GT(hits[i], 0) << "shard " << i << " never hit";
  }
}

// --- FCFS grant order under sharding --------------------------------------

TEST_P(LockShardTest, FcfsGrantOrderWithinQueue) {
  // One holder + K staggered conflicting waiters on a single target: the
  // grant order must equal the arrival order (paper footnote 5), with each
  // waiter's queued entry blocking all later arrivals even while ungranted.
  ProtocolOptions o;
  o.wait_timeout = std::chrono::milliseconds(20000);
  auto lm = Make(o);
  constexpr int kWaiters = 4;

  TxnTree holder(TxnTree::NextId(), "H", kDatabaseOid, 0);
  SubTxn* h = holder.NewNode(holder.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(h, LockTarget::ForObject(kObjA), true).ok());

  std::vector<std::unique_ptr<TxnTree>> trees;
  std::vector<SubTxn*> actions;
  for (int i = 0; i < kWaiters; ++i) {
    trees.push_back(std::make_unique<TxnTree>(TxnTree::NextId(),
                                              "W" + std::to_string(i),
                                              kDatabaseOid, 0));
    actions.push_back(
        trees[i]->NewNode(trees[i]->root(), kObjA, kItemT, "Ma", {}));
  }

  std::vector<int> grant_order;
  Mutex order_mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, i]() {
      Status st = lm->Acquire(actions[i], LockTarget::ForObject(kObjA), true);
      ASSERT_TRUE(st.ok()) << st.ToString();
      {
        MutexLock g(order_mu);
        grant_order.push_back(i);
      }
      // Retire this transaction so the next-in-line waiter can be granted.
      Complete(lm.get(), actions[i]);
      Complete(lm.get(), trees[i]->root());
      lm->ReleaseTree(trees[i]->root());
    });
    // Stagger arrivals: each waiter must be enqueued (blocked) before the
    // next one arrives so the queue order is deterministic.
    while (lm->NumWaiters() != static_cast<size_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  Complete(lm.get(), h);
  Complete(lm.get(), holder.root());
  lm->ReleaseTree(holder.root());
  for (auto& t : threads) t.join();

  std::vector<int> expected(kWaiters);
  for (int i = 0; i < kWaiters; ++i) expected[i] = i;
  EXPECT_EQ(grant_order, expected);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
}

// --- cross-shard deadlock -------------------------------------------------

TEST_P(LockShardTest, DeadlockCycleSpanningTwoShardsIsDetected) {
  ProtocolOptions o;
  o.wait_timeout = std::chrono::milliseconds(20000);
  auto lm = Make(o);
  ASSERT_GT(lm->num_shards(), 1);

  // Pick two objects that land in different shards so the wait cycle spans
  // two shard condvars and the victim wakeup must cross shards.
  const Oid oid_a = kObjA;
  Oid oid_b = kObjA + 1;
  while (lm->ShardIndexOf(LockTarget::ForObject(oid_b)) ==
         lm->ShardIndexOf(LockTarget::ForObject(oid_a))) {
    ++oid_b;
  }

  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a1 = t1.NewNode(t1.root(), oid_a, kItemT, "Ma", {});
  SubTxn* b1 = t1.NewNode(t1.root(), oid_b, kItemT, "Ma", {});
  SubTxn* a2 = t2.NewNode(t2.root(), oid_b, kItemT, "Ma", {});
  SubTxn* b2 = t2.NewNode(t2.root(), oid_a, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a1, LockTarget::ForObject(oid_a), true).ok());
  ASSERT_TRUE(lm->Acquire(a2, LockTarget::ForObject(oid_b), true).ok());

  Status st1, st2;
  auto unwind = [&](TxnTree* tree) {
    tree->root()->set_state(TxnState::kAborted);
    lm->OnSubTxnCompleted(tree->root());
    lm->ReleaseTree(tree->root());
  };
  std::thread th1([&]() {
    st1 = lm->Acquire(b1, LockTarget::ForObject(oid_b), true);
    if (!st1.ok()) unwind(&t1);
  });
  std::thread th2([&]() {
    st2 = lm->Acquire(b2, LockTarget::ForObject(oid_a), true);
    if (!st2.ok()) unwind(&t2);
  });
  th1.join();
  th2.join();
  const bool one_failed = (!st1.ok()) != (!st2.ok());
  EXPECT_TRUE(one_failed) << "st1=" << st1.ToString()
                          << " st2=" << st2.ToString();
  EXPECT_GE(lm->stats().deadlocks, 1u);
}

// --- wakeup liveness ------------------------------------------------------

// With a 60 s timeout, a waiter that only wakes on its unblocking event has
// a hard upper bound far below the timeout; these tests fail loudly (and
// slowly) if a wakeup is lost and the waiter rides out the full timeout.
constexpr auto kLivenessTimeout = std::chrono::milliseconds(60000);
constexpr auto kWakeBound = std::chrono::milliseconds(5000);

TEST_P(LockShardTest, ReleaseWakesRootWaiterPromptly) {
  ProtocolOptions o;
  o.wait_timeout = kLivenessTimeout;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t2.NewNode(t2.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());

  std::atomic<bool> granted{false};
  std::chrono::steady_clock::time_point granted_at;
  std::thread blocked([&]() {
    Status st = lm->Acquire(b, LockTarget::ForObject(kObjA), true);
    EXPECT_TRUE(st.ok()) << st.ToString();
    granted_at = std::chrono::steady_clock::now();
    granted = true;
  });
  while (lm->NumWaiters() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Complete(lm.get(), a);
  Complete(lm.get(), t1.root());
  const auto released_at = std::chrono::steady_clock::now();
  lm->ReleaseTree(t1.root());
  blocked.join();
  ASSERT_TRUE(granted.load());
  EXPECT_LT(granted_at - released_at, kWakeBound);
}

TEST_P(LockShardTest, Case2CompletionWakesWaiterPromptly) {
  // Case 2 (Figure 9): the waiter awaits a *subtransaction* completion, not
  // a release — the completion path must find and wake it via the waits-for
  // graph without touching the lock table.
  ProtocolOptions o;
  o.wait_timeout = kLivenessTimeout;
  auto lm = Make(o);
  constexpr Oid kLeaf = 900;
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* anc1 = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* leaf1 = t1.NewNode(anc1, kLeaf, kAtomT, generic_ops::kPut, {Value(1)});
  SubTxn* anc2 = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  SubTxn* leaf2 = t2.NewNode(anc2, kLeaf, kAtomT, generic_ops::kPut, {Value(2)});
  ASSERT_TRUE(lm->Acquire(anc1, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(leaf1, LockTarget::ForObject(kLeaf), true).ok());
  ASSERT_TRUE(lm->Acquire(anc2, LockTarget::ForObject(kObjA), true).ok());

  std::atomic<bool> granted{false};
  std::chrono::steady_clock::time_point granted_at;
  std::thread blocked([&]() {
    // Put/Put conflict; the commuting active ancestor pair (Ma, Mb) on
    // kObjA makes this a Case-2 wait for anc1's completion.
    Status st = lm->Acquire(leaf2, LockTarget::ForObject(kLeaf), true);
    EXPECT_TRUE(st.ok()) << st.ToString();
    granted_at = std::chrono::steady_clock::now();
    granted = true;
  });
  while (lm->NumWaiters() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(granted.load());
  EXPECT_GE(lm->stats().case2_waits, 1u);
  Complete(lm.get(), leaf1);
  const auto completed_at = std::chrono::steady_clock::now();
  Complete(lm.get(), anc1);
  blocked.join();
  ASSERT_TRUE(granted.load());
  EXPECT_LT(granted_at - completed_at, kWakeBound);
}

TEST_P(LockShardTest, AbortRequestWakesWaiterPromptly) {
  ProtocolOptions o;
  o.wait_timeout = kLivenessTimeout;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t2.NewNode(t2.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());

  std::atomic<bool> done{false};
  std::chrono::steady_clock::time_point done_at;
  std::thread blocked([&]() {
    Status st = lm->Acquire(b, LockTarget::ForObject(kObjA), true);
    EXPECT_TRUE(st.IsAborted()) << st.ToString();
    done_at = std::chrono::steady_clock::now();
    done = true;
  });
  while (lm->NumWaiters() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto flagged_at = std::chrono::steady_clock::now();
  lm->OnAbortRequested(t2.root());
  blocked.join();
  ASSERT_TRUE(done.load());
  EXPECT_LT(done_at - flagged_at, kWakeBound);
}

TEST_P(LockShardTest, SingleShardConfigStillWorks) {
  ProtocolOptions o;
  o.lock_table_shards = 1;
  o.wait_timeout = std::chrono::milliseconds(20000);
  auto lm = Make(o);
  EXPECT_EQ(lm->num_shards(), 1);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t2.NewNode(t2.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());
  std::atomic<bool> granted{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm->Acquire(b, LockTarget::ForObject(kObjA), true).ok());
    granted = true;
  });
  while (lm->NumWaiters() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(granted.load());
  Complete(lm.get(), a);
  Complete(lm.get(), t1.root());
  lm->ReleaseTree(t1.root());
  blocked.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
}

INSTANTIATE_TEST_SUITE_P(FastPathConfigs, LockShardTest,
                         ::testing::Values(0, 2, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "flags" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace semcc
