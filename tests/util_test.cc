// Unit tests for the util substrate: Status/Result, Random/Zipf, Histogram,
// synchronization helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/histogram.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/sync.h"

namespace semcc {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(Status, CopyAndMovePreserveState) {
  Status st = Status::Deadlock("victim");
  Status copy = st;
  EXPECT_TRUE(copy.IsDeadlock());
  EXPECT_TRUE(st.IsDeadlock());
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsDeadlock());
}

TEST(Status, AllCodesRoundTripNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlock), "Deadlock");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTimedOut), "TimedOut");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPreconditionFailed),
               "PreconditionFailed");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacros(int x) {
  SEMCC_ASSIGN_OR_RETURN(int h, Halve(x));
  SEMCC_ASSIGN_OR_RETURN(int q, Halve(h));
  return q;
}

TEST(Result, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(*QuarterViaMacros(8), 2);
  EXPECT_TRUE(QuarterViaMacros(6).status().IsInvalidArgument());
}

TEST(Random, DeterministicGivenSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Random, UniformBounds) {
  Random r(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Random, NextDoubleInUnitInterval) {
  Random r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, BernoulliExtremes) {
  Random r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(Zipfian, UniformWhenThetaZero) {
  ZipfianGenerator z(100, 0.0, 3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[z.Next()]++;
  // Every bucket hit, roughly uniform.
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(Zipfian, SkewConcentratesOnHotItems) {
  ZipfianGenerator z(1000, 0.99, 3);
  int hot = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.Next() < 10) hot++;
  }
  // With theta=0.99 the top-10 of 1000 items draw a large share.
  EXPECT_GT(hot, kDraws / 4);
}

TEST(Zipfian, StaysInRange) {
  ZipfianGenerator z(7, 0.9, 3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 7u);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50, 5);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 99, 6);
}

TEST(Histogram, MergeAndReset) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, LargeValuesApproximated) {
  Histogram h;
  h.Add(1'000'000);
  // ~4% bucket resolution above 64.
  EXPECT_NEAR(static_cast<double>(h.Percentile(100)), 1e6, 1e6 * 0.07);
}

TEST(Semaphore, PostThenWait) {
  Semaphore sem(0);
  sem.Post();
  sem.Wait();  // must not block
  EXPECT_FALSE(sem.WaitFor(std::chrono::milliseconds(10)));
}

TEST(Semaphore, CrossThreadHandoff) {
  Semaphore sem(0);
  std::thread t([&] { sem.Post(3); });
  sem.Wait();
  sem.Wait();
  sem.Wait();
  t.join();
}

TEST(CountDownLatch, ReleasesAtZero) {
  CountDownLatch latch(2);
  std::thread t([&] {
    latch.CountDown();
    latch.CountDown();
  });
  latch.Wait();
  t.join();
}

TEST(ScriptedSchedule, SignalBeforeWait) {
  ScriptedSchedule s;
  s.Signal("x");
  EXPECT_TRUE(s.WaitFor("x", std::chrono::milliseconds(1)));
  EXPECT_TRUE(s.HasFired("x"));
  EXPECT_FALSE(s.HasFired("y"));
}

TEST(ScriptedSchedule, TimesOutOnMissingEvent) {
  ScriptedSchedule s;
  EXPECT_FALSE(s.WaitFor("never", std::chrono::milliseconds(20)));
}

TEST(ScriptedSchedule, CrossThreadSignal) {
  ScriptedSchedule s;
  std::thread t([&] { s.Signal("go"); });
  EXPECT_TRUE(s.WaitFor("go"));
  t.join();
}

TEST(StopWatch, MeasuresElapsedTime) {
  StopWatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.ElapsedMicros(), 15000u);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMicros(), 15000u);
}

}  // namespace
}  // namespace semcc
