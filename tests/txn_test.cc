// Tests for the Figure 8 execution engine: transaction lifecycle, method
// invocation trees, abort with semantic compensation, and retry handling.
#include <gtest/gtest.h>

#include <thread>

#include "app/orderentry/order_entry.h"
#include "core/database.h"
#include "core/serializability.h"
#include "util/sync.h"

namespace semcc {
namespace {

using namespace orderentry;

struct TxnTestBase : public ::testing::Test {
  void SetUp() override {
    types = Install(&db).ValueOrDie();
    LoadSpec spec;
    spec.num_items = 4;
    spec.orders_per_item = 3;
    spec.initial_qoh = 1000;
    data = Load(&db, types, spec).ValueOrDie();
  }
  Database db;
  OrderEntryTypes types;
  LoadedData data;
};

TEST_F(TxnTestBase, CommitReleasesEverything) {
  Oid item = data.item_oids[0];
  auto r = db.RunTransaction("t", T1_ShipTwoOrders(item, 1, data.item_oids[1], 1));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(db.locks()->LocksOn(LockTarget::ForObject(item)).size(), 0u);
  EXPECT_EQ(db.txns()->stats().commits, 1u);
}

TEST_F(TxnTestBase, MethodTreesAreRecorded) {
  Oid item = data.item_oids[0];
  ASSERT_TRUE(db.RunTransaction("t", T5_TotalPayment(item)).ok());
  auto history = db.history()->Snapshot();
  ASSERT_EQ(history.size(), 1u);
  const TxnRecord& txn = history[0];
  EXPECT_TRUE(txn.committed);
  // Root + TotalPayment + Get(Price) + Scan + 3x Get(Status): >= 7 actions.
  EXPECT_GE(txn.actions.size(), 7u);
  // The TotalPayment node is a child of the root acting on the item.
  bool found = false;
  for (const ActionRecord& a : txn.actions) {
    if (a.method == "TotalPayment") {
      found = true;
      EXPECT_EQ(a.object, item);
      EXPECT_EQ(a.depth, 1);
      EXPECT_GT(a.end_seq, a.grant_seq);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TxnTestBase, ApplicationErrorAborts) {
  Oid item = data.item_oids[0];
  auto r = db.RunTransaction("bad", [&](TxnCtx& ctx) -> Result<Value> {
    // Order 99 does not exist -> NotFound, not retried.
    return ctx.Invoke(item, "ShipOrder", {Value(int64_t{99})});
  });
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(db.txns()->stats().aborts, 1u);
  EXPECT_EQ(db.txns()->stats().commits, 0u);
  EXPECT_EQ(db.txns()->stats().app_errors, 1u);
  auto history = db.history()->Snapshot();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_FALSE(history[0].committed);
}

TEST_F(TxnTestBase, AbortCompensatesShipOrder) {
  Oid item = data.item_oids[0];
  const int64_t qoh_before = ReadQohRaw(&db, item).ValueOrDie();
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(item, "ShipOrder", {Value(1)}));
    (void)a;
    // Fail after the first action: ShipOrder(1) committed, must compensate.
    return ctx.Invoke(item, "ShipOrder", {Value(int64_t{99})});
  });
  EXPECT_TRUE(r.status().IsNotFound());
  // QuantityOnHand restored; order 1's shipped bit cleared.
  EXPECT_EQ(ReadQohRaw(&db, item).ValueOrDie(), qoh_before);
  Oid o1 = FindOrder(&db, item, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(&db, o1).ValueOrDie() & kEventShippedBit, 0);
}

TEST_F(TxnTestBase, AbortCompensatesNewOrder) {
  Oid item = data.item_oids[0];
  Oid orders = db.store()->Component(item, "Orders").ValueOrDie();
  const size_t before = db.store()->SetSize(orders).ValueOrDie();
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value ono,
                           ctx.Invoke(item, "NewOrder", {Value(42), Value(5)}));
    EXPECT_EQ(ono.AsInt(), 4);  // 3 pre-loaded orders
    return Status::PreconditionFailed("changed my mind");
  });
  EXPECT_TRUE(r.status().IsPreconditionFailed());
  // The order is gone again.
  EXPECT_EQ(db.store()->SetSize(orders).ValueOrDie(), before);
  EXPECT_TRUE(db.store()->SetSelect(orders, Value(4)).status().IsNotFound());
}

TEST_F(TxnTestBase, CompensationIsSemanticNotPhysical) {
  // The multilevel recovery property: aborting T_a must not wipe out a
  // commuting update of T_b that committed *after* T_a's subtransaction.
  Oid item = data.item_oids[0];
  Oid o1 = FindOrder(&db, item, 1).ValueOrDie();
  ScriptedSchedule sched;
  std::thread ta([&]() {
    auto r = db.RunTransactionOnce("Ta", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(item, "ShipOrder", {Value(1)}));
      (void)a;
      sched.Signal("shipped");
      sched.WaitFor("paid", std::chrono::milliseconds(2000));
      return Status::PreconditionFailed("force abort");  // now compensate
    });
    EXPECT_TRUE(r.status().IsPreconditionFailed());
  });
  std::thread tb([&]() {
    sched.WaitFor("shipped");
    // PayOrder commutes with ShipOrder; it interleaves and commits.
    auto r = db.RunTransaction("Tb", T2_PayTwoOrders(item, 1, data.item_oids[1], 1));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    sched.Signal("paid");
  });
  ta.join();
  tb.join();
  const int64_t status = ReadStatusRaw(&db, o1).ValueOrDie();
  // Ta's shipped bit was compensated away; Tb's paid bit SURVIVES. A
  // physical (value-restoring) undo would have erased it.
  EXPECT_EQ(status & kEventShippedBit, 0);
  EXPECT_EQ(status & kEventPaidBit, kEventPaidBit);
}

TEST_F(TxnTestBase, NestedCompensationUnwindsInReverseOrder) {
  Oid item1 = data.item_oids[0];
  Oid item2 = data.item_oids[1];
  const int64_t qoh1 = ReadQohRaw(&db, item1).ValueOrDie();
  const int64_t qoh2 = ReadQohRaw(&db, item2).ValueOrDie();
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(item1, "ShipOrder", {Value(1)}));
    SEMCC_ASSIGN_OR_RETURN(Value b, ctx.Invoke(item2, "ShipOrder", {Value(2)}));
    SEMCC_ASSIGN_OR_RETURN(Value c,
                           ctx.Invoke(item1, "NewOrder", {Value(7), Value(3)}));
    (void)a;
    (void)b;
    (void)c;
    return Status::PreconditionFailed("abort after three updates");
  });
  EXPECT_TRUE(r.status().IsPreconditionFailed());
  EXPECT_EQ(ReadQohRaw(&db, item1).ValueOrDie(), qoh1);
  EXPECT_EQ(ReadQohRaw(&db, item2).ValueOrDie(), qoh2);
  Oid orders1 = db.store()->Component(item1, "Orders").ValueOrDie();
  EXPECT_EQ(db.store()->SetSize(orders1).ValueOrDie(), 3u);
}

TEST_F(TxnTestBase, CompensationActionsAreMarkedInHistory) {
  Oid item = data.item_oids[0];
  (void)db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(item, "ShipOrder", {Value(1)}));
    (void)a;
    return Status::PreconditionFailed("x");
  });
  auto history = db.history()->Snapshot();
  ASSERT_EQ(history.size(), 1u);
  bool saw_compensation = false;
  for (const ActionRecord& a : history[0].actions) {
    if (a.compensation && a.method == "UnchangeStatus") saw_compensation = true;
  }
  EXPECT_TRUE(saw_compensation);
}

TEST_F(TxnTestBase, RunOnceDoesNotRetry) {
  // Self-conflicting methods on one item; RunOnce surfaces system aborts.
  Oid item = data.item_oids[0];
  ScriptedSchedule sched;
  std::thread holder([&]() {
    (void)db.RunTransactionOnce("hold", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(item, "ShipOrder", {Value(1)}));
      (void)a;
      sched.Signal("held");
      sched.WaitFor("probe.done", std::chrono::milliseconds(3000));
      return Value();
    });
  });
  sched.WaitFor("held");
  // A conflicting ShipOrder from another txn with a tiny timeout: TimedOut.
  DatabaseOptions small;
  (void)small;
  auto r = db.RunTransactionOnce("probe", [&](TxnCtx& ctx) -> Result<Value> {
    return ctx.Invoke(item, "ShipOrder", {Value(2)});
  });
  // Either it waited for commit (holder still parked -> timeout at 10s is
  // too long; the holder releases when we signal). Simplest: signal, then
  // the probe acquires after the holder commits.
  sched.Signal("probe.done");
  holder.join();
  // The probe ran concurrently with the holder; whichever way the race went
  // it must not have committed out of order: accept ok or timeout.
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsTimedOut() || r.status().IsAborted())
        << r.status().ToString();
  }
}

TEST_F(TxnTestBase, RetriesRecoverFromDeadlocks) {
  // Two transactions shipping the same two orders in opposite item order —
  // classic deadlock; Run() retries until both commit.
  Oid i1 = data.item_oids[0];
  Oid i2 = data.item_oids[1];
  std::thread a([&]() {
    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(db.RunTransaction("a", T1_ShipTwoOrders(i1, 1, i2, 1)).ok());
    }
  });
  std::thread b([&]() {
    for (int k = 0; k < 20; ++k) {
      ASSERT_TRUE(db.RunTransaction("b", T1_ShipTwoOrders(i2, 1, i1, 1)).ok());
    }
  });
  a.join();
  b.join();
  EXPECT_EQ(db.txns()->stats().commits, 40u);
  SemanticSerializabilityChecker checker(db.compat());
  auto check = checker.Check(db.history()->Snapshot());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

TEST_F(TxnTestBase, MethodOnWrongTypeFails) {
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    Oid o1 = FindOrder(&db, data.item_oids[0], 1).ValueOrDie();
    return ctx.Invoke(o1, "ShipOrder", {Value(1)});  // Order has no ShipOrder
  });
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(TxnTestBase, UpdateMethodWithoutInverseRejectedAtRegistration) {
  MethodDef def;
  def.type = types.item;
  def.name = "Broken";
  def.read_only = false;
  def.body = [](TxnCtx&, Oid, const Args&) -> Result<Value> { return Value(); };
  EXPECT_TRUE(db.RegisterMethod(std::move(def)).IsInvalidArgument());
}

TEST_F(TxnTestBase, HistoryCanBeDisabled) {
  db.history()->Clear();
  db.history()->SetEnabled(false);
  ASSERT_TRUE(db.RunTransaction("t", T5_TotalPayment(data.item_oids[0])).ok());
  EXPECT_EQ(db.history()->size(), 0u);
}

}  // namespace
}  // namespace semcc
