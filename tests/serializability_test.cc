// Unit tests for the serializability checkers on hand-crafted histories.
#include <gtest/gtest.h>

#include "cc/compatibility.h"
#include "core/serializability.h"
#include "txn/history.h"

namespace semcc {
namespace {

constexpr TypeId kItemT = 1;
constexpr Oid kObjA = 10;  // encapsulated object
constexpr Oid kObjB = 20;  // implementation atom
constexpr Oid kObjC = 30;

/// Builder for synthetic histories.
struct HistoryBuilder {
  std::vector<TxnRecord> txns;

  HistoryBuilder() { txns.reserve(16); }  // references must stay stable

  TxnRecord& NewTxn(TxnId id, const std::string& name, bool committed = true) {
    TxnRecord rec;
    rec.id = id;
    rec.name = name;
    rec.committed = committed;
    ActionRecord root;
    root.id = id;
    root.parent_id = id;
    root.root_id = id;
    root.method = name;
    root.object = kDatabaseOid;
    root.final_state = committed ? TxnState::kCommitted : TxnState::kAborted;
    rec.actions.push_back(root);
    txns.push_back(std::move(rec));
    return txns.back();
  }

  ActionRecord& Add(TxnRecord& txn, TxnId id, TxnId parent, Oid object,
                    TypeId type, const std::string& method, Args args,
                    uint64_t grant, uint64_t end) {
    ActionRecord a;
    a.id = id;
    a.parent_id = parent;
    a.root_id = txn.id;
    a.object = object;
    a.type = type;
    a.method = method;
    a.args = std::move(args);
    a.grant_seq = grant;
    a.end_seq = end;
    a.final_state = TxnState::kCommitted;
    const ActionRecord* parent_rec = txn.Find(parent);
    a.depth = parent_rec ? parent_rec->depth + 1 : 1;
    txn.actions.push_back(std::move(a));
    return txn.actions.back();
  }
};

struct SerializabilityTest : public ::testing::Test {
  SerializabilityTest() : checker(&compat) {
    compat.Define(kItemT, "Ma", "Mb", true);
    compat.Define(kItemT, "Ma", "Ma", false);
    compat.Define(kItemT, "Mb", "Mb", true);
  }
  CompatibilityRegistry compat;
  SemanticSerializabilityChecker checker;
};

TEST_F(SerializabilityTest, EmptyHistoryIsSerializable) {
  auto r = checker.Check({});
  EXPECT_TRUE(r.serializable);
  EXPECT_TRUE(r.serial_order.empty());
}

TEST_F(SerializabilityTest, DisjointTransactionsAreSerializable) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kPut, {Value(1)}, 1, 2);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjC, 0, generic_ops::kPut, {Value(1)}, 1, 2);
  auto r = checker.Check(b.txns);
  EXPECT_TRUE(r.serializable) << r.ToString();
  EXPECT_EQ(r.serial_order.size(), 2u);
}

TEST_F(SerializabilityTest, OrderedConflictsInOneDirectionPass) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kPut, {Value(1)}, 1, 2);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kGet, {}, 3, 4);
  auto r = checker.Check(b.txns);
  ASSERT_TRUE(r.serializable) << r.ToString();
  ASSERT_EQ(r.serial_order.size(), 2u);
  EXPECT_EQ(r.serial_order[0], 1u);
  EXPECT_EQ(r.serial_order[1], 2u);
}

TEST_F(SerializabilityTest, ConflictCycleDetected) {
  // T1 writes B before T2 reads it; T2 writes C before T1 reads it.
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kPut, {Value(1)}, 1, 2);
  b.Add(t1, 12, 1, kObjC, 0, generic_ops::kGet, {}, 7, 8);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kGet, {}, 3, 4);
  b.Add(t2, 22, 2, kObjC, 0, generic_ops::kPut, {Value(2)}, 5, 6);
  auto r = checker.Check(b.txns);
  EXPECT_FALSE(r.serializable);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations[0].find("cycle"), std::string::npos);
}

TEST_F(SerializabilityTest, CommutingActionsGenerateNoEdges) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjA, kItemT, "Ma", {}, 1, 2);
  b.Add(t1, 12, 1, kObjA, kItemT, "Mb", {}, 7, 8);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjA, kItemT, "Mb", {}, 3, 4);
  b.Add(t2, 22, 2, kObjA, kItemT, "Ma", {}, 5, 6);
  // Ma/Mb and Mb/Mb commute: the only edge is the ordered Ma/Ma conflict
  // (T1 before T2); the criss-cross Mb ordering adds nothing.
  auto r = checker.Check(b.txns);
  EXPECT_TRUE(r.serializable) << r.ToString();
}

TEST_F(SerializabilityTest, MaskedPseudoConflictIsIgnored) {
  // Leaf conflict on kObjB, but under commuting ancestors (Ma, Mb) on kObjA
  // with the earlier side completed before the later was granted: masked.
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjA, kItemT, "Ma", {}, 1, 4);
  b.Add(t1, 12, 11, kObjB, 0, generic_ops::kPut, {Value(1)}, 2, 3);
  b.Add(t1, 13, 1, kObjC, 0, generic_ops::kPut, {Value(1)}, 20, 21);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjA, kItemT, "Mb", {}, 5, 8);
  b.Add(t2, 22, 21, kObjB, 0, generic_ops::kGet, {}, 6, 7);
  b.Add(t2, 23, 2, kObjC, 0, generic_ops::kGet, {}, 10, 11);
  // Without masking this would be a cycle: T1->T2 on kObjB (Put before Get)
  // plus T2->T1 on kObjC (Get before Put). The kObjB conflict is masked by
  // the committed commuting ancestor pair, so the order is T2 before T1.
  auto r = checker.Check(b.txns);
  ASSERT_TRUE(r.serializable) << r.ToString();
  EXPECT_EQ(r.serial_order[0], 2u);
}

TEST_F(SerializabilityTest, UnmaskedWhenAncestorNotCompletedInTime) {
  // Same shape, but the holder-side ancestor completed AFTER the reader was
  // granted: the conflict is real and the cycle must be reported.
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjA, kItemT, "Ma", {}, 1, 30);  // completes very late
  b.Add(t1, 12, 11, kObjB, 0, generic_ops::kPut, {Value(1)}, 2, 3);
  b.Add(t1, 13, 1, kObjC, 0, generic_ops::kPut, {Value(1)}, 20, 21);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjA, kItemT, "Mb", {}, 5, 8);
  b.Add(t2, 22, 21, kObjB, 0, generic_ops::kGet, {}, 6, 7);
  b.Add(t2, 23, 2, kObjC, 0, generic_ops::kGet, {}, 10, 11);
  auto r = checker.Check(b.txns);
  EXPECT_FALSE(r.serializable) << r.ToString();
}

TEST_F(SerializabilityTest, AbortedTransactionsAreIgnored) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1", /*committed=*/false);
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kPut, {Value(1)}, 1, 2);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kGet, {}, 3, 4);
  auto r = checker.Check(b.txns);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.serial_order.size(), 1u);
}

TEST_F(SerializabilityTest, OverlappingConflictingLeavesFlagged) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kPut, {Value(1)}, 1, 5);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kPut, {Value(2)}, 2, 4);
  auto r = checker.Check(b.txns);
  EXPECT_FALSE(r.serializable);
  EXPECT_NE(r.violations[0].find("overlapping"), std::string::npos);
}

TEST_F(SerializabilityTest, ThreeWayCycleDetected) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjA, kItemT, "Ma", {}, 1, 2);    // before T2's Ma
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjA, kItemT, "Ma", {}, 3, 4);
  b.Add(t2, 22, 2, kObjB, 0, generic_ops::kPut, {Value(1)}, 5, 6);
  auto& t3 = b.NewTxn(3, "T3");
  b.Add(t3, 31, 3, kObjB, 0, generic_ops::kGet, {}, 7, 8);   // after T2
  b.Add(t3, 32, 3, kObjC, 0, generic_ops::kPut, {Value(1)}, 9, 10);
  // Close the loop: T1 reads C after T3 wrote it -> T3 before T1.
  b.Add(t1, 12, 1, kObjC, 0, generic_ops::kGet, {}, 11, 12);
  auto r = checker.Check(b.txns);
  // Order must be T1 < T2 < T3 < T1: a cycle.
  EXPECT_FALSE(r.serializable) << r.ToString();
}

// --- classical R/W checker ---------------------------------------------------

TEST(RWSerializability, ReadsDoNotConflict) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kGet, {}, 1, 5);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kGet, {}, 2, 6);
  auto r = CheckRWConflictSerializability(b.txns);
  EXPECT_TRUE(r.serializable);
}

TEST(RWSerializability, IgnoresMethodSemantics) {
  // Two "commuting" method invocations whose leaves physically conflict in a
  // cyclic way: the RW checker must flag it (it knows no semantics).
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kPut, {Value(1)}, 1, 2);
  b.Add(t1, 12, 1, kObjC, 0, generic_ops::kGet, {}, 7, 8);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kGet, {}, 3, 4);
  b.Add(t2, 22, 2, kObjC, 0, generic_ops::kPut, {Value(2)}, 5, 6);
  auto r = CheckRWConflictSerializability(b.txns);
  EXPECT_FALSE(r.serializable);
}

TEST(RWSerializability, InsertRemoveAreWrites) {
  HistoryBuilder b;
  auto& t1 = b.NewTxn(1, "T1");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kInsert, {Value(1), Value::Ref(5)}, 1, 5);
  auto& t2 = b.NewTxn(2, "T2");
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kScan, {}, 2, 4);  // overlapping
  auto r = CheckRWConflictSerializability(b.txns);
  EXPECT_FALSE(r.serializable);
}

// --- snapshot-read checker ---------------------------------------------------

// Shorthand: a committed snapshot txn with one Get on `obj` observing
// `observed`, as of snapshot timestamp `s`.
TxnRecord& SnapshotGet(HistoryBuilder& b, TxnId id, uint64_t s, Oid obj,
                       uint64_t observed) {
  auto& t = b.NewTxn(id, "R");
  t.snapshot = true;
  t.snapshot_ts = s;
  auto& a = b.Add(t, id * 10 + 1, id, obj, 0, generic_ops::kGet, {}, 1, 2);
  a.observed_ts = observed;
  return t;
}

TEST(SnapshotReads, AcceptsReadsFromCommittedPrefix) {
  HistoryBuilder b;
  SnapshotGet(b, 1, /*s=*/5, kObjB, /*observed=*/3);
  std::vector<VersionInstall> installs = {{3, {7}, {kObjB}}, {9, {8}, {kObjB}}};
  auto r = CheckSnapshotReads(b.txns, installs);
  EXPECT_TRUE(r.serializable) << r.ToString();
  ASSERT_EQ(r.serial_order.size(), 1u);
  EXPECT_EQ(r.serial_order[0], 1u);
}

TEST(SnapshotReads, RejectsReadOfLaterVersion) {
  // S=5 but the read observed ts=9, installed after the snapshot began.
  HistoryBuilder b;
  SnapshotGet(b, 1, 5, kObjB, 9);
  std::vector<VersionInstall> installs = {{3, {7}, {kObjB}}, {9, {8}, {kObjB}}};
  auto r = CheckSnapshotReads(b.txns, installs);
  EXPECT_FALSE(r.serializable);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].find("expected ts=3"), std::string::npos)
      << r.violations[0];
}

TEST(SnapshotReads, RejectsStaleRead) {
  // Both installs precede S; the read must see the newer one (ts=4), not
  // the older (ts=3).
  HistoryBuilder b;
  SnapshotGet(b, 1, 5, kObjB, 3);
  std::vector<VersionInstall> installs = {{3, {7}, {kObjB}}, {4, {8}, {kObjB}}};
  auto r = CheckSnapshotReads(b.txns, installs);
  EXPECT_FALSE(r.serializable);
}

TEST(SnapshotReads, BaseVersionExpectedWhenNoCoveringInstall) {
  // kObjC never appears in the install log: the read must report the base
  // version (observed_ts == 0); anything else is a phantom version.
  HistoryBuilder b;
  SnapshotGet(b, 1, 5, kObjC, 0);
  SnapshotGet(b, 2, 5, kObjC, 2);
  std::vector<VersionInstall> installs = {{2, {7}, {kObjB}}};
  auto r = CheckSnapshotReads(b.txns, installs);
  EXPECT_FALSE(r.serializable);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].find("T2"), std::string::npos) << r.violations[0];
}

TEST(SnapshotReads, IgnoresNonSnapshotAndUncommitted) {
  HistoryBuilder b;
  // Ordinary locking txn with a bogus observed_ts: not checked.
  auto& t1 = b.NewTxn(1, "W");
  b.Add(t1, 11, 1, kObjB, 0, generic_ops::kGet, {}, 1, 2).observed_ts = 42;
  // Aborted snapshot txn with a bogus observed_ts: not checked either.
  auto& t2 = b.NewTxn(2, "R", /*committed=*/false);
  t2.snapshot = true;
  t2.snapshot_ts = 5;
  b.Add(t2, 21, 2, kObjB, 0, generic_ops::kGet, {}, 1, 2).observed_ts = 42;
  auto r = CheckSnapshotReads(b.txns, {});
  EXPECT_TRUE(r.serializable) << r.ToString();
  EXPECT_TRUE(r.serial_order.empty());
}

TEST(CheckResultFormat, ToStringMentionsOrderOrViolation) {
  CheckResult ok;
  ok.serializable = true;
  ok.serial_order = {1, 2};
  EXPECT_NE(ok.ToString().find("T1"), std::string::npos);
  CheckResult bad;
  bad.serializable = false;
  bad.violations.push_back("cycle: T1 -> T2; T2 -> T1");
  EXPECT_NE(bad.ToString().find("NOT serializable"), std::string::npos);
}

}  // namespace
}  // namespace semcc
