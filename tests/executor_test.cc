// Figure 8 execution-engine edge cases: deep nesting, bypass mixtures,
// protocol variants over identical bodies, and error propagation.
#include <gtest/gtest.h>

#include "app/orderentry/order_entry.h"
#include "core/database.h"
#include "core/serializability.h"

namespace semcc {
namespace {

using namespace orderentry;

struct ExecutorTest : public ::testing::Test {
  void SetUp() override {
    types = Install(&db).ValueOrDie();
    LoadSpec spec;
    spec.num_items = 2;
    spec.orders_per_item = 2;
    data = Load(&db, types, spec).ValueOrDie();
  }
  Database db;
  OrderEntryTypes types;
  LoadedData data;
};

TEST_F(ExecutorTest, ThreeLevelInvocationTreeHasCorrectDepths) {
  // root (0) -> ShipOrder (1) -> ChangeStatus (2) -> Get/Put (3)
  ASSERT_TRUE(db.RunTransaction("t", [&](TxnCtx& ctx) {
                  return ctx.Invoke(data.item_oids[0], "ShipOrder", {Value(1)});
                }).ok());
  const TxnRecord txn = db.history()->Snapshot()[0];
  int max_depth = 0;
  for (const ActionRecord& a : txn.actions) max_depth = std::max(max_depth, a.depth);
  EXPECT_EQ(max_depth, 3);
}

TEST_F(ExecutorTest, MethodDefinedViaAnotherMethodNestsFourLevels) {
  // Register an Item method that invokes ShipOrder (method -> method ->
  // method -> leaves): arbitrary nesting, no layering restriction (the
  // paper's §1.2 point against strictly layered multilevel transactions).
  ASSERT_TRUE(db.RegisterMethod(
                    {types.item, "ShipFirstTwo", false,
                     [](TxnCtx& ctx, Oid self, const Args&) -> Result<Value> {
                       SEMCC_ASSIGN_OR_RETURN(
                           Value a, ctx.Invoke(self, "ShipOrder", {Value(1)}));
                       (void)a;
                       return ctx.Invoke(self, "ShipOrder", {Value(2)});
                     },
                     [](TxnCtx& ctx, Oid self, const Args&, const Value&) {
                       auto r1 = ctx.Invoke(self, "UnshipHelper", {Value(1)});
                       auto r2 = ctx.Invoke(self, "UnshipHelper", {Value(2)});
                       return r1.ok() ? (r2.ok() ? Status::OK() : r2.status())
                                      : r1.status();
                     }})
                  .ok());
  ASSERT_TRUE(db.RegisterMethod(
                    {types.item, "UnshipHelper", false,
                     [](TxnCtx& ctx, Oid self, const Args& a) -> Result<Value> {
                       SEMCC_ASSIGN_OR_RETURN(Oid orders,
                                              ctx.Component(self, "Orders"));
                       SEMCC_ASSIGN_OR_RETURN(Oid order,
                                              ctx.SetSelect(orders, a[0]));
                       return ctx.Invoke(order, "UnchangeStatus",
                                         {Value(kShipped)});
                     },
                     [](TxnCtx&, Oid, const Args&, const Value&) {
                       return Status::OK();
                     }})
                  .ok());
  ASSERT_TRUE(db.RunTransaction("t", [&](TxnCtx& ctx) {
                  return ctx.Invoke(data.item_oids[0], "ShipFirstTwo", {});
                }).ok());
  const TxnRecord txn = db.history()->Snapshot()[0];
  int max_depth = 0;
  for (const ActionRecord& a : txn.actions) max_depth = std::max(max_depth, a.depth);
  EXPECT_EQ(max_depth, 4);  // root>ShipFirstTwo>ShipOrder>ChangeStatus>leaf
  Oid o1 = FindOrder(&db, data.item_oids[0], 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(&db, o1).ValueOrDie(), kEventShippedBit);
}

TEST_F(ExecutorTest, MixedMethodAndBypassInOneTransaction) {
  // One transaction both invokes methods AND bypasses (generic ops).
  auto r = db.RunTransaction("mixed", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a,
                           ctx.Invoke(data.item_oids[0], "PayOrder", {Value(1)}));
    (void)a;
    // Direct (bypassing) read of the same order's status.
    SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(data.item_oids[0], "Orders"));
    SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, Value(1)));
    SEMCC_ASSIGN_OR_RETURN(Value status, ctx.GetField(order, "Status"));
    return status;
  });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Sees its own committed subtransaction's effect (same-root locks never
  // block, retained or not).
  EXPECT_EQ(r.ValueOrDie().AsInt(), kEventPaidBit);
}

TEST_F(ExecutorTest, ErrorInDeepLeafPropagatesToTop) {
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    return ctx.Invoke(data.item_oids[0], "ShipOrder",
                      {Value(int64_t{12345})});  // no such order
  });
  EXPECT_TRUE(r.status().IsNotFound());
  const TxnRecord txn = db.history()->Snapshot()[0];
  EXPECT_FALSE(txn.committed);
  // The ShipOrder node is recorded as aborted, its Select leaf too.
  bool ship_aborted = false;
  for (const ActionRecord& a : txn.actions) {
    if (a.method == "ShipOrder") {
      EXPECT_EQ(a.final_state, TxnState::kAborted);
      ship_aborted = true;
    }
  }
  EXPECT_TRUE(ship_aborted);
}

TEST_F(ExecutorTest, InvokeOnUnknownObjectFails) {
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) {
    return ctx.Invoke(999999, "ShipOrder", {Value(1)});
  });
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(ExecutorTest, GetOnTupleObjectRejected) {
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    return ctx.Get(data.item_oids[0]);  // item is a tuple, not an atom
  });
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ExecutorTest, SameBodyRunsUnderEveryProtocol) {
  for (Protocol protocol : {Protocol::kSemanticONT, Protocol::kClosedNested,
                            Protocol::kFlat2PL}) {
    DatabaseOptions options;
    options.protocol.protocol = protocol;
    Database db2(options);
    auto types2 = Install(&db2).ValueOrDie();
    LoadSpec spec;
    spec.num_items = 2;
    spec.orders_per_item = 2;
    spec.initial_qoh = 10;
    auto data2 = Load(&db2, types2, spec).ValueOrDie();
    ASSERT_TRUE(db2.RunTransaction("t", T1_ShipTwoOrders(data2.item_oids[0], 1,
                                                         data2.item_oids[1], 1))
                    .ok())
        << ProtocolName(protocol);
    EXPECT_LT(ReadQohRaw(&db2, data2.item_oids[0]).ValueOrDie(), 10)
        << ProtocolName(protocol);
  }
}

TEST_F(ExecutorTest, AbortDuringCompensationIsSurvivable) {
  // Destroy the order between the forward action and the abort: ShipOrder's
  // inverse will fail to find it. The transaction must still finish its
  // abort (best-effort compensation) without hanging or crashing.
  Oid item = data.item_oids[0];
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(item, "ShipOrder", {Value(1)}));
    (void)a;
    // Sabotage: remove the order out from under the pending compensation.
    SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(item, "Orders"));
    SEMCC_RETURN_NOT_OK(ctx.SetRemove(orders, Value(1)));
    return Status::PreconditionFailed("now abort");
  });
  EXPECT_TRUE(r.status().IsPreconditionFailed());
  // The SetRemove leaf undo re-inserted the order; ShipOrder's inverse ran
  // afterwards (reverse order) and found it again.
  Oid o1 = FindOrder(&db, item, 1).ValueOrDie();
  EXPECT_EQ(ReadStatusRaw(&db, o1).ValueOrDie(), 0);
}

TEST_F(ExecutorTest, EmptyTransactionCommits) {
  auto r = db.RunTransaction("noop", [&](TxnCtx&) -> Result<Value> {
    return Value(int64_t{42});
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().AsInt(), 42);
  const TxnRecord txn = db.history()->Snapshot()[0];
  EXPECT_EQ(txn.actions.size(), 1u);  // just the root
}

TEST_F(ExecutorTest, ScanReflectsOwnInserts) {
  auto r = db.RunTransaction("t", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value ono,
                           ctx.Invoke(data.item_oids[0], "NewOrder",
                                      {Value(9), Value(1)}));
    SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(data.item_oids[0], "Orders"));
    SEMCC_ASSIGN_OR_RETURN(auto members, ctx.SetScan(orders));
    EXPECT_EQ(members.size(), 3u);  // 2 loaded + own new order
    return ono;
  });
  ASSERT_TRUE(r.ok());
}

}  // namespace
}  // namespace semcc
