// Concurrency stress tests: Case-2 deadlocks through the detector's
// parent->child completion edges, FCFS under load, lock-manager health
// under sustained mixed traffic, and workload determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "app/orderentry/workload.h"
#include "core/database.h"
#include "core/serializability.h"
#include "test_env.h"
#include "util/sync.h"

namespace semcc {
namespace {

// Build a type with a scriptable method so two transactions can be parked
// *inside* method bodies, each holding a leaf lock the other needs. The
// resulting waits are Case-2 waits (the methods commute), so the deadlock
// cycle runs through subtransaction-completion edges — the detector must
// follow parent->incomplete-child edges to see it.
struct Case2DeadlockTest : public ::testing::Test {
  void SetUp() override {
    num = db.schema()->DefineAtomicType("Num").ValueOrDie();
    pair_t = db.schema()
                 ->DefineTupleType("PairObj", {{"x", num}, {"y", num}}, true)
                 .ValueOrDie();
    auto rmw = [](TxnCtx& ctx, Oid atom) -> Status {
      SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Get(atom));
      return ctx.Put(atom, Value(v.AsInt() + 1));
    };
    // TwoStep(first_atom, second_atom): RMW first, park, RMW second.
    ASSERT_TRUE(db.RegisterMethod(
                      {pair_t, "TwoStep", false,
                       [this, rmw](TxnCtx& ctx, Oid, const Args& a)
                           -> Result<Value> {
                         SEMCC_RETURN_NOT_OK(rmw(ctx, a[0].AsRef()));
                         sched.Signal("step1." + a[2].AsString());
                         sched.WaitFor("go", std::chrono::milliseconds(3000));
                         SEMCC_RETURN_NOT_OK(rmw(ctx, a[1].AsRef()));
                         return Value();
                       },
                       [rmw](TxnCtx& ctx, Oid, const Args& a, const Value&)
                           -> Status {
                         // Semantic inverse: decrement whatever was bumped.
                         auto dec = [&ctx](Oid atom) -> Status {
                           SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Get(atom));
                           return ctx.Put(atom, Value(v.AsInt() - 1));
                         };
                         (void)rmw;
                         Status s1 = dec(a[0].AsRef());
                         Status s2 = dec(a[1].AsRef());
                         return s1.ok() ? s2 : s1;
                       }})
                    .ok());
    // The methods commute with each other (they are blind increments).
    db.compat()->Define(pair_t, "TwoStep", "TwoStep", true);
    a_atom = db.store()->CreateAtomic(num, Value(int64_t{0})).ValueOrDie();
    b_atom = db.store()->CreateAtomic(num, Value(int64_t{0})).ValueOrDie();
    obj = db.store()
              ->CreateTuple(pair_t, {{"x", a_atom}, {"y", b_atom}})
              .ValueOrDie();
  }
  Database db;
  TypeId num = kInvalidTypeId, pair_t = kInvalidTypeId;
  Oid a_atom = kInvalidOid, b_atom = kInvalidOid, obj = kInvalidOid;
  ScriptedSchedule sched;
};

TEST_F(Case2DeadlockTest, DetectorBreaksSubtransactionWaitCycle) {
  // T1: RMW a then b; T2: RMW b then a. Both park after step 1 holding the
  // leaf lock of their first atom inside an ACTIVE method, then race for the
  // other atom: two Case-2 waits forming a cycle via the active methods.
  Status st1, st2;
  std::thread t1([&]() {
    auto r = db.RunTransactionOnce("T1", [&](TxnCtx& ctx) {
      return ctx.Invoke(obj, "TwoStep",
                        {Value::Ref(a_atom), Value::Ref(b_atom), Value("t1")});
    });
    st1 = r.ok() ? Status::OK() : r.status();
  });
  std::thread t2([&]() {
    auto r = db.RunTransactionOnce("T2", [&](TxnCtx& ctx) {
      return ctx.Invoke(obj, "TwoStep",
                        {Value::Ref(b_atom), Value::Ref(a_atom), Value("t2")});
    });
    st2 = r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(sched.WaitFor("step1.t1"));
  ASSERT_TRUE(sched.WaitFor("step1.t2"));
  sched.Signal("go");
  t1.join();
  t2.join();
  // Exactly one side dies as the deadlock victim; compensation fixes state.
  const bool one_failed = (!st1.ok()) != (!st2.ok());
  EXPECT_TRUE(one_failed) << "st1=" << st1.ToString()
                          << " st2=" << st2.ToString();
  EXPECT_GE(db.locks()->stats().deadlocks, 1u);
  EXPECT_GE(db.locks()->stats().case2_waits, 1u);
  // Exactly one TwoStep survived: both atoms at 1.
  EXPECT_EQ(db.store()->Get(a_atom).ValueOrDie().AsInt(), 1);
  EXPECT_EQ(db.store()->Get(b_atom).ValueOrDie().AsInt(), 1);
}

// --- FCFS under sustained writer pressure -------------------------------------

TEST(FcfsStress, WritersAndReadersAllComplete) {
  Database db;
  TypeId num = db.schema()->DefineAtomicType("Num").ValueOrDie();
  Oid atom = db.store()->CreateAtomic(num, Value(int64_t{0})).ValueOrDie();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  const int iters = test_env::IterCount("SEMCC_STRESS_ITERS", 100);
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&]() {
      for (int i = 0; i < iters; ++i) {
        auto r = db.RunTransaction("w", [&](TxnCtx& ctx) -> Result<Value> {
          SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Get(atom));
          SEMCC_RETURN_NOT_OK(ctx.Put(atom, Value(v.AsInt() + 1)));
          return Value();
        });
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (int rdr = 0; rdr < 4; ++rdr) {
    threads.emplace_back([&]() {
      for (int i = 0; i < iters; ++i) {
        auto r = db.RunTransaction("r", [&](TxnCtx& ctx) {
          return ctx.Get(atom);
        });
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // No lost updates despite the read-then-write upgrade pattern (deadlock
  // victims retried by Run()).
  EXPECT_EQ(db.store()->Get(atom).ValueOrDie().AsInt(), 4 * iters);
  EXPECT_EQ(db.locks()->stats().timeouts, 0u);
}

// --- determinism ---------------------------------------------------------------

TEST(WorkloadDeterminism, SameSeedSameSingleThreadedOutcome) {
  auto run = [](uint64_t seed) -> std::pair<uint64_t, int64_t> {
    Database db;
    auto types = orderentry::Install(&db).ValueOrDie();
    orderentry::WorkloadOptions wopts;
    wopts.load.num_items = 4;
    wopts.load.orders_per_item = 4;
    wopts.seed = seed;
    orderentry::OrderEntryWorkload workload(&db, types, wopts);
    (void)workload.Setup();
    auto result = workload.Run(1, 200);
    int64_t total = workload.TotalPaymentAllItems().ValueOrDie();
    return {result.committed, total};
  };
  auto a = run(7);
  auto b = run(7);
  auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.second, c.second);  // different seed, different state (a.s.)
}

// --- long mixed run stays healthy ----------------------------------------------

TEST(LongRun, MixedWorkloadThousandsOfTxns) {
  Database db;
  auto types = orderentry::Install(&db).ValueOrDie();
  orderentry::WorkloadOptions wopts;
  wopts.load.num_items = 6;
  wopts.load.orders_per_item = 6;
  wopts.zipf_theta = 0.9;
  wopts.seed = 31337;
  orderentry::OrderEntryWorkload workload(&db, types, wopts);
  ASSERT_TRUE(workload.Setup().ok());
  const int txns = test_env::IterCount("SEMCC_STRESS_ITERS", 250);
  auto result = workload.Run(8, txns);
  // RunTransactionOnce-style failures are rare; expect ~95%+ commits.
  EXPECT_GT(result.committed, static_cast<uint64_t>(8 * txns) * 95 / 100);
  EXPECT_EQ(db.locks()->stats().timeouts, 0u);
  EXPECT_EQ(db.locks()->NumWaiters(), 0u);  // nothing stuck
  SemanticSerializabilityChecker checker(db.compat());
  auto check = checker.Check(db.history()->Snapshot());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

}  // namespace
}  // namespace semcc
