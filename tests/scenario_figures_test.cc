// Integration tests reproducing the paper's execution scenarios:
//   Figure 4 — legal interleaving of two open nested transactions,
//   Figure 5 — the bypassing anomaly of the §3 protocol and its fix,
//   Figure 6 — Case 1 (commutative and committed ancestor),
//   Figure 7 — Case 2 (commutative but not yet committed ancestor).
#include <gtest/gtest.h>

#include "app/orderentry/scenario.h"
#include "core/serializability.h"

namespace semcc {
namespace orderentry {
namespace {

ProtocolOptions Semantic() {
  ProtocolOptions o;
  o.protocol = Protocol::kSemanticONT;
  return o;
}

ProtocolOptions Naive() {
  ProtocolOptions o = Semantic();
  o.retain_locks = false;  // the §3 protocol that Figure 5 breaks
  return o;
}

ProtocolOptions NoAncestorWalk() {
  ProtocolOptions o = Semantic();
  o.ancestor_walk = false;  // correct but without Case 1/2 relief
  return o;
}

ProtocolOptions Flat(LockGranularity g) {
  ProtocolOptions o;
  o.protocol = Protocol::kFlat2PL;
  o.granularity = g;
  return o;
}

CheckResult CheckSemantic(PaperScenario* s) {
  SemanticSerializabilityChecker checker(s->db->compat());
  return checker.Check(s->db->history()->Snapshot());
}

// --- Figure 4 ---------------------------------------------------------------

TEST(Fig4, SemanticProtocolAdmitsTheInterleaving) {
  auto s = MakePaperScenario(Semantic()).ValueOrDie();
  ScenarioOutcome out = RunFig4(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // T2's PayOrder(i1, o1) completed while T1 was still running: the paper's
  // point — ShipOrder and PayOrder commute, so nothing blocks.
  EXPECT_TRUE(out.right_overlapped_left) << out.trace;
  EXPECT_EQ(s->db->locks()->stats().root_waits, 0u) << out.note;
  CheckResult check = CheckSemantic(s.get());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

TEST(Fig4, Flat2PLSerializesTheSameSchedule) {
  auto s = MakePaperScenario(Flat(LockGranularity::kObject)).ValueOrDie();
  ScenarioOutcome out = RunFig4(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // Under conventional read/write locking, T2 blocks on o1's status atom
  // until T1 commits: no overlap.
  EXPECT_FALSE(out.right_overlapped_left) << out.trace;
  CheckResult rw = CheckRWConflictSerializability(s->db->history()->Snapshot());
  EXPECT_TRUE(rw.serializable) << rw.ToString();
}

TEST(Fig4, HistoryIsSemanticallySerializableUnderBothSerialOrders) {
  // The Figure 4 execution commits T1 and T2 with interleaved subtrees; the
  // checker must find *a* serial order (either T1,T2 or T2,T1).
  auto s = MakePaperScenario(Semantic()).ValueOrDie();
  RunFig4(s.get());
  CheckResult check = CheckSemantic(s.get());
  ASSERT_TRUE(check.serializable) << check.ToString();
  EXPECT_EQ(check.serial_order.size(), 2u);
}

TEST(Fig4, ClosedNestedAlsoSerializes) {
  ProtocolOptions o;
  o.protocol = Protocol::kClosedNested;
  auto s = MakePaperScenario(o).ValueOrDie();
  ScenarioOutcome out = RunFig4(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // Closed nesting only parallelizes WITHIN a transaction; between T1 and
  // T2 the anti-inherited read/write locks block just like flat 2PL.
  EXPECT_FALSE(out.right_overlapped_left) << out.trace;
  CheckResult rw = CheckRWConflictSerializability(s->db->history()->Snapshot());
  EXPECT_TRUE(rw.serializable) << rw.ToString();
}

// --- Figure 5 ---------------------------------------------------------------

TEST(Fig5, SemanticProtocolBlocksTheBypassingReader) {
  auto s = MakePaperScenario(Semantic()).ValueOrDie();
  ScenarioOutcome out = RunFig5(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // TestStatus(o1, shipped) formally conflicts with the retained
  // ChangeStatus(o1, shipped) lock and there is no commuting ancestor pair:
  // T3 waits for T1's top-level commit.
  EXPECT_FALSE(out.right_overlapped_left) << out.trace;
  EXPECT_GE(s->db->locks()->stats().root_waits, 1u) << out.note;
  CheckResult check = CheckSemantic(s.get());
  EXPECT_TRUE(check.serializable) << check.ToString();
  // T3 observed both orders shipped (it ran after T1 logically).
  EXPECT_NE(out.note.find("3"), std::string::npos) << out.note;
}

TEST(Fig5, NaiveProtocolAdmitsNonSerializableExecution) {
  auto s = MakePaperScenario(Naive()).ValueOrDie();
  ScenarioOutcome out = RunFig5(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // The §3 protocol released the subtransaction's locks, so T3 slipped in
  // between T1's two ShipOrder actions...
  EXPECT_TRUE(out.right_overlapped_left) << out.trace;
  // ... and saw o1 shipped but o2 not shipped — inconsistent with every
  // serial order. The checker must reject the history.
  CheckResult check = CheckSemantic(s.get());
  EXPECT_FALSE(check.serializable) << out.trace;
}

TEST(Fig5, ConventionalProtocolsAreSafeButBlind) {
  // Flat 2PL never admits the anomaly either — it simply blocks T3 on the
  // status atom. The paper's point is not that conventional CC is unsafe,
  // but that the naive OPEN protocol is; the price of 2PL is Figure 4's
  // lost concurrency.
  for (Protocol protocol : {Protocol::kFlat2PL, Protocol::kClosedNested}) {
    ProtocolOptions o;
    o.protocol = protocol;
    auto s = MakePaperScenario(o).ValueOrDie();
    ScenarioOutcome out = RunFig5(s.get());
    EXPECT_TRUE(out.t_left_committed) << ProtocolName(protocol);
    EXPECT_TRUE(out.t_right_committed) << ProtocolName(protocol);
    EXPECT_FALSE(out.right_overlapped_left) << ProtocolName(protocol);
    CheckResult rw =
        CheckRWConflictSerializability(s->db->history()->Snapshot());
    EXPECT_TRUE(rw.serializable) << rw.ToString();
  }
}

// --- Figure 6 (Case 1) --------------------------------------------------------

TEST(Fig6, CommittedCommutingAncestorGrantsImmediately) {
  auto s = MakePaperScenario(Semantic()).ValueOrDie();
  ScenarioOutcome out = RunFig6(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // T4 checks *payment*; ChangeStatus(o1, shipped) and TestStatus(o1, paid)
  // commute, and the ChangeStatus side is committed: Case 1, no blocking.
  EXPECT_TRUE(out.right_overlapped_left) << out.trace;
  EXPECT_GE(s->db->locks()->stats().case1_grants, 1u) << out.note;
  EXPECT_EQ(s->db->locks()->stats().root_waits, 0u) << out.note;
  CheckResult check = CheckSemantic(s.get());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

TEST(Fig6, WithoutAncestorWalkT4BlocksUnnecessarily) {
  auto s = MakePaperScenario(NoAncestorWalk()).ValueOrDie();
  ScenarioOutcome out = RunFig6(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // Ablation: without the commutative-ancestor test the formal conflict with
  // the retained Put(o1.Status) blocks T4 until T1's commit.
  EXPECT_FALSE(out.right_overlapped_left) << out.trace;
  EXPECT_GE(s->db->locks()->stats().root_waits, 1u) << out.note;
  // Still correct, just slower.
  CheckResult check = CheckSemantic(s.get());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

// --- Figure 7 (Case 2) --------------------------------------------------------

TEST(Fig7, UncommittedCommutingAncestorWaitsForSubtransactionOnly) {
  auto s = MakePaperScenario(Semantic()).ValueOrDie();
  ScenarioOutcome out = RunFig7(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  // T5 was blocked while ShipOrder(i1, o1) was still active...
  EXPECT_NE(out.note.find("T5 blocked"), std::string::npos) << out.note;
  EXPECT_GE(s->db->locks()->stats().case2_waits, 1u) << out.note;
  // ...but resumed on the *subtransaction's* completion, long before T1's
  // top-level commit.
  EXPECT_TRUE(out.right_overlapped_left) << out.trace;
  CheckResult check = CheckSemantic(s.get());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

TEST(Fig7, WithoutAncestorWalkT5WaitsForTopLevelCommit) {
  auto s = MakePaperScenario(NoAncestorWalk()).ValueOrDie();
  ScenarioOutcome out = RunFig7(s.get());
  EXPECT_TRUE(out.t_left_committed);
  EXPECT_TRUE(out.t_right_committed);
  EXPECT_FALSE(out.right_overlapped_left) << out.trace;
  CheckResult check = CheckSemantic(s.get());
  EXPECT_TRUE(check.serializable) << check.ToString();
}

}  // namespace
}  // namespace orderentry
}  // namespace semcc
