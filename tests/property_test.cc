// Property-based tests: randomized multi-threaded order-entry workloads run
// under every protocol; every run must
//   (a) be semantically serializable (tree-reduction checker),
//   (b) satisfy the application ledger invariants derived from the recorded
//       history (QuantityOnHand accounting, status event bits, order counts),
//   (c) for the conventional baselines, additionally be classically
//       R/W-conflict-serializable at the leaf level.
#include <gtest/gtest.h>

#include <map>

#include "app/orderentry/workload.h"
#include "core/serializability.h"

namespace semcc {
namespace orderentry {
namespace {

struct ProtocolParam {
  const char* name;
  Protocol protocol;
  LockGranularity granularity;
  bool ancestor_walk;
  bool rw_checkable;  // leaf accesses are classically serializable
  double zipf_theta;
};

std::ostream& operator<<(std::ostream& os, const ProtocolParam& p) {
  return os << p.name;
}

class WorkloadProperty : public ::testing::TestWithParam<ProtocolParam> {
 protected:
  void SetUp() override {
    const ProtocolParam& p = GetParam();
    DatabaseOptions options;
    options.protocol.protocol = p.protocol;
    options.protocol.granularity = p.granularity;
    options.protocol.ancestor_walk = p.ancestor_walk;
    db = std::make_unique<Database>(options);
    types = Install(db.get()).ValueOrDie();

    WorkloadOptions wopts;
    wopts.load.num_items = 8;
    wopts.load.orders_per_item = 6;
    wopts.load.initial_qoh = 100000;
    wopts.load.pre_paid = 0.3;
    wopts.load.pre_shipped = 0.3;
    wopts.zipf_theta = p.zipf_theta;
    wopts.seed = 20260707;
    workload = std::make_unique<OrderEntryWorkload>(db.get(), types, wopts);
    ASSERT_TRUE(workload->Setup().ok());
  }

  /// Replay the committed history against the final database state.
  void CheckLedgerInvariants() {
    // quantity shipped per item; ship/pay counts per (item, order).
    std::map<Oid, int64_t> shipped_qty;
    std::map<std::pair<Oid, int64_t>, int> ships, pays;
    std::map<Oid, int> new_orders;
    for (const TxnRecord& txn : db->history()->Snapshot()) {
      if (!txn.committed) continue;
      for (const ActionRecord& a : txn.actions) {
        if (!a.committed() || a.compensation) continue;
        if (a.method == "ShipOrder") {
          const int64_t ono = a.args[0].AsInt();
          Oid order = FindOrder(db.get(), a.object, ono).ValueOrDie();
          Oid qty = db->store()->Component(order, "Quantity").ValueOrDie();
          shipped_qty[a.object] += db->store()->Get(qty).ValueOrDie().AsInt();
          ships[{a.object, ono}]++;
        } else if (a.method == "PayOrder") {
          pays[{a.object, a.args[0].AsInt()}]++;
        } else if (a.method == "NewOrder") {
          new_orders[a.object]++;
        }
      }
    }
    for (size_t i = 0; i < workload->data().item_oids.size(); ++i) {
      Oid item = workload->data().item_oids[i];
      // (1) No lost QuantityOnHand updates.
      EXPECT_EQ(ReadQohRaw(db.get(), item).ValueOrDie(),
                100000 - shipped_qty[item])
          << "item " << i;
      // (2) Order count grew exactly by the committed NewOrders.
      Oid orders = db->store()->Component(item, "Orders").ValueOrDie();
      EXPECT_EQ(db->store()->SetSize(orders).ValueOrDie(),
                static_cast<size_t>(6 + new_orders[item]))
          << "item " << i;
      // (3) Status bits: shipped/paid set iff some committed transaction
      //     shipped/paid that order (bits are monotone; pre-loaded bits are
      //     accounted via the initial scan below).
      // Materialize the scan: iterating `SetScan(...).ValueOrDie()` directly
      // dangles in C++20 — the temporary Result dies before the loop body.
      const auto scan = db->store()->SetScan(orders).ValueOrDie();
      for (const auto& [key, order_oid] : scan) {
        const int64_t status = ReadStatusRaw(db.get(), order_oid).ValueOrDie();
        const auto k = std::make_pair(item, key.AsInt());
        if (ships.count(k) > 0) {
          EXPECT_TRUE(status & kEventShippedBit)
              << "item " << i << " order " << key.ToString();
        }
        if (pays.count(k) > 0) {
          EXPECT_TRUE(status & kEventPaidBit)
              << "item " << i << " order " << key.ToString();
        }
      }
    }
  }

  std::unique_ptr<Database> db;
  OrderEntryTypes types;
  std::unique_ptr<OrderEntryWorkload> workload;
};

TEST_P(WorkloadProperty, ConcurrentRunIsCorrect) {
  auto result = workload->Run(/*threads=*/4, /*txns_per_thread=*/120);
  EXPECT_GT(result.committed, 300u);  // most work must get through

  if (GetParam().protocol == Protocol::kSemanticONT) {
    // The tree-reduction checker derives ordering obligations from method-
    // level conflicts, which are lock-mediated only under the semantic
    // protocol; conventional histories are validated by the classical R/W
    // checker below (conflict-serializable implies semantically
    // serializable a fortiori).
    SemanticSerializabilityChecker checker(db->compat());
    auto check = checker.Check(db->history()->Snapshot());
    EXPECT_TRUE(check.serializable) << check.ToString();
  }
  if (GetParam().rw_checkable) {
    auto rw = CheckRWConflictSerializability(db->history()->Snapshot());
    EXPECT_TRUE(rw.serializable) << rw.ToString();
  }
  CheckLedgerInvariants();
}

TEST_P(WorkloadProperty, SingleThreadedRunIsSerialAndCorrect) {
  auto result = workload->Run(/*threads=*/1, /*txns_per_thread=*/150);
  EXPECT_EQ(result.failed, 0u);
  SemanticSerializabilityChecker checker(db->compat());
  auto check = checker.Check(db->history()->Snapshot());
  EXPECT_TRUE(check.serializable) << check.ToString();
  CheckLedgerInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, WorkloadProperty,
    ::testing::Values(
        ProtocolParam{"semantic", Protocol::kSemanticONT,
                      LockGranularity::kObject, true, false, 0.6},
        ProtocolParam{"semantic_hot", Protocol::kSemanticONT,
                      LockGranularity::kObject, true, false, 0.99},
        ProtocolParam{"semantic_nowalk", Protocol::kSemanticONT,
                      LockGranularity::kObject, false, false, 0.6},
        ProtocolParam{"closed_nested", Protocol::kClosedNested,
                      LockGranularity::kObject, true, true, 0.6},
        ProtocolParam{"flat_object", Protocol::kFlat2PL,
                      LockGranularity::kObject, true, true, 0.6},
        ProtocolParam{"flat_record", Protocol::kFlat2PL,
                      LockGranularity::kRecord, true, true, 0.6},
        ProtocolParam{"flat_page", Protocol::kFlat2PL, LockGranularity::kPage,
                      true, true, 0.6}),
    [](const ::testing::TestParamInfo<ProtocolParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace orderentry
}  // namespace semcc
