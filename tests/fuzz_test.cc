// Reference-model fuzz tests: random operation sequences against simple
// in-memory models, parameterized over seeds (TEST_P sweeps).
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "object/object_store.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/record_manager.h"
#include "test_env.h"
#include "util/random.h"

namespace semcc {
namespace {

class SeededFuzz : public ::testing::TestWithParam<uint64_t> {};

// --- Page vs. map<slot, string> -----------------------------------------

TEST_P(SeededFuzz, PageMatchesReferenceModel) {
  Random rng(GetParam());
  Page page;
  page.Reset(1);
  std::map<uint16_t, std::string> model;
  const int steps = test_env::IterCount("SEMCC_FUZZ_ITERS", 4000);
  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.Uniform(100);
    if (op < 40) {  // insert
      std::string rec(rng.Uniform(120) + 1, static_cast<char>('a' + rng.Uniform(26)));
      auto slot = page.Insert(rec);
      if (slot.ok()) {
        model[slot.ValueOrDie()] = rec;
      } else {
        EXPECT_TRUE(slot.status().IsOutOfSpace());
      }
    } else if (op < 60 && !model.empty()) {  // update
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string rec(rng.Uniform(150) + 1, static_cast<char>('A' + rng.Uniform(26)));
      Status st = page.Update(it->first, rec);
      if (st.ok()) {
        it->second = rec;
      } else {
        // Grow-updates that do not fit fail non-destructively.
        EXPECT_TRUE(st.IsOutOfSpace()) << st.ToString();
        auto read = page.Read(it->first);
        ASSERT_TRUE(read.ok());
        EXPECT_EQ(read.ValueOrDie(), it->second);
      }
    } else if (op < 75 && !model.empty()) {  // delete
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      EXPECT_TRUE(page.Delete(it->first).ok());
      model.erase(it);
    } else if (!model.empty()) {  // read random live slot
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      auto read = page.Read(it->first);
      ASSERT_TRUE(read.ok());
      EXPECT_EQ(read.ValueOrDie(), it->second);
    }
  }
  EXPECT_EQ(page.LiveRecords(), model.size());
  for (const auto& [slot, rec] : model) {
    EXPECT_EQ(page.Read(slot).ValueOrDie(), rec);
  }
}

// --- RecordManager vs. map<rid, string>, under a tiny buffer pool ---------

TEST_P(SeededFuzz, RecordManagerMatchesReferenceModel) {
  Random rng(GetParam() ^ 0xabcdef);
  DiskManager disk;
  BufferPool pool(3, &disk);  // tiny: constant eviction pressure
  RecordManager rm(&pool);
  std::map<std::string, std::string> model;  // key = rid string
  std::map<std::string, Rid> rids;
  const int steps = test_env::IterCount("SEMCC_FUZZ_ITERS", 3000);
  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.Uniform(100);
    if (op < 45) {
      std::string rec = "v" + std::to_string(rng.Next() % 100000);
      Rid rid = rm.Insert(rec).ValueOrDie();
      model[rid.ToString()] = rec;
      rids[rid.ToString()] = rid;
    } else if (op < 65 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string rec = "u" + std::to_string(rng.Next() % 100000);
      ASSERT_TRUE(rm.Update(rids[it->first], rec).ok());
      it->second = rec;
    } else if (op < 75 && !model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(rm.Delete(rids[it->first]).ok());
      rids.erase(it->first);
      model.erase(it);
    } else if (!model.empty()) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      EXPECT_EQ(rm.Read(rids[it->first]).ValueOrDie(), it->second);
    }
  }
  for (const auto& [key, rec] : model) {
    EXPECT_EQ(rm.Read(rids[key]).ValueOrDie(), rec);
  }
}

// --- ObjectStore sets vs. map<key, oid> -------------------------------------

TEST_P(SeededFuzz, SetOperationsMatchReferenceModel) {
  Random rng(GetParam() ^ 0x5e75);
  DiskManager disk;
  BufferPool pool(128, &disk);
  RecordManager rm(&pool);
  Schema schema;
  ObjectStore store(&schema, &rm);
  TypeId num = schema.DefineAtomicType("N").ValueOrDie();
  TypeId bag = schema.DefineSetType("Bag", num, "k").ValueOrDie();
  Oid set = store.CreateSet(bag).ValueOrDie();
  std::map<int64_t, Oid> model;
  const int steps = test_env::IterCount("SEMCC_FUZZ_ITERS", 3000);
  for (int step = 0; step < steps; ++step) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(64));
    const uint64_t op = rng.Uniform(100);
    if (op < 40) {
      Oid member = store.CreateAtomic(num, Value(key)).ValueOrDie();
      Status st = store.SetInsert(set, Value(key), member);
      if (model.count(key) > 0) {
        EXPECT_TRUE(st.IsAlreadyExists());
      } else {
        ASSERT_TRUE(st.ok());
        model[key] = member;
      }
    } else if (op < 65) {
      Status st = store.SetRemove(set, Value(key));
      if (model.count(key) > 0) {
        ASSERT_TRUE(st.ok());
        model.erase(key);
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else if (op < 90) {
      auto r = store.SetSelect(set, Value(key));
      if (model.count(key) > 0) {
        EXPECT_EQ(r.ValueOrDie(), model[key]);
      } else {
        EXPECT_TRUE(r.status().IsNotFound());
      }
    } else {
      EXPECT_EQ(store.SetSize(set).ValueOrDie(), model.size());
      auto scan = store.SetScan(set).ValueOrDie();
      ASSERT_EQ(scan.size(), model.size());
      auto mit = model.begin();
      for (const auto& [k, v] : scan) {
        EXPECT_EQ(k.AsInt(), mit->first);
        EXPECT_EQ(v, mit->second);
        ++mit;
      }
    }
  }
}

// --- Value codec fuzz ---------------------------------------------------------

TEST_P(SeededFuzz, ValueCodecRoundTripsRandomValues) {
  Random rng(GetParam() ^ 0xc0dec);
  const int steps = test_env::IterCount("SEMCC_FUZZ_ITERS", 2000);
  for (int i = 0; i < steps; ++i) {
    Value v;
    switch (rng.Uniform(6)) {
      case 0:
        v = Value();
        break;
      case 1:
        v = Value(rng.Bernoulli(0.5));
        break;
      case 2:
        v = Value(static_cast<int64_t>(rng.Next()));
        break;
      case 3:
        v = Value(rng.NextDouble() * 1e9 - 5e8);
        break;
      case 4: {
        std::string s(rng.Uniform(64), 'x');
        for (char& c : s) c = static_cast<char>(rng.Uniform(256));
        v = Value(s);
        break;
      }
      case 5:
        v = Value::Ref(rng.Next());
        break;
    }
    auto back = Value::Deserialize(v.Serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.ValueOrDie(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace semcc
