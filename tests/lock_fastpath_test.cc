// Tests for the §5.4 acquisition fast path (DESIGN.md): grant-cache hits,
// entry coalescing, nil-verdict memoization, and entry pooling — plus the
// properties that make them admissible:
//  * FCFS regression — a warm grant cache must NOT let a new identical
//    acquisition jump over an earlier-queued conflicting waiter (paper
//    footnote 5): the queue append epoch invalidates the published slot;
//  * verdict equivalence — a scripted single-threaded history must produce
//    byte-identical status sequences under every combination of the four
//    fast-path flags;
//  * zero allocation — a warm same-class re-acquire performs no heap
//    allocation (measured with a counting global operator new).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cc/compatibility.h"
#include "cc/lock_manager.h"
#include "cc/subtxn.h"

// --- counting global allocator --------------------------------------------
// Counts heap allocations on this thread while t_counting is set; used by
// the zero-allocation test. Counting is thread-local so background gtest or
// sanitizer machinery on other threads cannot pollute the window.

namespace {
thread_local bool t_counting = false;
thread_local uint64_t t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  if (t_counting) ++t_alloc_count;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  if (t_counting) ++t_alloc_count;
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace semcc {
namespace {

constexpr TypeId kItemT = 1;  // Ma/Mb commute, Ma/Ma conflict, Mb/Mb commute
constexpr TypeId kAtomT = 2;  // atomic leaves via generic Get/Put
constexpr TypeId kFcfsT = 3;  // Fa/Fa commute, Fa/Fb conflict, Fb/Fb conflict
constexpr TypeId kSetT = 5;   // set object via generic Insert/Remove
constexpr TypeId kKrngT = 6;  // Wr/Wr matrix-CONFLICT + point key footprint
constexpr Oid kObjA = 100;
constexpr Oid kObjB = 200;
constexpr Oid kObjC = 300;
constexpr Oid kObjF = 400;
constexpr Oid kObjK = 500;

struct LockFastPathTest : public ::testing::Test {
  LockFastPathTest() {
    compat.Define(kItemT, "Ma", "Mb", true);
    compat.Define(kItemT, "Ma", "Ma", false);
    compat.Define(kItemT, "Mb", "Mb", true);
    compat.Define(kFcfsT, "Fa", "Fa", true);
    compat.Define(kFcfsT, "Fa", "Fb", false);
    compat.Define(kFcfsT, "Fb", "Fb", false);
    // The keyrange escalation shape (§5.8): the matrix says Wr always
    // conflicts with Wr, but a non-exact footprint says each invocation
    // only touches the point key args[0] — so with keyrange_locks the lock
    // manager can prove Wr(1) and Wr(2) independent and skip the cell.
    compat.Define(kKrngT, "Wr", "Wr", false);
    MethodSpec wr;
    wr.reads = KeyRef::Point(0);
    wr.writes = KeyRef::Point(0);
    wr.exact = false;
    compat.DefineMethodSpec(kKrngT, "Wr", wr);
  }

  /// All four fast-path mechanisms on, checker off (the lock-free path is
  /// auto-disabled while debug_lock_checks is set).
  static ProtocolOptions FastOpts() {
    ProtocolOptions o;
    o.debug_lock_checks = false;
    o.lock_fast_path = true;
    o.coalesce_entries = true;
    o.memoize_conflicts = true;
    o.pool_entries = true;
    o.wait_timeout = std::chrono::milliseconds(20000);
    return o;
  }

  std::unique_ptr<LockManager> Make(ProtocolOptions o) {
    return std::make_unique<LockManager>(o, &compat);
  }

  void Complete(LockManager* lm, SubTxn* t) {
    t->set_state(TxnState::kCommitted);
    lm->OnSubTxnCompleted(t);
  }

  void Release(LockManager* lm, TxnTree* tree, TxnState final_state) {
    tree->root()->set_state(final_state);
    lm->OnSubTxnCompleted(tree->root());
    lm->ReleaseTree(tree->root());
  }

  CompatibilityRegistry compat;
};

// --- coalescing -----------------------------------------------------------

TEST_F(LockFastPathTest, CoalescingMergesIdenticalAcquisitions) {
  // Coalescing is a mutex-path mechanism, so it must work (and be checked)
  // with the invariant checker on and the lock-free cache consequently off.
  ProtocolOptions o = FastOpts();
  o.debug_lock_checks = true;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  for (int i = 0; i < 3; ++i) {
    SubTxn* n = t1.NewNode(t1.root(), kObjA, kItemT, "Mb", {});
    ASSERT_TRUE(lm->Acquire(n, LockTarget::ForObject(kObjA), true).ok());
  }
  auto locks = lm->LocksOn(LockTarget::ForObject(kObjA));
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0].count, 3u);
  EXPECT_EQ(lm->stats().coalesced_grants, 2u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(t1.root());
}

TEST_F(LockFastPathTest, CoalescingOffKeepsOneEntryPerAcquisition) {
  ProtocolOptions o = FastOpts();
  o.debug_lock_checks = true;
  o.coalesce_entries = false;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  for (int i = 0; i < 3; ++i) {
    SubTxn* n = t1.NewNode(t1.root(), kObjA, kItemT, "Mb", {});
    ASSERT_TRUE(lm->Acquire(n, LockTarget::ForObject(kObjA), true).ok());
  }
  auto locks = lm->LocksOn(LockTarget::ForObject(kObjA));
  EXPECT_EQ(locks.size(), 3u);
  for (const auto& info : locks) EXPECT_EQ(info.count, 1u);
  EXPECT_EQ(lm->stats().coalesced_grants, 0u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(t1.root());
}

TEST_F(LockFastPathTest, ArgSensitiveMethodsDoNotCoalesceAcrossKeys) {
  // Insert's commutativity depends on the key argument, so Insert(7) and
  // Insert(8) are distinct conflict classes and must keep distinct entries;
  // a repeat of Insert(7) coalesces onto the first.
  ProtocolOptions o = FastOpts();
  o.debug_lock_checks = true;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* i7 = t1.NewNode(t1.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(7)});
  SubTxn* i8 = t1.NewNode(t1.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(8)});
  SubTxn* i7b = t1.NewNode(t1.root(), kObjC, kSetT, generic_ops::kInsert,
                           {Value(7)});
  ASSERT_TRUE(lm->Acquire(i7, LockTarget::ForObject(kObjC), true).ok());
  ASSERT_TRUE(lm->Acquire(i8, LockTarget::ForObject(kObjC), true).ok());
  ASSERT_TRUE(lm->Acquire(i7b, LockTarget::ForObject(kObjC), true).ok());
  auto locks = lm->LocksOn(LockTarget::ForObject(kObjC));
  ASSERT_EQ(locks.size(), 2u);
  EXPECT_EQ(locks[0].count + locks[1].count, 3u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(t1.root());
}

TEST_F(LockFastPathTest, ArgInsensitivePutCoalescesAcrossValues) {
  // Put/Put conflicts regardless of the stored value — the value argument
  // never enters the verdict — so Put(1) and Put(2) are one conflict class.
  ProtocolOptions o = FastOpts();
  o.debug_lock_checks = true;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* p1 = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kPut,
                          {Value(1)});
  SubTxn* p2 = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kPut,
                          {Value(2)});
  ASSERT_TRUE(lm->Acquire(p1, LockTarget::ForObject(kObjB), true).ok());
  ASSERT_TRUE(lm->Acquire(p2, LockTarget::ForObject(kObjB), true).ok());
  auto locks = lm->LocksOn(LockTarget::ForObject(kObjB));
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0].count, 2u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(t1.root());
}

// --- grant cache ----------------------------------------------------------

TEST_F(LockFastPathTest, WarmReacquireHitsTheGrantCache) {
  auto lm = Make(FastOpts());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* first = t1.NewNode(t1.root(), kObjA, kItemT, "Mb", {});
  ASSERT_TRUE(lm->Acquire(first, LockTarget::ForObject(kObjA), true).ok());
  EXPECT_EQ(lm->stats().fast_path_hits, 0u);
  for (int i = 0; i < 5; ++i) {
    SubTxn* n = t1.NewNode(t1.root(), kObjA, kItemT, "Mb", {});
    ASSERT_TRUE(lm->Acquire(n, LockTarget::ForObject(kObjA), true).ok());
  }
  EXPECT_EQ(lm->stats().fast_path_hits, 5u);
  // Fast-path hits ride the published entry; the queue does not grow.
  EXPECT_EQ(lm->LocksOn(LockTarget::ForObject(kObjA)).size(), 1u);
  lm->ReleaseTree(t1.root());
}

TEST_F(LockFastPathTest, DifferentClassMissesTheCache) {
  auto lm = Make(FastOpts());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* mb = t1.NewNode(t1.root(), kObjA, kItemT, "Mb", {});
  ASSERT_TRUE(lm->Acquire(mb, LockTarget::ForObject(kObjA), true).ok());
  // Same target, different method: not the published class.
  SubTxn* ma = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(ma, LockTarget::ForObject(kObjA), true).ok());
  EXPECT_EQ(lm->stats().fast_path_hits, 0u);
  // Different parent (nested under mb, not under the root): also a miss —
  // the ancestor chain enters the verdict, so the class key includes it.
  SubTxn* nested = t1.NewNode(mb, kObjA, kItemT, "Mb", {});
  ASSERT_TRUE(lm->Acquire(nested, LockTarget::ForObject(kObjA), true).ok());
  EXPECT_EQ(lm->stats().fast_path_hits, 0u);
  lm->ReleaseTree(t1.root());
}

// --- FCFS regression (paper footnote 5) -----------------------------------

TEST_F(LockFastPathTest, WarmCacheDoesNotBypassEarlierConflictingWaiter) {
  // A holds Fa (published, warm). B's conflicting Fb queues behind it. Then
  // (1) C — a different tree — requests Fa, which commutes with A's granted
  // lock but must still queue behind B's earlier conflicting request, and
  // (2) A itself re-requests Fa, which must NOT be served from the now-stale
  // cache slot for the same reason: B's append bumped the queue epoch.
  ProtocolOptions o = FastOpts();
  o.deadlock_detection = false;  // A->B->A wait cycle is broken manually
  auto lm = Make(o);

  TxnTree ta(TxnTree::NextId(), "A", kDatabaseOid, 0);
  SubTxn* a1 = ta.NewNode(ta.root(), kObjF, kFcfsT, "Fa", {});
  ASSERT_TRUE(lm->Acquire(a1, LockTarget::ForObject(kObjF), true).ok());
  SubTxn* a2 = ta.NewNode(ta.root(), kObjF, kFcfsT, "Fa", {});
  ASSERT_TRUE(lm->Acquire(a2, LockTarget::ForObject(kObjF), true).ok());
  ASSERT_EQ(lm->stats().fast_path_hits, 1u);  // cache is warm

  TxnTree tb(TxnTree::NextId(), "B", kDatabaseOid, 0);
  TxnTree tc(TxnTree::NextId(), "C", kDatabaseOid, 0);
  SubTxn* b1 = tb.NewNode(tb.root(), kObjF, kFcfsT, "Fb", {});
  SubTxn* c1 = tc.NewNode(tc.root(), kObjF, kFcfsT, "Fa", {});
  SubTxn* a3 = ta.NewNode(ta.root(), kObjF, kFcfsT, "Fa", {});

  Status st_b, st_c, st_a3;
  std::thread thread_b([&]() {
    st_b = lm->Acquire(b1, LockTarget::ForObject(kObjF), true);
    Release(lm.get(), &tb, TxnState::kAborted);
  });
  while (lm->NumWaiters() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread thread_c([&]() {
    st_c = lm->Acquire(c1, LockTarget::ForObject(kObjF), true);
  });
  while (lm->NumWaiters() != 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread thread_a3([&]() {
    st_a3 = lm->Acquire(a3, LockTarget::ForObject(kObjF), true);
  });
  while (lm->NumWaiters() != 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // All three are genuinely queued: C despite commuting with every granted
  // lock, and A despite its warm cache slot. No further fast-path hits.
  EXPECT_EQ(lm->stats().fast_path_hits, 1u);
  EXPECT_GE(lm->stats().blocked_acquires, 3u);

  // Break the B<->A wait cycle by aborting B; C and A must then be granted
  // (their remaining verdicts are all nil).
  lm->OnAbortRequested(tb.root());
  thread_b.join();
  thread_c.join();
  thread_a3.join();
  EXPECT_TRUE(st_b.IsAborted()) << st_b.ToString();
  EXPECT_TRUE(st_c.ok()) << st_c.ToString();
  EXPECT_TRUE(st_a3.ok()) << st_a3.ToString();
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(tc.root());
  lm->ReleaseTree(ta.root());
}

// --- memoization ----------------------------------------------------------

TEST_F(LockFastPathTest, BlockedRescanReusesMemoizedNilVerdicts) {
  // Requester Ma blocks on one conflicting Ma holder while 4 commuting Mb
  // holders sit in the same queue: the wake-up rescan must answer the 4 nil
  // verdicts from the memo instead of re-walking ancestors.
  auto lm = Make(FastOpts());
  std::vector<std::unique_ptr<TxnTree>> commuters;
  for (int i = 0; i < 4; ++i) {
    commuters.push_back(std::make_unique<TxnTree>(
        TxnTree::NextId(), "H" + std::to_string(i), kDatabaseOid, 0));
    SubTxn* n = commuters.back()->NewNode(commuters.back()->root(), kObjA,
                                          kItemT, "Mb", {});
    ASSERT_TRUE(lm->Acquire(n, LockTarget::ForObject(kObjA), true).ok());
  }
  TxnTree blocker(TxnTree::NextId(), "X", kDatabaseOid, 0);
  SubTxn* xa = blocker.NewNode(blocker.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(xa, LockTarget::ForObject(kObjA), true).ok());

  TxnTree req(TxnTree::NextId(), "R", kDatabaseOid, 0);
  SubTxn* ra = req.NewNode(req.root(), kObjA, kItemT, "Ma", {});
  Status st;
  std::thread blocked([&]() {
    st = lm->Acquire(ra, LockTarget::ForObject(kObjA), true);
  });
  while (lm->NumWaiters() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Complete(lm.get(), xa);
  Release(lm.get(), &blocker, TxnState::kCommitted);
  blocked.join();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(lm->stats().memo_hits, 4u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(req.root());
  for (auto& t : commuters) lm->ReleaseTree(t->root());
}

// --- zero allocation ------------------------------------------------------

TEST_F(LockFastPathTest, WarmReacquireAllocatesNothing) {
  auto lm = Make(FastOpts());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  // Pre-create the action nodes: NewNode allocates, Acquire must not.
  SubTxn* first = t1.NewNode(t1.root(), kObjA, kItemT, "Mb", {});
  constexpr int kWarmAcquires = 64;
  std::vector<SubTxn*> nodes;
  for (int i = 0; i < kWarmAcquires; ++i) {
    nodes.push_back(t1.NewNode(t1.root(), kObjA, kItemT, "Mb", {}));
  }
  const LockTarget target = LockTarget::ForObject(kObjA);
  ASSERT_TRUE(lm->Acquire(first, target, true).ok());  // publishes the slot

  t_alloc_count = 0;
  t_counting = true;
  for (SubTxn* n : nodes) {
    Status st = lm->Acquire(n, target, true);
    if (!st.ok()) break;  // EXPECTs allocate; report outside the window
  }
  t_counting = false;
  EXPECT_EQ(t_alloc_count, 0u) << "warm re-acquire allocated";
  EXPECT_EQ(lm->stats().fast_path_hits,
            static_cast<uint64_t>(kWarmAcquires));
  lm->ReleaseTree(t1.root());
}

// --- key-range locks (§5.8) ------------------------------------------------

TEST_F(LockFastPathTest, KeyrangeRelievesDisjointMatrixConflict) {
  // Two foreign Wr invocations: the matrix cell is CONFLICT, but the key
  // intervals [1,1] and [2,2] are disjoint, so with keyrange_locks the
  // second acquisition is granted without a conflict test. Same key still
  // blocks, and with the flag off the matrix verdict stands unrelieved.
  ProtocolOptions o = FastOpts();
  o.keyrange_locks = true;
  o.wait_timeout = std::chrono::milliseconds(50);
  auto lm = Make(o);
  TxnTree ta(TxnTree::NextId(), "A", kDatabaseOid, 0);
  TxnTree tb(TxnTree::NextId(), "B", kDatabaseOid, 0);
  TxnTree tc(TxnTree::NextId(), "C", kDatabaseOid, 0);
  SubTxn* w1 = ta.NewNode(ta.root(), kObjK, kKrngT, "Wr", {Value(1)});
  SubTxn* w2 = tb.NewNode(tb.root(), kObjK, kKrngT, "Wr", {Value(2)});
  SubTxn* w1x = tc.NewNode(tc.root(), kObjK, kKrngT, "Wr", {Value(1)});
  ASSERT_TRUE(lm->Acquire(w1, LockTarget::ForObject(kObjK), true).ok());
  EXPECT_TRUE(lm->Acquire(w2, LockTarget::ForObject(kObjK), true).ok());
  EXPECT_GE(lm->stats().keyrange_skips, 1u);
  EXPECT_GE(lm->stats().commute_grants, 1u);
  EXPECT_TRUE(
      lm->Acquire(w1x, LockTarget::ForObject(kObjK), true).IsTimedOut());
  lm->ReleaseTree(tc.root());
  lm->ReleaseTree(tb.root());
  lm->ReleaseTree(ta.root());

  ProtocolOptions off = o;
  off.keyrange_locks = false;
  auto lm2 = Make(off);
  TxnTree td(TxnTree::NextId(), "D", kDatabaseOid, 0);
  TxnTree te(TxnTree::NextId(), "E", kDatabaseOid, 0);
  SubTxn* w3 = td.NewNode(td.root(), kObjK, kKrngT, "Wr", {Value(1)});
  SubTxn* w4 = te.NewNode(te.root(), kObjK, kKrngT, "Wr", {Value(2)});
  ASSERT_TRUE(lm2->Acquire(w3, LockTarget::ForObject(kObjK), true).ok());
  EXPECT_TRUE(
      lm2->Acquire(w4, LockTarget::ForObject(kObjK), true).IsTimedOut());
  EXPECT_EQ(lm2->stats().keyrange_skips, 0u);
  lm2->ReleaseTree(te.root());
  lm2->ReleaseTree(td.root());
}

TEST_F(LockFastPathTest, KeyrangeFcfsQueuesBehindOverlappingRangeWaiter) {
  // FCFS (footnote 5) with intervals: D's Insert(7) is disjoint from every
  // GRANTED lock, but an earlier-queued RangeScan[1,9] waiter overlaps key
  // 7 — D must queue behind it, not jump the line via the disjointness
  // precheck.
  ProtocolOptions o = FastOpts();
  o.keyrange_locks = true;
  auto lm = Make(o);
  const LockTarget target = LockTarget::ForObject(kObjC);

  TxnTree ta(TxnTree::NextId(), "A", kDatabaseOid, 0);
  SubTxn* a1 = ta.NewNode(ta.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(5)});
  ASSERT_TRUE(lm->Acquire(a1, target, true).ok());

  TxnTree tb(TxnTree::NextId(), "B", kDatabaseOid, 0);
  TxnTree tc(TxnTree::NextId(), "C", kDatabaseOid, 0);
  TxnTree td(TxnTree::NextId(), "D", kDatabaseOid, 0);
  SubTxn* b1 = tb.NewNode(tb.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(5)});
  SubTxn* c1 = tc.NewNode(tc.root(), kObjC, kSetT, generic_ops::kRangeScan,
                          {Value(1), Value(9)});
  SubTxn* d1 = td.NewNode(td.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(7)});

  Status st_b, st_c, st_d;
  std::thread thread_b([&]() {
    st_b = lm->Acquire(b1, target, true);
    if (st_b.ok()) Complete(lm.get(), b1);
    Release(lm.get(), &tb, TxnState::kCommitted);
  });
  while (lm->NumWaiters() != 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread thread_c([&]() {
    st_c = lm->Acquire(c1, target, false);
    if (st_c.ok()) Complete(lm.get(), c1);
    Release(lm.get(), &tc, TxnState::kCommitted);
  });
  while (lm->NumWaiters() != 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread thread_d([&]() { st_d = lm->Acquire(d1, target, true); });
  while (lm->NumWaiters() != 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // D is genuinely queued: its interval [7,7] passes A's granted [5,5] and
  // B's waiting [5,5], but C's earlier-queued overlapping [1,9] holds it.
  EXPECT_EQ(lm->NumWaiters(), 3u);

  // Release the chain: A's commit admits B, B's admits C, C's admits D.
  Complete(lm.get(), a1);
  Release(lm.get(), &ta, TxnState::kCommitted);
  thread_b.join();
  thread_c.join();
  thread_d.join();
  EXPECT_TRUE(st_b.ok()) << st_b.ToString();
  EXPECT_TRUE(st_c.ok()) << st_c.ToString();
  EXPECT_TRUE(st_d.ok()) << st_d.ToString();
  EXPECT_GE(lm->stats().keyrange_skips, 2u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(td.root());
}

TEST_F(LockFastPathTest, KeyrangeIntervalsGateCoalescingAndGrantCache) {
  // Wr is argument-INsensitive (conflict cell, no predicates), yet with
  // keyrange_locks each invocation carries its own interval — so the §5.4
  // reuse machinery must compare intervals, not just conflict classes:
  // coalescing may only merge interval-identical entries, and a published
  // grant-cache slot only serves re-acquires with the identical interval.
  ProtocolOptions o = FastOpts();
  o.keyrange_locks = true;
  o.debug_lock_checks = true;  // mutex path: exercises FindCoalescible
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  const LockTarget target = LockTarget::ForObject(kObjK);
  SubTxn* w1 = t1.NewNode(t1.root(), kObjK, kKrngT, "Wr", {Value(1)});
  SubTxn* w2 = t1.NewNode(t1.root(), kObjK, kKrngT, "Wr", {Value(2)});
  SubTxn* w1b = t1.NewNode(t1.root(), kObjK, kKrngT, "Wr", {Value(1)});
  ASSERT_TRUE(lm->Acquire(w1, target, true).ok());
  ASSERT_TRUE(lm->Acquire(w2, target, true).ok());  // interval differs
  ASSERT_TRUE(lm->Acquire(w1b, target, true).ok()); // merges onto w1's entry
  auto locks = lm->LocksOn(target);
  ASSERT_EQ(locks.size(), 2u);
  EXPECT_EQ(locks[0].count + locks[1].count, 3u);
  EXPECT_EQ(lm->stats().coalesced_grants, 1u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(t1.root());

  ProtocolOptions fast = FastOpts();
  fast.keyrange_locks = true;
  auto lm2 = Make(fast);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* v1 = t2.NewNode(t2.root(), kObjK, kKrngT, "Wr", {Value(1)});
  SubTxn* v2 = t2.NewNode(t2.root(), kObjK, kKrngT, "Wr", {Value(2)});
  SubTxn* v2b = t2.NewNode(t2.root(), kObjK, kKrngT, "Wr", {Value(2)});
  ASSERT_TRUE(lm2->Acquire(v1, target, true).ok());  // publishes [1,1]
  ASSERT_TRUE(lm2->Acquire(v2, target, true).ok());  // miss: interval [2,2]
  EXPECT_EQ(lm2->stats().fast_path_hits, 0u);
  ASSERT_TRUE(lm2->Acquire(v2b, target, true).ok()); // hit: slot now [2,2]
  EXPECT_EQ(lm2->stats().fast_path_hits, 1u);
  lm2->ReleaseTree(t2.root());
}

// --- verdict equivalence across all flag combinations ---------------------

// Runs a fixed single-threaded history touching every verdict family —
// commuting grants, Case-1 relief, retained-lock root waits (as timeouts),
// key-dependent generic conflicts, abort, compensation, pooled reuse — and
// returns the sequence of status codes. Blocked acquires deterministically
// surface as TimedOut via the short wait_timeout.
std::vector<int> RunVerdictScript(CompatibilityRegistry* compat, int mask) {
  ProtocolOptions o;
  o.debug_lock_checks = false;
  o.wait_timeout = std::chrono::milliseconds(50);
  o.lock_fast_path = (mask & 1) != 0;
  o.coalesce_entries = (mask & 2) != 0;
  o.memoize_conflicts = (mask & 4) != 0;
  o.pool_entries = (mask & 8) != 0;
  // Key-range locks must be verdict-preserving on this script: every cell
  // they skip (disjoint generic set keys) is one the key predicates already
  // resolve to commute, and overlapping/same-key pairs fall through to the
  // ordinary conflict test.
  o.keyrange_locks = (mask & 16) != 0;
  // adaptive_mode with no AdaptiveController attached (and no pinned
  // ModeSnapshot on any root): AcquireMode falls back to kSemantic for
  // every request, so the flag alone must be verdict-invisible. This is the
  // off-switch guarantee of DESIGN.md §5.9 — flipping the option on without
  // wiring the controller changes nothing.
  o.adaptive_mode = (mask & 32) != 0;
  LockManager lm(o, compat);
  std::vector<int> codes;
  auto rec = [&codes](const Status& st) {
    codes.push_back(static_cast<int>(st.code()));
  };
  auto obj = [](Oid oid) { return LockTarget::ForObject(oid); };

  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  TxnTree t3(TxnTree::NextId(), "T3", kDatabaseOid, 0);
  TxnTree t4(TxnTree::NextId(), "T4", kDatabaseOid, 0);

  // Retained-lock + Case-1 setup: T1 runs Ma{Put} and completes both.
  SubTxn* ma1 = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* put1 = t1.NewNode(ma1, kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  rec(lm.Acquire(ma1, obj(kObjA), true));
  rec(lm.Acquire(put1, obj(kObjB), true));
  put1->set_state(TxnState::kCommitted);
  lm.OnSubTxnCompleted(put1);
  ma1->set_state(TxnState::kCommitted);
  lm.OnSubTxnCompleted(ma1);

  // T2: commuting grant on kObjA, then Case-1 grant on the leaf below.
  SubTxn* mb1 = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  SubTxn* get1 = t2.NewNode(mb1, kObjB, kAtomT, generic_ops::kGet, {});
  rec(lm.Acquire(mb1, obj(kObjA), true));
  rec(lm.Acquire(get1, obj(kObjB), false));

  // T2 re-acquires its own class twice (cache/coalesce candidates).
  for (int i = 0; i < 2; ++i) {
    SubTxn* again = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
    rec(lm.Acquire(again, obj(kObjA), true));
  }

  // T3 conflicts with T1's retained Ma: root wait -> TimedOut.
  SubTxn* ma2 = t3.NewNode(t3.root(), kObjA, kItemT, "Ma", {});
  rec(lm.Acquire(ma2, obj(kObjA), true));

  // Key-addressed generics: T2 inserts 7 and 8; T4's Insert(7) conflicts,
  // its Insert(9) commutes.
  SubTxn* i7 = t2.NewNode(t2.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(7)});
  SubTxn* i8 = t2.NewNode(t2.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(8)});
  rec(lm.Acquire(i7, obj(kObjC), true));
  rec(lm.Acquire(i8, obj(kObjC), true));
  SubTxn* i7x = t4.NewNode(t4.root(), kObjC, kSetT, generic_ops::kInsert,
                           {Value(7)});
  SubTxn* i9 = t4.NewNode(t4.root(), kObjC, kSetT, generic_ops::kInsert,
                          {Value(9)});
  rec(lm.Acquire(i7x, obj(kObjC), true));
  rec(lm.Acquire(i9, obj(kObjC), true));

  // Abort request: T4's next acquire fails fast; its compensating Remove(9)
  // is exempt and still goes through.
  lm.OnAbortRequested(t4.root());
  SubTxn* i10 = t4.NewNode(t4.root(), kObjC, kSetT, generic_ops::kInsert,
                           {Value(10)});
  rec(lm.Acquire(i10, obj(kObjC), true));
  SubTxn* comp = t4.NewNode(t4.root(), kObjC, kSetT, generic_ops::kRemove,
                            {Value(9)});
  comp->set_compensation(true);
  rec(lm.Acquire(comp, obj(kObjC), true));

  // Tear down in a fixed order, then reuse the (possibly pooled) entries.
  t1.root()->set_state(TxnState::kCommitted);
  lm.OnSubTxnCompleted(t1.root());
  lm.ReleaseTree(t1.root());
  t2.root()->set_state(TxnState::kCommitted);
  lm.OnSubTxnCompleted(t2.root());
  lm.ReleaseTree(t2.root());
  t4.root()->set_state(TxnState::kAborted);
  lm.OnSubTxnCompleted(t4.root());
  lm.ReleaseTree(t4.root());
  lm.ReleaseTree(t3.root());

  TxnTree t5(TxnTree::NextId(), "T5", kDatabaseOid, 0);
  SubTxn* ma3 = t5.NewNode(t5.root(), kObjA, kItemT, "Ma", {});
  rec(lm.Acquire(ma3, obj(kObjA), true));
  lm.ReleaseTree(t5.root());

  codes.push_back(static_cast<int>(lm.CheckInvariantsNow()));
  return codes;
}

TEST_F(LockFastPathTest, VerdictsIdenticalUnderEveryFlagCombination) {
  const std::vector<int> baseline = RunVerdictScript(&compat, 0);
  // The script must have exercised both grant and block verdicts.
  EXPECT_GE(baseline.size(), 12u);
  EXPECT_NE(std::count(baseline.begin(), baseline.end(),
                       static_cast<int>(StatusCode::kTimedOut)),
            0);
  EXPECT_EQ(baseline.back(), 0);  // no invariant violations
  // Bits: 1 fast_path, 2 coalesce, 4 memoize, 8 pool, 16 keyrange,
  // 32 adaptive_mode (controller-less — must be inert).
  for (int mask = 1; mask < 64; ++mask) {
    EXPECT_EQ(RunVerdictScript(&compat, mask), baseline)
        << "verdict divergence with flag mask " << mask;
  }
}

}  // namespace
}  // namespace semcc
