// Environment-tunable iteration counts for the long-running tests.
//
// Sanitizer builds run 10-20x slower than native; rather than letting the
// stress/fuzz tests time out there, CI sets SEMCC_STRESS_ITERS /
// SEMCC_FUZZ_ITERS to shrink the workloads (and SEMCC_SWEEP_STRIDE to
// coarsen the crash-offset sweep) while exercising the same code paths.
// Unset (the default everywhere else) keeps the full counts, and all
// count-derived assertions scale with the override.
#ifndef SEMCC_TESTS_TEST_ENV_H_
#define SEMCC_TESTS_TEST_ENV_H_

#include <cstdlib>
#include <string>

namespace semcc {
namespace test_env {

/// The value of env var `name` if set to a positive integer, else `def`.
inline int IterCount(const char* name, int def) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return def;
  const int v = std::atoi(raw);
  return v > 0 ? v : def;
}

}  // namespace test_env
}  // namespace semcc

#endif  // SEMCC_TESTS_TEST_ENV_H_
