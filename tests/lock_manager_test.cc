// Unit tests for the lock manager: every branch of the paper's test-conflict
// (Figure 9) plus the baseline conflict rules, FCFS, deadlock detection, and
// timeouts — exercised directly on hand-built transaction trees.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cc/compatibility.h"
#include "cc/lock_manager.h"
#include "cc/subtxn.h"
#include "util/sync.h"

namespace semcc {
namespace {

constexpr TypeId kItemT = 1;   // "Item"-like type: methods Ma, Mb
constexpr TypeId kAtomT = 2;   // atomic leaves via generic Get/Put
constexpr Oid kObjA = 100;     // an encapsulated object
constexpr Oid kObjB = 200;     // an implementation atom below it

struct LockManagerTest : public ::testing::Test {
  LockManagerTest() {
    compat.Define(kItemT, "Ma", "Mb", true);    // commuting method pair
    compat.Define(kItemT, "Ma", "Ma", false);   // self-conflicting
    compat.Define(kItemT, "Mb", "Mb", true);
  }

  std::unique_ptr<LockManager> Make(ProtocolOptions o) {
    o.wait_timeout = std::chrono::milliseconds(2000);
    return std::make_unique<LockManager>(o, &compat);
  }

  static ProtocolOptions Semantic() { return ProtocolOptions{}; }

  void Complete(LockManager* lm, SubTxn* t) {
    t->set_state(TxnState::kCommitted);
    lm->OnSubTxnCompleted(t);
  }

  CompatibilityRegistry compat;
};

TEST_F(LockManagerTest, CommutingMethodsDoNotBlock) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(b, LockTarget::ForObject(kObjA), true).ok());
  EXPECT_EQ(lm->stats().blocked_acquires, 0u);
  EXPECT_GE(lm->stats().commute_grants, 1u);
  EXPECT_EQ(lm->LocksOn(LockTarget::ForObject(kObjA)).size(), 2u);
}

TEST_F(LockManagerTest, ConflictingMethodBlocksUntilTopLevelRelease) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t2.NewNode(t2.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());
  std::atomic<bool> granted{false};
  std::thread blocked([&]() {
    Status st = lm->Acquire(b, LockTarget::ForObject(kObjA), true);
    EXPECT_TRUE(st.ok()) << st.ToString();
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(granted.load());
  EXPECT_EQ(lm->NumWaiters(), 1u);
  // Completing the holder action alone does NOT release (retained lock)...
  Complete(lm.get(), a);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(granted.load());
  // ...only top-level completion does.
  Complete(lm.get(), t1.root());
  lm->ReleaseTree(t1.root());
  blocked.join();
  EXPECT_TRUE(granted.load());
  EXPECT_GE(lm->stats().root_waits, 1u);
}

TEST_F(LockManagerTest, SameTransactionNeverBlocksItself) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});  // conflicts a
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(b, LockTarget::ForObject(kObjA), true).ok());
  EXPECT_EQ(lm->stats().blocked_acquires, 0u);
}

TEST_F(LockManagerTest, Case1CommittedCommutingAncestorGrants) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* ma = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* put = t1.NewNode(ma, kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  ASSERT_TRUE(lm->Acquire(ma, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(put, LockTarget::ForObject(kObjB), true).ok());
  Complete(lm.get(), put);
  Complete(lm.get(), ma);  // ancestor committed -> Case 1 applies

  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* mb = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  SubTxn* get = t2.NewNode(mb, kObjB, kAtomT, generic_ops::kGet, {});
  ASSERT_TRUE(lm->Acquire(mb, LockTarget::ForObject(kObjA), true).ok());
  // Get conflicts with the retained Put, but (Ma, Mb) commute on kObjA and
  // Ma is committed: grant without blocking.
  ASSERT_TRUE(lm->Acquire(get, LockTarget::ForObject(kObjB), false).ok());
  EXPECT_EQ(lm->stats().blocked_acquires, 0u);
  EXPECT_GE(lm->stats().case1_grants, 1u);
}

TEST_F(LockManagerTest, Case2ActiveCommutingAncestorWaitsForItsCompletion) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* ma = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* put = t1.NewNode(ma, kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  ASSERT_TRUE(lm->Acquire(ma, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(put, LockTarget::ForObject(kObjB), true).ok());
  Complete(lm.get(), put);
  // Ma still active: the paper's Case 2.

  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* mb = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  SubTxn* get = t2.NewNode(mb, kObjB, kAtomT, generic_ops::kGet, {});
  ASSERT_TRUE(lm->Acquire(mb, LockTarget::ForObject(kObjA), true).ok());
  std::atomic<bool> granted{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm->Acquire(get, LockTarget::ForObject(kObjB), false).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(granted.load());
  // Completing just the subtransaction Ma (not the whole T1) resumes T2.
  Complete(lm.get(), ma);
  blocked.join();
  EXPECT_TRUE(granted.load());
  EXPECT_GE(lm->stats().case2_waits, 1u);
  EXPECT_FALSE(t1.root()->completed());  // T1 never committed
}

TEST_F(LockManagerTest, NoRetainModeReleasesDescendantLocksOnCompletion) {
  ProtocolOptions o;
  o.retain_locks = false;  // the §3 protocol
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* ma = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* put = t1.NewNode(ma, kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  ASSERT_TRUE(lm->Acquire(ma, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(put, LockTarget::ForObject(kObjB), true).ok());
  Complete(lm.get(), put);
  Complete(lm.get(), ma);
  // The Put lock is gone; only Ma's own lock remains (held by the root now).
  EXPECT_TRUE(lm->LocksOn(LockTarget::ForObject(kObjB)).empty());
  EXPECT_EQ(lm->LocksOn(LockTarget::ForObject(kObjA)).size(), 1u);
  // A conflicting access from another transaction slips through — this is
  // exactly the Figure 5 anomaly.
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* get = t2.NewNode(t2.root(), kObjB, kAtomT, generic_ops::kGet, {});
  EXPECT_TRUE(lm->Acquire(get, LockTarget::ForObject(kObjB), false).ok());
  EXPECT_EQ(lm->stats().blocked_acquires, 0u);
}

TEST_F(LockManagerTest, FcfsQueuedRequestBlocksLaterCompatibleOne) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  TxnTree t3(TxnTree::NextId(), "T3", kDatabaseOid, 0);
  SubTxn* h = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kGet, {});
  SubTxn* w = t2.NewNode(t2.root(), kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  SubTxn* r = t3.NewNode(t3.root(), kObjB, kAtomT, generic_ops::kGet, {});
  ASSERT_TRUE(lm->Acquire(h, LockTarget::ForObject(kObjB), false).ok());
  std::atomic<bool> w_granted{false};
  std::atomic<bool> r_granted{false};
  std::thread tw([&]() {
    EXPECT_TRUE(lm->Acquire(w, LockTarget::ForObject(kObjB), true).ok());
    w_granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread tr([&]() {
    EXPECT_TRUE(lm->Acquire(r, LockTarget::ForObject(kObjB), false).ok());
    r_granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // r commutes with the *held* Get but must respect the queued Put (FCFS).
  EXPECT_FALSE(w_granted.load());
  EXPECT_FALSE(r_granted.load());
  Complete(lm.get(), h);
  Complete(lm.get(), t1.root());
  lm->ReleaseTree(t1.root());
  tw.join();
  EXPECT_TRUE(w_granted.load());
  Complete(lm.get(), w);
  Complete(lm.get(), t2.root());
  lm->ReleaseTree(t2.root());
  tr.join();
  EXPECT_TRUE(r_granted.load());
}

TEST_F(LockManagerTest, AbortRequestUnblocksWaiter) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t2.NewNode(t2.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());
  std::thread blocked([&]() {
    Status st = lm->Acquire(b, LockTarget::ForObject(kObjA), true);
    EXPECT_TRUE(st.IsAborted()) << st.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // External aborts must go through the lock manager so the sleeping waiter
  // is actually woken (there is no polling fallback).
  lm->OnAbortRequested(t2.root());
  blocked.join();
  EXPECT_TRUE(t2.root()->abort_requested());
}

TEST_F(LockManagerTest, DeadlockDetectedAndYoungestVictimChosen) {
  auto lm = Make(Semantic());
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a1 = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b1 = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  SubTxn* a2 = t2.NewNode(t2.root(), kObjB, kAtomT, generic_ops::kPut, {Value(2)});
  SubTxn* b2 = t2.NewNode(t2.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a1, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(a2, LockTarget::ForObject(kObjB), true).ok());
  Status st1, st2;
  // On failure each thread emulates the executor's unwind: abort the tree
  // and release its locks so the survivor can proceed.
  auto unwind = [&](TxnTree* tree) {
    tree->root()->set_state(TxnState::kAborted);
    lm->OnSubTxnCompleted(tree->root());
    lm->ReleaseTree(tree->root());
  };
  std::thread th1([&]() {
    st1 = lm->Acquire(b1, LockTarget::ForObject(kObjB), true);
    if (!st1.ok()) unwind(&t1);
  });
  std::thread th2([&]() {
    st2 = lm->Acquire(b2, LockTarget::ForObject(kObjA), true);
    if (!st2.ok()) unwind(&t2);
  });
  // One side must be chosen as victim (Deadlock for the detector thread, or
  // Aborted when the flag is observed on the other side).
  th1.join();
  th2.join();
  const bool one_failed = (!st1.ok()) != (!st2.ok());
  EXPECT_TRUE(one_failed) << "st1=" << st1.ToString()
                          << " st2=" << st2.ToString();
  EXPECT_GE(lm->stats().deadlocks, 1u);
  // The victim is the younger transaction (higher root id): T2.
  if (!st2.ok()) {
    EXPECT_TRUE(st2.IsDeadlock() || st2.IsAborted()) << st2.ToString();
  }
}

TEST_F(LockManagerTest, WaitTimeoutFiresWithoutDetection) {
  ProtocolOptions o;
  o.deadlock_detection = false;
  o.wait_timeout = std::chrono::milliseconds(150);
  auto lm = std::make_unique<LockManager>(o, &compat);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b = t2.NewNode(t2.root(), kObjA, kItemT, "Ma", {});
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(kObjA), true).ok());
  Status st = lm->Acquire(b, LockTarget::ForObject(kObjA), true);
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  EXPECT_GE(lm->stats().timeouts, 1u);
}

// --- closed nested baseline ---------------------------------------------------

TEST_F(LockManagerTest, ClosedNestedInheritsToParentAndBlocksOthers) {
  ProtocolOptions o;
  o.protocol = Protocol::kClosedNested;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* child = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  ASSERT_TRUE(lm->Acquire(child, LockTarget::ForObject(kObjB), true).ok());
  Complete(lm.get(), child);
  // Lock anti-inherited by the root; a sibling of the same txn may pass...
  SubTxn* sibling = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kGet, {});
  ASSERT_TRUE(lm->Acquire(sibling, LockTarget::ForObject(kObjB), false).ok());
  // ...but another transaction stays blocked until t1 ends.
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* foreign = t2.NewNode(t2.root(), kObjB, kAtomT, generic_ops::kGet, {});
  std::atomic<bool> granted{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm->Acquire(foreign, LockTarget::ForObject(kObjB), false).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(granted.load());
  Complete(lm.get(), sibling);
  Complete(lm.get(), t1.root());
  lm->ReleaseTree(t1.root());
  blocked.join();
}

TEST_F(LockManagerTest, ClosedNestedSharedReadsPass) {
  ProtocolOptions o;
  o.protocol = Protocol::kClosedNested;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* r1 = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kGet, {});
  SubTxn* r2 = t2.NewNode(t2.root(), kObjB, kAtomT, generic_ops::kGet, {});
  ASSERT_TRUE(lm->Acquire(r1, LockTarget::ForObject(kObjB), false).ok());
  ASSERT_TRUE(lm->Acquire(r2, LockTarget::ForObject(kObjB), false).ok());
  EXPECT_EQ(lm->stats().blocked_acquires, 0u);
}

// --- flat 2PL baseline ---------------------------------------------------------

TEST_F(LockManagerTest, FlatSharedAndExclusiveModes) {
  ProtocolOptions o;
  o.protocol = Protocol::kFlat2PL;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* r1 = t1.NewNode(t1.root(), kObjB, kAtomT, generic_ops::kGet, {});
  SubTxn* r2 = t2.NewNode(t2.root(), kObjB, kAtomT, generic_ops::kGet, {});
  ASSERT_TRUE(lm->Acquire(r1, LockTarget::ForObject(kObjB), false).ok());
  ASSERT_TRUE(lm->Acquire(r2, LockTarget::ForObject(kObjB), false).ok());
  SubTxn* w = t2.NewNode(t2.root(), kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  std::atomic<bool> granted{false};
  std::thread blocked([&]() {
    EXPECT_TRUE(lm->Acquire(w, LockTarget::ForObject(kObjB), true).ok());
    granted = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(granted.load());  // writer waits for the foreign reader
  Complete(lm.get(), r1);
  Complete(lm.get(), t1.root());
  lm->ReleaseTree(t1.root());
  blocked.join();
  EXPECT_TRUE(granted.load());
}

TEST_F(LockManagerTest, DistinctTargetSpacesDoNotCollide) {
  ProtocolOptions o;
  o.protocol = Protocol::kFlat2PL;
  auto lm = Make(o);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a = t1.NewNode(t1.root(), 5, kAtomT, generic_ops::kPut, {Value(1)});
  SubTxn* b = t2.NewNode(t2.root(), 5, kAtomT, generic_ops::kPut, {Value(2)});
  // Same numeric key in different spaces: object 5 vs page 5.
  ASSERT_TRUE(lm->Acquire(a, LockTarget::ForObject(5), true).ok());
  ASSERT_TRUE(lm->Acquire(b, LockTarget::ForPage(5), true).ok());
  EXPECT_EQ(lm->stats().blocked_acquires, 0u);
}

TEST(LockTarget, FactoriesAndToString) {
  EXPECT_EQ(LockTarget::ForObject(7).ToString(), "obj:7");
  EXPECT_EQ(LockTarget::ForPage(3).ToString(), "page:3");
  Rid rid{2, 9};
  LockTarget t = LockTarget::ForRecord(rid);
  EXPECT_EQ(t.ToString(), "rec:" + std::to_string((2ull << 16) | 9));
  EXPECT_NE(LockTargetHash()(LockTarget::ForObject(7)),
            LockTargetHash()(LockTarget::ForPage(7)));
}

TEST(ProtocolNames, Strings) {
  EXPECT_STREQ(ProtocolName(Protocol::kSemanticONT), "semantic-ont");
  EXPECT_STREQ(ProtocolName(Protocol::kClosedNested), "closed-nested");
  EXPECT_STREQ(ProtocolName(Protocol::kFlat2PL), "flat-2pl");
  EXPECT_STREQ(GranularityName(LockGranularity::kPage), "page");
}

}  // namespace
}  // namespace semcc
