// Tests for the adaptive concurrency-mode controller (DESIGN.md §5.9):
//  * threshold decisions with hysteresis — demote to 2PL on a low commute
//    share, promote back on shadow-sampled commutes, the separate bands
//    preventing oscillation;
//  * minimum-dwell epochs — a freshly flipped type slot may not flip again
//    until it has sat out min_dwell_epochs sample windows;
//  * pin_mode — static pinning for the phase-shift bench's ablation legs;
//  * snapshot pinning / drain barrier — a pinned ModeSnapshot is immutable
//    for its holder, and a flip whose spare buffer is still pinned is
//    deferred (drain stall) rather than mutating modes under a reader;
//  * prudent mode end-to-end — hot-shard contention promotes kSemantic to
//    kPrudent, whose bounded FCFS bypass grants over an earlier waiting
//    (never granted) entry; cooling demotes back;
//  * a mode-flip-under-load stress run (TSan-clean; invariant checker on).
//
// All decision tests inject synthetic counter traffic through the
// controller's Record* feed — no real contention is needed to exercise the
// policy, which is the point of keeping Decide() a pure function of the
// sampled window.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cc/adaptive_controller.h"
#include "cc/compatibility.h"
#include "cc/lock_manager.h"
#include "cc/subtxn.h"

namespace semcc {
namespace {

constexpr TypeId kT = 5;  // slot 5 of the controller's 64 type slots
constexpr Oid kObj = 100;

struct AdaptiveControllerTest : public ::testing::Test {
  AdaptiveControllerTest() {
    compat.Define(kT, "C", "C", true);    // commuting pair
    compat.Define(kT, "X", "X", false);   // conflicting pair
    compat.Define(kT, "C", "X", true);    // commute across the two
    compat.Define(kT, "H", "H", false);
    compat.Define(kT, "W", "H", false);   // waiter conflicts with holder
    compat.Define(kT, "W", "W", false);
    compat.Define(kT, "R", "H", true);    // requester commutes with holder
    compat.Define(kT, "R", "W", false);   // ... but conflicts with waiter
    compat.Define(kT, "R", "R", true);
  }

  static ProtocolOptions AdaptiveOpts(int dwell, uint64_t min_samples = 8) {
    ProtocolOptions o;
    o.adaptive_mode = true;
    o.adaptive.min_dwell_epochs = dwell;
    o.adaptive.min_conflict_samples = min_samples;
    o.adaptive.background_thread = false;
    o.wait_timeout = std::chrono::milliseconds(0);
    return o;
  }

  /// Inject one window's worth of conflict verdicts for kT.
  static void Flood(AdaptiveController* c, ConflictOutcome why, int n) {
    for (int i = 0; i < n; ++i) c->RecordVerdict(kT, why);
  }
  static void FloodShadow(AdaptiveController* c, bool commutes, int n) {
    for (int i = 0; i < n; ++i) c->RecordShadow(kT, commutes);
  }

  CompatibilityRegistry compat;
};

TEST_F(AdaptiveControllerTest, DemotesTo2PLAndPromotesBackWithHysteresis) {
  LockManager lm(AdaptiveOpts(/*dwell=*/1), &compat);
  AdaptiveController c(&lm);

  // Epoch 1: pure root-wait traffic. The decision says k2PL but the slot
  // has only 1 epoch in kSemantic (<= dwell), so no flip yet.
  Flood(&c, ConflictOutcome::kRootWait, 20);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::kSemantic);
  EXPECT_EQ(c.stats().flips, 0u);

  // Epoch 2: dwell satisfied — the demotion lands.
  Flood(&c, ConflictOutcome::kRootWait, 20);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::k2PL);
  EXPECT_EQ(c.stats().flips, 1u);
  EXPECT_EQ(c.stats().types_2pl, 1u);

  // Shadow-commute traffic promotes back (after its own dwell).
  FloodShadow(&c, true, 20);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::k2PL);  // dwell again
  FloodShadow(&c, true, 20);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::kSemantic);
  EXPECT_EQ(c.stats().flips, 2u);
}

TEST_F(AdaptiveControllerTest, HysteresisBandHoldsBorderlineTraffic) {
  // 10% commute share: above demote_commute_share (5%) so kSemantic holds;
  // and were the type in k2PL, 10% shadow commutes would stay below
  // promote_commute_share (20%) — the band keeps both directions stable.
  LockManager lm(AdaptiveOpts(/*dwell=*/0), &compat);
  AdaptiveController c(&lm);
  for (int epoch = 0; epoch < 4; ++epoch) {
    Flood(&c, ConflictOutcome::kCommute, 2);
    Flood(&c, ConflictOutcome::kRootWait, 18);
    c.SampleNow();
    EXPECT_EQ(c.ModeOf(kT), CcMode::kSemantic);
  }
  EXPECT_EQ(c.stats().flips, 0u);
}

TEST_F(AdaptiveControllerTest, MinDwellEpochsDelaysFlip) {
  LockManager lm(AdaptiveOpts(/*dwell=*/3), &compat);
  AdaptiveController c(&lm);
  for (int epoch = 1; epoch <= 3; ++epoch) {
    Flood(&c, ConflictOutcome::kRootWait, 20);
    c.SampleNow();
    EXPECT_EQ(c.ModeOf(kT), CcMode::kSemantic) << "epoch " << epoch;
  }
  Flood(&c, ConflictOutcome::kRootWait, 20);
  c.SampleNow();  // epoch 4 > dwell 3
  EXPECT_EQ(c.ModeOf(kT), CcMode::k2PL);
}

TEST_F(AdaptiveControllerTest, TooFewSamplesNeverDecides) {
  LockManager lm(AdaptiveOpts(/*dwell=*/0, /*min_samples=*/32), &compat);
  AdaptiveController c(&lm);
  for (int epoch = 0; epoch < 4; ++epoch) {
    Flood(&c, ConflictOutcome::kRootWait, 31);  // one short of the floor
    c.SampleNow();
  }
  EXPECT_EQ(c.ModeOf(kT), CcMode::kSemantic);
  EXPECT_EQ(c.stats().flips, 0u);
}

TEST_F(AdaptiveControllerTest, PinModeForcesStaticAssignment) {
  ProtocolOptions o = AdaptiveOpts(/*dwell=*/0);
  o.adaptive.pin_mode = static_cast<int>(CcMode::k2PL);
  LockManager lm(o, &compat);
  AdaptiveController c(&lm);
  EXPECT_EQ(c.ModeOf(kT), CcMode::k2PL);
  // Promote-worthy traffic changes nothing under a pin.
  FloodShadow(&c, true, 64);
  c.SampleNow();
  FloodShadow(&c, true, 64);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::k2PL);
  EXPECT_EQ(c.stats().flips, 0u);
  EXPECT_EQ(c.stats().types_2pl, ModeSnapshot::kTypeSlots);
}

TEST_F(AdaptiveControllerTest, PinnedSnapshotIsImmutableAndDefersFlips) {
  LockManager lm(AdaptiveOpts(/*dwell=*/0), &compat);
  AdaptiveController c(&lm);

  const ModeSnapshot* pinned = c.Pin();
  EXPECT_EQ(pinned->ModeFor(kT), CcMode::kSemantic);

  // First flip writes the *other* (unpinned) buffer: it lands, and the
  // pinned snapshot still reads the old mode.
  Flood(&c, ConflictOutcome::kRootWait, 20);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::k2PL);
  EXPECT_EQ(pinned->ModeFor(kT), CcMode::kSemantic);

  // Second flip wants to reuse the pinned buffer as its spare — the drain
  // barrier defers it (stall counted) instead of mutating under the pin.
  FloodShadow(&c, true, 20);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::k2PL);
  EXPECT_GE(c.stats().drain_stalls, 1u);
  EXPECT_EQ(pinned->ModeFor(kT), CcMode::kSemantic);

  // Unpinning releases the barrier; the next epoch's decision lands.
  c.Unpin(pinned);
  FloodShadow(&c, true, 20);
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::kSemantic);
}

TEST_F(AdaptiveControllerTest, HotContentionPromotesToPrudentAndCoolsBack) {
  ProtocolOptions o = AdaptiveOpts(/*dwell=*/0);
  o.adaptive.cool_blocked_share = 0.5;
  LockManager lm(o, &compat);
  AdaptiveController c(&lm);
  lm.SetAdaptiveController(&c);

  // Holder keeps an X lock on the object for the whole hot phase.
  TxnTree holder(TxnTree::NextId(), "H", kDatabaseOid, 0);
  SubTxn* h = holder.NewNode(holder.root(), kObj, kT, "X", {});
  ASSERT_TRUE(lm.Acquire(h, LockTarget::ForObject(kObj), true).ok());

  // 40 conflicting acquires (blocked, wait_timeout 0 -> immediate TimedOut)
  // + 24 commuting ones: blocked share 0.625 > hot_blocked_share with a
  // commute share still over the demote floor, and the object's shard runs
  // hot -> kPrudent.
  for (int i = 0; i < 40; ++i) {
    TxnTree t(TxnTree::NextId(), "B", kDatabaseOid, 0);
    SubTxn* n = t.NewNode(t.root(), kObj, kT, "X", {});
    EXPECT_TRUE(lm.Acquire(n, LockTarget::ForObject(kObj), true).IsTimedOut());
    lm.ReleaseTree(t.root());
  }
  for (int i = 0; i < 24; ++i) {
    TxnTree t(TxnTree::NextId(), "Cm", kDatabaseOid, 0);
    SubTxn* n = t.NewNode(t.root(), kObj, kT, "C", {});
    EXPECT_TRUE(lm.Acquire(n, LockTarget::ForObject(kObj), false).ok());
    lm.ReleaseTree(t.root());
  }
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::kPrudent);
  EXPECT_GE(c.stats().hot_shards, 1u);

  // Cooling: commute-only traffic, nothing blocked -> back to kSemantic.
  for (int i = 0; i < 32; ++i) {
    TxnTree t(TxnTree::NextId(), "Cm", kDatabaseOid, 0);
    SubTxn* n = t.NewNode(t.root(), kObj, kT, "C", {});
    EXPECT_TRUE(lm.Acquire(n, LockTarget::ForObject(kObj), false).ok());
    lm.ReleaseTree(t.root());
  }
  c.SampleNow();
  EXPECT_EQ(c.ModeOf(kT), CcMode::kSemantic);

  lm.ReleaseTree(holder.root());
}

TEST_F(AdaptiveControllerTest, PrudentModeBypassesEarlierWaitingEntry) {
  // H holds; W waits behind H; R commutes with H but conflicts with W.
  // FCFS (footnote 5) queues R behind the earlier waiter W — unless the
  // requester's type is in kPrudent, whose bounded bypass skips waiting
  // (never granted) entries. pin_mode pins the modes deterministically.
  // The discriminator is whether R's acquire ever *blocks*: under kPrudent
  // it is granted on the first scan (blocked_acquires stays at W's 1);
  // under kSemantic it parks behind W (blocked_acquires reaches 2) and is
  // only resolved once W's own timeout clears the queue.
  auto run = [&](CcMode pin) {
    ProtocolOptions o = AdaptiveOpts(/*dwell=*/0);
    o.adaptive.pin_mode = static_cast<int>(pin);
    o.wait_timeout = std::chrono::milliseconds(100);
    LockManager lm(o, &compat);
    AdaptiveController c(&lm);
    lm.SetAdaptiveController(&c);

    TxnTree ht(TxnTree::NextId(), "H", kDatabaseOid, 0);
    SubTxn* h = ht.NewNode(ht.root(), kObj, kT, "H", {});
    EXPECT_TRUE(lm.Acquire(h, LockTarget::ForObject(kObj), true).ok());

    TxnTree wt(TxnTree::NextId(), "W", kDatabaseOid, 0);
    SubTxn* w = wt.NewNode(wt.root(), kObj, kT, "W", {});
    std::thread waiter([&]() {
      // Parks behind H until the timeout (H is never released mid-test).
      EXPECT_TRUE(
          lm.Acquire(w, LockTarget::ForObject(kObj), true).IsTimedOut());
    });
    while (lm.stats().blocked_acquires < 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }

    TxnTree rt(TxnTree::NextId(), "R", kDatabaseOid, 0);
    SubTxn* r = rt.NewNode(rt.root(), kObj, kT, "R", {});
    const ModeSnapshot* pin_snap = c.Pin();
    rt.root()->set_mode_snapshot(pin_snap);
    const Status st = lm.Acquire(r, LockTarget::ForObject(kObj), true);
    // blocked_acquires is cumulative: W's block is already counted and R's
    // own block (if any) has been counted by the time Acquire returns.
    const LockStats ls = lm.stats();
    waiter.join();
    lm.ReleaseTree(rt.root());
    lm.ReleaseTree(wt.root());
    lm.ReleaseTree(ht.root());
    c.Unpin(pin_snap);
    return std::make_tuple(st, ls.blocked_acquires, ls.prudent_bypasses);
  };

  auto [prudent_st, prudent_blocked, prudent_bypasses] = run(CcMode::kPrudent);
  EXPECT_TRUE(prudent_st.ok()) << prudent_st.ToString();
  EXPECT_EQ(prudent_blocked, 1u);  // only W; R was granted on first scan
  EXPECT_GE(prudent_bypasses, 1u);

  // Under kSemantic, R queues behind W. Whether R's acquire then resolves
  // OK (W's timeout clears the queue first and H commutes) or TimedOut (R's
  // own deadline wins the race) depends on scheduling — what is
  // deterministic is that R blocked and nothing was bypassed.
  auto [semantic_st, semantic_blocked, semantic_bypasses] =
      run(CcMode::kSemantic);
  (void)semantic_st;
  EXPECT_EQ(semantic_blocked, 2u);  // W and R
  EXPECT_EQ(semantic_bypasses, 0u);
}

TEST_F(AdaptiveControllerTest, StatsJsonCarriesAllFields) {
  LockManager lm(AdaptiveOpts(/*dwell=*/0), &compat);
  AdaptiveController c(&lm);
  const std::string j = c.stats().ToJson();
  for (const char* field :
       {"\"epochs\"", "\"flips\"", "\"drain_stalls\"", "\"types_semantic\"",
        "\"types_2pl\"", "\"types_prudent\"", "\"shadow_commute\"",
        "\"shadow_conflict\"", "\"hot_shards\""}) {
    EXPECT_NE(j.find(field), std::string::npos) << field << " in " << j;
  }
}

// Mode flips racing a multi-threaded workload: every transaction pins a
// snapshot (as TxnManager does), a sampler thread flips modes as the phase
// mix shifts, and the debug invariant checker must stay clean throughout.
// Run under TSan in CI; locally it asserts the invariant counters.
TEST_F(AdaptiveControllerTest, ModeFlipUnderLoadKeepsInvariants) {
  ProtocolOptions o = AdaptiveOpts(/*dwell=*/0, /*min_samples=*/4);
  o.debug_lock_checks = true;
  o.wait_timeout = std::chrono::milliseconds(100);
  LockManager lm(o, &compat);
  AdaptiveController c(&lm);
  lm.SetAdaptiveController(&c);

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<bool> stop{false};
  std::thread sampler([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      c.SampleNow();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> workers;
  for (int tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid]() {
      for (int i = 0; i < kIters; ++i) {
        TxnTree t(TxnTree::NextId(), "w", kDatabaseOid, 0);
        const ModeSnapshot* pin = c.Pin();
        t.root()->set_mode_snapshot(pin);
        // Phase shift: conflict-heavy on one hot object first, commuting
        // across spread objects second — drives real mode flips.
        const bool hot_phase = i < kIters / 2;
        const Oid obj = hot_phase ? kObj : kObj + 1 + (tid % 3);
        SubTxn* n = t.NewNode(t.root(), obj, kT, hot_phase ? "X" : "C", {});
        (void)lm.Acquire(n, LockTarget::ForObject(obj), hot_phase);
        t.root()->set_state(TxnState::kCommitted);
        lm.OnSubTxnCompleted(t.root());
        lm.ReleaseTree(t.root());
        c.Unpin(pin);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_release);
  sampler.join();

  EXPECT_EQ(lm.CheckInvariantsNow(), 0u);
  const auto& inv = lm.invariant_stats();
  EXPECT_EQ(inv.grant_violations.load(), 0u);
  EXPECT_EQ(inv.retained_violations.load(), 0u);
  EXPECT_GE(c.stats().epochs, 1u);
}

}  // namespace
}  // namespace semcc
