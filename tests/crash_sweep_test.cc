// Crash-at-every-byte-offset sweep over the durable log.
//
// Generate an order-entry workload on a WAL database, take the device's
// synced image, and then — for every prefix length k — pretend the machine
// died with exactly k bytes on the platter: materialize the prefix as an
// on-disk segment file, restart a fresh database from that directory, and
// check the recovered state against ground truth recorded during
// generation. The invariants, for EVERY k:
//
//   * restart succeeds — a torn tail never prevents recovery;
//   * every transaction whose commit record is wholly inside the prefix is
//     present in the recovered state (no committed work lost);
//   * every transaction whose commit record is cut off is absent — its
//     partially-logged effects were compensated (nothing uncommitted is
//     resurrected).
//
// Ground truth is the per-commit synced-byte boundary recorded while the
// workload ran, NOT a re-scan of the image — so the sweep cross-checks the
// frame scanner rather than trusting it.
//
// SEMCC_SWEEP_STRIDE (default 1 = every byte) coarsens the sweep for slow
// sanitizer builds.
#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "app/orderentry/order_entry.h"
#include "core/database.h"
#include "recovery/log_device.h"
#include "recovery/wal.h"
#include "storage/posix_file.h"
#include "test_env.h"

namespace semcc {
namespace {

using namespace orderentry;

struct GroundTruth {
  /// The full synced device image at the end of the workload.
  std::string image;
  /// Synced-image size right after the initial load (before any txn).
  uint64_t baseline = 0;
  /// boundaries[i] = synced bytes after transaction i committed; the txn is
  /// durable in a prefix of length k iff boundaries[i] <= k.
  std::vector<uint64_t> boundaries;
  /// order_nos[i] = OrderNo created by transaction i.
  std::vector<int64_t> order_nos;
};

GroundTruth GenerateWorkload(int txns, int checkpoint_after = -1) {
  DatabaseOptions options;
  options.enable_wal = true;  // in-memory device, force-per-commit
  options.recovery.checkpoint_truncate = false;  // keep every byte sweepable
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 1;
  spec.orders_per_item = 1;
  spec.initial_qoh = 1'000'000;
  auto data = Load(&db, types, spec).ValueOrDie();
  EXPECT_TRUE(db.wal()->Flush().ok());

  GroundTruth truth;
  truth.baseline = db.wal()->device()->synced_bytes();
  const Oid item = data.item_oids[0];
  for (int i = 0; i < txns; ++i) {
    if (i == checkpoint_after) {
      // Fuzzy checkpoint mid-history (without truncation): the dump's
      // restore records land between two commit boundaries, so the sweep
      // cuts straight through them.
      EXPECT_TRUE(db.Checkpoint().ok());
    }
    auto order_no =
        db.RunTransaction("enter", TN_EnterOrder(item, 100 + i, 1 + i % 3));
    EXPECT_TRUE(order_no.ok()) << order_no.status().ToString();
    truth.order_nos.push_back(order_no.ValueOrDie().AsInt());
    truth.boundaries.push_back(db.wal()->device()->synced_bytes());
  }
  truth.image = db.wal()->device()->ReadDurable().ValueOrDie();
  EXPECT_EQ(truth.image.size(), truth.boundaries.back());
  return truth;
}

std::string SweepDir() {
  return "/tmp/semcc_crash_sweep_" + std::to_string(getpid());
}

/// Materialize the first `k` bytes of the image as the on-disk log and
/// restart a fresh database from it.
std::unique_ptr<Database> RestartFromPrefix(const GroundTruth& truth, size_t k,
                                            const std::string& dir,
                                            Status* restart_status) {
  CleanupDirectoryForTesting(dir);
  EXPECT_TRUE(EnsureDirectory(dir).ok());
  {
    PosixWritableFile f;
    EXPECT_TRUE(f.Open(dir + "/wal-000001.log").ok());
    if (k > 0) {
      EXPECT_TRUE(f.Append(truth.image.data(), k).ok());
    }
    EXPECT_TRUE(f.Sync().ok());
    EXPECT_TRUE(f.Close().ok());
  }
  DatabaseOptions options;
  options.enable_wal = true;
  options.recovery.log_dir = dir;
  options.buffer_pool_pages = 64;  // thousands of restarts; keep each cheap
  auto db = std::make_unique<Database>(options);
  InstallOptions iopts;
  iopts.register_only = true;
  (void)Install(db.get(), iopts).ValueOrDie();
  auto stats = db->RestartFromLog();
  *restart_status = stats.status();
  return db;
}

/// Committed orders visible after a restart, or -1 if the object graph is
/// not reachable yet (the cut predates the load's named-root record).
int64_t CountOrders(Database* db) {
  auto items = db->GetNamedRoot("Items");
  if (!items.ok()) return -1;
  auto item = db->store()->SetSelect(items.ValueOrDie(), Value(1));
  if (!item.ok()) return -1;
  Oid orders = db->store()->Component(item.ValueOrDie(), "Orders").ValueOrDie();
  return static_cast<int64_t>(db->store()->SetSize(orders).ValueOrDie());
}

/// Run the every-offset sweep over `truth` starting at `floor` (0 = from
/// the empty prefix), asserting the recovered order count and identity at
/// each cut.
void SweepEveryOffset(const GroundTruth& truth, const std::string& dir,
                      size_t floor = 0) {
  const size_t stride =
      static_cast<size_t>(test_env::IterCount("SEMCC_SWEEP_STRIDE", 1));

  std::vector<size_t> cuts;
  for (size_t k = floor; k < truth.image.size(); k += stride) cuts.push_back(k);
  cuts.push_back(truth.image.size());

  for (size_t k : cuts) {
    Status st;
    auto db = RestartFromPrefix(truth, k, dir, &st);
    ASSERT_TRUE(st.ok()) << "restart failed at cut " << k << ": "
                         << st.ToString();

    // Ground truth: which transactions are durable in this prefix?
    size_t durable = 0;
    while (durable < truth.boundaries.size() &&
           truth.boundaries[durable] <= k) {
      durable++;
    }

    if (k < truth.baseline) {
      // The cut predates the end of the initial load; all that is required
      // is that restart succeeded (asserted above) and nothing leaked in.
      EXPECT_EQ(durable, 0u) << "cut " << k;
      continue;
    }
    const int64_t orders = CountOrders(db.get());
    ASSERT_GE(orders, 0) << "object graph unreachable at cut " << k;
    // 1 pre-loaded order + one per durable transaction: no committed txn
    // lost, no uncommitted txn resurrected.
    EXPECT_EQ(orders, 1 + static_cast<int64_t>(durable)) << "cut " << k;

    // Spot-check identity, not just cardinality: the durable orders are
    // exactly the ones whose commits fit, and the first cut-off order is
    // genuinely gone.
    auto items = db->GetNamedRoot("Items").ValueOrDie();
    Oid item = db->store()->SetSelect(items, Value(1)).ValueOrDie();
    Oid order_set = db->store()->Component(item, "Orders").ValueOrDie();
    if (durable > 0) {
      EXPECT_TRUE(db->store()
                      ->SetSelect(order_set,
                                  Value(truth.order_nos[durable - 1]))
                      .ok())
          << "committed order lost at cut " << k;
    }
    if (durable < truth.order_nos.size()) {
      EXPECT_TRUE(db->store()
                      ->SetSelect(order_set, Value(truth.order_nos[durable]))
                      .status()
                      .IsNotFound())
          << "uncommitted order resurrected at cut " << k;
    }
  }
}

TEST(CrashSweep, EveryByteOffsetRecoversExactCommittedState) {
  const GroundTruth truth = GenerateWorkload(8);
  const std::string dir = SweepDir();
  SweepEveryOffset(truth, dir);
  CleanupDirectoryForTesting(dir);
}

TEST(CrashSweep, EveryByteOffsetAcrossCheckpointRecoversExactState) {
  // Same sweep, but with a fuzzy checkpoint dumped mid-history (kept, not
  // truncated). Cuts before the dump recover from plain replay; cuts inside
  // it leave an incomplete Begin-without-End region whose restore records
  // must be tolerated; cuts after it recover from the checkpoint image plus
  // the post-checkpoint tail. The committed-order invariant is identical in
  // all three regimes.
  const GroundTruth truth = GenerateWorkload(8, /*checkpoint_after=*/4);
  const std::string dir = SweepDir() + "_ckpt";
  SweepEveryOffset(truth, dir);
  CleanupDirectoryForTesting(dir);
}

TEST(CrashSweep, RestartIsIdempotent) {
  // Restarting twice from the same directory must converge: the first
  // restart repairs the torn tail and logs abort markers for the losers;
  // the second must see a clean log and the same state — it must not
  // re-compensate an already-compensated loser.
  const GroundTruth truth = GenerateWorkload(4);
  const std::string dir = SweepDir() + "_idem";
  // Cut mid-way through the last transaction: its records are partially on
  // disk, so the first restart has a real loser to compensate.
  const size_t cut =
      (truth.boundaries[2] + truth.boundaries[3]) / 2;
  ASSERT_GT(cut, truth.boundaries[2]);
  ASSERT_LT(cut, truth.boundaries[3]);

  Status st;
  int64_t first_count = 0;
  {
    auto db = RestartFromPrefix(truth, cut, dir, &st);
    ASSERT_TRUE(st.ok()) << st.ToString();
    first_count = CountOrders(db.get());
    EXPECT_EQ(first_count, 1 + 3);  // loaded + three committed
    // The destructor flushes nothing extra; the abort markers were forced
    // when the losers finished compensation.
  }
  {
    DatabaseOptions options;
    options.enable_wal = true;
    options.recovery.log_dir = dir;
    Database db2(options);
    InstallOptions iopts;
    iopts.register_only = true;
    (void)Install(&db2, iopts).ValueOrDie();
    auto stats = db2.RestartFromLog();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    // The loser was marked abort-complete by restart #1; restart #2 must
    // classify it as resolved, not undo it again.
    EXPECT_EQ(stats.ValueOrDie().losers, 0u);
    EXPECT_EQ(CountOrders(&db2), first_count);
  }
  CleanupDirectoryForTesting(dir);
}

TEST(CrashSweep, TruncatedCheckpointSweepAndDoubleRestart) {
  // Checkpoint WITH truncation: the durable image afterwards is the
  // post-truncation suffix, which always begins with (or before) a complete
  // Begin..End checkpoint region — truncation only runs after the End
  // record is stable, so no reachable crash state has a truncated log
  // without its checkpoint. Sweep every byte offset of the suffix from the
  // end-of-checkpoint floor: pre-checkpoint commits must be present at
  // EVERY cut (they live only in the checkpoint image now), and
  // post-checkpoint commits obey the usual boundary rule.
  const int kBefore = 4;
  const int kAfter = 4;
  DatabaseOptions options;
  options.enable_wal = true;
  options.recovery.checkpoint_truncate = true;
  Database db(options);
  auto types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 1;
  spec.orders_per_item = 1;
  spec.initial_qoh = 1'000'000;
  auto data = Load(&db, types, spec).ValueOrDie();
  ASSERT_TRUE(db.wal()->Flush().ok());
  const Oid item = data.item_oids[0];

  std::vector<int64_t> pre_orders;
  for (int i = 0; i < kBefore; ++i) {
    auto order_no =
        db.RunTransaction("enter", TN_EnterOrder(item, 100 + i, 1));
    ASSERT_TRUE(order_no.ok()) << order_no.status().ToString();
    pre_orders.push_back(order_no.ValueOrDie().AsInt());
  }
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_GT(db.wal()->truncated_count(), 0u) << "checkpoint did not truncate";
  // Everything at or above the floor contains the complete checkpoint.
  const size_t floor = db.wal()->device()->synced_bytes();

  GroundTruth truth;
  truth.baseline = 0;  // the suffix always has the full load via the dump
  for (int i = 0; i < kAfter; ++i) {
    auto order_no =
        db.RunTransaction("enter", TN_EnterOrder(item, 200 + i, 1));
    ASSERT_TRUE(order_no.ok()) << order_no.status().ToString();
    truth.order_nos.push_back(order_no.ValueOrDie().AsInt());
    truth.boundaries.push_back(db.wal()->device()->synced_bytes());
  }
  truth.image = db.wal()->device()->ReadDurable().ValueOrDie();
  ASSERT_EQ(truth.image.size(), truth.boundaries.back());

  const std::string dir = SweepDir() + "_trunc";
  const size_t stride =
      static_cast<size_t>(test_env::IterCount("SEMCC_SWEEP_STRIDE", 1));
  std::vector<size_t> cuts;
  for (size_t k = floor; k < truth.image.size(); k += stride) cuts.push_back(k);
  cuts.push_back(truth.image.size());

  for (size_t k : cuts) {
    Status st;
    auto rdb = RestartFromPrefix(truth, k, dir, &st);
    ASSERT_TRUE(st.ok()) << "restart failed at cut " << k << ": "
                         << st.ToString();
    size_t durable_post = 0;
    while (durable_post < truth.boundaries.size() &&
           truth.boundaries[durable_post] <= k) {
      durable_post++;
    }
    const int64_t orders = CountOrders(rdb.get());
    ASSERT_GE(orders, 0) << "object graph unreachable at cut " << k;
    EXPECT_EQ(orders, 1 + kBefore + static_cast<int64_t>(durable_post))
        << "cut " << k;
    // Every pre-checkpoint commit is reachable purely via the checkpoint
    // image — the original create records were truncated away.
    auto items = rdb->GetNamedRoot("Items").ValueOrDie();
    Oid ritem = rdb->store()->SetSelect(items, Value(1)).ValueOrDie();
    Oid order_set = rdb->store()->Component(ritem, "Orders").ValueOrDie();
    for (int64_t order_no : pre_orders) {
      EXPECT_TRUE(rdb->store()->SetSelect(order_set, Value(order_no)).ok())
          << "pre-checkpoint order " << order_no << " lost at cut " << k;
    }
  }

  // Double restart across the checkpoint boundary with a genuine loser:
  // cut mid-way through the last post-checkpoint transaction.
  const size_t cut =
      (truth.boundaries[kAfter - 2] + truth.boundaries[kAfter - 1]) / 2;
  ASSERT_GT(cut, truth.boundaries[kAfter - 2]);
  ASSERT_LT(cut, truth.boundaries[kAfter - 1]);
  Status st;
  int64_t first_count = 0;
  {
    auto rdb = RestartFromPrefix(truth, cut, dir, &st);
    ASSERT_TRUE(st.ok()) << st.ToString();
    first_count = CountOrders(rdb.get());
    EXPECT_EQ(first_count, 1 + kBefore + (kAfter - 1));
  }
  {
    // Restart #2 reuses the log restart #1 repaired and appended to.
    DatabaseOptions ropts;
    ropts.enable_wal = true;
    ropts.recovery.log_dir = dir;
    Database db2(ropts);
    InstallOptions iopts;
    iopts.register_only = true;
    (void)Install(&db2, iopts).ValueOrDie();
    auto stats = db2.RestartFromLog();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats.ValueOrDie().used_checkpoint);
    EXPECT_EQ(stats.ValueOrDie().losers, 0u)
        << "restart #2 re-compensated an already-resolved loser";
    EXPECT_EQ(CountOrders(&db2), first_count);
  }
  CleanupDirectoryForTesting(dir);
}

}  // namespace
}  // namespace semcc
