// Tests for the binary coding helpers used by the log format.
#include <gtest/gtest.h>

#include "util/coding.h"

namespace semcc {
namespace {

TEST(Coding, FixedWidthRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xab);
  PutU16(&buf, 0xbeef);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 0x0123456789abcdefULL);
  PutI64(&buf, -42);
  Decoder dec(buf);
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  int64_t e;
  ASSERT_TRUE(dec.GetU8(&a));
  ASSERT_TRUE(dec.GetU16(&b));
  ASSERT_TRUE(dec.GetU32(&c));
  ASSERT_TRUE(dec.GetU64(&d));
  ASSERT_TRUE(dec.GetI64(&e));
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xbeef);
  EXPECT_EQ(c, 0xdeadbeefu);
  EXPECT_EQ(d, 0x0123456789abcdefULL);
  EXPECT_EQ(e, -42);
  EXPECT_TRUE(dec.empty());
}

TEST(Coding, LengthPrefixedStrings) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string("\0binary\0", 8));
  Decoder dec(buf);
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s));
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s));
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s));
  EXPECT_EQ(s.size(), 8u);
  EXPECT_TRUE(dec.empty());
}

TEST(Coding, UnderrunDetected) {
  std::string buf;
  PutU32(&buf, 7);
  Decoder dec(buf);
  uint64_t v64;
  EXPECT_FALSE(dec.GetU64(&v64));
  uint32_t v32;
  Decoder dec2(buf.substr(0, 2));
  EXPECT_FALSE(dec2.GetU32(&v32));
}

TEST(Coding, TruncatedLengthPrefixDetected) {
  std::string buf;
  PutU32(&buf, 100);  // claims 100 bytes, provides none
  Decoder dec(buf);
  std::string s;
  EXPECT_FALSE(dec.GetLengthPrefixed(&s));
}

TEST(Coding, RemainingTracksConsumption) {
  std::string buf;
  PutU32(&buf, 1);
  PutU32(&buf, 2);
  Decoder dec(buf);
  EXPECT_EQ(dec.remaining(), 8u);
  uint32_t v;
  ASSERT_TRUE(dec.GetU32(&v));
  EXPECT_EQ(dec.remaining(), 4u);
}

}  // namespace
}  // namespace semcc
