// Tests for the durable log stack under injected faults: frame scanning
// (CRC, torn-tail truncation, mid-log refusal), the in-memory and
// file-backed log devices, the WAL's flush retry/degradation contract, and
// the group-commit shutdown/missed-wakeup fixes.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "recovery/fault_injector.h"
#include "recovery/file_log_device.h"
#include "recovery/log_device.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "storage/posix_file.h"

namespace semcc {
namespace {

LogRecord MakeRecord(Oid object, int64_t v = 0) {
  LogRecord rec;
  rec.type = LogType::kAtomWrite;
  rec.object = object;
  rec.value = Value(v);
  return rec;
}

std::string TempDir(const char* tag) {
  std::string dir = "/tmp/semcc_wal_test_" + std::to_string(getpid()) + "_" +
                    tag;
  CleanupDirectoryForTesting(dir);
  return dir;
}

// --- frame scanning -------------------------------------------------------

TEST(LogFrame, RoundTripsFrames) {
  std::string image;
  logframe::AppendFrame(&image, "alpha");
  logframe::AppendFrame(&image, "bb");
  logframe::AppendFrame(&image, std::string(1000, 'x'));
  auto scan = logframe::ScanFrames(image);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->payloads.size(), 3u);
  EXPECT_EQ(scan->payloads[0], "alpha");
  EXPECT_EQ(scan->payloads[1], "bb");
  EXPECT_EQ(scan->payloads[2], std::string(1000, 'x'));
  EXPECT_EQ(scan->valid_bytes, image.size());
  EXPECT_FALSE(scan->truncated_tail);
}

TEST(LogFrame, EveryPrefixIsATornTailAtWorst) {
  // Cut the image at every byte offset: the scan must always succeed,
  // recover exactly the fully contained frames, and report a torn tail
  // whenever the cut is not on a frame boundary.
  std::string image;
  std::vector<uint64_t> boundaries = {0};
  for (const char* p : {"first", "second-longer", "x"}) {
    logframe::AppendFrame(&image, p);
    boundaries.push_back(image.size());
  }
  for (size_t cut = 0; cut <= image.size(); ++cut) {
    auto scan = logframe::ScanFrames(std::string_view(image).substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": " << scan.status().ToString();
    size_t contained = 0;
    uint64_t last_boundary = 0;
    for (size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) {
        contained = b;
        last_boundary = boundaries[b];
      }
    }
    EXPECT_EQ(scan->payloads.size(), contained) << "cut=" << cut;
    EXPECT_EQ(scan->valid_bytes, last_boundary) << "cut=" << cut;
    EXPECT_EQ(scan->truncated_tail, cut != last_boundary) << "cut=" << cut;
  }
}

TEST(LogFrame, CorruptLastFrameIsATornTail) {
  std::string image;
  logframe::AppendFrame(&image, "keep me");
  const uint64_t boundary = image.size();
  logframe::AppendFrame(&image, "damaged");
  image[image.size() - 3] ^= 0x5a;  // flip payload bits of the last frame
  auto scan = logframe::ScanFrames(image);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->payloads.size(), 1u);
  EXPECT_EQ(scan->payloads[0], "keep me");
  EXPECT_EQ(scan->valid_bytes, boundary);
  EXPECT_TRUE(scan->truncated_tail);
}

TEST(LogFrame, MidLogCorruptionRefused) {
  // Damage in the middle with an intact frame after it cannot be a torn
  // tail; replaying around the hole would be silent data loss.
  std::string image;
  logframe::AppendFrame(&image, "first");
  logframe::AppendFrame(&image, "second");
  image[logframe::kHeaderSize + 2] ^= 0x5a;  // payload bits of frame 1
  auto scan = logframe::ScanFrames(image);
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

TEST(LogFrame, ZeroFilledTailIsTorn) {
  // A block of zeros (preallocated-but-unwritten disk) is not a frame:
  // payloads are never empty, so a zero length field is torn, not valid.
  std::string image;
  logframe::AppendFrame(&image, "real");
  const uint64_t boundary = image.size();
  image.append(256, '\0');
  auto scan = logframe::ScanFrames(image);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->payloads.size(), 1u);
  EXPECT_EQ(scan->valid_bytes, boundary);
  EXPECT_TRUE(scan->truncated_tail);
}

// --- in-memory device -----------------------------------------------------

TEST(InMemoryDevice, OnlySyncedBytesAreDurable) {
  InMemoryLogDevice dev;
  ASSERT_TRUE(dev.Append("abc").ok());
  EXPECT_EQ(dev.ReadDurable().ValueOrDie(), "");  // a reboot loses the cache
  ASSERT_TRUE(dev.Sync().ok());
  ASSERT_TRUE(dev.Append("def").ok());
  EXPECT_EQ(dev.ReadDurable().ValueOrDie(), "abc");
  ASSERT_TRUE(dev.Sync().ok());
  EXPECT_EQ(dev.ReadDurable().ValueOrDie(), "abcdef");
  EXPECT_EQ(dev.sync_count(), 2u);
}

// --- WAL on a device ------------------------------------------------------

TEST(WalDevice, FlushedRecordsSurviveRestart) {
  WriteAheadLog wal;
  for (int i = 0; i < 5; ++i) wal.Append(MakeRecord(static_cast<Oid>(i), i));
  ASSERT_TRUE(wal.Flush().ok());
  wal.Append(MakeRecord(99, 99));  // volatile tail: lost at the "crash"

  const std::string image = wal.device()->ReadDurable().ValueOrDie();
  WriteAheadLog wal2(std::make_unique<InMemoryLogDevice>(image));
  auto recovered = wal2.RecoverAtStartup();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.ValueOrDie().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(recovered.ValueOrDie()[i].object, static_cast<Oid>(i));
    EXPECT_EQ(recovered.ValueOrDie()[i].value.AsInt(), i);
  }
  // LSN assignment continues after the recovered maximum.
  const Lsn next = wal2.Append(MakeRecord(5));
  EXPECT_GT(next, recovered.ValueOrDie().back().lsn);
}

TEST(WalDevice, RestartTruncatesTornTailOnDevice) {
  WriteAheadLog wal;
  for (int i = 0; i < 4; ++i) wal.Append(MakeRecord(static_cast<Oid>(i)));
  ASSERT_TRUE(wal.Flush().ok());
  std::string image = wal.device()->ReadDurable().ValueOrDie();
  image.resize(image.size() - 5);  // crash mid-write of the last frame

  WriteAheadLog wal2(std::make_unique<InMemoryLogDevice>(image));
  auto recovered = wal2.RecoverAtStartup();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.ValueOrDie().size(), 3u);
  // The device was repaired in place: the torn bytes are gone, so new
  // appends follow the last intact frame.
  EXPECT_EQ(wal2.device()->written_bytes(), wal2.stable_bytes());
  wal2.Append(MakeRecord(50));
  ASSERT_TRUE(wal2.Flush().ok());
  WriteAheadLog wal3(
      std::make_unique<InMemoryLogDevice>(
          wal2.device()->ReadDurable().ValueOrDie()));
  ASSERT_TRUE(wal3.RecoverAtStartup().ok());
  EXPECT_EQ(wal3.stable_count(), 4u);
}

TEST(WalDevice, RestartRefusesMidLogCorruption) {
  WriteAheadLog wal;
  for (int i = 0; i < 4; ++i) wal.Append(MakeRecord(static_cast<Oid>(i)));
  ASSERT_TRUE(wal.Flush().ok());
  std::string image = wal.device()->ReadDurable().ValueOrDie();
  image[logframe::kHeaderSize + 1] ^= 0x5a;  // first frame's payload

  WriteAheadLog wal2(std::make_unique<InMemoryLogDevice>(image));
  auto recovered = wal2.RecoverAtStartup();
  ASSERT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsCorruption())
      << recovered.status().ToString();
}

TEST(WalDevice, StableAndAllRecordsPropagateDecodeFailures) {
  WriteAheadLog wal;
  wal.Append(MakeRecord(1));
  wal.Append(MakeRecord(2));
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.StableRecords().ok());
  wal.CorruptRecordForTesting(0);
  auto stable = wal.StableRecords();
  ASSERT_FALSE(stable.ok());
  EXPECT_TRUE(stable.status().IsCorruption()) << stable.status().ToString();
  auto all = wal.AllRecords();
  ASSERT_FALSE(all.ok());
  EXPECT_TRUE(all.status().IsCorruption());
}

// --- fault injection ------------------------------------------------------

WalOptions FastRetryOptions(int attempts = 4) {
  WalOptions o;
  o.max_flush_attempts = attempts;
  o.flush_retry_backoff = std::chrono::microseconds(1);
  return o;
}

TEST(WalFault, TransientFsyncFailuresAreRetried) {
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions());
  FaultPlan plan;
  plan.fail_next_syncs = 2;
  fi->SetPlan(plan);
  wal.Append(MakeRecord(1));
  ASSERT_TRUE(wal.Flush().ok());  // third attempt succeeds
  EXPECT_EQ(fi->injected_sync_failures(), 2u);
  EXPECT_TRUE(wal.health().ok());
  EXPECT_EQ(wal.stable_count(), 1u);
  // The batch was appended exactly once despite the retries.
  auto scan = logframe::ScanFrames(fi->ReadDurable().ValueOrDie());
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->payloads.size(), 1u);
}

TEST(WalFault, ExhaustedRetriesDegradeToReadOnly) {
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions(3));
  FaultPlan plan;
  plan.fail_all_syncs = true;
  fi->SetPlan(plan);
  wal.Append(MakeRecord(1));
  const Status st = wal.Flush();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_EQ(fi->injected_sync_failures(), 3u);
  // Degraded: the failure is sticky, appends are refused, and further
  // flushes return the error without touching the device again.
  EXPECT_FALSE(wal.health().ok());
  EXPECT_EQ(wal.Append(MakeRecord(2)), kInvalidLsn);
  ASSERT_FALSE(wal.Flush().ok());
  EXPECT_EQ(fi->injected_sync_failures(), 3u);
}

TEST(WalFault, ShortWriteIsRolledBackAndRetried) {
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions());
  wal.Append(MakeRecord(1));
  ASSERT_TRUE(wal.Flush().ok());
  FaultPlan plan;
  plan.short_write_bytes = 3;  // tear the next batch three bytes in
  fi->SetPlan(plan);
  wal.Append(MakeRecord(2));
  wal.Append(MakeRecord(3));
  ASSERT_TRUE(wal.Flush().ok());  // tear, truncate-repair, retry, succeed
  EXPECT_EQ(fi->injected_short_writes(), 1u);
  EXPECT_TRUE(wal.health().ok());
  // No torn garbage and no duplicated frames on the device.
  auto scan = logframe::ScanFrames(fi->ReadDurable().ValueOrDie());
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->payloads.size(), 3u);
  EXPECT_FALSE(scan->truncated_tail);
}

TEST(WalFault, PowerCutLeavesRecoverableTornPrefix) {
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions());
  wal.Append(MakeRecord(1));
  wal.Append(MakeRecord(2));
  ASSERT_TRUE(wal.Flush().ok());
  const uint64_t stable = wal.stable_bytes();

  // Power dies 7 bytes into the next batch's device write.
  FaultPlan plan;
  plan.power_cut_after_bytes = static_cast<int64_t>(stable + 7);
  fi->SetPlan(plan);
  wal.Append(MakeRecord(3));
  ASSERT_FALSE(wal.Flush().ok());
  EXPECT_TRUE(fi->powered_off());
  EXPECT_FALSE(wal.health().ok());
  EXPECT_EQ(wal.Append(MakeRecord(4)), kInvalidLsn);

  // "Reboot": the post-crash durable image has a torn 7-byte tail.
  const std::string image = fi->ReadDurable().ValueOrDie();
  EXPECT_EQ(image.size(), stable + 7);
  WriteAheadLog wal2(std::make_unique<InMemoryLogDevice>(image));
  auto recovered = wal2.RecoverAtStartup();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.ValueOrDie().size(), 2u);
  EXPECT_EQ(recovered.ValueOrDie()[1].object, 2u);
}

// --- file-backed device ---------------------------------------------------

struct FileDeviceTest : public ::testing::Test {
  void SetUp() override { dir_ = TempDir("filedev"); }
  void TearDown() override { CleanupDirectoryForTesting(dir_); }
  std::string dir_;
};

TEST_F(FileDeviceTest, RotatesSegmentsAndReopens) {
  FileLogDeviceOptions fopts;
  fopts.segment_bytes = 128;  // tiny: force rotation
  size_t segments = 0;
  {
    auto device = FileLogDevice::Open(dir_, fopts);
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
    ASSERT_TRUE(wal.RecoverAtStartup().ok());
    for (int i = 0; i < 40; ++i) {
      wal.Append(MakeRecord(static_cast<Oid>(i), i));
      ASSERT_TRUE(wal.Flush().ok());
    }
    auto* fdev = static_cast<FileLogDevice*>(wal.device());
    segments = fdev->segment_count();
    EXPECT_GT(segments, 1u);
  }
  // Process restart: reopen the directory, everything is still there.
  auto device = FileLogDevice::Open(dir_, fopts);
  ASSERT_TRUE(device.ok()) << device.status().ToString();
  EXPECT_EQ(device.ValueOrDie()->segment_count(), segments);
  WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
  auto recovered = wal.RecoverAtStartup();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.ValueOrDie().size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(recovered.ValueOrDie()[i].value.AsInt(), i);
  }
}

TEST_F(FileDeviceTest, TruncateRepairsAcrossSegments) {
  FileLogDeviceOptions fopts;
  fopts.segment_bytes = 64;
  auto device = FileLogDevice::Open(dir_, fopts);
  ASSERT_TRUE(device.ok());
  FileLogDevice* dev = device.ValueOrDie().get();
  const std::string chunk(48, 'a');
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(dev->Append(chunk).ok());
    ASSERT_TRUE(dev->Sync().ok());
  }
  ASSERT_GT(dev->segment_count(), 1u);
  // Truncate back into the first segment: later segments must vanish both
  // from the image and from the directory.
  ASSERT_TRUE(dev->Truncate(10).ok());
  EXPECT_EQ(dev->written_bytes(), 10u);
  EXPECT_EQ(dev->ReadDurable().ValueOrDie(), chunk.substr(0, 10));
  ASSERT_TRUE(dev->Append("zz").ok());
  ASSERT_TRUE(dev->Sync().ok());
  EXPECT_EQ(dev->ReadDurable().ValueOrDie(), chunk.substr(0, 10) + "zz");
  auto names = ListDirectory(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.ValueOrDie().size(), 1u);
}

TEST_F(FileDeviceTest, TornTailOnDiskIsTruncatedAtRestart) {
  // preallocate=false keeps the physical file size equal to the logical
  // content, so the final byte-exact FileSize assertion is meaningful; the
  // preallocated variant is covered below.
  FileLogDeviceOptions fopts;
  fopts.preallocate = false;
  {
    auto device = FileLogDevice::Open(dir_, fopts);
    ASSERT_TRUE(device.ok());
    WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
    ASSERT_TRUE(wal.RecoverAtStartup().ok());
    wal.Append(MakeRecord(1));
    wal.Append(MakeRecord(2));
    ASSERT_TRUE(wal.Flush().ok());
  }
  // Crash left half a frame on disk.
  {
    PosixWritableFile f;
    ASSERT_TRUE(f.Open(dir_ + "/wal-000001.log").ok());
    ASSERT_TRUE(f.Append("\x40\x00\x00\x00torn", 8).ok());
    ASSERT_TRUE(f.Sync().ok());
  }
  auto device = FileLogDevice::Open(dir_, fopts);
  ASSERT_TRUE(device.ok());
  WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
  auto recovered = wal.RecoverAtStartup();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.ValueOrDie().size(), 2u);
  // The file itself was repaired.
  EXPECT_EQ(FileSize(dir_ + "/wal-000001.log").ValueOrDie(),
            wal.stable_bytes());
}

TEST_F(FileDeviceTest, TornOverwriteInPreallocatedSegmentIsRepaired) {
  // With preallocation (the default), appends overwrite zero padding in
  // place, so a crash mid-append tears the frame at the *logical* end with
  // megabytes of padding after it. Recovery must drop the torn bytes, keep
  // the padding contract intact, and be idempotent across a second restart.
  uint64_t stable = 0;
  {
    auto device = FileLogDevice::Open(dir_, {});
    ASSERT_TRUE(device.ok());
    WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
    ASSERT_TRUE(wal.RecoverAtStartup().ok());
    wal.Append(MakeRecord(1));
    wal.Append(MakeRecord(2));
    ASSERT_TRUE(wal.Flush().ok());
    stable = wal.stable_bytes();
  }
  // Simulate the torn in-place overwrite: half a frame at the logical end,
  // zeros beyond it (PosixWritableFile only appends, so go through pwrite).
  {
    const std::string path = dir_ + "/wal-000001.log";
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pwrite(fd, "\x40\x00\x00\x00torn", 8,
                       static_cast<off_t>(stable)),
              8);
    ASSERT_EQ(::fsync(fd), 0);
    ::close(fd);
  }
  for (int restart = 0; restart < 2; ++restart) {
    auto device = FileLogDevice::Open(dir_, {});
    ASSERT_TRUE(device.ok());
    WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
    auto recovered = wal.RecoverAtStartup();
    ASSERT_TRUE(recovered.ok())
        << "restart " << restart << ": " << recovered.status().ToString();
    EXPECT_EQ(recovered.ValueOrDie().size(), 2u) << "restart " << restart;
    EXPECT_EQ(wal.stable_bytes(), stable) << "restart " << restart;
    // The logical image holds exactly the valid frames...
    auto image = wal.device()->ReadDurable();
    ASSERT_TRUE(image.ok());
    EXPECT_EQ(image.ValueOrDie().size(), stable) << "restart " << restart;
    // ...and the segment on disk is re-padded, with the torn bytes scrubbed
    // back to zeros so they cannot resurface as a fake tail later.
    EXPECT_EQ(FileSize(dir_ + "/wal-000001.log").ValueOrDie(), 4u << 20)
        << "restart " << restart;
    // The repaired log accepts new appends that land where the tear was.
    if (restart == 1) {
      wal.Append(MakeRecord(3));
      ASSERT_TRUE(wal.Flush().ok());
      EXPECT_GT(wal.stable_bytes(), stable);
    }
  }
}

TEST_F(FileDeviceTest, SegmentGapRefused) {
  FileLogDeviceOptions fopts;
  fopts.segment_bytes = 32;
  {
    auto device = FileLogDevice::Open(dir_, fopts);
    ASSERT_TRUE(device.ok());
    FileLogDevice* dev = device.ValueOrDie().get();
    for (int i = 0; i < 4; ++i) {
      // Over the threshold: every append lands in a fresh segment.
      ASSERT_TRUE(dev->Append(std::string(33, 'x')).ok());
      ASSERT_TRUE(dev->Sync().ok());
    }
    ASSERT_GE(dev->segment_count(), 3u);
  }
  ASSERT_TRUE(RemoveFile(dir_ + "/wal-000002.log").ok());
  auto device = FileLogDevice::Open(dir_, fopts);
  ASSERT_FALSE(device.ok());
  EXPECT_TRUE(device.status().IsCorruption()) << device.status().ToString();
}

// --- group commit ---------------------------------------------------------

TEST(GroupCommit, ShutdownDrainsPendingCommits) {
  // A committer that is still waiting for the group window when the
  // flusher is told to stop must be flushed out (or failed) — never left
  // asleep. The old code could join the flusher first and strand it.
  WriteAheadLog wal;
  RecoveryOptions opts;
  opts.group_commit = true;
  opts.group_window = std::chrono::seconds(5);  // longer than the test
  RecoveryManager manager(&wal, opts);
  auto commit = std::async(std::launch::async, [&]() {
    manager.OnTxnCommit(1);  // blocks in MakeStable until stable or failed
  });
  // Let the committer append its record and reach the group wait, then
  // shut down underneath it.
  while (wal.total_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  manager.Shutdown();
  ASSERT_EQ(commit.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "committer stranded after shutdown";
  // Drained, not dropped: the commit record is stable.
  EXPECT_EQ(wal.stable_count(), 1u);
  EXPECT_TRUE(manager.health().ok());
}

TEST(GroupCommit, RequestDuringInFlightFlushIsNotLost) {
  // The second commit arrives while the flusher is inside wal_->Flush()
  // (the device sync takes 20ms). With the old boolean pending flag the
  // flusher's post-flush reset wiped that request and the second committer
  // waited forever; the requested-LSN watermark keeps it visible.
  WriteAheadLog wal(/*flush_micros=*/20000);
  RecoveryOptions opts;
  opts.group_commit = true;
  opts.group_window = std::chrono::microseconds(1);
  RecoveryManager manager(&wal, opts);
  auto first = std::async(std::launch::async, [&]() { manager.OnTxnCommit(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // mid-flush
  auto second = std::async(std::launch::async, [&]() { manager.OnTxnCommit(2); });
  ASSERT_EQ(first.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  ASSERT_EQ(second.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "second committer lost its wakeup";
  EXPECT_EQ(wal.stable_count(), 2u);
  manager.Shutdown();
}

TEST(GroupCommit, FlushFailureFailsWaitersInsteadOfHanging) {
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions(2));
  FaultPlan plan;
  plan.fail_all_syncs = true;
  fi->SetPlan(plan);
  RecoveryOptions opts;
  opts.group_commit = true;
  opts.group_window = std::chrono::microseconds(100);
  RecoveryManager manager(&wal, opts);
  auto commit = std::async(std::launch::async, [&]() { manager.OnTxnCommit(1); });
  ASSERT_EQ(commit.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "committer hung on a dead device";
  EXPECT_FALSE(manager.health().ok());
  // Later commits observe the failure immediately instead of blocking.
  manager.OnTxnCommit(2);
  EXPECT_FALSE(manager.health().ok());
  manager.Shutdown();
}

TEST(GroupCommit, ForceModeSurfacesWalFailure) {
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions(2));
  FaultPlan plan;
  plan.fail_all_syncs = true;
  fi->SetPlan(plan);
  RecoveryManager manager(&wal, RecoveryOptions());  // force-per-commit
  EXPECT_TRUE(manager.health().ok());
  manager.OnTxnCommit(1);
  EXPECT_FALSE(manager.health().ok());
}

// --- pipelined flush (PR 8) -----------------------------------------------

TEST(WalPipeline, ConcurrentFlushToKeepsFrameOrder) {
  // Many threads racing Append+FlushTo drive the depth-2 device pipeline
  // hard; whatever interleaving happens, the frames on the device must be
  // in LSN order with no gaps (the turn-ordered device section is the only
  // thing enforcing this).
  WriteAheadLog wal(std::make_unique<InMemoryLogDevice>(/*sync_micros=*/50));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        const Lsn lsn = wal.Append(MakeRecord(1 + t, i));
        ASSERT_NE(lsn, kInvalidLsn);
        ASSERT_TRUE(wal.FlushTo(lsn).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(wal.health().ok());
  EXPECT_EQ(wal.stable_count(), size_t{kThreads * kPerThread});
  // StableRecords re-reads the durable image; ascending LSNs there prove
  // no pipelined batch overtook an earlier one on the device.
  auto stable = wal.StableRecords();
  ASSERT_TRUE(stable.ok()) << stable.status().ToString();
  ASSERT_EQ(stable->size(), size_t{kThreads * kPerThread});
  for (size_t i = 0; i < stable->size(); ++i) {
    EXPECT_EQ((*stable)[i].lsn, static_cast<Lsn>(i + 1));
  }
}

TEST(WalPipeline, RetrySleepDoesNotBlockStableReaders) {
  // Regression test: the retry backoff used to sleep while holding the
  // device mutex, so even a FlushTo whose target was already stable (which
  // never needs the device) queued up behind the sleeping flusher. The
  // backoff now waits on the device condvar with the lock released.
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WalOptions wopts;
  wopts.max_flush_attempts = 2;
  wopts.flush_retry_backoff = std::chrono::milliseconds(300);
  WriteAheadLog wal(std::move(injector), wopts);
  const Lsn first = wal.Append(MakeRecord(1));
  ASSERT_TRUE(wal.Flush().ok());

  FaultPlan plan;
  plan.fail_next_syncs = 1;
  fi->SetPlan(plan);
  wal.Append(MakeRecord(2));
  auto flush = std::async(std::launch::async, [&]() { return wal.Flush(); });
  // Wait until the flusher has taken its first failure and entered backoff.
  for (int i = 0; i < 10000 && fi->injected_sync_failures() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(fi->injected_sync_failures(), 1u);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(wal.FlushTo(first).ok());  // already stable: no device needed
  (void)wal.stats();                     // stats path must not block either
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(150))
      << "stable-target FlushTo blocked behind the retry backoff";

  ASSERT_EQ(flush.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(flush.get().ok());
  EXPECT_TRUE(wal.health().ok());
  EXPECT_EQ(wal.stable_count(), 2u);
}

TEST(GroupCommit, FlusherPoolDeathFailsWaiters) {
  // With the whole flusher pool hitting a dead device, parked committers
  // must be failed, not stranded.
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>());
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions(2));
  FaultPlan plan;
  plan.fail_all_syncs = true;
  fi->SetPlan(plan);
  RecoveryOptions opts;
  opts.group_commit = true;
  opts.flusher_threads = 2;
  opts.group_window = std::chrono::microseconds(100);
  RecoveryManager manager(&wal, opts);
  std::vector<std::future<void>> commits;
  for (TxnId txn = 1; txn <= 4; ++txn) {
    commits.push_back(std::async(std::launch::async,
                                 [&manager, txn]() { manager.OnTxnCommit(txn); }));
  }
  for (auto& c : commits) {
    ASSERT_EQ(c.wait_for(std::chrono::seconds(10)), std::future_status::ready)
        << "committer hung on a dead flusher pool";
  }
  EXPECT_FALSE(manager.health().ok());
  manager.Shutdown();
}

TEST(GroupCommit, TransientEioMidPipelineRecovers) {
  // A transient fsync EIO injected while the two-deep pipeline is busy must
  // be absorbed by the retry loop: every commit completes, health stays OK,
  // and nothing is lost.
  auto injector = std::make_unique<FaultInjector>(
      std::make_unique<InMemoryLogDevice>(/*sync_micros=*/20));
  FaultInjector* fi = injector.get();
  WriteAheadLog wal(std::move(injector), FastRetryOptions(4));
  RecoveryOptions opts;
  opts.group_commit = true;
  opts.flusher_threads = 2;
  opts.adaptive_group_window = true;
  RecoveryManager manager(&wal, opts);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&manager, fi, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        if (t == 0 && i == kPerThread / 2) {
          FaultPlan plan;
          plan.fail_next_syncs = 2;
          fi->SetPlan(plan);
        }
        manager.OnTxnCommit(static_cast<TxnId>(1 + t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  manager.Shutdown();
  EXPECT_TRUE(manager.health().ok());
  EXPECT_TRUE(wal.health().ok());
  EXPECT_EQ(wal.stable_count(), size_t{kThreads * kPerThread});
}

// --- checkpoint truncation (PR 8) -----------------------------------------

TEST(WalCheckpoint, TruncateCheckpointedDropsStablePrefix) {
  WriteAheadLog wal(std::make_unique<InMemoryLogDevice>());
  for (int i = 1; i <= 10; ++i) wal.Append(MakeRecord(static_cast<Oid>(i)));
  ASSERT_TRUE(wal.Flush().ok());
  const uint64_t bytes_before = wal.device()->written_bytes();

  auto dropped = wal.TruncateCheckpointed(/*up_to=*/6);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped.ValueOrDie(), 5u);  // LSNs 1..5
  EXPECT_EQ(wal.retained_count(), 5u);
  EXPECT_EQ(wal.truncated_count(), 5u);
  EXPECT_EQ(wal.stable_count(), 10u);  // logical counters stay monotonic
  EXPECT_EQ(wal.total_count(), 10u);
  EXPECT_EQ(wal.stable_lsn(), 10u);
  EXPECT_LT(wal.device()->written_bytes(), bytes_before);

  auto stable = wal.StableRecords();
  ASSERT_TRUE(stable.ok()) << stable.status().ToString();
  ASSERT_EQ(stable->size(), 5u);
  for (size_t i = 0; i < stable->size(); ++i) {
    EXPECT_EQ((*stable)[i].lsn, static_cast<Lsn>(6 + i));
  }
  // Idempotent: the prefix is gone, a second call drops nothing.
  auto again = wal.TruncateCheckpointed(6);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.ValueOrDie(), 0u);
}

TEST(WalCheckpoint, TruncateOnlyCoversStableRecords) {
  // Unflushed records are never truncated, even when their LSN is below the
  // checkpoint bound: only the durable prefix is eligible.
  WriteAheadLog wal(std::make_unique<InMemoryLogDevice>());
  for (int i = 1; i <= 3; ++i) wal.Append(MakeRecord(static_cast<Oid>(i)));
  ASSERT_TRUE(wal.Flush().ok());
  wal.Append(MakeRecord(4));
  wal.Append(MakeRecord(5));

  auto dropped = wal.TruncateCheckpointed(/*up_to=*/100);
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  EXPECT_EQ(dropped.ValueOrDie(), 3u);
  EXPECT_EQ(wal.retained_count(), 2u);
  ASSERT_TRUE(wal.Flush().ok());
  auto stable = wal.StableRecords();
  ASSERT_TRUE(stable.ok()) << stable.status().ToString();
  ASSERT_EQ(stable->size(), 2u);
  EXPECT_EQ((*stable)[0].lsn, 4u);
  EXPECT_EQ((*stable)[1].lsn, 5u);
}

TEST(WalCheckpoint, FileDeviceDropsWholeSegmentsAndSurvivesReopen) {
  const std::string dir = TempDir("ckpt_drop");
  FileLogDeviceOptions fopts;
  fopts.segment_bytes = 64;  // rotate roughly every record
  {
    auto device = FileLogDevice::Open(dir, fopts);
    ASSERT_TRUE(device.ok()) << device.status().ToString();
    WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
    for (int i = 1; i <= 8; ++i) {
      wal.Append(MakeRecord(static_cast<Oid>(i), i));
      ASSERT_TRUE(wal.Flush().ok());  // flush per record to force rotation
    }
    const auto names_before = ListDirectory(dir);
    ASSERT_TRUE(names_before.ok());
    auto dropped = wal.TruncateCheckpointed(/*up_to=*/6);
    ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
    EXPECT_EQ(dropped.ValueOrDie(), 5u);
    const auto names_after = ListDirectory(dir);
    ASSERT_TRUE(names_after.ok());
    EXPECT_LT(names_after->size(), names_before->size())
        << "no segment files were unlinked";
  }
  // Reopen: the device accepts a first segment index > 1 and recovery sees
  // a contiguous record suffix ending at the last LSN. Whole-segment
  // granularity may retain a few records below the truncation point; what
  // matters is that nothing at or above it is missing.
  auto device = FileLogDevice::Open(dir, fopts);
  ASSERT_TRUE(device.ok()) << device.status().ToString();
  WriteAheadLog wal(std::move(device).ValueUnsafe(), FastRetryOptions());
  auto recovered = wal.RecoverAtStartup();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_FALSE(recovered->empty());
  EXPECT_EQ(recovered->back().lsn, 8u);
  EXPECT_LE(recovered->front().lsn, 6u);
  for (size_t i = 1; i < recovered->size(); ++i) {
    EXPECT_EQ((*recovered)[i].lsn, (*recovered)[i - 1].lsn + 1);
  }
  CleanupDirectoryForTesting(dir);
}

TEST(WalCheckpoint, TruncateRacingFlushesKeepsEverySuffixRecord) {
  // Truncation must drain the pipeline and block new claims without losing
  // records that commit concurrently with it.
  WriteAheadLog wal(std::make_unique<InMemoryLogDevice>(/*sync_micros=*/20));
  std::atomic<bool> stop{false};
  std::atomic<Lsn> last{0};
  std::thread writer([&]() {
    while (!stop.load()) {
      const Lsn lsn = wal.Append(MakeRecord(7));
      if (lsn == kInvalidLsn) break;
      if (!wal.FlushTo(lsn).ok()) break;
      last.store(lsn);
    }
  });
  size_t total_dropped = 0;
  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const Lsn bound = last.load();
    if (bound == 0) continue;
    auto dropped = wal.TruncateCheckpointed(bound);
    ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
    total_dropped += dropped.ValueOrDie();
  }
  stop.store(true);
  writer.join();
  EXPECT_TRUE(wal.health().ok());
  EXPECT_GT(total_dropped, 0u);
  auto stable = wal.StableRecords();
  ASSERT_TRUE(stable.ok()) << stable.status().ToString();
  ASSERT_EQ(stable->size(), wal.retained_count());
  EXPECT_EQ(wal.stable_count(), wal.truncated_count() + stable->size());
  if (!stable->empty()) {
    EXPECT_EQ(stable->back().lsn, wal.stable_lsn());
    for (size_t i = 1; i < stable->size(); ++i) {
      EXPECT_EQ((*stable)[i].lsn, (*stable)[i - 1].lsn + 1);
    }
  }
}

}  // namespace
}  // namespace semcc
