// Unit tests for the storage substrate: slotted pages, disk manager, buffer
// pool (LRU, dirty write-back, pin exhaustion), record manager.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/record_manager.h"

namespace semcc {
namespace {

// --- Page ---------------------------------------------------------------

TEST(Page, InsertAndRead) {
  Page p;
  p.Reset(7);
  EXPECT_EQ(p.page_id(), 7u);
  uint16_t slot = p.Insert("hello").ValueOrDie();
  EXPECT_EQ(p.Read(slot).ValueOrDie(), "hello");
  EXPECT_EQ(p.LiveRecords(), 1);
}

TEST(Page, MultipleRecordsKeepSlots) {
  Page p;
  p.Reset(0);
  std::vector<uint16_t> slots;
  for (int i = 0; i < 50; ++i) {
    slots.push_back(p.Insert("rec" + std::to_string(i)).ValueOrDie());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(p.Read(slots[i]).ValueOrDie(), "rec" + std::to_string(i));
  }
}

TEST(Page, DeleteTombstones) {
  Page p;
  p.Reset(0);
  uint16_t a = p.Insert("a").ValueOrDie();
  uint16_t b = p.Insert("b").ValueOrDie();
  ASSERT_TRUE(p.Delete(a).ok());
  EXPECT_TRUE(p.Read(a).status().IsNotFound());
  EXPECT_EQ(p.Read(b).ValueOrDie(), "b");
  EXPECT_TRUE(p.Delete(a).IsNotFound());  // double delete
  EXPECT_EQ(p.LiveRecords(), 1);
}

TEST(Page, UpdateInPlaceAndGrow) {
  Page p;
  p.Reset(0);
  uint16_t s = p.Insert("aaaa").ValueOrDie();
  ASSERT_TRUE(p.Update(s, "bb").ok());  // shrink in place
  EXPECT_EQ(p.Read(s).ValueOrDie(), "bb");
  ASSERT_TRUE(p.Update(s, std::string(100, 'x')).ok());  // relocate
  EXPECT_EQ(p.Read(s).ValueOrDie(), std::string(100, 'x'));
}

TEST(Page, FillsUpThenRejects) {
  Page p;
  p.Reset(0);
  const std::string rec(100, 'r');
  int inserted = 0;
  while (true) {
    auto r = p.Insert(rec);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsOutOfSpace());
      break;
    }
    inserted++;
  }
  // 4 KiB page, 104 bytes per record incl. slot entry: ~39 fit.
  EXPECT_GT(inserted, 30);
  EXPECT_LT(inserted, 45);
}

TEST(Page, CompactionReclaimsDeletedSpace) {
  Page p;
  p.Reset(0);
  std::vector<uint16_t> slots;
  const std::string rec(100, 'r');
  while (true) {
    auto r = p.Insert(rec);
    if (!r.ok()) break;
    slots.push_back(r.ValueOrDie());
  }
  // Free half the records; the holes are not contiguous.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(p.Delete(slots[i]).ok());
  }
  // New inserts must succeed after internal compaction.
  auto r = p.Insert(std::string(200, 'n'));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(p.Read(r.ValueOrDie()).ValueOrDie(), std::string(200, 'n'));
  // Survivors are intact.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(p.Read(slots[i]).ValueOrDie(), rec);
  }
}

TEST(Page, RejectsOversizedRecord) {
  Page p;
  p.Reset(0);
  EXPECT_TRUE(p.Insert(std::string(kPageSize, 'x')).status().IsInvalidArgument());
}

TEST(Page, ReadInvalidSlot) {
  Page p;
  p.Reset(0);
  EXPECT_TRUE(p.Read(3).status().IsNotFound());
}

// --- DiskManager ----------------------------------------------------------

TEST(DiskManager, AllocateReadWrite) {
  DiskManager disk;
  PageId id = disk.AllocatePage();
  Page p;
  p.Reset(id);
  uint16_t slot = p.Insert("persisted").ValueOrDie();
  ASSERT_TRUE(disk.WritePage(id, p.data()).ok());
  Page q;
  ASSERT_TRUE(disk.ReadPage(id, q.data()).ok());
  EXPECT_EQ(q.Read(slot).ValueOrDie(), "persisted");
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.writes(), 1u);
}

TEST(DiskManager, ReadBeyondImageFails) {
  DiskManager disk;
  Page p;
  EXPECT_TRUE(disk.ReadPage(5, p.data()).IsNotFound());
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, NewPageIsPinnedAndUsable) {
  DiskManager disk;
  BufferPool pool(4, &disk);
  auto guard = pool.NewPage().ValueOrDie();
  ASSERT_TRUE(guard.valid());
  uint16_t slot = guard->Insert("x").ValueOrDie();
  EXPECT_EQ(guard->Read(slot).ValueOrDie(), "x");
}

TEST(BufferPool, EvictionWritesBackDirtyPages) {
  DiskManager disk;
  BufferPool pool(2, &disk);
  PageId first;
  uint16_t slot;
  {
    auto g = pool.NewPage().ValueOrDie();
    first = g->page_id();
    slot = g->Insert("dirty data").ValueOrDie();
    g.MarkDirty();
  }
  // Evict `first` by cycling more pages than frames.
  for (int i = 0; i < 4; ++i) {
    auto g = pool.NewPage().ValueOrDie();
    g.MarkDirty();
  }
  auto g = pool.FetchPage(first).ValueOrDie();
  EXPECT_EQ(g->Read(slot).ValueOrDie(), "dirty data");
}

TEST(BufferPool, ExhaustionWhenAllPinned) {
  DiskManager disk;
  BufferPool pool(2, &disk);
  auto a = pool.NewPage().ValueOrDie();
  auto b = pool.NewPage().ValueOrDie();
  auto c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsOutOfSpace());
  a.Release();
  auto d = pool.NewPage();
  EXPECT_TRUE(d.ok());
}

TEST(BufferPool, HitsAndMissesCounted) {
  DiskManager disk;
  BufferPool pool(4, &disk);
  PageId id;
  {
    auto g = pool.NewPage().ValueOrDie();
    id = g->page_id();
    g.MarkDirty();
  }
  (void)pool.FetchPage(id).ValueOrDie();  // hit (still resident)
  EXPECT_GE(pool.hits(), 1u);
}

TEST(BufferPool, FlushAllPersistsEverything) {
  DiskManager disk;
  uint16_t slot;
  PageId id;
  {
    BufferPool pool(4, &disk);
    auto g = pool.NewPage().ValueOrDie();
    id = g->page_id();
    slot = g->Insert("flushed").ValueOrDie();
    g.MarkDirty();
    g.Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  Page p;
  ASSERT_TRUE(disk.ReadPage(id, p.data()).ok());
  EXPECT_EQ(p.Read(slot).ValueOrDie(), "flushed");
}

// --- RecordManager ------------------------------------------------------------

struct RecordManagerTest : public ::testing::Test {
  RecordManagerTest() : pool(64, &disk), rm(&pool) {}
  DiskManager disk;
  BufferPool pool;
  RecordManager rm;
};

TEST_F(RecordManagerTest, InsertReadUpdateDelete) {
  Rid rid = rm.Insert("value-1").ValueOrDie();
  EXPECT_TRUE(rid.valid());
  EXPECT_EQ(rm.Read(rid).ValueOrDie(), "value-1");
  ASSERT_TRUE(rm.Update(rid, "value-2").ok());
  EXPECT_EQ(rm.Read(rid).ValueOrDie(), "value-2");
  ASSERT_TRUE(rm.Delete(rid).ok());
  EXPECT_TRUE(rm.Read(rid).status().IsNotFound());
}

TEST_F(RecordManagerTest, SpillsAcrossPages) {
  std::vector<Rid> rids;
  const std::string rec(500, 'z');
  for (int i = 0; i < 100; ++i) rids.push_back(rm.Insert(rec).ValueOrDie());
  // 4 KiB pages hold ~8 of these: multiple pages in play.
  EXPECT_GT(rids.back().page_id, rids.front().page_id);
  for (const Rid& rid : rids) EXPECT_EQ(rm.Read(rid).ValueOrDie(), rec);
}

TEST_F(RecordManagerTest, ClusteredInsertsShareAPage) {
  Rid a = rm.Insert("a").ValueOrDie();
  Rid b = rm.Insert("b").ValueOrDie();
  // Insertion clustering is what makes page-granularity locking contend.
  EXPECT_EQ(a.page_id, b.page_id);
}

TEST_F(RecordManagerTest, ManySmallRecords) {
  std::vector<Rid> rids;
  for (int i = 0; i < 5000; ++i) {
    rids.push_back(rm.Insert("r" + std::to_string(i)).ValueOrDie());
  }
  for (int i = 0; i < 5000; i += 997) {
    EXPECT_EQ(rm.Read(rids[i]).ValueOrDie(), "r" + std::to_string(i));
  }
  EXPECT_EQ(rm.num_inserts(), 5000u);
}

TEST(Rid, ToStringAndEquality) {
  Rid a{3, 4};
  Rid b{3, 4};
  Rid c{3, 5};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.ToString(), "3.4");
  EXPECT_NE(RidHash()(a), RidHash()(c));
}

}  // namespace
}  // namespace semcc
