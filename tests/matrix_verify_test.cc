// Mutation tests for the commutativity-matrix verifier (cc/matrix_verifier.h).
//
// The verifier's value is what it REJECTS: each test seeds one defect class
// into a scratch registry through the TestOnlyCorrupt* hooks (the public
// registration API cannot build a broken matrix — Define() always writes
// symmetric cells) and asserts the verifier rejects it with a pointed
// diagnostic naming the check, the type, and the offending methods.
#include "cc/matrix_verifier.h"

#include <algorithm>
#include <string>

#include "cc/compatibility.h"
#include "gtest/gtest.h"

namespace semcc {
namespace {

using CellKind = CompatibilityRegistry::CellKind;

constexpr TypeId kScratchType = 77;

/// A small well-formed registry: three methods, every pair registered,
/// one parameter-dependent cell (A vs C commute iff first args differ).
void InstallScratchMatrix(CompatibilityRegistry* c) {
  for (const char* m : {"MvA", "MvB", "MvC"}) {
    c->DeclareMethod(kScratchType, m);
  }
  c->Define(kScratchType, "MvA", "MvA", true);
  c->Define(kScratchType, "MvA", "MvB", false);
  c->Define(kScratchType, "MvB", "MvB", true);
  c->Define(kScratchType, "MvB", "MvC", true);
  c->Define(kScratchType, "MvC", "MvC", false);
  c->DefinePredicate(kScratchType, "MvA", "MvC",
                     [](const Args& a, const Args& b) {
                       return !a.empty() && !b.empty() && !(a[0] == b[0]);
                     });
}

constexpr TypeId kSpecType = 78;

/// A registry whose cells are DERIVED from exact footprints (§5.8): a
/// point-keyed blind insert and a point-keyed read. Every pair involving
/// the insert compiles to a key-overlap predicate, the read pair to a
/// static compatible cell — all computed, none hand-written.
void InstallScratchSpecs(CompatibilityRegistry* c) {
  MethodSpec ins;
  ins.writes = KeyRef::Point(0);
  ins.size_delta = 1;
  c->DefineMethodSpec(kSpecType, "MvIns", ins);
  MethodSpec sel;
  sel.reads = KeyRef::Point(0);
  c->DefineMethodSpec(kSpecType, "MvSel", sel);
}

bool HasDiagnosticForType(const MatrixVerifyReport& report, TypeId type,
                          const std::string& check,
                          const std::string& detail_substr) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const MatrixDiagnostic& d) {
                       return d.check == check && d.type == type &&
                              d.detail.find(detail_substr) !=
                                  std::string::npos;
                     });
}

bool HasDiagnostic(const MatrixVerifyReport& report, const std::string& check,
                   const std::string& detail_substr) {
  return HasDiagnosticForType(report, kScratchType, check, detail_substr);
}

TEST(MatrixVerifyTest, WellFormedScratchRegistryPasses) {
  CompatibilityRegistry c;
  InstallScratchMatrix(&c);
  MatrixVerifier verifier(&c);
  const MatrixVerifyReport report = verifier.Verify();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.types_checked, 1u);
  EXPECT_GT(report.cells_checked, 0u);
  EXPECT_GT(report.verdicts_sampled, 0u);
  EXPECT_FALSE(report.behavioral_skipped);
}

TEST(MatrixVerifyTest, RejectsFlippedSymmetryCell) {
  CompatibilityRegistry c;
  InstallScratchMatrix(&c);
  // Flip ONE direction of a static cell: (MvA, MvB) becomes compatible
  // while (MvB, MvA) stays conflict — the verdict now depends on which
  // side holds the lock, which the protocol never allows.
  ASSERT_TRUE(c.TestOnlyCorruptCell(kScratchType, "MvA", "MvB",
                                    CellKind::kCellCompatible));
  const MatrixVerifyReport report = MatrixVerifier(&c).Verify();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, "cell-symmetry", "MvA"))
      << report.ToString();
  EXPECT_TRUE(HasDiagnostic(report, "cell-symmetry", "MvB"))
      << report.ToString();
  EXPECT_TRUE(report.behavioral_skipped);
}

TEST(MatrixVerifyTest, RejectsWrongArgsSensitiveBit) {
  CompatibilityRegistry c;
  InstallScratchMatrix(&c);
  // MvA has a predicate cell (vs MvC), so its args_sensitive bit must be
  // set; clearing it would let the §5.4 grant cache and entry coalescing
  // treat two MvA invocations with different args as one conflict class.
  ASSERT_TRUE(c.TestOnlyCorruptArgsSensitive(kScratchType, "MvA", false));
  const MatrixVerifyReport report = MatrixVerifier(&c).Verify();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, "args-sensitive", "MvA"))
      << report.ToString();

  // The opposite defect — marking a purely static method sensitive —
  // must be rejected too (it silently disables coalescing for the method).
  CompatibilityRegistry c2;
  InstallScratchMatrix(&c2);
  ASSERT_TRUE(c2.TestOnlyCorruptArgsSensitive(kScratchType, "MvB", true));
  const MatrixVerifyReport report2 = MatrixVerifier(&c2).Verify();
  ASSERT_FALSE(report2.ok());
  EXPECT_TRUE(HasDiagnostic(report2, "args-sensitive", "MvB"))
      << report2.ToString();
}

TEST(MatrixVerifyTest, RejectsPredicateDenseMismatch) {
  CompatibilityRegistry c;
  InstallScratchMatrix(&c);
  // Overwrite BOTH directions of the predicate pair with a static verdict:
  // symmetry still holds, but the compiled table now contradicts the
  // registered Fig. 3-style predicate — the hot path would answer
  // "always commute" where the registration says "commute iff args differ".
  ASSERT_TRUE(c.TestOnlyCorruptCell(kScratchType, "MvA", "MvC",
                                    CellKind::kCellCompatible));
  ASSERT_TRUE(c.TestOnlyCorruptCell(kScratchType, "MvC", "MvA",
                                    CellKind::kCellCompatible));
  const MatrixVerifyReport report = MatrixVerifier(&c).Verify();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(
      HasDiagnostic(report, "registration-agreement", "predicate"))
      << report.ToString();
  EXPECT_TRUE(report.behavioral_skipped);
}

TEST(MatrixVerifyTest, RejectsIncompleteMatrix) {
  // A declared method with unregistered pairs degrades to the conflict
  // default — the retained-lock closure property (Fig. 8/9) the verifier's
  // matrix-totality check protects.
  CompatibilityRegistry c;
  InstallScratchMatrix(&c);
  c.DeclareMethod(kScratchType, "MvOrphan");
  const MatrixVerifyReport report = MatrixVerifier(&c).Verify();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnostic(report, "matrix-totality", "MvOrphan"))
      << report.ToString();
}

TEST(MatrixVerifyTest, WellFormedDerivedSpecsPass) {
  CompatibilityRegistry c;
  InstallScratchSpecs(&c);
  const MatrixVerifyReport report = MatrixVerifier(&c).Verify();
  EXPECT_TRUE(report.ok()) << report.ToString();
  // The derived cells appear in the dump with their spec lines, so spec
  // edits show up in the golden table like matrix edits do.
  const std::string table = MatrixVerifier(&c).DumpTable();
  for (const char* needle :
       {"spec MvIns reads=none writes=point(arg0) observes_size=no "
        "size_delta=1 exact=yes",
        "spec MvSel reads=point(arg0) writes=none observes_size=no "
        "size_delta=0 exact=yes",
        "cell MvIns x MvSel = pred{", "cell MvSel x MvSel = commute"}) {
    EXPECT_NE(table.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << table;
  }
}

TEST(MatrixVerifyTest, RejectsCorruptedDerivedCell) {
  CompatibilityRegistry c;
  InstallScratchSpecs(&c);
  // Flip BOTH directions of the derived key-overlap predicate cell to a
  // static conflict: symmetry still holds, but the published table now
  // contradicts what the footprint algebra computes from the two exact
  // specs — the lock manager would block point ops on different keys that
  // the specs prove independent.
  ASSERT_TRUE(c.TestOnlyCorruptCell(kSpecType, "MvIns", "MvSel",
                                    CellKind::kCellConflict));
  ASSERT_TRUE(c.TestOnlyCorruptCell(kSpecType, "MvSel", "MvIns",
                                    CellKind::kCellConflict));
  const MatrixVerifyReport report = MatrixVerifier(&c).Verify();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticForType(report, kSpecType, "spec-derivation",
                                   "(MvIns, MvSel) derive predicate"))
      << report.ToString();
  EXPECT_TRUE(HasDiagnosticForType(report, kSpecType, "spec-derivation",
                                   "published cell is conflict"))
      << report.ToString();
}

TEST(MatrixVerifyTest, RejectsCorruptedSpec) {
  CompatibilityRegistry c;
  InstallScratchSpecs(&c);
  // Swap MvIns's published spec for a keyless no-op footprint WITHOUT
  // re-deriving: the algebra now derives compatible for every MvIns pair
  // while the compiled cells still carry the old key-overlap predicates.
  MethodSpec benign;
  ASSERT_TRUE(c.TestOnlyCorruptSpec(kSpecType, "MvIns", benign));
  const MatrixVerifyReport report = MatrixVerifier(&c).Verify();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasDiagnosticForType(report, kSpecType, "spec-derivation",
                                   "(MvIns, MvSel) derive compatible"))
      << report.ToString();
  EXPECT_TRUE(HasDiagnosticForType(report, kSpecType, "spec-derivation",
                                   "published cell is predicate"))
      << report.ToString();
}

TEST(MatrixVerifyTest, DumpTableIsDeterministicAndExhaustive) {
  CompatibilityRegistry c;
  InstallScratchMatrix(&c);
  MatrixVerifier verifier(&c);
  const std::string table = verifier.DumpTable();
  EXPECT_EQ(table, verifier.DumpTable());
  for (const char* needle :
       {"MvA x MvA", "MvA x MvB", "MvA x MvC", "MvB x MvB", "MvB x MvC",
        "MvC x MvC", "pred{", "args_sensitive=yes", "args_sensitive=no"}) {
    EXPECT_NE(table.find(needle), std::string::npos)
        << "missing " << needle << " in:\n" << table;
  }
}

}  // namespace
}  // namespace semcc
