// Tests for the observability layer (DESIGN.md §5.5): the metrics
// primitives (CounterBank, AtomicHistogram, JsonWriter), counter accuracy
// against the lock manager's entry-accounting contract (granted ==
// released + live at quiesce), snapshot consistency under concurrent
// mutation (the TSan leg of the build matrix exercises the memory-ordering
// contract), trace ring-buffer wraparound, and the verdict counts / trace
// decision events of the paper's scenario figures (EXPERIMENTS.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/orderentry/scenario.h"
#include "cc/compatibility.h"
#include "cc/lock_manager.h"
#include "cc/subtxn.h"
#include "core/database.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace semcc {
namespace {

// --- CounterBank ------------------------------------------------------------

TEST(CounterBank, IncSumAndStripeValue) {
  metrics::CounterBank bank(4, 3);
  EXPECT_EQ(bank.stripes(), 4u);
  bank.Inc(0, 0);
  bank.Inc(1, 0, 5);
  bank.Inc(3, 0);
  bank.Inc(2, 2, 7);
  EXPECT_EQ(bank.Sum(0), 7u);
  EXPECT_EQ(bank.Sum(1), 0u);
  EXPECT_EQ(bank.Sum(2), 7u);
  EXPECT_EQ(bank.StripeValue(1, 0), 5u);
  EXPECT_EQ(bank.StripeValue(2, 2), 7u);
}

TEST(CounterBank, StripeIndexWrapsAtPowerOfTwo) {
  // 3 stripes round up to 4; stripe 5 masks to stripe 1.
  metrics::CounterBank bank(3, 1);
  EXPECT_EQ(bank.stripes(), 4u);
  bank.Inc(5, 0, 9);
  EXPECT_EQ(bank.StripeValue(1, 0), 9u);
  EXPECT_EQ(bank.Sum(0), 9u);
}

TEST(CounterBank, SumIsMonotonicUnderConcurrentIncrements) {
  metrics::CounterBank bank(8, 2);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t now = bank.Sum(0);
      ASSERT_GE(now, last);  // monotonic lower bound
      last = now;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&bank, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) bank.Inc(t, 0);
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(bank.Sum(0), kThreads * kPerThread);  // exact at quiesce
  EXPECT_EQ(bank.Sum(1), 0u);
}

// --- AtomicHistogram --------------------------------------------------------

TEST(AtomicHistogram, EmptySummaryIsAllZero) {
  metrics::AtomicHistogram h;
  const metrics::HistogramSummary s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.p99, 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(AtomicHistogram, ExactRangeAndPercentiles) {
  metrics::AtomicHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Add(v);
  const metrics::HistogramSummary s = h.Snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  // Values below 64 sit in exact buckets (percentiles report the bucket's
  // upper bound); above that resolution is ~4%, clamped to the true max.
  EXPECT_GE(s.p50, 50u);
  EXPECT_LE(s.p50, 51u);
  EXPECT_GE(s.p99, 96u);
  EXPECT_LE(s.p99, 100u);
  EXPECT_NEAR(s.mean(), 50.5, 0.01);
}

TEST(AtomicHistogram, SnapshotConsistentUnderConcurrentAdds) {
  // The TSan leg checks the ordering contract: count is incremented with
  // release LAST in Add, and Snapshot loads it with acquire FIRST, so the
  // percentile scan never indexes a shorter distribution than the count
  // claims (p-quantiles stay within the observed [min, max] envelope).
  metrics::AtomicHistogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 40000;
  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    uint64_t last_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const metrics::HistogramSummary s = h.Snapshot();
      ASSERT_GE(s.count, last_count);
      last_count = s.count;
      if (s.count > 0) {
        ASSERT_GE(s.min, 1u);
        ASSERT_LE(s.max, 1000u);
        ASSERT_LE(s.p50, s.max);
        ASSERT_LE(s.p99, s.max);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h]() {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Add(1 + (i % 1000));
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h.Snapshot().count, kThreads * kPerThread);
}

// --- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, EmitsWellFormedObject) {
  metrics::JsonWriter w;
  w.Field("a", uint64_t{7});
  w.Field("b", true);
  w.Field("c", std::string("x\"y\\z"));
  w.FieldRaw("d", "{\"n\": 1}");
  EXPECT_EQ(w.Close(),
            "{\"a\": 7, \"b\": true, \"c\": \"x\\\"y\\\\z\", \"d\": {\"n\": 1}}");
}

// --- lock-manager counter accuracy ------------------------------------------

constexpr TypeId kItemT = 1;
constexpr Oid kObjA = 100;

struct MetricsLockTest : public ::testing::Test {
  MetricsLockTest() {
    compat.Define(kItemT, "Ma", "Mb", true);
    compat.Define(kItemT, "Ma", "Ma", false);
    compat.Define(kItemT, "Mb", "Mb", true);
  }
  CompatibilityRegistry compat;
};

TEST_F(MetricsLockTest, GrantedMinusReleasedCountsLiveEntriesMidRun) {
  ProtocolOptions o;  // retain_locks on: completion keeps the entries
  LockManager lm(o, &compat);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  std::vector<SubTxn*> nodes;
  for (int i = 0; i < 3; ++i) {
    SubTxn* n = t1.NewNode(t1.root(), kObjA + i, kItemT, "Ma", {});
    nodes.push_back(n);
    ASSERT_TRUE(lm.Acquire(n, LockTarget::ForObject(kObjA + i), true).ok());
  }
  for (SubTxn* n : nodes) {
    n->set_state(TxnState::kCommitted);
    lm.OnSubTxnCompleted(n);  // locks become retained, not released
  }
  LockStats s = lm.stats();
  EXPECT_EQ(s.granted_entries, 3u);
  EXPECT_EQ(s.released_entries, 0u);  // retained ≠ released

  t1.root()->set_state(TxnState::kCommitted);
  lm.OnSubTxnCompleted(t1.root());
  lm.ReleaseTree(t1.root());
  s = lm.stats();
  EXPECT_EQ(s.granted_entries, s.released_entries);
}

TEST_F(MetricsLockTest, GrantsEqualReleasesAtQuiesceUnderStress) {
  ProtocolOptions o;
  o.lock_fast_path = false;  // every acquire appends a countable entry
  o.coalesce_entries = false;
  LockManager lm(o, &compat);
  constexpr int kThreads = 4;
  constexpr int kTreesPerThread = 32;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&lm, t]() {
      for (int i = 0; i < kTreesPerThread; ++i) {
        TxnTree tree(TxnTree::NextId(), "W", kDatabaseOid, 0);
        // Three private targets plus one shared commuting class.
        for (int k = 0; k < 3; ++k) {
          const Oid oid = 10000 + t * 1000 + i * 10 + k;
          SubTxn* n = tree.NewNode(tree.root(), oid, kItemT, "Ma", {});
          ASSERT_TRUE(lm.Acquire(n, LockTarget::ForObject(oid), true).ok());
        }
        SubTxn* shared = tree.NewNode(tree.root(), kObjA, kItemT, "Mb", {});
        ASSERT_TRUE(
            lm.Acquire(shared, LockTarget::ForObject(kObjA), true).ok());
        tree.root()->set_state(TxnState::kCommitted);
        lm.OnSubTxnCompleted(tree.root());
        lm.ReleaseTree(tree.root());
      }
    });
  }
  for (auto& th : threads) th.join();
  const LockStats s = lm.stats();
  EXPECT_EQ(s.granted_entries, kThreads * kTreesPerThread * 4u);
  EXPECT_EQ(s.granted_entries, s.released_entries);
  EXPECT_EQ(s.acquires, s.fast_path_hits + s.coalesced_grants +
                            s.granted_entries);
  EXPECT_EQ(lm.NumWaiters(), 0u);
  EXPECT_EQ(lm.CheckInvariantsNow(), 0u);
}

TEST_F(MetricsLockTest, ShardStatsSumToAggregate) {
  ProtocolOptions o;
  LockManager lm(o, &compat);
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  for (int i = 0; i < 16; ++i) {
    SubTxn* n = t1.NewNode(t1.root(), 500 + i, kItemT, "Ma", {});
    ASSERT_TRUE(lm.Acquire(n, LockTarget::ForObject(500 + i), true).ok());
  }
  uint64_t acquires = 0, granted = 0;
  for (int s = 0; s < lm.num_shards(); ++s) {
    const LockStats ss = lm.shard_stats(s);
    acquires += ss.acquires;
    granted += ss.granted_entries;
  }
  const LockStats total = lm.stats();
  EXPECT_EQ(acquires, total.acquires);
  EXPECT_EQ(granted, total.granted_entries);
  lm.ReleaseTree(t1.root());
}

TEST_F(MetricsLockTest, StatsToJsonCarriesTheVerdictBreakdown) {
  ProtocolOptions o;
  LockManager lm(o, &compat);
  const std::string json = lm.stats().ToJson();
  for (const char* key :
       {"\"acquires\"", "\"commute_grants\"", "\"case1_grants\"",
        "\"case2_waits\"", "\"root_waits\"", "\"retained_hits\"",
        "\"fast_path_hits\"", "\"wait_p99_us\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// --- trace ring buffer ------------------------------------------------------

TEST(TraceRing, WraparoundKeepsNewestEventsAndCountsDropped) {
  trace::SetRingCapacityForTesting(8);
  trace::ResetForTesting();
  for (uint64_t i = 0; i < 20; ++i) {
    trace::Event e;
    e.kind = static_cast<uint8_t>(trace::EventKind::kGrant);
    e.value = i;
    trace::Emit(e);
  }
  const std::vector<trace::Event> events = trace::SnapshotEvents();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(trace::TotalDropped(), 12u);
  // The survivors are the 8 newest, in emit order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].value, 12 + i);
    if (i > 0) {
      EXPECT_GT(events[i].seq, events[i - 1].seq);
    }
  }
  trace::SetRingCapacityForTesting(8192);
}

TEST(TraceRing, EventJsonIsOneObjectPerLine) {
  trace::SetRingCapacityForTesting(8192);
  trace::ResetForTesting();
  trace::Event e;
  e.kind = static_cast<uint8_t>(trace::EventKind::kBlock);
  e.txn = 42;
  e.set_method("ShipOrder");
  trace::Emit(e);
  const std::string lines = trace::ToJsonLines();
  EXPECT_NE(lines.find("\"kind\": \"block\""), std::string::npos) << lines;
  EXPECT_NE(lines.find("\"txn\": 42"), std::string::npos);
  EXPECT_NE(lines.find("\"method\": \"ShipOrder\""), std::string::npos);
  EXPECT_EQ(lines.back(), '\n');
}

// --- scenario-figure verdict counts (EXPERIMENTS.md) ------------------------

ProtocolOptions Semantic() {
  ProtocolOptions o;
  o.protocol = Protocol::kSemanticONT;
  return o;
}

TEST(ScenarioVerdicts, Fig4CommutesWithoutRootWaits) {
  auto s = orderentry::MakePaperScenario(Semantic()).ValueOrDie();
  orderentry::RunFig4(s.get());
  const LockStats ls = s->db->locks()->stats();
  EXPECT_GE(ls.commute_grants, 1u);
  EXPECT_EQ(ls.root_waits, 0u);
  EXPECT_GE(s->db->txns()->stats().commits, 2u);
}

TEST(ScenarioVerdicts, Fig5BlocksOnARetainedLock) {
  auto s = orderentry::MakePaperScenario(Semantic()).ValueOrDie();
  orderentry::RunFig5(s.get());
  const LockStats ls = s->db->locks()->stats();
  EXPECT_GE(ls.root_waits, 1u);
  EXPECT_GE(ls.retained_hits, 1u);  // the bypassing probe hit T1's retained
                                    // ChangeStatus lock (§4.1)
}

TEST(ScenarioVerdicts, Fig6CountsTheCase1Grant) {
  auto s = orderentry::MakePaperScenario(Semantic()).ValueOrDie();
  orderentry::RunFig6(s.get());
  const LockStats ls = s->db->locks()->stats();
  EXPECT_GE(ls.case1_grants, 1u);
  EXPECT_EQ(ls.root_waits, 0u);
}

TEST(ScenarioVerdicts, Fig7CountsTheCase2Wait) {
  auto s = orderentry::MakePaperScenario(Semantic()).ValueOrDie();
  orderentry::RunFig7(s.get());
  const LockStats ls = s->db->locks()->stats();
  EXPECT_GE(ls.case2_waits, 1u);
}

// --- trace decision events for the figures ----------------------------------

TEST(ScenarioTrace, Fig5EmitsARetainedBlockWithRootWaitVerdict) {
  trace::SetRingCapacityForTesting(8192);
  trace::ResetForTesting();
  ProtocolOptions o = Semantic();
  o.trace = true;  // per-database opt-in; no env needed
  auto s = orderentry::MakePaperScenario(o).ValueOrDie();
  orderentry::RunFig5(s.get());
  bool found = false;
  for (const trace::Event& e : trace::SnapshotEvents()) {
    if (e.kind == static_cast<uint8_t>(trace::EventKind::kBlock) &&
        e.verdict == static_cast<uint8_t>(ConflictOutcome::kRootWait) &&
        (e.flags & trace::kFlagBlockerRetained) != 0) {
      found = true;
      EXPECT_NE(e.other, 0u);  // the blocker's id is recorded
    }
  }
  EXPECT_TRUE(found)
      << "no block event against a retained lock in the Fig5 trace";
}

TEST(ScenarioTrace, Fig6EmitsAGrantWithCase1Verdict) {
  trace::SetRingCapacityForTesting(8192);
  trace::ResetForTesting();
  ProtocolOptions o = Semantic();
  o.trace = true;
  auto s = orderentry::MakePaperScenario(o).ValueOrDie();
  orderentry::RunFig6(s.get());
  bool found = false;
  for (const trace::Event& e : trace::SnapshotEvents()) {
    if (e.kind == static_cast<uint8_t>(trace::EventKind::kGrant) &&
        e.verdict == static_cast<uint8_t>(ConflictOutcome::kCase1Grant)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no Case 1 grant event in the Fig6 trace";
}

// --- Database::Stats --------------------------------------------------------

TEST(DatabaseStats, AggregatesLocksTxnsAndWal) {
  DatabaseOptions dopts;
  dopts.enable_wal = true;
  Database db(dopts);
  const DatabaseStats s = db.Stats();
  EXPECT_TRUE(s.wal_enabled);
  const std::string json = s.ToJson();
  for (const char* key : {"\"locks\"", "\"txns\"", "\"wal\"", "\"appends\"",
                          "\"commits\"", "\"acquires\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(DatabaseStats, WalSectionOmittedWhenDisabled) {
  Database db;
  const DatabaseStats s = db.Stats();
  EXPECT_FALSE(s.wal_enabled);
  EXPECT_EQ(s.ToJson().find("\"wal\""), std::string::npos);
}

}  // namespace
}  // namespace semcc
