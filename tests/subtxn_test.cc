// Unit tests for subtransaction trees (nodes, ancestor chains, labels).
#include <gtest/gtest.h>

#include <thread>

#include "cc/subtxn.h"

namespace semcc {
namespace {

TEST(SubTxn, RootProperties) {
  TxnTree tree(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* root = tree.root();
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->parent(), nullptr);
  EXPECT_EQ(root->root(), root);
  EXPECT_EQ(root->depth(), 0);
  EXPECT_EQ(root->method(), "T1");
  EXPECT_FALSE(root->completed());
  EXPECT_TRUE(root->AncestorChain().empty());
}

TEST(SubTxn, TreeStructureAndChains) {
  TxnTree tree(TxnTree::NextId(), "T", kDatabaseOid, 0);
  SubTxn* root = tree.root();
  SubTxn* ship = tree.NewNode(root, 10, 1, "ShipOrder", {Value(1)});
  SubTxn* cs = tree.NewNode(ship, 20, 2, "ChangeStatus", {Value("shipped")});
  SubTxn* get = tree.NewNode(cs, 30, 3, "Get", {});
  EXPECT_EQ(get->depth(), 3);
  EXPECT_EQ(get->root(), root);
  auto chain = get->AncestorChain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], cs);    // bottom-up: parent first...
  EXPECT_EQ(chain[1], ship);
  EXPECT_EQ(chain[2], root);  // ...root last
  EXPECT_TRUE(root->IsAncestorOf(get));
  EXPECT_TRUE(ship->IsAncestorOf(get));
  EXPECT_FALSE(get->IsAncestorOf(ship));
  EXPECT_FALSE(ship->IsAncestorOf(ship));  // not its own ancestor
  EXPECT_TRUE(root->SameRootAs(get));
}

TEST(SubTxn, SeparateTreesHaveDifferentRoots) {
  TxnTree a(TxnTree::NextId(), "A", kDatabaseOid, 0);
  TxnTree b(TxnTree::NextId(), "B", kDatabaseOid, 0);
  EXPECT_NE(a.root()->id(), b.root()->id());
  EXPECT_FALSE(a.root()->SameRootAs(b.root()));
}

TEST(SubTxn, StateTransitions) {
  TxnTree tree(TxnTree::NextId(), "T", kDatabaseOid, 0);
  SubTxn* n = tree.NewNode(tree.root(), 1, 1, "M", {});
  EXPECT_EQ(n->state(), TxnState::kActive);
  EXPECT_FALSE(n->completed());
  n->set_state(TxnState::kCommitted);
  EXPECT_TRUE(n->completed());
  EXPECT_TRUE(n->committed());
  n->set_state(TxnState::kAborted);
  EXPECT_TRUE(n->completed());
  EXPECT_FALSE(n->committed());
}

TEST(SubTxn, AbortRequestIsSticky) {
  TxnTree tree(TxnTree::NextId(), "T", kDatabaseOid, 0);
  EXPECT_FALSE(tree.root()->abort_requested());
  tree.root()->RequestAbort();
  EXPECT_TRUE(tree.root()->abort_requested());
}

TEST(SubTxn, ChildrenSnapshots) {
  TxnTree tree(TxnTree::NextId(), "T", kDatabaseOid, 0);
  SubTxn* root = tree.root();
  SubTxn* a = tree.NewNode(root, 1, 1, "A", {});
  SubTxn* b = tree.NewNode(root, 2, 1, "B", {});
  auto children = root->Children();
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], a);
  EXPECT_EQ(children[1], b);
  a->set_state(TxnState::kCommitted);
  auto incomplete = root->IncompleteChildren();
  ASSERT_EQ(incomplete.size(), 1u);
  EXPECT_EQ(incomplete[0], b);
}

TEST(SubTxn, LabelsAndPaths) {
  TxnTree tree(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* ship = tree.NewNode(tree.root(), 10, 1, "ShipOrder", {Value(1)});
  EXPECT_EQ(ship->Label(), "ShipOrder(@10, 1)");
  EXPECT_EQ(ship->PathString(), "T1 > ShipOrder(@10, 1)");
}

TEST(SubTxn, NodeIdsAreUniqueAcrossThreads) {
  std::vector<std::thread> threads;
  std::vector<std::vector<TxnId>> ids(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &ids]() {
      for (int i = 0; i < 1000; ++i) ids[t].push_back(TxnTree::NextId());
    });
  }
  for (auto& th : threads) th.join();
  std::set<TxnId> all;
  for (const auto& v : ids) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 8000u);
}

TEST(SubTxn, NodesListedInCreationOrder) {
  TxnTree tree(TxnTree::NextId(), "T", kDatabaseOid, 0);
  SubTxn* a = tree.NewNode(tree.root(), 1, 1, "A", {});
  SubTxn* b = tree.NewNode(a, 2, 1, "B", {});
  auto nodes = tree.Nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], tree.root());
  EXPECT_EQ(nodes[1], a);
  EXPECT_EQ(nodes[2], b);
}

}  // namespace
}  // namespace semcc
