// Unit tests for the object model: values, schema, and the object store.
#include <gtest/gtest.h>

#include "object/object_store.h"
#include "object/schema.h"
#include "object/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace semcc {
namespace {

// --- Value ----------------------------------------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(int64_t{-7}).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value::Ref(42).AsRef(), 42u);
}

TEST(Value, SerializeRoundTripAllTypes) {
  const Value values[] = {Value(),          Value(true),
                          Value(false),     Value(int64_t{1234567890123}),
                          Value(-3.75),     Value(std::string("hello world")),
                          Value(""),        Value::Ref(9999)};
  for (const Value& v : values) {
    auto back = Value::Deserialize(v.Serialize());
    ASSERT_TRUE(back.ok()) << v.ToString();
    EXPECT_EQ(back.ValueOrDie(), v) << v.ToString();
  }
}

TEST(Value, DeserializeRejectsGarbage) {
  EXPECT_TRUE(Value::Deserialize("").status().IsCorruption());
  EXPECT_TRUE(Value::Deserialize("\x02\x01").status().IsCorruption());
  EXPECT_TRUE(Value::Deserialize("\x63").status().IsCorruption());
}

TEST(Value, EqualityDistinguishesTypes) {
  EXPECT_NE(Value(int64_t{1}), Value(true));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
}

TEST(Value, TotalOrderForKeys) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{1}));
}

TEST(Value, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value::Ref(3).ToString(), "@3");
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(ArgsToString({Value(1), Value("a")}), "(1, \"a\")");
}

// --- Schema -----------------------------------------------------------------

TEST(Schema, DatabaseTypePreRegistered) {
  Schema s;
  auto db = s.Get(Schema::kDatabaseTypeId).ValueOrDie();
  EXPECT_EQ(db.name, "Database");
}

TEST(Schema, DefineAndLookupTypes) {
  Schema s;
  TypeId num = s.DefineAtomicType("Num").ValueOrDie();
  TypeId tup =
      s.DefineTupleType("Pair", {{"a", num}, {"b", num}}, true).ValueOrDie();
  TypeId set = s.DefineSetType("Pairs", tup, "a").ValueOrDie();
  EXPECT_EQ(s.Get(tup).ValueOrDie().components.size(), 2u);
  EXPECT_TRUE(s.Get(tup).ValueOrDie().encapsulated);
  EXPECT_EQ(s.Get(set).ValueOrDie().member_type, tup);
  EXPECT_EQ(s.GetByName("Num").ValueOrDie().id, num);
  EXPECT_EQ(s.TypeName(tup), "Pair");
}

TEST(Schema, RejectsDuplicates) {
  Schema s;
  ASSERT_TRUE(s.DefineAtomicType("X").ok());
  EXPECT_TRUE(s.DefineAtomicType("X").status().IsAlreadyExists());
}

TEST(Schema, RejectsDuplicateComponents) {
  Schema s;
  TypeId num = s.DefineAtomicType("Num").ValueOrDie();
  EXPECT_TRUE(s.DefineTupleType("Bad", {{"a", num}, {"a", num}}, false)
                  .status()
                  .IsInvalidArgument());
}

TEST(Schema, UnknownLookupsFail) {
  Schema s;
  EXPECT_TRUE(s.Get(999).status().IsNotFound());
  EXPECT_TRUE(s.GetByName("nope").status().IsNotFound());
}

// --- ObjectStore ---------------------------------------------------------------

struct ObjectStoreTest : public ::testing::Test {
  ObjectStoreTest() : pool(256, &disk), rm(&pool), store(&schema, &rm) {
    num = schema.DefineAtomicType("Num").ValueOrDie();
    pair = schema.DefineTupleType("Pair", {{"x", num}, {"y", num}}, false)
               .ValueOrDie();
    bag = schema.DefineSetType("Bag", pair, "x").ValueOrDie();
  }
  DiskManager disk;
  BufferPool pool;
  RecordManager rm;
  Schema schema;
  ObjectStore store;
  TypeId num, pair, bag;
};

TEST_F(ObjectStoreTest, AtomicGetPut) {
  Oid a = store.CreateAtomic(num, Value(int64_t{10})).ValueOrDie();
  EXPECT_EQ(store.Get(a).ValueOrDie().AsInt(), 10);
  ASSERT_TRUE(store.Put(a, Value(int64_t{20})).ok());
  EXPECT_EQ(store.Get(a).ValueOrDie().AsInt(), 20);
  ASSERT_TRUE(store.Put(a, Value("now a string")).ok());
  EXPECT_EQ(store.Get(a).ValueOrDie().AsString(), "now a string");
}

TEST_F(ObjectStoreTest, TupleComponents) {
  Oid x = store.CreateAtomic(num, Value(1)).ValueOrDie();
  Oid y = store.CreateAtomic(num, Value(2)).ValueOrDie();
  Oid t = store.CreateTuple(pair, {{"x", x}, {"y", y}}).ValueOrDie();
  EXPECT_EQ(store.Component(t, "x").ValueOrDie(), x);
  EXPECT_EQ(store.Component(t, "y").ValueOrDie(), y);
  EXPECT_TRUE(store.Component(t, "z").status().IsNotFound());
  EXPECT_EQ(store.Components(t).ValueOrDie().size(), 2u);
}

TEST_F(ObjectStoreTest, TupleValidation) {
  Oid x = store.CreateAtomic(num, Value(1)).ValueOrDie();
  EXPECT_TRUE(store.CreateTuple(pair, {{"x", x}}).status().IsInvalidArgument());
  EXPECT_TRUE(store.CreateTuple(num, {}).status().IsInvalidArgument());
  EXPECT_TRUE(store.CreateTuple(pair, {{"x", x}, {"wrong", x}})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ObjectStoreTest, SetInsertSelectRemoveScan) {
  Oid s = store.CreateSet(bag).ValueOrDie();
  Oid x = store.CreateAtomic(num, Value(1)).ValueOrDie();
  Oid y = store.CreateAtomic(num, Value(2)).ValueOrDie();
  Oid t1 = store.CreateTuple(pair, {{"x", x}, {"y", y}}).ValueOrDie();
  ASSERT_TRUE(store.SetInsert(s, Value(1), t1).ok());
  EXPECT_TRUE(store.SetInsert(s, Value(1), t1).IsAlreadyExists());
  EXPECT_EQ(store.SetSelect(s, Value(1)).ValueOrDie(), t1);
  EXPECT_TRUE(store.SetSelect(s, Value(2)).status().IsNotFound());
  EXPECT_EQ(store.SetSize(s).ValueOrDie(), 1u);
  auto scan = store.SetScan(s).ValueOrDie();
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_EQ(scan[0].first, Value(1));
  ASSERT_TRUE(store.SetRemove(s, Value(1)).ok());
  EXPECT_TRUE(store.SetRemove(s, Value(1)).IsNotFound());
  EXPECT_EQ(store.SetSize(s).ValueOrDie(), 0u);
}

TEST_F(ObjectStoreTest, KindMismatchErrors) {
  Oid a = store.CreateAtomic(num, Value(1)).ValueOrDie();
  EXPECT_TRUE(store.SetInsert(a, Value(1), a).IsInvalidArgument());
  EXPECT_TRUE(store.Component(a, "x").status().IsInvalidArgument());
  Oid s = store.CreateSet(bag).ValueOrDie();
  EXPECT_TRUE(store.Get(s).status().IsInvalidArgument());
}

TEST_F(ObjectStoreTest, RidAndPageReflection) {
  Oid a = store.CreateAtomic(num, Value(1)).ValueOrDie();
  Oid b = store.CreateAtomic(num, Value(2)).ValueOrDie();
  Rid ra = store.RidOf(a).ValueOrDie();
  Rid rb = store.RidOf(b).ValueOrDie();
  EXPECT_NE(ra, rb);
  EXPECT_EQ(store.PageOf(a).ValueOrDie(), ra.page_id);
  // Clustered allocation: adjacent atoms share a page.
  EXPECT_EQ(ra.page_id, rb.page_id);
  // The database root has no storage record.
  EXPECT_TRUE(store.RidOf(kDatabaseOid).status().IsNotFound());
}

TEST_F(ObjectStoreTest, DestroyMakesObjectUnreachable) {
  Oid a = store.CreateAtomic(num, Value(1)).ValueOrDie();
  ASSERT_TRUE(store.Destroy(a).ok());
  EXPECT_TRUE(store.Get(a).status().IsNotFound());
  EXPECT_TRUE(store.KindOf(a).status().IsNotFound());
}

TEST_F(ObjectStoreTest, UnknownOidFails) {
  EXPECT_TRUE(store.Get(424242).status().IsNotFound());
}

TEST_F(ObjectStoreTest, ValuesSurviveBufferPoolPressure) {
  // More atoms than the pool (tiny pool forces eviction + reload).
  DiskManager small_disk;
  BufferPool small_pool(2, &small_disk);
  RecordManager small_rm(&small_pool);
  ObjectStore s2(&schema, &small_rm);
  std::vector<Oid> oids;
  for (int i = 0; i < 2000; ++i) {
    oids.push_back(
        s2.CreateAtomic(num, Value(static_cast<int64_t>(i))).ValueOrDie());
  }
  for (int i = 0; i < 2000; i += 123) {
    EXPECT_EQ(s2.Get(oids[i]).ValueOrDie().AsInt(), i);
  }
}

}  // namespace
}  // namespace semcc
