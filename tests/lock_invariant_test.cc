// Tests for the debug lock-invariant checker (cc/lock_invariants.h):
// the lock-order graph in isolation, the checker's clean bill of health on
// protocol-conformant runs (retained locks, Case-1 grants, a full workload),
// and the detection of a forced lock-order inversion.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>

#include "app/orderentry/workload.h"
#include "cc/compatibility.h"
#include "cc/lock_invariants.h"
#include "cc/lock_manager.h"
#include "cc/subtxn.h"
#include "core/database.h"

namespace semcc {
namespace {

// --- LockOrderGraph unit tests -------------------------------------------

TEST(LockOrderGraph, ChainsStayAcyclic) {
  LockOrderGraph g;
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.AddEdge(2, 3));
  EXPECT_TRUE(g.AddEdge(1, 3));  // shortcut along existing order: fine
  EXPECT_TRUE(g.AddEdge(3, 4));
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.Reachable(1, 4));
  EXPECT_FALSE(g.Reachable(4, 1));
}

TEST(LockOrderGraph, ClosingEdgeIsAnInversion) {
  LockOrderGraph g;
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.AddEdge(2, 3));
  EXPECT_FALSE(g.AddEdge(3, 1));  // closes 1 -> 2 -> 3 -> 1
  // The edge is recorded anyway, so the same inversion reports only once.
  EXPECT_TRUE(g.AddEdge(3, 1));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(LockOrderGraph, SelfEdgeAndClearAreNoops) {
  LockOrderGraph g;
  EXPECT_TRUE(g.AddEdge(7, 7));  // re-acquisition, never an edge
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.AddEdge(1, 2));
  g.Clear();
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.AddEdge(2, 1));  // no longer an inversion after Clear
}

// --- checker over hand-built transaction trees ---------------------------

constexpr TypeId kItemT = 1;
constexpr TypeId kAtomT = 2;
constexpr Oid kObjA = 100;
constexpr Oid kObjB = 200;

// Parameterized over (shard count, §5.4 fast-path flag mask): the whole
// suite must hold for the default sharded table AND for
// lock_table_shards = 1 (the single-shard configuration equivalent to the
// pre-sharding lock manager), and identically with the acquisition
// fast-path mechanisms off, coalescing alone, or everything on — the
// mechanisms are verdict-preserving, so the checker's view cannot change.
// Flag mask bits: 1 = lock_fast_path, 2 = coalesce_entries,
// 4 = memoize_conflicts, 8 = pool_entries.
struct LockInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
  LockInvariantTest() {
    compat.Define(kItemT, "Ma", "Mb", true);
    compat.Define(kItemT, "Ma", "Ma", false);
    compat.Define(kItemT, "Mb", "Mb", true);
  }

  std::unique_ptr<LockManager> Make() {
    ProtocolOptions o;
    o.debug_lock_checks = true;  // force on even in release builds
    o.wait_timeout = std::chrono::milliseconds(2000);
    o.lock_table_shards = std::get<0>(GetParam());
    const int mask = std::get<1>(GetParam());
    o.lock_fast_path = (mask & 1) != 0;
    o.coalesce_entries = (mask & 2) != 0;
    o.memoize_conflicts = (mask & 4) != 0;
    o.pool_entries = (mask & 8) != 0;
    return std::make_unique<LockManager>(o, &compat);
  }

  void Complete(LockManager* lm, SubTxn* t) {
    t->set_state(TxnState::kCommitted);
    lm->OnSubTxnCompleted(t);
  }

  CompatibilityRegistry compat;
};

TEST_P(LockInvariantTest, RetainedLocksPassTheChecker) {
  auto lm = Make();
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* ma = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* put = t1.NewNode(ma, kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  ASSERT_TRUE(lm->Acquire(ma, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(put, LockTarget::ForObject(kObjB), true).ok());
  Complete(lm.get(), put);
  Complete(lm.get(), ma);
  // Both locks are now retained (owners completed, entries granted): the
  // §4.1 invariant the checker must accept.
  for (const auto& info : lm->LocksOn(LockTarget::ForObject(kObjB))) {
    EXPECT_TRUE(info.granted);
    EXPECT_TRUE(info.retained);
  }
  EXPECT_GT(lm->invariant_stats().checks.load(), 0u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(t1.root());
  EXPECT_EQ(lm->invariant_stats().leaked_locks.load(), 0u);
}

TEST_P(LockInvariantTest, Case1GrantPathPassesTheChecker) {
  auto lm = Make();
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  SubTxn* ma = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* put = t1.NewNode(ma, kObjB, kAtomT, generic_ops::kPut, {Value(1)});
  ASSERT_TRUE(lm->Acquire(ma, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(put, LockTarget::ForObject(kObjB), true).ok());
  Complete(lm.get(), put);
  Complete(lm.get(), ma);  // committed commuting ancestor -> Case 1

  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* mb = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  SubTxn* get = t2.NewNode(mb, kObjB, kAtomT, generic_ops::kGet, {});
  ASSERT_TRUE(lm->Acquire(mb, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(get, LockTarget::ForObject(kObjB), false).ok());
  EXPECT_GE(lm->stats().case1_grants, 1u);
  // The grant re-check must accept the Case-1 verdict, not flag it.
  EXPECT_EQ(lm->invariant_stats().grant_violations.load(), 0u);
  EXPECT_EQ(lm->CheckInvariantsNow(), 0u);
  lm->ReleaseTree(t2.root());
  lm->ReleaseTree(t1.root());
  EXPECT_EQ(lm->invariant_stats().protocol_violations(), 0u);
}

TEST_P(LockInvariantTest, ForcedLockOrderInversionIsCounted) {
  auto lm = Make();
  // T1 locks A then B; T2 locks B then A. All four methods commute, so both
  // transactions get their grants without blocking — a silent inversion of
  // acquisition order that only the order graph notices.
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a1 = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b1 = t1.NewNode(t1.root(), kObjB, kItemT, "Mb", {});
  SubTxn* b2 = t2.NewNode(t2.root(), kObjB, kItemT, "Mb", {});
  SubTxn* a2 = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  ASSERT_TRUE(lm->Acquire(a1, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(b1, LockTarget::ForObject(kObjB), true).ok());
  ASSERT_TRUE(lm->Acquire(b2, LockTarget::ForObject(kObjB), true).ok());
  ASSERT_TRUE(lm->Acquire(a2, LockTarget::ForObject(kObjA), true).ok());
  EXPECT_GE(lm->invariant_stats().order_inversions.load(), 1u);
  // An inversion is a diagnostic, not a protocol violation.
  EXPECT_EQ(lm->invariant_stats().protocol_violations(), 0u);
  lm->ReleaseTree(t1.root());
  lm->ReleaseTree(t2.root());
}

TEST_P(LockInvariantTest, ConsistentOrderProducesNoInversions) {
  auto lm = Make();
  TxnTree t1(TxnTree::NextId(), "T1", kDatabaseOid, 0);
  TxnTree t2(TxnTree::NextId(), "T2", kDatabaseOid, 0);
  SubTxn* a1 = t1.NewNode(t1.root(), kObjA, kItemT, "Ma", {});
  SubTxn* b1 = t1.NewNode(t1.root(), kObjB, kItemT, "Mb", {});
  SubTxn* a2 = t2.NewNode(t2.root(), kObjA, kItemT, "Mb", {});
  SubTxn* b2 = t2.NewNode(t2.root(), kObjB, kItemT, "Mb", {});
  ASSERT_TRUE(lm->Acquire(a1, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(b1, LockTarget::ForObject(kObjB), true).ok());
  ASSERT_TRUE(lm->Acquire(a2, LockTarget::ForObject(kObjA), true).ok());
  ASSERT_TRUE(lm->Acquire(b2, LockTarget::ForObject(kObjB), true).ok());
  EXPECT_EQ(lm->invariant_stats().order_inversions.load(), 0u);
  lm->ReleaseTree(t1.root());
  lm->ReleaseTree(t2.root());
}

INSTANTIATE_TEST_SUITE_P(
    ShardAndFastPathConfigs, LockInvariantTest,
    ::testing::Combine(::testing::Values(1, 16),
                       ::testing::Values(0, 2, 15)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "shards" + std::to_string(std::get<0>(info.param)) + "_flags" +
             std::to_string(std::get<1>(info.param));
    });

// --- checker over a real concurrent workload -----------------------------

TEST(LockInvariantWorkload, MixedWorkloadRunsViolationFree) {
  DatabaseOptions dopts;
  dopts.protocol.debug_lock_checks = true;
  Database db(dopts);
  auto types = orderentry::Install(&db).ValueOrDie();
  orderentry::WorkloadOptions wopts;
  wopts.load.num_items = 4;
  wopts.load.orders_per_item = 4;
  wopts.seed = 42;
  orderentry::OrderEntryWorkload workload(&db, types, wopts);
  ASSERT_TRUE(workload.Setup().ok());
  auto result = workload.Run(4, 60);
  EXPECT_GT(result.committed, 0u);
  const LockInvariantStats& inv = db.locks()->invariant_stats();
  EXPECT_GT(inv.checks.load(), 0u) << "checker never ran";
  EXPECT_EQ(inv.protocol_violations(), 0u) << inv.ToString();
  EXPECT_EQ(db.locks()->CheckInvariantsNow(), 0u);
}

}  // namespace
}  // namespace semcc
