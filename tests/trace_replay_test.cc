// Tests for the binary trace capture format (util/trace.h, WriteBinary /
// ReadBinary / SEMCC_TRACE_CAPTURE) and the replay engine
// (src/replay/replayer.h):
//  * field-exact roundtrip of the capture encoding (including the replay-
//    fidelity fields type_id/argc/arg0/arg1 added for DESIGN.md §5.9);
//  * corruption rejection (bad magic, wrong version, truncation);
//  * replay determinism — the same capture, replayed in verify mode,
//    produces identical verdict counts every time (the property the CI
//    replay-smoke leg asserts);
//  * the committed golden capture (tests/golden/sample_lock.trace) stays
//    loadable and deterministically replayable.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "app/orderentry/order_entry.h"
#include "core/database.h"
#include "replay/replayer.h"
#include "util/trace.h"

namespace semcc {
namespace {

std::string TempPath(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  return std::string(base != nullptr ? base : "/tmp") + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

struct TraceReplayTest : public ::testing::Test {
  void SetUp() override {
    trace::Enable(false);
    trace::ResetForTesting();
    trace::SetRingCapacityForTesting(1 << 15);
  }
  void TearDown() override {
    trace::Enable(false);
    trace::ResetForTesting();
  }
};

TEST_F(TraceReplayTest, BinaryRoundtripPreservesEveryField) {
  trace::Enable(true);

  trace::Event a;
  a.txn = 42;
  a.root = 7;
  a.other = 99;
  a.value = 123456;
  a.target = 0xdeadbeefULL;
  a.key_lo = -5;
  a.key_hi = 1'000'000;
  a.arg0 = -77;
  a.arg1 = 1234567890123LL;
  a.shard = 31;
  a.depth = 3;
  a.type_id = 17;
  a.argc = 2;
  a.target_space = 1;
  a.kind = static_cast<uint8_t>(trace::EventKind::kBlock);
  a.verdict = 2;
  a.flags = trace::kFlagKeyRange | trace::kFlagIsWrite;
  a.set_method("Item::ShipOrder-with-a-deliberately-long-name");
  trace::Emit(a);

  trace::Event b;
  b.txn = 1;
  b.kind = static_cast<uint8_t>(trace::EventKind::kModeFlip);
  b.other = 5;       // type slot
  b.value = 2;       // new mode (prudent)
  b.verdict = 0;     // old mode (semantic)
  b.set_method("prudent");
  trace::Emit(b);

  const std::vector<trace::Event> written = trace::SnapshotEvents();
  ASSERT_EQ(written.size(), 2u);

  const std::string path = TempPath("semcc_roundtrip.trace");
  ASSERT_TRUE(trace::WriteBinary(path).ok());
  std::vector<trace::Event> read;
  ASSERT_TRUE(trace::ReadBinary(path, &read).ok());
  ASSERT_EQ(read.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    const trace::Event& w = written[i];
    const trace::Event& r = read[i];
    EXPECT_EQ(w.seq, r.seq) << i;
    EXPECT_EQ(w.micros, r.micros) << i;
    EXPECT_EQ(w.txn, r.txn) << i;
    EXPECT_EQ(w.root, r.root) << i;
    EXPECT_EQ(w.other, r.other) << i;
    EXPECT_EQ(w.value, r.value) << i;
    EXPECT_EQ(w.target, r.target) << i;
    EXPECT_EQ(w.key_lo, r.key_lo) << i;
    EXPECT_EQ(w.key_hi, r.key_hi) << i;
    EXPECT_EQ(w.arg0, r.arg0) << i;
    EXPECT_EQ(w.arg1, r.arg1) << i;
    EXPECT_EQ(w.shard, r.shard) << i;
    EXPECT_EQ(w.depth, r.depth) << i;
    EXPECT_EQ(w.type_id, r.type_id) << i;
    EXPECT_EQ(w.argc, r.argc) << i;
    EXPECT_EQ(w.target_space, r.target_space) << i;
    EXPECT_EQ(w.kind, r.kind) << i;
    EXPECT_EQ(w.verdict, r.verdict) << i;
    EXPECT_EQ(w.flags, r.flags) << i;
    EXPECT_STREQ(w.method, r.method) << i;
  }
  std::remove(path.c_str());
}

TEST_F(TraceReplayTest, ReadBinaryRejectsCorruptCaptures) {
  std::vector<trace::Event> out;

  // Missing file.
  EXPECT_FALSE(trace::ReadBinary(TempPath("semcc_no_such.trace"), &out).ok());

  // Bad magic.
  const std::string bad = TempPath("semcc_badmagic.trace");
  WriteFileBytes(bad, "NOTATRACEFILE-0123456789");
  EXPECT_FALSE(trace::ReadBinary(bad, &out).ok());
  std::remove(bad.c_str());

  // A valid capture truncated mid-event must be rejected, not half-read.
  trace::Enable(true);
  trace::Event e;
  e.txn = 9;
  e.kind = static_cast<uint8_t>(trace::EventKind::kGrant);
  trace::Emit(e);
  trace::Emit(e);
  const std::string good = TempPath("semcc_good.trace");
  ASSERT_TRUE(trace::WriteBinary(good).ok());
  std::string bytes = ReadFileBytes(good);
  ASSERT_GT(bytes.size(), 30u);
  const std::string trunc = TempPath("semcc_trunc.trace");
  WriteFileBytes(trunc, bytes.substr(0, bytes.size() - 10));
  EXPECT_FALSE(trace::ReadBinary(trunc, &out).ok());

  // Wrong version byte (offset 8, little-endian u32 after the magic).
  bytes[8] = static_cast<char>(bytes[8] + 1);
  const std::string badver = TempPath("semcc_badver.trace");
  WriteFileBytes(badver, bytes);
  EXPECT_FALSE(trace::ReadBinary(badver, &out).ok());

  std::remove(good.c_str());
  std::remove(trunc.c_str());
  std::remove(badver.c_str());
}

// Run a small deterministic order-entry workload with per-database tracing
// on, capture it to the binary format, and check that two verify-mode
// replays of the same capture agree event-for-event on verdict counts.
TEST_F(TraceReplayTest, VerifyModeReplayIsDeterministic) {
  DatabaseOptions dopts;
  dopts.protocol.trace = true;
  Database db(dopts);
  orderentry::InstallOptions iopts;
  iopts.parameter_refined_item_matrix = true;
  auto types = orderentry::Install(&db, iopts);
  ASSERT_TRUE(types.ok());
  orderentry::LoadSpec spec;
  spec.num_items = 4;
  spec.orders_per_item = 6;
  auto data = orderentry::Load(&db, *types, spec);
  ASSERT_TRUE(data.ok());
  const std::vector<Oid>& items = data->item_oids;

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.RunTransaction(
                      "T1", orderentry::T1_ShipTwoOrders(
                                items[i % 4], 1 + i % 6,
                                items[(i + 1) % 4], 1 + (i + 2) % 6))
                    .ok());
    ASSERT_TRUE(db.RunTransaction(
                      "T2", orderentry::T2_PayTwoOrders(
                                items[(i + 2) % 4], 1 + i % 6,
                                items[(i + 3) % 4], 1 + (i + 1) % 6))
                    .ok());
    ASSERT_TRUE(
        db.RunTransaction("T5", orderentry::T5_TotalPayment(items[i % 4], 2))
            .ok());
    ASSERT_TRUE(db.RunTransaction("TN", orderentry::TN_EnterOrder(
                                            items[i % 4], 500 + i, 3))
                    .ok());
  }

  const std::string path = TempPath("semcc_determinism.trace");
  ASSERT_TRUE(trace::WriteBinary(path).ok());
  std::vector<trace::Event> events;
  ASSERT_TRUE(trace::ReadBinary(path, &events).ok());
  ASSERT_FALSE(events.empty());

  replay::ReplayOptions ropts;
  ropts.mode = replay::ReplayMode::kVerify;
  const replay::ReplayResult r1 = replay::Replay(events, db.compat(), ropts);
  const replay::ReplayResult r2 = replay::Replay(events, db.compat(), ropts);

  EXPECT_EQ(r1.roots, 32u);
  EXPECT_GT(r1.actions, 0u);
  EXPECT_GT(r1.granted, 0u);
  // The determinism fingerprint the CI replay-smoke leg compares.
  EXPECT_EQ(r1.VerdictJson(), r2.VerdictJson());
  EXPECT_EQ(r1.roots, r2.roots);
  EXPECT_EQ(r1.actions, r2.actions);
  // Single-threaded capture of a conflict-free schedule: every replayed
  // acquisition must be granted again.
  EXPECT_EQ(r1.denied, 0u);
  std::remove(path.c_str());
}

// The committed sample capture (EXPERIMENTS.md "reproduce" instructions)
// must keep loading and replaying deterministically as the code evolves —
// this is the compatibility guarantee for the on-disk format.
TEST_F(TraceReplayTest, GoldenSampleTraceReplays) {
  const std::string path =
      std::string(SEMCC_SOURCE_DIR) + "/tests/golden/sample_lock.trace";
  std::vector<trace::Event> events;
  Status st = trace::ReadBinary(path, &events);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_FALSE(events.empty());

  Database db;
  orderentry::InstallOptions iopts;
  iopts.parameter_refined_item_matrix = true;
  ASSERT_TRUE(orderentry::Install(&db, iopts).ok());

  replay::ReplayOptions ropts;
  ropts.mode = replay::ReplayMode::kVerify;
  const replay::ReplayResult r1 = replay::Replay(events, db.compat(), ropts);
  const replay::ReplayResult r2 = replay::Replay(events, db.compat(), ropts);
  EXPECT_GT(r1.roots, 0u);
  EXPECT_GT(r1.actions, 0u);
  EXPECT_GT(r1.granted, 0u);
  EXPECT_EQ(r1.VerdictJson(), r2.VerdictJson());
}

}  // namespace
}  // namespace semcc
