// MVCC snapshot-read tests (object/versioned_store.h, DESIGN.md §5.7):
// visibility (no uncommitted or later versions, stable repeatable reads),
// watermark GC safety and the chain-length bound under stress, write-path
// equivalence across flag combinations, and the end-to-end snapshot-read
// serializability check.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "app/orderentry/order_entry.h"
#include "app/orderentry/workload.h"
#include "core/database.h"
#include "core/serializability.h"
#include "query/object_assembly.h"
#include "util/sync.h"

namespace semcc {
namespace {

using namespace orderentry;

DatabaseOptions MvccOptions() {
  DatabaseOptions o;
  o.protocol.mvcc_reads = true;
  return o;
}

struct MvccTest : public ::testing::Test {
  MvccTest() : db(MvccOptions()) {}
  void SetUp() override {
    types = Install(&db).ValueOrDie();
    LoadSpec spec;
    spec.num_items = 4;
    spec.orders_per_item = 3;
    spec.initial_qoh = 1000;
    data = Load(&db, types, spec).ValueOrDie();
  }
  Oid StatusAtom(Oid item, int64_t order_no) {
    Oid order = FindOrder(&db, item, order_no).ValueOrDie();
    return db.store()->Component(order, "Status").ValueOrDie();
  }
  Database db;
  OrderEntryTypes types;
  LoadedData data;
};

TEST_F(MvccTest, SnapshotRejectsWrites) {
  Oid item = data.item_oids[0];
  Oid qoh = db.store()->Component(item, "QuantityOnHand").ValueOrDie();
  auto r1 = db.RunReadTransaction("w", [&](TxnCtx& ctx) -> Result<Value> {
    return ctx.Invoke(item, "ShipOrder", {Value(1)});
  });
  EXPECT_TRUE(r1.status().IsPreconditionFailed()) << r1.status().ToString();
  auto r2 = db.RunReadTransaction("w", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_RETURN_NOT_OK(ctx.Put(qoh, Value(int64_t{0})));
    return Value();
  });
  EXPECT_TRUE(r2.status().IsPreconditionFailed()) << r2.status().ToString();
}

TEST_F(MvccTest, SnapshotReadTakesNoLocks) {
  Oid item = data.item_oids[0];
  const uint64_t acquires_before = db.locks()->stats().acquires;
  auto r = db.RunReadTransaction("T5", T5_TotalPayment(item));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(db.locks()->stats().acquires, acquires_before);
  EXPECT_EQ(db.locks()->stats().root_waits, 0u);
  const VersionStats vs = db.versions()->stats();
  EXPECT_EQ(vs.snapshots, 1u);
  EXPECT_GT(vs.snapshot_reads + vs.live_reads, 0u);
  // The recorded tree is marked as a snapshot execution.
  auto history = db.history()->Snapshot();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_TRUE(history[0].snapshot);
}

TEST_F(MvccTest, NeverSeesUncommittedWrite) {
  Oid item = data.item_oids[0];
  Oid status = StatusAtom(item, 1);
  ASSERT_EQ(ReadStatusRaw(&db, FindOrder(&db, item, 1).ValueOrDie())
                .ValueOrDie() & kEventShippedBit, 0);
  Semaphore wrote, may_commit;
  std::thread writer([&] {
    auto r = db.RunTransactionOnce("T", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Invoke(item, "ShipOrder", {Value(1)}));
      (void)v;
      wrote.Post();       // live bytes now carry the uncommitted shipped bit
      may_commit.Wait();  // hold the transaction open
      return Value();
    });
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  });
  wrote.Wait();
  // Snapshot while the writer is mid-flight: must see the pre-txn status.
  auto mid = db.RunReadTransaction("r", [&](TxnCtx& ctx) -> Result<Value> {
    return ctx.Get(status);
  });
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  EXPECT_EQ(mid.ValueOrDie().AsInt() & kEventShippedBit, 0)
      << "snapshot observed an uncommitted write";
  may_commit.Post();
  writer.join();
  // After commit a fresh snapshot sees the bit.
  auto after = db.RunReadTransaction("r", [&](TxnCtx& ctx) -> Result<Value> {
    return ctx.Get(status);
  });
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.ValueOrDie().AsInt() & kEventShippedBit, kEventShippedBit);
}

TEST_F(MvccTest, SnapshotIsStableAcrossLaterCommits) {
  Oid item = data.item_oids[0];
  Oid status = StatusAtom(item, 1);
  Semaphore first_read_done, writer_committed;
  std::thread writer([&] {
    first_read_done.Wait();
    auto r = db.RunTransaction("T", [&](TxnCtx& ctx) -> Result<Value> {
      return ctx.Invoke(item, "ShipOrder", {Value(1)});
    });
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    writer_committed.Post();
  });
  auto r = db.RunReadTransaction("r", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value v1, ctx.Get(status));
    first_read_done.Post();
    writer_committed.Wait();
    // Repeatable read: the commit landed after our snapshot timestamp.
    SEMCC_ASSIGN_OR_RETURN(Value v2, ctx.Get(status));
    EXPECT_EQ(v1.AsInt(), v2.AsInt()) << "snapshot saw a later version";
    return v2;
  });
  writer.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie().AsInt() & kEventShippedBit, 0);
}

TEST_F(MvccTest, GcNeverReclaimsVisibleVersions) {
  Oid item = data.item_oids[0];
  Oid status = StatusAtom(item, 1);
  VersionedObjectStore* vs = db.versions();
  // First commit: ship order 1 -> installs a version of the status atom.
  ASSERT_TRUE(db.RunTransaction("T", [&](TxnCtx& ctx) -> Result<Value> {
                  return ctx.Invoke(item, "ShipOrder", {Value(1)});
                }).ok());
  const uint64_t s1 = vs->BeginSnapshot();
  uint64_t observed = 0;
  auto v1 = vs->ReadAtomic(status, s1, &observed);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  const int64_t value_at_s1 = (*v1).AsInt();
  // Later commits on the same atom while s1 stays open.
  ASSERT_TRUE(db.RunTransaction("T", [&](TxnCtx& ctx) -> Result<Value> {
                  return ctx.Invoke(item, "PayOrder", {Value(1)});
                }).ok());
  ASSERT_TRUE(db.RunTransaction("T", [&](TxnCtx& ctx) -> Result<Value> {
                  return ctx.Invoke(item, "ShipOrder", {Value(2)});
                }).ok());
  // A sweep with s1 open must not free the version s1 reads.
  vs->SweepVersions();
  ASSERT_TRUE(vs->CheckInvariants().ok());
  auto again = vs->ReadAtomic(status, s1, &observed);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again).AsInt(), value_at_s1);
  // Once s1 ends the watermark advances and the sweep reclaims the tail.
  const uint64_t reclaimed_before = vs->stats().versions_reclaimed;
  vs->EndSnapshot(s1);
  vs->SweepVersions();
  EXPECT_GT(vs->stats().versions_reclaimed, reclaimed_before);
  Status inv = vs->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
}

TEST_F(MvccTest, ObjectAssemblyRunsOnSnapshot) {
  Oid item = data.item_oids[0];
  auto r = db.RunReadTransaction("q", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(auto assembled, query::Assemble(ctx, item, 8));
    EXPECT_GT(assembled->NodeCount(), 6u);
    SEMCC_ASSIGN_OR_RETURN(query::PathExpr path,
                           query::PathExpr::Parse("Orders[1].Status"));
    SEMCC_ASSIGN_OR_RETURN(std::vector<Value> vals,
                           path.ReadValues(ctx, item));
    EXPECT_EQ(vals.size(), 1u);
    return Value();
  });
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(db.locks()->stats().acquires, 0u);
}

// Two atoms updated together in one transaction must never be observed
// unequal by a snapshot — the all-or-nothing property of commit groups.
TEST(MvccStress, TornSnapshotInvariantAndChainBound) {
  Database db(MvccOptions());
  auto number = db.schema()->DefineAtomicType("N").ValueOrDie();
  Oid x = db.store()->CreateAtomic(number, Value(int64_t{0})).ValueOrDie();
  Oid y = db.store()->CreateAtomic(number, Value(int64_t{0})).ValueOrDie();
  db.history()->SetEnabled(false);  // long run: do not accumulate trees
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kWritesEach = 120;
  constexpr int kReadsEach = 240;
  std::atomic<uint64_t> torn{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kWritesEach; ++i) {
        const int64_t v = w * kWritesEach + i + 1;
        auto r = db.RunTransaction("W", [&](TxnCtx& ctx) -> Result<Value> {
          SEMCC_RETURN_NOT_OK(ctx.Put(x, Value(v)));
          SEMCC_RETURN_NOT_OK(ctx.Put(y, Value(v)));
          return Value();
        });
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (int rd = 0; rd < kReaders; ++rd) {
    threads.emplace_back([&] {
      for (int i = 0; i < kReadsEach; ++i) {
        auto r = db.RunReadTransaction("R", [&](TxnCtx& ctx) -> Result<Value> {
          SEMCC_ASSIGN_OR_RETURN(Value vx, ctx.Get(x));
          SEMCC_ASSIGN_OR_RETURN(Value vy, ctx.Get(y));
          if (vx.AsInt() != vy.AsInt()) torn.fetch_add(1);
          return vx;
        });
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0u) << "snapshot observed a torn transaction";
  // Quiesce: every snapshot ended, every writer finished. The sweep must
  // reduce every chain to its boundary and the invariants (strictly
  // descending ts, <= 1 version at or below the watermark) must hold —
  // the hard bound on chain growth.
  VersionedObjectStore* vs = db.versions();
  vs->SweepVersions();
  Status inv = vs->CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.ToString();
  const VersionStats stats = vs->stats();
  EXPECT_GT(stats.versions_installed, 0u);
  EXPECT_GT(stats.versions_reclaimed, 0u);
  // All but the boundary version of the two chains is reclaimable.
  EXPECT_GE(stats.versions_reclaimed + 2, stats.versions_installed);
}

// The same single-threaded workload must leave identical database state
// under every flag combination: mvcc_reads only changes how read-only
// transactions read, never what the write path does.
TEST(MvccAblation, WritePathIsFlagInvariant) {
  struct Combo {
    bool mvcc;
    bool debug_checks;
  };
  const Combo combos[] = {
      {false, false}, {true, false}, {false, true}, {true, true}};
  std::vector<int64_t> totals;
  std::vector<uint64_t> commits;
  for (const Combo& combo : combos) {
    DatabaseOptions o;
    o.protocol.mvcc_reads = combo.mvcc;
    o.protocol.debug_lock_checks = combo.debug_checks;
    Database db(o);
    auto types = Install(&db).ValueOrDie();
    WorkloadOptions wopts;
    wopts.load.num_items = 4;
    wopts.load.orders_per_item = 4;
    wopts.load.pre_paid = 0.25;
    wopts.load.pre_shipped = 0.25;
    wopts.seed = 99;
    wopts.snapshot_readers = true;  // readers go through RunReadTransaction
    wopts.t5_double_scan = true;
    OrderEntryWorkload workload(&db, types, wopts);
    ASSERT_TRUE(workload.Setup().ok());
    auto state = workload.MakeWorkerState(0);
    for (int i = 0; i < 150; ++i) (void)workload.RunOne(state.get());
    // Single-threaded and same seed: every combo runs the identical op
    // sequence, so commit counts and final state must match exactly.
    commits.push_back(state->committed);
    totals.push_back(workload.TotalPaymentAllItems().ValueOrDie());
    if (combo.mvcc) {
      EXPECT_GT(db.versions()->stats().snapshots, 0u);
    }
  }
  for (size_t i = 1; i < totals.size(); ++i) {
    EXPECT_EQ(totals[i], totals[0]) << "flag combo " << i;
    EXPECT_EQ(commits[i], commits[0]) << "flag combo " << i;
  }
}

// End-to-end: concurrent writers + snapshot readers, then validate every
// snapshot read against the version install log — each snapshot must have
// read exactly the committed prefix at its timestamp.
TEST(MvccStress, SnapshotReadsValidateAgainstInstallLog) {
  Database db(MvccOptions());
  auto types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 4;
  Database* dbp = &db;
  LoadedData data = Load(&db, types, spec).ValueOrDie();
  db.versions()->SetInstallLogEnabled(true);
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([dbp, &data, w] {
      for (int i = 0; i < 40; ++i) {
        Oid item = data.item_oids[static_cast<size_t>((w + i) % 2)];
        const int64_t order = i % 4 + 1;
        auto r = dbp->RunTransaction(
            "T", [&](TxnCtx& ctx) -> Result<Value> {
              return ctx.Invoke(item, i % 2 == 0 ? "ShipOrder" : "PayOrder",
                                {Value(order)});
            });
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (int rd = 0; rd < 2; ++rd) {
    threads.emplace_back([dbp, &data] {
      for (int i = 0; i < 60; ++i) {
        Oid item = data.item_oids[static_cast<size_t>(i % 2)];
        auto r = dbp->RunReadTransaction("T5", T5_TotalPayment(item));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto result = CheckSnapshotReads(dbp->history()->Snapshot(),
                                   dbp->versions()->InstallLog());
  EXPECT_TRUE(result.serializable) << result.ToString();
  EXPECT_FALSE(result.serial_order.empty());  // snapshots were checked
}

}  // namespace
}  // namespace semcc
