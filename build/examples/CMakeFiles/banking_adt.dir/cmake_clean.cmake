file(REMOVE_RECURSE
  "CMakeFiles/banking_adt.dir/banking_adt.cpp.o"
  "CMakeFiles/banking_adt.dir/banking_adt.cpp.o.d"
  "banking_adt"
  "banking_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
