# Empty dependencies file for banking_adt.
# This may be replaced when dependencies are built.
