file(REMOVE_RECURSE
  "CMakeFiles/object_assembly.dir/object_assembly.cpp.o"
  "CMakeFiles/object_assembly.dir/object_assembly.cpp.o.d"
  "object_assembly"
  "object_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
