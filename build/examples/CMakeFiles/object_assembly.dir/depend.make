# Empty dependencies file for object_assembly.
# This may be replaced when dependencies are built.
