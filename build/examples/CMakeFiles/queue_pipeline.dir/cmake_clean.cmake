file(REMOVE_RECURSE
  "CMakeFiles/queue_pipeline.dir/queue_pipeline.cpp.o"
  "CMakeFiles/queue_pipeline.dir/queue_pipeline.cpp.o.d"
  "queue_pipeline"
  "queue_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
