# Empty compiler generated dependencies file for bypass_coexistence.
# This may be replaced when dependencies are built.
