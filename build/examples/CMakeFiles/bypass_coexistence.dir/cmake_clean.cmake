file(REMOVE_RECURSE
  "CMakeFiles/bypass_coexistence.dir/bypass_coexistence.cpp.o"
  "CMakeFiles/bypass_coexistence.dir/bypass_coexistence.cpp.o.d"
  "bypass_coexistence"
  "bypass_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bypass_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
