# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/object_test[1]_include.cmake")
include("/root/repo/build/tests/compatibility_test[1]_include.cmake")
include("/root/repo/build/tests/subtxn_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/orderentry_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_test[1]_include.cmake")
include("/root/repo/build/tests/coding_test[1]_include.cmake")
include("/root/repo/build/tests/forwarding_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/adt_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_figures_test[1]_include.cmake")
