file(REMOVE_RECURSE
  "CMakeFiles/orderentry_test.dir/orderentry_test.cc.o"
  "CMakeFiles/orderentry_test.dir/orderentry_test.cc.o.d"
  "orderentry_test"
  "orderentry_test.pdb"
  "orderentry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orderentry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
