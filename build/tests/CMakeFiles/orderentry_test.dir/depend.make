# Empty dependencies file for orderentry_test.
# This may be replaced when dependencies are built.
