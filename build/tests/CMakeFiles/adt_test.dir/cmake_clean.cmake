file(REMOVE_RECURSE
  "CMakeFiles/adt_test.dir/adt_test.cc.o"
  "CMakeFiles/adt_test.dir/adt_test.cc.o.d"
  "adt_test"
  "adt_test.pdb"
  "adt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
