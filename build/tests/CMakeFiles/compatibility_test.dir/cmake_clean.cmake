file(REMOVE_RECURSE
  "CMakeFiles/compatibility_test.dir/compatibility_test.cc.o"
  "CMakeFiles/compatibility_test.dir/compatibility_test.cc.o.d"
  "compatibility_test"
  "compatibility_test.pdb"
  "compatibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compatibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
