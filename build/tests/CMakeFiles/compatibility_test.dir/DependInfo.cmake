
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compatibility_test.cc" "tests/CMakeFiles/compatibility_test.dir/compatibility_test.cc.o" "gcc" "tests/CMakeFiles/compatibility_test.dir/compatibility_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/orderentry/CMakeFiles/semcc_orderentry.dir/DependInfo.cmake"
  "/root/repo/build/src/adt/CMakeFiles/semcc_adt.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/semcc_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/semcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/semcc_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/semcc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/semcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/semcc_object.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semcc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
