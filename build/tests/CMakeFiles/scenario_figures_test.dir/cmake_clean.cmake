file(REMOVE_RECURSE
  "CMakeFiles/scenario_figures_test.dir/scenario_figures_test.cc.o"
  "CMakeFiles/scenario_figures_test.dir/scenario_figures_test.cc.o.d"
  "scenario_figures_test"
  "scenario_figures_test.pdb"
  "scenario_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
