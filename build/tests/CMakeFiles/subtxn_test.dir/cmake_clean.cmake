file(REMOVE_RECURSE
  "CMakeFiles/subtxn_test.dir/subtxn_test.cc.o"
  "CMakeFiles/subtxn_test.dir/subtxn_test.cc.o.d"
  "subtxn_test"
  "subtxn_test.pdb"
  "subtxn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subtxn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
