# Empty compiler generated dependencies file for subtxn_test.
# This may be replaced when dependencies are built.
