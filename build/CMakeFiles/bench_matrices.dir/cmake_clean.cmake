file(REMOVE_RECURSE
  "CMakeFiles/bench_matrices.dir/bench/bench_matrices.cpp.o"
  "CMakeFiles/bench_matrices.dir/bench/bench_matrices.cpp.o.d"
  "bench/bench_matrices"
  "bench/bench_matrices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matrices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
