# Empty dependencies file for bench_matrices.
# This may be replaced when dependencies are built.
