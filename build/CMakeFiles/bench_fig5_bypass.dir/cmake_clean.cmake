file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bypass.dir/bench/bench_fig5_bypass.cpp.o"
  "CMakeFiles/bench_fig5_bypass.dir/bench/bench_fig5_bypass.cpp.o.d"
  "bench/bench_fig5_bypass"
  "bench/bench_fig5_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
