file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_interleaving.dir/bench/bench_fig4_interleaving.cpp.o"
  "CMakeFiles/bench_fig4_interleaving.dir/bench/bench_fig4_interleaving.cpp.o.d"
  "bench/bench_fig4_interleaving"
  "bench/bench_fig4_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
