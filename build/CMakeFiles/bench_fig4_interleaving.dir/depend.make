# Empty dependencies file for bench_fig4_interleaving.
# This may be replaced when dependencies are built.
