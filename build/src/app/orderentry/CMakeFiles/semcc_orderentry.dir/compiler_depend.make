# Empty compiler generated dependencies file for semcc_orderentry.
# This may be replaced when dependencies are built.
