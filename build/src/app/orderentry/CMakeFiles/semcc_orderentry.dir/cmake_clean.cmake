file(REMOVE_RECURSE
  "CMakeFiles/semcc_orderentry.dir/order_entry.cc.o"
  "CMakeFiles/semcc_orderentry.dir/order_entry.cc.o.d"
  "CMakeFiles/semcc_orderentry.dir/scenario.cc.o"
  "CMakeFiles/semcc_orderentry.dir/scenario.cc.o.d"
  "CMakeFiles/semcc_orderentry.dir/workload.cc.o"
  "CMakeFiles/semcc_orderentry.dir/workload.cc.o.d"
  "libsemcc_orderentry.a"
  "libsemcc_orderentry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_orderentry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
