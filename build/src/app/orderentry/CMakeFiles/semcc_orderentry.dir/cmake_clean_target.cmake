file(REMOVE_RECURSE
  "libsemcc_orderentry.a"
)
