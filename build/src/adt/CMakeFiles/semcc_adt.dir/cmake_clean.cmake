file(REMOVE_RECURSE
  "CMakeFiles/semcc_adt.dir/standard_adts.cc.o"
  "CMakeFiles/semcc_adt.dir/standard_adts.cc.o.d"
  "libsemcc_adt.a"
  "libsemcc_adt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_adt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
