# Empty compiler generated dependencies file for semcc_adt.
# This may be replaced when dependencies are built.
