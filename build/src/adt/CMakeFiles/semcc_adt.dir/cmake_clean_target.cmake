file(REMOVE_RECURSE
  "libsemcc_adt.a"
)
