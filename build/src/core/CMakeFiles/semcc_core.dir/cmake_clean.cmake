file(REMOVE_RECURSE
  "CMakeFiles/semcc_core.dir/database.cc.o"
  "CMakeFiles/semcc_core.dir/database.cc.o.d"
  "CMakeFiles/semcc_core.dir/serializability.cc.o"
  "CMakeFiles/semcc_core.dir/serializability.cc.o.d"
  "libsemcc_core.a"
  "libsemcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
