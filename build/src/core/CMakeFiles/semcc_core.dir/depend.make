# Empty dependencies file for semcc_core.
# This may be replaced when dependencies are built.
