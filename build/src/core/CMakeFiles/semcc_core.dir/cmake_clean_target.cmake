file(REMOVE_RECURSE
  "libsemcc_core.a"
)
