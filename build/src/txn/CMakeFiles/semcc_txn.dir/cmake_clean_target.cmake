file(REMOVE_RECURSE
  "libsemcc_txn.a"
)
