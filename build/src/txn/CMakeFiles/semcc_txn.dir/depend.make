# Empty dependencies file for semcc_txn.
# This may be replaced when dependencies are built.
