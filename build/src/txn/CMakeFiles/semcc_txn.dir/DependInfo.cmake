
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/history.cc" "src/txn/CMakeFiles/semcc_txn.dir/history.cc.o" "gcc" "src/txn/CMakeFiles/semcc_txn.dir/history.cc.o.d"
  "/root/repo/src/txn/method_registry.cc" "src/txn/CMakeFiles/semcc_txn.dir/method_registry.cc.o" "gcc" "src/txn/CMakeFiles/semcc_txn.dir/method_registry.cc.o.d"
  "/root/repo/src/txn/txn_context.cc" "src/txn/CMakeFiles/semcc_txn.dir/txn_context.cc.o" "gcc" "src/txn/CMakeFiles/semcc_txn.dir/txn_context.cc.o.d"
  "/root/repo/src/txn/txn_manager.cc" "src/txn/CMakeFiles/semcc_txn.dir/txn_manager.cc.o" "gcc" "src/txn/CMakeFiles/semcc_txn.dir/txn_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc/CMakeFiles/semcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/semcc_object.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semcc_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
