file(REMOVE_RECURSE
  "CMakeFiles/semcc_txn.dir/history.cc.o"
  "CMakeFiles/semcc_txn.dir/history.cc.o.d"
  "CMakeFiles/semcc_txn.dir/method_registry.cc.o"
  "CMakeFiles/semcc_txn.dir/method_registry.cc.o.d"
  "CMakeFiles/semcc_txn.dir/txn_context.cc.o"
  "CMakeFiles/semcc_txn.dir/txn_context.cc.o.d"
  "CMakeFiles/semcc_txn.dir/txn_manager.cc.o"
  "CMakeFiles/semcc_txn.dir/txn_manager.cc.o.d"
  "libsemcc_txn.a"
  "libsemcc_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
