file(REMOVE_RECURSE
  "CMakeFiles/semcc_query.dir/object_assembly.cc.o"
  "CMakeFiles/semcc_query.dir/object_assembly.cc.o.d"
  "libsemcc_query.a"
  "libsemcc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
