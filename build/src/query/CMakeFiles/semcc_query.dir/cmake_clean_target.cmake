file(REMOVE_RECURSE
  "libsemcc_query.a"
)
