# Empty dependencies file for semcc_query.
# This may be replaced when dependencies are built.
