file(REMOVE_RECURSE
  "libsemcc_recovery.a"
)
