
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/log_record.cc" "src/recovery/CMakeFiles/semcc_recovery.dir/log_record.cc.o" "gcc" "src/recovery/CMakeFiles/semcc_recovery.dir/log_record.cc.o.d"
  "/root/repo/src/recovery/recovery_manager.cc" "src/recovery/CMakeFiles/semcc_recovery.dir/recovery_manager.cc.o" "gcc" "src/recovery/CMakeFiles/semcc_recovery.dir/recovery_manager.cc.o.d"
  "/root/repo/src/recovery/wal.cc" "src/recovery/CMakeFiles/semcc_recovery.dir/wal.cc.o" "gcc" "src/recovery/CMakeFiles/semcc_recovery.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/semcc_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/semcc_object.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/semcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semcc_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
