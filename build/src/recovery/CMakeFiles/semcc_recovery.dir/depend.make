# Empty dependencies file for semcc_recovery.
# This may be replaced when dependencies are built.
