file(REMOVE_RECURSE
  "CMakeFiles/semcc_recovery.dir/log_record.cc.o"
  "CMakeFiles/semcc_recovery.dir/log_record.cc.o.d"
  "CMakeFiles/semcc_recovery.dir/recovery_manager.cc.o"
  "CMakeFiles/semcc_recovery.dir/recovery_manager.cc.o.d"
  "CMakeFiles/semcc_recovery.dir/wal.cc.o"
  "CMakeFiles/semcc_recovery.dir/wal.cc.o.d"
  "libsemcc_recovery.a"
  "libsemcc_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
