# Empty dependencies file for semcc_storage.
# This may be replaced when dependencies are built.
