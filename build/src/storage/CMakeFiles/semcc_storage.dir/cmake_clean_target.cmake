file(REMOVE_RECURSE
  "libsemcc_storage.a"
)
