file(REMOVE_RECURSE
  "CMakeFiles/semcc_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/semcc_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/semcc_storage.dir/disk_manager.cc.o"
  "CMakeFiles/semcc_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/semcc_storage.dir/page.cc.o"
  "CMakeFiles/semcc_storage.dir/page.cc.o.d"
  "CMakeFiles/semcc_storage.dir/record_manager.cc.o"
  "CMakeFiles/semcc_storage.dir/record_manager.cc.o.d"
  "libsemcc_storage.a"
  "libsemcc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
