
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/compatibility.cc" "src/cc/CMakeFiles/semcc_cc.dir/compatibility.cc.o" "gcc" "src/cc/CMakeFiles/semcc_cc.dir/compatibility.cc.o.d"
  "/root/repo/src/cc/lock_manager.cc" "src/cc/CMakeFiles/semcc_cc.dir/lock_manager.cc.o" "gcc" "src/cc/CMakeFiles/semcc_cc.dir/lock_manager.cc.o.d"
  "/root/repo/src/cc/subtxn.cc" "src/cc/CMakeFiles/semcc_cc.dir/subtxn.cc.o" "gcc" "src/cc/CMakeFiles/semcc_cc.dir/subtxn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/object/CMakeFiles/semcc_object.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/semcc_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
