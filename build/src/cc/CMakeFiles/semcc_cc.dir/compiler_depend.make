# Empty compiler generated dependencies file for semcc_cc.
# This may be replaced when dependencies are built.
