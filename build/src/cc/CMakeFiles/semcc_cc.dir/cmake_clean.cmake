file(REMOVE_RECURSE
  "CMakeFiles/semcc_cc.dir/compatibility.cc.o"
  "CMakeFiles/semcc_cc.dir/compatibility.cc.o.d"
  "CMakeFiles/semcc_cc.dir/lock_manager.cc.o"
  "CMakeFiles/semcc_cc.dir/lock_manager.cc.o.d"
  "CMakeFiles/semcc_cc.dir/subtxn.cc.o"
  "CMakeFiles/semcc_cc.dir/subtxn.cc.o.d"
  "libsemcc_cc.a"
  "libsemcc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
