file(REMOVE_RECURSE
  "libsemcc_cc.a"
)
