file(REMOVE_RECURSE
  "CMakeFiles/semcc_util.dir/histogram.cc.o"
  "CMakeFiles/semcc_util.dir/histogram.cc.o.d"
  "CMakeFiles/semcc_util.dir/logging.cc.o"
  "CMakeFiles/semcc_util.dir/logging.cc.o.d"
  "CMakeFiles/semcc_util.dir/random.cc.o"
  "CMakeFiles/semcc_util.dir/random.cc.o.d"
  "CMakeFiles/semcc_util.dir/status.cc.o"
  "CMakeFiles/semcc_util.dir/status.cc.o.d"
  "libsemcc_util.a"
  "libsemcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
