# Empty compiler generated dependencies file for semcc_util.
# This may be replaced when dependencies are built.
