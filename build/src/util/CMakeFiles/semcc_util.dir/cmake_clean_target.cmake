file(REMOVE_RECURSE
  "libsemcc_util.a"
)
