# Empty dependencies file for semcc_object.
# This may be replaced when dependencies are built.
