file(REMOVE_RECURSE
  "libsemcc_object.a"
)
