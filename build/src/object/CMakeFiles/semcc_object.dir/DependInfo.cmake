
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/object/object_store.cc" "src/object/CMakeFiles/semcc_object.dir/object_store.cc.o" "gcc" "src/object/CMakeFiles/semcc_object.dir/object_store.cc.o.d"
  "/root/repo/src/object/schema.cc" "src/object/CMakeFiles/semcc_object.dir/schema.cc.o" "gcc" "src/object/CMakeFiles/semcc_object.dir/schema.cc.o.d"
  "/root/repo/src/object/value.cc" "src/object/CMakeFiles/semcc_object.dir/value.cc.o" "gcc" "src/object/CMakeFiles/semcc_object.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/semcc_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/semcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
