file(REMOVE_RECURSE
  "CMakeFiles/semcc_object.dir/object_store.cc.o"
  "CMakeFiles/semcc_object.dir/object_store.cc.o.d"
  "CMakeFiles/semcc_object.dir/schema.cc.o"
  "CMakeFiles/semcc_object.dir/schema.cc.o.d"
  "CMakeFiles/semcc_object.dir/value.cc.o"
  "CMakeFiles/semcc_object.dir/value.cc.o.d"
  "libsemcc_object.a"
  "libsemcc_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semcc_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
