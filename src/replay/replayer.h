// Trace replay engine (DESIGN.md §5.9): turn a binary lock-trace capture
// (util/trace.h, SEMCC_TRACE_CAPTURE) back into a schedule of lock-manager
// operations and re-execute it against a live LockManager.
//
// The capture records, per lock decision, the acquirer's subtxn id, root
// id, tree depth, method name, object type id, up to two integer method
// arguments, and the lock target — enough to rebuild each transaction tree
// (depth-stack parent inference) and re-drive LockManager::Acquire through
// the real commutativity matrix. Two modes:
//
//  * verify — single-threaded, events in capture order, wait_timeout
//    clamped to zero so a would-block acquisition returns TimedOut
//    immediately instead of parking. Deterministic: the same capture
//    always yields the same verdict counts (the replay determinism test
//    and the CI replay-smoke leg assert exactly this).
//  * bench — closed loop: captured roots are dealt round-robin to N
//    threads, each thread re-executes its transactions' full lock
//    schedules back-to-back. Reports wall time and replayed-root
//    throughput; useful for re-running a production-shaped contention
//    pattern against different ProtocolOptions (tools/trace_replay).
//
// Only lock/transaction events drive the replay; WAL, checkpoint, and
// mode-flip events are ignored (the latter re-emerge naturally if the
// replaying lock manager itself runs adaptive_mode).
#ifndef SEMCC_REPLAY_REPLAYER_H_
#define SEMCC_REPLAY_REPLAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cc/compatibility.h"
#include "cc/lock_manager.h"
#include "util/trace.h"

namespace semcc {
namespace replay {

enum class ReplayMode {
  kVerify = 0,  ///< single-threaded, capture order, non-blocking
  kBench = 1,   ///< closed-loop multi-threaded re-execution
};

struct ReplayOptions {
  ReplayMode mode = ReplayMode::kVerify;
  /// Worker threads (bench mode; verify is always single-threaded).
  int threads = 4;
  /// Lock-manager configuration to replay against. wait_timeout is
  /// overridden to 0 in verify mode.
  ProtocolOptions protocol;
};

/// \brief What one replay did (plain data).
struct ReplayResult {
  uint64_t roots = 0;       ///< transaction trees rebuilt and re-executed
  uint64_t actions = 0;     ///< lock acquisitions replayed
  uint64_t granted = 0;     ///< ... that came back OK
  uint64_t denied = 0;      ///< ... TimedOut / Deadlock / Aborted
  uint64_t skipped_events = 0;  ///< capture events not usable for replay
  uint64_t wall_micros = 0;     ///< bench mode: wall time of the replay
  LockStats locks;          ///< replaying lock manager's final counters

  /// The determinism fingerprint: the verdict breakdown plus grant/deny
  /// totals, as one JSON object (stable field order).
  std::string VerdictJson() const;
  std::string ToJson() const;
};

/// \brief Replay `events` (a capture loaded with trace::ReadBinary) against
/// a fresh LockManager built from `opts.protocol` and `compat`. The
/// registry must define the method compatibilities of the captured
/// workload's types (e.g. orderentry::Install's schema for captures taken
/// from the stock benches); unknown method pairs default to conflicting,
/// which still replays but skews verdicts.
ReplayResult Replay(const std::vector<trace::Event>& events,
                    CompatibilityRegistry* compat, const ReplayOptions& opts);

}  // namespace replay
}  // namespace semcc

#endif  // SEMCC_REPLAY_REPLAYER_H_
