#include "replay/replayer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "cc/subtxn.h"
#include "object/oid.h"
#include "object/schema.h"
#include "util/metrics.h"

namespace semcc {
namespace replay {

namespace {

/// One replayable operation, decoded from the capture.
struct Op {
  enum Kind : uint8_t { kAcquire, kComplete, kRelease } kind;
  size_t root_idx;   ///< index into the script table
  uint64_t txn_id;   ///< subtxn id (kAcquire / kComplete)
  uint16_t depth = 0;
  uint16_t type_id = 0;
  uint8_t argc = 0;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  bool is_write = false;
  bool commit = true;  ///< kRelease: commit vs abort
  LockTarget target;
  std::string method;
};

/// All ops of one captured transaction tree, in capture order.
struct RootScript {
  uint64_t root_id = 0;
  std::string name;
  std::vector<Op> ops;
  bool released = false;  ///< a kRelease op was decoded for this root
};

/// The decoded schedule: per-root scripts plus the global capture-order
/// interleaving (pairs of script index, op index) for verify mode.
struct Schedule {
  std::vector<RootScript> scripts;
  std::vector<std::pair<size_t, size_t>> verify_order;
  uint64_t skipped = 0;
};

Schedule BuildSchedule(const std::vector<trace::Event>& events) {
  Schedule sched;
  std::unordered_map<uint64_t, size_t> root_index;
  std::unordered_set<uint64_t> acquired;  // subtxn ids already scheduled

  auto script_for = [&](uint64_t root_id) -> RootScript& {
    auto [it, fresh] = root_index.try_emplace(root_id, sched.scripts.size());
    if (fresh) {
      sched.scripts.emplace_back();
      sched.scripts.back().root_id = root_id;
    }
    return sched.scripts[it->second];
  };
  auto push = [&](uint64_t root_id, Op op) {
    RootScript& s = script_for(root_id);
    if (s.released) return;  // ring-wrap artifact: op after release
    op.root_idx = root_index[root_id];
    sched.verify_order.emplace_back(op.root_idx, s.ops.size());
    s.ops.push_back(std::move(op));
  };

  for (const trace::Event& e : events) {
    const auto kind = static_cast<trace::EventKind>(e.kind);
    switch (kind) {
      case trace::EventKind::kGrant:
      case trace::EventKind::kFastPathGrant:
      case trace::EventKind::kBlock: {
        // One acquisition per subtxn: the first decision event wins, the
        // wait-resolution events (grant-after-wait, timeout, ...) and any
        // ring-wrap duplicate are implied by it.
        if (!acquired.insert(e.txn).second) {
          ++sched.skipped;
          break;
        }
        Op op;
        op.kind = Op::kAcquire;
        op.txn_id = e.txn;
        op.depth = e.depth;
        op.type_id = e.type_id;
        op.argc = e.argc;
        op.arg0 = e.arg0;
        op.arg1 = e.arg1;
        op.is_write = (e.flags & trace::kFlagIsWrite) != 0;
        op.target.space = static_cast<LockTarget::Space>(e.target_space);
        op.target.key = e.target;
        op.method.assign(e.method);
        push(e.root, std::move(op));
        break;
      }
      case trace::EventKind::kComplete: {
        // Root completion is folded into the release op (the transaction
        // manager completes the root immediately before releasing).
        if (e.txn == e.root) break;
        Op op;
        op.kind = Op::kComplete;
        op.txn_id = e.txn;
        push(e.root, std::move(op));
        break;
      }
      case trace::EventKind::kTxnBegin:
        script_for(e.root).name.assign(e.method);
        break;
      case trace::EventKind::kTxnCommit:
      case trace::EventKind::kTxnAbort: {
        Op op;
        op.kind = Op::kRelease;
        op.txn_id = e.root;
        op.commit = kind == trace::EventKind::kTxnCommit;
        push(e.root, std::move(op));
        script_for(e.root).released = true;
        break;
      }
      default:
        // Wait resolutions, wakeups, WAL/MVCC/checkpoint traffic, mode
        // flips: not replayable operations.
        ++sched.skipped;
        break;
    }
  }

  // A capture can end (or the ring can wrap) between a root's actions and
  // its commit event; close such trees so replay never leaks locks.
  for (size_t i = 0; i < sched.scripts.size(); ++i) {
    RootScript& s = sched.scripts[i];
    if (s.released || s.ops.empty()) continue;
    Op op;
    op.kind = Op::kRelease;
    op.txn_id = s.root_id;
    op.root_idx = i;
    sched.verify_order.emplace_back(i, s.ops.size());
    s.ops.push_back(std::move(op));
    s.released = true;
  }
  return sched;
}

/// Live state of one root being re-executed: the rebuilt tree plus the
/// depth stack used to infer each action's parent (capture events carry
/// the node's depth, not its parent id; invocation order + depth pins the
/// parent uniquely for the executing thread's tree growth).
struct RootRuntime {
  std::unique_ptr<TxnTree> tree;
  std::unordered_map<uint64_t, SubTxn*> nodes;
  std::vector<SubTxn*> stack;  // path of the most recent action
};

struct ExecCounters {
  std::atomic<uint64_t> actions{0};
  std::atomic<uint64_t> granted{0};
  std::atomic<uint64_t> denied{0};
};

void ExecOp(const Op& op, const RootScript& script, RootRuntime* rt,
            LockManager* lm, ExecCounters* ctr) {
  if (rt->tree == nullptr) {
    rt->tree = std::make_unique<TxnTree>(
        script.root_id, script.name.empty() ? "replay" : script.name,
        kDatabaseOid, Schema::kDatabaseTypeId);
    rt->stack.assign(1, rt->tree->root());
  }
  switch (op.kind) {
    case Op::kAcquire: {
      // Parent = deepest node on the invocation path shallower than us.
      while (rt->stack.size() > 1 &&
             rt->stack.back()->depth() >= static_cast<int>(op.depth)) {
        rt->stack.pop_back();
      }
      Args args;
      if (op.argc > 0) args.push_back(Value(op.arg0));
      if (op.argc > 1) args.push_back(Value(op.arg1));
      SubTxn* node = rt->tree->NewNode(rt->stack.back(),
                                       static_cast<Oid>(op.target.key),
                                       static_cast<TypeId>(op.type_id),
                                       op.method, std::move(args));
      rt->nodes.emplace(op.txn_id, node);
      rt->stack.push_back(node);
      ctr->actions.fetch_add(1, std::memory_order_relaxed);
      const Status st = lm->Acquire(node, op.target, op.is_write);
      if (st.ok()) {
        ctr->granted.fetch_add(1, std::memory_order_relaxed);
      } else {
        ctr->denied.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case Op::kComplete: {
      auto it = rt->nodes.find(op.txn_id);
      if (it == rt->nodes.end()) break;  // acquisition fell off the ring
      it->second->set_state(TxnState::kCommitted);
      lm->OnSubTxnCompleted(it->second);
      break;
    }
    case Op::kRelease: {
      SubTxn* root = rt->tree->root();
      root->set_state(op.commit ? TxnState::kCommitted : TxnState::kAborted);
      lm->OnSubTxnCompleted(root);
      lm->ReleaseTree(root);
      rt->tree.reset();
      rt->nodes.clear();
      rt->stack.clear();
      break;
    }
  }
}

}  // namespace

std::string ReplayResult::VerdictJson() const {
  metrics::JsonWriter w;
  w.Field("actions", actions);
  w.Field("granted", granted);
  w.Field("denied", denied);
  w.Field("commute", locks.commute_grants);
  w.Field("case1", locks.case1_grants);
  w.Field("case2", locks.case2_waits);
  w.Field("root_wait", locks.root_waits);
  w.Field("keyrange_skips", locks.keyrange_skips);
  return w.Close();
}

std::string ReplayResult::ToJson() const {
  metrics::JsonWriter w;
  w.Field("roots", roots);
  w.Field("actions", actions);
  w.Field("granted", granted);
  w.Field("denied", denied);
  w.Field("skipped_events", skipped_events);
  w.Field("wall_micros", wall_micros);
  w.FieldRaw("verdicts", VerdictJson());
  w.FieldRaw("locks", locks.ToJson());
  return w.Close();
}

ReplayResult Replay(const std::vector<trace::Event>& events,
                    CompatibilityRegistry* compat, const ReplayOptions& opts) {
  Schedule sched = BuildSchedule(events);

  ProtocolOptions popts = opts.protocol;
  if (opts.mode == ReplayMode::kVerify) {
    // Non-blocking: a would-wait acquisition resolves to TimedOut on the
    // spot, keeping single-threaded capture-order replay deterministic.
    popts.wait_timeout = std::chrono::milliseconds(0);
  }
  LockManager lm(popts, compat);
  ExecCounters ctr;

  const auto t0 = std::chrono::steady_clock::now();
  if (opts.mode == ReplayMode::kVerify) {
    std::vector<RootRuntime> runtimes(sched.scripts.size());
    for (const auto& [script_idx, op_idx] : sched.verify_order) {
      const RootScript& script = sched.scripts[script_idx];
      ExecOp(script.ops[op_idx], script, &runtimes[script_idx], &lm, &ctr);
    }
  } else {
    const int threads =
        std::max(1, std::min<int>(opts.threads,
                                  static_cast<int>(sched.scripts.size())));
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int tid = 0; tid < threads; ++tid) {
      workers.emplace_back([&, tid]() {
        for (size_t i = tid; i < sched.scripts.size();
             i += static_cast<size_t>(threads)) {
          const RootScript& script = sched.scripts[i];
          RootRuntime rt;
          for (const Op& op : script.ops) ExecOp(op, script, &rt, &lm, &ctr);
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  ReplayResult r;
  r.roots = sched.scripts.size();
  r.actions = ctr.actions.load();
  r.granted = ctr.granted.load();
  r.denied = ctr.denied.load();
  r.skipped_events = sched.skipped;
  r.wall_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  r.locks = lm.stats();
  return r;
}

}  // namespace replay
}  // namespace semcc
