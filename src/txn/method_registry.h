// Registry of (user-defined) methods on encapsulated object types.
//
// A method has a body (which may invoke further methods on other objects or
// even the same object — paper footnote 3) and, for update methods, a
// semantic inverse used to compensate the committed subtransaction when an
// ancestor aborts (paper §3: "committed subtransactions need to be
// compensated by means of appropriate 'inverse' operations").
#ifndef SEMCC_TXN_METHOD_REGISTRY_H_
#define SEMCC_TXN_METHOD_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "object/oid.h"
#include "object/value.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/result.h"

namespace semcc {

class TxnCtx;

/// \brief One registered method.
struct MethodDef {
  TypeId type = kInvalidTypeId;
  std::string name;
  /// Read-only methods need no inverse and map to shared locks under the
  /// conventional baselines.
  bool read_only = false;
  /// The implementation. `self` is the receiver object.
  std::function<Result<Value>(TxnCtx&, Oid self, const Args&)> body;
  /// Semantic compensation, executed as a new subtransaction of the aborting
  /// transaction. Receives the original arguments and the original result.
  /// Mandatory for update methods (enforced at registration).
  std::function<Status(TxnCtx&, Oid self, const Args&, const Value& result)>
      inverse;
};

/// \brief Thread-safe method lookup table, keyed by (type, name).
class MethodRegistry {
 public:
  MethodRegistry() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(MethodRegistry);

  Status Register(MethodDef def);
  Result<const MethodDef*> Find(TypeId type, const std::string& name) const;
  bool Has(TypeId type, const std::string& name) const;
  std::vector<std::string> MethodsOf(TypeId type) const;

 private:
  mutable Mutex mu_;
  std::map<std::pair<TypeId, std::string>, MethodDef> methods_
      SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_TXN_METHOD_REGISTRY_H_
