// History recording: everything the serializability checker and the
// scenario benches need to know about an execution.
#ifndef SEMCC_TXN_HISTORY_H_
#define SEMCC_TXN_HISTORY_H_

#include <atomic>
#include <string>
#include <vector>

#include "cc/subtxn.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// \brief Immutable snapshot of one action (tree node) of a finished
/// transaction.
struct ActionRecord {
  TxnId id = 0;
  TxnId parent_id = 0;  ///< 0 = root (roots have parent_id == own id)
  TxnId root_id = 0;
  int depth = 0;
  Oid object = kInvalidOid;
  TypeId type = kInvalidTypeId;
  std::string method;
  Args args;
  uint64_t grant_seq = 0;  ///< logical time the action's lock was granted
  uint64_t end_seq = 0;    ///< logical time the action completed
  TxnState final_state = TxnState::kActive;
  bool compensation = false;
  /// Snapshot transactions only: version timestamp this read observed
  /// (0 = base/pre-first-write state; meaningless on non-snapshot actions).
  uint64_t observed_ts = 0;

  bool committed() const { return final_state == TxnState::kCommitted; }
  std::string Label() const;
};

/// \brief One finished top-level transaction.
struct TxnRecord {
  TxnId id = 0;
  std::string name;
  bool committed = false;
  /// True when the transaction ran in MVCC snapshot-read mode; snapshot_ts
  /// is the commit timestamp S it read as of.
  bool snapshot = false;
  uint64_t snapshot_ts = 0;
  /// All actions including the root, in creation order.
  std::vector<ActionRecord> actions;

  const ActionRecord* Find(TxnId action_id) const;
};

/// \brief Thread-safe collector of finished transactions.
class HistoryRecorder {
 public:
  HistoryRecorder() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(HistoryRecorder);

  void SetEnabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void RecordTree(TxnTree* tree, bool committed);

  std::vector<TxnRecord> Snapshot() const;
  size_t size() const;
  void Clear();

 private:
  std::atomic<bool> enabled_{true};
  mutable Mutex mu_;
  std::vector<TxnRecord> txns_ SEMCC_GUARDED_BY(mu_);
};

/// Render a finished transaction tree as an indented trace (used by the
/// figure-reproduction benches to print the paper's execution trees).
std::string FormatTxnTree(const TxnRecord& txn);

}  // namespace semcc

#endif  // SEMCC_TXN_HISTORY_H_
