// TxnManager: top-level transaction lifecycle — run, commit, abort with
// compensation, deadlock-victim retry.
#ifndef SEMCC_TXN_TXN_MANAGER_H_
#define SEMCC_TXN_TXN_MANAGER_H_

#include <functional>
#include <string>

#include "cc/lock_manager.h"
#include "txn/history.h"
#include "txn/method_registry.h"
#include "txn/txn_context.h"
#include "util/macros.h"
#include "util/metrics.h"

namespace semcc {

class AdaptiveController;
struct ModeSnapshot;

/// \brief Point-in-time snapshot of transaction statistics (plain data;
/// returned by value from TxnManager::stats()).
struct TxnStats {
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t retries = 0;
  uint64_t app_errors = 0;

  std::string ToString() const;
  std::string ToJson() const;
};

/// \brief Runs transaction bodies as open nested transactions.
class TxnManager {
 public:
  using Body = std::function<Result<Value>(TxnCtx&)>;

  /// `versions` is the MVCC layer (ProtocolOptions::mvcc_reads); null when
  /// the flag is off. With it present, every transaction reports its write
  /// set on completion and RunSnapshot becomes available.
  TxnManager(ObjectStore* store, LockManager* lm, MethodRegistry* methods,
             HistoryRecorder* recorder, ActionLogger* logger = nullptr,
             VersionedObjectStore* versions = nullptr);
  SEMCC_DISALLOW_COPY_AND_ASSIGN(TxnManager);

  /// Execute `body` as a top-level transaction named `name`.
  ///
  /// On success the transaction commits: all its locks are released and its
  /// tree is recorded in the history. On failure (including deadlock-victim
  /// aborts) all committed subtransactions are compensated in reverse order
  /// and — for system-induced aborts (Deadlock/Aborted/TimedOut) — the body
  /// is re-executed up to `max_retries` times with exponential backoff.
  /// Application errors are not retried.
  ///
  /// The body MUST be re-entrant: it can run several times, so it must not
  /// move captured state out or otherwise consume one-shot resources.
  Result<Value> Run(const std::string& name, const Body& body,
                    int max_retries = 16);

  /// Like Run but never retries; useful in scenario tests that need to
  /// observe a single attempt.
  Result<Value> RunOnce(const std::string& name, const Body& body);

  /// Execute `body` as a snapshot-read transaction (requires a version
  /// store, i.e. ProtocolOptions::mvcc_reads): reads observe a
  /// commit-consistent snapshot, no lock is ever acquired, and writes fail
  /// with PreconditionFailed. Never retried — with no locks there are no
  /// system aborts; any error is the body's own.
  Result<Value> RunSnapshot(const std::string& name, const Body& body);

  VersionedObjectStore* versions() const { return versions_; }

  /// Attach the adaptive controller (ProtocolOptions::adaptive_mode). Every
  /// locking transaction then pins the current mode snapshot onto its root
  /// before its first action and unpins it after release — the controller's
  /// drain barrier (cc/adaptive_controller.h). Must be set before any Run.
  void SetAdaptiveController(AdaptiveController* c) { controller_ = c; }

  /// Monotonic lower-bound snapshot (exact at quiesce; see
  /// metrics::CounterBank).
  TxnStats stats() const;

 private:
  /// Counter indices in counters_ (striped by thread, not by shard).
  enum Counter : size_t {
    kCtrBegins = 0,
    kCtrCommits,
    kCtrAborts,
    kCtrRetries,
    kCtrAppErrors,
    kCtrCount,
  };

  Result<Value> RunAttempt(const std::string& name, const Body& body,
                           TxnId priority);

  ObjectStore* const store_;
  LockManager* const lm_;
  MethodRegistry* const methods_;
  HistoryRecorder* const recorder_;
  ActionLogger* const logger_;
  VersionedObjectStore* const versions_;
  AdaptiveController* controller_ = nullptr;
  metrics::CounterBank counters_;
};

}  // namespace semcc

#endif  // SEMCC_TXN_TXN_MANAGER_H_
