#include "txn/txn_context.h"

#include "util/logging.h"

namespace semcc {

TxnCtx::TxnCtx(ObjectStore* store, LockManager* lm, MethodRegistry* methods,
               TxnTree* tree, ActionLogger* logger,
               VersionedObjectStore* versions)
    : store_(store), lm_(lm), methods_(methods), tree_(tree), logger_(logger),
      versions_(versions), current_(tree->root()) {}

void TxnCtx::NoteWrite(Oid oid, bool is_set) {
  if (versions_ != nullptr && written_.insert(oid).second) {
    versions_->BeginWrite(oid, is_set);
  }
}

void TxnCtx::TraceSnapshotRead(const SubTxn* node, uint64_t observed_ts) {
  if (!trace::Active(lm_->options().trace)) return;
  trace::Event e;
  e.kind = static_cast<uint8_t>(trace::EventKind::kSnapshotRead);
  e.txn = node->id();
  e.root = root()->id();
  e.other = root()->snapshot_ts();  // the snapshot S
  e.value = observed_ts;            // the version ts the read resolved to
  e.target = node->object();
  e.depth = static_cast<uint16_t>(node->depth());
  e.set_method(node->method());
  trace::Emit(e);
}

Result<SubTxn*> TxnCtx::BeginAction(Oid obj, const std::string& method,
                                    Args args, bool is_write, bool is_leaf) {
  if (!in_compensation_ && root()->abort_requested()) {
    return Status::Aborted("transaction " + std::to_string(root()->id()) +
                           " was asked to abort");
  }
  SEMCC_ASSIGN_OR_RETURN(TypeId type, store_->TypeOf(obj));
  SubTxn* node = tree_->NewNode(current_, obj, type, method, std::move(args));
  if (in_compensation_) node->set_compensation(true);
  Status st = AcquireForAction(node, is_write, is_leaf);
  if (!st.ok()) {
    AbortAction(node);
    return st;
  }
  return node;
}

Status TxnCtx::AcquireForAction(SubTxn* node, bool is_write, bool is_leaf) {
  if (snapshot_mode()) {
    // Snapshot transactions never touch the lock manager: no shard mutex,
    // no queue entry, no waits-for registration — just the atomic clock
    // tick every node needs for the history recorder's ordering.
    node->set_grant_seq(lm_->NextSeq());
    return Status::OK();
  }
  const ProtocolOptions& opts = lm_->options();
  switch (opts.protocol) {
    case Protocol::kSemanticONT:
      // Every action acquires a semantic lock on its object (Figure 8).
      return lm_->Acquire(node, LockTarget::ForObject(node->object()),
                          is_write);
    case Protocol::kClosedNested:
      // Conventional read/write locking at the access level; method
      // invocations carry no lock of their own.
      if (!is_leaf) {
        node->set_grant_seq(lm_->NextSeq());
        return Status::OK();
      }
      return lm_->Acquire(node, LockTarget::ForObject(node->object()),
                          is_write);
    case Protocol::kFlat2PL: {
      if (!is_leaf) {
        node->set_grant_seq(lm_->NextSeq());
        return Status::OK();
      }
      LockTarget target;
      switch (opts.granularity) {
        case LockGranularity::kObject:
          target = LockTarget::ForObject(node->object());
          break;
        case LockGranularity::kRecord: {
          SEMCC_ASSIGN_OR_RETURN(Rid rid, store_->RidOf(node->object()));
          target = LockTarget::ForRecord(rid);
          break;
        }
        case LockGranularity::kPage: {
          SEMCC_ASSIGN_OR_RETURN(PageId page, store_->PageOf(node->object()));
          target = LockTarget::ForPage(page);
          break;
        }
      }
      return lm_->Acquire(node, target, is_write);
    }
  }
  return Status::Internal("unknown protocol");
}

void TxnCtx::CommitAction(SubTxn* node, std::function<void()> inverse,
                          bool inverse_is_total) {
  node->inverse = std::move(inverse);
  node->inverse_is_total = inverse_is_total;
  node->set_state(TxnState::kCommitted);
  if (snapshot_mode()) {
    // A snapshot node holds no locks and nobody can be waiting on its
    // completion, so the lock manager's completion sweep (which takes the
    // global graph mutex to find waiters) has nothing to do. Keep only the
    // end-seq stamp it would have provided.
    node->set_end_seq(lm_->NextSeq());
    return;
  }
  lm_->OnSubTxnCompleted(node);
}

void TxnCtx::AbortAction(SubTxn* node) {
  node->set_state(TxnState::kAborted);
  if (snapshot_mode()) {
    node->set_end_seq(lm_->NextSeq());
    return;
  }
  lm_->OnSubTxnCompleted(node);
}

// --- method invocation ----------------------------------------------------

Result<Value> TxnCtx::Invoke(Oid obj, const std::string& method, Args args) {
  SEMCC_ASSIGN_OR_RETURN(TypeId type, store_->TypeOf(obj));
  SEMCC_ASSIGN_OR_RETURN(const MethodDef* def, methods_->Find(type, method));
  if (snapshot_mode() && !def->read_only) {
    return Status::PreconditionFailed(
        "snapshot-read transaction invoked updating method " + method);
  }
  auto node_r = BeginAction(obj, method, args, !def->read_only,
                            /*is_leaf=*/false);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();

  SubTxn* saved = current_;
  current_ = node;
  Result<Value> result = def->body(*this, obj, node->args());
  current_ = saved;

  if (!result.ok()) {
    AbortAction(node);
    return result;
  }
  std::function<void()> inverse;
  bool total = false;
  if (def->inverse) {
    const Args& bound_args = node->args();
    Value bound_result = result.ValueOrDie();
    inverse = [this, def, obj, bound_args, bound_result]() {
      Status st = def->inverse(*this, obj, bound_args, bound_result);
      if (!st.ok()) {
        SEMCC_LOG(Error) << "compensation of " << def->name
                         << " failed: " << st.ToString();
      }
    };
    total = true;
  }
  CommitAction(node, std::move(inverse), total);
  if (logger_ != nullptr) {
    logger_->OnMethodCommitted(*node, result.ValueOrDie(), total);
  }
  return result;
}

// --- generic leaf operations ------------------------------------------------

Result<Value> TxnCtx::Get(Oid atomic) {
  auto node_r = BeginAction(atomic, generic_ops::kGet, {}, /*is_write=*/false,
                            /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  if (snapshot_mode()) {
    uint64_t observed = 0;
    Result<Value> v =
        versions_->ReadAtomic(atomic, root()->snapshot_ts(), &observed);
    if (!v.ok()) {
      AbortAction(node);
      return v;
    }
    node->set_observed_ts(observed);
    TraceSnapshotRead(node, observed);
    CommitAction(node, nullptr, false);
    return v;
  }
  Result<Value> v = store_->Get(atomic);
  if (!v.ok()) {
    AbortAction(node);
    return v;
  }
  CommitAction(node, nullptr, false);
  return v;
}

Status TxnCtx::Put(Oid atomic, const Value& value) {
  if (snapshot_mode()) {
    return Status::PreconditionFailed("Put in snapshot-read transaction");
  }
  auto node_r = BeginAction(atomic, generic_ops::kPut, {value},
                            /*is_write=*/true, /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  NoteWrite(atomic, /*is_set=*/false);
  Result<Value> old = store_->Get(atomic);
  if (!old.ok()) {
    AbortAction(node);
    return old.status();
  }
  Value old_value = old.ValueOrDie();
  // Write-ahead: the before-image undo record must precede the physical
  // redo record (which store_->Put emits through the store listener) in
  // the log — a crash between the two would otherwise replay the write
  // with no undo information. The Get above proved the Put will apply;
  // should it still fail, the logged undo rewrites the unchanged value.
  if (logger_ != nullptr) logger_->OnLeafPut(*node, old_value);
  Status st = store_->Put(atomic, value);
  if (!st.ok()) {
    AbortAction(node);
    return st;
  }
  // Physical leaf undo. Sound *before* the enclosing method commits: until
  // then no other transaction can reach this atom (a Case-2 wait requires a
  // *committed* commuting ancestor). Once the enclosing method commits, the
  // method's registered semantic inverse takes over (inverse_is_total stops
  // the rollback recursion), so this closure is never misused to wipe out a
  // commuting update of another transaction.
  CommitAction(
      node,
      [this, atomic, old_value]() {
        Status undo = Put(atomic, old_value);
        if (!undo.ok()) {
          SEMCC_LOG(Error) << "leaf undo Put failed: " << undo.ToString();
        }
      },
      true);
  return Status::OK();
}

Status TxnCtx::SetInsert(Oid set, const Value& key, Oid member) {
  if (snapshot_mode()) {
    return Status::PreconditionFailed("Insert in snapshot-read transaction");
  }
  auto node_r = BeginAction(set, generic_ops::kInsert,
                            {key, Value::Ref(member)}, /*is_write=*/true,
                            /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  NoteWrite(set, /*is_set=*/true);
  // Probe so the undo record below is only logged for an insert that will
  // apply (a logged undo for a refused duplicate insert would make restart
  // remove the pre-existing member). The leaf write lock makes the probe
  // race-free.
  Result<Oid> existing = store_->SetSelect(set, key);
  if (existing.ok()) {
    AbortAction(node);
    return Status::AlreadyExists("duplicate key " + key.ToString());
  }
  if (!existing.status().IsNotFound()) {
    AbortAction(node);
    return existing.status();
  }
  // Write-ahead: undo record before the physical redo record (see Put).
  if (logger_ != nullptr) logger_->OnLeafSetInsert(*node);
  Status st = store_->SetInsert(set, key, member);
  if (!st.ok()) {
    AbortAction(node);
    return st;
  }
  CommitAction(
      node,
      [this, set, key]() {
        Status undo = SetRemove(set, key);
        if (!undo.ok()) {
          SEMCC_LOG(Error) << "leaf undo SetRemove failed: " << undo.ToString();
        }
      },
      true);
  return Status::OK();
}

Status TxnCtx::SetRemove(Oid set, const Value& key) {
  if (snapshot_mode()) {
    return Status::PreconditionFailed("Remove in snapshot-read transaction");
  }
  auto node_r = BeginAction(set, generic_ops::kRemove, {key},
                            /*is_write=*/true, /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  NoteWrite(set, /*is_set=*/true);
  Result<Oid> member = store_->SetSelect(set, key);
  if (!member.ok()) {
    AbortAction(node);
    return member.status();
  }
  Oid saved_member = member.ValueOrDie();
  // Write-ahead: undo record before the physical redo record (see Put).
  // The SetSelect above proved the remove will apply; recovery tolerates
  // a re-insert of a still-present member just in case.
  if (logger_ != nullptr) logger_->OnLeafSetRemove(*node, saved_member);
  Status st = store_->SetRemove(set, key);
  if (!st.ok()) {
    AbortAction(node);
    return st;
  }
  CommitAction(
      node,
      [this, set, key, saved_member]() {
        Status undo = SetInsert(set, key, saved_member);
        if (!undo.ok()) {
          SEMCC_LOG(Error) << "leaf undo SetInsert failed: " << undo.ToString();
        }
      },
      true);
  return Status::OK();
}

Result<Oid> TxnCtx::SetSelect(Oid set, const Value& key) {
  auto node_r = BeginAction(set, generic_ops::kSelect, {key},
                            /*is_write=*/false, /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  uint64_t observed = 0;
  Result<Oid> member =
      snapshot_mode()
          ? versions_->ReadSetSelect(set, key, root()->snapshot_ts(),
                                     &observed)
          : store_->SetSelect(set, key);
  if (!member.ok()) {
    AbortAction(node);
    return member;
  }
  if (snapshot_mode()) {
    node->set_observed_ts(observed);
    TraceSnapshotRead(node, observed);
  }
  CommitAction(node, nullptr, false);
  return member;
}

Result<bool> TxnCtx::SetMember(Oid set, const Value& key) {
  auto node_r = BeginAction(set, generic_ops::kMember, {key},
                            /*is_write=*/false, /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  uint64_t observed = 0;
  Result<Oid> member =
      snapshot_mode()
          ? versions_->ReadSetSelect(set, key, root()->snapshot_ts(),
                                     &observed)
          : store_->SetSelect(set, key);
  if (!member.ok() && !member.status().IsNotFound()) {
    AbortAction(node);
    return member.status();
  }
  if (snapshot_mode()) {
    node->set_observed_ts(observed);
    TraceSnapshotRead(node, observed);
  }
  CommitAction(node, nullptr, false);
  return member.ok();
}

Result<std::vector<std::pair<Value, Oid>>> TxnCtx::SetRangeScan(
    Oid set, const Value& lo, const Value& hi) {
  auto node_r = BeginAction(set, generic_ops::kRangeScan, {lo, hi},
                            /*is_write=*/false, /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  uint64_t observed = 0;
  auto members =
      snapshot_mode()
          ? versions_->ReadSetScan(set, root()->snapshot_ts(), &observed)
          : store_->SetScan(set);
  if (!members.ok()) {
    AbortAction(node);
    return members;
  }
  // Filter to [lo, hi] after the physical scan: the store has no ordered
  // index, so the range semantics (and the narrower lock) live here.
  std::vector<std::pair<Value, Oid>> in_range;
  for (auto& [key, oid] : members.ValueOrDie()) {
    if (key < lo || hi < key) continue;
    in_range.emplace_back(key, oid);
  }
  if (snapshot_mode()) {
    node->set_observed_ts(observed);
    TraceSnapshotRead(node, observed);
  }
  CommitAction(node, nullptr, false);
  return in_range;
}

Result<std::vector<std::pair<Value, Oid>>> TxnCtx::SetScan(Oid set) {
  auto node_r = BeginAction(set, generic_ops::kScan, {}, /*is_write=*/false,
                            /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  uint64_t observed = 0;
  auto members =
      snapshot_mode()
          ? versions_->ReadSetScan(set, root()->snapshot_ts(), &observed)
          : store_->SetScan(set);
  if (!members.ok()) {
    AbortAction(node);
    return members;
  }
  if (snapshot_mode()) {
    node->set_observed_ts(observed);
    TraceSnapshotRead(node, observed);
  }
  CommitAction(node, nullptr, false);
  return members;
}

Result<size_t> TxnCtx::SetSize(Oid set) {
  auto node_r = BeginAction(set, generic_ops::kSize, {}, /*is_write=*/false,
                            /*is_leaf=*/true);
  if (!node_r.ok()) return node_r.status();
  SubTxn* node = node_r.ValueOrDie();
  uint64_t observed = 0;
  auto size = snapshot_mode()
                  ? versions_->ReadSetSize(set, root()->snapshot_ts(),
                                           &observed)
                  : store_->SetSize(set);
  if (!size.ok()) {
    AbortAction(node);
    return size;
  }
  if (snapshot_mode()) {
    node->set_observed_ts(observed);
    TraceSnapshotRead(node, observed);
  }
  CommitAction(node, nullptr, false);
  return size;
}

// --- structure --------------------------------------------------------------

Result<Oid> TxnCtx::Component(Oid tuple, const std::string& name) {
  return store_->Component(tuple, name);
}

Result<Value> TxnCtx::GetField(Oid tuple, const std::string& name) {
  SEMCC_ASSIGN_OR_RETURN(Oid comp, Component(tuple, name));
  return Get(comp);
}

Status TxnCtx::PutField(Oid tuple, const std::string& name, const Value& v) {
  SEMCC_ASSIGN_OR_RETURN(Oid comp, Component(tuple, name));
  return Put(comp, v);
}

Result<Oid> TxnCtx::CreateAtomic(TypeId type, const Value& initial) {
  if (snapshot_mode()) {
    return Status::PreconditionFailed("Create in snapshot-read transaction");
  }
  SEMCC_ASSIGN_OR_RETURN(Oid oid, store_->CreateAtomic(type, initial));
  // Creation needs no lock: the new object is unreachable by other
  // transactions until linked into a locked set. The enclosing method's
  // semantic inverse destroys it; no per-leaf undo node is recorded.
  return oid;
}

Result<Oid> TxnCtx::CreateTuple(
    TypeId type, std::vector<std::pair<std::string, Oid>> components) {
  if (snapshot_mode()) {
    return Status::PreconditionFailed("Create in snapshot-read transaction");
  }
  return store_->CreateTuple(type, std::move(components));
}

Result<Oid> TxnCtx::CreateSet(TypeId type) {
  if (snapshot_mode()) {
    return Status::PreconditionFailed("Create in snapshot-read transaction");
  }
  return store_->CreateSet(type);
}

// --- compensation -----------------------------------------------------------

void TxnCtx::Rollback() {
  // Drop the tree's grant cache before compensations run: published slots
  // assume an abort-free tree, and compensating actions must take the full
  // queue-scan path (they are exempt from FCFS, §4.2 footnote 5).
  tree_->root()->ClearGrantCache();
  in_compensation_ = true;
  SubTxn* saved = current_;
  current_ = tree_->root();
  Compensate(tree_->root());
  current_ = saved;
  in_compensation_ = false;
}

void TxnCtx::Compensate(SubTxn* node) {
  std::vector<SubTxn*> children = node->Children();
  for (auto it = children.rbegin(); it != children.rend(); ++it) {
    SubTxn* child = *it;
    if (child->compensation()) continue;  // never compensate compensations
    if (child->committed()) {
      if (child->inverse && child->inverse_is_total) {
        child->inverse();
      } else if (child->inverse) {
        Compensate(child);
        child->inverse();
      } else {
        // Read-only or structural: recurse in case update leaves hide below.
        Compensate(child);
      }
    } else {
      // Aborted mid-flight: compensate whatever committed beneath it.
      Compensate(child);
    }
  }
}

}  // namespace semcc
