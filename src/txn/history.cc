#include "txn/history.h"

#include <algorithm>
#include <map>

namespace semcc {

std::string ActionRecord::Label() const {
  std::string out = method;
  out += "(@" + std::to_string(object);
  for (const Value& a : args) out += ", " + a.ToString();
  out += ")";
  return out;
}

const ActionRecord* TxnRecord::Find(TxnId action_id) const {
  for (const ActionRecord& a : actions) {
    if (a.id == action_id) return &a;
  }
  return nullptr;
}

void HistoryRecorder::RecordTree(TxnTree* tree, bool committed) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  TxnRecord rec;
  SubTxn* root = tree->root();
  rec.id = root->id();
  rec.name = root->method();
  rec.committed = committed;
  rec.snapshot = root->snapshot();
  rec.snapshot_ts = root->snapshot_ts();
  for (SubTxn* node : tree->Nodes()) {
    ActionRecord a;
    a.id = node->id();
    a.parent_id = node->parent() ? node->parent()->id() : node->id();
    a.root_id = node->root()->id();
    a.depth = node->depth();
    a.object = node->object();
    a.type = node->type();
    a.method = node->method();
    a.args = node->args();
    a.grant_seq = node->grant_seq();
    a.end_seq = node->end_seq();
    a.final_state = node->state();
    a.compensation = node->compensation();
    a.observed_ts = node->observed_ts();
    rec.actions.push_back(std::move(a));
  }
  MutexLock guard(mu_);
  txns_.push_back(std::move(rec));
}

std::vector<TxnRecord> HistoryRecorder::Snapshot() const {
  MutexLock guard(mu_);
  return txns_;
}

size_t HistoryRecorder::size() const {
  MutexLock guard(mu_);
  return txns_.size();
}

void HistoryRecorder::Clear() {
  MutexLock guard(mu_);
  txns_.clear();
}

std::string FormatTxnTree(const TxnRecord& txn) {
  std::string out;
  std::map<TxnId, std::vector<const ActionRecord*>> children;
  const ActionRecord* root = nullptr;
  for (const ActionRecord& a : txn.actions) {
    if (a.id == a.parent_id) {
      root = &a;
    } else {
      children[a.parent_id].push_back(&a);
    }
  }
  if (root == nullptr) return out;
  struct Frame {
    const ActionRecord* node;
    int indent;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    out.append(static_cast<size_t>(f.indent) * 2, ' ');
    out += f.node->Label();
    out += " [" + std::to_string(f.node->grant_seq) + "," +
           std::to_string(f.node->end_seq) + "]";
    if (f.node->final_state == TxnState::kAborted) out += " (aborted)";
    if (f.node->compensation) out += " (compensation)";
    out += "\n";
    auto it = children.find(f.node->id);
    if (it != children.end()) {
      for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
        stack.push_back({*rit, f.indent + 1});
      }
    }
  }
  return out;
}

}  // namespace semcc
