// TxnCtx: the execution engine for open nested OODBS transactions
// (paper Figure 8, exec-transaction).
//
// Every operation on this context is one *action*: it creates a
// subtransaction node, requests the protocol-appropriate lock (blocking with
// a waits-for set until all blockers complete), executes, and completes the
// subtransaction — whereupon its locks become retained (semantic protocol),
// are anti-inherited (closed nested), or simply stay until top-level commit
// (flat 2PL).
//
// Method bodies receive the same context, so methods can invoke further
// methods on other objects or the same object (paper footnote 3), and
// transactions can freely *bypass* encapsulation by calling generic
// operations (Get/Put/Set*) on implementation objects directly — the
// situation the paper's protocol exists to handle.
#ifndef SEMCC_TXN_TXN_CONTEXT_H_
#define SEMCC_TXN_TXN_CONTEXT_H_

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cc/lock_manager.h"
#include "cc/subtxn.h"
#include "object/object_store.h"
#include "object/versioned_store.h"
#include "txn/method_registry.h"
#include "util/macros.h"

namespace semcc {

/// \brief Observer of transactional events, used by the write-ahead log for
/// multi-level recovery. All callbacks run on the transaction's own thread,
/// after the corresponding action committed.
class ActionLogger {
 public:
  virtual ~ActionLogger() = default;
  virtual void OnTxnBegin(TxnId txn) = 0;
  /// Must force the log (commit durability point).
  virtual void OnTxnCommit(TxnId txn) = 0;
  /// Written after compensation completed, so restart will not re-undo.
  virtual void OnTxnAbort(TxnId txn) = 0;
  virtual void OnMethodCommitted(const SubTxn& node, const Value& result,
                                 bool has_total_inverse) = 0;
  virtual void OnLeafPut(const SubTxn& node, const Value& before) = 0;
  virtual void OnLeafSetInsert(const SubTxn& node) = 0;
  virtual void OnLeafSetRemove(const SubTxn& node, Oid removed_member) = 0;
};

class TxnCtx {
 public:
  /// `versions` (the MVCC layer, ProtocolOptions::mvcc_reads) may be null;
  /// when present, writers report their write sets to it and a tree whose
  /// root carries a snapshot timestamp executes in snapshot-read mode:
  /// every action skips the lock manager entirely (grant/end seqs still
  /// come from its atomic clock), reads are served by the version store as
  /// of the snapshot, and any write or method invocation that is not
  /// read-only fails with PreconditionFailed.
  TxnCtx(ObjectStore* store, LockManager* lm, MethodRegistry* methods,
         TxnTree* tree, ActionLogger* logger = nullptr,
         VersionedObjectStore* versions = nullptr);
  SEMCC_DISALLOW_COPY_AND_ASSIGN(TxnCtx);

  // --- method invocation (non-leaf actions) ------------------------------

  /// Invoke a registered method on `obj`. Creates a subtransaction, acquires
  /// the semantic lock derived from (method, args), runs the body, and
  /// commits the subtransaction (converting its subtree's locks into
  /// retained locks).
  Result<Value> Invoke(Oid obj, const std::string& method, Args args);

  // --- generic operations (leaf actions; also the "bypass" surface) ------

  Result<Value> Get(Oid atomic);
  Status Put(Oid atomic, const Value& value);
  Status SetInsert(Oid set, const Value& key, Oid member);
  Status SetRemove(Oid set, const Value& key);
  Result<Oid> SetSelect(Oid set, const Value& key);
  Result<std::vector<std::pair<Value, Oid>>> SetScan(Oid set);
  Result<size_t> SetSize(Oid set);
  /// Membership test: Select that locks under the generic Member read mode
  /// and maps NotFound to false instead of an error.
  Result<bool> SetMember(Oid set, const Value& key);
  /// Members with key in the closed range [lo, hi] (Value total order),
  /// locked under the generic RangeScan mode — with keyrange_locks on, the
  /// lock carries exactly [lo, hi] instead of the whole key space.
  Result<std::vector<std::pair<Value, Oid>>> SetRangeScan(Oid set,
                                                          const Value& lo,
                                                          const Value& hi);

  // --- structure ----------------------------------------------------------

  /// Component selection t.c — pure navigation, no lock (structure is
  /// immutable after creation).
  Result<Oid> Component(Oid tuple, const std::string& name);
  /// Shorthand: Get(Component(tuple, name)).
  Result<Value> GetField(Oid tuple, const std::string& name);
  /// Shorthand: Put(Component(tuple, name), v).
  Status PutField(Oid tuple, const std::string& name, const Value& v);

  /// Create objects inside the transaction; compensated by destruction.
  Result<Oid> CreateAtomic(TypeId type, const Value& initial);
  Result<Oid> CreateTuple(TypeId type,
                          std::vector<std::pair<std::string, Oid>> components);
  Result<Oid> CreateSet(TypeId type);

  // --- introspection ------------------------------------------------------

  SubTxn* current() const { return current_; }
  SubTxn* root() const { return tree_->root(); }
  ObjectStore* store() const { return store_; }
  bool abort_requested() const { return root()->abort_requested(); }

  /// True when this tree executes against an MVCC snapshot (zero locks).
  bool snapshot_mode() const {
    return versions_ != nullptr && root()->snapshot();
  }
  /// Objects this transaction reported to the version store (first-write
  /// dedup). The transaction manager passes this to
  /// VersionedObjectStore::OnTxnEnd once the tree is finished.
  const std::set<Oid>& write_set() const { return written_; }

  /// Compensate all committed work of the tree, in reverse completion order,
  /// running inverses as new subtransactions of this (same) transaction.
  /// Called by the transaction manager on abort; must run on the
  /// transaction's own thread.
  void Rollback();

 private:
  /// Begin an action: node + lock. Returns nullptr result status on failure.
  Result<SubTxn*> BeginAction(Oid obj, const std::string& method, Args args,
                              bool is_write, bool is_leaf);
  Status AcquireForAction(SubTxn* node, bool is_write, bool is_leaf);
  void CommitAction(SubTxn* node, std::function<void()> inverse,
                    bool inverse_is_total);
  void AbortAction(SubTxn* node);
  void Compensate(SubTxn* node);

  /// First-write hook: report `oid` to the version store once per
  /// transaction, BEFORE the physical write (the ordering the snapshot
  /// readers' live-store fallback depends on). No-op without MVCC.
  void NoteWrite(Oid oid, bool is_set);
  /// Emit a snapshot-read trace event for a completed snapshot read.
  void TraceSnapshotRead(const SubTxn* node, uint64_t observed_ts);

  ObjectStore* const store_;
  LockManager* const lm_;
  MethodRegistry* const methods_;
  TxnTree* const tree_;
  ActionLogger* const logger_;
  VersionedObjectStore* const versions_;
  SubTxn* current_;
  bool in_compensation_ = false;
  std::set<Oid> written_;
};

}  // namespace semcc

#endif  // SEMCC_TXN_TXN_CONTEXT_H_
