#include "txn/method_registry.h"

namespace semcc {

Status MethodRegistry::Register(MethodDef def) {
  if (def.name.empty()) return Status::InvalidArgument("empty method name");
  if (!def.body) return Status::InvalidArgument("method has no body");
  if (!def.read_only && !def.inverse) {
    return Status::InvalidArgument(
        "update method " + def.name +
        " needs a semantic inverse (open nested transactions compensate "
        "committed subtransactions; physical undo would wipe out commuting "
        "updates of other transactions)");
  }
  MutexLock guard(mu_);
  auto key = std::make_pair(def.type, def.name);
  if (methods_.count(key) > 0) {
    return Status::AlreadyExists("method already registered: " + def.name);
  }
  methods_[key] = std::move(def);
  return Status::OK();
}

Result<const MethodDef*> MethodRegistry::Find(TypeId type,
                                              const std::string& name) const {
  MutexLock guard(mu_);
  auto it = methods_.find(std::make_pair(type, name));
  if (it == methods_.end()) {
    return Status::NotFound("no method " + name + " on type " +
                            std::to_string(type));
  }
  return &it->second;
}

bool MethodRegistry::Has(TypeId type, const std::string& name) const {
  MutexLock guard(mu_);
  return methods_.count(std::make_pair(type, name)) > 0;
}

std::vector<std::string> MethodRegistry::MethodsOf(TypeId type) const {
  MutexLock guard(mu_);
  std::vector<std::string> out;
  for (const auto& [key, def] : methods_) {
    if (key.first == type) out.push_back(key.second);
  }
  return out;
}

}  // namespace semcc
