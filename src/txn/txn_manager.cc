#include "txn/txn_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "cc/adaptive_controller.h"
#include "object/schema.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/trace.h"

namespace semcc {

namespace {

/// Threads, not shards, contend on transaction counters; 16 stripes keeps
/// typical bench thread counts (≤ 64) from sharing cache lines too often
/// without burning memory per manager.
constexpr size_t kTxnCounterStripes = 16;

void EmitTxnEvent(trace::EventKind kind, TxnId root_id,
                  const std::string& name, uint64_t value) {
  trace::Event e;
  e.kind = static_cast<uint8_t>(kind);
  e.txn = root_id;
  e.root = root_id;
  e.value = value;
  e.set_method(name);
  trace::Emit(e);
}

}  // namespace

std::string TxnStats::ToString() const {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "begins=%llu commits=%llu aborts=%llu retries=%llu app_errors=%llu",
      static_cast<unsigned long long>(begins),
      static_cast<unsigned long long>(commits),
      static_cast<unsigned long long>(aborts),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(app_errors));
  return buf;
}

std::string TxnStats::ToJson() const {
  metrics::JsonWriter w;
  w.Field("begins", begins);
  w.Field("commits", commits);
  w.Field("aborts", aborts);
  w.Field("retries", retries);
  w.Field("app_errors", app_errors);
  return w.Close();
}

TxnManager::TxnManager(ObjectStore* store, LockManager* lm,
                       MethodRegistry* methods, HistoryRecorder* recorder,
                       ActionLogger* logger, VersionedObjectStore* versions)
    : store_(store),
      lm_(lm),
      methods_(methods),
      recorder_(recorder),
      logger_(logger),
      versions_(versions),
      counters_(kTxnCounterStripes, kCtrCount) {}

TxnStats TxnManager::stats() const {
  TxnStats s;
  s.begins = counters_.Sum(kCtrBegins);
  s.commits = counters_.Sum(kCtrCommits);
  s.aborts = counters_.Sum(kCtrAborts);
  s.retries = counters_.Sum(kCtrRetries);
  s.app_errors = counters_.Sum(kCtrAppErrors);
  return s;
}

Result<Value> TxnManager::RunAttempt(const std::string& name, const Body& body,
                                     TxnId priority) {
  TxnTree tree(TxnTree::NextId(), name, kDatabaseOid, Schema::kDatabaseTypeId);
  SubTxn* root = tree.root();
  if (priority != 0) root->set_priority(priority);
  root->set_grant_seq(lm_->NextSeq());
  // Adaptive mode: pin the current mode snapshot for this whole attempt so
  // every Acquire in the tree sees one consistent per-type mode assignment
  // (the controller's flips wait for all pins to drain).
  const ModeSnapshot* pinned = nullptr;
  if (controller_ != nullptr) {
    pinned = controller_->Pin();
    root->set_mode_snapshot(pinned);
  }
  TxnCtx ctx(store_, lm_, methods_, &tree, logger_, versions_);

  const size_t stripe = metrics::ThreadStripeSlot();
  const bool tracing = trace::Active(lm_->options().trace);
  counters_.Inc(stripe, kCtrBegins);
  if (tracing) EmitTxnEvent(trace::EventKind::kTxnBegin, root->id(), name, 0);

  if (logger_ != nullptr) logger_->OnTxnBegin(root->id());
  Result<Value> result = body(ctx);
  const bool commit = result.ok() && !root->abort_requested();
  if (commit) {
    root->set_state(TxnState::kCommitted);
    lm_->OnSubTxnCompleted(root);
    // Hand the finished write set to the version store BEFORE the locks go:
    // once ReleaseTree runs, another writer may start mutating these objects
    // and the install of this (or an entangled) commit group must know this
    // transaction is no longer an active writer.
    if (versions_ != nullptr) versions_->OnTxnEnd(root->id(), ctx.write_set());
    if (recorder_ != nullptr) recorder_->RecordTree(&tree, /*committed=*/true);
    if (logger_ != nullptr) logger_->OnTxnCommit(root->id());
    lm_->ReleaseTree(root);
    if (pinned != nullptr) controller_->Unpin(pinned);
    counters_.Inc(stripe, kCtrCommits);
    if (tracing) {
      EmitTxnEvent(trace::EventKind::kTxnCommit, root->id(), name, 0);
    }
    return result;
  }

  // Abort: compensate committed subtransactions in reverse order (the
  // compensating actions run under the same protocol, as subtransactions of
  // this same transaction), then release everything.
  ctx.Rollback();
  root->set_state(TxnState::kAborted);
  lm_->OnSubTxnCompleted(root);
  // Aborted trees publish too (after compensation the live state is a
  // committed-equivalent state; see versioned_store.h) — and the writer
  // counts MUST be released either way or entangled commits never install.
  if (versions_ != nullptr) versions_->OnTxnEnd(root->id(), ctx.write_set());
  if (recorder_ != nullptr) recorder_->RecordTree(&tree, /*committed=*/false);
  if (logger_ != nullptr) logger_->OnTxnAbort(root->id());
  lm_->ReleaseTree(root);
  if (pinned != nullptr) controller_->Unpin(pinned);
  counters_.Inc(stripe, kCtrAborts);
  if (tracing) EmitTxnEvent(trace::EventKind::kTxnAbort, root->id(), name, 0);
  if (result.ok()) {
    return Status::Aborted("abort requested (deadlock victim)");
  }
  return result.status();
}

Result<Value> TxnManager::RunOnce(const std::string& name, const Body& body) {
  return RunAttempt(name, body, /*priority=*/0);
}

Result<Value> TxnManager::RunSnapshot(const std::string& name,
                                      const Body& body) {
  SEMCC_CHECK(versions_ != nullptr)
      << "RunSnapshot requires ProtocolOptions::mvcc_reads";
  TxnTree tree(TxnTree::NextId(), name, kDatabaseOid, Schema::kDatabaseTypeId);
  SubTxn* root = tree.root();
  root->set_grant_seq(lm_->NextSeq());
  const uint64_t snapshot_ts = versions_->BeginSnapshot();
  root->set_snapshot_ts(snapshot_ts);
  TxnCtx ctx(store_, lm_, methods_, &tree, /*logger=*/nullptr, versions_);

  const size_t stripe = metrics::ThreadStripeSlot();
  const bool tracing = trace::Active(lm_->options().trace);
  counters_.Inc(stripe, kCtrBegins);
  if (tracing) {
    EmitTxnEvent(trace::EventKind::kTxnBegin, root->id(), name, snapshot_ts);
  }

  Result<Value> result = body(ctx);
  // Deregister the snapshot no matter what — a leaked registration pins the
  // GC watermark forever.
  versions_->EndSnapshot(snapshot_ts);

  const bool commit = result.ok();
  root->set_state(commit ? TxnState::kCommitted : TxnState::kAborted);
  root->set_end_seq(lm_->NextSeq());
  if (recorder_ != nullptr) recorder_->RecordTree(&tree, commit);
  if (commit) {
    counters_.Inc(stripe, kCtrCommits);
    if (tracing) {
      EmitTxnEvent(trace::EventKind::kTxnCommit, root->id(), name,
                   snapshot_ts);
    }
    return result;
  }
  // With no locks there is no system abort and nothing to compensate
  // (writes are rejected before they apply): the error is the body's own.
  counters_.Inc(stripe, kCtrAborts);
  counters_.Inc(stripe, kCtrAppErrors);
  if (tracing) {
    EmitTxnEvent(trace::EventKind::kTxnAbort, root->id(), name, snapshot_ts);
  }
  return result;
}

namespace {
bool Retryable(const Status& st) {
  return st.IsDeadlock() || st.IsAborted() || st.IsTimedOut();
}
}  // namespace

Result<Value> TxnManager::Run(const std::string& name, const Body& body,
                              int max_retries) {
  thread_local Random rng(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
  // Retries keep the first attempt's deadlock-victim rank so they age
  // relative to newcomers (no starvation).
  TxnId priority = 0;
  for (int attempt = 0;; ++attempt) {
    if (priority == 0) priority = TxnTree::NextId();
    Result<Value> r = RunAttempt(name, body, priority);
    if (r.ok()) return r;
    if (!Retryable(r.status()) || attempt >= max_retries) {
      if (!Retryable(r.status())) {
        counters_.Inc(metrics::ThreadStripeSlot(), kCtrAppErrors);
      }
      return r;
    }
    counters_.Inc(metrics::ThreadStripeSlot(), kCtrRetries);
    if (trace::Active(lm_->options().trace)) {
      EmitTxnEvent(trace::EventKind::kTxnRetry, priority, name,
                   static_cast<uint64_t>(attempt + 1));
    }
    // Exponential backoff with a saturating shift (so a large attempt count
    // cannot overflow the multiplier) and a hard ceiling on the window (so
    // a retry storm never sleeps for seconds). Jitter spans the upper half
    // of the window: the floor keeps a backed-off victim from immediately
    // re-colliding, the randomness desynchronizes concurrent victims.
    constexpr int kMaxBackoffShift = 6;
    constexpr uint64_t kMaxBackoffWindowUs = 10000;
    const int shift = std::min(attempt, kMaxBackoffShift);
    const uint64_t window_us =
        std::min<uint64_t>(100ull << shift, kMaxBackoffWindowUs);
    std::this_thread::sleep_for(std::chrono::microseconds(
        window_us / 2 + rng.Uniform(window_us / 2 + 1)));
  }
}

}  // namespace semcc
