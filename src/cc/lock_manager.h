// The semantic lock manager for open nested OODBS transactions.
//
// Implements the locking protocol of paper §4.2 (Figures 8 and 9):
//  * every action acquires a semantic lock (method name + parameters) on the
//    object it operates on;
//  * locks are never dropped at subtransaction completion — they become
//    *retained* (derived here from the owning subtransaction's completion
//    state) and stay until top-level commit, so bypassing accesses still
//    collide with them;
//  * the conflict test `test-conflict(h, r)` walks the ancestor chains of
//    holder and requester looking for a commuting pair on the same object:
//    Case 1 (pair found, holder-side ancestor committed) grants immediately;
//    Case 2 (pair found, still active) waits for that subtransaction's
//    completion; otherwise the requester waits for the holder's top-level
//    commit;
//  * blocked requests are granted in FCFS order (paper footnote 5): a
//    request also tests against earlier-queued requests.
//
// The same lock table also hosts the conventional baselines (closed nested
// transactions [Mo85], flat strict 2PL at object/record/page granularity)
// selected via ProtocolOptions, so benchmarks compare protocols on identical
// infrastructure.
//
// Concurrency structure (see DESIGN.md §5, "Lock-manager internals"): the
// lock table is split into ProtocolOptions::lock_table_shards shards, each
// with its own mutex + condvar guarding that shard's queues, while the
// waits-for graph, deadlock detection, and the lock-order diagnostics live
// behind a separate graph mutex. The lock order is
//     shard.mu  →  graph_mu_  →  SubTxn::children_mu_
// and a thread never holds two shard mutexes at once (the stop-the-world
// invariant sweep, which locks every shard in index order while holding
// nothing else, is the only exception). Waiters sleep on their shard's
// condvar and are woken only when an event (completion, release, abort
// request) can actually unblock that shard — there is no broadcast-and-poll
// path. With ProtocolOptions::debug_lock_checks the manager additionally
// re-derives the protocol invariants on every grant/release (see
// cc/lock_invariants.h).
#ifndef SEMCC_CC_LOCK_MANAGER_H_
#define SEMCC_CC_LOCK_MANAGER_H_

#include <atomic>
#include <bitset>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/compatibility.h"
#include "cc/lock_invariants.h"
#include "cc/method_interner.h"
#include "cc/subtxn.h"
#include "storage/record_manager.h"
#include "util/annotations.h"
#include "util/histogram.h"
#include "util/macros.h"
#include "util/status.h"

namespace semcc {

/// \brief Concurrency-control protocol selector.
enum class Protocol : int {
  /// The paper's protocol: semantic locks on every action, open nested
  /// transactions, retained locks + commutative-ancestor relief (Fig. 8/9).
  kSemanticONT = 0,
  /// Closed nested transactions [Mo85]: read/write locks at the leaves,
  /// anti-inherited by the parent on subtransaction commit; no semantics.
  kClosedNested = 1,
  /// Conventional flat strict 2PL: read/write locks held to top-level
  /// commit, at the granularity in ProtocolOptions::granularity.
  kFlat2PL = 2,
};

const char* ProtocolName(Protocol p);

/// \brief Lock-name space for the flat baselines.
enum class LockGranularity : int { kObject = 0, kRecord = 1, kPage = 2 };

const char* GranularityName(LockGranularity g);

struct ProtocolOptions {
  Protocol protocol = Protocol::kSemanticONT;
  LockGranularity granularity = LockGranularity::kObject;

  /// kSemanticONT only. If false, a completed subtransaction's descendant
  /// locks are dropped (the §3 protocol). This is the *incorrect-under-
  /// bypassing* variant that Figure 5 exposes; it exists for that experiment
  /// and for ablations.
  bool retain_locks = true;

  /// kSemanticONT only. If false, test-conflict skips the commutative-
  /// ancestor walk (no Case 1 / Case 2 relief): every retained-lock conflict
  /// waits for top-level commit. Correct but needlessly blocking; ablation.
  bool ancestor_walk = true;

  /// Upper bound on one lock wait; expiring returns TimedOut (a safety net —
  /// with deadlock detection on, waits should resolve).
  std::chrono::milliseconds wait_timeout{10000};

  bool deadlock_detection = true;

  /// Number of lock-table shards (clamped to a power of two in [1, 256]).
  /// 1 reproduces the pre-sharding single-mutex behavior for ablations.
  int lock_table_shards = 16;

  /// Debug-mode lock-invariant checker (cc/lock_invariants.h): re-derive the
  /// protocol invariants on every grant/release and track the lock-order
  /// graph. Default: on in debug builds and whenever the tree is compiled
  /// with -DSEMCC_DEBUG_LOCK_CHECKS; off in release builds, where the hooks
  /// cost one predicted-false branch per grant.
#if defined(SEMCC_DEBUG_LOCK_CHECKS) || !defined(NDEBUG)
  bool debug_lock_checks = true;
#else
  bool debug_lock_checks = false;
#endif

  /// Fail fast (SEMCC_CHECK) on a detected *protocol* violation instead of
  /// counting + logging. Lock-order inversions are never fatal: they are
  /// legal under this protocol (the deadlock detector resolves them) and
  /// tracked as a diagnostic only.
  bool invariant_violations_fatal = false;
};

/// \brief What a lock names: an object, a record, or a page.
struct LockTarget {
  enum class Space : uint8_t { kObject = 0, kRecord = 1, kPage = 2 };
  Space space = Space::kObject;
  uint64_t key = 0;

  static LockTarget ForObject(Oid oid) { return {Space::kObject, oid}; }
  static LockTarget ForRecord(const Rid& rid) {
    return {Space::kRecord,
            (static_cast<uint64_t>(rid.page_id) << 16) | rid.slot};
  }
  static LockTarget ForPage(PageId page) {
    return {Space::kPage, static_cast<uint64_t>(page)};
  }

  bool operator==(const LockTarget& other) const = default;
  std::string ToString() const;
};

/// Hash over (space, key) with a splitmix64 finalizer so that the
/// structured keys this system produces — sequential Oids, Rids whose low
/// 16 bits are a slot, page ids — spread over both hash-table buckets and
/// lock-table shards (which use the LOW bits). A multiplicative-only hash
/// clusters them: e.g. `ForRecord({page, 0})` keys are all multiples of
/// 1<<16 and would land every record of slot 0 in shard 0.
struct LockTargetHash {
  size_t operator()(const LockTarget& t) const {
    uint64_t x = (t.key << 2) ^ static_cast<uint64_t>(t.space);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// \brief Why test-conflict produced its verdict (stats + scenario tests).
enum class ConflictOutcome : int {
  kNoLock = 0,      ///< no other lock present
  kSameTxn = 1,     ///< holder belongs to the same top-level transaction
  kCommute = 2,     ///< invocations commute — no conflict (semantic grant)
  kCase1Grant = 3,  ///< commuting ancestor pair, holder side committed
  kCase2Wait = 4,   ///< commuting ancestor pair, still active: wait for it
  kRootWait = 5,    ///< no commuting pair: wait for top-level commit
  kSharedGrant = 6, ///< read/read compatibility (baselines)
  kHolderWait = 7,  ///< baseline conflict: wait for the holder
};

/// \brief Aggregated lock-manager statistics (all counters cumulative).
struct LockStats {
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> blocked_acquires{0};
  std::atomic<uint64_t> case1_grants{0};
  std::atomic<uint64_t> case2_waits{0};
  std::atomic<uint64_t> root_waits{0};
  std::atomic<uint64_t> commute_grants{0};
  std::atomic<uint64_t> deadlocks{0};
  std::atomic<uint64_t> timeouts{0};
  Histogram wait_micros;

  std::string ToString() const;
};

/// \brief The lock manager. One instance per database.
class LockManager {
 public:
  /// Hard upper bound on lock_table_shards (size of the wake bitmask).
  static constexpr int kMaxShards = 256;

  LockManager(const ProtocolOptions& options, CompatibilityRegistry* compat);
  ~LockManager();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(LockManager);

  /// Acquire a lock for action `t` on `target` (Figure 8: "a lock on
  /// t.object is requested in a mode that is derived from t.method and
  /// possibly the actual parameters of t"). Blocks until granted; returns
  ///  - OK          granted,
  ///  - Deadlock    t's transaction was chosen as deadlock victim,
  ///  - Aborted     t's transaction was asked to abort while waiting,
  ///  - TimedOut    the wait exceeded ProtocolOptions::wait_timeout.
  ///
  /// `is_write` is the read/write classification used by the conventional
  /// baselines; the semantic protocol ignores it.
  Status Acquire(SubTxn* t, const LockTarget& target, bool is_write);

  /// Figure 8, on completion of subtransaction t: convert/release per
  /// protocol and wake exactly the waiters whose waits-for sets contain t
  /// (waits-for sets shrink on *completion*).
  void OnSubTxnCompleted(SubTxn* t);

  /// Top-level end ("release all locks"): drop every lock owned by the tree
  /// rooted at `root` and wake affected waiters. Call before destroying the
  /// tree.
  void ReleaseTree(SubTxn* root);

  /// Flag `root` for abort and wake its blocked actions so they return
  /// Aborted promptly. External abort requests MUST go through here (not
  /// through SubTxn::RequestAbort directly): the flag is published under the
  /// graph mutex, which is what lets sleeping waiters observe it without
  /// polling.
  void OnAbortRequested(SubTxn* root);

  /// Logical timestamp source shared with the history recorder.
  uint64_t NextSeq() { return clock_.fetch_add(1) + 1; }

  LockStats& stats() { return stats_; }
  const ProtocolOptions& options() const { return options_; }

  /// Actual shard count after clamping (power of two in [1, kMaxShards]).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Shard index `target` maps to — exposed for dispersion tests.
  uint32_t ShardIndexOf(const LockTarget& target) const {
    return static_cast<uint32_t>(LockTargetHash{}(target)) & shard_mask_;
  }

  /// Cumulative counters of the debug invariant checker (all zero when
  /// ProtocolOptions::debug_lock_checks is off).
  const LockInvariantStats& invariant_stats() const { return inv_stats_; }

  /// Run the queue + wait-graph invariant sweep immediately, regardless of
  /// debug_lock_checks; returns the cumulative protocol-violation count
  /// afterwards. Stop-the-world: locks every shard (in index order) plus the
  /// graph mutex. Intended for tests (e.g. at quiescent points).
  uint64_t CheckInvariantsNow();

  /// Locks currently held/queued on `target` — introspection for tests.
  struct LockInfo {
    TxnId owner_id;
    TxnId root_id;
    std::string method;
    bool granted;
    bool retained;  ///< owner completed but lock still present
  };
  std::vector<LockInfo> LocksOn(const LockTarget& target) const;

  /// Number of waiting (blocked) acquires right now.
  size_t NumWaiters() const SEMCC_EXCLUDES(graph_mu_);

 private:
  struct LockEntry {
    SubTxn* acquirer;  ///< the action that requested the lock (mode source)
    SubTxn* owner;     ///< current owner (differs from acquirer only after
                       ///< closed-nested anti-inheritance)
    MethodId method_id;  ///< acquirer->method_id(), cached for locality
    bool is_write;
    bool granted;
    uint64_t seq;  ///< FCFS arrival order (per shard)
  };
  struct LockQueue {
    std::list<LockEntry> entries;
  };

  /// One lock-table shard: a slice of the target space with its own mutex
  /// and condvar. Waiters on this shard's queues sleep on `cv`; events wake
  /// a shard only when they may unblock one of its queues.
  struct LockShard {
    mutable Mutex mu;
    CondVar cv;
    std::unordered_map<LockTarget, LockQueue, LockTargetHash> table
        SEMCC_GUARDED_BY(mu);
    uint64_t next_entry_seq SEMCC_GUARDED_BY(mu) = 0;
  };

  /// Set of shard indices to notify once all locks are dropped.
  using ShardSet = std::bitset<kMaxShards>;

  /// A blocked requester's registration in the waits-for graph.
  struct WaitRecord {
    std::vector<SubTxn*> blockers;  ///< the completions it awaits
    uint32_t shard = 0;             ///< where its condvar wait parks
  };

  /// Result of one blocker scan over a queue; reused across wait-loop
  /// iterations so steady-state re-scans allocate nothing.
  struct ScanResult {
    std::vector<SubTxn*> blockers;  ///< deduplicated verdicts
    /// Blockers that were still incomplete at scan time: their *completion*
    /// is the wake event, so the pre-sleep revalidation re-checks them. A
    /// blocker already completed at scan time is awaiting ReleaseTree,
    /// which purges queue entries under this shard's mutex and therefore
    /// cannot be missed.
    std::vector<SubTxn*> completion_watch;
    void Clear() {
      blockers.clear();
      completion_watch.clear();
    }
  };

  LockShard& ShardFor(const LockTarget& target) const {
    return *shards_[ShardIndexOf(target)];
  }

  /// Notify the condvars of every shard in `s`. Must be called with no lock
  /// manager mutex held: it locks each shard's mutex (one at a time) before
  /// notifying, which guarantees delivery to any waiter that registered
  /// before the triggering event — a registering waiter holds its shard
  /// mutex continuously from its blocker scan until the condvar wait parks
  /// it, so we cannot slip into that window.
  void NotifyShards(const ShardSet& s);

  /// The paper's test-conflict(h, r): nil (nullptr) or the (sub)transaction
  /// whose completion r must wait for. Sets *why. Reads only SubTxn state
  /// (atomics) and the compatibility registry — no lock-manager mutex.
  SubTxn* TestConflict(const LockEntry& h, SubTxn* r, bool r_is_write,
                       ConflictOutcome* why) const;

  SubTxn* TestConflictSemantic(const LockEntry& h, SubTxn* r,
                               ConflictOutcome* why) const;
  SubTxn* TestConflictClosed(const LockEntry& h, SubTxn* r, bool r_is_write,
                             ConflictOutcome* why) const;
  SubTxn* TestConflictFlat(const LockEntry& h, SubTxn* r, bool r_is_write,
                           ConflictOutcome* why) const;

  /// Blockers of `t` against queue `q` given its own entry seq, written
  /// into *out (cleared first). With count_stats, classify each verdict
  /// into stats_ (first scan of an Acquire only).
  void CollectBlockers(const LockShard& shard, const LockQueue& q,
                       uint64_t my_seq, SubTxn* t, bool is_write,
                       bool count_stats, ScanResult* out)
      SEMCC_REQUIRES(shard.mu);

  /// Withdraw `t`'s queue entry and wake this shard (abandon paths of
  /// Acquire: abort, deadlock victim, timeout). The caller separately
  /// erases t's wait record.
  void RemoveWaiter(LockShard& shard, const LockTarget& target, LockQueue& q,
                    std::list<LockEntry>::iterator my_it)
      SEMCC_REQUIRES(shard.mu);

  /// Erase t's wait record (if any) under the graph mutex.
  void EraseWaitRecord(SubTxn* t) SEMCC_EXCLUDES(graph_mu_);

  /// Detect a deadlock reachable from requester `t`; returns the chosen
  /// victim's root (maximal priority rank on the cycle = youngest
  /// transaction) or nullptr.
  SubTxn* DetectDeadlock(SubTxn* t) const SEMCC_REQUIRES(graph_mu_);

  /// DFS expansion step of DetectDeadlock over the completion-dependency
  /// graph: wait edges of `n` plus `n`'s incomplete children.
  void ExpandDependencies(SubTxn* n, std::vector<SubTxn*>* stack,
                          std::set<SubTxn*>* visited,
                          std::map<SubTxn*, SubTxn*>* came_from) const
      SEMCC_REQUIRES(graph_mu_);

  // --- debug invariant checker (cc/lock_invariants.h) ---------------------

  /// Re-derive grant soundness for the entry `my_seq` of `t` that is about
  /// to be granted: every other granted/earlier entry must pass
  /// test-conflict.
  void CheckGrantInvariants(const LockShard& shard, const LockQueue& q,
                            uint64_t my_seq, SubTxn* t, bool is_write)
      SEMCC_REQUIRES(shard.mu);

  /// Queue-local invariants: no waiting entry may belong to a completed
  /// subtransaction (only *granted* locks are retained past completion).
  void CheckQueueInvariants(const LockShard& shard, const LockQueue& q)
      SEMCC_REQUIRES(shard.mu);

  /// Post-ReleaseTree, per shard: no entry of `root`'s tree may remain.
  void CheckNoLeakedLocks(const LockShard& shard, SubTxn* root)
      SEMCC_REQUIRES(shard.mu);

  /// The waits-for graph (plus completion dependencies) must be acyclic
  /// once nodes of abort-flagged roots (chosen victims) are excluded.
  void CheckWaitGraphAcyclic() SEMCC_REQUIRES(graph_mu_);

  /// Record "t's transaction, holding its current targets, acquired
  /// `target`" in the global lock-order graph; count inversions.
  void RecordLockOrder(SubTxn* t, const LockTarget& target)
      SEMCC_REQUIRES(graph_mu_);

  void InvariantViolation(const char* kind, const std::string& detail);

  static uint64_t PackTarget(const LockTarget& t) {
    return (t.key << 2) | static_cast<uint64_t>(t.space);
  }

  const ProtocolOptions options_;
  CompatibilityRegistry* const compat_;

  /// Immutable after construction; shard state is guarded per shard.
  std::vector<std::unique_ptr<LockShard>> shards_;
  uint32_t shard_mask_ = 0;

  /// Guards the waits-for graph and the debug lock-order diagnostics.
  /// Ordering: acquired after a shard mutex, never before one.
  mutable Mutex graph_mu_;
  /// Current wait edges: blocked requester -> its registration.
  std::map<SubTxn*, WaitRecord> waits_ SEMCC_GUARDED_BY(graph_mu_);

  std::atomic<uint64_t> clock_{0};
  LockStats stats_;

  /// Global acquisition-order graph over lock targets (debug checker).
  LockOrderGraph order_graph_ SEMCC_GUARDED_BY(graph_mu_);
  /// Targets currently locked per top-level transaction, in acquisition
  /// order (debug checker); cleared by ReleaseTree.
  std::map<SubTxn*, std::vector<LockTarget>> held_targets_
      SEMCC_GUARDED_BY(graph_mu_);
  LockInvariantStats inv_stats_;
};

}  // namespace semcc

#endif  // SEMCC_CC_LOCK_MANAGER_H_
