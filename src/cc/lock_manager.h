// The semantic lock manager for open nested OODBS transactions.
//
// Implements the locking protocol of paper §4.2 (Figures 8 and 9):
//  * every action acquires a semantic lock (method name + parameters) on the
//    object it operates on;
//  * locks are never dropped at subtransaction completion — they become
//    *retained* (derived here from the owning subtransaction's completion
//    state) and stay until top-level commit, so bypassing accesses still
//    collide with them;
//  * the conflict test `test-conflict(h, r)` walks the ancestor chains of
//    holder and requester looking for a commuting pair on the same object:
//    Case 1 (pair found, holder-side ancestor committed) grants immediately;
//    Case 2 (pair found, still active) waits for that subtransaction's
//    completion; otherwise the requester waits for the holder's top-level
//    commit;
//  * blocked requests are granted in FCFS order (paper footnote 5): a
//    request also tests against earlier-queued requests.
//
// The same lock table also hosts the conventional baselines (closed nested
// transactions [Mo85], flat strict 2PL at object/record/page granularity)
// selected via ProtocolOptions, so benchmarks compare protocols on identical
// infrastructure.
//
// Concurrency structure (see DESIGN.md §5, "Lock-manager internals"): the
// lock table is split into ProtocolOptions::lock_table_shards shards, each
// with its own mutex + condvar guarding that shard's queues, while the
// waits-for graph, deadlock detection, and the lock-order diagnostics live
// behind a separate graph mutex. The lock order is
//     shard.mu  →  graph_mu_  →  SubTxn::children_mu_
// and a thread never holds two shard mutexes at once (the stop-the-world
// invariant sweep, which locks every shard in index order while holding
// nothing else, is the only exception). Waiters sleep on their shard's
// condvar and are woken only when an event (completion, release, abort
// request) can actually unblock that shard — there is no broadcast-and-poll
// path. With ProtocolOptions::debug_lock_checks the manager additionally
// re-derives the protocol invariants on every grant/release (see
// cc/lock_invariants.h).
//
// Common-case acquire fast path (DESIGN.md §5.4): under the semantic
// protocol with retained locks, a repeated identical acquisition by the
// same transaction is served from a per-tree grant cache without touching
// the shard (cc/grant_cache.h), identical granted acquisitions coalesce
// onto one queue entry (LockEntry::count), nil conflict verdicts are
// memoized across a blocked request's re-scans, and queue nodes are pooled
// on a per-shard freelist. Each mechanism is gated by a ProtocolOptions
// flag and none of them changes a grant/block verdict.
#ifndef SEMCC_CC_LOCK_MANAGER_H_
#define SEMCC_CC_LOCK_MANAGER_H_

#include <atomic>
#include <bitset>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cc/compatibility.h"
#include "cc/grant_cache.h"
#include "cc/lock_invariants.h"
#include "cc/lock_target.h"
#include "cc/method_interner.h"
#include "cc/subtxn.h"
#include "storage/record_manager.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/trace.h"

namespace semcc {

/// \brief Concurrency-control protocol selector.
enum class Protocol : int {
  /// The paper's protocol: semantic locks on every action, open nested
  /// transactions, retained locks + commutative-ancestor relief (Fig. 8/9).
  kSemanticONT = 0,
  /// Closed nested transactions [Mo85]: read/write locks at the leaves,
  /// anti-inherited by the parent on subtransaction commit; no semantics.
  kClosedNested = 1,
  /// Conventional flat strict 2PL: read/write locks held to top-level
  /// commit, at the granularity in ProtocolOptions::granularity.
  kFlat2PL = 2,
};

const char* ProtocolName(Protocol p);

/// \brief Lock-name space for the flat baselines.
enum class LockGranularity : int { kObject = 0, kRecord = 1, kPage = 2 };

const char* GranularityName(LockGranularity g);

/// \brief Per-object-type concurrency mode chosen by the adaptive controller
/// (cc/adaptive_controller.h, DESIGN.md §5.9). Only meaningful under
/// Protocol::kSemanticONT with ProtocolOptions::adaptive_mode on; every
/// transaction latches one mode per acquired type for its whole lifetime
/// (the pinned ModeSnapshot), so no verdict ever mixes modes mid-flight.
enum class CcMode : uint8_t {
  /// The paper's full semantic protocol (commutativity + ancestor walk).
  kSemantic = 0,
  /// Commutativity matrix forced to conflict-only and the ancestor walk
  /// skipped: every foreign conflict is a root wait. Strictly more
  /// conservative than kSemantic, hence always sound; cheaper per test
  /// where commutativity never wins anyway.
  k2PL = 1,
  /// Semantic testing plus bounded precedence relaxation on hot queues:
  /// a requester may bypass up to AdaptiveOptions::prudent_bypass_limit
  /// earlier *waiting* (never granted) entries instead of queueing behind
  /// them — FCFS fairness is relaxed, serializability is not (granted
  /// locks are always fully tested).
  kPrudent = 2,
};

const char* CcModeName(CcMode m);

/// \brief Thresholds and pacing for the adaptive mode controller
/// (cc/adaptive_controller.h; read only when ProtocolOptions::adaptive_mode
/// is on). Shares are fractions in [0, 1] over one sample window; the
/// promote/demote pairs are deliberately separated (hysteresis) so a type
/// sitting on a threshold does not oscillate.
struct AdaptiveOptions {
  /// Background sampling period (only with background_thread).
  int64_t sample_interval_micros = 50000;
  /// Epochs a type must spend in its current mode before it may flip again.
  int min_dwell_epochs = 2;
  /// Minimum conflict-test samples in a window before any decision is made.
  uint64_t min_conflict_samples = 32;
  /// kSemantic -> k2PL when the commute+case1 share of conflict tests falls
  /// below this (the ancestor walk is not paying for itself).
  double demote_commute_share = 0.05;
  /// k2PL -> kSemantic when the *shadow-sampled* commute share rises above
  /// this. Must exceed demote_commute_share (hysteresis band).
  double promote_commute_share = 0.20;
  /// kSemantic -> kPrudent when the blocked share of acquires exceeds this
  /// while commutativity still wins (convoy on a hot shard).
  double hot_blocked_share = 0.50;
  /// kPrudent -> kSemantic when the blocked share falls below this.
  double cool_blocked_share = 0.20;
  /// Earlier waiting entries one prudent-mode scan may bypass.
  int prudent_bypass_limit = 4;
  /// Run a sampling thread inside the controller (benches / production).
  /// Off: the owner drives epochs explicitly via SampleNow() (tests).
  bool background_thread = false;
  /// Pin every type to this CcMode value (0/1/2) and never flip — the
  /// static-configuration ablation the phase-shift bench compares against.
  /// -1 (default) adapts normally.
  int pin_mode = -1;
};

struct ProtocolOptions {
  Protocol protocol = Protocol::kSemanticONT;
  LockGranularity granularity = LockGranularity::kObject;

  /// kSemanticONT only. If false, a completed subtransaction's descendant
  /// locks are dropped (the §3 protocol). This is the *incorrect-under-
  /// bypassing* variant that Figure 5 exposes; it exists for that experiment
  /// and for ablations.
  bool retain_locks = true;

  /// kSemanticONT only. If false, test-conflict skips the commutative-
  /// ancestor walk (no Case 1 / Case 2 relief): every retained-lock conflict
  /// waits for top-level commit. Correct but needlessly blocking; ablation.
  bool ancestor_walk = true;

  /// Upper bound on one lock wait; expiring returns TimedOut (a safety net —
  /// with deadlock detection on, waits should resolve).
  std::chrono::milliseconds wait_timeout{10000};

  bool deadlock_detection = true;

  /// Number of lock-table shards (clamped to a power of two in [1, 256]).
  /// 1 reproduces the pre-sharding single-mutex behavior for ablations.
  int lock_table_shards = 16;

  /// Debug-mode lock-invariant checker (cc/lock_invariants.h): re-derive the
  /// protocol invariants on every grant/release and track the lock-order
  /// graph. Default: on in debug builds and whenever the tree is compiled
  /// with -DSEMCC_DEBUG_LOCK_CHECKS; off in release builds, where the hooks
  /// cost one predicted-false branch per grant.
#if defined(SEMCC_DEBUG_LOCK_CHECKS) || !defined(NDEBUG)
  bool debug_lock_checks = true;
#else
  bool debug_lock_checks = false;
#endif

  /// Fail fast (SEMCC_CHECK) on a detected *protocol* violation instead of
  /// counting + logging. Lock-order inversions are never fatal: they are
  /// legal under this protocol (the deadlock detector resolves them) and
  /// tracked as a diagnostic only.
  bool invariant_violations_fatal = false;

  // --- acquire fast-path controls (DESIGN.md §5.4) -------------------------
  // All verdict-preserving; each defaults on and exists so bench_ablation
  // can price it individually. The first two apply only under
  // kSemanticONT with retain_locks (elsewhere entry lifetimes are
  // foreign-visible before top-level end); memoization and pooling apply
  // to every protocol.

  /// Serve repeated identical granted acquisitions from the per-tree grant
  /// cache without taking the shard mutex. Automatically disabled while
  /// debug_lock_checks is on so every grant still passes through the
  /// checker (coalescing below then covers the mutex path).
  bool lock_fast_path = true;

  /// Coalesce a repeated identical acquisition onto the existing granted
  /// entry (bump LockEntry::count) instead of appending a duplicate, so
  /// queue length tracks distinct conflict classes, not actions.
  bool coalesce_entries = true;

  /// Memoize nil test-conflict verdicts per (entry, seq) across the
  /// re-scans of one blocked Acquire (nil verdicts are stable in time; see
  /// DESIGN.md §5.4), skipping the repeated O(depth^2) ancestor walks.
  bool memoize_conflicts = true;

  /// Recycle queue nodes through a per-shard freelist instead of
  /// heap-allocating per entry.
  bool pool_entries = true;

  /// Emit structured lock-decision events (grants, blocks, verdicts,
  /// wakeups, completions) into the per-thread trace rings of util/trace.h
  /// for this database. The SEMCC_TRACE environment variable enables the
  /// same tracing process-wide (and can name an exit-time dump file); this
  /// flag scopes it to one database. Off: one predicted-false branch per
  /// instrumented operation.
  bool trace = false;

  /// Multi-version snapshot reads (DESIGN.md §5.7): the database keeps a
  /// VersionedObjectStore beside the live store, and read-only transactions
  /// submitted through Database::RunReadTransaction execute against a
  /// commit-consistent snapshot without acquiring any locks. Writers are
  /// unaffected (same protocol, plus one version-store bookkeeping call per
  /// written object). Default off for ablation: with the flag off,
  /// RunReadTransaction degrades to the ordinary locking path.
  bool mvcc_reads = false;

  /// Key-range semantic locks on set ADTs (DESIGN.md §5.8). Under
  /// kSemanticONT, Acquire annotates each request with the closed key
  /// interval its method touches inside the object (derived from the
  /// CompatibilityRegistry's declarative method specs and the actual
  /// arguments), and the conflict scan skips any queue entry whose interval
  /// is provably disjoint from the requester's — *before* consulting the
  /// compatibility matrix. Disjoint-key operations on one hot set object
  /// therefore never conflict, even where the coarse per-object matrix says
  /// they do. Verdict-preserving when off (entries then carry no intervals
  /// and the scan degenerates to the matrix path). Default off for
  /// ablation.
  bool keyrange_locks = false;

  /// Adaptive per-type mode selection (DESIGN.md §5.9): attach an
  /// AdaptiveController that samples the live verdict breakdown and wait
  /// histograms and switches each object type between full semantic
  /// locking, plain 2PL (conflict-only matrix, no ancestor walk), and the
  /// prudent contention-tolerant mode. kSemanticONT only. Off (default):
  /// no controller exists, no transaction pins a mode snapshot, and every
  /// code path is bit-for-bit the static semantic protocol.
  bool adaptive_mode = false;

  /// Controller thresholds/pacing; read only when adaptive_mode is on.
  AdaptiveOptions adaptive;
};

// LockTarget and LockTargetHash live in cc/lock_target.h (included above);
// they are re-exported here for the many existing includers.

/// \brief One lock-table entry. Namespace scope (not nested in LockManager)
/// so cc/grant_cache.h can forward-declare it.
struct LockEntry {
  SubTxn* acquirer;  ///< the action that requested the lock (mode source)
  SubTxn* owner;     ///< current owner (differs from acquirer only after
                     ///< closed-nested anti-inheritance)
  MethodId method_id;  ///< acquirer->method_id(), cached for locality
  bool is_write;
  bool granted;
  /// Identical same-class acquisitions coalesced onto this entry (see
  /// ProtocolOptions::coalesce_entries). Always 1 while waiting. Mutated
  /// and read under the shard mutex only; grant-cache fast-path hits are
  /// counted in LockStats::fast_path_hits instead of here.
  uint32_t count;
  uint64_t seq;  ///< FCFS arrival order (per shard; never reused)
  /// Closed key interval this entry's method touches within the object
  /// (ProtocolOptions::keyrange_locks; copied from the annotated target at
  /// append time). Disjoint intervals make the conflict scan skip the pair
  /// without consulting the matrix. has_interval=false (the default, and
  /// always with the flag off) means "touches an unknown part of the
  /// object" and disables the skip for this entry.
  int64_t key_lo;
  int64_t key_hi;
  bool has_interval;
};

/// \brief Per-target queue of lock entries.
struct LockQueue {
  std::list<LockEntry> entries;
  /// Append epoch: bumped (under the shard mutex) whenever an entry is
  /// added. Published grant-cache slots record the value at publication;
  /// a mismatch on the lock-free read side means queue membership may owe
  /// a newer waiter FCFS priority, so the requester takes the mutex path.
  /// Removals deliberately do NOT bump it — removing an entry can only
  /// remove blockers, never create one (DESIGN.md §5.4).
  std::atomic<uint64_t> epoch{0};
};

/// \brief Why test-conflict produced its verdict (stats + scenario tests).
enum class ConflictOutcome : int {
  kNoLock = 0,      ///< no other lock present
  kSameTxn = 1,     ///< holder belongs to the same top-level transaction
  kCommute = 2,     ///< invocations commute — no conflict (semantic grant)
  kCase1Grant = 3,  ///< commuting ancestor pair, holder side committed
  kCase2Wait = 4,   ///< commuting ancestor pair, still active: wait for it
  kRootWait = 5,    ///< no commuting pair: wait for top-level commit
  kSharedGrant = 6, ///< read/read compatibility (baselines)
  kHolderWait = 7,  ///< baseline conflict: wait for the holder
};

/// \brief Point-in-time snapshot of the lock manager's cumulative counters
/// (plain data — copy it, read it, serialize it).
///
/// Backed by the cache-line-striped metrics::CounterBank inside LockManager
/// (one stripe per lock-table shard, DESIGN.md §5.5): increments are
/// relaxed and contention-free; a snapshot taken while threads run is a
/// per-counter monotonic lower bound, exact at quiescent points.
struct LockStats {
  uint64_t acquires = 0;
  uint64_t blocked_acquires = 0;
  // Verdict breakdown (ConflictOutcome classification of first-scan tests).
  uint64_t commute_grants = 0;  ///< nil verdicts by direct commutativity
  uint64_t case1_grants = 0;    ///< nil via committed commuting ancestor
  uint64_t case2_waits = 0;     ///< wait-for-subtransaction verdicts
  uint64_t root_waits = 0;      ///< formal conflicts: wait for top-level end
  /// Conflicts whose blocking entry was a *retained* lock — the holder had
  /// already completed (§4.1). This is the mechanism Figure 5 depends on:
  /// a bypassing access colliding with a completed subtransaction's lock.
  uint64_t retained_hits = 0;
  uint64_t deadlocks = 0;
  uint64_t timeouts = 0;
  /// Acquires served lock-free from the per-tree grant cache (§5.4).
  uint64_t fast_path_hits = 0;
  /// Fast-path-eligible acquires the grant cache could not serve.
  uint64_t fast_path_misses = 0;
  /// Mutex-path grants absorbed into an existing entry's count.
  uint64_t coalesced_grants = 0;
  /// Conflict tests answered from the per-request nil-verdict memo.
  uint64_t memo_hits = 0;
  /// Queue entries skipped by the key-interval disjointness precheck
  /// (ProtocolOptions::keyrange_locks) — pairs that never reached the
  /// compatibility matrix because their key intervals cannot overlap.
  uint64_t keyrange_skips = 0;
  /// Earlier waiting entries bypassed by prudent-mode scans
  /// (ProtocolOptions::adaptive_mode, CcMode::kPrudent) — bounded FCFS
  /// relaxations that let a hot-shard requester jump a waiter convoy.
  uint64_t prudent_bypasses = 0;
  /// Queue entries that became granted / granted entries removed. At a
  /// quiescent point with every transaction finished these are equal;
  /// mid-run their difference is the number of granted (active + retained)
  /// entries sitting in the lock table.
  uint64_t granted_entries = 0;
  uint64_t released_entries = 0;
  /// Per-shard condvar notifications delivered by targeted wakeups.
  uint64_t wakeups = 0;
  /// Wait-time distribution of blocked acquires, in microseconds.
  metrics::HistogramSummary wait_micros;

  std::string ToString() const;
  std::string ToJson() const;
};

class AdaptiveController;  // cc/adaptive_controller.h
struct ModeSnapshot;       // cc/adaptive_controller.h

/// \brief The lock manager. One instance per database.
class LockManager {
 public:
  /// Hard upper bound on lock_table_shards (size of the wake bitmask).
  static constexpr int kMaxShards = 256;

  LockManager(const ProtocolOptions& options, CompatibilityRegistry* compat);
  ~LockManager();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(LockManager);

  /// Acquire a lock for action `t` on `target` (Figure 8: "a lock on
  /// t.object is requested in a mode that is derived from t.method and
  /// possibly the actual parameters of t"). Blocks until granted; returns
  ///  - OK          granted,
  ///  - Deadlock    t's transaction was chosen as deadlock victim,
  ///  - Aborted     t's transaction was asked to abort while waiting,
  ///  - TimedOut    the wait exceeded ProtocolOptions::wait_timeout.
  ///
  /// `is_write` is the read/write classification used by the conventional
  /// baselines; the semantic protocol ignores it.
  Status Acquire(SubTxn* t, const LockTarget& target, bool is_write);

  /// Figure 8, on completion of subtransaction t: convert/release per
  /// protocol and wake exactly the waiters whose waits-for sets contain t
  /// (waits-for sets shrink on *completion*).
  void OnSubTxnCompleted(SubTxn* t);

  /// Top-level end ("release all locks"): drop every lock owned by the tree
  /// rooted at `root` and wake affected waiters. Call before destroying the
  /// tree.
  void ReleaseTree(SubTxn* root);

  /// Flag `root` for abort and wake its blocked actions so they return
  /// Aborted promptly. External abort requests MUST go through here (not
  /// through SubTxn::RequestAbort directly): the flag is published under the
  /// graph mutex, which is what lets sleeping waiters observe it without
  /// polling.
  void OnAbortRequested(SubTxn* root);

  /// Logical timestamp source shared with the history recorder.
  uint64_t NextSeq() { return clock_.fetch_add(1) + 1; }

  /// Root-wait verdicts charged to the CALLING thread (cumulative,
  /// process-wide across managers). Lock waits run on the acquiring thread,
  /// so a workload can attribute root-waits to the transaction class it is
  /// executing by differencing this around a transaction.
  static uint64_t ThreadRootWaits();

  /// Aggregate counter snapshot (sums the per-shard stripes; see the
  /// LockStats comment for the consistency contract).
  LockStats stats() const;
  /// One shard's counter stripe. Counters are attributed to the shard of
  /// the target being acquired; the wait-time histogram is global and left
  /// empty here.
  LockStats shard_stats(uint32_t shard) const;
  const ProtocolOptions& options() const { return options_; }

  /// Attach the adaptive mode controller (ProtocolOptions::adaptive_mode).
  /// Must be called before any Acquire — Database wires it at construction,
  /// which happens-before every worker thread. With a controller attached,
  /// first-scan conflict verdicts are mirrored into its per-type counters
  /// and each Acquire dispatches on the requester's pinned mode snapshot.
  void SetAdaptiveController(AdaptiveController* controller) {
    controller_ = controller;
  }
  AdaptiveController* adaptive_controller() const { return controller_; }

  /// Actual shard count after clamping (power of two in [1, kMaxShards]).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Shard index `target` maps to — exposed for dispersion tests.
  uint32_t ShardIndexOf(const LockTarget& target) const {
    return static_cast<uint32_t>(LockTargetHash{}(target)) & shard_mask_;
  }

  /// Cumulative counters of the debug invariant checker (all zero when
  /// ProtocolOptions::debug_lock_checks is off).
  const LockInvariantStats& invariant_stats() const { return inv_stats_; }

  /// Run the queue + wait-graph invariant sweep immediately, regardless of
  /// debug_lock_checks; returns the cumulative protocol-violation count
  /// afterwards. Stop-the-world: locks every shard (in index order) plus the
  /// graph mutex. Intended for tests (e.g. at quiescent points).
  uint64_t CheckInvariantsNow();

  /// Locks currently held/queued on `target` — introspection for tests.
  struct LockInfo {
    TxnId owner_id;
    TxnId root_id;
    std::string method;
    bool granted;
    bool retained;  ///< owner completed but lock still present
    uint32_t count;  ///< coalesced identical acquisitions on this entry
  };
  std::vector<LockInfo> LocksOn(const LockTarget& target) const;

  /// Number of waiting (blocked) acquires right now.
  size_t NumWaiters() const SEMCC_EXCLUDES(graph_mu_);

 private:
  /// Freelist entries kept per shard before RecycleEntry falls back to
  /// freeing (bounds idle memory after a queue-heavy burst).
  static constexpr size_t kMaxPooledEntries = 1024;

  /// One lock-table shard: a slice of the target space with its own mutex
  /// and condvar. Waiters on this shard's queues sleep on `cv`; events wake
  /// a shard only when they may unblock one of its queues.
  struct LockShard {
    mutable Mutex mu;
    CondVar cv;
    std::unordered_map<LockTarget, LockQueue, LockTargetHash> table
        SEMCC_GUARDED_BY(mu);
    uint64_t next_entry_seq SEMCC_GUARDED_BY(mu) = 0;
    /// Node pool (ProtocolOptions::pool_entries): recycled std::list nodes,
    /// moved in and out of queues by splicing — no allocation either way.
    std::list<LockEntry> free_entries SEMCC_GUARDED_BY(mu);
  };

  /// Set of shard indices to notify once all locks are dropped.
  using ShardSet = std::bitset<kMaxShards>;

  /// A blocked requester's registration in the waits-for graph.
  struct WaitRecord {
    std::vector<SubTxn*> blockers;  ///< the completions it awaits
    uint32_t shard = 0;             ///< where its condvar wait parks
  };

  /// Result of one blocker scan over a queue; reused across wait-loop
  /// iterations so steady-state re-scans allocate nothing.
  struct ScanResult {
    std::vector<SubTxn*> blockers;  ///< deduplicated verdicts
    /// Best nil-verdict relief observed (kCase1Grant beats kCommute,
    /// kNoLock if neither) — recorded on stats-counting scans only; feeds
    /// the verdict field of grant trace events.
    ConflictOutcome grant_relief = ConflictOutcome::kNoLock;
    /// First blocker's verdict + identity + whether its entry was a
    /// retained lock (holder completed) — feeds block trace events.
    ConflictOutcome block_why = ConflictOutcome::kNoLock;
    SubTxn* first_blocker = nullptr;
    bool blocker_retained = false;
    /// Blockers that were still incomplete at scan time: their *completion*
    /// is the wake event, so the pre-sleep revalidation re-checks them. A
    /// blocker already completed at scan time is awaiting ReleaseTree,
    /// which purges queue entries under this shard's mutex and therefore
    /// cannot be missed.
    std::vector<SubTxn*> completion_watch;
    /// Memoized NIL verdicts (ProtocolOptions::memoize_conflicts), keyed by
    /// entry address with the entry seq as ABA guard against pooled-node
    /// reuse. Nil verdicts are stable for a fixed (entry, requester) —
    /// subtransaction states only move active -> terminal, which never
    /// turns a nil verdict non-nil (DESIGN.md §5.4) — so the memo survives
    /// re-scans (Clear() leaves it alone) and dies with the Acquire call.
    std::unordered_map<const LockEntry*, uint64_t> nil_verdicts;
    void Clear() {
      blockers.clear();
      completion_watch.clear();
      grant_relief = ConflictOutcome::kNoLock;
      block_why = ConflictOutcome::kNoLock;
      first_blocker = nullptr;
      blocker_retained = false;
    }
  };

  LockShard& ShardFor(const LockTarget& target) const {
    return *shards_[ShardIndexOf(target)];
  }

  /// Notify the condvars of every shard in `s`. Must be called with no lock
  /// manager mutex held: it locks each shard's mutex (one at a time) before
  /// notifying, which guarantees delivery to any waiter that registered
  /// before the triggering event — a registering waiter holds its shard
  /// mutex continuously from its blocker scan until the condvar wait parks
  /// it, so we cannot slip into that window.
  void NotifyShards(const ShardSet& s);

  /// The paper's test-conflict(h, r): nil (nullptr) or the (sub)transaction
  /// whose completion r must wait for. Sets *why. Reads only SubTxn state
  /// (atomics) and the compatibility registry — no lock-manager mutex.
  /// `mode` is the requester's latched CcMode (kSemantic unless adaptive);
  /// it selects between the full semantic test and the conflict-only 2PL
  /// short-circuit and is fixed for the whole Acquire.
  SubTxn* TestConflict(const LockEntry& h, SubTxn* r, bool r_is_write,
                       CcMode mode, ConflictOutcome* why) const;

  SubTxn* TestConflictSemantic(const LockEntry& h, SubTxn* r, CcMode mode,
                               ConflictOutcome* why) const;
  SubTxn* TestConflictClosed(const LockEntry& h, SubTxn* r, bool r_is_write,
                             ConflictOutcome* why) const;
  SubTxn* TestConflictFlat(const LockEntry& h, SubTxn* r, bool r_is_write,
                           ConflictOutcome* why) const;

  /// Blockers of `t` against queue `q` given its own entry seq, written
  /// into *out (cleared first). `stripe` is the shard index, for counter
  /// attribution. With count_stats, classify each verdict into the counter
  /// bank (first scan of an Acquire only). With memoize, serve and
  /// record nil verdicts in out->nil_verdicts — only worth paying for on
  /// the wait loop's re-scans, never on the first scan of an Acquire that
  /// may well grant immediately.
  /// `target` carries the requester's key-interval annotation (if any) for
  /// the keyrange_locks disjointness precheck. `mode` is the requester's
  /// latched CcMode: k2PL additionally disables the keyrange precheck and
  /// (with a controller attached) shadow-samples the semantic verdict;
  /// kPrudent may bypass a bounded number of earlier waiting entries.
  void CollectBlockers(const LockShard& shard, const LockQueue& q,
                       const LockTarget& target, uint64_t my_seq, SubTxn* t,
                       bool is_write, CcMode mode, uint32_t stripe,
                       bool count_stats, bool memoize, ScanResult* out)
      SEMCC_REQUIRES(shard.mu);

  /// Withdraw `t`'s queue entry and wake this shard (abandon paths of
  /// Acquire: abort, deadlock victim, timeout). The caller separately
  /// erases t's wait record.
  void RemoveWaiter(LockShard& shard, const LockTarget& target, LockQueue& q,
                    std::list<LockEntry>::iterator my_it)
      SEMCC_REQUIRES(shard.mu);

  // --- acquire fast path (DESIGN.md §5.4) ---------------------------------

  /// Do the semantic fast-path mechanisms (grant cache, coalescing) apply
  /// to this request at all? Requires the semantic protocol with retained
  /// locks — elsewhere entry lifetimes are foreign-visible before
  /// top-level end — and excludes compensating actions, which are exempt
  /// from FCFS and must not publish or reuse FCFS-shaped verdicts.
  bool SemanticFastPathApplies(SubTxn* t) const {
    return options_.protocol == Protocol::kSemanticONT &&
           options_.retain_locks && !t->compensation();
  }

  /// Lock-free grant via the per-tree grant cache: true iff `t` matches a
  /// published slot's verdict class and the queue epoch is unchanged. On
  /// true the caller grants without touching the shard, and `*shard_idx`
  /// holds the slot's shard (recorded at publication — saves the hit path
  /// the target hash). `*cache_miss` is set when the request was fast-path
  /// eligible but the cache could not serve it (the grant-cache miss
  /// counter; valid on a false return).
  bool TryFastPath(SubTxn* t, const LockTarget& target, bool is_write,
                   bool* cache_miss, uint32_t* shard_idx);

  /// Stamp `target` with the key interval t's (method, args) touches inside
  /// the object, per the registry's method specs (keyrange_locks under
  /// kSemanticONT only; no-op — leaving has_interval false — otherwise or
  /// when no spec/invalid args make the footprint underivable).
  void AnnotateKeyInterval(SubTxn* t, LockTarget* target) const;

  /// The keyrange_locks precheck: true iff both sides carry intervals and
  /// they are provably disjoint (closed-interval test) — the pair then
  /// commutes by key-disjointness without consulting the matrix.
  static bool KeyIntervalsDisjoint(const LockEntry& e,
                                   const LockTarget& target) {
    return e.has_interval && target.has_interval &&
           (e.key_hi < target.key_lo || target.key_hi < e.key_lo);
  }

  /// The existing granted entry a repeated identical acquisition may
  /// coalesce onto: same root AND same parent (identical ancestor chain on
  /// both sides of any future test-conflict), same method/mode/type, and
  /// matching args unless the method is argument-insensitive. Null if none.
  /// `target` additionally constrains the candidate's key interval: only an
  /// entry carrying the *same* interval annotation may absorb the request
  /// (an argument-insensitive method can still touch different keys per
  /// invocation under keyrange_locks).
  LockEntry* FindCoalescible(const LockShard& shard, LockQueue& q,
                             const LockTarget& target, SubTxn* t,
                             bool is_write) SEMCC_REQUIRES(shard.mu);

  /// Append an entry for `t` (through the shard freelist when pooling is
  /// on), copying `target`'s key-interval annotation into it, and bump the
  /// queue's append epoch.
  std::list<LockEntry>::iterator AppendEntry(LockShard& shard, LockQueue& q,
                                             const LockTarget& target,
                                             SubTxn* t, bool is_write,
                                             bool granted, uint64_t seq)
      SEMCC_REQUIRES(shard.mu);

  /// Remove the entry at `it` from `q`, recycling the node onto the shard
  /// freelist when pooling is on.
  void RecycleEntry(LockShard& shard, LockQueue& q,
                    std::list<LockEntry>::iterator it)
      SEMCC_REQUIRES(shard.mu);

  /// Publish `entry` (just granted to `t` with the WHOLE queue — granted
  /// entries and waiters of any arrival order — testing nil against it) in
  /// the root's grant cache. Caller verified the publication condition and
  /// the option gates.
  void PublishSlot(LockQueue& q, const LockTarget& target, SubTxn* t,
                   bool is_write, const LockEntry* entry, uint32_t shard_idx);

  /// Erase t's wait record (if any) under the graph mutex.
  void EraseWaitRecord(SubTxn* t) SEMCC_EXCLUDES(graph_mu_);

  /// Detect a deadlock reachable from requester `t`; returns the chosen
  /// victim's root (maximal priority rank on the cycle = youngest
  /// transaction) or nullptr.
  SubTxn* DetectDeadlock(SubTxn* t) const SEMCC_REQUIRES(graph_mu_);

  /// DFS expansion step of DetectDeadlock over the completion-dependency
  /// graph: wait edges of `n` plus `n`'s incomplete children.
  void ExpandDependencies(SubTxn* n, std::vector<SubTxn*>* stack,
                          std::set<SubTxn*>* visited,
                          std::map<SubTxn*, SubTxn*>* came_from) const
      SEMCC_REQUIRES(graph_mu_);

  // --- debug invariant checker (cc/lock_invariants.h) ---------------------

  /// Re-derive grant soundness for the entry `my_seq` of `t` that is about
  /// to be granted: every other granted/earlier entry must pass
  /// test-conflict. Mirrors CollectBlockers' mode dispatch: under kPrudent
  /// waiting entries are bypassable and therefore exempt here too.
  void CheckGrantInvariants(const LockShard& shard, const LockQueue& q,
                            const LockTarget& target, uint64_t my_seq,
                            SubTxn* t, bool is_write, CcMode mode)
      SEMCC_REQUIRES(shard.mu);

  /// Queue-local invariants: no waiting entry may belong to a completed
  /// subtransaction (only *granted* locks are retained past completion).
  void CheckQueueInvariants(const LockShard& shard, const LockQueue& q)
      SEMCC_REQUIRES(shard.mu);

  /// Post-ReleaseTree, per shard: no entry of `root`'s tree may remain.
  void CheckNoLeakedLocks(const LockShard& shard, SubTxn* root)
      SEMCC_REQUIRES(shard.mu);

  /// The waits-for graph (plus completion dependencies) must be acyclic
  /// once nodes of abort-flagged roots (chosen victims) are excluded.
  void CheckWaitGraphAcyclic() SEMCC_REQUIRES(graph_mu_);

  /// Record "t's transaction, holding its current targets, acquired
  /// `target`" in the global lock-order graph; count inversions.
  void RecordLockOrder(SubTxn* t, const LockTarget& target)
      SEMCC_REQUIRES(graph_mu_);

  void InvariantViolation(const char* kind, const std::string& detail);

  static uint64_t PackTarget(const LockTarget& t) {
    return (t.key << 2) | static_cast<uint64_t>(t.space);
  }

  /// Shard count after clamping (shared by the shard vector and the
  /// counter bank's stripe count).
  static size_t ClampShardCount(int requested);

  /// Stamp the common fields and emit one lock-decision trace event.
  /// Callers gate on trace::Active(options_.trace) first.
  void EmitLockEvent(trace::EventKind kind, SubTxn* t,
                     const LockTarget& target, uint32_t shard,
                     ConflictOutcome verdict, SubTxn* blocker, uint64_t value,
                     uint8_t flags) const;

  /// The CcMode this Acquire runs under: kSemantic unless adaptive_mode is
  /// on AND the requester's root carries a pinned ModeSnapshot, in which
  /// case the snapshot's per-type mode for t->type(). Latched once at the
  /// top of Acquire — a transaction never changes mode mid-request.
  CcMode AcquireMode(SubTxn* t) const;

  const ProtocolOptions options_;
  CompatibilityRegistry* const compat_;

  /// Adaptive mode controller (null unless adaptive_mode; set once at
  /// Database construction, before any worker thread exists — plain
  /// pointer, published by the thread-creation happens-before edge).
  AdaptiveController* controller_ = nullptr;

  /// Immutable after construction; shard state is guarded per shard.
  std::vector<std::unique_ptr<LockShard>> shards_;
  uint32_t shard_mask_ = 0;

  /// Guards the waits-for graph and the debug lock-order diagnostics.
  /// Ordering: acquired after a shard mutex, never before one.
  mutable Mutex graph_mu_;
  /// Current wait edges: blocked requester -> its registration.
  std::map<SubTxn*, WaitRecord> waits_ SEMCC_GUARDED_BY(graph_mu_);

  std::atomic<uint64_t> clock_{0};

  /// Counter indices into counters_ (one stripe per shard). Kept private;
  /// the public view is the LockStats snapshot.
  enum Counter : size_t {
    kCtrAcquires = 0,
    kCtrBlockedAcquires,
    kCtrCommuteGrants,
    kCtrCase1Grants,
    kCtrCase2Waits,
    kCtrRootWaits,
    kCtrRetainedHits,
    kCtrDeadlocks,
    kCtrTimeouts,
    kCtrFastPathHits,
    kCtrFastPathMisses,
    kCtrCoalescedGrants,
    kCtrMemoHits,
    kCtrKeyrangeSkips,
    kCtrPrudentBypasses,
    kCtrGrantedEntries,
    kCtrReleasedEntries,
    kCtrWakeups,
    kCtrCount,
  };
  metrics::CounterBank counters_;
  metrics::AtomicHistogram wait_micros_;

  /// Global acquisition-order graph over lock targets (debug checker).
  LockOrderGraph order_graph_ SEMCC_GUARDED_BY(graph_mu_);
  /// Targets currently locked per top-level transaction (debug checker);
  /// cleared by ReleaseTree. `order` keeps acquisition order for the
  /// order-graph edges; `seen` (packed keys) makes the per-acquire
  /// duplicate test O(1) instead of a linear scan that degrades long
  /// transactions quadratically.
  struct HeldTargets {
    std::vector<LockTarget> order;
    std::unordered_set<uint64_t> seen;
  };
  std::map<SubTxn*, HeldTargets> held_targets_ SEMCC_GUARDED_BY(graph_mu_);
  LockInvariantStats inv_stats_;
};

}  // namespace semcc

#endif  // SEMCC_CC_LOCK_MANAGER_H_
