// The semantic lock manager for open nested OODBS transactions.
//
// Implements the locking protocol of paper §4.2 (Figures 8 and 9):
//  * every action acquires a semantic lock (method name + parameters) on the
//    object it operates on;
//  * locks are never dropped at subtransaction completion — they become
//    *retained* (derived here from the owning subtransaction's completion
//    state) and stay until top-level commit, so bypassing accesses still
//    collide with them;
//  * the conflict test `test-conflict(h, r)` walks the ancestor chains of
//    holder and requester looking for a commuting pair on the same object:
//    Case 1 (pair found, holder-side ancestor committed) grants immediately;
//    Case 2 (pair found, still active) waits for that subtransaction's
//    completion; otherwise the requester waits for the holder's top-level
//    commit;
//  * blocked requests are granted in FCFS order (paper footnote 5): a
//    request also tests against earlier-queued requests.
//
// The same lock table also hosts the conventional baselines (closed nested
// transactions [Mo85], flat strict 2PL at object/record/page granularity)
// selected via ProtocolOptions, so benchmarks compare protocols on identical
// infrastructure.
//
// All shared state is guarded by mu_ and annotated for clang's thread-safety
// analysis; with ProtocolOptions::debug_lock_checks the manager additionally
// re-derives the protocol invariants on every grant/release (see
// cc/lock_invariants.h).
#ifndef SEMCC_CC_LOCK_MANAGER_H_
#define SEMCC_CC_LOCK_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cc/compatibility.h"
#include "cc/lock_invariants.h"
#include "cc/subtxn.h"
#include "storage/record_manager.h"
#include "util/annotations.h"
#include "util/histogram.h"
#include "util/macros.h"
#include "util/status.h"

namespace semcc {

/// \brief Concurrency-control protocol selector.
enum class Protocol : int {
  /// The paper's protocol: semantic locks on every action, open nested
  /// transactions, retained locks + commutative-ancestor relief (Fig. 8/9).
  kSemanticONT = 0,
  /// Closed nested transactions [Mo85]: read/write locks at the leaves,
  /// anti-inherited by the parent on subtransaction commit; no semantics.
  kClosedNested = 1,
  /// Conventional flat strict 2PL: read/write locks held to top-level
  /// commit, at the granularity in ProtocolOptions::granularity.
  kFlat2PL = 2,
};

const char* ProtocolName(Protocol p);

/// \brief Lock-name space for the flat baselines.
enum class LockGranularity : int { kObject = 0, kRecord = 1, kPage = 2 };

const char* GranularityName(LockGranularity g);

struct ProtocolOptions {
  Protocol protocol = Protocol::kSemanticONT;
  LockGranularity granularity = LockGranularity::kObject;

  /// kSemanticONT only. If false, a completed subtransaction's descendant
  /// locks are dropped (the §3 protocol). This is the *incorrect-under-
  /// bypassing* variant that Figure 5 exposes; it exists for that experiment
  /// and for ablations.
  bool retain_locks = true;

  /// kSemanticONT only. If false, test-conflict skips the commutative-
  /// ancestor walk (no Case 1 / Case 2 relief): every retained-lock conflict
  /// waits for top-level commit. Correct but needlessly blocking; ablation.
  bool ancestor_walk = true;

  /// Upper bound on one lock wait; expiring returns TimedOut (a safety net —
  /// with deadlock detection on, waits should resolve).
  std::chrono::milliseconds wait_timeout{10000};

  bool deadlock_detection = true;

  /// Debug-mode lock-invariant checker (cc/lock_invariants.h): re-derive the
  /// protocol invariants on every grant/release and track the lock-order
  /// graph. Default: on in debug builds and whenever the tree is compiled
  /// with -DSEMCC_DEBUG_LOCK_CHECKS; off in release builds, where the hooks
  /// cost one predicted-false branch per grant.
#if defined(SEMCC_DEBUG_LOCK_CHECKS) || !defined(NDEBUG)
  bool debug_lock_checks = true;
#else
  bool debug_lock_checks = false;
#endif

  /// Fail fast (SEMCC_CHECK) on a detected *protocol* violation instead of
  /// counting + logging. Lock-order inversions are never fatal: they are
  /// legal under this protocol (the deadlock detector resolves them) and
  /// tracked as a diagnostic only.
  bool invariant_violations_fatal = false;
};

/// \brief What a lock names: an object, a record, or a page.
struct LockTarget {
  enum class Space : uint8_t { kObject = 0, kRecord = 1, kPage = 2 };
  Space space = Space::kObject;
  uint64_t key = 0;

  static LockTarget ForObject(Oid oid) { return {Space::kObject, oid}; }
  static LockTarget ForRecord(const Rid& rid) {
    return {Space::kRecord,
            (static_cast<uint64_t>(rid.page_id) << 16) | rid.slot};
  }
  static LockTarget ForPage(PageId page) {
    return {Space::kPage, static_cast<uint64_t>(page)};
  }

  bool operator==(const LockTarget& other) const = default;
  std::string ToString() const;
};

struct LockTargetHash {
  size_t operator()(const LockTarget& t) const {
    return std::hash<uint64_t>()(t.key * 3 + static_cast<uint64_t>(t.space));
  }
};

/// \brief Why test-conflict produced its verdict (stats + scenario tests).
enum class ConflictOutcome : int {
  kNoLock = 0,      ///< no other lock present
  kSameTxn = 1,     ///< holder belongs to the same top-level transaction
  kCommute = 2,     ///< invocations commute — no conflict (semantic grant)
  kCase1Grant = 3,  ///< commuting ancestor pair, holder side committed
  kCase2Wait = 4,   ///< commuting ancestor pair, still active: wait for it
  kRootWait = 5,    ///< no commuting pair: wait for top-level commit
  kSharedGrant = 6, ///< read/read compatibility (baselines)
  kHolderWait = 7,  ///< baseline conflict: wait for the holder
};

/// \brief Aggregated lock-manager statistics (all counters cumulative).
struct LockStats {
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> blocked_acquires{0};
  std::atomic<uint64_t> case1_grants{0};
  std::atomic<uint64_t> case2_waits{0};
  std::atomic<uint64_t> root_waits{0};
  std::atomic<uint64_t> commute_grants{0};
  std::atomic<uint64_t> deadlocks{0};
  std::atomic<uint64_t> timeouts{0};
  Histogram wait_micros;

  std::string ToString() const;
};

/// \brief The lock manager. One instance per database.
class LockManager {
 public:
  LockManager(const ProtocolOptions& options, CompatibilityRegistry* compat);
  SEMCC_DISALLOW_COPY_AND_ASSIGN(LockManager);

  /// Acquire a lock for action `t` on `target` (Figure 8: "a lock on
  /// t.object is requested in a mode that is derived from t.method and
  /// possibly the actual parameters of t"). Blocks until granted; returns
  ///  - OK          granted,
  ///  - Deadlock    t's transaction was chosen as deadlock victim,
  ///  - Aborted     t's transaction was asked to abort while waiting,
  ///  - TimedOut    the wait exceeded ProtocolOptions::wait_timeout.
  ///
  /// `is_write` is the read/write classification used by the conventional
  /// baselines; the semantic protocol ignores it.
  Status Acquire(SubTxn* t, const LockTarget& target, bool is_write)
      SEMCC_EXCLUDES(mu_);

  /// Figure 8, on completion of subtransaction t: convert/release per
  /// protocol and wake waiters (waits-for sets shrink on *completion*).
  void OnSubTxnCompleted(SubTxn* t) SEMCC_EXCLUDES(mu_);

  /// Top-level end ("release all locks"): drop every lock owned by the tree
  /// rooted at `root` and wake waiters. Call before destroying the tree.
  void ReleaseTree(SubTxn* root) SEMCC_EXCLUDES(mu_);

  /// Logical timestamp source shared with the history recorder.
  uint64_t NextSeq() { return clock_.fetch_add(1) + 1; }

  LockStats& stats() { return stats_; }
  const ProtocolOptions& options() const { return options_; }

  /// Cumulative counters of the debug invariant checker (all zero when
  /// ProtocolOptions::debug_lock_checks is off).
  const LockInvariantStats& invariant_stats() const { return inv_stats_; }

  /// Run the queue + wait-graph invariant sweep immediately, regardless of
  /// debug_lock_checks; returns the cumulative protocol-violation count
  /// afterwards. Intended for tests (e.g. at quiescent points).
  uint64_t CheckInvariantsNow() SEMCC_EXCLUDES(mu_);

  /// Locks currently held/queued on `target` — introspection for tests.
  struct LockInfo {
    TxnId owner_id;
    TxnId root_id;
    std::string method;
    bool granted;
    bool retained;  ///< owner completed but lock still present
  };
  std::vector<LockInfo> LocksOn(const LockTarget& target) const
      SEMCC_EXCLUDES(mu_);

  /// Number of waiting (blocked) acquires right now.
  size_t NumWaiters() const SEMCC_EXCLUDES(mu_);

 private:
  struct LockEntry {
    SubTxn* acquirer;  ///< the action that requested the lock (mode source)
    SubTxn* owner;     ///< current owner (differs from acquirer only after
                       ///< closed-nested anti-inheritance)
    bool is_write;
    bool granted;
    uint64_t seq;  ///< FCFS arrival order
  };
  struct LockQueue {
    std::list<LockEntry> entries;
  };

  /// The paper's test-conflict(h, r): nil (nullptr) or the (sub)transaction
  /// whose completion r must wait for. Sets *why.
  SubTxn* TestConflict(const LockEntry& h, SubTxn* r, bool r_is_write,
                       ConflictOutcome* why) const SEMCC_REQUIRES(mu_);

  SubTxn* TestConflictSemantic(const LockEntry& h, SubTxn* r,
                               ConflictOutcome* why) const SEMCC_REQUIRES(mu_);
  SubTxn* TestConflictClosed(const LockEntry& h, SubTxn* r, bool r_is_write,
                             ConflictOutcome* why) const SEMCC_REQUIRES(mu_);
  SubTxn* TestConflictFlat(const LockEntry& h, SubTxn* r, bool r_is_write,
                           ConflictOutcome* why) const SEMCC_REQUIRES(mu_);

  /// Blockers of `t` against queue `q` given its own entry seq.
  std::set<SubTxn*> CollectBlockers(const LockQueue& q, uint64_t my_seq,
                                    SubTxn* t, bool is_write,
                                    std::vector<ConflictOutcome>* reasons) const
      SEMCC_REQUIRES(mu_);

  /// Withdraw `t`'s queue entry + wait edges and wake everyone (abandon
  /// paths of Acquire: abort, deadlock victim, timeout).
  void RemoveWaiter(const LockTarget& target, LockQueue& q,
                    std::list<LockEntry>::iterator my_it, SubTxn* t)
      SEMCC_REQUIRES(mu_);

  /// Detect a deadlock reachable from requester `t`; returns the chosen
  /// victim's root (maximal root id on the cycle = youngest transaction) or
  /// nullptr.
  SubTxn* DetectDeadlock(SubTxn* t) const SEMCC_REQUIRES(mu_);

  /// DFS expansion step of DetectDeadlock over the completion-dependency
  /// graph: wait edges of `n` plus `n`'s incomplete children.
  void ExpandDependencies(SubTxn* n, std::vector<SubTxn*>* stack,
                          std::set<SubTxn*>* visited,
                          std::map<SubTxn*, SubTxn*>* came_from) const
      SEMCC_REQUIRES(mu_);

  // --- debug invariant checker (cc/lock_invariants.h) ---------------------

  /// Re-derive grant soundness for the entry `my_seq` of `t` that is about
  /// to be granted: every other granted/earlier entry must pass
  /// test-conflict.
  void CheckGrantInvariants(const LockQueue& q, uint64_t my_seq, SubTxn* t,
                            bool is_write) SEMCC_REQUIRES(mu_);

  /// Queue-local invariants: no waiting entry may belong to a completed
  /// subtransaction (only *granted* locks are retained past completion).
  void CheckQueueInvariants(const LockQueue& q) SEMCC_REQUIRES(mu_);

  /// Post-ReleaseTree: no entry of `root`'s tree may remain anywhere.
  void CheckNoLeakedLocks(SubTxn* root) SEMCC_REQUIRES(mu_);

  /// The waits-for graph (plus completion dependencies) must be acyclic
  /// once nodes of abort-flagged roots (chosen victims) are excluded.
  void CheckWaitGraphAcyclic() SEMCC_REQUIRES(mu_);

  /// Record "t's transaction, holding its current targets, acquired
  /// `target`" in the global lock-order graph; count inversions.
  void RecordLockOrder(SubTxn* t, const LockTarget& target)
      SEMCC_REQUIRES(mu_);

  void InvariantViolation(const char* kind, const std::string& detail);

  static uint64_t PackTarget(const LockTarget& t) {
    return (t.key << 2) | static_cast<uint64_t>(t.space);
  }

  const ProtocolOptions options_;
  CompatibilityRegistry* const compat_;

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<LockTarget, LockQueue, LockTargetHash> table_
      SEMCC_GUARDED_BY(mu_);
  /// Current wait edges: blocked requester -> the completions it awaits.
  std::map<SubTxn*, std::vector<SubTxn*>> waits_ SEMCC_GUARDED_BY(mu_);
  uint64_t next_entry_seq_ SEMCC_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> clock_{0};
  LockStats stats_;

  /// Global acquisition-order graph over lock targets (debug checker).
  LockOrderGraph order_graph_ SEMCC_GUARDED_BY(mu_);
  /// Targets currently locked per top-level transaction, in acquisition
  /// order (debug checker); cleared by ReleaseTree.
  std::map<SubTxn*, std::vector<LockTarget>> held_targets_
      SEMCC_GUARDED_BY(mu_);
  LockInvariantStats inv_stats_;
};

}  // namespace semcc

#endif  // SEMCC_CC_LOCK_MANAGER_H_
