// Lock names and their hash.
//
// Split out of cc/lock_manager.h so that cc/grant_cache.h (which SubTxn
// owns, and which the lock manager consults before touching a shard) can
// key its slots by target without pulling the whole lock manager — and its
// include of cc/subtxn.h — back in.
#ifndef SEMCC_CC_LOCK_TARGET_H_
#define SEMCC_CC_LOCK_TARGET_H_

#include <cstdint>
#include <string>

#include "object/oid.h"
#include "storage/record_manager.h"

namespace semcc {

/// \brief What a lock names: an object, a record, or a page — optionally
/// narrowed to a key interval within that object (keyrange_locks).
///
/// The interval is an *annotation*, not part of the lock's identity: two
/// targets naming the same object always share one queue (and one grant-
/// cache slot family), so FCFS, coalescing, and invalidation stay per-
/// object. The interval only feeds the conflict scan's disjointness
/// precheck — entries whose closed intervals [key_lo, key_hi] cannot
/// overlap the requester's are skipped before the compatibility matrix is
/// even consulted (DESIGN.md §5.8). operator== and LockTargetHash therefore
/// deliberately ignore it.
struct LockTarget {
  enum class Space : uint8_t { kObject = 0, kRecord = 1, kPage = 2 };
  Space space = Space::kObject;
  uint64_t key = 0;
  /// Closed key interval touched within the object; only meaningful when
  /// has_interval is set (by LockManager::Acquire under keyrange_locks).
  int64_t key_lo = 0;
  int64_t key_hi = 0;
  bool has_interval = false;

  static LockTarget ForObject(Oid oid) { return {Space::kObject, oid}; }
  static LockTarget ForRecord(const Rid& rid) {
    return {Space::kRecord,
            (static_cast<uint64_t>(rid.page_id) << 16) | rid.slot};
  }
  static LockTarget ForPage(PageId page) {
    return {Space::kPage, static_cast<uint64_t>(page)};
  }

  /// Identity: (space, key) only — the interval annotation is invisible to
  /// queue lookup and hashing (see class comment).
  bool operator==(const LockTarget& other) const {
    return space == other.space && key == other.key;
  }
  std::string ToString() const;
};

/// Hash over (space, key) with a splitmix64 finalizer so that the
/// structured keys this system produces — sequential Oids, Rids whose low
/// 16 bits are a slot, page ids — spread over both hash-table buckets and
/// lock-table shards (which use the LOW bits). A multiplicative-only hash
/// clusters them: e.g. `ForRecord({page, 0})` keys are all multiples of
/// 1<<16 and would land every record of slot 0 in shard 0.
struct LockTargetHash {
  size_t operator()(const LockTarget& t) const {
    uint64_t x = (t.key << 2) ^ static_cast<uint64_t>(t.space);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

}  // namespace semcc

#endif  // SEMCC_CC_LOCK_TARGET_H_
