// Process-wide interning of method names to dense integer ids.
//
// The conflict test of paper §4.2 runs once per (holder, requester) pair per
// ancestor-walk step on every lock acquisition; keying it by std::string
// makes the hot path hash strings and chase heap. Interning every method
// name once — at SubTxn creation and at compatibility registration, both
// cold paths — lets the conflict test work on 32-bit ids: the
// CompatibilityRegistry compiles its per-type matrices into dense id-indexed
// tables (see cc/compatibility.h) and the lock manager's TestConflict never
// touches a string.
//
// Ids are assigned process-wide (not per registry) so a SubTxn's cached id
// is meaningful against any CompatibilityRegistry. The generic operations of
// paper §2.2 get fixed ids 0..6 so their built-in commutativity rules can
// switch on small constants.
#ifndef SEMCC_CC_METHOD_INTERNER_H_
#define SEMCC_CC_METHOD_INTERNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

using MethodId = uint32_t;
constexpr MethodId kInvalidMethodId = UINT32_MAX;

/// Fixed ids of the built-in generic operations (paper §2.2), pre-interned
/// by MethodInterner::Global() in this order.
namespace generic_ids {
inline constexpr MethodId kGet = 0;
inline constexpr MethodId kPut = 1;
inline constexpr MethodId kInsert = 2;
inline constexpr MethodId kRemove = 3;
inline constexpr MethodId kSelect = 4;
inline constexpr MethodId kScan = 5;
inline constexpr MethodId kSize = 6;
inline constexpr MethodId kMember = 7;
inline constexpr MethodId kRangeScan = 8;
inline constexpr MethodId kNumGenericOps = 9;
}  // namespace generic_ids

/// \brief Thread-safe append-only string-to-id table.
///
/// Intern() is called on cold paths only (SubTxn construction, compatibility
/// registration), so a SharedMutex is fine; the hot conflict test uses the
/// cached ids and never comes here.
class MethodInterner {
 public:
  /// The process-wide interner (generic operations pre-interned).
  static MethodInterner& Global();

  MethodInterner();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(MethodInterner);

  /// Id of `name`, assigning a fresh one on first sight.
  MethodId Intern(const std::string& name) SEMCC_EXCLUDES(mu_);

  /// Id of `name`, or kInvalidMethodId if it was never interned.
  MethodId Lookup(const std::string& name) const SEMCC_EXCLUDES(mu_);

  /// The name behind `id` (by value: the backing vector may grow).
  std::string NameOf(MethodId id) const SEMCC_EXCLUDES(mu_);

  /// Number of distinct interned names (== smallest unassigned id).
  size_t size() const SEMCC_EXCLUDES(mu_);

 private:
  mutable SharedMutex mu_;
  std::unordered_map<std::string, MethodId> ids_ SEMCC_GUARDED_BY(mu_);
  std::vector<std::string> names_ SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_CC_METHOD_INTERNER_H_
