#include "cc/subtxn.h"

#include <atomic>

#include "cc/grant_cache.h"
#include "util/logging.h"

namespace semcc {

SubTxn::SubTxn(TxnId id, SubTxn* parent, Oid object, TypeId type,
               std::string method, Args args)
    : id_(id),
      priority_(id),
      parent_(parent),
      root_(parent == nullptr ? this : parent->root_),
      depth_(parent == nullptr ? 0 : parent->depth_ + 1),
      object_(object),
      type_(type),
      method_(std::move(method)),
      method_id_(MethodInterner::Global().Intern(method_)),
      args_(std::move(args)) {}

SubTxn::~SubTxn() = default;

GrantCache& SubTxn::EnsureGrantCache() {
  if (grant_cache_ == nullptr) grant_cache_ = std::make_unique<GrantCache>();
  return *grant_cache_;
}

void SubTxn::ClearGrantCache() {
  // Keep the allocation (and its buckets): cleared caches are refilled by
  // the very next published grant of the same tree (retries reuse trees).
  if (grant_cache_ != nullptr) grant_cache_->Clear();
}

bool SubTxn::IsAncestorOf(const SubTxn* other) const {
  for (const SubTxn* n = other->parent_; n != nullptr; n = n->parent_) {
    if (n == this) return true;
  }
  return false;
}

std::vector<SubTxn*> SubTxn::AncestorChain() const {
  std::vector<SubTxn*> chain;
  for (SubTxn* n = parent_; n != nullptr; n = n->parent_) chain.push_back(n);
  return chain;
}

void SubTxn::AddChild(SubTxn* child) {
  MutexLock guard(children_mu_);
  children_.push_back(child);
}

std::vector<SubTxn*> SubTxn::Children() const {
  MutexLock guard(children_mu_);
  return children_;
}

std::vector<SubTxn*> SubTxn::IncompleteChildren() const {
  MutexLock guard(children_mu_);
  std::vector<SubTxn*> out;
  for (SubTxn* c : children_) {
    if (!c->completed()) out.push_back(c);
  }
  return out;
}

std::string SubTxn::Label() const {
  std::string out = method_;
  if (object_ != kDatabaseOid || !args_.empty()) {
    out += "(@" + std::to_string(object_);
    for (const Value& a : args_) out += ", " + a.ToString();
    out += ")";
  }
  return out;
}

std::string SubTxn::PathString() const {
  if (parent_ == nullptr) return Label();
  return parent_->PathString() + " > " + Label();
}

namespace {
std::atomic<TxnId> g_next_txn_id{1};
}  // namespace

TxnId TxnTree::NextId() { return g_next_txn_id.fetch_add(1); }

TxnTree::TxnTree(TxnId root_id, std::string name, Oid root_object,
                 TypeId root_type) {
  auto root = std::make_unique<SubTxn>(root_id, nullptr, root_object, root_type,
                                       std::move(name), Args{});
  root_ = root.get();
  MutexLock guard(mu_);
  nodes_.push_back(std::move(root));
}

SubTxn* TxnTree::NewNode(SubTxn* parent, Oid object, TypeId type,
                         std::string method, Args args) {
  SEMCC_CHECK(parent != nullptr);
  auto node = std::make_unique<SubTxn>(NextId(), parent, object, type,
                                       std::move(method), std::move(args));
  SubTxn* raw = node.get();
  {
    MutexLock guard(mu_);
    nodes_.push_back(std::move(node));
  }
  parent->AddChild(raw);
  return raw;
}

std::vector<SubTxn*> TxnTree::Nodes() const {
  MutexLock guard(mu_);
  std::vector<SubTxn*> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.get());
  return out;
}

}  // namespace semcc
