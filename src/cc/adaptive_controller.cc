#include "cc/adaptive_controller.h"

#include <chrono>
#include <cstring>

#include "util/trace.h"

namespace semcc {

const char* CcModeName(CcMode m) {
  switch (m) {
    case CcMode::kSemantic:
      return "semantic";
    case CcMode::k2PL:
      return "2pl";
    case CcMode::kPrudent:
      return "prudent";
  }
  return "?";
}

AdaptiveController::AdaptiveController(LockManager* lm)
    : lm_(lm),
      opts_(lm->options().adaptive),
      counters_(kSlots, kCtrCount) {
  const uint8_t initial =
      (opts_.pin_mode >= 0 && opts_.pin_mode <= 2)
          ? static_cast<uint8_t>(opts_.pin_mode)
          : static_cast<uint8_t>(CcMode::kSemantic);
  for (auto& buf : buffers_) {
    for (auto& m : buf.modes) m.store(initial, std::memory_order_relaxed);
  }
  decided_modes_.fill(initial);
  current_.store(&buffers_[0], std::memory_order_release);
  if (opts_.background_thread) {
    sampler_ = std::thread([this] { BackgroundLoop(); });
  }
}

AdaptiveController::~AdaptiveController() { Stop(); }

void AdaptiveController::Stop() {
  stop_.store(true, std::memory_order_release);
  if (sampler_.joinable()) sampler_.join();
}

void AdaptiveController::BackgroundLoop() {
  const auto interval = std::chrono::microseconds(
      opts_.sample_interval_micros > 0 ? opts_.sample_interval_micros : 50000);
  // Sleep in 1ms slices so Stop() is honored promptly even with a long
  // sample interval.
  const auto slice = std::chrono::milliseconds(1);
  auto waited = std::chrono::microseconds(0);
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(slice);
    waited += std::chrono::duration_cast<std::chrono::microseconds>(slice);
    if (waited < interval) continue;
    waited = std::chrono::microseconds(0);
    SampleNow();
  }
}

const ModeSnapshot* AdaptiveController::Pin() {
  for (;;) {
    ModeSnapshot* s = current_.load(std::memory_order_acquire);
    s->pins.fetch_add(1, std::memory_order_acq_rel);
    if (current_.load(std::memory_order_acquire) == s) return s;
    // A flip slipped between the load and the increment: this pin is on a
    // buffer that may be (or become) the writable spare. Back out and
    // retry — the re-check is what makes every surviving pin visible to
    // DrainPins.
    s->pins.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void AdaptiveController::Unpin(const ModeSnapshot* snapshot) {
  const_cast<ModeSnapshot*>(snapshot)->pins.fetch_sub(
      1, std::memory_order_acq_rel);
}

void AdaptiveController::RecordVerdict(TypeId type, ConflictOutcome why) {
  const size_t slot = ModeSnapshot::SlotOf(type);
  switch (why) {
    case ConflictOutcome::kCommute:
      counters_.Inc(slot, kCtrCommute);
      break;
    case ConflictOutcome::kCase1Grant:
      counters_.Inc(slot, kCtrCase1);
      break;
    case ConflictOutcome::kCase2Wait:
      counters_.Inc(slot, kCtrCase2);
      break;
    case ConflictOutcome::kRootWait:
      counters_.Inc(slot, kCtrRootWait);
      break;
    default:
      break;
  }
}

void AdaptiveController::RecordShadow(TypeId type, bool commutes) {
  counters_.Inc(ModeSnapshot::SlotOf(type),
                commutes ? kCtrShadowCommute : kCtrShadowConflict);
}

void AdaptiveController::RecordAcquire(TypeId type, bool blocked) {
  const size_t slot = ModeSnapshot::SlotOf(type);
  counters_.Inc(slot, kCtrAcquires);
  if (blocked) counters_.Inc(slot, kCtrBlocked);
}

void AdaptiveController::RecordBypass(TypeId type) {
  counters_.Inc(ModeSnapshot::SlotOf(type), kCtrBypasses);
}

CcMode AdaptiveController::Decide(const Window& w, CcMode current,
                                  bool hot_shard,
                                  const AdaptiveOptions& opts) {
  const uint64_t tests = w.ConflictTests();
  const uint64_t shadow = w.shadow_commute + w.shadow_conflict;
  const double commute_share =
      tests > 0 ? double(w.commute + w.case1) / double(tests) : 0.0;
  const double blocked_share =
      w.acquires > 0 ? double(w.blocked) / double(w.acquires) : 0.0;
  switch (current) {
    case CcMode::kSemantic:
      if (tests < opts.min_conflict_samples) return current;
      // Contended but commutativity still wins: keep the semantics, relax
      // the queueing. Checked first — demoting a hot commuting type to 2PL
      // would throw away exactly the grants that relieve the convoy.
      if (blocked_share > opts.hot_blocked_share &&
          commute_share >= opts.demote_commute_share && hot_shard) {
        return CcMode::kPrudent;
      }
      if (commute_share < opts.demote_commute_share) return CcMode::k2PL;
      return current;
    case CcMode::k2PL:
      if (shadow < opts.min_conflict_samples) return current;
      if (double(w.shadow_commute) / double(shadow) >
          opts.promote_commute_share) {
        return CcMode::kSemantic;
      }
      return current;
    case CcMode::kPrudent:
      if (w.acquires < opts.min_conflict_samples) return current;
      if (tests >= opts.min_conflict_samples &&
          commute_share < opts.demote_commute_share) {
        return CcMode::k2PL;
      }
      if (blocked_share < opts.cool_blocked_share) return CcMode::kSemantic;
      return current;
  }
  return current;
}

bool AdaptiveController::DrainPins(ModeSnapshot* buf) {
  // The spare buffer's pins belong to transactions that pinned it while it
  // was current — i.e. before the *previous* flip. They finish on their
  // own; ~2ms covers everything but a long-running straggler, in which
  // case the flip is deferred to the next epoch rather than stalling the
  // sampler indefinitely.
  for (int spin = 0; spin < 40; ++spin) {
    if (buf->pins.load(std::memory_order_acquire) == 0) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return buf->pins.load(std::memory_order_acquire) == 0;
}

uint64_t AdaptiveController::SampleNow() {
  MutexLock lock(sample_mu_);
  const uint64_t epoch = ++epoch_;
  epochs_done_.fetch_add(1, std::memory_order_relaxed);

  // Hot-shard signal from the lock manager's per-shard counter stripes:
  // any shard whose window-blocked share exceeds the hot threshold.
  bool hot_shard = false;
  uint64_t hot = 0;
  const int shards = lm_->num_shards();
  for (int s = 0; s < shards; ++s) {
    const LockStats ss = lm_->shard_stats(static_cast<uint32_t>(s));
    const uint64_t da = ss.acquires - last_shard_acquires_[s];
    const uint64_t db = ss.blocked_acquires - last_shard_blocked_[s];
    last_shard_acquires_[s] = ss.acquires;
    last_shard_blocked_[s] = ss.blocked_acquires;
    if (da >= opts_.min_conflict_samples &&
        double(db) / double(da) > opts_.hot_blocked_share) {
      ++hot;
    }
  }
  hot_shards_.store(hot, std::memory_order_relaxed);
  hot_shard = hot > 0;

  // Per-slot window deltas and decisions.
  std::array<uint8_t, kSlots> next = decided_modes_;
  bool changed = false;
  for (size_t slot = 0; slot < kSlots; ++slot) {
    Window w;
    uint64_t now[kCtrCount];
    for (size_t c = 0; c < kCtrCount; ++c) {
      now[c] = counters_.StripeValue(slot, c);
    }
    w.acquires = now[kCtrAcquires] - last_counts_[slot][kCtrAcquires];
    w.blocked = now[kCtrBlocked] - last_counts_[slot][kCtrBlocked];
    w.commute = now[kCtrCommute] - last_counts_[slot][kCtrCommute];
    w.case1 = now[kCtrCase1] - last_counts_[slot][kCtrCase1];
    w.case2 = now[kCtrCase2] - last_counts_[slot][kCtrCase2];
    w.root_wait = now[kCtrRootWait] - last_counts_[slot][kCtrRootWait];
    w.shadow_commute =
        now[kCtrShadowCommute] - last_counts_[slot][kCtrShadowCommute];
    w.shadow_conflict =
        now[kCtrShadowConflict] - last_counts_[slot][kCtrShadowConflict];
    for (size_t c = 0; c < kCtrCount; ++c) last_counts_[slot][c] = now[c];

    const CcMode cur = static_cast<CcMode>(decided_modes_[slot]);
    CcMode want = cur;
    if (opts_.pin_mode >= 0 && opts_.pin_mode <= 2) {
      want = static_cast<CcMode>(opts_.pin_mode);
    } else {
      want = Decide(w, cur, hot_shard, opts_);
    }
    ++epochs_in_mode_[slot];
    if (want != cur) {
      // Dwell: hold a freshly entered mode for min_dwell_epochs before it
      // may flip again (hysteresis in time, on top of the threshold gaps).
      if (epochs_in_mode_[slot] <= opts_.min_dwell_epochs) continue;
      next[slot] = static_cast<uint8_t>(want);
      changed = true;
    }
  }
  if (!changed) return epoch;

  // Publish: rewrite the spare buffer once its pins have drained, then
  // swing `current_`. Deferral (drain stall) keeps the old assignment —
  // decisions are recomputed from fresh windows next epoch.
  ModeSnapshot* cur_buf = current_.load(std::memory_order_acquire);
  ModeSnapshot* spare = (cur_buf == &buffers_[0]) ? &buffers_[1] : &buffers_[0];
  if (!DrainPins(spare)) {
    drain_stalls_.fetch_add(1, std::memory_order_relaxed);
    return epoch;
  }
  uint64_t flipped = 0;
  for (size_t slot = 0; slot < kSlots; ++slot) {
    spare->modes[slot].store(next[slot], std::memory_order_relaxed);
    if (next[slot] != decided_modes_[slot]) {
      ++flipped;
      epochs_in_mode_[slot] = 0;
      if (trace::Active(lm_->options().trace)) {
        trace::Event e{};
        e.kind = static_cast<uint8_t>(trace::EventKind::kModeFlip);
        e.txn = epoch;
        e.other = slot;
        e.value = next[slot];
        e.verdict = decided_modes_[slot];  // outgoing mode
        e.set_method(CcModeName(static_cast<CcMode>(next[slot])));
        trace::Emit(e);
      }
    }
  }
  spare->epoch = epoch;
  decided_modes_ = next;
  current_.store(spare, std::memory_order_release);
  flips_.fetch_add(flipped, std::memory_order_relaxed);
  return epoch;
}

AdaptiveStats AdaptiveController::stats() const {
  AdaptiveStats s;
  s.epochs = epochs_done_.load(std::memory_order_acquire);
  s.flips = flips_.load(std::memory_order_acquire);
  s.drain_stalls = drain_stalls_.load(std::memory_order_acquire);
  s.hot_shards = hot_shards_.load(std::memory_order_acquire);
  const ModeSnapshot* cur = current_.load(std::memory_order_acquire);
  for (size_t slot = 0; slot < kSlots; ++slot) {
    switch (static_cast<CcMode>(cur->modes[slot].load(
        std::memory_order_relaxed))) {
      case CcMode::kSemantic:
        ++s.types_semantic;
        break;
      case CcMode::k2PL:
        ++s.types_2pl;
        break;
      case CcMode::kPrudent:
        ++s.types_prudent;
        break;
    }
  }
  s.shadow_commute = counters_.Sum(kCtrShadowCommute);
  s.shadow_conflict = counters_.Sum(kCtrShadowConflict);
  return s;
}

std::string AdaptiveStats::ToJson() const {
  metrics::JsonWriter w;
  w.Field("epochs", epochs);
  w.Field("flips", flips);
  w.Field("drain_stalls", drain_stalls);
  w.Field("types_semantic", types_semantic);
  w.Field("types_2pl", types_2pl);
  w.Field("types_prudent", types_prudent);
  w.Field("shadow_commute", shadow_commute);
  w.Field("shadow_conflict", shadow_conflict);
  w.Field("hot_shards", hot_shards);
  return w.Close();
}

}  // namespace semcc
