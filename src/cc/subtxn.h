// Subtransaction tree nodes.
//
// The paper treats the dynamic method invocation hierarchy of an OODBS
// transaction as an open nested transaction: every method invocation (and
// every generic leaf operation) is an action; actions that invoke further
// methods are subtransactions. A SubTxn is one node of that tree.
#ifndef SEMCC_CC_SUBTXN_H_
#define SEMCC_CC_SUBTXN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cc/method_interner.h"
#include "object/oid.h"
#include "object/value.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

class GrantCache;
struct ModeSnapshot;

using TxnId = uint64_t;

enum class TxnState : int {
  kActive = 0,
  kCommitted = 1,  ///< completed; its locks may be retained by ancestors
  kAborted = 2,
};

/// \brief One action in an open nested transaction tree.
///
/// Tree growth (AddChild) is performed only by the transaction's executing
/// thread; other threads (conflict testers, the deadlock detector) traverse
/// concurrently, so children are guarded.
class SubTxn {
 public:
  SubTxn(TxnId id, SubTxn* parent, Oid object, TypeId type, std::string method,
         Args args);
  ~SubTxn();  // out-of-line: grant_cache_ is of forward-declared type
  SEMCC_DISALLOW_COPY_AND_ASSIGN(SubTxn);

  TxnId id() const { return id_; }
  /// Deadlock-victim ordering rank. Defaults to the id; a retried
  /// transaction keeps its FIRST attempt's rank, so retries age instead of
  /// staying "youngest" forever (guarantees progress under deadlock storms).
  TxnId priority() const { return priority_; }
  void set_priority(TxnId p) { priority_ = p; }
  SubTxn* parent() const { return parent_; }
  SubTxn* root() { return root_; }
  const SubTxn* root() const { return root_; }
  bool is_root() const { return parent_ == nullptr; }
  int depth() const { return depth_; }

  Oid object() const { return object_; }
  TypeId type() const { return type_; }
  const std::string& method() const { return method_; }
  /// Interned id of method(), cached at construction so the lock manager's
  /// conflict test never hashes strings.
  MethodId method_id() const { return method_id_; }
  const Args& args() const { return args_; }

  TxnState state() const { return state_.load(std::memory_order_acquire); }
  /// Completed = committed or aborted (paper: "t is completed").
  bool completed() const { return state() != TxnState::kActive; }
  bool committed() const { return state() == TxnState::kCommitted; }
  void set_state(TxnState s) { state_.store(s, std::memory_order_release); }

  /// True on the root once it has been chosen as a deadlock victim or asked
  /// to abort; the executing thread observes it at its next action.
  bool abort_requested() const {
    return abort_requested_.load(std::memory_order_acquire);
  }
  void RequestAbort() { abort_requested_.store(true, std::memory_order_release); }

  /// Compensating actions run while the transaction is flagged for abort;
  /// they must still be able to acquire locks (same-root locks never block,
  /// but the abort short-circuit has to be bypassed). Set before the first
  /// lock request, by the owning thread.
  bool compensation() const { return compensation_; }
  void set_compensation(bool v) { compensation_ = v; }

  bool IsAncestorOf(const SubTxn* other) const;
  bool SameRootAs(const SubTxn* other) const { return root_ == other->root_; }

  /// Proper ancestors, bottom-up: parent first, root last (the paper's
  /// "ancestor chain of a subtransaction t ... in bottom-up order").
  std::vector<SubTxn*> AncestorChain() const;

  void AddChild(SubTxn* child);
  /// Snapshot of children (ordered by invocation).
  std::vector<SubTxn*> Children() const;
  /// Incomplete children only (deadlock detector's completion dependencies).
  std::vector<SubTxn*> IncompleteChildren() const;

  // --- lock-manager scratch (maintained on the ROOT node only) ------------
  /// Shards of the sharded lock table that may hold entries of this tree
  /// (bit `shard mod 64`); lets the release sweeps skip untouched shards.
  void NoteLockShard(uint32_t shard_idx) {
    lock_shards_.fetch_or(uint64_t{1} << (shard_idx & 63),
                          std::memory_order_relaxed);
  }
  uint64_t lock_shards() const {
    return lock_shards_.load(std::memory_order_relaxed);
  }

  /// Adaptive-mode snapshot pinned for this tree's lifetime (ROOT node
  /// only; null when adaptive_mode is off). Set by TxnManager before the
  /// root's first action, cleared after release — single-writer, and every
  /// reader (Acquire on the tree's own thread) runs strictly between those
  /// points, so a plain pointer suffices (cc/adaptive_controller.h).
  const ModeSnapshot* mode_snapshot() const { return mode_snapshot_; }
  void set_mode_snapshot(const ModeSnapshot* s) { mode_snapshot_ = s; }

  /// Per-tree grant cache (cc/grant_cache.h), maintained on the ROOT node.
  /// Accessed only by the tree's executing thread; see the threading note
  /// in grant_cache.h. Null until the lock manager first publishes a slot.
  GrantCache* grant_cache() { return grant_cache_.get(); }
  /// Lazily allocate the cache (lock manager, on first publication).
  GrantCache& EnsureGrantCache();
  /// Drop every cached slot (ReleaseTree; TxnCtx::Rollback before
  /// compensation). Must run before any queue entry of the tree is removed.
  void ClearGrantCache();

  // --- timestamps for the history / serializability checker --------------
  uint64_t grant_seq() const { return grant_seq_; }
  void set_grant_seq(uint64_t s) { grant_seq_ = s; }
  uint64_t end_seq() const { return end_seq_; }
  void set_end_seq(uint64_t s) { end_seq_ = s; }

  // --- snapshot-read bookkeeping (ProtocolOptions::mvcc_reads) ------------
  /// On the ROOT of a snapshot-read transaction: the snapshot timestamp S
  /// it reads as of. 0 on locking transactions. Set once at begin, by the
  /// owning thread, before any action runs.
  bool snapshot() const { return snapshot_ts_ != 0 || snapshot_; }
  uint64_t snapshot_ts() const { return snapshot_ts_; }
  void set_snapshot_ts(uint64_t s) {
    snapshot_ = true;
    snapshot_ts_ = s;
  }
  /// On a leaf READ action of a snapshot transaction: the version timestamp
  /// the read observed (0 = base/pre-first-write state). Feeds the
  /// snapshot-reads serializability check via the history recorder.
  uint64_t observed_ts() const { return observed_ts_; }
  void set_observed_ts(uint64_t ts) { observed_ts_ = ts; }

  /// Compensation for this completed action, set after successful execution.
  /// Run (in reverse order of completion) when an ancestor aborts.
  std::function<void()> inverse;
  /// If true, `inverse` fully compensates this subtree; otherwise abort
  /// recurses into the children.
  bool inverse_is_total = false;

  std::string Label() const;  ///< e.g. "ShipOrder(@3, 17)"
  std::string PathString() const;

 private:
  const TxnId id_;
  TxnId priority_;
  SubTxn* const parent_;
  SubTxn* root_;
  const int depth_;
  const Oid object_;
  const TypeId type_;
  const std::string method_;
  const MethodId method_id_;
  const Args args_;
  std::atomic<TxnState> state_{TxnState::kActive};
  std::atomic<bool> abort_requested_{false};
  std::atomic<uint64_t> lock_shards_{0};
  std::unique_ptr<GrantCache> grant_cache_;
  const ModeSnapshot* mode_snapshot_ = nullptr;  // root only; owner thread
  bool compensation_ = false;
  uint64_t grant_seq_ = 0;
  uint64_t end_seq_ = 0;
  bool snapshot_ = false;      // root only; owner-thread, set before use
  uint64_t snapshot_ts_ = 0;   // root only
  uint64_t observed_ts_ = 0;   // leaf reads of snapshot transactions

  mutable Mutex children_mu_;
  std::vector<SubTxn*> children_ SEMCC_GUARDED_BY(children_mu_);
};

/// \brief Owner of a transaction tree: allocates nodes, keeps them alive
/// until the transaction is fully finished and its locks are released.
class TxnTree {
 public:
  /// \param root_object what the root acts on — by the paper's footnote 2,
  /// transactions are actions on the object "Database".
  TxnTree(TxnId root_id, std::string name, Oid root_object, TypeId root_type);
  SEMCC_DISALLOW_COPY_AND_ASSIGN(TxnTree);

  SubTxn* root() { return root_; }

  SubTxn* NewNode(SubTxn* parent, Oid object, TypeId type, std::string method,
                  Args args);

  /// All nodes in creation order (history extraction).
  std::vector<SubTxn*> Nodes() const;

  static TxnId NextId();

 private:
  mutable Mutex mu_;
  std::vector<std::unique_ptr<SubTxn>> nodes_ SEMCC_GUARDED_BY(mu_);
  SubTxn* root_;
};

}  // namespace semcc

#endif  // SEMCC_CC_SUBTXN_H_
