// Commutativity-based compatibility of method invocations (paper §2.2, §3).
//
// Two method invocations f and g on the same object commute iff the two
// sequential executions fg and gf are behaviorally equivalent: same return
// values for f and g, and same return values for every later invocation.
// Compatibility is specified per object type, either as a state-independent
// matrix entry or as a parameter-dependent predicate ("taking into account
// the actual input parameters of operations"), e.g. ChangeStatus(o, e1)
// commutes with TestStatus(o, e2) iff e1 != e2 (paper Figure 3).
//
// Hot-path layout: every Define/DefinePredicate recompiles the registered
// entries into an immutable snapshot of dense per-type tables indexed by
// interned MethodId pairs (cc/method_interner.h). The id-based Commute()
// overload — the one the lock manager's conflict test calls — is an atomic
// snapshot-pointer load plus two indexed loads for static entries; only
// predicate entries and the string-keyed legacy overload ever take a lock.
// Old snapshots are kept alive until the registry dies, so readers never
// synchronize with writers.
#ifndef SEMCC_CC_COMPATIBILITY_H_
#define SEMCC_CC_COMPATIBILITY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cc/method_interner.h"
#include "object/oid.h"
#include "object/value.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// Names of the built-in generic operations on atomic and set objects
/// (paper §2.2). The registry knows their commutativity out of the box.
namespace generic_ops {
inline constexpr const char* kGet = "Get";
inline constexpr const char* kPut = "Put";
inline constexpr const char* kInsert = "Insert";   // args: [key, member-ref]
inline constexpr const char* kRemove = "Remove";   // args: [key]
inline constexpr const char* kSelect = "Select";   // args: [key]
inline constexpr const char* kScan = "Scan";       // args: []
inline constexpr const char* kSize = "Size";       // args: []
inline constexpr const char* kMember = "Member";   // args: [key]
inline constexpr const char* kRangeScan = "RangeScan";  // args: [lo, hi]
}  // namespace generic_ops

/// \brief Where a method's key footprint lives in its argument list.
///
/// One footprint describes the set of member keys a method may read or
/// write inside its object, as a function of the actual arguments: nothing,
/// one point key, a closed range, every key, or a half-open lower-bounded
/// range (an "allocates at or above this hint" postcondition, e.g.
/// NewOrder's fresh OrderNo).
struct KeyRef {
  enum class Kind : uint8_t {
    kNone = 0,        ///< no keyed access
    kPoint = 1,       ///< exactly the key in args[arg_a]
    kRange = 2,       ///< the closed range [args[arg_a], args[arg_b]]
    kAll = 3,         ///< every key (whole-set scan)
    kLowerBound = 4,  ///< [args[arg_a], +inf)
  };
  Kind kind = Kind::kNone;
  uint8_t arg_a = 0;  ///< argument index of the point / range-low key
  uint8_t arg_b = 0;  ///< argument index of the range-high key (kRange)

  static KeyRef None() { return {}; }
  static KeyRef Point(uint8_t arg) { return {Kind::kPoint, arg, 0}; }
  static KeyRef Range(uint8_t lo_arg, uint8_t hi_arg) {
    return {Kind::kRange, lo_arg, hi_arg};
  }
  static KeyRef All() { return {Kind::kAll, 0, 0}; }
  static KeyRef LowerBound(uint8_t arg) {
    return {Kind::kLowerBound, arg, 0};
  }
};

/// \brief Declarative pre/postcondition footprint of one method over the
/// keyed members of a set-like object: which keys it reads, which it
/// writes, and how it interacts with the membership count.
///
/// Two uses (DESIGN.md §5.8):
///  * derivation — for a pair of `exact` specs, the commutativity verdict
///    (static cell or key-overlap predicate) is *computed* from the two
///    footprints instead of hand-written (CompatibilityRegistry::
///    DefineMethodSpec), and tools/matrix_verify re-derives every such cell
///    to prove the published tables agree with the algebra;
///  * runtime key intervals — the lock manager asks KeyInterval() for the
///    concrete [lo, hi] an invocation touches and skips provably disjoint
///    queue entries before consulting the matrix (keyrange_locks).
struct MethodSpec {
  KeyRef reads;
  KeyRef writes;
  /// The method's result depends on the membership count (e.g. Size);
  /// conflicts with any size_delta != 0 method regardless of keys.
  bool observes_size = false;
  /// Net membership-count change (+1 insert, -1 remove, 0 otherwise).
  int size_delta = 0;
  /// True: the footprint is COMPLETE — everything the method depends on or
  /// changes inside the object is captured, so matrix cells may be derived
  /// from it. False: an upper-bound footprint used only for the runtime
  /// key-interval annotation (the hand-written matrix stays authoritative);
  /// e.g. Item::NewOrder, whose NextOrderNo/QuantityOnHand couplings live
  /// outside the OrderNo key space.
  bool exact = true;
};

/// \brief Per-type compatibility specification.
///
/// Unknown pairs **conflict** — the safe default; it also makes transaction
/// roots (actions on the "Database" object) mutually conflicting, which is
/// the paper's worst case ("waiting for the top-level commit").
class CompatibilityRegistry {
 public:
  /// Symmetric predicate; receives the argument lists of the two invocations
  /// in the order the pair was registered (m1's args first).
  using Predicate = std::function<bool(const Args&, const Args&)>;

  CompatibilityRegistry() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(CompatibilityRegistry);

  /// Register a state-independent matrix entry (symmetric).
  void Define(TypeId type, const std::string& m1, const std::string& m2,
              bool compatible);

  /// Register a parameter-dependent entry (symmetric).
  void DefinePredicate(TypeId type, const std::string& m1,
                       const std::string& m2, Predicate pred);

  /// Declare a method name so it shows up in MethodsOf() / matrix printing.
  void DeclareMethod(TypeId type, const std::string& method);

  /// Register the declarative footprint of (type, method) and — for every
  /// pair of *exact* specs of this type that has no hand-written entry yet —
  /// derive and install the matrix cell from the two footprints: a static
  /// commute/conflict cell when the verdict is argument-independent, a
  /// key-overlap predicate (SpecsCommute over the actual arguments)
  /// otherwise. Also declares the method. Non-exact specs derive no cells;
  /// they only feed the runtime key-interval annotation (KeyInterval).
  void DefineMethodSpec(TypeId type, const std::string& method,
                        const MethodSpec& spec);

  /// The spec of (type, m) from the compiled snapshot, falling back to the
  /// built-in generic-operation specs; nullopt if neither exists.
  std::optional<MethodSpec> MethodSpecOf(TypeId type, MethodId m) const;

  /// Built-in footprints of the generic set operations (Insert, Remove,
  /// Select, Member, RangeScan, Scan, Size). nullopt for Get/Put (atomic
  /// objects have no key space) and for non-generic ids.
  static std::optional<MethodSpec> GenericMethodSpec(MethodId m);

  /// Closed key interval the invocation (type, m, args) may touch: the hull
  /// of its spec's read+write footprints under `args`. False — no interval,
  /// caller must assume the whole object — when there is no spec, the
  /// method observes the membership count (size dependence is not
  /// key-local), the footprint is empty, or a footprint argument is
  /// missing / not an integer.
  bool KeyInterval(TypeId type, MethodId m, const Args& args, int64_t* lo,
                   int64_t* hi) const;

  // --- derivation algebra (static; also used by cc/matrix_verifier to
  // re-derive and cross-check every published cell) ------------------------

  enum class DerivedCell : uint8_t { kCompatible, kConflict, kPredicate };

  /// The cell the two footprints imply: conflict if any write footprint
  /// always overlaps the other's read/write footprint or the pair is
  /// size-coupled (one observes the count the other changes); predicate if
  /// some overlap depends on the actual arguments; compatible otherwise.
  static DerivedCell DeriveCell(const MethodSpec& s1, const MethodSpec& s2);

  /// Runtime evaluation of a derived predicate cell: the invocations
  /// commute iff no (write, write/read) footprint pair overlaps under the
  /// actual arguments and the pair is not size-coupled. A footprint whose
  /// argument is missing is assumed to overlap everything (safe default,
  /// mirroring the generic rules' empty-args clash).
  static bool SpecsCommute(const MethodSpec& s1, const Args& a1,
                           const MethodSpec& s2, const Args& a2);

  /// Methods of `type` with a registered spec, in name order; `exact_only`
  /// filters to the derivation-eligible ones.
  std::vector<std::string> SpecMethodsOf(TypeId type,
                                         bool exact_only = false) const;

  /// Do invocations (m1, a1) and (m2, a2) on the same object of `type`
  /// commute? Hot path: dense compiled tables over interned ids; static
  /// entries never lock or hash, predicates fall back to the id-keyed
  /// snapshot entry, unknown pairs fall through to the generic rules, else
  /// conflict.
  bool Commute(TypeId type, MethodId m1, const Args& a1, MethodId m2,
               const Args& a2) const;

  /// String-keyed convenience overload (tests, matrix printing, callers
  /// without a cached id). Interns and delegates.
  bool Commute(TypeId type, const std::string& m1, const Args& a1,
               const std::string& m2, const Args& a2) const;

  /// Can the commute verdict of ANY invocation pair involving an
  /// invocation (type, m, args) depend on that invocation's actual
  /// arguments? False means every `Commute(type, m, a, ...)` /
  /// `Commute(type, ..., m, a)` result is independent of `a`, so the lock
  /// manager may treat two invocations of m differing only in arguments as
  /// the same conflict class (grant-cache hits, entry coalescing —
  /// DESIGN.md §5.4). Conservative: true whenever a predicate entry
  /// mentions m for this type (predicates may read either side's args), or
  /// m is a key-addressed generic op (Insert/Remove/Select). O(1): reads a
  /// bitvector precomputed at Recompile time.
  bool ArgsMatter(TypeId type, MethodId m) const;

  /// Built-in commutativity of generic operations by fixed id
  /// (generic_ids); nullopt if (m1, m2) is not a generic pair.
  static std::optional<bool> GenericCommute(MethodId m1, const Args& a1,
                                            MethodId m2, const Args& a2);

  /// Built-in commutativity of generic operations by name; nullopt if
  /// (m1, m2) is not a generic pair.
  static std::optional<bool> GenericCommute(const std::string& m1,
                                            const Args& a1,
                                            const std::string& m2,
                                            const Args& a2);

  /// Declared methods of a type, in declaration order.
  std::vector<std::string> MethodsOf(TypeId type) const;

  // --- verification introspection (tools/matrix_verify) -------------------
  // The build-time matrix verifier (cc/matrix_verifier.h) checks the
  // compiled dense tables against the registration-level view: symmetry of
  // cells, predicate/dense agreement, args_sensitive soundness, and matrix
  // totality. These read-only accessors expose exactly what it needs; the
  // hot path never touches them.

  /// Kind of one compiled dense cell (mirrors the private Cell encoding).
  enum class CellKind : uint8_t {
    kCellUnknown = 0,     ///< unregistered: generic rules, else conflict
    kCellCompatible = 1,  ///< static entry: commute
    kCellConflict = 2,    ///< static entry: conflict
    kCellPredicate = 3,   ///< parameter-dependent
  };

  /// The compiled dense cell for (m1, m2) of `type` in the published
  /// snapshot. kCellUnknown when no snapshot, no table, or out of range.
  CellKind CompiledCell(TypeId type, MethodId m1, MethodId m2) const;

  /// The raw args_sensitive bit of the compiled snapshot (WITHOUT the
  /// generic key-addressed-op override that ArgsMatter layers on top).
  bool CompiledArgsSensitive(TypeId type, MethodId m) const;

  /// Dimension (interner size at compile time) of `type`'s compiled table;
  /// 0 if the type has no table.
  uint32_t CompiledDim(TypeId type) const;

  /// Types that have at least one registered entry.
  std::vector<TypeId> RegisteredTypes() const;

  /// All registered (canonically ordered) method-name pairs of `type`.
  std::vector<std::pair<std::string, std::string>> RegisteredPairs(
      TypeId type) const;

  // --- test-only mutation hooks (tests/matrix_verify_test.cc) -------------
  // Corrupt the PUBLISHED snapshot in place so the verifier's rejection of
  // each defect class can be exercised. One direction only — Define() always
  // writes symmetric cells, so a broken matrix can otherwise not be built
  // through the public API. Never call outside tests.

  /// Overwrite the single cell (m1, m2) — not (m2, m1) — with `cell`
  /// (a raw CellKind value). Returns false if the cell is out of range.
  bool TestOnlyCorruptCell(TypeId type, const std::string& m1,
                           const std::string& m2, CellKind cell);

  /// Overwrite args_sensitive[m]. Returns false if out of range.
  bool TestOnlyCorruptArgsSensitive(TypeId type, const std::string& m,
                                    bool sensitive);

  /// Overwrite the published snapshot's spec for (type, method) WITHOUT
  /// recompiling or re-deriving — seeds a spec/matrix disagreement for the
  /// verifier's derivation-agreement mutation tests. Returns false if the
  /// method has no compiled spec.
  bool TestOnlyCorruptSpec(TypeId type, const std::string& method,
                           const MethodSpec& spec);

  /// For matrix printing: the static entry, or nullopt if the pair is
  /// predicate-based or unregistered.
  std::optional<bool> StaticEntry(TypeId type, const std::string& m1,
                                  const std::string& m2) const;
  bool HasPredicate(TypeId type, const std::string& m1,
                    const std::string& m2) const;

 private:
  struct Entry {
    bool is_predicate = false;
    bool compatible = false;
    Predicate pred;
    bool swapped = false;  // true if stored under (m2, m1)
  };
  using PairKey = std::pair<std::string, std::string>;

  /// One dense cell of a compiled per-type table.
  enum Cell : uint8_t {
    kUnknown = 0,     ///< pair not registered: generic rules, else conflict
    kCompatible = 1,  ///< static entry: commute
    kConflict = 2,    ///< static entry: conflict
    kPredicate = 3,   ///< parameter-dependent: see preds
  };

  /// A predicate reference with the argument order pre-resolved for one
  /// query direction (the predicate contract hands the first registered
  /// method's args first).
  struct PredRef {
    Predicate pred;
    bool args_in_order;  ///< pred(a1, a2) if true, pred(a2, a1) otherwise
  };

  /// Immutable compiled snapshot of the registry.
  struct Compiled {
    /// Dense id-pair tables for types in [0, dense_types.size()).
    struct TypeTable {
      uint32_t dim = 0;                ///< interner size at compile time
      std::vector<uint8_t> cells;      ///< dim * dim Cell values
      /// args_sensitive[m] != 0 iff some kPredicate cell of this type is in
      /// row m (precomputed for ArgsMatter; the generic key-addressed ops
      /// are handled type-independently there).
      std::vector<uint8_t> args_sensitive;
      /// Directional predicate refs keyed by (m1, m2) ids; consulted only
      /// when the cell says kPredicate.
      std::map<std::pair<MethodId, MethodId>, PredRef> preds;
      /// Registered method specs by id (KeyInterval / MethodSpecOf); the
      /// generic-op fallback is layered on in MethodSpecOf, not stored.
      std::map<MethodId, MethodSpec> specs;

      Cell CellAt(MethodId m1, MethodId m2) const {
        if (m1 >= dim || m2 >= dim) return kUnknown;
        return static_cast<Cell>(cells[static_cast<size_t>(m1) * dim + m2]);
      }
    };
    std::vector<TypeTable> dense_types;
    /// Types whose id exceeded the dense bound (never in practice; schema
    /// ids are sequential and small).
    std::map<TypeId, TypeTable> overflow_types;

    const TypeTable* TableFor(TypeId type) const {
      if (type < dense_types.size()) return &dense_types[type];
      if (overflow_types.empty()) return nullptr;
      auto it = overflow_types.find(type);
      return it == overflow_types.end() ? nullptr : &it->second;
    }
  };

  /// Largest TypeId stored in the dense vector (inclusive).
  static constexpr TypeId kMaxDenseTypeId = 4095;

  const Entry* FindEntry(TypeId type, const std::string& m1,
                         const std::string& m2, bool* swapped) const
      SEMCC_REQUIRES_SHARED(mu_);

  /// Rebuild the compiled snapshot from table_ and publish it.
  void Recompile() SEMCC_REQUIRES(mu_);

  mutable SharedMutex mu_;
  std::map<TypeId, std::map<PairKey, Entry>> table_ SEMCC_GUARDED_BY(mu_);
  std::map<TypeId, std::vector<std::string>> methods_ SEMCC_GUARDED_BY(mu_);
  /// Registered method specs (DefineMethodSpec), by type and method name;
  /// compiled into each snapshot's TypeTable::specs at Recompile time.
  std::map<TypeId, std::map<std::string, MethodSpec>> specs_
      SEMCC_GUARDED_BY(mu_);

  /// Published snapshot; old versions stay alive in snapshots_ so readers
  /// can keep dereferencing a stale pointer without coordination.
  std::atomic<const Compiled*> compiled_{nullptr};
  std::vector<std::unique_ptr<Compiled>> snapshots_ SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_CC_COMPATIBILITY_H_
