// Commutativity-based compatibility of method invocations (paper §2.2, §3).
//
// Two method invocations f and g on the same object commute iff the two
// sequential executions fg and gf are behaviorally equivalent: same return
// values for f and g, and same return values for every later invocation.
// Compatibility is specified per object type, either as a state-independent
// matrix entry or as a parameter-dependent predicate ("taking into account
// the actual input parameters of operations"), e.g. ChangeStatus(o, e1)
// commutes with TestStatus(o, e2) iff e1 != e2 (paper Figure 3).
//
// Hot-path layout: every Define/DefinePredicate recompiles the registered
// entries into an immutable snapshot of dense per-type tables indexed by
// interned MethodId pairs (cc/method_interner.h). The id-based Commute()
// overload — the one the lock manager's conflict test calls — is an atomic
// snapshot-pointer load plus two indexed loads for static entries; only
// predicate entries and the string-keyed legacy overload ever take a lock.
// Old snapshots are kept alive until the registry dies, so readers never
// synchronize with writers.
#ifndef SEMCC_CC_COMPATIBILITY_H_
#define SEMCC_CC_COMPATIBILITY_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cc/method_interner.h"
#include "object/oid.h"
#include "object/value.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// Names of the built-in generic operations on atomic and set objects
/// (paper §2.2). The registry knows their commutativity out of the box.
namespace generic_ops {
inline constexpr const char* kGet = "Get";
inline constexpr const char* kPut = "Put";
inline constexpr const char* kInsert = "Insert";   // args: [key, member-ref]
inline constexpr const char* kRemove = "Remove";   // args: [key]
inline constexpr const char* kSelect = "Select";   // args: [key]
inline constexpr const char* kScan = "Scan";       // args: []
inline constexpr const char* kSize = "Size";       // args: []
}  // namespace generic_ops

/// \brief Per-type compatibility specification.
///
/// Unknown pairs **conflict** — the safe default; it also makes transaction
/// roots (actions on the "Database" object) mutually conflicting, which is
/// the paper's worst case ("waiting for the top-level commit").
class CompatibilityRegistry {
 public:
  /// Symmetric predicate; receives the argument lists of the two invocations
  /// in the order the pair was registered (m1's args first).
  using Predicate = std::function<bool(const Args&, const Args&)>;

  CompatibilityRegistry() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(CompatibilityRegistry);

  /// Register a state-independent matrix entry (symmetric).
  void Define(TypeId type, const std::string& m1, const std::string& m2,
              bool compatible);

  /// Register a parameter-dependent entry (symmetric).
  void DefinePredicate(TypeId type, const std::string& m1,
                       const std::string& m2, Predicate pred);

  /// Declare a method name so it shows up in MethodsOf() / matrix printing.
  void DeclareMethod(TypeId type, const std::string& method);

  /// Do invocations (m1, a1) and (m2, a2) on the same object of `type`
  /// commute? Hot path: dense compiled tables over interned ids; static
  /// entries never lock or hash, predicates fall back to the id-keyed
  /// snapshot entry, unknown pairs fall through to the generic rules, else
  /// conflict.
  bool Commute(TypeId type, MethodId m1, const Args& a1, MethodId m2,
               const Args& a2) const;

  /// String-keyed convenience overload (tests, matrix printing, callers
  /// without a cached id). Interns and delegates.
  bool Commute(TypeId type, const std::string& m1, const Args& a1,
               const std::string& m2, const Args& a2) const;

  /// Can the commute verdict of ANY invocation pair involving an
  /// invocation (type, m, args) depend on that invocation's actual
  /// arguments? False means every `Commute(type, m, a, ...)` /
  /// `Commute(type, ..., m, a)` result is independent of `a`, so the lock
  /// manager may treat two invocations of m differing only in arguments as
  /// the same conflict class (grant-cache hits, entry coalescing —
  /// DESIGN.md §5.4). Conservative: true whenever a predicate entry
  /// mentions m for this type (predicates may read either side's args), or
  /// m is a key-addressed generic op (Insert/Remove/Select). O(1): reads a
  /// bitvector precomputed at Recompile time.
  bool ArgsMatter(TypeId type, MethodId m) const;

  /// Built-in commutativity of generic operations by fixed id
  /// (generic_ids); nullopt if (m1, m2) is not a generic pair.
  static std::optional<bool> GenericCommute(MethodId m1, const Args& a1,
                                            MethodId m2, const Args& a2);

  /// Built-in commutativity of generic operations by name; nullopt if
  /// (m1, m2) is not a generic pair.
  static std::optional<bool> GenericCommute(const std::string& m1,
                                            const Args& a1,
                                            const std::string& m2,
                                            const Args& a2);

  /// Declared methods of a type, in declaration order.
  std::vector<std::string> MethodsOf(TypeId type) const;

  // --- verification introspection (tools/matrix_verify) -------------------
  // The build-time matrix verifier (cc/matrix_verifier.h) checks the
  // compiled dense tables against the registration-level view: symmetry of
  // cells, predicate/dense agreement, args_sensitive soundness, and matrix
  // totality. These read-only accessors expose exactly what it needs; the
  // hot path never touches them.

  /// Kind of one compiled dense cell (mirrors the private Cell encoding).
  enum class CellKind : uint8_t {
    kCellUnknown = 0,     ///< unregistered: generic rules, else conflict
    kCellCompatible = 1,  ///< static entry: commute
    kCellConflict = 2,    ///< static entry: conflict
    kCellPredicate = 3,   ///< parameter-dependent
  };

  /// The compiled dense cell for (m1, m2) of `type` in the published
  /// snapshot. kCellUnknown when no snapshot, no table, or out of range.
  CellKind CompiledCell(TypeId type, MethodId m1, MethodId m2) const;

  /// The raw args_sensitive bit of the compiled snapshot (WITHOUT the
  /// generic key-addressed-op override that ArgsMatter layers on top).
  bool CompiledArgsSensitive(TypeId type, MethodId m) const;

  /// Dimension (interner size at compile time) of `type`'s compiled table;
  /// 0 if the type has no table.
  uint32_t CompiledDim(TypeId type) const;

  /// Types that have at least one registered entry.
  std::vector<TypeId> RegisteredTypes() const;

  /// All registered (canonically ordered) method-name pairs of `type`.
  std::vector<std::pair<std::string, std::string>> RegisteredPairs(
      TypeId type) const;

  // --- test-only mutation hooks (tests/matrix_verify_test.cc) -------------
  // Corrupt the PUBLISHED snapshot in place so the verifier's rejection of
  // each defect class can be exercised. One direction only — Define() always
  // writes symmetric cells, so a broken matrix can otherwise not be built
  // through the public API. Never call outside tests.

  /// Overwrite the single cell (m1, m2) — not (m2, m1) — with `cell`
  /// (a raw CellKind value). Returns false if the cell is out of range.
  bool TestOnlyCorruptCell(TypeId type, const std::string& m1,
                           const std::string& m2, CellKind cell);

  /// Overwrite args_sensitive[m]. Returns false if out of range.
  bool TestOnlyCorruptArgsSensitive(TypeId type, const std::string& m,
                                    bool sensitive);

  /// For matrix printing: the static entry, or nullopt if the pair is
  /// predicate-based or unregistered.
  std::optional<bool> StaticEntry(TypeId type, const std::string& m1,
                                  const std::string& m2) const;
  bool HasPredicate(TypeId type, const std::string& m1,
                    const std::string& m2) const;

 private:
  struct Entry {
    bool is_predicate = false;
    bool compatible = false;
    Predicate pred;
    bool swapped = false;  // true if stored under (m2, m1)
  };
  using PairKey = std::pair<std::string, std::string>;

  /// One dense cell of a compiled per-type table.
  enum Cell : uint8_t {
    kUnknown = 0,     ///< pair not registered: generic rules, else conflict
    kCompatible = 1,  ///< static entry: commute
    kConflict = 2,    ///< static entry: conflict
    kPredicate = 3,   ///< parameter-dependent: see preds
  };

  /// A predicate reference with the argument order pre-resolved for one
  /// query direction (the predicate contract hands the first registered
  /// method's args first).
  struct PredRef {
    Predicate pred;
    bool args_in_order;  ///< pred(a1, a2) if true, pred(a2, a1) otherwise
  };

  /// Immutable compiled snapshot of the registry.
  struct Compiled {
    /// Dense id-pair tables for types in [0, dense_types.size()).
    struct TypeTable {
      uint32_t dim = 0;                ///< interner size at compile time
      std::vector<uint8_t> cells;      ///< dim * dim Cell values
      /// args_sensitive[m] != 0 iff some kPredicate cell of this type is in
      /// row m (precomputed for ArgsMatter; the generic key-addressed ops
      /// are handled type-independently there).
      std::vector<uint8_t> args_sensitive;
      /// Directional predicate refs keyed by (m1, m2) ids; consulted only
      /// when the cell says kPredicate.
      std::map<std::pair<MethodId, MethodId>, PredRef> preds;

      Cell CellAt(MethodId m1, MethodId m2) const {
        if (m1 >= dim || m2 >= dim) return kUnknown;
        return static_cast<Cell>(cells[static_cast<size_t>(m1) * dim + m2]);
      }
    };
    std::vector<TypeTable> dense_types;
    /// Types whose id exceeded the dense bound (never in practice; schema
    /// ids are sequential and small).
    std::map<TypeId, TypeTable> overflow_types;

    const TypeTable* TableFor(TypeId type) const {
      if (type < dense_types.size()) return &dense_types[type];
      if (overflow_types.empty()) return nullptr;
      auto it = overflow_types.find(type);
      return it == overflow_types.end() ? nullptr : &it->second;
    }
  };

  /// Largest TypeId stored in the dense vector (inclusive).
  static constexpr TypeId kMaxDenseTypeId = 4095;

  const Entry* FindEntry(TypeId type, const std::string& m1,
                         const std::string& m2, bool* swapped) const
      SEMCC_REQUIRES_SHARED(mu_);

  /// Rebuild the compiled snapshot from table_ and publish it.
  void Recompile() SEMCC_REQUIRES(mu_);

  mutable SharedMutex mu_;
  std::map<TypeId, std::map<PairKey, Entry>> table_ SEMCC_GUARDED_BY(mu_);
  std::map<TypeId, std::vector<std::string>> methods_ SEMCC_GUARDED_BY(mu_);

  /// Published snapshot; old versions stay alive in snapshots_ so readers
  /// can keep dereferencing a stale pointer without coordination.
  std::atomic<const Compiled*> compiled_{nullptr};
  std::vector<std::unique_ptr<Compiled>> snapshots_ SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_CC_COMPATIBILITY_H_
