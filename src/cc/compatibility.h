// Commutativity-based compatibility of method invocations (paper §2.2, §3).
//
// Two method invocations f and g on the same object commute iff the two
// sequential executions fg and gf are behaviorally equivalent: same return
// values for f and g, and same return values for every later invocation.
// Compatibility is specified per object type, either as a state-independent
// matrix entry or as a parameter-dependent predicate ("taking into account
// the actual input parameters of operations"), e.g. ChangeStatus(o, e1)
// commutes with TestStatus(o, e2) iff e1 != e2 (paper Figure 3).
#ifndef SEMCC_CC_COMPATIBILITY_H_
#define SEMCC_CC_COMPATIBILITY_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "object/oid.h"
#include "object/value.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// Names of the built-in generic operations on atomic and set objects
/// (paper §2.2). The registry knows their commutativity out of the box.
namespace generic_ops {
inline constexpr const char* kGet = "Get";
inline constexpr const char* kPut = "Put";
inline constexpr const char* kInsert = "Insert";   // args: [key, member-ref]
inline constexpr const char* kRemove = "Remove";   // args: [key]
inline constexpr const char* kSelect = "Select";   // args: [key]
inline constexpr const char* kScan = "Scan";       // args: []
inline constexpr const char* kSize = "Size";       // args: []
}  // namespace generic_ops

/// \brief Per-type compatibility specification.
///
/// Unknown pairs **conflict** — the safe default; it also makes transaction
/// roots (actions on the "Database" object) mutually conflicting, which is
/// the paper's worst case ("waiting for the top-level commit").
class CompatibilityRegistry {
 public:
  /// Symmetric predicate; receives the argument lists of the two invocations
  /// in the order the pair was registered (m1's args first).
  using Predicate = std::function<bool(const Args&, const Args&)>;

  CompatibilityRegistry() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(CompatibilityRegistry);

  /// Register a state-independent matrix entry (symmetric).
  void Define(TypeId type, const std::string& m1, const std::string& m2,
              bool compatible);

  /// Register a parameter-dependent entry (symmetric).
  void DefinePredicate(TypeId type, const std::string& m1,
                       const std::string& m2, Predicate pred);

  /// Declare a method name so it shows up in MethodsOf() / matrix printing.
  void DeclareMethod(TypeId type, const std::string& method);

  /// Do invocations (m1, a1) and (m2, a2) on the same object of `type`
  /// commute? Checks the per-type table first, then the built-in rules for
  /// generic operations, else conflicts.
  bool Commute(TypeId type, const std::string& m1, const Args& a1,
               const std::string& m2, const Args& a2) const;

  /// Built-in commutativity of generic operations; nullopt if (m1, m2) is
  /// not a generic pair.
  static std::optional<bool> GenericCommute(const std::string& m1,
                                            const Args& a1,
                                            const std::string& m2,
                                            const Args& a2);

  /// Declared methods of a type, in declaration order.
  std::vector<std::string> MethodsOf(TypeId type) const;

  /// For matrix printing: the static entry, or nullopt if the pair is
  /// predicate-based or unregistered.
  std::optional<bool> StaticEntry(TypeId type, const std::string& m1,
                                  const std::string& m2) const;
  bool HasPredicate(TypeId type, const std::string& m1,
                    const std::string& m2) const;

 private:
  struct Entry {
    bool is_predicate = false;
    bool compatible = false;
    Predicate pred;
    bool swapped = false;  // true if stored under (m2, m1)
  };
  using PairKey = std::pair<std::string, std::string>;

  const Entry* FindEntry(TypeId type, const std::string& m1,
                         const std::string& m2, bool* swapped) const
      SEMCC_REQUIRES_SHARED(mu_);

  mutable SharedMutex mu_;
  std::map<TypeId, std::map<PairKey, Entry>> table_ SEMCC_GUARDED_BY(mu_);
  std::map<TypeId, std::vector<std::string>> methods_ SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_CC_COMPATIBILITY_H_
