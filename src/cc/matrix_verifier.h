// Build-time verification of the commutativity matrices (tools/matrix_verify).
//
// The protocol's correctness rests on matrix properties no compiler checks
// (paper §2.2/§3; Malta & Martinez, "Limits of Commutativity on Abstract
// Data Types"): commutativity is symmetric, the compiled dense tables must
// agree with the registration-level view they were compiled from, the
// args_sensitive bitvector must be sound (the §5.4 grant cache and entry
// coalescing treat argument-insensitive methods as one conflict class), and
// the per-type matrix must be total over its declared methods — an
// unregistered pair silently falls through to the generic rules, else
// conflict, which makes the ancestor walk (Fig. 8/9, Case 1/2 relief)
// strictly more blocking than the ADT designer intended. The verifier
// mechanically checks all four families against a live registry and can
// dump the exhaustive verified verdict table for golden-file regression.
//
// Two consumers: tools/matrix_verify (a ctest over the real registry) and
// tests/matrix_verify_test.cc (mutation tests seeding each defect class via
// the registry's TestOnlyCorrupt* hooks and asserting pointed rejection).
#ifndef SEMCC_CC_MATRIX_VERIFIER_H_
#define SEMCC_CC_MATRIX_VERIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "cc/compatibility.h"
#include "object/value.h"

namespace semcc {

/// \brief One verifier finding: which check failed, where, and why.
struct MatrixDiagnostic {
  std::string check;  ///< "cell-symmetry", "registration-agreement", ...
  TypeId type = kInvalidTypeId;
  std::string detail;

  std::string ToString() const;
};

/// \brief Outcome of one MatrixVerifier::Verify() run.
struct MatrixVerifyReport {
  std::vector<MatrixDiagnostic> diagnostics;
  size_t types_checked = 0;
  size_t cells_checked = 0;
  size_t verdicts_sampled = 0;
  /// True when a structural defect made the behavioral sampling phase
  /// unsafe to run (e.g. a cell claiming kPredicate with no predicate
  /// compiled would crash Commute); the structural diagnostics then stand
  /// alone.
  bool behavioral_skipped = false;

  bool ok() const { return diagnostics.empty(); }
  /// Human-readable multi-line summary (diagnostics first, counts last).
  std::string ToString() const;
};

/// \brief Static verifier over a CompatibilityRegistry's compiled tables.
///
/// Check families (names appear in MatrixDiagnostic::check):
///  - "cell-symmetry": every compiled dense cell equals its transpose.
///  - "registration-agreement": each registered entry compiled to the cell
///    kind it implies (static-compatible / static-conflict / predicate), and
///    every non-kUnknown compiled cell has a backing registered entry.
///  - "args-sensitive": the compiled bitvector marks exactly the methods
///    with a predicate cell in their row; behaviorally, a method reported
///    argument-INsensitive by ArgsMatter() must produce argument-invariant
///    verdicts across the sampled argument vectors, in both query
///    directions, against every method of its type and the generic ops.
///  - "pred-symmetry" / "pred-determinism": predicate verdicts are symmetric
///    under operand swap and stable under re-evaluation over the samples.
///  - "matrix-totality": every pair over a type's declared/registered
///    methods has a registered verdict (the retained-lock closure property:
///    parent-level cells may not silently degrade to the conflict default).
///  - "spec-derivation": for every pair of *exact* method specs
///    (DefineMethodSpec), the published cell must equal what the footprint
///    algebra (DeriveCell) computes from the two specs — regardless of
///    whether the cell was derived or hand-written — and each such
///    predicate cell must agree with SpecsCommute on every sample pair.
///  - "spec-vs-generic": where the exact specs are exactly the built-in
///    generic-op footprints, the derived verdicts must reproduce the
///    hand-coded generic key rules (GenericCommute) on every sample pair.
class MatrixVerifier {
 public:
  explicit MatrixVerifier(const CompatibilityRegistry* compat);

  /// Add an argument vector to the predicate/sensitivity sample set (the
  /// built-in set covers nullary, int-keyed, string-event, and two-arg
  /// shapes; ADTs with exotic predicates can extend it).
  void AddSampleArgs(Args args);

  /// Run every check over every registered type.
  MatrixVerifyReport Verify() const;

  /// Exhaustive verdict table over every registered type, deterministic and
  /// diff-friendly — committed as a golden file and compared by a ctest so
  /// a matrix edit cannot land without the reviewed table changing with it.
  /// `type_names` (optional) maps TypeId to schema names for readability.
  std::string DumpTable(
      const std::map<TypeId, std::string>* type_names = nullptr) const;

 private:
  /// Declared methods first (declaration order), then any method appearing
  /// in a registered pair but never declared (sorted by name).
  std::vector<std::string> MethodUniverse(TypeId type) const;

  void VerifyStructural(TypeId type, MatrixVerifyReport* report) const;
  void VerifyBehavioral(TypeId type, MatrixVerifyReport* report) const;

  const CompatibilityRegistry* compat_;
  std::vector<Args> samples_;
};

}  // namespace semcc

#endif  // SEMCC_CC_MATRIX_VERIFIER_H_
