#include "cc/matrix_verifier.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "cc/method_interner.h"

namespace semcc {

namespace {

using CellKind = CompatibilityRegistry::CellKind;

const char* CellKindName(CellKind k) {
  switch (k) {
    case CellKind::kCellUnknown:
      return "unknown";
    case CellKind::kCellCompatible:
      return "compatible";
    case CellKind::kCellConflict:
      return "conflict";
    case CellKind::kCellPredicate:
      return "predicate";
  }
  return "?";
}

CellKind DerivedKind(CompatibilityRegistry::DerivedCell d) {
  switch (d) {
    case CompatibilityRegistry::DerivedCell::kCompatible:
      return CellKind::kCellCompatible;
    case CompatibilityRegistry::DerivedCell::kConflict:
      return CellKind::kCellConflict;
    case CompatibilityRegistry::DerivedCell::kPredicate:
      return CellKind::kCellPredicate;
  }
  return CellKind::kCellUnknown;
}

bool SameKeyRef(const KeyRef& a, const KeyRef& b) {
  return a.kind == b.kind && a.arg_a == b.arg_a && a.arg_b == b.arg_b;
}

bool SameFootprint(const MethodSpec& a, const MethodSpec& b) {
  return SameKeyRef(a.reads, b.reads) && SameKeyRef(a.writes, b.writes) &&
         a.observes_size == b.observes_size && a.size_delta == b.size_delta;
}

std::string KeyRefStr(const KeyRef& k) {
  switch (k.kind) {
    case KeyRef::Kind::kNone:
      return "none";
    case KeyRef::Kind::kPoint:
      return "point(arg" + std::to_string(k.arg_a) + ")";
    case KeyRef::Kind::kRange:
      return "range(arg" + std::to_string(k.arg_a) + ",arg" +
             std::to_string(k.arg_b) + ")";
    case KeyRef::Kind::kAll:
      return "all";
    case KeyRef::Kind::kLowerBound:
      return "lowerbound(arg" + std::to_string(k.arg_a) + ")";
  }
  return "?";
}

}  // namespace

std::string MatrixDiagnostic::ToString() const {
  std::ostringstream os;
  os << "[" << check << "] type " << type << ": " << detail;
  return os.str();
}

std::string MatrixVerifyReport::ToString() const {
  std::ostringstream os;
  for (const MatrixDiagnostic& d : diagnostics) os << d.ToString() << "\n";
  if (behavioral_skipped) {
    os << "(behavioral sampling skipped: structural defects above make "
          "Commute() unsafe to call)\n";
  }
  os << (ok() ? "OK" : "FAILED") << ": " << types_checked << " types, "
     << cells_checked << " cells, " << verdicts_sampled
     << " sampled verdicts, " << diagnostics.size() << " diagnostics";
  return os.str();
}

MatrixVerifier::MatrixVerifier(const CompatibilityRegistry* compat)
    : compat_(compat) {
  // Built-in argument samples: nullary, two distinct int keys (OrderNo /
  // set keys), two distinct string events (Fig. 3), and a two-arg shape
  // (NewOrder(CustomerNo, Quantity)). Every registered predicate must be
  // total over these (the Fig. 3 predicates guard empty args themselves).
  samples_.push_back(Args{});
  samples_.push_back(Args{Value(int64_t{1})});
  samples_.push_back(Args{Value(int64_t{2})});
  samples_.push_back(Args{Value("shipped")});
  samples_.push_back(Args{Value("paid")});
  samples_.push_back(Args{Value(int64_t{1}), Value(int64_t{2})});
}

void MatrixVerifier::AddSampleArgs(Args args) {
  samples_.push_back(std::move(args));
}

std::vector<std::string> MatrixVerifier::MethodUniverse(TypeId type) const {
  std::vector<std::string> universe = compat_->MethodsOf(type);
  std::set<std::string> seen(universe.begin(), universe.end());
  std::vector<std::string> undeclared;
  for (const auto& [m1, m2] : compat_->RegisteredPairs(type)) {
    if (seen.insert(m1).second) undeclared.push_back(m1);
    if (seen.insert(m2).second) undeclared.push_back(m2);
  }
  std::sort(undeclared.begin(), undeclared.end());
  universe.insert(universe.end(), undeclared.begin(), undeclared.end());
  return universe;
}

void MatrixVerifier::VerifyStructural(TypeId type,
                                      MatrixVerifyReport* report) const {
  MethodInterner& interner = MethodInterner::Global();
  const uint32_t dim = compat_->CompiledDim(type);
  const auto pairs = compat_->RegisteredPairs(type);
  if (dim == 0) {
    report->diagnostics.push_back(
        {"registration-agreement", type,
         "type has registered entries but no compiled table"});
    return;
  }

  // --- cell-symmetry: the dense table must equal its transpose ------------
  for (MethodId i = 0; i < dim; ++i) {
    for (MethodId j = i + 1; j < dim; ++j) {
      const CellKind ij = compat_->CompiledCell(type, i, j);
      const CellKind ji = compat_->CompiledCell(type, j, i);
      ++report->cells_checked;
      if (ij != ji) {
        report->diagnostics.push_back(
            {"cell-symmetry", type,
             "cell(" + interner.NameOf(i) + ", " + interner.NameOf(j) +
                 ")=" + CellKindName(ij) + " but cell(" + interner.NameOf(j) +
                 ", " + interner.NameOf(i) + ")=" + CellKindName(ji) +
                 " — commutativity is symmetric by definition"});
      }
    }
  }

  // --- registration-agreement: registered view <-> compiled cells ---------
  std::set<std::pair<MethodId, MethodId>> registered_ids;
  for (const auto& [m1, m2] : pairs) {
    const MethodId a = interner.Lookup(m1);
    const MethodId b = interner.Lookup(m2);
    if (a == kInvalidMethodId || b == kInvalidMethodId) {
      report->diagnostics.push_back(
          {"registration-agreement", type,
           "registered pair (" + m1 + ", " + m2 + ") has uninterned names"});
      continue;
    }
    registered_ids.insert({a, b});
    registered_ids.insert({b, a});
    CellKind expected = CellKind::kCellPredicate;
    if (auto entry = compat_->StaticEntry(type, m1, m2); entry.has_value()) {
      expected =
          *entry ? CellKind::kCellCompatible : CellKind::kCellConflict;
    } else if (!compat_->HasPredicate(type, m1, m2)) {
      report->diagnostics.push_back(
          {"registration-agreement", type,
           "registered pair (" + m1 + ", " + m2 +
               ") is neither static nor predicate"});
      continue;
    }
    for (const auto& [x, y] : {std::pair(a, b), std::pair(b, a)}) {
      const CellKind got = compat_->CompiledCell(type, x, y);
      ++report->cells_checked;
      if (got != expected) {
        report->diagnostics.push_back(
            {"registration-agreement", type,
             "pair (" + m1 + ", " + m2 + ") registered as " +
                 CellKindName(expected) + " but cell(" + interner.NameOf(x) +
                 ", " + interner.NameOf(y) + ") compiled to " +
                 CellKindName(got)});
      }
    }
  }
  for (MethodId i = 0; i < dim; ++i) {
    for (MethodId j = 0; j < dim; ++j) {
      if (compat_->CompiledCell(type, i, j) == CellKind::kCellUnknown) {
        continue;
      }
      if (registered_ids.count({i, j}) == 0) {
        report->diagnostics.push_back(
            {"registration-agreement", type,
             "compiled cell(" + interner.NameOf(i) + ", " +
                 interner.NameOf(j) + ") is " +
                 CellKindName(compat_->CompiledCell(type, i, j)) +
                 " but no entry was registered for the pair"});
      }
    }
  }

  // --- args-sensitive: bit m set <=> a predicate cell exists in row m -----
  for (MethodId m = 0; m < dim; ++m) {
    bool row_has_pred = false;
    for (MethodId j = 0; j < dim; ++j) {
      if (compat_->CompiledCell(type, m, j) == CellKind::kCellPredicate) {
        row_has_pred = true;
        break;
      }
    }
    const bool bit = compat_->CompiledArgsSensitive(type, m);
    if (bit != row_has_pred) {
      report->diagnostics.push_back(
          {"args-sensitive", type,
           "args_sensitive[" + interner.NameOf(m) + "]=" +
               (bit ? "1" : "0") + " but row " +
               (row_has_pred ? "has" : "has no") +
               " predicate cells — a wrong bit makes grant-cache hits and "
               "entry coalescing (§5.4) reuse argument-dependent verdicts"});
    }
  }

  // --- matrix-totality (retained-lock closure, Fig. 8/9) ------------------
  // Every pair over the type's declared/registered methods needs a verdict:
  // an unregistered pair falls through to the generic rules, else conflict,
  // so the ancestor-commutativity walk would be silently stricter at this
  // type than the ADT's specification intends.
  const std::vector<std::string> universe = MethodUniverse(type);
  for (size_t i = 0; i < universe.size(); ++i) {
    for (size_t j = i; j < universe.size(); ++j) {
      const MethodId a = interner.Lookup(universe[i]);
      const MethodId b = interner.Lookup(universe[j]);
      if (a == kInvalidMethodId || b == kInvalidMethodId) continue;
      if (a < generic_ids::kNumGenericOps &&
          b < generic_ids::kNumGenericOps) {
        continue;  // generic pairs have built-in rules
      }
      if (compat_->CompiledCell(type, a, b) == CellKind::kCellUnknown) {
        report->diagnostics.push_back(
            {"matrix-totality", type,
             "pair (" + universe[i] + ", " + universe[j] +
                 ") has no registered verdict: it degrades to the conflict "
                 "default, making parent-level cells stricter than the "
                 "Case 1/2 relief requires"});
      }
    }
  }

  // --- spec-derivation: exact footprints <-> published cells (§5.8) -------
  // For every pair of exact specs the published cell must equal what the
  // derivation algebra computes from the two footprints — whether the cell
  // was derived by DefineMethodSpec or hand-written. A disagreement means
  // the matrix and the algebra tell the lock manager two different stories
  // about the same pair (e.g. a spec edited after its cells were compiled).
  const std::vector<std::string> spec_methods =
      compat_->SpecMethodsOf(type, /*exact_only=*/true);
  for (size_t i = 0; i < spec_methods.size(); ++i) {
    for (size_t j = i; j < spec_methods.size(); ++j) {
      const MethodId a = interner.Lookup(spec_methods[i]);
      const MethodId b = interner.Lookup(spec_methods[j]);
      if (a == kInvalidMethodId || b == kInvalidMethodId) continue;
      const auto s1 = compat_->MethodSpecOf(type, a);
      const auto s2 = compat_->MethodSpecOf(type, b);
      if (!s1.has_value() || !s2.has_value()) continue;
      const CellKind want =
          DerivedKind(CompatibilityRegistry::DeriveCell(*s1, *s2));
      const CellKind got = compat_->CompiledCell(type, a, b);
      ++report->cells_checked;
      if (got != want) {
        report->diagnostics.push_back(
            {"spec-derivation", type,
             "exact footprints of (" + spec_methods[i] + ", " +
                 spec_methods[j] + ") derive " + CellKindName(want) +
                 " but the published cell is " + CellKindName(got) +
                 " — the table diverged from the footprint algebra "
                 "(DESIGN.md §5.8)"});
      }
    }
  }
}

void MatrixVerifier::VerifyBehavioral(TypeId type,
                                      MatrixVerifyReport* report) const {
  MethodInterner& interner = MethodInterner::Global();
  const std::vector<std::string> universe = MethodUniverse(type);

  // --- predicate symmetry + determinism over the samples ------------------
  for (size_t i = 0; i < universe.size(); ++i) {
    for (size_t j = i; j < universe.size(); ++j) {
      const std::string& m1 = universe[i];
      const std::string& m2 = universe[j];
      if (!compat_->HasPredicate(type, m1, m2)) continue;
      for (const Args& a : samples_) {
        for (const Args& b : samples_) {
          const bool fwd = compat_->Commute(type, m1, a, m2, b);
          const bool rev = compat_->Commute(type, m2, b, m1, a);
          report->verdicts_sampled += 2;
          if (fwd != rev) {
            report->diagnostics.push_back(
                {"pred-symmetry", type,
                 m1 + ArgsToString(a) + " vs " + m2 + ArgsToString(b) +
                     " commutes=" + (fwd ? "true" : "false") +
                     " but the swapped query says " +
                     (rev ? "true" : "false")});
          }
          if (compat_->Commute(type, m1, a, m2, b) != fwd) {
            report->diagnostics.push_back(
                {"pred-determinism", type,
                 m1 + ArgsToString(a) + " vs " + m2 + ArgsToString(b) +
                     " changed verdict on re-evaluation — predicates must "
                     "be pure functions of the argument lists"});
          }
        }
      }
    }
  }

  // --- argument-insensitivity: ArgsMatter()==false must mean it ------------
  // Counterparts include the generic ops: unknown cells fall through to the
  // generic rules, so an insensitive method's verdict must be argument-
  // invariant there too.
  std::vector<std::string> counterparts = universe;
  counterparts.insert(counterparts.end(),
                      {generic_ops::kGet, generic_ops::kPut,
                       generic_ops::kInsert, generic_ops::kRemove,
                       generic_ops::kSelect, generic_ops::kScan,
                       generic_ops::kSize, generic_ops::kMember,
                       generic_ops::kRangeScan});
  for (const std::string& m : universe) {
    const MethodId id = interner.Lookup(m);
    if (id == kInvalidMethodId || compat_->ArgsMatter(type, id)) continue;
    for (const std::string& m2 : counterparts) {
      for (const Args& b : samples_) {
        const bool first_fwd = compat_->Commute(type, m, samples_[0], m2, b);
        const bool first_rev = compat_->Commute(type, m2, b, m, samples_[0]);
        for (const Args& a : samples_) {
          const bool fwd = compat_->Commute(type, m, a, m2, b);
          const bool rev = compat_->Commute(type, m2, b, m, a);
          report->verdicts_sampled += 2;
          if (fwd != first_fwd || rev != first_rev) {
            report->diagnostics.push_back(
                {"args-sensitive", type,
                 m + " is marked argument-INsensitive but its verdict vs " +
                     m2 + ArgsToString(b) + " differs between args " +
                     ArgsToString(samples_[0]) + " and " + ArgsToString(a) +
                     " — coalescing/grant-cache reuse would be unsound"});
          }
        }
      }
    }
  }

  // --- spec-derivation / spec-vs-generic (behavioral) ----------------------
  // Each derived *predicate* cell must track the footprint algebra's
  // runtime evaluator over the samples; and where the exact specs are
  // exactly the built-in generic-op footprints, the derived verdicts must
  // reproduce the hand-coded §2.2 generic key rules they replace.
  const std::vector<std::string> spec_methods =
      compat_->SpecMethodsOf(type, /*exact_only=*/true);
  for (size_t i = 0; i < spec_methods.size(); ++i) {
    for (size_t j = i; j < spec_methods.size(); ++j) {
      const std::string& m1 = spec_methods[i];
      const std::string& m2 = spec_methods[j];
      const MethodId a = interner.Lookup(m1);
      const MethodId b = interner.Lookup(m2);
      if (a == kInvalidMethodId || b == kInvalidMethodId) continue;
      const auto s1 = compat_->MethodSpecOf(type, a);
      const auto s2 = compat_->MethodSpecOf(type, b);
      if (!s1.has_value() || !s2.has_value()) continue;
      const bool is_pred =
          compat_->CompiledCell(type, a, b) == CellKind::kCellPredicate;
      const auto g1 = CompatibilityRegistry::GenericMethodSpec(a);
      const auto g2 = CompatibilityRegistry::GenericMethodSpec(b);
      const bool generic_footprints = g1.has_value() && g2.has_value() &&
                                      SameFootprint(*s1, *g1) &&
                                      SameFootprint(*s2, *g2);
      for (const Args& x : samples_) {
        for (const Args& y : samples_) {
          const bool published = compat_->Commute(type, a, x, b, y);
          if (is_pred) {
            const bool derived =
                CompatibilityRegistry::SpecsCommute(*s1, x, *s2, y);
            ++report->verdicts_sampled;
            if (published != derived) {
              report->diagnostics.push_back(
                  {"spec-derivation", type,
                   m1 + ArgsToString(x) + " vs " + m2 + ArgsToString(y) +
                       ": published predicate says " +
                       (published ? "commute" : "conflict") +
                       " but the footprint algebra derives " +
                       (derived ? "commute" : "conflict")});
            }
          }
          if (generic_footprints) {
            const auto generic =
                CompatibilityRegistry::GenericCommute(a, x, b, y);
            if (!generic.has_value()) continue;
            ++report->verdicts_sampled;
            if (published != *generic) {
              report->diagnostics.push_back(
                  {"spec-vs-generic", type,
                   m1 + ArgsToString(x) + " vs " + m2 + ArgsToString(y) +
                       ": derived verdict " +
                       (published ? "commute" : "conflict") +
                       " but the built-in generic key rule says " +
                       (*generic ? "commute" : "conflict") +
                       " — derivation from the generic footprints must "
                       "reproduce the §2.2 generic rules"});
            }
          }
        }
      }
    }
  }
}

MatrixVerifyReport MatrixVerifier::Verify() const {
  MatrixVerifyReport report;
  const std::vector<TypeId> types = compat_->RegisteredTypes();
  report.types_checked = types.size();
  for (TypeId type : types) VerifyStructural(type, &report);
  if (!report.diagnostics.empty()) {
    // A structurally broken table (e.g. a cell claiming kPredicate with no
    // compiled predicate behind it) makes Commute() unsafe; report the
    // structural defects alone.
    report.behavioral_skipped = true;
    return report;
  }
  for (TypeId type : types) VerifyBehavioral(type, &report);
  return report;
}

std::string MatrixVerifier::DumpTable(
    const std::map<TypeId, std::string>* type_names) const {
  MethodInterner& interner = MethodInterner::Global();
  std::ostringstream os;
  os << "# semcc compatibility verdict table (matrix_verify --dump)\n"
     << "# pred{...} cells enumerate the verdict for every ordered sample\n"
     << "# pair; samples: ";
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (i > 0) os << " ";
    os << "s" << i << "=" << ArgsToString(samples_[i]);
  }
  os << "\n";
  for (TypeId type : compat_->RegisteredTypes()) {
    os << "type " << type;
    if (type_names != nullptr) {
      auto it = type_names->find(type);
      if (it != type_names->end()) os << " (" << it->second << ")";
    }
    os << "\n";
    const std::vector<std::string> universe = MethodUniverse(type);
    const std::vector<std::string> spec_names = compat_->SpecMethodsOf(type);
    const std::set<std::string> has_spec(spec_names.begin(), spec_names.end());
    for (const std::string& m : universe) {
      const MethodId id = interner.Lookup(m);
      os << "  method " << m << " args_sensitive="
         << (id != kInvalidMethodId && compat_->ArgsMatter(type, id) ? "yes"
                                                                     : "no")
         << "\n";
      if (id == kInvalidMethodId || has_spec.count(m) == 0) continue;
      if (auto spec = compat_->MethodSpecOf(type, id); spec.has_value()) {
        os << "  spec " << m << " reads=" << KeyRefStr(spec->reads)
           << " writes=" << KeyRefStr(spec->writes)
           << " observes_size=" << (spec->observes_size ? "yes" : "no")
           << " size_delta=" << spec->size_delta
           << " exact=" << (spec->exact ? "yes" : "no") << "\n";
      }
    }
    for (size_t i = 0; i < universe.size(); ++i) {
      for (size_t j = i; j < universe.size(); ++j) {
        const std::string& m1 = universe[i];
        const std::string& m2 = universe[j];
        os << "  cell " << m1 << " x " << m2 << " = ";
        if (auto entry = compat_->StaticEntry(type, m1, m2);
            entry.has_value()) {
          os << (*entry ? "commute" : "conflict");
        } else if (compat_->HasPredicate(type, m1, m2)) {
          os << "pred{";
          for (size_t x = 0; x < samples_.size(); ++x) {
            for (size_t y = 0; y < samples_.size(); ++y) {
              os << (compat_->Commute(type, m1, samples_[x], m2, samples_[y])
                         ? "1"
                         : "0");
            }
          }
          os << "}";
        } else {
          os << "unregistered";
        }
        os << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace semcc
