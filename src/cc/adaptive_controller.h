// Adaptive concurrency-mode controller (DESIGN.md §5.9).
//
// Samples the live verdict breakdown (commute / case1 / case2 / root-wait
// shares), the blocked-acquire share, and the lock manager's per-shard
// counter stripes, and switches each object type between CcMode::kSemantic,
// CcMode::k2PL, and CcMode::kPrudent. Decisions are hysteretic (separate
// promote/demote thresholds) and dwell-limited (a type must sit
// AdaptiveOptions::min_dwell_epochs epochs in a mode before flipping again).
//
// Verdict safety is provided by *snapshot pinning*, not by stalling the
// lock table: the current per-type mode assignment lives in an immutable
// ModeSnapshot; TxnManager pins the snapshot onto each transaction's root
// before its first action and unpins it after ReleaseTree, and every
// Acquire reads its mode from the requester's pinned snapshot. A mode flip
// writes the *spare* snapshot buffer and only after the spare's pin count
// has drained to zero — i.e. after every transaction that might still read
// it has finished (the in-flight draining barrier). A transaction therefore
// observes exactly one mode per type for its whole lifetime, which is what
// keeps the conflict memo, the grant cache, and the debug invariant checker
// coherent across flips.
//
// Memory-ordering contract (hot path): Pin() acquire-loads `current_`,
// increments the buffer's pin count, and re-checks `current_` — a pin that
// survives the re-check is guaranteed to be counted by any later drain
// wait. Mode bytes inside a snapshot are relaxed atomics: they are written
// only while the buffer is unpublished and drained, and the release store
// of `current_` / acquire load in Pin() orders them for readers.
#ifndef SEMCC_CC_ADAPTIVE_CONTROLLER_H_
#define SEMCC_CC_ADAPTIVE_CONTROLLER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "cc/lock_manager.h"
#include "util/metrics.h"

namespace semcc {

/// \brief Immutable published mode assignment: one CcMode per type slot
/// (types hash into kTypeSlots slots) plus a pin count. Two of these live
/// inside the controller (double buffer); transactions pin the current one
/// for their lifetime. Never freed while the controller lives.
struct ModeSnapshot {
  static constexpr size_t kTypeSlots = 64;

  /// Controller epoch at which this assignment was published.
  uint64_t epoch = 0;
  /// Per-type-slot CcMode values. Relaxed atomics: see the memory-ordering
  /// contract in the file comment.
  std::array<std::atomic<uint8_t>, kTypeSlots> modes{};
  /// Transactions currently pinned to this buffer.
  std::atomic<uint64_t> pins{0};

  static constexpr size_t SlotOf(TypeId type) {
    return static_cast<size_t>(type) & (kTypeSlots - 1);
  }
  CcMode ModeFor(TypeId type) const {
    return static_cast<CcMode>(
        modes[SlotOf(type)].load(std::memory_order_relaxed));
  }
};

/// \brief Snapshot of the controller's own counters (plain data).
struct AdaptiveStats {
  uint64_t epochs = 0;        ///< sample windows evaluated
  uint64_t flips = 0;         ///< per-type mode changes published
  uint64_t drain_stalls = 0;  ///< flips deferred because the spare buffer
                              ///< still had pinned transactions
  uint64_t types_semantic = 0;  ///< type slots currently in kSemantic
  uint64_t types_2pl = 0;       ///< ... in k2PL
  uint64_t types_prudent = 0;   ///< ... in kPrudent
  uint64_t shadow_commute = 0;   ///< 2PL-mode conflicts that would commute
  uint64_t shadow_conflict = 0;  ///< 2PL-mode conflicts that would not
  uint64_t hot_shards = 0;  ///< shards over hot_blocked_share last window

  std::string ToJson() const;
};

/// \brief The controller. One per Database (when adaptive_mode is on),
/// owned by the Database, attached to both the LockManager (verdict feed +
/// mode dispatch) and the TxnManager (snapshot pinning).
class AdaptiveController {
 public:
  /// `lm` must outlive the controller. Reads lm->options().adaptive for
  /// thresholds and lm->shard_stats() for the hot-shard signal. Starts the
  /// background sampling thread iff the options ask for one.
  explicit AdaptiveController(LockManager* lm);
  ~AdaptiveController();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(AdaptiveController);

  // --- transaction lifetime (TxnManager) ---------------------------------

  /// Pin the current snapshot for one transaction. Never blocks; a handful
  /// of atomic operations. The returned pointer stays valid (and its mode
  /// bytes immutable) until Unpin.
  const ModeSnapshot* Pin();
  void Unpin(const ModeSnapshot* snapshot);

  // --- hot-path verdict feed (LockManager, first-scan only) --------------

  /// Mirror one classified first-scan conflict verdict into the per-type
  /// window counters. Relaxed striped increment; called under the shard
  /// mutex, so it must never block (and does not).
  void RecordVerdict(TypeId type, ConflictOutcome why);
  /// In k2PL mode the scan still evaluates (cheaply) whether the pair
  /// would have commuted semantically; this shadow sample is the promote
  /// signal back to kSemantic.
  void RecordShadow(TypeId type, bool commutes);
  /// One Acquire reached the shard (fast-path hits count as unblocked).
  void RecordAcquire(TypeId type, bool blocked);
  /// One prudent-mode bypass of an earlier waiting entry.
  void RecordBypass(TypeId type);

  // --- sampling / decisions ---------------------------------------------

  /// Evaluate one epoch synchronously: diff the window counters, decide a
  /// mode per type slot, and (if anything changed and the spare buffer has
  /// drained) publish a new snapshot. Thread-safe against itself and the
  /// background thread. Returns the epoch number evaluated.
  uint64_t SampleNow();

  /// Current published mode of `type` (test/diagnostic convenience —
  /// transactions read their *pinned* snapshot instead).
  CcMode ModeOf(TypeId type) const {
    return current_.load(std::memory_order_acquire)->ModeFor(type);
  }

  AdaptiveStats stats() const;

  /// Stop the background thread (idempotent; also run by the destructor).
  void Stop();

 private:
  static constexpr size_t kSlots = ModeSnapshot::kTypeSlots;

  /// Per-slot window counter indices into counters_.
  enum Counter : size_t {
    kCtrAcquires = 0,
    kCtrBlocked,
    kCtrCommute,
    kCtrCase1,
    kCtrCase2,
    kCtrRootWait,
    kCtrShadowCommute,
    kCtrShadowConflict,
    kCtrBypasses,
    kCtrCount,
  };

  /// One slot's counter deltas over the sample window (plain data).
  struct Window {
    uint64_t acquires = 0, blocked = 0;
    uint64_t commute = 0, case1 = 0, case2 = 0, root_wait = 0;
    uint64_t shadow_commute = 0, shadow_conflict = 0;
    uint64_t ConflictTests() const {
      return commute + case1 + case2 + root_wait;
    }
  };

  /// Pure decision function (unit-testable): next mode for a slot given
  /// its window, its current mode, and whether any shard ran hot.
  static CcMode Decide(const Window& w, CcMode current, bool hot_shard,
                       const AdaptiveOptions& opts);

  /// Wait (bounded) for `buf`'s pins to drain; false on timeout.
  static bool DrainPins(ModeSnapshot* buf);

  void BackgroundLoop();

  LockManager* const lm_;
  const AdaptiveOptions opts_;

  ModeSnapshot buffers_[2];
  std::atomic<ModeSnapshot*> current_;

  /// Striped per-(type slot) window counters: stripe = type slot.
  metrics::CounterBank counters_;

  /// Sampling state (guarded by sample_mu_; one sampler at a time).
  mutable Mutex sample_mu_;
  uint64_t epoch_ SEMCC_GUARDED_BY(sample_mu_) = 0;
  std::array<std::array<uint64_t, kCtrCount>, kSlots> last_counts_
      SEMCC_GUARDED_BY(sample_mu_){};
  std::array<int, kSlots> epochs_in_mode_ SEMCC_GUARDED_BY(sample_mu_){};
  std::array<uint8_t, kSlots> decided_modes_ SEMCC_GUARDED_BY(sample_mu_){};
  uint64_t last_shard_acquires_[LockManager::kMaxShards]
      SEMCC_GUARDED_BY(sample_mu_) = {};
  uint64_t last_shard_blocked_[LockManager::kMaxShards]
      SEMCC_GUARDED_BY(sample_mu_) = {};

  std::atomic<uint64_t> flips_{0};
  std::atomic<uint64_t> drain_stalls_{0};
  std::atomic<uint64_t> epochs_done_{0};
  std::atomic<uint64_t> hot_shards_{0};

  std::atomic<bool> stop_{false};
  std::thread sampler_;
};

}  // namespace semcc

#endif  // SEMCC_CC_ADAPTIVE_CONTROLLER_H_
