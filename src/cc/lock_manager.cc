#include "cc/lock_manager.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace semcc {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kSemanticONT:
      return "semantic-ont";
    case Protocol::kClosedNested:
      return "closed-nested";
    case Protocol::kFlat2PL:
      return "flat-2pl";
  }
  return "?";
}

const char* GranularityName(LockGranularity g) {
  switch (g) {
    case LockGranularity::kObject:
      return "object";
    case LockGranularity::kRecord:
      return "record";
    case LockGranularity::kPage:
      return "page";
  }
  return "?";
}

std::string LockTarget::ToString() const {
  const char* space_name = space == Space::kObject   ? "obj"
                           : space == Space::kRecord ? "rec"
                                                     : "page";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s:%llu", space_name,
                static_cast<unsigned long long>(key));
  return buf;
}

std::string LockStats::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "acquires=%llu blocked=%llu commute=%llu case1=%llu case2=%llu "
      "root_waits=%llu deadlocks=%llu timeouts=%llu",
      static_cast<unsigned long long>(acquires.load()),
      static_cast<unsigned long long>(blocked_acquires.load()),
      static_cast<unsigned long long>(commute_grants.load()),
      static_cast<unsigned long long>(case1_grants.load()),
      static_cast<unsigned long long>(case2_waits.load()),
      static_cast<unsigned long long>(root_waits.load()),
      static_cast<unsigned long long>(deadlocks.load()),
      static_cast<unsigned long long>(timeouts.load()));
  return buf;
}

LockManager::LockManager(const ProtocolOptions& options,
                         CompatibilityRegistry* compat)
    : options_(options), compat_(compat) {}

// --- test-conflict -----------------------------------------------------

SubTxn* LockManager::TestConflictSemantic(const LockEntry& h, SubTxn* r,
                                          ConflictOutcome* why) const {
  SubTxn* holder = h.acquirer;
  // "if h and r ... belong to the same top-level transaction then return nil"
  // (also: retained locks never block later subtransactions of the same
  // transaction, §4.1).
  if (holder->SameRootAs(r)) {
    *why = ConflictOutcome::kSameTxn;
    return nullptr;
  }
  // "if h and r commute ... return nil". Both act on the same object, so the
  // object type is shared and the compatibility spec of that type applies.
  if (compat_->Commute(holder->type(), holder->method(), holder->args(),
                       r->method(), r->args())) {
    *why = ConflictOutcome::kCommute;
    return nullptr;
  }
  if (options_.ancestor_walk) {
    // "for all h' in the ancestor chain of h do for all r' in the ancestor
    // chain of r do if h' and r' commute ..." — a pair commutes only if it
    // acts on the *same* object (semantic knowledge exists per object); the
    // walk is bottom-up on both chains.
    const std::vector<SubTxn*> h_chain = holder->AncestorChain();
    const std::vector<SubTxn*> r_chain = r->AncestorChain();
    for (SubTxn* h_anc : h_chain) {
      for (SubTxn* r_anc : r_chain) {
        if (h_anc->object() != r_anc->object()) continue;
        if (!compat_->Commute(h_anc->type(), h_anc->method(), h_anc->args(),
                              r_anc->method(), r_anc->args())) {
          continue;
        }
        if (h_anc->committed()) {
          // Case 1: commutative and committed ancestor — the conflict is an
          // implementation-level pseudo-conflict; grant.
          *why = ConflictOutcome::kCase1Grant;
          return nullptr;
        }
        if (h_anc->state() == TxnState::kAborted) {
          // An aborted subtransaction gives no isolation guarantee: its
          // effects are only removed when the enclosing transaction's
          // compensation finishes. Keep walking; without a committed
          // commuting ancestor the requester waits for the holder's
          // top-level completion (after which the tree's locks are gone).
          continue;
        }
        // Case 2: commutative but uncommitted ancestor — r may resume upon
        // completion of h'.
        *why = ConflictOutcome::kCase2Wait;
        return h_anc;
      }
    }
  }
  // "return root of h — worst case: waiting for the top-level commit."
  *why = ConflictOutcome::kRootWait;
  return holder->root();
}

SubTxn* LockManager::TestConflictClosed(const LockEntry& h, SubTxn* r,
                                        bool r_is_write,
                                        ConflictOutcome* why) const {
  // Moss's rule: a lock held (possibly by inheritance) by r itself or one of
  // r's ancestors does not conflict.
  SubTxn* owner = h.owner;
  if (owner == r || owner->IsAncestorOf(r)) {
    *why = ConflictOutcome::kSameTxn;
    return nullptr;
  }
  if (!h.is_write && !r_is_write) {
    *why = ConflictOutcome::kSharedGrant;
    return nullptr;
  }
  // Wait for the current owner; on its completion the lock is anti-inherited
  // by its parent and the test is repeated.
  *why = ConflictOutcome::kHolderWait;
  return owner->completed() ? owner->root() : owner;
}

SubTxn* LockManager::TestConflictFlat(const LockEntry& h, SubTxn* r,
                                      bool r_is_write,
                                      ConflictOutcome* why) const {
  if (h.acquirer->SameRootAs(r)) {
    *why = ConflictOutcome::kSameTxn;
    return nullptr;
  }
  if (!h.is_write && !r_is_write) {
    *why = ConflictOutcome::kSharedGrant;
    return nullptr;
  }
  *why = ConflictOutcome::kHolderWait;
  return h.acquirer->root();
}

SubTxn* LockManager::TestConflict(const LockEntry& h, SubTxn* r,
                                  bool r_is_write,
                                  ConflictOutcome* why) const {
  switch (options_.protocol) {
    case Protocol::kSemanticONT:
      return TestConflictSemantic(h, r, why);
    case Protocol::kClosedNested:
      return TestConflictClosed(h, r, r_is_write, why);
    case Protocol::kFlat2PL:
      return TestConflictFlat(h, r, r_is_write, why);
  }
  *why = ConflictOutcome::kNoLock;
  return nullptr;
}

std::set<SubTxn*> LockManager::CollectBlockers(
    const LockQueue& q, uint64_t my_seq, SubTxn* t, bool is_write,
    std::vector<ConflictOutcome>* reasons) const {
  std::set<SubTxn*> blockers;
  for (const LockEntry& e : q.entries) {
    if (e.acquirer == t) continue;
    // Test against held locks and earlier-queued requests (FCFS, paper
    // footnote 5). Compensating actions are exempt from FCFS: they operate
    // under the transaction's existing retained locks, and queueing them
    // behind foreign waiters (which wait for THIS transaction's completion)
    // would deadlock the rollback itself.
    if (!e.granted && (e.seq > my_seq || t->compensation())) continue;
    ConflictOutcome why = ConflictOutcome::kNoLock;
    SubTxn* b = TestConflict(e, t, is_write, &why);
    // Do NOT drop blockers that completed between the conflict test and
    // here: a just-aborted subtransaction must not look like a grant. The
    // wait loop re-derives the verdict from fresh state on every wake-up.
    if (b != nullptr) {
      blockers.insert(b);
      if (reasons != nullptr) reasons->push_back(why);
    } else if (reasons != nullptr && (why == ConflictOutcome::kCase1Grant ||
                                      why == ConflictOutcome::kCommute)) {
      reasons->push_back(why);
    }
  }
  return blockers;
}

void LockManager::ExpandDependencies(
    SubTxn* n, std::vector<SubTxn*>* stack, std::set<SubTxn*>* visited,
    std::map<SubTxn*, SubTxn*>* came_from) const {
  auto wit = waits_.find(n);
  if (wit != waits_.end()) {
    for (SubTxn* b : wit->second) {
      if (visited->insert(b).second) {
        (*came_from)[b] = n;
        stack->push_back(b);
      }
    }
  }
  for (SubTxn* c : n->IncompleteChildren()) {
    if (visited->insert(c).second) {
      (*came_from)[c] = n;
      stack->push_back(c);
    }
  }
}

SubTxn* LockManager::DetectDeadlock(SubTxn* t) const {
  // Completion-dependency graph: a blocked requester depends on the
  // completions in its waits-for set; an incomplete node's completion
  // depends on its incomplete children (Figure 8 executes children before
  // completing). A cycle through `t` means deadlock.
  std::vector<SubTxn*> stack;
  std::set<SubTxn*> visited;
  std::map<SubTxn*, SubTxn*> came_from;

  ExpandDependencies(t, &stack, &visited, &came_from);
  SubTxn* cycle_end = nullptr;
  while (!stack.empty()) {
    SubTxn* n = stack.back();
    stack.pop_back();
    if (n == t) {
      cycle_end = n;
      break;
    }
    if (n->completed()) continue;
    ExpandDependencies(n, &stack, &visited, &came_from);
  }
  if (cycle_end == nullptr) return nullptr;

  // Reconstruct the cycle path, collect the top-level transactions on it,
  // and pick the youngest (largest priority rank — retries keep their first
  // attempt's rank, so they age) as victim.
  SubTxn* victim_root = t->root();
  for (SubTxn* n = came_from.count(t) ? came_from[t] : nullptr; n != nullptr;
       n = came_from.count(n) ? came_from[n] : nullptr) {
    if (n->root()->priority() > victim_root->priority()) {
      victim_root = n->root();
    }
    if (n == t) break;
  }
  return victim_root;
}

// --- debug invariant checker --------------------------------------------

void LockManager::InvariantViolation(const char* kind,
                                     const std::string& detail) {
  SEMCC_LOG(Error) << "lock invariant violated [" << kind << "]: " << detail;
  if (options_.invariant_violations_fatal) {
    SEMCC_CHECK(false) << "lock invariant [" << kind << "]: " << detail;
  }
}

void LockManager::CheckGrantInvariants(const LockQueue& q, uint64_t my_seq,
                                       SubTxn* t, bool is_write) {
  // Independently re-derive the grant decision: every other granted (or
  // earlier-queued, FCFS) entry must pass test-conflict against `t`. A
  // non-nil verdict here means the fast path granted a conflicting request.
  for (const LockEntry& e : q.entries) {
    if (e.acquirer == t) continue;
    if (!e.granted && (e.seq > my_seq || t->compensation())) continue;
    ConflictOutcome why = ConflictOutcome::kNoLock;
    SubTxn* b = TestConflict(e, t, is_write, &why);
    if (b != nullptr) {
      inv_stats_.grant_violations.fetch_add(1, std::memory_order_relaxed);
      InvariantViolation(
          "grant",
          "granted " + t->method() + " (txn " + std::to_string(t->id()) +
              ") despite conflict with holder " + e.acquirer->method() +
              " (txn " + std::to_string(e.acquirer->id()) +
              "), verdict=" + std::to_string(static_cast<int>(why)));
    }
  }
}

void LockManager::CheckQueueInvariants(const LockQueue& q) {
  for (const LockEntry& e : q.entries) {
    // A *waiting* entry's acquirer is by construction parked inside
    // Acquire, so it cannot have completed; a completed subtransaction
    // showing up un-granted means an abandon path failed to withdraw the
    // entry. (Granted entries of completed subtransactions are the retained
    // locks of §4.1 — legal until top-level end.)
    if (!e.granted && e.acquirer->completed()) {
      inv_stats_.retained_violations.fetch_add(1, std::memory_order_relaxed);
      InvariantViolation("retained", "waiting entry owned by completed txn " +
                                         std::to_string(e.acquirer->id()) +
                                         " (" + e.acquirer->method() + ")");
    }
  }
}

void LockManager::CheckNoLeakedLocks(SubTxn* root) {
  uint64_t leaked = 0;
  for (const auto& [target, q] : table_) {
    for (const LockEntry& e : q.entries) {
      if (e.acquirer->root() == root) {
        ++leaked;
        InvariantViolation("leak", "entry " + e.acquirer->method() +
                                       " (txn " +
                                       std::to_string(e.acquirer->id()) +
                                       ") on " + target.ToString() +
                                       " survived ReleaseTree of root " +
                                       std::to_string(root->id()));
      }
    }
  }
  if (leaked != 0) {
    inv_stats_.leaked_locks.fetch_add(leaked, std::memory_order_relaxed);
  }
}

void LockManager::CheckWaitGraphAcyclic() {
  // Whenever mu_ is released, every wait cycle must contain a root already
  // flagged for abort: the waiter whose edge closed the cycle runs
  // DetectDeadlock (and flags a victim) in the same critical section. DFS
  // with gray/black coloring over waiter -> blockers ∪ incomplete children;
  // nodes of abort-flagged roots are excluded (their cycles are resolving).
  std::set<SubTxn*> done;
  for (const auto& [waiter, blockers] : waits_) {
    (void)blockers;
    if (done.count(waiter) != 0) continue;
    // Iterative DFS with an explicit path (gray set) for cycle detection.
    std::vector<std::pair<SubTxn*, size_t>> path;  // node + next-child index
    std::set<SubTxn*> on_path;
    path.emplace_back(waiter, 0);
    on_path.insert(waiter);
    while (!path.empty()) {
      auto& [node, child_idx] = path.back();
      // Materialize node's successors once per visit level.
      std::vector<SubTxn*> succ;
      if (!node->completed() && !node->root()->abort_requested()) {
        auto wit = waits_.find(node);
        if (wit != waits_.end()) {
          succ.insert(succ.end(), wit->second.begin(), wit->second.end());
        }
        const std::vector<SubTxn*> kids = node->IncompleteChildren();
        succ.insert(succ.end(), kids.begin(), kids.end());
      }
      if (child_idx >= succ.size()) {
        on_path.erase(node);
        done.insert(node);
        path.pop_back();
        continue;
      }
      SubTxn* next = succ[child_idx++];
      if (on_path.count(next) != 0) {
        inv_stats_.wait_cycle_violations.fetch_add(1,
                                                   std::memory_order_relaxed);
        InvariantViolation("wait-cycle",
                           "unresolved waits-for cycle through txn " +
                               std::to_string(next->id()) +
                               " with no deadlock victim chosen");
        return;  // one report per sweep is enough
      }
      if (done.count(next) != 0) continue;
      path.emplace_back(next, 0);
      on_path.insert(next);
    }
  }
}

void LockManager::RecordLockOrder(SubTxn* t, const LockTarget& target) {
  SubTxn* root = t->root();
  std::vector<LockTarget>& held = held_targets_[root];
  if (std::find(held.begin(), held.end(), target) != held.end()) {
    return;  // re-acquisition of a target the tree already locks: no edge
  }
  const uint64_t to = PackTarget(target);
  for (const LockTarget& h : held) {
    if (!order_graph_.AddEdge(PackTarget(h), to)) {
      inv_stats_.order_inversions.fetch_add(1, std::memory_order_relaxed);
      // Diagnostic, not a violation: inversions are legal here (the
      // deadlock detector resolves them) but each is a potential deadlock.
      SEMCC_LOG(Debug) << "lock-order inversion: " << h.ToString() << " -> "
                       << target.ToString() << " closes an acquisition-order "
                       << "cycle (txn " << std::to_string(root->id()) << ")";
    }
  }
  held.push_back(target);
}

uint64_t LockManager::CheckInvariantsNow() {
  MutexLock lock(mu_);
  inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
  for (const auto& [target, q] : table_) {
    (void)target;
    CheckQueueInvariants(q);
  }
  if (options_.deadlock_detection) CheckWaitGraphAcyclic();
  return inv_stats_.protocol_violations();
}

// --- acquire / release --------------------------------------------------

void LockManager::RemoveWaiter(const LockTarget& target, LockQueue& q,
                               std::list<LockEntry>::iterator my_it,
                               SubTxn* t) {
  q.entries.erase(my_it);
  waits_.erase(t);
  if (q.entries.empty()) table_.erase(target);
  cv_.NotifyAll();
}

Status LockManager::Acquire(SubTxn* t, const LockTarget& target,
                            bool is_write) {
  MutexLock lock(mu_);
  stats_.acquires.fetch_add(1, std::memory_order_relaxed);
  LockQueue& q = table_[target];
  const uint64_t my_seq = next_entry_seq_++;
  q.entries.push_back(LockEntry{t, t, is_write, /*granted=*/false, my_seq});
  auto my_it = std::prev(q.entries.end());

  bool first_scan = true;
  bool ever_blocked = false;
  StopWatch wait_timer;
  while (true) {
    if (t->root()->abort_requested() && !t->compensation()) {
      RemoveWaiter(target, q, my_it, t);
      return Status::Aborted("transaction abort requested while locking " +
                             target.ToString());
    }
    std::vector<ConflictOutcome> reasons;
    std::set<SubTxn*> blockers =
        CollectBlockers(q, my_seq, t, is_write, first_scan ? &reasons : nullptr);
    if (first_scan) {
      for (ConflictOutcome why : reasons) {
        switch (why) {
          case ConflictOutcome::kCommute:
            stats_.commute_grants.fetch_add(1, std::memory_order_relaxed);
            break;
          case ConflictOutcome::kCase1Grant:
            stats_.case1_grants.fetch_add(1, std::memory_order_relaxed);
            break;
          case ConflictOutcome::kCase2Wait:
            stats_.case2_waits.fetch_add(1, std::memory_order_relaxed);
            break;
          case ConflictOutcome::kRootWait:
            stats_.root_waits.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            break;
        }
      }
      first_scan = false;
    }
    if (blockers.empty()) {
      my_it->granted = true;
      waits_.erase(t);
      t->set_grant_seq(NextSeq());
      if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
        inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
        CheckGrantInvariants(q, my_seq, t, is_write);
        CheckQueueInvariants(q);
        RecordLockOrder(t, target);
      }
      if (ever_blocked) {
        stats_.wait_micros.Add(wait_timer.ElapsedMicros());
      }
      return Status::OK();
    }
    if (!ever_blocked) {
      ever_blocked = true;
      stats_.blocked_acquires.fetch_add(1, std::memory_order_relaxed);
      wait_timer.Restart();
    }
    // Record the waits-for set (Figure 8), then sleep until a completion.
    waits_[t] = std::vector<SubTxn*>(blockers.begin(), blockers.end());
    if (options_.deadlock_detection) {
      SubTxn* victim = DetectDeadlock(t);
      if (victim != nullptr) {
        stats_.deadlocks.fetch_add(1, std::memory_order_relaxed);
        if (victim == t->root()) {
          RemoveWaiter(target, q, my_it, t);
          return Status::Deadlock("deadlock victim at " + target.ToString());
        }
        victim->RequestAbort();
        cv_.NotifyAll();
      }
      if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
        // At this point every wait cycle must have a victim flagged.
        inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
        CheckWaitGraphAcyclic();
      }
    }
    if (wait_timer.ElapsedMicros() >
        static_cast<uint64_t>(options_.wait_timeout.count()) * 1000) {
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      RemoveWaiter(target, q, my_it, t);
      return Status::TimedOut("lock wait timeout on " + target.ToString());
    }
    cv_.WaitFor(lock, std::chrono::milliseconds(50));
  }
}

void LockManager::OnSubTxnCompleted(SubTxn* t) {
  MutexLock lock(mu_);
  t->set_end_seq(NextSeq());
  switch (options_.protocol) {
    case Protocol::kSemanticONT:
      if (!options_.retain_locks) {
        // §3 protocol: "the locks of the actions in a subtransaction are
        // released upon the completion of the subtransaction" — drop every
        // lock owned by a proper descendant of t; t's own lock remains until
        // t's parent completes (only the root's semantic locks survive to
        // the end of the transaction).
        for (auto it = table_.begin(); it != table_.end();) {
          LockQueue& q = it->second;
          for (auto e = q.entries.begin(); e != q.entries.end();) {
            if (e->granted && t->IsAncestorOf(e->acquirer)) {
              e = q.entries.erase(e);
            } else {
              ++e;
            }
          }
          it = q.entries.empty() ? table_.erase(it) : std::next(it);
        }
      }
      break;
    case Protocol::kClosedNested:
      // Anti-inheritance: the parent adopts the completed child's locks.
      if (t->parent() != nullptr) {
        for (auto& [target, q] : table_) {
          for (LockEntry& e : q.entries) {
            if (e.owner == t && e.granted) e.owner = t->parent();
          }
        }
      }
      break;
    case Protocol::kFlat2PL:
      break;  // all locks are root-owned and strict
  }
  if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
    inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
    for (const auto& [target, q] : table_) {
      (void)target;
      CheckQueueInvariants(q);
    }
  }
  // Waits-for sets shrink on completion, not on lock release: wake everyone
  // to re-evaluate.
  cv_.NotifyAll();
}

void LockManager::ReleaseTree(SubTxn* root) {
  MutexLock lock(mu_);
  for (auto it = table_.begin(); it != table_.end();) {
    LockQueue& q = it->second;
    for (auto e = q.entries.begin(); e != q.entries.end();) {
      if (e->acquirer->root() == root) {
        e = q.entries.erase(e);
      } else {
        ++e;
      }
    }
    it = q.entries.empty() ? table_.erase(it) : std::next(it);
  }
  // Purge dangling blocker pointers into the departing tree; the blocked
  // threads re-derive their waits-for sets when they wake.
  for (auto& [waiter, blockers] : waits_) {
    blockers.erase(std::remove_if(blockers.begin(), blockers.end(),
                                  [&](SubTxn* b) { return b->root() == root; }),
                   blockers.end());
  }
  if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
    inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
    CheckNoLeakedLocks(root);
    held_targets_.erase(root);
  }
  cv_.NotifyAll();
}

std::vector<LockManager::LockInfo> LockManager::LocksOn(
    const LockTarget& target) const {
  MutexLock lock(mu_);
  std::vector<LockInfo> out;
  auto it = table_.find(target);
  if (it == table_.end()) return out;
  for (const LockEntry& e : it->second.entries) {
    out.push_back(LockInfo{e.acquirer->id(), e.acquirer->root()->id(),
                           e.acquirer->method(), e.granted,
                           e.acquirer->completed()});
  }
  return out;
}

size_t LockManager::NumWaiters() const {
  MutexLock lock(mu_);
  return waits_.size();
}

}  // namespace semcc
