#include "cc/lock_manager.h"

#include <algorithm>
#include <cstdio>

#include "cc/adaptive_controller.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace semcc {
namespace {

// Root-wait verdicts observed by this thread (lock waits run on the
// acquiring thread). Lets workloads split root-waits by transaction class
// (LockManager::ThreadRootWaits) — the striped counter bank can't: its
// stripes are keyed by lock-table shard, not by requester.
thread_local uint64_t t_root_waits = 0;

}  // namespace

uint64_t LockManager::ThreadRootWaits() { return t_root_waits; }

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kSemanticONT:
      return "semantic-ont";
    case Protocol::kClosedNested:
      return "closed-nested";
    case Protocol::kFlat2PL:
      return "flat-2pl";
  }
  return "?";
}

const char* GranularityName(LockGranularity g) {
  switch (g) {
    case LockGranularity::kObject:
      return "object";
    case LockGranularity::kRecord:
      return "record";
    case LockGranularity::kPage:
      return "page";
  }
  return "?";
}

std::string LockTarget::ToString() const {
  const char* space_name = space == Space::kObject   ? "obj"
                           : space == Space::kRecord ? "rec"
                                                     : "page";
  char buf[96];
  if (has_interval) {
    std::snprintf(buf, sizeof(buf), "%s:%llu[%lld,%lld]", space_name,
                  static_cast<unsigned long long>(key),
                  static_cast<long long>(key_lo),
                  static_cast<long long>(key_hi));
  } else {
    std::snprintf(buf, sizeof(buf), "%s:%llu", space_name,
                  static_cast<unsigned long long>(key));
  }
  return buf;
}

std::string LockStats::ToString() const {
  char buf[448];
  std::snprintf(
      buf, sizeof(buf),
      "acquires=%llu blocked=%llu commute=%llu case1=%llu case2=%llu "
      "root_waits=%llu retained=%llu deadlocks=%llu timeouts=%llu "
      "fast_path=%llu coalesced=%llu memo=%llu keyrange=%llu prudent=%llu",
      static_cast<unsigned long long>(acquires),
      static_cast<unsigned long long>(blocked_acquires),
      static_cast<unsigned long long>(commute_grants),
      static_cast<unsigned long long>(case1_grants),
      static_cast<unsigned long long>(case2_waits),
      static_cast<unsigned long long>(root_waits),
      static_cast<unsigned long long>(retained_hits),
      static_cast<unsigned long long>(deadlocks),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(fast_path_hits),
      static_cast<unsigned long long>(coalesced_grants),
      static_cast<unsigned long long>(memo_hits),
      static_cast<unsigned long long>(keyrange_skips),
      static_cast<unsigned long long>(prudent_bypasses));
  return buf;
}

std::string LockStats::ToJson() const {
  metrics::JsonWriter w;
  w.Field("acquires", acquires);
  w.Field("blocked_acquires", blocked_acquires);
  w.Field("commute_grants", commute_grants);
  w.Field("case1_grants", case1_grants);
  w.Field("case2_waits", case2_waits);
  w.Field("root_waits", root_waits);
  w.Field("retained_hits", retained_hits);
  w.Field("deadlocks", deadlocks);
  w.Field("timeouts", timeouts);
  w.Field("fast_path_hits", fast_path_hits);
  w.Field("fast_path_misses", fast_path_misses);
  w.Field("coalesced_grants", coalesced_grants);
  w.Field("memo_hits", memo_hits);
  w.Field("keyrange_skips", keyrange_skips);
  w.Field("prudent_bypasses", prudent_bypasses);
  w.Field("granted_entries", granted_entries);
  w.Field("released_entries", released_entries);
  w.Field("wakeups", wakeups);
  w.Field("wait_count", wait_micros.count);
  w.Field("wait_mean_us", wait_micros.mean());
  w.Field("wait_p50_us", wait_micros.p50);
  w.Field("wait_p95_us", wait_micros.p95);
  w.Field("wait_p99_us", wait_micros.p99);
  w.Field("wait_max_us", wait_micros.max);
  return w.Close();
}

size_t LockManager::ClampShardCount(int requested) {
  int n = requested;
  if (n < 1) n = 1;
  if (n > kMaxShards) n = kMaxShards;
  size_t pow2 = 1;
  while (pow2 < static_cast<size_t>(n)) pow2 <<= 1;
  return pow2;
}

LockManager::LockManager(const ProtocolOptions& options,
                         CompatibilityRegistry* compat)
    : options_(options),
      compat_(compat),
      counters_(ClampShardCount(options.lock_table_shards), kCtrCount) {
  const size_t pow2 = ClampShardCount(options.lock_table_shards);
  shards_.reserve(pow2);
  for (size_t i = 0; i < pow2; ++i) {
    shards_.push_back(std::make_unique<LockShard>());
  }
  shard_mask_ = static_cast<uint32_t>(pow2 - 1);
}

LockManager::~LockManager() = default;

LockStats LockManager::stats() const {
  LockStats s;
  s.acquires = counters_.Sum(kCtrAcquires);
  s.blocked_acquires = counters_.Sum(kCtrBlockedAcquires);
  s.commute_grants = counters_.Sum(kCtrCommuteGrants);
  s.case1_grants = counters_.Sum(kCtrCase1Grants);
  s.case2_waits = counters_.Sum(kCtrCase2Waits);
  s.root_waits = counters_.Sum(kCtrRootWaits);
  s.retained_hits = counters_.Sum(kCtrRetainedHits);
  s.deadlocks = counters_.Sum(kCtrDeadlocks);
  s.timeouts = counters_.Sum(kCtrTimeouts);
  s.fast_path_hits = counters_.Sum(kCtrFastPathHits);
  s.fast_path_misses = counters_.Sum(kCtrFastPathMisses);
  s.coalesced_grants = counters_.Sum(kCtrCoalescedGrants);
  s.memo_hits = counters_.Sum(kCtrMemoHits);
  s.keyrange_skips = counters_.Sum(kCtrKeyrangeSkips);
  s.prudent_bypasses = counters_.Sum(kCtrPrudentBypasses);
  s.granted_entries = counters_.Sum(kCtrGrantedEntries);
  s.released_entries = counters_.Sum(kCtrReleasedEntries);
  s.wakeups = counters_.Sum(kCtrWakeups);
  s.wait_micros = wait_micros_.Snapshot();
  return s;
}

LockStats LockManager::shard_stats(uint32_t shard) const {
  LockStats s;
  s.acquires = counters_.StripeValue(shard, kCtrAcquires);
  s.blocked_acquires = counters_.StripeValue(shard, kCtrBlockedAcquires);
  s.commute_grants = counters_.StripeValue(shard, kCtrCommuteGrants);
  s.case1_grants = counters_.StripeValue(shard, kCtrCase1Grants);
  s.case2_waits = counters_.StripeValue(shard, kCtrCase2Waits);
  s.root_waits = counters_.StripeValue(shard, kCtrRootWaits);
  s.retained_hits = counters_.StripeValue(shard, kCtrRetainedHits);
  s.deadlocks = counters_.StripeValue(shard, kCtrDeadlocks);
  s.timeouts = counters_.StripeValue(shard, kCtrTimeouts);
  s.fast_path_hits = counters_.StripeValue(shard, kCtrFastPathHits);
  s.fast_path_misses = counters_.StripeValue(shard, kCtrFastPathMisses);
  s.coalesced_grants = counters_.StripeValue(shard, kCtrCoalescedGrants);
  s.memo_hits = counters_.StripeValue(shard, kCtrMemoHits);
  s.keyrange_skips = counters_.StripeValue(shard, kCtrKeyrangeSkips);
  s.prudent_bypasses = counters_.StripeValue(shard, kCtrPrudentBypasses);
  s.granted_entries = counters_.StripeValue(shard, kCtrGrantedEntries);
  s.released_entries = counters_.StripeValue(shard, kCtrReleasedEntries);
  s.wakeups = counters_.StripeValue(shard, kCtrWakeups);
  return s;
}

void LockManager::EmitLockEvent(trace::EventKind kind, SubTxn* t,
                                const LockTarget& target, uint32_t shard,
                                ConflictOutcome verdict, SubTxn* blocker,
                                uint64_t value, uint8_t flags) const {
  trace::Event e;
  e.kind = static_cast<uint8_t>(kind);
  e.txn = t->id();
  e.root = t->root()->id();
  e.depth = static_cast<uint16_t>(t->depth());
  e.target = target.key;
  e.target_space = static_cast<uint8_t>(target.space);
  e.shard = shard;
  e.verdict = static_cast<uint8_t>(verdict);
  e.other = blocker != nullptr ? blocker->id() : 0;
  e.value = value;
  e.flags = flags;
  if (target.has_interval) {
    e.key_lo = target.key_lo;
    e.key_hi = target.key_hi;
    e.flags |= trace::kFlagKeyRange;
  }
  // Replay fidelity (tools/trace_replay): the captured type and the first
  // two integer arguments are enough to re-derive every argument-sensitive
  // verdict of the order-entry matrix. Non-integer arguments replay as 0.
  e.type_id = static_cast<uint16_t>(t->type());
  const Args& args = t->args();
  e.argc = static_cast<uint8_t>(args.size() < 2 ? args.size() : 2);
  if (!args.empty() && args[0].type() == Value::Type::kInt) {
    e.arg0 = args[0].AsInt();
  }
  if (args.size() > 1 && args[1].type() == Value::Type::kInt) {
    e.arg1 = args[1].AsInt();
  }
  e.set_method(t->method());
  trace::Emit(e);
}

void LockManager::NotifyShards(const ShardSet& s) {
  if (s.none()) return;
  const bool tracing = trace::Active(options_.trace);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!s.test(i)) continue;
    LockShard& shard = *shards_[i];
    counters_.Inc(i, kCtrWakeups);
    if (tracing) {
      trace::Event e;
      e.kind = static_cast<uint8_t>(trace::EventKind::kWakeup);
      e.shard = static_cast<uint32_t>(i);
      trace::Emit(e);
    }
    // Lock-then-notify: a registering waiter holds its shard mutex
    // continuously from its blocker scan until the condvar wait parks it,
    // so acquiring the mutex here serializes us after that window — the
    // notification cannot fall between a waiter's scan and its sleep.
    MutexLock l(shard.mu);
    shard.cv.NotifyAll();
  }
}

// --- test-conflict -----------------------------------------------------

SubTxn* LockManager::TestConflictSemantic(const LockEntry& h, SubTxn* r,
                                          CcMode mode,
                                          ConflictOutcome* why) const {
  SubTxn* holder = h.acquirer;
  // "if h and r ... belong to the same top-level transaction then return nil"
  // (also: retained locks never block later subtransactions of the same
  // transaction, §4.1).
  if (holder->SameRootAs(r)) {
    *why = ConflictOutcome::kSameTxn;
    return nullptr;
  }
  // Adaptive k2PL mode (DESIGN.md §5.9): the matrix is forced to
  // conflict-only and the ancestor walk skipped — every foreign pair is a
  // root wait. Strictly more conservative than the semantic test below, so
  // a 2PL-mode requester can never be granted where semantics would block.
  if (mode == CcMode::k2PL) {
    *why = ConflictOutcome::kRootWait;
    return holder->root();
  }
  // "if h and r commute ... return nil". Both act on the same object, so the
  // object type is shared and the compatibility spec of that type applies.
  if (compat_->Commute(holder->type(), h.method_id, holder->args(),
                       r->method_id(), r->args())) {
    *why = ConflictOutcome::kCommute;
    return nullptr;
  }
  if (options_.ancestor_walk) {
    // "for all h' in the ancestor chain of h do for all r' in the ancestor
    // chain of r do if h' and r' commute ..." — a pair commutes only if it
    // acts on the *same* object (semantic knowledge exists per object); the
    // walk is bottom-up on both chains, chasing parent pointers directly
    // (this runs per (holder, requester) pair per scan — materializing the
    // chains would allocate on every conflict test).
    for (SubTxn* h_anc = holder->parent(); h_anc != nullptr;
         h_anc = h_anc->parent()) {
      for (SubTxn* r_anc = r->parent(); r_anc != nullptr;
           r_anc = r_anc->parent()) {
        if (h_anc->object() != r_anc->object()) continue;
        if (!compat_->Commute(h_anc->type(), h_anc->method_id(),
                              h_anc->args(), r_anc->method_id(),
                              r_anc->args())) {
          continue;
        }
        if (h_anc->committed()) {
          // Case 1: commutative and committed ancestor — the conflict is an
          // implementation-level pseudo-conflict; grant.
          *why = ConflictOutcome::kCase1Grant;
          return nullptr;
        }
        if (h_anc->state() == TxnState::kAborted) {
          // An aborted subtransaction gives no isolation guarantee: its
          // effects are only removed when the enclosing transaction's
          // compensation finishes. Keep walking; without a committed
          // commuting ancestor the requester waits for the holder's
          // top-level completion (after which the tree's locks are gone).
          continue;
        }
        // Case 2: commutative but uncommitted ancestor — r may resume upon
        // completion of h'.
        *why = ConflictOutcome::kCase2Wait;
        return h_anc;
      }
    }
  }
  // "return root of h — worst case: waiting for the top-level commit."
  *why = ConflictOutcome::kRootWait;
  return holder->root();
}

SubTxn* LockManager::TestConflictClosed(const LockEntry& h, SubTxn* r,
                                        bool r_is_write,
                                        ConflictOutcome* why) const {
  // Moss's rule: a lock held (possibly by inheritance) by r itself or one of
  // r's ancestors does not conflict.
  SubTxn* owner = h.owner;
  if (owner == r || owner->IsAncestorOf(r)) {
    *why = ConflictOutcome::kSameTxn;
    return nullptr;
  }
  if (!h.is_write && !r_is_write) {
    *why = ConflictOutcome::kSharedGrant;
    return nullptr;
  }
  // Wait for the current owner; on its completion the lock is anti-inherited
  // by its parent and the test is repeated.
  *why = ConflictOutcome::kHolderWait;
  return owner->completed() ? owner->root() : owner;
}

SubTxn* LockManager::TestConflictFlat(const LockEntry& h, SubTxn* r,
                                      bool r_is_write,
                                      ConflictOutcome* why) const {
  if (h.acquirer->SameRootAs(r)) {
    *why = ConflictOutcome::kSameTxn;
    return nullptr;
  }
  if (!h.is_write && !r_is_write) {
    *why = ConflictOutcome::kSharedGrant;
    return nullptr;
  }
  *why = ConflictOutcome::kHolderWait;
  return h.acquirer->root();
}

SubTxn* LockManager::TestConflict(const LockEntry& h, SubTxn* r,
                                  bool r_is_write, CcMode mode,
                                  ConflictOutcome* why) const {
  switch (options_.protocol) {
    case Protocol::kSemanticONT:
      return TestConflictSemantic(h, r, mode, why);
    case Protocol::kClosedNested:
      return TestConflictClosed(h, r, r_is_write, why);
    case Protocol::kFlat2PL:
      return TestConflictFlat(h, r, r_is_write, why);
  }
  *why = ConflictOutcome::kNoLock;
  return nullptr;
}

void LockManager::CollectBlockers(const LockShard& shard, const LockQueue& q,
                                  const LockTarget& target, uint64_t my_seq,
                                  SubTxn* t, bool is_write, CcMode mode,
                                  uint32_t stripe, bool count_stats,
                                  bool memoize, ScanResult* out) {
  (void)shard;  // capability-only parameter (REQUIRES(shard.mu))
  out->Clear();
  // Prudent mode (DESIGN.md §5.9): bounded FCFS relaxation — this scan may
  // jump over up to prudent_bypass_limit earlier *waiting* entries instead
  // of queueing behind them. Granted entries are always fully tested, so
  // serializability is untouched; only queue fairness is relaxed, which is
  // what breaks waiter convoys on hot shards.
  int bypass_budget = (mode == CcMode::kPrudent)
                          ? options_.adaptive.prudent_bypass_limit
                          : 0;
  for (const LockEntry& e : q.entries) {
    if (e.acquirer == t) continue;
    // Test against held locks and earlier-queued requests (FCFS, paper
    // footnote 5). Compensating actions are exempt from FCFS: they operate
    // under the transaction's existing retained locks, and queueing them
    // behind foreign waiters (which wait for THIS transaction's completion)
    // would deadlock the rollback itself.
    if (!e.granted && (e.seq > my_seq || t->compensation())) continue;
    if (!e.granted && bypass_budget > 0) {
      --bypass_budget;
      counters_.Inc(stripe, kCtrPrudentBypasses);
      if (controller_ != nullptr) controller_->RecordBypass(t->type());
      continue;
    }
    // Key-range precheck (keyrange_locks): provably disjoint key intervals
    // commute by key disjointness — whatever the coarse per-object matrix
    // would say — so the pair is nil without a conflict test. This is the
    // semantic escalation of DESIGN.md §5.8; sound because an interval is
    // only annotated from an (exact or upper-bound) method footprint, never
    // for size-observing methods. Same-tree entries fall through to the
    // ordinary kSameTxn verdict so the commute counters keep meaning
    // "foreign pair commuted" with the flag on or off. Disabled in k2PL
    // mode, whose contract is conflict-only (no semantic relief of any
    // kind).
    if (mode != CcMode::k2PL && KeyIntervalsDisjoint(e, target) &&
        !e.acquirer->SameRootAs(t)) {
      if (count_stats) {
        counters_.Inc(stripe, kCtrKeyrangeSkips);
        counters_.Inc(stripe, kCtrCommuteGrants);
        if (controller_ != nullptr) {
          controller_->RecordVerdict(t->type(), ConflictOutcome::kCommute);
        }
        if (out->grant_relief != ConflictOutcome::kCase1Grant) {
          out->grant_relief = ConflictOutcome::kCommute;
        }
      }
      continue;
    }
    if (memoize) {
      // Nil verdicts are stable for a fixed (entry, requester) — states
      // only move active -> terminal — so one memoized across this
      // Acquire's re-scans needs no re-derivation. The seq match guards
      // against a pooled node recycled into a different entry. Non-nil
      // verdicts are never memoized: blockers must be re-derived fresh.
      auto mit = out->nil_verdicts.find(&e);
      if (mit != out->nil_verdicts.end() && mit->second == e.seq) {
        counters_.Inc(stripe, kCtrMemoHits);
        continue;
      }
    }
    ConflictOutcome why = ConflictOutcome::kNoLock;
    SubTxn* b = TestConflict(e, t, is_write, mode, &why);
    if (b == nullptr && memoize) out->nil_verdicts.emplace(&e, e.seq);
    // Shadow sampling (DESIGN.md §5.9): a k2PL-mode conflict still asks,
    // once per first scan, whether the pair would have commuted directly —
    // the controller's only promote-back signal while semantic testing is
    // switched off. One matrix probe, no ancestor walk.
    if (mode == CcMode::k2PL && count_stats && controller_ != nullptr &&
        why == ConflictOutcome::kRootWait) {
      controller_->RecordShadow(
          t->type(),
          compat_->Commute(e.acquirer->type(), e.method_id,
                           e.acquirer->args(), t->method_id(), t->args()));
    }
    // Do NOT drop blockers that completed between the conflict test and
    // here: a just-aborted subtransaction must not look like a grant. The
    // wait loop re-derives the verdict from fresh state on every wake-up.
    if (b != nullptr) {
      if (out->first_blocker == nullptr) {
        out->first_blocker = b;
        out->block_why = why;
        out->blocker_retained = e.granted && e.acquirer->completed();
      }
      if (std::find(out->blockers.begin(), out->blockers.end(), b) ==
          out->blockers.end()) {
        out->blockers.push_back(b);
        // Classify the wake event at scan time: a blocker still incomplete
        // NOW completes later — the pre-sleep revalidation must re-check it
        // under the graph mutex. One already completed is awaiting
        // ReleaseTree, which purges this queue under this shard's mutex and
        // so cannot be missed by a sleeping waiter.
        if (!b->completed()) out->completion_watch.push_back(b);
      }
      if (count_stats) {
        // A retained hit is orthogonal to the verdict kind: the blocking
        // entry's holder had already completed, i.e. a retained lock (§4.1)
        // did its job of stopping a bypassing access (Figure 5).
        if (e.granted && e.acquirer->completed()) {
          counters_.Inc(stripe, kCtrRetainedHits);
        }
        switch (why) {
          case ConflictOutcome::kCase2Wait:
            counters_.Inc(stripe, kCtrCase2Waits);
            break;
          case ConflictOutcome::kRootWait:
            counters_.Inc(stripe, kCtrRootWaits);
            ++t_root_waits;
            break;
          default:
            break;
        }
        if (controller_ != nullptr) controller_->RecordVerdict(t->type(), why);
      }
    } else if (count_stats && (why == ConflictOutcome::kCase1Grant ||
                               why == ConflictOutcome::kCommute)) {
      if (why == ConflictOutcome::kCase1Grant) {
        counters_.Inc(stripe, kCtrCase1Grants);
        out->grant_relief = ConflictOutcome::kCase1Grant;
      } else {
        counters_.Inc(stripe, kCtrCommuteGrants);
        if (out->grant_relief != ConflictOutcome::kCase1Grant) {
          out->grant_relief = ConflictOutcome::kCommute;
        }
      }
      if (controller_ != nullptr) controller_->RecordVerdict(t->type(), why);
    }
  }
}

void LockManager::ExpandDependencies(
    SubTxn* n, std::vector<SubTxn*>* stack, std::set<SubTxn*>* visited,
    std::map<SubTxn*, SubTxn*>* came_from) const {
  auto wit = waits_.find(n);
  if (wit != waits_.end()) {
    for (SubTxn* b : wit->second.blockers) {
      if (visited->insert(b).second) {
        (*came_from)[b] = n;
        stack->push_back(b);
      }
    }
  }
  for (SubTxn* c : n->IncompleteChildren()) {
    if (visited->insert(c).second) {
      (*came_from)[c] = n;
      stack->push_back(c);
    }
  }
}

SubTxn* LockManager::DetectDeadlock(SubTxn* t) const {
  // Completion-dependency graph: a blocked requester depends on the
  // completions in its waits-for set; an incomplete node's completion
  // depends on its incomplete children (Figure 8 executes children before
  // completing). A cycle through `t` means deadlock. Running the DFS on
  // every (re-)registration is sufficient: a new cycle's chronologically
  // last edge is always a waits-edge, and its registrant is the thread
  // standing here.
  std::vector<SubTxn*> stack;
  std::set<SubTxn*> visited;
  std::map<SubTxn*, SubTxn*> came_from;

  ExpandDependencies(t, &stack, &visited, &came_from);
  SubTxn* cycle_end = nullptr;
  while (!stack.empty()) {
    SubTxn* n = stack.back();
    stack.pop_back();
    if (n == t) {
      cycle_end = n;
      break;
    }
    if (n->completed()) continue;
    ExpandDependencies(n, &stack, &visited, &came_from);
  }
  if (cycle_end == nullptr) return nullptr;

  // Reconstruct the cycle path, collect the top-level transactions on it,
  // and pick the youngest (largest priority rank — retries keep their first
  // attempt's rank, so they age) as victim.
  SubTxn* victim_root = t->root();
  for (SubTxn* n = came_from.count(t) ? came_from[t] : nullptr; n != nullptr;
       n = came_from.count(n) ? came_from[n] : nullptr) {
    if (n->root()->priority() > victim_root->priority()) {
      victim_root = n->root();
    }
    if (n == t) break;
  }
  return victim_root;
}

// --- debug invariant checker --------------------------------------------

void LockManager::InvariantViolation(const char* kind,
                                     const std::string& detail) {
  SEMCC_LOG(Error) << "lock invariant violated [" << kind << "]: " << detail;
  if (options_.invariant_violations_fatal) {
    SEMCC_CHECK(false) << "lock invariant [" << kind << "]: " << detail;
  }
}

void LockManager::CheckGrantInvariants(const LockShard& shard,
                                       const LockQueue& q,
                                       const LockTarget& target,
                                       uint64_t my_seq, SubTxn* t,
                                       bool is_write, CcMode mode) {
  (void)shard;
  // Independently re-derive the grant decision: every other granted (or
  // earlier-queued, FCFS) entry must pass test-conflict against `t`. A
  // non-nil verdict here means the fast path granted a conflicting request.
  for (const LockEntry& e : q.entries) {
    if (e.acquirer == t) continue;
    if (!e.granted && (e.seq > my_seq || t->compensation())) continue;
    // Mirror the scan's mode dispatch: prudent scans may bypass any earlier
    // *waiting* entry (bounded FCFS relaxation), so waiting entries carry
    // no grant obligation here; granted entries are checked as always.
    if (!e.granted && mode == CcMode::kPrudent) continue;
    // Mirror the scan's key-range precheck: a disjoint-interval pair is nil
    // by key disjointness even where the matrix conflicts (k2PL mode runs
    // conflict-only and takes no key-range relief).
    if (mode != CcMode::k2PL && KeyIntervalsDisjoint(e, target)) continue;
    ConflictOutcome why = ConflictOutcome::kNoLock;
    SubTxn* b = TestConflict(e, t, is_write, mode, &why);
    if (b != nullptr) {
      inv_stats_.grant_violations.fetch_add(1, std::memory_order_relaxed);
      InvariantViolation(
          "grant",
          "granted " + t->method() + " (txn " + std::to_string(t->id()) +
              ") despite conflict with holder " + e.acquirer->method() +
              " (txn " + std::to_string(e.acquirer->id()) +
              "), verdict=" + std::to_string(static_cast<int>(why)));
    }
  }
}

void LockManager::CheckQueueInvariants(const LockShard& shard,
                                       const LockQueue& q) {
  (void)shard;
  for (const LockEntry& e : q.entries) {
    // A *waiting* entry's acquirer is by construction parked inside
    // Acquire, so it cannot have completed; a completed subtransaction
    // showing up un-granted means an abandon path failed to withdraw the
    // entry. (Granted entries of completed subtransactions are the retained
    // locks of §4.1 — legal until top-level end.)
    if (!e.granted && e.acquirer->completed()) {
      inv_stats_.retained_violations.fetch_add(1, std::memory_order_relaxed);
      InvariantViolation("retained", "waiting entry owned by completed txn " +
                                         std::to_string(e.acquirer->id()) +
                                         " (" + e.acquirer->method() + ")");
    }
    // Coalescing discipline: only *granted* entries absorb repeated
    // identical acquisitions; a waiting entry always represents exactly
    // one request, and no live entry can have an empty count.
    if (e.count == 0 || (!e.granted && e.count != 1)) {
      inv_stats_.coalesce_violations.fetch_add(1, std::memory_order_relaxed);
      InvariantViolation(
          "coalesce", "entry " + e.acquirer->method() + " (txn " +
                          std::to_string(e.acquirer->id()) + ") is " +
                          (e.granted ? "granted" : "waiting") + " with count " +
                          std::to_string(e.count));
    }
  }
}

void LockManager::CheckNoLeakedLocks(const LockShard& shard, SubTxn* root) {
  uint64_t leaked = 0;
  for (const auto& [target, q] : shard.table) {
    for (const LockEntry& e : q.entries) {
      if (e.acquirer->root() == root) {
        ++leaked;
        InvariantViolation("leak", "entry " + e.acquirer->method() +
                                       " (txn " +
                                       std::to_string(e.acquirer->id()) +
                                       ") on " + target.ToString() +
                                       " survived ReleaseTree of root " +
                                       std::to_string(root->id()));
      }
    }
  }
  if (leaked != 0) {
    inv_stats_.leaked_locks.fetch_add(leaked, std::memory_order_relaxed);
  }
}

void LockManager::CheckWaitGraphAcyclic() {
  // Whenever the graph mutex is released, every wait cycle must contain a
  // root already flagged for abort: the waiter whose edge closed the cycle
  // runs DetectDeadlock (and flags a victim) in the same critical section.
  // DFS with gray/black coloring over waiter -> blockers ∪ incomplete
  // children; nodes of abort-flagged roots are excluded (their cycles are
  // resolving).
  std::set<SubTxn*> done;
  for (const auto& [waiter, rec] : waits_) {
    (void)rec;
    if (done.count(waiter) != 0) continue;
    // Iterative DFS with an explicit path (gray set) for cycle detection.
    std::vector<std::pair<SubTxn*, size_t>> path;  // node + next-child index
    std::set<SubTxn*> on_path;
    path.emplace_back(waiter, 0);
    on_path.insert(waiter);
    while (!path.empty()) {
      auto& [node, child_idx] = path.back();
      // Materialize node's successors once per visit level.
      std::vector<SubTxn*> succ;
      if (!node->completed() && !node->root()->abort_requested()) {
        auto wit = waits_.find(node);
        if (wit != waits_.end()) {
          succ.insert(succ.end(), wit->second.blockers.begin(),
                      wit->second.blockers.end());
        }
        const std::vector<SubTxn*> kids = node->IncompleteChildren();
        succ.insert(succ.end(), kids.begin(), kids.end());
      }
      if (child_idx >= succ.size()) {
        on_path.erase(node);
        done.insert(node);
        path.pop_back();
        continue;
      }
      SubTxn* next = succ[child_idx++];
      if (on_path.count(next) != 0) {
        inv_stats_.wait_cycle_violations.fetch_add(1,
                                                   std::memory_order_relaxed);
        InvariantViolation("wait-cycle",
                           "unresolved waits-for cycle through txn " +
                               std::to_string(next->id()) +
                               " with no deadlock victim chosen");
        return;  // one report per sweep is enough
      }
      if (done.count(next) != 0) continue;
      path.emplace_back(next, 0);
      on_path.insert(next);
    }
  }
}

void LockManager::RecordLockOrder(SubTxn* t, const LockTarget& target) {
  SubTxn* root = t->root();
  HeldTargets& held = held_targets_[root];
  const uint64_t to = PackTarget(target);
  if (!held.seen.insert(to).second) {
    return;  // re-acquisition of a target the tree already locks: no edge
  }
  for (const LockTarget& h : held.order) {
    if (!order_graph_.AddEdge(PackTarget(h), to)) {
      inv_stats_.order_inversions.fetch_add(1, std::memory_order_relaxed);
      // Diagnostic, not a violation: inversions are legal here (the
      // deadlock detector resolves them) but each is a potential deadlock.
      SEMCC_LOG(Debug) << "lock-order inversion: " << h.ToString() << " -> "
                       << target.ToString() << " closes an acquisition-order "
                       << "cycle (txn " << std::to_string(root->id()) << ")";
    }
  }
  held.order.push_back(target);
}

// The loop-carried all-shards acquisition is invisible to the thread-safety
// analysis; AssertHeld re-establishes the per-shard capability for the
// checks inside.
uint64_t LockManager::CheckInvariantsNow() SEMCC_NO_THREAD_SAFETY_ANALYSIS {
  // Stop the world: every shard mutex in index order — the only place two
  // shard mutexes are ever held at once — then the graph mutex. No other
  // thread can be mid-acquire anywhere while we hold them all.
  for (auto& sp : shards_) sp->mu.Lock();
  {
    MutexLock g(graph_mu_);
    inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
    for (auto& sp : shards_) {
      LockShard& shard = *sp;
      shard.mu.AssertHeld();
      for (const auto& [target, q] : shard.table) {
        (void)target;
        CheckQueueInvariants(shard, q);
      }
    }
    if (options_.deadlock_detection) CheckWaitGraphAcyclic();
  }
  for (auto& sp : shards_) sp->mu.Unlock();
  return inv_stats_.protocol_violations();
}

// --- acquire / release --------------------------------------------------

namespace {
/// True when `SubTxn::lock_shards()` says shard `idx` may hold entries of
/// the tree. With more than 64 shards, bits alias (idx mod 64) and the test
/// is conservative — never a false negative.
inline bool MaskHasShard(uint64_t mask, size_t idx) {
  return ((mask >> (idx & 63)) & 1) != 0;
}
}  // namespace

std::list<LockEntry>::iterator LockManager::AppendEntry(
    LockShard& shard, LockQueue& q, const LockTarget& target, SubTxn* t,
    bool is_write, bool granted, uint64_t seq) {
  const LockEntry entry{t,       t,   t->method_id(),
                        is_write,     granted,
                        /*count=*/1,  seq,
                        target.key_lo, target.key_hi, target.has_interval};
  if (options_.pool_entries && !shard.free_entries.empty()) {
    q.entries.splice(q.entries.end(), shard.free_entries,
                     shard.free_entries.begin());
    q.entries.back() = entry;
  } else {
    q.entries.push_back(entry);
  }
  // Membership grew: any published grant-cache slot on this queue may now
  // owe the new entry FCFS priority — invalidate them all.
  q.epoch.fetch_add(1, std::memory_order_release);
  return std::prev(q.entries.end());
}

void LockManager::RecycleEntry(LockShard& shard, LockQueue& q,
                               std::list<LockEntry>::iterator it) {
  if (options_.pool_entries &&
      shard.free_entries.size() < kMaxPooledEntries) {
    shard.free_entries.splice(shard.free_entries.begin(), q.entries, it);
  } else {
    q.entries.erase(it);
  }
}

void LockManager::RemoveWaiter(LockShard& shard, const LockTarget& target,
                               LockQueue& q,
                               std::list<LockEntry>::iterator my_it) {
  RecycleEntry(shard, q, my_it);
  if (q.entries.empty()) shard.table.erase(target);
  // Our waiting entry may have been blocking later-queued requests (FCFS);
  // wake this shard so they re-scan.
  shard.cv.NotifyAll();
}

void LockManager::EraseWaitRecord(SubTxn* t) {
  MutexLock g(graph_mu_);
  waits_.erase(t);
}

bool LockManager::TryFastPath(SubTxn* t, const LockTarget& target,
                              bool is_write, bool* cache_miss,
                              uint32_t* shard_idx) {
  *cache_miss = false;
  // Gates: mechanism enabled and meaningful for this protocol; never while
  // the debug checker is on (every grant must pass through the mutex-path
  // checks); never once the transaction is flagged for abort.
  if (!options_.lock_fast_path ||
      SEMCC_PREDICT_FALSE(options_.debug_lock_checks) ||
      !SemanticFastPathApplies(t)) {
    return false;
  }
  SubTxn* root = t->root();
  if (root->abort_requested()) return false;
  // Past the gates: the request is fast-path eligible, so a false return
  // from here on is a grant-cache miss.
  *cache_miss = true;
  GrantCache* cache = root->grant_cache();
  if (cache == nullptr) return false;
  GrantCache::Slot* slot = cache->Find(target);
  if (slot == nullptr) return false;
  // The requester must be in the published verdict class: same manager,
  // same parent (hence identical ancestor chains on both sides of any
  // test-conflict), same method/mode/type, and matching args unless the
  // method's verdicts are argument-insensitive.
  if (slot->manager != this || slot->parent != t->parent() ||
      slot->method_id != t->method_id() || slot->is_write != is_write ||
      slot->type != t->type()) {
    return false;
  }
  if (slot->args_matter && !(*slot->args == t->args())) return false;
  // The published entry's key-interval annotation must match exactly: an
  // args-insensitive method can still derive a different interval per
  // invocation, and foreign scans judge this verdict class by the published
  // entry's interval. Vacuously true while keyrange_locks is off.
  if (slot->key_lo != target.key_lo || slot->key_hi != target.key_hi ||
      slot->has_interval != target.has_interval) {
    return false;
  }
  // Queue membership unchanged since publication? Appends bump the epoch
  // under the shard mutex; an acquire load here orders the check after any
  // append we could possibly owe FCFS priority to. A concurrent in-flight
  // append linearizes this grant before that arrival — either order is
  // legal, and the newcomer's own scan tests against the published entry,
  // which answers for this whole verdict class.
  if (slot->queue->epoch.load(std::memory_order_acquire) != slot->epoch) {
    return false;
  }
  *shard_idx = slot->shard_idx;
  return true;
}

LockEntry* LockManager::FindCoalescible(const LockShard& shard, LockQueue& q,
                                        const LockTarget& target, SubTxn* t,
                                        bool is_write) {
  (void)shard;  // capability-only parameter (REQUIRES(shard.mu))
  for (LockEntry& e : q.entries) {
    if (!e.granted || e.acquirer == t) continue;
    SubTxn* a = e.acquirer;
    if (a->root() != t->root() || a->parent() != t->parent()) continue;
    if (e.method_id != t->method_id() || e.is_write != is_write ||
        a->type() != t->type() || a->object() != t->object()) {
      continue;
    }
    // Only an entry carrying the identical key-interval annotation may
    // absorb this request: foreign scans derive disjointness verdicts from
    // the entry's interval, which must answer for every coalesced
    // acquisition. Vacuously true while keyrange_locks is off.
    if (e.key_lo != target.key_lo || e.key_hi != target.key_hi ||
        e.has_interval != target.has_interval) {
      continue;
    }
    if (a->compensation()) continue;  // keep compensation entries distinct
    if (compat_->ArgsMatter(t->type(), t->method_id()) &&
        !(a->args() == t->args())) {
      continue;
    }
    return &e;
  }
  return nullptr;
}

void LockManager::PublishSlot(LockQueue& q, const LockTarget& target,
                              SubTxn* t, bool is_write,
                              const LockEntry* entry, uint32_t shard_idx) {
  GrantCache::Slot slot;
  slot.manager = this;
  slot.queue = &q;
  slot.entry = entry;
  slot.epoch = q.epoch.load(std::memory_order_relaxed);
  slot.shard_idx = shard_idx;
  slot.parent = t->parent();
  slot.method_id = t->method_id();
  slot.type = t->type();
  slot.is_write = is_write;
  slot.args_matter = compat_->ArgsMatter(t->type(), t->method_id());
  slot.args = &t->args();
  slot.key_lo = target.key_lo;
  slot.key_hi = target.key_hi;
  slot.has_interval = target.has_interval;
  t->root()->EnsureGrantCache().Put(target, slot);
}

void LockManager::AnnotateKeyInterval(SubTxn* t, LockTarget* target) const {
  if (!options_.keyrange_locks ||
      options_.protocol != Protocol::kSemanticONT ||
      target->space != LockTarget::Space::kObject) {
    return;
  }
  int64_t lo = 0;
  int64_t hi = 0;
  if (compat_->KeyInterval(t->type(), t->method_id(), t->args(), &lo, &hi)) {
    target->key_lo = lo;
    target->key_hi = hi;
    target->has_interval = true;
  }
}

CcMode LockManager::AcquireMode(SubTxn* t) const {
  if (!SEMCC_PREDICT_FALSE(options_.adaptive_mode)) return CcMode::kSemantic;
  if (options_.protocol != Protocol::kSemanticONT) return CcMode::kSemantic;
  // The mode comes from the transaction's pinned snapshot (set by
  // TxnManager before the first action), never from the controller's live
  // assignment — the pin is what guarantees one mode per type for the whole
  // transaction across controller flips.
  const ModeSnapshot* snap = t->root()->mode_snapshot();
  if (snap == nullptr) return CcMode::kSemantic;
  return snap->ModeFor(t->type());
}

Status LockManager::Acquire(SubTxn* t, const LockTarget& requested,
                            bool is_write) {
  // Local annotated copy: the interval is derived per (method, args), not
  // part of the target's identity, so queue lookup and hashing below see
  // the same (space, key) the caller named.
  LockTarget target = requested;
  AnnotateKeyInterval(t, &target);
  // Latched once per Acquire: every conflict test, the debug checker, and
  // the fast-path gates below see the same mode.
  const CcMode mode = AcquireMode(t);
  const bool tracing = trace::Active(options_.trace);
  bool cache_miss = false;
  uint32_t idx = 0;
  // The grant cache, like coalescing below, publishes and reuses verdicts
  // derived under full semantic testing — only pure kSemantic requests may
  // touch it (k2PL derives stricter verdicts, kPrudent non-FCFS ones).
  if (mode == CcMode::kSemantic &&
      TryFastPath(t, target, is_write, &cache_miss, &idx)) {
    // Counter attribution is two relaxed fetch_adds on this shard's own
    // stripe; the shard index comes from the slot, not a fresh hash.
    counters_.Inc(idx, kCtrAcquires);
    counters_.Inc(idx, kCtrFastPathHits);
    if (controller_ != nullptr) {
      controller_->RecordAcquire(t->type(), /*blocked=*/false);
    }
    t->set_grant_seq(NextSeq());
    if (tracing) {
      EmitLockEvent(trace::EventKind::kFastPathGrant, t, target, idx,
                    ConflictOutcome::kNoLock, nullptr, 0,
                    is_write ? trace::kFlagIsWrite : 0);
    }
    return Status::OK();
  }
  const uint32_t shard_idx = ShardIndexOf(target);
  counters_.Inc(shard_idx, kCtrAcquires);
  if (cache_miss) counters_.Inc(shard_idx, kCtrFastPathMisses);
  if (t->root()->abort_requested() && !t->compensation()) {
    // Same outcome the wait loop's top produced before the restructure —
    // derived before any entry exists, so there is nothing to withdraw.
    return Status::Aborted("transaction abort requested while locking " +
                           target.ToString());
  }
  t->root()->NoteLockShard(shard_idx);
  LockShard& shard = *shards_[shard_idx];
  MutexLock lock(shard.mu);
  LockQueue& q = shard.table[target];

  // Pre-append scan at the next (unconsumed) seq: no existing entry can
  // have a larger one, so "blockers empty" here means the WHOLE queue —
  // granted entries and waiters of any arrival order — tests nil against
  // t. That is exactly the FCFS verdict the old append-first code derived,
  // and it doubles as the grant-cache publication condition.
  ScanResult scan;
  const uint64_t peek_seq = shard.next_entry_seq;
  CollectBlockers(shard, q, target, peek_seq, t, is_write, mode, shard_idx,
                  /*count_stats=*/true, /*memoize=*/false, &scan);
  if (controller_ != nullptr) {
    controller_->RecordAcquire(t->type(), !scan.blockers.empty());
  }
  if (scan.blockers.empty()) {
    const bool semantic_fast =
        SemanticFastPathApplies(t) && mode == CcMode::kSemantic;
    LockEntry* entry = nullptr;
    if (semantic_fast && options_.coalesce_entries) {
      entry = FindCoalescible(shard, q, target, t, is_write);
    }
    if (entry != nullptr) {
      // Identical grant already in the queue: absorb this acquisition into
      // its count. No new entry, no seq consumed, no epoch bump — foreign
      // scans keep deriving the exact verdicts they would have derived
      // against a duplicate entry of the same class.
      ++entry->count;
      counters_.Inc(shard_idx, kCtrCoalescedGrants);
    } else {
      shard.next_entry_seq++;
      entry = &*AppendEntry(shard, q, target, t, is_write, /*granted=*/true,
                            peek_seq);
      counters_.Inc(shard_idx, kCtrGrantedEntries);
    }
    t->set_grant_seq(NextSeq());
    if (tracing) {
      EmitLockEvent(trace::EventKind::kGrant, t, target, shard_idx,
                    scan.grant_relief, nullptr, 0,
                    is_write ? trace::kFlagIsWrite : 0);
    }
    if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
      inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
      CheckGrantInvariants(shard, q, target, peek_seq, t, is_write, mode);
      CheckQueueInvariants(shard, q);
      MutexLock g(graph_mu_);
      RecordLockOrder(t, target);
    } else if (semantic_fast && options_.lock_fast_path &&
               !t->root()->abort_requested()) {
      PublishSlot(q, target, t, is_write, entry, shard_idx);
    }
    return Status::OK();
  }

  // Blocked: enter the queue (consuming the peeked seq) and wait.
  shard.next_entry_seq++;
  auto my_it =
      AppendEntry(shard, q, target, t, is_write, /*granted=*/false, peek_seq);
  const uint64_t my_seq = peek_seq;
  if (tracing) {
    EmitLockEvent(
        trace::EventKind::kBlock, t, target, shard_idx, scan.block_why,
        scan.first_blocker, 0,
        (scan.blocker_retained ? trace::kFlagBlockerRetained : 0) |
            (is_write ? trace::kFlagIsWrite : 0));
  }

  bool ever_blocked = false;
  StopWatch wait_timer;
  std::chrono::steady_clock::time_point deadline{};
  while (true) {
    if (t->root()->abort_requested() && !t->compensation()) {
      RemoveWaiter(shard, target, q, my_it);
      EraseWaitRecord(t);
      if (tracing) {
        EmitLockEvent(trace::EventKind::kAbortedWait, t, target, shard_idx,
                      ConflictOutcome::kNoLock, nullptr, 0, 0);
      }
      return Status::Aborted("transaction abort requested while locking " +
                             target.ToString());
    }
    CollectBlockers(shard, q, target, my_seq, t, is_write, mode, shard_idx,
                    /*count_stats=*/false, options_.memoize_conflicts, &scan);
    if (scan.blockers.empty()) {
      my_it->granted = true;
      counters_.Inc(shard_idx, kCtrGrantedEntries);
      t->set_grant_seq(NextSeq());
      if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
        inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
        CheckGrantInvariants(shard, q, target, my_seq, t, is_write, mode);
        CheckQueueInvariants(shard, q);
        MutexLock g(graph_mu_);
        RecordLockOrder(t, target);
      }
      // No grant-cache publication here: entries queued after ours may
      // already be waiting (FCFS), so the whole-queue publication
      // condition does not hold at my_seq. The next identical acquire
      // re-derives and republishes from the pre-append scan above.
      uint64_t waited_us = 0;
      if (ever_blocked) {
        EraseWaitRecord(t);
        waited_us = wait_timer.ElapsedMicros();
        wait_micros_.Add(waited_us);
      }
      if (tracing) {
        EmitLockEvent(trace::EventKind::kGrantAfterWait, t, target, shard_idx,
                      ConflictOutcome::kNoLock, nullptr, waited_us, 0);
      }
      return Status::OK();
    }
    if (!ever_blocked) {
      ever_blocked = true;
      counters_.Inc(shard_idx, kCtrBlockedAcquires);
      wait_timer.Restart();
      deadline = std::chrono::steady_clock::now() + options_.wait_timeout;
    }
    // Register the waits-for set (Figure 8) and run deadlock detection.
    // Still holding shard.mu: any event that purges our blockers' queue
    // entries must take it, so it cannot complete between the scan above
    // and the condvar wait below. Completion events touch no shard mutex,
    // so those are closed out by re-checking the watched blockers under
    // the graph mutex — a completer publishes state before its own
    // graph-mutex scan of waits_, hence either it sees our registration
    // (and notifies our shard) or we see its completion here and retry.
    bool revalidate = false;
    bool self_victim = false;
    ShardSet wake;
    {
      MutexLock g(graph_mu_);
      if (t->root()->abort_requested() && !t->compensation()) {
        revalidate = true;  // flagged since the loop-top check; don't sleep
      } else {
        for (SubTxn* b : scan.completion_watch) {
          if (b->completed()) {
            revalidate = true;
            break;
          }
        }
      }
      if (!revalidate) {
        WaitRecord& rec = waits_[t];
        rec.blockers.assign(scan.blockers.begin(), scan.blockers.end());
        rec.shard = shard_idx;
        if (options_.deadlock_detection) {
          SubTxn* victim = DetectDeadlock(t);
          if (victim != nullptr) {
            if (victim == t->root()) {
              counters_.Inc(shard_idx, kCtrDeadlocks);
              waits_.erase(t);
              self_victim = true;
            } else if (!victim->abort_requested()) {
              // First detector to see this cycle: flag the victim (under
              // the graph mutex, so registering waiters re-check it before
              // sleeping) and wake its blocked actions.
              counters_.Inc(shard_idx, kCtrDeadlocks);
              victim->RequestAbort();
              for (const auto& [waiter, wrec] : waits_) {
                if (waiter->root() == victim) wake.set(wrec.shard);
              }
              revalidate = true;
            }
            // Otherwise the victim is already flagged and its waiters
            // woken by the first detector; sleep normally.
          }
          if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
            // At this point every wait cycle must have a victim flagged.
            inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
            CheckWaitGraphAcyclic();
          }
        }
      }
    }
    if (self_victim) {
      RemoveWaiter(shard, target, q, my_it);
      if (tracing) {
        EmitLockEvent(trace::EventKind::kDeadlockVictim, t, target, shard_idx,
                      ConflictOutcome::kNoLock, nullptr, 0, 0);
      }
      return Status::Deadlock("deadlock victim at " + target.ToString());
    }
    if (wake.any()) {
      // Wake the victim's waiters. Our own shard can be notified while its
      // mutex is held; foreign shards require dropping it first (a thread
      // never holds two shard mutexes). q and my_it survive the unlocked
      // gap: our queue entry keeps the queue non-empty so it cannot be
      // erased, and list iterators are stable.
      if (wake.test(shard_idx)) {
        shard.cv.NotifyAll();
        wake.reset(shard_idx);
      }
      if (wake.any()) {
        lock.Unlock();
        NotifyShards(wake);
        lock.Lock();
      }
      continue;
    }
    if (revalidate) continue;
    if (std::chrono::steady_clock::now() >= deadline) {
      counters_.Inc(shard_idx, kCtrTimeouts);
      RemoveWaiter(shard, target, q, my_it);
      EraseWaitRecord(t);
      if (tracing) {
        EmitLockEvent(trace::EventKind::kLockTimeout, t, target, shard_idx,
                      ConflictOutcome::kNoLock, nullptr, 0, 0);
      }
      return Status::TimedOut("lock wait timeout on " + target.ToString());
    }
    shard.cv.WaitUntil(lock, deadline);
  }
}

void LockManager::OnSubTxnCompleted(SubTxn* t) {
  t->set_end_seq(NextSeq());
  if (trace::Active(options_.trace)) {
    EmitLockEvent(trace::EventKind::kComplete, t, LockTarget{}, 0,
                  ConflictOutcome::kNoLock, nullptr, 0, 0);
  }
  ShardSet wake;
  switch (options_.protocol) {
    case Protocol::kSemanticONT:
      if (!options_.retain_locks) {
        // §3 protocol: "the locks of the actions in a subtransaction are
        // released upon the completion of the subtransaction" — drop every
        // lock owned by a proper descendant of t; t's own lock remains until
        // t's parent completes (only the root's semantic locks survive to
        // the end of the transaction). Shards are swept one at a time (a
        // thread never holds two shard mutexes); shards the tree never
        // touched are skipped via the root's shard mask.
        const uint64_t mask = t->root()->lock_shards();
        for (size_t i = 0; i < shards_.size(); ++i) {
          if (!MaskHasShard(mask, i)) continue;
          LockShard& shard = *shards_[i];
          MutexLock l(shard.mu);
          bool changed = false;
          for (auto it = shard.table.begin(); it != shard.table.end();) {
            LockQueue& q = it->second;
            for (auto e = q.entries.begin(); e != q.entries.end();) {
              if (e->granted && t->IsAncestorOf(e->acquirer)) {
                counters_.Inc(i, kCtrReleasedEntries);
                RecycleEntry(shard, q, e++);
                changed = true;
              } else {
                ++e;
              }
            }
            it = q.entries.empty() ? shard.table.erase(it) : std::next(it);
          }
          if (changed) wake.set(i);
        }
      }
      break;
    case Protocol::kClosedNested:
      // Anti-inheritance: the parent adopts the completed child's locks.
      if (t->parent() != nullptr) {
        const uint64_t mask = t->root()->lock_shards();
        for (size_t i = 0; i < shards_.size(); ++i) {
          if (!MaskHasShard(mask, i)) continue;
          LockShard& shard = *shards_[i];
          MutexLock l(shard.mu);
          for (auto& [target, q] : shard.table) {
            (void)target;
            for (LockEntry& e : q.entries) {
              if (e.owner == t && e.granted) e.owner = t->parent();
            }
          }
        }
      }
      break;
    case Protocol::kFlat2PL:
      break;  // all locks are root-owned and strict
  }
  if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
    inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
    for (auto& sp : shards_) {
      LockShard& shard = *sp;
      MutexLock l(shard.mu);
      for (const auto& [target, q] : shard.table) {
        (void)target;
        CheckQueueInvariants(shard, q);
      }
    }
  }
  // Waits-for sets shrink on completion, not on lock release: wake exactly
  // the shards hosting a waiter that waits for t. The retained-lock fast
  // path (the common case) therefore touches no shard mutex at all before
  // this point.
  {
    MutexLock g(graph_mu_);
    for (const auto& [waiter, rec] : waits_) {
      (void)waiter;
      for (SubTxn* b : rec.blockers) {
        if (b == t) {
          wake.set(rec.shard);
          break;
        }
      }
    }
  }
  NotifyShards(wake);
}

void LockManager::ReleaseTree(SubTxn* root) {
  // Invalidate the tree's published grants BEFORE any of its entries leave
  // a queue, so no slot can outlive the entry it points at. (The cache is
  // the tree's executing thread's data; by the time ReleaseTree is legal,
  // no action of the tree can still be acquiring.)
  root->ClearGrantCache();
  if (trace::Active(options_.trace)) {
    EmitLockEvent(trace::EventKind::kRelease, root, LockTarget{}, 0,
                  ConflictOutcome::kNoLock, nullptr, 0, 0);
  }
  ShardSet wake;
  // Skip shards the tree never touched — except under debug checks, where
  // the full sweep lets CheckNoLeakedLocks catch a shard-mask bug.
  const uint64_t mask = root->lock_shards();
  const bool sweep_all = SEMCC_PREDICT_FALSE(options_.debug_lock_checks);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!sweep_all && !MaskHasShard(mask, i)) continue;
    LockShard& shard = *shards_[i];
    MutexLock l(shard.mu);
    bool changed = false;
    for (auto it = shard.table.begin(); it != shard.table.end();) {
      LockQueue& q = it->second;
      for (auto e = q.entries.begin(); e != q.entries.end();) {
        if (e->acquirer->root() == root) {
          if (e->granted) counters_.Inc(i, kCtrReleasedEntries);
          RecycleEntry(shard, q, e++);
          changed = true;
        } else {
          ++e;
        }
      }
      it = q.entries.empty() ? shard.table.erase(it) : std::next(it);
    }
    if (changed) wake.set(i);
    if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
      inv_stats_.checks.fetch_add(1, std::memory_order_relaxed);
      CheckNoLeakedLocks(shard, root);
    }
  }
  // Purge dangling blocker pointers into the departing tree; the blocked
  // threads re-derive their waits-for sets when they wake.
  {
    MutexLock g(graph_mu_);
    for (auto& [waiter, rec] : waits_) {
      (void)waiter;
      std::vector<SubTxn*>& blockers = rec.blockers;
      const size_t before = blockers.size();
      blockers.erase(
          std::remove_if(blockers.begin(), blockers.end(),
                         [&](SubTxn* b) { return b->root() == root; }),
          blockers.end());
      if (blockers.size() != before) wake.set(rec.shard);
    }
    if (SEMCC_PREDICT_FALSE(options_.debug_lock_checks)) {
      held_targets_.erase(root);
    }
  }
  NotifyShards(wake);
}

void LockManager::OnAbortRequested(SubTxn* root) {
  ShardSet wake;
  {
    // Publish the flag under the graph mutex: a registering waiter either
    // re-checks abort_requested after us (and refuses to sleep) or
    // registered before us (and is woken below).
    MutexLock g(graph_mu_);
    root->RequestAbort();
    for (const auto& [waiter, rec] : waits_) {
      if (waiter->root() == root) wake.set(rec.shard);
    }
  }
  NotifyShards(wake);
}

std::vector<LockManager::LockInfo> LockManager::LocksOn(
    const LockTarget& target) const {
  LockShard& shard = ShardFor(target);
  MutexLock lock(shard.mu);
  std::vector<LockInfo> out;
  auto it = shard.table.find(target);
  if (it == shard.table.end()) return out;
  for (const LockEntry& e : it->second.entries) {
    out.push_back(LockInfo{e.acquirer->id(), e.acquirer->root()->id(),
                           e.acquirer->method(), e.granted,
                           e.acquirer->completed(), e.count});
  }
  return out;
}

size_t LockManager::NumWaiters() const {
  MutexLock lock(graph_mu_);
  return waits_.size();
}

}  // namespace semcc
