#include "cc/lock_invariants.h"

#include <deque>
#include <sstream>

namespace semcc {

std::string LockInvariantStats::ToString() const {
  std::ostringstream os;
  os << "invariant checks=" << checks.load()
     << " grant_violations=" << grant_violations.load()
     << " retained_violations=" << retained_violations.load()
     << " leaked_locks=" << leaked_locks.load()
     << " wait_cycle_violations=" << wait_cycle_violations.load()
     << " coalesce_violations=" << coalesce_violations.load()
     << " order_inversions=" << order_inversions.load();
  return os.str();
}

bool LockOrderGraph::AddEdge(uint64_t from, uint64_t to) {
  if (from == to) return true;  // re-acquiring the same target is not an edge
  auto& succ = adj_[from];
  if (succ.count(to) != 0) return true;  // known edge: already judged
  const bool inversion = Reachable(to, from);
  succ.insert(to);
  return !inversion;
}

bool LockOrderGraph::Reachable(uint64_t from, uint64_t to) const {
  if (from == to) return true;
  std::set<uint64_t> seen;
  std::deque<uint64_t> frontier{from};
  while (!frontier.empty()) {
    const uint64_t node = frontier.front();
    frontier.pop_front();
    if (!seen.insert(node).second) continue;
    auto it = adj_.find(node);
    if (it == adj_.end()) continue;
    for (uint64_t next : it->second) {
      if (next == to) return true;
      frontier.push_back(next);
    }
  }
  return false;
}

size_t LockOrderGraph::num_edges() const {
  size_t n = 0;
  for (const auto& [node, succ] : adj_) n += succ.size();
  return n;
}

void LockOrderGraph::Clear() { adj_.clear(); }

}  // namespace semcc
