// Per-tree grant cache: the lock-acquisition fast path (DESIGN.md §5.4).
//
// A transaction that re-invokes a method it already holds a granted
// identical semantic lock for pays, on the slow path, one shard mutex plus
// a full queue scan per re-acquire — on queues that only ever grow until
// top-level commit (§4.1 retained locks). The grant cache remembers, per
// top-level transaction and lock target, one *published* granted entry:
// a grant made while the whole queue (granted entries AND waiters of any
// arrival order) tested nil against the acquirer. A later acquisition of
// the same verdict class — same parent (hence the identical ancestor
// chain), same method, same mode, and the same arguments unless the
// compatibility spec is argument-insensitive for the method — is then
// granted without touching the shard, provided the queue's membership
// epoch still matches the published value.
//
// Why this cannot change a verdict (full argument in DESIGN.md §5.4):
//  * test-conflict never reads the *requester's own* completion state, and
//    never reads the holder's own completion state either — only those of
//    ancestors — so two sibling actions with the same parent and the same
//    (method, args) class are interchangeable on both sides of the test;
//  * nil verdicts are stable in time for a fixed (holder entry, requester
//    class): subtransaction states only move active -> {committed,
//    aborted}, which can turn a blocker into a non-blocker but never the
//    reverse, so a queue that tested all-nil at publication stays all-nil
//    until its *membership* changes;
//  * membership changes that matter are exactly the appends (a new waiter
//    could be owed FCFS priority, footnote 5); every append bumps the
//    queue epoch, and a mismatch sends the requester back to the mutex
//    path, which re-derives the verdict from scratch.
//
// Threading: the cache lives on the ROOT SubTxn and is read and written
// only by the tree's executing thread (one thread runs a transaction's
// actions, its rollback, and its release — see txn/txn_manager.cc). The
// only cross-thread datum consulted on a hit is the queue epoch, which is
// atomic. Invalidation is therefore single-threaded too: ReleaseTree and
// abort/compensation (TxnCtx::Rollback) clear the cache before any entry
// of the tree is removed from a queue, so a slot can never outlive the
// entry it points at.
#ifndef SEMCC_CC_GRANT_CACHE_H_
#define SEMCC_CC_GRANT_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "cc/lock_target.h"
#include "cc/method_interner.h"
#include "object/value.h"

namespace semcc {

class LockManager;
class SubTxn;
struct LockEntry;
struct LockQueue;

/// \brief Per-root map of lock target -> published granted entry.
class GrantCache {
 public:
  struct Slot {
    /// Manager that published the slot; a tree reused against a different
    /// LockManager (tests do this) must miss, not dereference.
    LockManager* manager = nullptr;
    /// Queue hosting the published entry. Stable: unordered_map values do
    /// not move, the queue is erased only when empty, and the published
    /// (granted, root-owned) entry keeps it non-empty until ReleaseTree —
    /// which clears this cache first.
    LockQueue* queue = nullptr;
    const LockEntry* entry = nullptr;  ///< published grant (diagnostics)
    uint64_t epoch = 0;  ///< queue append-epoch at publication
    /// Shard the queue lives in, computed at publication so a hit charges
    /// its counters without re-hashing the target.
    uint32_t shard_idx = 0;
    // --- the published verdict class ------------------------------------
    SubTxn* parent = nullptr;  ///< acquirer's parent (same ancestor chain)
    MethodId method_id = kInvalidMethodId;
    TypeId type = kInvalidTypeId;
    bool is_write = false;
    /// Whether the commute verdict may depend on this invocation's actual
    /// arguments (CompatibilityRegistry::ArgsMatter at publication). If
    /// false, re-acquires with *different* args — e.g. repeated Put of new
    /// values — still hit.
    bool args_matter = false;
    /// Key-interval annotation of the published target (keyrange_locks).
    /// Checked on every hit, even for args-insensitive methods: the
    /// interval derives from the arguments, so an args-insensitive method
    /// can still carry a different interval per invocation, and a hit must
    /// reproduce the published entry's annotation exactly (foreign scans
    /// judge this class by that entry's interval). Defaults make the
    /// comparison vacuous when the flag is off.
    int64_t key_lo = 0;
    int64_t key_hi = 0;
    bool has_interval = false;
    /// Acquirer's argument list; points into the acquiring SubTxn, which
    /// the TxnTree keeps alive for at least as long as this cache.
    const Args* args = nullptr;
  };

  Slot* Find(const LockTarget& target) {
    auto it = slots_.find(target);
    return it == slots_.end() ? nullptr : &it->second;
  }
  void Put(const LockTarget& target, const Slot& slot) {
    slots_[target] = slot;
  }
  void Clear() { slots_.clear(); }
  bool empty() const { return slots_.empty(); }
  size_t size() const { return slots_.size(); }

 private:
  std::unordered_map<LockTarget, Slot, LockTargetHash> slots_;
};

}  // namespace semcc

#endif  // SEMCC_CC_GRANT_CACHE_H_
