#include "cc/compatibility.h"

#include <algorithm>

#include "util/logging.h"

namespace semcc {

namespace {
using PairKey = std::pair<std::string, std::string>;

PairKey MakeKey(const std::string& m1, const std::string& m2, bool* swapped) {
  if (m1 <= m2) {
    *swapped = false;
    return {m1, m2};
  }
  *swapped = true;
  return {m2, m1};
}

// --- derivation algebra helpers (DESIGN.md §5.8) ---------------------------

/// Can footprints f and g ever / always overlap, knowing only their shapes?
enum class Overlap : uint8_t { kNever, kArgDep, kAlways };

Overlap FootOverlap(const KeyRef& f, const KeyRef& g) {
  using Kind = KeyRef::Kind;
  if (f.kind == Kind::kNone || g.kind == Kind::kNone) return Overlap::kNever;
  if (f.kind == Kind::kAll || g.kind == Kind::kAll) return Overlap::kAlways;
  if (f.kind == Kind::kLowerBound && g.kind == Kind::kLowerBound) {
    return Overlap::kAlways;  // two rays to +inf always intersect
  }
  return Overlap::kArgDep;
}

/// A footprint bound to one invocation's actual arguments. Keys stay at the
/// Value level — comparisons use Value's total order, so string keys behave
/// exactly like the generic rules' key tests; only the lock manager's
/// runtime interval (KeyInterval) demands integers.
struct ConcreteFoot {
  KeyRef::Kind kind = KeyRef::Kind::kNone;
  const Value* a = nullptr;  ///< point key / range low / lower bound
  const Value* b = nullptr;  ///< range high
  bool unknown = false;      ///< referenced argument missing: assume overlap
};

ConcreteFoot Resolve(const KeyRef& f, const Args& args) {
  ConcreteFoot c;
  c.kind = f.kind;
  auto bind = [&args](uint8_t i, const Value** out) {
    if (i >= args.size()) return false;
    *out = &args[i];
    return true;
  };
  switch (f.kind) {
    case KeyRef::Kind::kNone:
    case KeyRef::Kind::kAll:
      break;
    case KeyRef::Kind::kPoint:
    case KeyRef::Kind::kLowerBound:
      c.unknown = !bind(f.arg_a, &c.a);
      break;
    case KeyRef::Kind::kRange:
      c.unknown = !bind(f.arg_a, &c.a) || !bind(f.arg_b, &c.b);
      break;
  }
  return c;
}

bool FeetOverlap(const ConcreteFoot& x, const ConcreteFoot& y) {
  using Kind = KeyRef::Kind;
  if (x.kind == Kind::kNone || y.kind == Kind::kNone) return false;
  if (x.unknown || y.unknown) return true;  // safe default: clash
  if (x.kind == Kind::kAll || y.kind == Kind::kAll) return true;
  if (x.kind == Kind::kPoint) {
    switch (y.kind) {
      case Kind::kPoint:
        return *x.a == *y.a;
      case Kind::kRange:
        return !(*x.a < *y.a) && !(*y.b < *x.a);
      case Kind::kLowerBound:
        return !(*x.a < *y.a);
      default:
        break;
    }
  }
  if (x.kind == Kind::kRange) {
    switch (y.kind) {
      case Kind::kPoint:
        return FeetOverlap(y, x);
      case Kind::kRange:
        return !(*x.b < *y.a) && !(*y.b < *x.a);
      case Kind::kLowerBound:
        return !(*x.b < *y.a);
      default:
        break;
    }
  }
  if (x.kind == Kind::kLowerBound && y.kind != Kind::kLowerBound) {
    return FeetOverlap(y, x);
  }
  return true;  // lower bound × lower bound
}

/// One method's result depends on the membership count the other changes —
/// a conflict no key reasoning can dissolve.
bool SizeCoupled(const MethodSpec& s1, const MethodSpec& s2) {
  return (s1.observes_size && s2.size_delta != 0) ||
         (s2.observes_size && s1.size_delta != 0);
}
}  // namespace

void CompatibilityRegistry::DeclareMethod(TypeId type,
                                          const std::string& method) {
  MethodInterner::Global().Intern(method);
  WriterMutexLock guard(mu_);
  auto& list = methods_[type];
  if (std::find(list.begin(), list.end(), method) == list.end()) {
    list.push_back(method);
  }
}

void CompatibilityRegistry::Define(TypeId type, const std::string& m1,
                                   const std::string& m2, bool compatible) {
  bool swapped = false;
  PairKey key = MakeKey(m1, m2, &swapped);
  WriterMutexLock guard(mu_);
  Entry e;
  e.is_predicate = false;
  e.compatible = compatible;
  table_[type][key] = std::move(e);
  Recompile();
}

void CompatibilityRegistry::DefinePredicate(TypeId type, const std::string& m1,
                                            const std::string& m2,
                                            Predicate pred) {
  bool swapped = false;
  PairKey key = MakeKey(m1, m2, &swapped);
  WriterMutexLock guard(mu_);
  Entry e;
  e.is_predicate = true;
  e.pred = std::move(pred);
  e.swapped = swapped;
  table_[type][key] = std::move(e);
  Recompile();
}

CompatibilityRegistry::DerivedCell CompatibilityRegistry::DeriveCell(
    const MethodSpec& s1, const MethodSpec& s2) {
  if (SizeCoupled(s1, s2)) return DerivedCell::kConflict;
  // Commutativity needs every (write, write/read) footprint pair disjoint;
  // read/read intersection is harmless.
  const Overlap terms[] = {FootOverlap(s1.writes, s2.writes),
                           FootOverlap(s1.writes, s2.reads),
                           FootOverlap(s1.reads, s2.writes)};
  DerivedCell cell = DerivedCell::kCompatible;
  for (Overlap o : terms) {
    if (o == Overlap::kAlways) return DerivedCell::kConflict;
    if (o == Overlap::kArgDep) cell = DerivedCell::kPredicate;
  }
  return cell;
}

bool CompatibilityRegistry::SpecsCommute(const MethodSpec& s1, const Args& a1,
                                         const MethodSpec& s2,
                                         const Args& a2) {
  if (SizeCoupled(s1, s2)) return false;
  const ConcreteFoot w1 = Resolve(s1.writes, a1);
  const ConcreteFoot r1 = Resolve(s1.reads, a1);
  const ConcreteFoot w2 = Resolve(s2.writes, a2);
  const ConcreteFoot r2 = Resolve(s2.reads, a2);
  return !FeetOverlap(w1, w2) && !FeetOverlap(w1, r2) && !FeetOverlap(r1, w2);
}

void CompatibilityRegistry::DefineMethodSpec(TypeId type,
                                             const std::string& method,
                                             const MethodSpec& spec) {
  MethodInterner::Global().Intern(method);
  WriterMutexLock guard(mu_);
  auto& list = methods_[type];
  if (std::find(list.begin(), list.end(), method) == list.end()) {
    list.push_back(method);
  }
  specs_[type][method] = spec;
  if (spec.exact) {
    auto& type_entries = table_[type];
    for (const auto& [other, other_spec] : specs_[type]) {
      if (!other_spec.exact) continue;  // inexact specs derive nothing
      bool swapped = false;
      const PairKey key = MakeKey(method, other, &swapped);
      // A hand-written (or previously derived — same algebra, same result)
      // cell wins; derivation only fills pairs nobody specified. The matrix
      // verifier still re-derives every exact pair, so a hand-written cell
      // that contradicts the specs is reported, not silently kept.
      if (type_entries.find(key) != type_entries.end()) continue;
      Entry e;
      switch (DeriveCell(spec, other_spec)) {
        case DerivedCell::kCompatible:
          e.compatible = true;
          break;
        case DerivedCell::kConflict:
          e.compatible = false;
          break;
        case DerivedCell::kPredicate: {
          e.is_predicate = true;
          const MethodSpec s1 = spec;
          const MethodSpec s2 = other_spec;
          e.pred = [s1, s2](const Args& a1, const Args& a2) {
            return SpecsCommute(s1, a1, s2, a2);
          };
          // The predicate contract hands the first registered method's args
          // first; registration order here is (method, other) == (s1, s2).
          e.swapped = swapped;
          break;
        }
      }
      type_entries[key] = std::move(e);
    }
  }
  Recompile();
}

std::optional<MethodSpec> CompatibilityRegistry::MethodSpecOf(
    TypeId type, MethodId m) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled != nullptr) {
    const Compiled::TypeTable* table = compiled->TableFor(type);
    if (table != nullptr) {
      auto it = table->specs.find(m);
      if (it != table->specs.end()) return it->second;
    }
  }
  return GenericMethodSpec(m);
}

std::optional<MethodSpec> CompatibilityRegistry::GenericMethodSpec(
    MethodId m) {
  using namespace generic_ids;
  MethodSpec s;
  switch (m) {
    case kInsert:
      s.writes = KeyRef::Point(0);
      s.size_delta = 1;
      return s;
    case kRemove:
      s.reads = KeyRef::Point(0);  // observes presence of the key
      s.writes = KeyRef::Point(0);
      s.size_delta = -1;
      return s;
    case kSelect:
    case kMember:
      s.reads = KeyRef::Point(0);
      return s;
    case kRangeScan:
      s.reads = KeyRef::Range(0, 1);
      return s;
    case kScan:
      s.reads = KeyRef::All();
      return s;
    case kSize:
      s.observes_size = true;
      return s;
    default:
      return std::nullopt;  // Get/Put: atomic objects have no key space
  }
}

bool CompatibilityRegistry::KeyInterval(TypeId type, MethodId m,
                                        const Args& args, int64_t* lo,
                                        int64_t* hi) const {
  std::optional<MethodSpec> spec = MethodSpecOf(type, m);
  // Size dependence is not key-local: a size-observing method must never
  // carry an interval, or the disjointness precheck could skip an entry the
  // size coupling makes it conflict with.
  if (!spec.has_value() || spec->observes_size) return false;
  bool have = false;
  int64_t l = 0;
  int64_t h = 0;
  auto widen = [&](int64_t flo, int64_t fhi) {
    if (!have) {
      l = flo;
      h = fhi;
      have = true;
    } else {
      l = std::min(l, flo);
      h = std::max(h, fhi);
    }
  };
  auto int_arg = [&args](uint8_t i, int64_t* out) {
    if (i >= args.size() || args[i].type() != Value::Type::kInt) return false;
    *out = args[i].AsInt();
    return true;
  };
  auto fold = [&](const KeyRef& f) {
    int64_t a = 0;
    int64_t b = 0;
    switch (f.kind) {
      case KeyRef::Kind::kNone:
        return true;
      case KeyRef::Kind::kAll:
        widen(INT64_MIN, INT64_MAX);
        return true;
      case KeyRef::Kind::kPoint:
        if (!int_arg(f.arg_a, &a)) return false;
        widen(a, a);
        return true;
      case KeyRef::Kind::kRange:
        if (!int_arg(f.arg_a, &a) || !int_arg(f.arg_b, &b)) return false;
        widen(a, b);
        return true;
      case KeyRef::Kind::kLowerBound:
        if (!int_arg(f.arg_a, &a)) return false;
        widen(a, INT64_MAX);
        return true;
    }
    return false;
  };
  if (!fold(spec->reads) || !fold(spec->writes) || !have) return false;
  *lo = l;
  *hi = h;
  return true;
}

std::vector<std::string> CompatibilityRegistry::SpecMethodsOf(
    TypeId type, bool exact_only) const {
  ReaderMutexLock guard(mu_);
  std::vector<std::string> out;
  auto it = specs_.find(type);
  if (it == specs_.end()) return out;
  for (const auto& [name, spec] : it->second) {
    if (exact_only && !spec.exact) continue;
    out.push_back(name);  // std::map iteration: already name-ordered
  }
  return out;
}

void CompatibilityRegistry::Recompile() {
  auto compiled = std::make_unique<Compiled>();
  MethodInterner& interner = MethodInterner::Global();
  std::map<TypeId, Compiled::TypeTable> tables;
  for (const auto& [type, entries] : table_) {
    Compiled::TypeTable& table = tables[type];
    // Every registered name is interned here (cold path), so the table
    // covers all ids the conflict test can ever present for this type;
    // names interned later read kUnknown via the dim bound check.
    for (const auto& [key, entry] : entries) {
      interner.Intern(key.first);
      interner.Intern(key.second);
    }
    table.dim = static_cast<uint32_t>(interner.size());
    table.cells.assign(static_cast<size_t>(table.dim) * table.dim,
                       static_cast<uint8_t>(kUnknown));
    table.args_sensitive.assign(table.dim, 0);
    for (const auto& [key, entry] : entries) {
      const MethodId a = interner.Lookup(key.first);
      const MethodId b = interner.Lookup(key.second);
      SEMCC_CHECK(a != kInvalidMethodId && b != kInvalidMethodId);
      const Cell cell = entry.is_predicate
                            ? kPredicate
                            : (entry.compatible ? kCompatible : kConflict);
      table.cells[static_cast<size_t>(a) * table.dim + b] =
          static_cast<uint8_t>(cell);
      table.cells[static_cast<size_t>(b) * table.dim + a] =
          static_cast<uint8_t>(cell);
      if (entry.is_predicate) {
        // (a, b) is the canonical (sorted) key; entry.swapped says whether
        // the registration order was reversed relative to it. Store both
        // query directions with the arg order pre-resolved so the lookup
        // does no canonicalization: querying in registration order hands
        // args through unchanged.
        PredRef fwd;  // query (a, b): a1 belongs to canonical-first method
        fwd.pred = entry.pred;
        fwd.args_in_order = !entry.swapped;
        PredRef rev;  // query (b, a)
        rev.pred = entry.pred;
        rev.args_in_order = entry.swapped;
        table.preds.emplace(std::make_pair(a, b), std::move(fwd));
        if (a != b) table.preds.emplace(std::make_pair(b, a), std::move(rev));
        table.args_sensitive[a] = 1;
        table.args_sensitive[b] = 1;
      }
    }
  }
  // Attach compiled specs. A type with specs but no entries still gets a
  // table — with dim 0, so every cell reads kUnknown — purely to carry the
  // specs for MethodSpecOf / KeyInterval.
  for (const auto& [type, spec_map] : specs_) {
    Compiled::TypeTable& table = tables[type];
    for (const auto& [name, spec] : spec_map) {
      table.specs[interner.Intern(name)] = spec;
    }
  }
  for (auto& [type, table] : tables) {
    if (type <= kMaxDenseTypeId) {
      if (compiled->dense_types.size() <= type) {
        compiled->dense_types.resize(type + 1);
      }
      compiled->dense_types[type] = std::move(table);
    } else {
      compiled->overflow_types.emplace(type, std::move(table));
    }
  }
  compiled_.store(compiled.get(), std::memory_order_release);
  snapshots_.push_back(std::move(compiled));
}

const CompatibilityRegistry::Entry* CompatibilityRegistry::FindEntry(
    TypeId type, const std::string& m1, const std::string& m2,
    bool* swapped) const {
  auto tit = table_.find(type);
  if (tit == table_.end()) return nullptr;
  PairKey key = MakeKey(m1, m2, swapped);
  auto eit = tit->second.find(key);
  if (eit == tit->second.end()) return nullptr;
  return &eit->second;
}

bool CompatibilityRegistry::Commute(TypeId type, MethodId m1, const Args& a1,
                                    MethodId m2, const Args& a2) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled != nullptr) {
    const Compiled::TypeTable* table = compiled->TableFor(type);
    if (table != nullptr) {
      switch (table->CellAt(m1, m2)) {
        case kCompatible:
          return true;
        case kConflict:
          return false;
        case kPredicate: {
          auto it = table->preds.find({m1, m2});
          SEMCC_CHECK(it != table->preds.end());
          const PredRef& ref = it->second;
          return ref.args_in_order ? ref.pred(a1, a2) : ref.pred(a2, a1);
        }
        case kUnknown:
          break;
      }
    }
  }
  std::optional<bool> generic = GenericCommute(m1, a1, m2, a2);
  if (generic.has_value()) return *generic;
  return false;  // safe default: conflict
}

bool CompatibilityRegistry::ArgsMatter(TypeId type, MethodId m) const {
  using namespace generic_ids;
  // Key-addressed generic ops commute iff their keys differ / ranges miss
  // (GenericCommute) — argument-sensitive for any type, since unknown cells
  // fall through to the generic rules.
  if (m == kInsert || m == kRemove || m == kSelect || m == kMember ||
      m == kRangeScan) {
    return true;
  }
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return false;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  if (table == nullptr || m >= table->dim) return false;
  return table->args_sensitive[m] != 0;
}

bool CompatibilityRegistry::Commute(TypeId type, const std::string& m1,
                                    const Args& a1, const std::string& m2,
                                    const Args& a2) const {
  MethodInterner& interner = MethodInterner::Global();
  return Commute(type, interner.Intern(m1), a1, interner.Intern(m2), a2);
}

std::optional<bool> CompatibilityRegistry::GenericCommute(MethodId m1,
                                                          const Args& a1,
                                                          MethodId m2,
                                                          const Args& a2) {
  using namespace generic_ids;
  if (m1 >= kNumGenericOps || m2 >= kNumGenericOps) return std::nullopt;

  auto keys_differ = [](const Args& x, const Args& y) {
    if (x.empty() || y.empty()) return false;  // unknown: assume clash
    return !(x[0] == y[0]);
  };

  // Atomic objects: only Get/Get commutes.
  if (m1 == kGet && m2 == kGet) return true;
  const bool m1_atomic = (m1 == kGet || m1 == kPut);
  const bool m2_atomic = (m2 == kGet || m2 == kPut);
  if (m1_atomic && m2_atomic) return false;
  if (m1_atomic || m2_atomic) {
    return false;  // atomic op vs set op: nonsensical pairing, be safe
  }

  // Set objects.
  auto is_read = [](MethodId m) {
    return m == kSelect || m == kScan || m == kSize || m == kMember ||
           m == kRangeScan;
  };
  const bool m1_read = is_read(m1);
  const bool m2_read = is_read(m2);
  if (m1_read && m2_read) return true;
  // One side updates (Insert/Remove).
  const MethodId other = m1_read ? m1 : m2;
  const Args& upd_args = m1_read ? a2 : a1;
  const Args& other_args = m1_read ? a1 : a2;
  if (other == kScan || other == kSize) {
    return false;  // membership-sensitive reads conflict with updates
  }
  if (other == kRangeScan) {
    // Update vs range read: commute iff the updated key falls outside the
    // closed scan range [lo, hi]; missing arguments assume a clash.
    if (upd_args.empty() || other_args.size() < 2) return false;
    const Value& k = upd_args[0];
    return k < other_args[0] || other_args[1] < k;
  }
  // Key-addressed pairs (Insert/Remove/Select/Member in any combination):
  // commute iff they address different keys.
  return keys_differ(upd_args, other_args);
}

std::optional<bool> CompatibilityRegistry::GenericCommute(const std::string& m1,
                                                          const Args& a1,
                                                          const std::string& m2,
                                                          const Args& a2) {
  MethodInterner& interner = MethodInterner::Global();
  const MethodId i1 = interner.Lookup(m1);
  const MethodId i2 = interner.Lookup(m2);
  // Generic ops are pre-interned at fixed ids; anything unknown to the
  // interner is certainly not generic.
  if (i1 == kInvalidMethodId || i2 == kInvalidMethodId) return std::nullopt;
  return GenericCommute(i1, a1, i2, a2);
}

std::vector<std::string> CompatibilityRegistry::MethodsOf(TypeId type) const {
  ReaderMutexLock guard(mu_);
  auto it = methods_.find(type);
  if (it == methods_.end()) return {};
  return it->second;
}

std::optional<bool> CompatibilityRegistry::StaticEntry(
    TypeId type, const std::string& m1, const std::string& m2) const {
  ReaderMutexLock guard(mu_);
  bool swapped = false;
  const Entry* e = FindEntry(type, m1, m2, &swapped);
  if (e == nullptr || e->is_predicate) return std::nullopt;
  return e->compatible;
}

bool CompatibilityRegistry::HasPredicate(TypeId type, const std::string& m1,
                                         const std::string& m2) const {
  ReaderMutexLock guard(mu_);
  bool swapped = false;
  const Entry* e = FindEntry(type, m1, m2, &swapped);
  return e != nullptr && e->is_predicate;
}

CompatibilityRegistry::CellKind CompatibilityRegistry::CompiledCell(
    TypeId type, MethodId m1, MethodId m2) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return CellKind::kCellUnknown;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  if (table == nullptr) return CellKind::kCellUnknown;
  return static_cast<CellKind>(table->CellAt(m1, m2));
}

bool CompatibilityRegistry::CompiledArgsSensitive(TypeId type,
                                                  MethodId m) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return false;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  if (table == nullptr || m >= table->dim) return false;
  return table->args_sensitive[m] != 0;
}

uint32_t CompatibilityRegistry::CompiledDim(TypeId type) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return 0;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  return table == nullptr ? 0 : table->dim;
}

std::vector<TypeId> CompatibilityRegistry::RegisteredTypes() const {
  ReaderMutexLock guard(mu_);
  std::vector<TypeId> types;
  types.reserve(table_.size());
  for (const auto& [type, entries] : table_) {
    if (!entries.empty()) types.push_back(type);
  }
  return types;
}

std::vector<std::pair<std::string, std::string>>
CompatibilityRegistry::RegisteredPairs(TypeId type) const {
  ReaderMutexLock guard(mu_);
  std::vector<std::pair<std::string, std::string>> pairs;
  auto it = table_.find(type);
  if (it == table_.end()) return pairs;
  pairs.reserve(it->second.size());
  for (const auto& [key, entry] : it->second) pairs.push_back(key);
  return pairs;
}

bool CompatibilityRegistry::TestOnlyCorruptCell(TypeId type,
                                               const std::string& m1,
                                               const std::string& m2,
                                               CellKind cell) {
  MethodInterner& interner = MethodInterner::Global();
  const MethodId a = interner.Lookup(m1);
  const MethodId b = interner.Lookup(m2);
  if (a == kInvalidMethodId || b == kInvalidMethodId) return false;
  // The snapshot is immutable by contract; tests break that contract on
  // purpose (and at quiescence) to seed a defect the verifier must reject.
  auto* compiled = const_cast<Compiled*>(
      compiled_.load(std::memory_order_acquire));
  if (compiled == nullptr) return false;
  auto* table = const_cast<Compiled::TypeTable*>(compiled->TableFor(type));
  if (table == nullptr || a >= table->dim || b >= table->dim) return false;
  table->cells[static_cast<size_t>(a) * table->dim + b] =
      static_cast<uint8_t>(cell);
  return true;
}

bool CompatibilityRegistry::TestOnlyCorruptArgsSensitive(TypeId type,
                                                         const std::string& m,
                                                         bool sensitive) {
  MethodInterner& interner = MethodInterner::Global();
  const MethodId id = interner.Lookup(m);
  if (id == kInvalidMethodId) return false;
  auto* compiled = const_cast<Compiled*>(
      compiled_.load(std::memory_order_acquire));
  if (compiled == nullptr) return false;
  auto* table = const_cast<Compiled::TypeTable*>(compiled->TableFor(type));
  if (table == nullptr || id >= table->dim) return false;
  table->args_sensitive[id] = sensitive ? 1 : 0;
  return true;
}

bool CompatibilityRegistry::TestOnlyCorruptSpec(TypeId type,
                                                const std::string& method,
                                                const MethodSpec& spec) {
  const MethodId id = MethodInterner::Global().Lookup(method);
  if (id == kInvalidMethodId) return false;
  auto* compiled = const_cast<Compiled*>(
      compiled_.load(std::memory_order_acquire));
  if (compiled == nullptr) return false;
  auto* table = const_cast<Compiled::TypeTable*>(compiled->TableFor(type));
  if (table == nullptr) return false;
  auto it = table->specs.find(id);
  if (it == table->specs.end()) return false;
  // Swap the spec WITHOUT re-deriving the cells it once produced — the
  // published matrix now disagrees with the published footprints, which is
  // exactly the defect the derivation-agreement check must catch.
  it->second = spec;
  return true;
}

}  // namespace semcc
