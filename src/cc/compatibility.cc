#include "cc/compatibility.h"

#include <algorithm>

#include "util/logging.h"

namespace semcc {

namespace {
using PairKey = std::pair<std::string, std::string>;

PairKey MakeKey(const std::string& m1, const std::string& m2, bool* swapped) {
  if (m1 <= m2) {
    *swapped = false;
    return {m1, m2};
  }
  *swapped = true;
  return {m2, m1};
}
}  // namespace

void CompatibilityRegistry::DeclareMethod(TypeId type,
                                          const std::string& method) {
  WriterMutexLock guard(mu_);
  auto& list = methods_[type];
  if (std::find(list.begin(), list.end(), method) == list.end()) {
    list.push_back(method);
  }
}

void CompatibilityRegistry::Define(TypeId type, const std::string& m1,
                                   const std::string& m2, bool compatible) {
  bool swapped = false;
  PairKey key = MakeKey(m1, m2, &swapped);
  WriterMutexLock guard(mu_);
  Entry e;
  e.is_predicate = false;
  e.compatible = compatible;
  table_[type][key] = std::move(e);
}

void CompatibilityRegistry::DefinePredicate(TypeId type, const std::string& m1,
                                            const std::string& m2,
                                            Predicate pred) {
  bool swapped = false;
  PairKey key = MakeKey(m1, m2, &swapped);
  WriterMutexLock guard(mu_);
  Entry e;
  e.is_predicate = true;
  e.pred = std::move(pred);
  e.swapped = swapped;
  table_[type][key] = std::move(e);
}

const CompatibilityRegistry::Entry* CompatibilityRegistry::FindEntry(
    TypeId type, const std::string& m1, const std::string& m2,
    bool* swapped) const {
  auto tit = table_.find(type);
  if (tit == table_.end()) return nullptr;
  PairKey key = MakeKey(m1, m2, swapped);
  auto eit = tit->second.find(key);
  if (eit == tit->second.end()) return nullptr;
  return &eit->second;
}

bool CompatibilityRegistry::Commute(TypeId type, const std::string& m1,
                                    const Args& a1, const std::string& m2,
                                    const Args& a2) const {
  {
    ReaderMutexLock guard(mu_);
    bool swapped = false;
    const Entry* e = FindEntry(type, m1, m2, &swapped);
    if (e != nullptr) {
      if (!e->is_predicate) return e->compatible;
      // The predicate was registered for (m1', m2') in canonical order with
      // e->swapped recording whether the registration order was reversed.
      // Normalize the query the same way so the predicate always sees the
      // args of its first registered method first.
      const bool query_swapped = swapped;
      const bool give_a1_first = (query_swapped == e->swapped);
      return give_a1_first ? e->pred(a1, a2) : e->pred(a2, a1);
    }
  }
  std::optional<bool> generic = GenericCommute(m1, a1, m2, a2);
  if (generic.has_value()) return *generic;
  return false;  // safe default: conflict
}

std::optional<bool> CompatibilityRegistry::GenericCommute(const std::string& m1,
                                                          const Args& a1,
                                                          const std::string& m2,
                                                          const Args& a2) {
  using namespace generic_ops;
  auto is = [](const std::string& m, const char* name) { return m == name; };
  auto key_of = [](const Args& a) -> const Value* {
    return a.empty() ? nullptr : &a[0];
  };
  auto keys_differ = [&](const Args& x, const Args& y) {
    const Value* kx = key_of(x);
    const Value* ky = key_of(y);
    if (kx == nullptr || ky == nullptr) return false;  // unknown: assume clash
    return !(*kx == *ky);
  };

  const bool m1_generic = is(m1, kGet) || is(m1, kPut) || is(m1, kInsert) ||
                          is(m1, kRemove) || is(m1, kSelect) || is(m1, kScan) ||
                          is(m1, kSize);
  const bool m2_generic = is(m2, kGet) || is(m2, kPut) || is(m2, kInsert) ||
                          is(m2, kRemove) || is(m2, kSelect) || is(m2, kScan) ||
                          is(m2, kSize);
  if (!m1_generic || !m2_generic) return std::nullopt;

  // Atomic objects: only Get/Get commutes.
  if (is(m1, kGet) && is(m2, kGet)) return true;
  if ((is(m1, kGet) || is(m1, kPut)) && (is(m2, kGet) || is(m2, kPut))) {
    return false;
  }
  if (is(m1, kGet) || is(m1, kPut) || is(m2, kGet) || is(m2, kPut)) {
    return false;  // atomic op vs set op: nonsensical pairing, be safe
  }

  // Set objects.
  const bool m1_read = is(m1, kSelect) || is(m1, kScan) || is(m1, kSize);
  const bool m2_read = is(m2, kSelect) || is(m2, kScan) || is(m2, kSize);
  if (m1_read && m2_read) return true;
  // One side updates (Insert/Remove).
  const std::string& upd = m1_read ? m2 : m1;
  const std::string& other = m1_read ? m1 : m2;
  const Args& upd_args = m1_read ? a2 : a1;
  const Args& other_args = m1_read ? a1 : a2;
  (void)upd;
  if (is(other, kScan) || is(other, kSize)) {
    return false;  // membership-sensitive reads conflict with updates
  }
  // Key-addressed pairs (Insert/Remove/Select in any combination): commute
  // iff they address different keys.
  return keys_differ(upd_args, other_args);
}

std::vector<std::string> CompatibilityRegistry::MethodsOf(TypeId type) const {
  ReaderMutexLock guard(mu_);
  auto it = methods_.find(type);
  if (it == methods_.end()) return {};
  return it->second;
}

std::optional<bool> CompatibilityRegistry::StaticEntry(
    TypeId type, const std::string& m1, const std::string& m2) const {
  ReaderMutexLock guard(mu_);
  bool swapped = false;
  const Entry* e = FindEntry(type, m1, m2, &swapped);
  if (e == nullptr || e->is_predicate) return std::nullopt;
  return e->compatible;
}

bool CompatibilityRegistry::HasPredicate(TypeId type, const std::string& m1,
                                         const std::string& m2) const {
  ReaderMutexLock guard(mu_);
  bool swapped = false;
  const Entry* e = FindEntry(type, m1, m2, &swapped);
  return e != nullptr && e->is_predicate;
}

}  // namespace semcc
