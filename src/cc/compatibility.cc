#include "cc/compatibility.h"

#include <algorithm>

#include "util/logging.h"

namespace semcc {

namespace {
using PairKey = std::pair<std::string, std::string>;

PairKey MakeKey(const std::string& m1, const std::string& m2, bool* swapped) {
  if (m1 <= m2) {
    *swapped = false;
    return {m1, m2};
  }
  *swapped = true;
  return {m2, m1};
}
}  // namespace

void CompatibilityRegistry::DeclareMethod(TypeId type,
                                          const std::string& method) {
  MethodInterner::Global().Intern(method);
  WriterMutexLock guard(mu_);
  auto& list = methods_[type];
  if (std::find(list.begin(), list.end(), method) == list.end()) {
    list.push_back(method);
  }
}

void CompatibilityRegistry::Define(TypeId type, const std::string& m1,
                                   const std::string& m2, bool compatible) {
  bool swapped = false;
  PairKey key = MakeKey(m1, m2, &swapped);
  WriterMutexLock guard(mu_);
  Entry e;
  e.is_predicate = false;
  e.compatible = compatible;
  table_[type][key] = std::move(e);
  Recompile();
}

void CompatibilityRegistry::DefinePredicate(TypeId type, const std::string& m1,
                                            const std::string& m2,
                                            Predicate pred) {
  bool swapped = false;
  PairKey key = MakeKey(m1, m2, &swapped);
  WriterMutexLock guard(mu_);
  Entry e;
  e.is_predicate = true;
  e.pred = std::move(pred);
  e.swapped = swapped;
  table_[type][key] = std::move(e);
  Recompile();
}

void CompatibilityRegistry::Recompile() {
  auto compiled = std::make_unique<Compiled>();
  MethodInterner& interner = MethodInterner::Global();
  for (const auto& [type, entries] : table_) {
    Compiled::TypeTable table;
    // Every registered name is interned here (cold path), so the table
    // covers all ids the conflict test can ever present for this type;
    // names interned later read kUnknown via the dim bound check.
    for (const auto& [key, entry] : entries) {
      interner.Intern(key.first);
      interner.Intern(key.second);
    }
    table.dim = static_cast<uint32_t>(interner.size());
    table.cells.assign(static_cast<size_t>(table.dim) * table.dim,
                       static_cast<uint8_t>(kUnknown));
    table.args_sensitive.assign(table.dim, 0);
    for (const auto& [key, entry] : entries) {
      const MethodId a = interner.Lookup(key.first);
      const MethodId b = interner.Lookup(key.second);
      SEMCC_CHECK(a != kInvalidMethodId && b != kInvalidMethodId);
      const Cell cell = entry.is_predicate
                            ? kPredicate
                            : (entry.compatible ? kCompatible : kConflict);
      table.cells[static_cast<size_t>(a) * table.dim + b] =
          static_cast<uint8_t>(cell);
      table.cells[static_cast<size_t>(b) * table.dim + a] =
          static_cast<uint8_t>(cell);
      if (entry.is_predicate) {
        // (a, b) is the canonical (sorted) key; entry.swapped says whether
        // the registration order was reversed relative to it. Store both
        // query directions with the arg order pre-resolved so the lookup
        // does no canonicalization: querying in registration order hands
        // args through unchanged.
        PredRef fwd;  // query (a, b): a1 belongs to canonical-first method
        fwd.pred = entry.pred;
        fwd.args_in_order = !entry.swapped;
        PredRef rev;  // query (b, a)
        rev.pred = entry.pred;
        rev.args_in_order = entry.swapped;
        table.preds.emplace(std::make_pair(a, b), std::move(fwd));
        if (a != b) table.preds.emplace(std::make_pair(b, a), std::move(rev));
        table.args_sensitive[a] = 1;
        table.args_sensitive[b] = 1;
      }
    }
    if (type <= kMaxDenseTypeId) {
      if (compiled->dense_types.size() <= type) {
        compiled->dense_types.resize(type + 1);
      }
      compiled->dense_types[type] = std::move(table);
    } else {
      compiled->overflow_types.emplace(type, std::move(table));
    }
  }
  compiled_.store(compiled.get(), std::memory_order_release);
  snapshots_.push_back(std::move(compiled));
}

const CompatibilityRegistry::Entry* CompatibilityRegistry::FindEntry(
    TypeId type, const std::string& m1, const std::string& m2,
    bool* swapped) const {
  auto tit = table_.find(type);
  if (tit == table_.end()) return nullptr;
  PairKey key = MakeKey(m1, m2, swapped);
  auto eit = tit->second.find(key);
  if (eit == tit->second.end()) return nullptr;
  return &eit->second;
}

bool CompatibilityRegistry::Commute(TypeId type, MethodId m1, const Args& a1,
                                    MethodId m2, const Args& a2) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled != nullptr) {
    const Compiled::TypeTable* table = compiled->TableFor(type);
    if (table != nullptr) {
      switch (table->CellAt(m1, m2)) {
        case kCompatible:
          return true;
        case kConflict:
          return false;
        case kPredicate: {
          auto it = table->preds.find({m1, m2});
          SEMCC_CHECK(it != table->preds.end());
          const PredRef& ref = it->second;
          return ref.args_in_order ? ref.pred(a1, a2) : ref.pred(a2, a1);
        }
        case kUnknown:
          break;
      }
    }
  }
  std::optional<bool> generic = GenericCommute(m1, a1, m2, a2);
  if (generic.has_value()) return *generic;
  return false;  // safe default: conflict
}

bool CompatibilityRegistry::ArgsMatter(TypeId type, MethodId m) const {
  using namespace generic_ids;
  // Key-addressed generic ops commute iff their keys differ (GenericCommute)
  // — argument-sensitive for any type, since unknown cells fall through to
  // the generic rules.
  if (m == kInsert || m == kRemove || m == kSelect) return true;
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return false;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  if (table == nullptr || m >= table->dim) return false;
  return table->args_sensitive[m] != 0;
}

bool CompatibilityRegistry::Commute(TypeId type, const std::string& m1,
                                    const Args& a1, const std::string& m2,
                                    const Args& a2) const {
  MethodInterner& interner = MethodInterner::Global();
  return Commute(type, interner.Intern(m1), a1, interner.Intern(m2), a2);
}

std::optional<bool> CompatibilityRegistry::GenericCommute(MethodId m1,
                                                          const Args& a1,
                                                          MethodId m2,
                                                          const Args& a2) {
  using namespace generic_ids;
  if (m1 >= kNumGenericOps || m2 >= kNumGenericOps) return std::nullopt;

  auto keys_differ = [](const Args& x, const Args& y) {
    if (x.empty() || y.empty()) return false;  // unknown: assume clash
    return !(x[0] == y[0]);
  };

  // Atomic objects: only Get/Get commutes.
  if (m1 == kGet && m2 == kGet) return true;
  const bool m1_atomic = (m1 == kGet || m1 == kPut);
  const bool m2_atomic = (m2 == kGet || m2 == kPut);
  if (m1_atomic && m2_atomic) return false;
  if (m1_atomic || m2_atomic) {
    return false;  // atomic op vs set op: nonsensical pairing, be safe
  }

  // Set objects.
  const bool m1_read = (m1 == kSelect || m1 == kScan || m1 == kSize);
  const bool m2_read = (m2 == kSelect || m2 == kScan || m2 == kSize);
  if (m1_read && m2_read) return true;
  // One side updates (Insert/Remove).
  const MethodId other = m1_read ? m1 : m2;
  const Args& upd_args = m1_read ? a2 : a1;
  const Args& other_args = m1_read ? a1 : a2;
  if (other == kScan || other == kSize) {
    return false;  // membership-sensitive reads conflict with updates
  }
  // Key-addressed pairs (Insert/Remove/Select in any combination): commute
  // iff they address different keys.
  return keys_differ(upd_args, other_args);
}

std::optional<bool> CompatibilityRegistry::GenericCommute(const std::string& m1,
                                                          const Args& a1,
                                                          const std::string& m2,
                                                          const Args& a2) {
  MethodInterner& interner = MethodInterner::Global();
  const MethodId i1 = interner.Lookup(m1);
  const MethodId i2 = interner.Lookup(m2);
  // Generic ops are pre-interned at fixed ids; anything unknown to the
  // interner is certainly not generic.
  if (i1 == kInvalidMethodId || i2 == kInvalidMethodId) return std::nullopt;
  return GenericCommute(i1, a1, i2, a2);
}

std::vector<std::string> CompatibilityRegistry::MethodsOf(TypeId type) const {
  ReaderMutexLock guard(mu_);
  auto it = methods_.find(type);
  if (it == methods_.end()) return {};
  return it->second;
}

std::optional<bool> CompatibilityRegistry::StaticEntry(
    TypeId type, const std::string& m1, const std::string& m2) const {
  ReaderMutexLock guard(mu_);
  bool swapped = false;
  const Entry* e = FindEntry(type, m1, m2, &swapped);
  if (e == nullptr || e->is_predicate) return std::nullopt;
  return e->compatible;
}

bool CompatibilityRegistry::HasPredicate(TypeId type, const std::string& m1,
                                         const std::string& m2) const {
  ReaderMutexLock guard(mu_);
  bool swapped = false;
  const Entry* e = FindEntry(type, m1, m2, &swapped);
  return e != nullptr && e->is_predicate;
}

CompatibilityRegistry::CellKind CompatibilityRegistry::CompiledCell(
    TypeId type, MethodId m1, MethodId m2) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return CellKind::kCellUnknown;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  if (table == nullptr) return CellKind::kCellUnknown;
  return static_cast<CellKind>(table->CellAt(m1, m2));
}

bool CompatibilityRegistry::CompiledArgsSensitive(TypeId type,
                                                  MethodId m) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return false;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  if (table == nullptr || m >= table->dim) return false;
  return table->args_sensitive[m] != 0;
}

uint32_t CompatibilityRegistry::CompiledDim(TypeId type) const {
  const Compiled* compiled = compiled_.load(std::memory_order_acquire);
  if (compiled == nullptr) return 0;
  const Compiled::TypeTable* table = compiled->TableFor(type);
  return table == nullptr ? 0 : table->dim;
}

std::vector<TypeId> CompatibilityRegistry::RegisteredTypes() const {
  ReaderMutexLock guard(mu_);
  std::vector<TypeId> types;
  types.reserve(table_.size());
  for (const auto& [type, entries] : table_) {
    if (!entries.empty()) types.push_back(type);
  }
  return types;
}

std::vector<std::pair<std::string, std::string>>
CompatibilityRegistry::RegisteredPairs(TypeId type) const {
  ReaderMutexLock guard(mu_);
  std::vector<std::pair<std::string, std::string>> pairs;
  auto it = table_.find(type);
  if (it == table_.end()) return pairs;
  pairs.reserve(it->second.size());
  for (const auto& [key, entry] : it->second) pairs.push_back(key);
  return pairs;
}

bool CompatibilityRegistry::TestOnlyCorruptCell(TypeId type,
                                               const std::string& m1,
                                               const std::string& m2,
                                               CellKind cell) {
  MethodInterner& interner = MethodInterner::Global();
  const MethodId a = interner.Lookup(m1);
  const MethodId b = interner.Lookup(m2);
  if (a == kInvalidMethodId || b == kInvalidMethodId) return false;
  // The snapshot is immutable by contract; tests break that contract on
  // purpose (and at quiescence) to seed a defect the verifier must reject.
  auto* compiled = const_cast<Compiled*>(
      compiled_.load(std::memory_order_acquire));
  if (compiled == nullptr) return false;
  auto* table = const_cast<Compiled::TypeTable*>(compiled->TableFor(type));
  if (table == nullptr || a >= table->dim || b >= table->dim) return false;
  table->cells[static_cast<size_t>(a) * table->dim + b] =
      static_cast<uint8_t>(cell);
  return true;
}

bool CompatibilityRegistry::TestOnlyCorruptArgsSensitive(TypeId type,
                                                         const std::string& m,
                                                         bool sensitive) {
  MethodInterner& interner = MethodInterner::Global();
  const MethodId id = interner.Lookup(m);
  if (id == kInvalidMethodId) return false;
  auto* compiled = const_cast<Compiled*>(
      compiled_.load(std::memory_order_acquire));
  if (compiled == nullptr) return false;
  auto* table = const_cast<Compiled::TypeTable*>(compiled->TableFor(type));
  if (table == nullptr || id >= table->dim) return false;
  table->args_sensitive[id] = sensitive ? 1 : 0;
  return true;
}

}  // namespace semcc
