// Debug-mode invariant checking for the semantic lock manager.
//
// The locking protocol of paper §4.2 is exactly the kind of logic where a
// latent bug survives every unit test and then invalidates a benchmark: a
// grant that slips past the compatibility matrix, a lock that leaks across
// top-level commit, a wait-for cycle the deadlock detector fails to see.
// When ProtocolOptions::debug_lock_checks is on, the LockManager re-derives
// the protocol invariants from first principles on every grant and release
// (under its table mutex) and funnels violations through the counters here —
// optionally fatally (ProtocolOptions::invariant_violations_fatal), turning
// latent protocol bugs into immediate failures under test.
//
// Checked invariants:
//  * grant soundness — at the moment a request is granted, every other
//    granted (or earlier-queued, FCFS) entry on the target must pass
//    test-conflict: same transaction, commuting invocations, or a commuting
//    ancestor pair with the holder side committed (Case 1);
//  * retained-lock ownership — a lock entry still *waiting* in the queue
//    must never belong to a completed subtransaction (only granted locks
//    are retained past completion), and every lock of a finished top-level
//    transaction must be gone once ReleaseTree returns;
//  * wait-graph acyclicity — with deadlock detection on, the waits-for
//    graph (plus the completion dependencies through incomplete children)
//    must be acyclic once victims are excluded: a surviving cycle means
//    DetectDeadlock missed a deadlock;
//  * lock-order discipline (diagnostic, never fatal) — the global
//    "transaction holding A acquired B" graph is tracked, and closing a
//    cycle in it is counted as an order inversion. Inversions are legal
//    under this protocol (the deadlock detector resolves them) but each one
//    is a potential deadlock, so tests can assert their absence.
#ifndef SEMCC_CC_LOCK_INVARIANTS_H_
#define SEMCC_CC_LOCK_INVARIANTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace semcc {

/// \brief Cumulative counters of the invariant checker. `checks` counts
/// grant/release check passes (proof the checker actually ran); the
/// violation counters stay zero on a correct protocol.
struct LockInvariantStats {
  std::atomic<uint64_t> checks{0};
  /// A granted request conflicted with a held/earlier entry.
  std::atomic<uint64_t> grant_violations{0};
  /// A waiting (non-granted) entry owned by a completed subtransaction.
  std::atomic<uint64_t> retained_violations{0};
  /// Entries still present after their tree's ReleaseTree.
  std::atomic<uint64_t> leaked_locks{0};
  /// Wait-for cycle with no deadlock victim chosen.
  std::atomic<uint64_t> wait_cycle_violations{0};
  /// Malformed coalesced entry: a *waiting* entry carrying count != 1
  /// (only granted entries may absorb repeated identical acquisitions), or
  /// any entry with count == 0.
  std::atomic<uint64_t> coalesce_violations{0};
  /// Lock-order graph cycles (potential deadlocks; diagnostic only).
  std::atomic<uint64_t> order_inversions{0};

  /// Violations that indicate a protocol bug (everything except the
  /// diagnostic order inversions).
  uint64_t protocol_violations() const {
    return grant_violations.load() + retained_violations.load() +
           leaked_locks.load() + wait_cycle_violations.load() +
           coalesce_violations.load();
  }

  std::string ToString() const;
};

/// \brief Directed graph over lock targets recording the order in which
/// transactions acquire them; a cycle is a potential deadlock.
///
/// Thread-compatible: the LockManager calls it under its table mutex.
/// Nodes are packed LockTarget keys (see LockManager); the graph only ever
/// grows — lock-ordering discipline is a whole-run property, so edges are
/// not removed when locks are released.
class LockOrderGraph {
 public:
  LockOrderGraph() = default;

  /// Record that some transaction holding `from` acquired `to`. Returns
  /// false iff the new edge closes a cycle (an order inversion); the edge
  /// is recorded either way so repeated inversions over the same pair are
  /// reported once.
  bool AddEdge(uint64_t from, uint64_t to);

  /// Is `to` reachable from `from` over recorded edges?
  bool Reachable(uint64_t from, uint64_t to) const;

  size_t num_edges() const;
  void Clear();

 private:
  std::map<uint64_t, std::set<uint64_t>> adj_;
};

}  // namespace semcc

#endif  // SEMCC_CC_LOCK_INVARIANTS_H_
