#include "cc/method_interner.h"

#include "cc/compatibility.h"
#include "util/logging.h"

namespace semcc {

MethodInterner& MethodInterner::Global() {
  static MethodInterner* interner = new MethodInterner();
  return *interner;
}

MethodInterner::MethodInterner() {
  // Pre-intern the generic operations at their fixed ids (generic_ids).
  const char* kGenericNames[] = {
      generic_ops::kGet,    generic_ops::kPut,    generic_ops::kInsert,
      generic_ops::kRemove, generic_ops::kSelect, generic_ops::kScan,
      generic_ops::kSize,   generic_ops::kMember, generic_ops::kRangeScan};
  WriterMutexLock guard(mu_);
  for (const char* name : kGenericNames) {
    const MethodId id = static_cast<MethodId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(name, id);
  }
  SEMCC_CHECK(names_.size() == generic_ids::kNumGenericOps);
}

MethodId MethodInterner::Intern(const std::string& name) {
  {
    ReaderMutexLock guard(mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
  }
  WriterMutexLock guard(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const MethodId id = static_cast<MethodId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

MethodId MethodInterner::Lookup(const std::string& name) const {
  ReaderMutexLock guard(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidMethodId : it->second;
}

std::string MethodInterner::NameOf(MethodId id) const {
  ReaderMutexLock guard(mu_);
  if (id >= names_.size()) return "?";
  return names_[id];
}

size_t MethodInterner::size() const {
  ReaderMutexLock guard(mu_);
  return names_.size();
}

}  // namespace semcc
