#include "adt/standard_adts.h"

#include "cc/compatibility.h"
#include "cc/method_interner.h"

namespace semcc {
namespace adt {

namespace {

Result<TypeId> NumberType(Database* db) {
  auto existing = db->schema()->GetByName("Number");
  if (existing.ok()) return existing.ValueOrDie().id;
  return db->schema()->DefineAtomicType("Number");
}

Result<Value> CounterAdd(TxnCtx& ctx, Oid self, int64_t delta) {
  SEMCC_ASSIGN_OR_RETURN(Oid cell, ctx.Component(self, "ValueOf"));
  SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Get(cell));
  SEMCC_RETURN_NOT_OK(ctx.Put(cell, Value(v.AsInt() + delta)));
  return Value(v.AsInt() + delta);
}

}  // namespace

Result<CounterType> InstallCounter(Database* db) {
  CounterType t;
  auto existing = db->schema()->GetByName("Counter");
  if (existing.ok()) {
    // Already installed (e.g. by a previous InstallQueue).
    t.counter = existing.ValueOrDie().id;
    SEMCC_ASSIGN_OR_RETURN(t.number, NumberType(db));
    return t;
  }
  SEMCC_ASSIGN_OR_RETURN(t.number, NumberType(db));
  SEMCC_ASSIGN_OR_RETURN(
      t.counter, db->schema()->DefineTupleType("Counter",
                                               {{"ValueOf", t.number}},
                                               /*encapsulated=*/true));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.counter, "Increment", /*read_only=*/false,
       [](TxnCtx& ctx, Oid self, const Args& a) -> Result<Value> {
         if (a.size() != 1) return Status::InvalidArgument("Increment(n)");
         SEMCC_ASSIGN_OR_RETURN(Value v, CounterAdd(ctx, self, a[0].AsInt()));
         (void)v;
         return Value();
       },
       [](TxnCtx& ctx, Oid self, const Args& a, const Value&) -> Status {
         auto r = ctx.Invoke(self, "Decrement", {a[0]});
         return r.ok() ? Status::OK() : r.status();
       }}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.counter, "Decrement", false,
       [](TxnCtx& ctx, Oid self, const Args& a) -> Result<Value> {
         if (a.size() != 1) return Status::InvalidArgument("Decrement(n)");
         SEMCC_ASSIGN_OR_RETURN(Value v, CounterAdd(ctx, self, -a[0].AsInt()));
         (void)v;
         return Value();
       },
       [](TxnCtx& ctx, Oid self, const Args& a, const Value&) -> Status {
         auto r = ctx.Invoke(self, "Increment", {a[0]});
         return r.ok() ? Status::OK() : r.status();
       }}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.counter, "Next", false,
       [](TxnCtx& ctx, Oid self, const Args& a) -> Result<Value> {
         if (!a.empty()) return Status::InvalidArgument("Next()");
         return CounterAdd(ctx, self, 1);
       },
       [](TxnCtx& ctx, Oid self, const Args&, const Value&) -> Status {
         auto r = ctx.Invoke(self, "Decrement", {Value(1)});
         return r.ok() ? Status::OK() : r.status();
       }}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.counter, "Read", true,
       [](TxnCtx& ctx, Oid self, const Args&) -> Result<Value> {
         return ctx.GetField(self, "ValueOf");
       },
       nullptr}));

  CompatibilityRegistry* c = db->compat();
  // Blind additive updates commute; Next returns the value, so a Next pair
  // does NOT commute (the return values swap), and neither does Next with
  // the blind updates (its return value observes them).
  c->Define(t.counter, "Increment", "Increment", true);
  c->Define(t.counter, "Increment", "Decrement", true);
  c->Define(t.counter, "Decrement", "Decrement", true);
  c->Define(t.counter, "Next", "Next", false);
  c->Define(t.counter, "Next", "Increment", false);
  c->Define(t.counter, "Next", "Decrement", false);
  c->Define(t.counter, "Read", "Read", true);
  c->Define(t.counter, "Read", "Increment", false);
  c->Define(t.counter, "Read", "Decrement", false);
  c->Define(t.counter, "Read", "Next", false);
  return t;
}

void InstallKeyedSetSpecs(Database* db, TypeId set_type) {
  CompatibilityRegistry* c = db->compat();
  MethodInterner& interner = MethodInterner::Global();
  for (const char* m :
       {generic_ops::kInsert, generic_ops::kRemove, generic_ops::kSelect,
        generic_ops::kMember, generic_ops::kRangeScan, generic_ops::kScan,
        generic_ops::kSize}) {
    auto spec =
        CompatibilityRegistry::GenericMethodSpec(interner.Lookup(m));
    if (spec.has_value()) c->DefineMethodSpec(set_type, m, *spec);
  }
}

Result<Oid> NewCounter(Database* db, const CounterType& t, int64_t initial) {
  SEMCC_ASSIGN_OR_RETURN(Oid cell,
                         db->store()->CreateAtomic(t.number, Value(initial)));
  return db->store()->CreateTuple(t.counter, {{"ValueOf", cell}});
}

Result<QueueType> InstallQueue(Database* db) {
  QueueType t;
  SEMCC_ASSIGN_OR_RETURN(t.counter, InstallCounter(db));
  SEMCC_ASSIGN_OR_RETURN(t.entries_set,
                         db->schema()->DefineSetType("QueueEntries",
                                                     t.counter.number, "pos"));
  // Positions are keys: give the entries set the generic-op footprints so
  // its matrix cells are derived and its locks carry key intervals.
  InstallKeyedSetSpecs(db, t.entries_set);
  SEMCC_ASSIGN_OR_RETURN(
      t.queue, db->schema()->DefineTupleType(
                   "Queue",
                   {{"Tail", t.counter.counter}, {"Entries", t.entries_set}},
                   /*encapsulated=*/true));
  const TypeId number = t.counter.number;
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.queue, "Enqueue", /*read_only=*/false,
       [number](TxnCtx& ctx, Oid self, const Args& a) -> Result<Value> {
         if (a.size() != 1) return Status::InvalidArgument("Enqueue(v)");
         // An ADT built from another ADT: obtain the position by invoking a
         // method on the tail Counter. Two concurrent Enqueues conflict
         // *here* (Next/Next), but the Queue-level commutativity of Enqueue
         // relieves the conflict via Case 2 / Case 1.
         SEMCC_ASSIGN_OR_RETURN(Oid tail, ctx.Component(self, "Tail"));
         SEMCC_ASSIGN_OR_RETURN(Value pos, ctx.Invoke(tail, "Next", {}));
         SEMCC_ASSIGN_OR_RETURN(Oid entry, ctx.CreateAtomic(number, a[0]));
         SEMCC_ASSIGN_OR_RETURN(Oid entries, ctx.Component(self, "Entries"));
         SEMCC_RETURN_NOT_OK(ctx.SetInsert(entries, pos, entry));
         return pos;
       },
       [](TxnCtx& ctx, Oid self, const Args&, const Value& result) -> Status {
         // Remove the enqueued element again; the tail gap is harmless
         // because Dequeue scans for the minimum position.
         SEMCC_ASSIGN_OR_RETURN(Oid entries, ctx.Component(self, "Entries"));
         SEMCC_ASSIGN_OR_RETURN(Oid entry, ctx.SetSelect(entries, result));
         SEMCC_RETURN_NOT_OK(ctx.SetRemove(entries, result));
         return ctx.store()->Destroy(entry);
       }}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.queue, "Dequeue", false,
       [](TxnCtx& ctx, Oid self, const Args& a) -> Result<Value> {
         if (!a.empty()) return Status::InvalidArgument("Dequeue()");
         SEMCC_ASSIGN_OR_RETURN(Oid entries, ctx.Component(self, "Entries"));
         SEMCC_ASSIGN_OR_RETURN(auto members, ctx.SetScan(entries));
         if (members.empty()) {
           return Status::PreconditionFailed("queue is empty");
         }
         const auto& [pos, entry] = members.front();  // min position
         SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Get(entry));
         SEMCC_RETURN_NOT_OK(ctx.SetRemove(entries, pos));
         SEMCC_RETURN_NOT_OK(ctx.store()->Destroy(entry));
         return v;
       },
       [number](TxnCtx& ctx, Oid self, const Args&, const Value& result)
           -> Status {
         // Put the element back at the FRONT: re-inserting below every live
         // position restores observable FIFO order. Holes are fine.
         SEMCC_ASSIGN_OR_RETURN(Oid entries, ctx.Component(self, "Entries"));
         SEMCC_ASSIGN_OR_RETURN(auto members, ctx.SetScan(entries));
         int64_t front = members.empty() ? 0 : members.front().first.AsInt();
         SEMCC_ASSIGN_OR_RETURN(Oid entry, ctx.CreateAtomic(number, result));
         return ctx.SetInsert(entries, Value(front - 1), entry);
       }}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.queue, "Size", true,
       [](TxnCtx& ctx, Oid self, const Args&) -> Result<Value> {
         SEMCC_ASSIGN_OR_RETURN(Oid entries, ctx.Component(self, "Entries"));
         SEMCC_ASSIGN_OR_RETURN(size_t n, ctx.SetSize(entries));
         return Value(static_cast<int64_t>(n));
       },
       nullptr}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.queue, "Front", true,
       [](TxnCtx& ctx, Oid self, const Args&) -> Result<Value> {
         SEMCC_ASSIGN_OR_RETURN(Oid entries, ctx.Component(self, "Entries"));
         SEMCC_ASSIGN_OR_RETURN(auto members, ctx.SetScan(entries));
         if (members.empty()) return Status::PreconditionFailed("queue is empty");
         return ctx.Get(members.front().second);
       },
       nullptr}));

  CompatibilityRegistry* c = db->compat();
  // Paper §1.1: "enqueueing the same item by two concurrent transactions is
  // not a conflict because the order of these updates is insignificant".
  c->Define(t.queue, "Enqueue", "Enqueue", true);
  c->Define(t.queue, "Enqueue", "Dequeue", false);
  c->Define(t.queue, "Dequeue", "Dequeue", false);
  c->Define(t.queue, "Size", "Size", true);
  c->Define(t.queue, "Size", "Front", true);
  c->Define(t.queue, "Front", "Front", true);
  c->Define(t.queue, "Size", "Enqueue", false);
  c->Define(t.queue, "Size", "Dequeue", false);
  c->Define(t.queue, "Front", "Enqueue", false);
  c->Define(t.queue, "Front", "Dequeue", false);
  return t;
}

Result<Oid> NewQueue(Database* db, const QueueType& t) {
  SEMCC_ASSIGN_OR_RETURN(Oid tail, NewCounter(db, t.counter, 0));
  SEMCC_ASSIGN_OR_RETURN(Oid entries, db->store()->CreateSet(t.entries_set));
  return db->store()->CreateTuple(t.queue,
                                  {{"Tail", tail}, {"Entries", entries}});
}

}  // namespace adt
}  // namespace semcc
