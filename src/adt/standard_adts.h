// Reusable encapsulated ADTs built on the semcc core.
//
// The paper's §1.2 criticism of prior ADT concurrency control is that it
// "assumes that all ADT objects are directly implemented by the storage
// manager. This means that ADTs cannot be implemented in terms of other
// ADTs." These components exist to exercise exactly that capability:
//
//  * Counter — an encapsulated numeric cell.
//      Increment(n) / Decrement(n)  commute with each other (escrow-style);
//      Next()                       increment-and-return: formally
//                                   self-CONFLICTING (the two return values
//                                   swap under reordering);
//      Read()                       conflicts with all updates.
//
//  * Queue — the paper's own §1.1 motivating example ("enqueueing the same
//    item by two concurrent transactions is not a conflict"). Implemented
//    IN TERMS OF a Counter: Enqueue invokes Counter.Next() on the tail
//    counter to obtain a position, then inserts the element into a set.
//    At the Queue level Enqueue/Enqueue commute; the conflicting
//    Counter.Next pair underneath is relieved by the commutative-ancestor
//    test (Case 2 while the first Enqueue runs, Case 1 afterwards) — a
//    library-shaped demonstration of the protocol's whole point.
//      Enqueue(v) -> pos   commutes with Enqueue;
//      Dequeue() -> v      removes and returns the oldest element
//                          (min-position scan, so holes left by compensated
//                          Enqueues are harmless); conflicts with everything
//                          but reads of other keys;
//      Size() / Front()    read-only, conflict with updates.
#ifndef SEMCC_ADT_STANDARD_ADTS_H_
#define SEMCC_ADT_STANDARD_ADTS_H_

#include "core/database.h"

namespace semcc {
namespace adt {

struct CounterType {
  TypeId number = kInvalidTypeId;  // shared atomic type
  TypeId counter = kInvalidTypeId;
};

/// Register the Counter type, methods, and compatibility entries.
Result<CounterType> InstallCounter(Database* db);

/// Create a counter object (outside transactions; for transactional
/// creation go through a method of an enclosing ADT).
Result<Oid> NewCounter(Database* db, const CounterType& t, int64_t initial);

struct QueueType {
  CounterType counter;
  TypeId entries_set = kInvalidTypeId;
  TypeId queue = kInvalidTypeId;
};

/// Register the Queue type (installs Counter if absent) with methods
/// Enqueue/Dequeue/Size/Front and the §1.1 compatibility matrix.
Result<QueueType> InstallQueue(Database* db);

/// Register the exact declarative footprints of the generic set operations
/// (Insert/Remove/Select/Member/RangeScan/Scan/Size) for `set_type`, letting
/// the CompatibilityRegistry DERIVE that type's matrix cells from the
/// footprint algebra (verdict-equivalent to the built-in generic rules;
/// tools/matrix_verify cross-checks) and letting the lock manager annotate
/// key intervals for the keyrange_locks disjointness precheck.
void InstallKeyedSetSpecs(Database* db, TypeId set_type);

Result<Oid> NewQueue(Database* db, const QueueType& t);

}  // namespace adt
}  // namespace semcc

#endif  // SEMCC_ADT_STANDARD_ADTS_H_
