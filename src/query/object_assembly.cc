#include "query/object_assembly.h"

#include <cctype>
#include <sstream>

namespace semcc {
namespace query {

// --- parsing ----------------------------------------------------------------

Result<PathExpr> PathExpr::Parse(const std::string& text) {
  PathExpr expr;
  size_t i = 0;
  const size_t n = text.size();
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument("bad path '" + text + "' at offset " +
                                   std::to_string(i) + ": " + why);
  };
  while (i < n) {
    // NAME
    size_t start = i;
    while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                     text[i] == '_')) {
      ++i;
    }
    if (i == start) return fail("expected component name");
    PathStep comp;
    comp.kind = PathStep::Kind::kComponent;
    comp.component = text.substr(start, i - start);
    expr.steps_.push_back(std::move(comp));
    // optional [key]
    if (i < n && text[i] == '[') {
      ++i;
      PathStep sel;
      if (i < n && text[i] == '*') {
        ++i;
        sel.kind = PathStep::Kind::kScan;
      } else if (i < n && text[i] == '"') {
        ++i;
        size_t s = i;
        while (i < n && text[i] != '"') ++i;
        if (i == n) return fail("unterminated string key");
        sel.kind = PathStep::Kind::kSelect;
        sel.key = Value(text.substr(s, i - s));
        ++i;
      } else {
        size_t s = i;
        if (i < n && (text[i] == '-' || text[i] == '+')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
        if (i == s) return fail("expected key");
        sel.kind = PathStep::Kind::kSelect;
        sel.key = Value(static_cast<int64_t>(std::stoll(text.substr(s, i - s))));
      }
      if (i >= n || text[i] != ']') return fail("expected ']'");
      ++i;
      expr.steps_.push_back(std::move(sel));
    }
    if (i < n) {
      if (text[i] != '.') return fail("expected '.'");
      ++i;
      if (i == n) return fail("trailing '.'");
    }
  }
  if (expr.steps_.empty()) {
    return Status::InvalidArgument("empty path");
  }
  return expr;
}

std::string PathExpr::ToString() const {
  std::string out;
  for (const PathStep& s : steps_) {
    switch (s.kind) {
      case PathStep::Kind::kComponent:
        if (!out.empty()) out += ".";
        out += s.component;
        break;
      case PathStep::Kind::kSelect:
        out += "[" + s.key.ToString() + "]";
        break;
      case PathStep::Kind::kScan:
        out += "[*]";
        break;
    }
  }
  return out;
}

// --- evaluation ---------------------------------------------------------------

Result<std::vector<Oid>> PathExpr::Resolve(TxnCtx& ctx, Oid root) const {
  std::vector<Oid> frontier{root};
  for (const PathStep& step : steps_) {
    std::vector<Oid> next;
    for (Oid oid : frontier) {
      switch (step.kind) {
        case PathStep::Kind::kComponent: {
          SEMCC_ASSIGN_OR_RETURN(Oid comp, ctx.Component(oid, step.component));
          next.push_back(comp);
          break;
        }
        case PathStep::Kind::kSelect: {
          SEMCC_ASSIGN_OR_RETURN(Oid member, ctx.SetSelect(oid, step.key));
          next.push_back(member);
          break;
        }
        case PathStep::Kind::kScan: {
          SEMCC_ASSIGN_OR_RETURN(auto members, ctx.SetScan(oid));
          for (const auto& [key, member] : members) {
            (void)key;
            next.push_back(member);
          }
          break;
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

Result<std::vector<Value>> PathExpr::ReadValues(TxnCtx& ctx, Oid root) const {
  SEMCC_ASSIGN_OR_RETURN(std::vector<Oid> oids, Resolve(ctx, root));
  std::vector<Value> out;
  out.reserve(oids.size());
  for (Oid oid : oids) {
    SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Get(oid));
    out.push_back(std::move(v));
  }
  return out;
}

// --- assembly -----------------------------------------------------------------

Result<std::unique_ptr<AssembledObject>> Assemble(TxnCtx& ctx, Oid root,
                                                  int max_depth) {
  auto node = std::make_unique<AssembledObject>();
  node->oid = root;
  SEMCC_ASSIGN_OR_RETURN(node->kind, ctx.store()->KindOf(root));
  SEMCC_ASSIGN_OR_RETURN(TypeId type, ctx.store()->TypeOf(root));
  node->type_name = ctx.store()->schema()->TypeName(type);
  if (max_depth <= 0) {
    node->truncated = true;
    return node;
  }
  switch (node->kind) {
    case ObjectKind::kAtomic: {
      SEMCC_ASSIGN_OR_RETURN(node->atom, ctx.Get(root));
      break;
    }
    case ObjectKind::kTuple: {
      SEMCC_ASSIGN_OR_RETURN(auto components, ctx.store()->Components(root));
      for (const auto& [name, coid] : components) {
        SEMCC_ASSIGN_OR_RETURN(auto child, Assemble(ctx, coid, max_depth - 1));
        node->components.emplace_back(name, std::move(child));
      }
      break;
    }
    case ObjectKind::kSet: {
      SEMCC_ASSIGN_OR_RETURN(auto members, ctx.SetScan(root));
      for (const auto& [key, moid] : members) {
        SEMCC_ASSIGN_OR_RETURN(auto child, Assemble(ctx, moid, max_depth - 1));
        node->members.emplace_back(key, std::move(child));
      }
      break;
    }
  }
  return node;
}

std::string AssembledObject::ToString(int indent) const {
  std::ostringstream out;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out << pad << type_name << "@" << oid;
  switch (kind) {
    case ObjectKind::kAtomic:
      out << " = " << atom.ToString() << "\n";
      break;
    case ObjectKind::kTuple:
      out << " {\n";
      for (const auto& [name, child] : components) {
        out << pad << "  " << name << ":\n" << child->ToString(indent + 2);
      }
      out << pad << "}\n";
      break;
    case ObjectKind::kSet:
      out << " { " << members.size() << " members }\n";
      for (const auto& [key, child] : members) {
        out << pad << "  [" << key.ToString() << "]:\n"
            << child->ToString(indent + 2);
      }
      break;
  }
  if (truncated) out << pad << "  ...(depth limit)\n";
  return out.str();
}

size_t AssembledObject::NodeCount() const {
  size_t n = 1;
  for (const auto& [name, child] : components) {
    (void)name;
    n += child->NodeCount();
  }
  for (const auto& [key, child] : members) {
    (void)key;
    n += child->NodeCount();
  }
  return n;
}

}  // namespace query
}  // namespace semcc
