// Object-assembly queries over complex objects.
//
// Paper §1.1 lists three reasons transactions bypass encapsulation; the
// second is that "'object-assembly' queries on complex objects require the
// structure of an encapsulated complex object to be revealed". This module
// is that generic, structure-revealing query facility: it navigates the
// object graph with the generic operations only (component selection,
// set Select/Scan, atomic Get), never invoking user methods — a purely
// "conventional" reader in the paper's sense. Because it runs inside a
// TxnCtx, every read takes the generic semantic locks, and the §4 protocol
// is what makes its coexistence with method-invoking transactions safe.
//
// MVCC: every access here flows through the TxnCtx generic-read API, so
// under Database::RunReadTransaction with protocol.mvcc_reads these same
// queries run as lock-free snapshot reads against the versioned store —
// no code change needed in this module (see object/versioned_store.h).
//
// Two facilities:
//  * PathExpr — a parsed navigation path evaluated against a root object:
//        "Orders[3].Status"          component + keyed set selection
//        "Orders[*].Quantity"        fan-out over all set members
//    Keys are integers or quoted strings; `[*]` scans.
//  * Assemble — deep-copies an object subtree into an AssembledObject value
//    tree (the "assembled" complex object), to a depth limit.
#ifndef SEMCC_QUERY_OBJECT_ASSEMBLY_H_
#define SEMCC_QUERY_OBJECT_ASSEMBLY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "txn/txn_context.h"

namespace semcc {
namespace query {

/// \brief One step of a navigation path.
struct PathStep {
  enum class Kind { kComponent, kSelect, kScan };
  Kind kind = Kind::kComponent;
  std::string component;  ///< kComponent: tuple component name
  Value key;              ///< kSelect: set key
};

/// \brief Parsed navigation path.
class PathExpr {
 public:
  /// Parse e.g. "Orders[3].Status" or "Orders[*].Quantity" or
  /// "Items[\"widget\"].Price". Grammar:
  ///   path    := segment ('.' segment)*
  ///   segment := NAME ('[' key ']')?
  ///   key     := INT | '"' chars '"' | '*'
  static Result<PathExpr> Parse(const std::string& text);

  const std::vector<PathStep>& steps() const { return steps_; }
  std::string ToString() const;

  /// Evaluate against `root` inside `ctx`; returns the oids the path
  /// reaches (several when the path contains `[*]`).
  Result<std::vector<Oid>> Resolve(TxnCtx& ctx, Oid root) const;

  /// Resolve and Get each reached atomic object.
  Result<std::vector<Value>> ReadValues(TxnCtx& ctx, Oid root) const;

 private:
  std::vector<PathStep> steps_;
};

/// \brief A detached, assembled copy of a complex object.
struct AssembledObject {
  Oid oid = kInvalidOid;
  ObjectKind kind = ObjectKind::kAtomic;
  std::string type_name;
  Value atom;                                            // kAtomic
  std::vector<std::pair<std::string, std::unique_ptr<AssembledObject>>>
      components;                                        // kTuple
  std::vector<std::pair<Value, std::unique_ptr<AssembledObject>>> members;  // kSet
  bool truncated = false;  ///< depth limit hit below this node

  /// Render as an indented tree (debug / example output).
  std::string ToString(int indent = 0) const;
  /// Count of nodes in the assembled tree.
  size_t NodeCount() const;
};

/// Deep-copy the object graph under `root` (atoms read with Get, tuples by
/// component, sets by Scan) down to `max_depth` object levels.
Result<std::unique_ptr<AssembledObject>> Assemble(TxnCtx& ctx, Oid root,
                                                  int max_depth = 8);

}  // namespace query
}  // namespace semcc

#endif  // SEMCC_QUERY_OBJECT_ASSEMBLY_H_
