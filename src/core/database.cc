#include "core/database.h"

#include "recovery/file_log_device.h"
#include "util/logging.h"

namespace semcc {

Database::Database(DatabaseOptions options)
    : options_(std::move(options)), disk_(options_.simulated_io_micros) {
  buffer_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages, &disk_);
  records_ = std::make_unique<RecordManager>(buffer_pool_.get());
  store_ = std::make_unique<ObjectStore>(&schema_, records_.get());
  history_.SetEnabled(options_.record_history);
  if (options_.enable_wal) {
    const RecoveryOptions& ropts = options_.recovery;
    WalOptions wopts;
    wopts.max_flush_attempts = ropts.max_flush_attempts;
    wopts.flush_retry_backoff = ropts.flush_retry_backoff;
    if (!ropts.log_dir.empty()) {
      FileLogDeviceOptions fopts;
      fopts.segment_bytes = ropts.log_segment_bytes;
      auto device = FileLogDevice::Open(ropts.log_dir, fopts);
      SEMCC_CHECK(device.ok()) << "cannot open log directory " << ropts.log_dir
                               << ": " << device.status().ToString();
      wal_ = std::make_unique<WriteAheadLog>(std::move(device).ValueUnsafe(),
                                             wopts);
    } else {
      wal_ = std::make_unique<WriteAheadLog>(
          std::make_unique<InMemoryLogDevice>(ropts.wal_flush_micros), wopts);
    }
    recovery_ = std::make_unique<RecoveryManager>(wal_.get(), ropts);
    store_->SetListener(recovery_.get());
    if (ropts.checkpoint_every_records > 0) {
      recovery_->SetCheckpointTrigger([this]() { return Checkpoint(); });
    }
  }
  if (options_.protocol.mvcc_reads) {
    versioned_store_ = std::make_unique<VersionedObjectStore>(store_.get());
  }
  lock_manager_ = std::make_unique<LockManager>(options_.protocol, &compat_);
  txn_manager_ = std::make_unique<TxnManager>(store_.get(), lock_manager_.get(),
                                              &methods_, &history_,
                                              recovery_.get(),
                                              versioned_store_.get());
  if (options_.protocol.adaptive_mode &&
      options_.protocol.protocol == Protocol::kSemanticONT) {
    adaptive_ = std::make_unique<AdaptiveController>(lock_manager_.get());
    lock_manager_->SetAdaptiveController(adaptive_.get());
    txn_manager_->SetAdaptiveController(adaptive_.get());
  }
}

Database::~Database() = default;

std::string DatabaseStats::ToJson() const {
  metrics::JsonWriter w;
  w.FieldRaw("locks", locks.ToJson());
  w.FieldRaw("txns", txns.ToJson());
  if (wal_enabled) w.FieldRaw("wal", wal.ToJson());
  if (mvcc_enabled) w.FieldRaw("versions", versions.ToJson());
  if (adaptive_enabled) w.FieldRaw("adaptive", adaptive.ToJson());
  return w.Close();
}

DatabaseStats Database::Stats() const {
  DatabaseStats s;
  s.locks = lock_manager_->stats();
  s.txns = txn_manager_->stats();
  if (wal_ != nullptr) {
    s.wal_enabled = true;
    s.wal = wal_->stats();
  }
  if (versioned_store_ != nullptr) {
    s.mvcc_enabled = true;
    s.versions = versioned_store_->stats();
  }
  if (adaptive_ != nullptr) {
    s.adaptive_enabled = true;
    s.adaptive = adaptive_->stats();
  }
  return s;
}

Status Database::RegisterMethod(MethodDef def) {
  compat_.DeclareMethod(def.type, def.name);
  return methods_.Register(std::move(def));
}

Result<Value> Database::RunTransaction(const std::string& name,
                                       const TxnManager::Body& body,
                                       int max_retries) {
  return txn_manager_->Run(name, body, max_retries);
}

Result<Value> Database::RunTransactionOnce(const std::string& name,
                                           const TxnManager::Body& body) {
  return txn_manager_->RunOnce(name, body);
}

Result<Value> Database::RunReadTransaction(const std::string& name,
                                           const TxnManager::Body& body,
                                           int max_retries) {
  if (versioned_store_ != nullptr) return txn_manager_->RunSnapshot(name, body);
  return txn_manager_->Run(name, body, max_retries);
}

Status Database::SetNamedRoot(const std::string& name, Oid oid) {
  {
    MutexLock guard(roots_mu_);
    named_roots_[name] = oid;
  }
  if (recovery_ != nullptr) recovery_->OnNamedRoot(name, oid);
  return Status::OK();
}

Result<Oid> Database::GetNamedRoot(const std::string& name) const {
  MutexLock guard(roots_mu_);
  auto it = named_roots_.find(name);
  if (it == named_roots_.end()) {
    return Status::NotFound("no named root: " + name);
  }
  return it->second;
}

Status Database::Checkpoint() {
  if (recovery_ == nullptr) {
    return Status::PreconditionFailed("Checkpoint needs enable_wal");
  }
  std::vector<std::pair<std::string, Oid>> roots;
  {
    MutexLock guard(roots_mu_);
    roots.assign(named_roots_.begin(), named_roots_.end());
  }
  return recovery_->Checkpoint(store_.get(), roots);
}

Result<RecoveryManager::RecoveryStats> Database::RecoverFrom(
    const std::vector<LogRecord>& log) {
  if (store_->num_objects() > 1) {
    return Status::PreconditionFailed(
        "RecoverFrom needs an object-empty database (register types and "
        "methods only, then recover)");
  }
  auto sink = [this](const std::string& name, Oid oid) {
    (void)SetNamedRoot(name, oid);
  };
  auto stats = RecoveryManager::Recover(log, store_.get(), &methods_,
                                        txn_manager_.get(), sink);
  if (stats.ok() && wal_ != nullptr) {
    SEMCC_RETURN_NOT_OK(wal_->Flush());
  }
  return stats;
}

Result<RecoveryManager::RecoveryStats> Database::RestartFromLog() {
  if (wal_ == nullptr) {
    return Status::PreconditionFailed("RestartFromLog needs enable_wal");
  }
  if (store_->num_objects() > 1) {
    return Status::PreconditionFailed(
        "RestartFromLog needs an object-empty database (register types and "
        "methods only, then restart)");
  }
  SEMCC_ASSIGN_OR_RETURN(std::vector<LogRecord> log, wal_->RecoverAtStartup());
  // REDO must not re-log: the physical records it replays are already in
  // this log. The compensation pass runs with the listener reattached so
  // loser compensation is logged like any online abort.
  store_->SetListener(nullptr);
  auto reattach = [this]() { store_->SetListener(recovery_.get()); };
  // Named roots are replayed, not re-bound: update the in-memory directory
  // without appending fresh kNamedRoot records.
  auto sink = [this](const std::string& name, Oid oid) {
    MutexLock guard(roots_mu_);
    named_roots_[name] = oid;
  };
  auto stats = RecoveryManager::Recover(log, store_.get(), &methods_,
                                        txn_manager_.get(), sink, reattach);
  store_->SetListener(recovery_.get());
  if (!stats.ok()) return stats;
  // Mark every compensated loser abort-complete (and force), so the next
  // restart replays original + compensation records and skips re-undo.
  for (TxnId loser : stats.ValueOrDie().loser_ids) {
    recovery_->OnTxnAbort(loser);
  }
  SEMCC_RETURN_NOT_OK(recovery_->health());
  return stats;
}

}  // namespace semcc
