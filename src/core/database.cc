#include "core/database.h"

namespace semcc {

Database::Database(DatabaseOptions options)
    : options_(options), disk_(options.simulated_io_micros) {
  buffer_pool_ = std::make_unique<BufferPool>(options_.buffer_pool_pages, &disk_);
  records_ = std::make_unique<RecordManager>(buffer_pool_.get());
  store_ = std::make_unique<ObjectStore>(&schema_, records_.get());
  history_.SetEnabled(options_.record_history);
  if (options_.enable_wal) {
    wal_ = std::make_unique<WriteAheadLog>(options_.wal_flush_micros);
    RecoveryOptions ropts;
    ropts.group_commit = options_.group_commit;
    ropts.group_window =
        std::chrono::microseconds(options_.group_commit_window_micros);
    recovery_ = std::make_unique<RecoveryManager>(wal_.get(), ropts);
    store_->SetListener(recovery_.get());
  }
  lock_manager_ = std::make_unique<LockManager>(options_.protocol, &compat_);
  txn_manager_ = std::make_unique<TxnManager>(store_.get(), lock_manager_.get(),
                                              &methods_, &history_,
                                              recovery_.get());
}

Database::~Database() = default;

Status Database::RegisterMethod(MethodDef def) {
  compat_.DeclareMethod(def.type, def.name);
  return methods_.Register(std::move(def));
}

Result<Value> Database::RunTransaction(const std::string& name,
                                       const TxnManager::Body& body,
                                       int max_retries) {
  return txn_manager_->Run(name, body, max_retries);
}

Result<Value> Database::RunTransactionOnce(const std::string& name,
                                           const TxnManager::Body& body) {
  return txn_manager_->RunOnce(name, body);
}

Status Database::SetNamedRoot(const std::string& name, Oid oid) {
  {
    MutexLock guard(roots_mu_);
    named_roots_[name] = oid;
  }
  if (recovery_ != nullptr) recovery_->OnNamedRoot(name, oid);
  return Status::OK();
}

Result<Oid> Database::GetNamedRoot(const std::string& name) const {
  MutexLock guard(roots_mu_);
  auto it = named_roots_.find(name);
  if (it == named_roots_.end()) {
    return Status::NotFound("no named root: " + name);
  }
  return it->second;
}

Result<RecoveryManager::RecoveryStats> Database::RecoverFrom(
    const std::vector<LogRecord>& log) {
  if (store_->num_objects() > 1) {
    return Status::PreconditionFailed(
        "RecoverFrom needs an object-empty database (register types and "
        "methods only, then recover)");
  }
  auto sink = [this](const std::string& name, Oid oid) {
    (void)SetNamedRoot(name, oid);
  };
  auto stats = RecoveryManager::Recover(log, store_.get(), &methods_,
                                        txn_manager_.get(), sink);
  if (stats.ok() && wal_ != nullptr) wal_->Flush();
  return stats;
}

}  // namespace semcc
