// Serializability validation of recorded histories.
//
// SemanticSerializabilityChecker tests a recorded execution for semantic
// serializability in the [BBG89] tree-reduction sense the paper relies on: a
// concurrent execution of open nested transactions is correct iff it can be
// transformed into a serial execution of the roots by (1) exchanging
// adjacent, non-interleaving subtrees with commuting roots and (2) reducing
// isolated subtrees to their roots.
//
// The checker derives ordering obligations from conflicting action pairs:
// for every ordered pair (p, q) of committed, non-commuting actions on the
// same object from different transactions (p completed before q was
// granted), the obligation root(p) -> root(q) is added UNLESS some ancestor
// pair (p', q') commutes on the same object and p' completed before q was
// granted — then p's subtree is isolated relative to q (reduction step 2)
// and the commuting ancestors can be exchanged (step 1), so the low-level
// conflict is an implementation-based pseudo-conflict, exactly the paper's
// Case 1/2 reasoning. The execution is accepted iff the obligation graph
// over the transaction roots is acyclic.
//
// Histories produced by the paper's protocol always pass; the Figure 5
// anomaly of the naive (non-retaining) protocol produces a T1 <-> T3 cycle
// and is rejected. The check is a sufficient condition tuned to
// *method-level-locked* executions: it derives ordering obligations from
// method-action timestamps, which are lock-mediated only under the semantic
// protocol. Histories of the conventional baselines (whose method nodes
// carry no locks) should be validated with CheckRWConflictSerializability
// instead — conflict-serializability implies semantic serializability a
// fortiori.
#ifndef SEMCC_CORE_SERIALIZABILITY_H_
#define SEMCC_CORE_SERIALIZABILITY_H_

#include <string>
#include <vector>

#include "cc/compatibility.h"
#include "object/versioned_store.h"
#include "txn/history.h"
#include "util/macros.h"

namespace semcc {

/// \brief Outcome of a history check.
struct CheckResult {
  bool serializable = true;
  /// Human-readable explanations of the violating cycle(s), if any.
  std::vector<std::string> violations;
  /// A serial order of the committed transaction ids, valid iff serializable.
  std::vector<TxnId> serial_order;

  std::string ToString() const;
};

/// \brief Semantic (tree-reduction based) serializability checker.
class SemanticSerializabilityChecker {
 public:
  explicit SemanticSerializabilityChecker(const CompatibilityRegistry* compat)
      : compat_(compat) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(SemanticSerializabilityChecker);

  CheckResult Check(const std::vector<TxnRecord>& history) const;

 private:
  const CompatibilityRegistry* const compat_;
};

/// \brief Classical read/write conflict-serializability over the leaf
/// accesses (Get/Put/Insert/Remove/Select/Scan/Size), ignoring all method
/// semantics. The conventional baselines must pass this; histories of the
/// semantic protocol in general do NOT (that is the concurrency gain).
CheckResult CheckRWConflictSerializability(const std::vector<TxnRecord>& history);

/// \brief Snapshot-read validation for MVCC mode: every read of a committed
/// snapshot transaction must have observed exactly the newest version
/// installed at or before its snapshot timestamp S (observed_ts == 0 means
/// the base/pre-first-write version, expected when no install <= S covers
/// the object). In other words, each snapshot reads-from the committed
/// prefix of the install order at S — neither an uncommitted value, nor a
/// later version, nor a stale one.
///
/// `installs` is the database's version install log
/// (VersionedObjectStore::InstallLog(); call SetInstallLogEnabled(true)
/// before the run). Objects that never appear in the install log are not
/// checked beyond requiring observed_ts == 0 (live fallback).
CheckResult CheckSnapshotReads(const std::vector<TxnRecord>& history,
                               const std::vector<VersionInstall>& installs);

}  // namespace semcc

#endif  // SEMCC_CORE_SERIALIZABILITY_H_
