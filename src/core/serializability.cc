#include "core/serializability.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace semcc {

std::string CheckResult::ToString() const {
  std::ostringstream out;
  if (serializable) {
    out << "serializable; order:";
    for (TxnId id : serial_order) out << " T" << id;
  } else {
    out << "NOT serializable:";
    for (const std::string& v : violations) out << "\n  " << v;
  }
  return out.str();
}

namespace {

struct ActionCtx {
  const ActionRecord* rec = nullptr;
  const TxnRecord* txn = nullptr;
  bool is_leaf = true;
  // Proper ancestors bottom-up (parent first, root last).
  std::vector<const ActionRecord*> ancestors;
};

struct Graph {
  std::set<TxnId> nodes;
  std::map<TxnId, std::set<TxnId>> out_edges;
  std::map<std::pair<TxnId, TxnId>, std::string> reasons;

  void AddEdge(TxnId from, TxnId to, const std::string& reason) {
    if (from == to) return;
    if (out_edges[from].insert(to).second) {
      reasons[{from, to}] = reason;
    }
  }
};

/// Kahn topological sort; on failure reports one cycle.
void Finish(const Graph& g, CheckResult* result) {
  std::map<TxnId, int> indegree;
  for (TxnId n : g.nodes) indegree[n] = 0;
  for (const auto& [from, tos] : g.out_edges) {
    (void)from;
    for (TxnId to : tos) indegree[to]++;
  }
  std::vector<TxnId> ready;
  for (const auto& [n, d] : indegree) {
    if (d == 0) ready.push_back(n);
  }
  std::vector<TxnId> order;
  while (!ready.empty()) {
    std::sort(ready.begin(), ready.end());
    TxnId n = ready.front();
    ready.erase(ready.begin());
    order.push_back(n);
    auto it = g.out_edges.find(n);
    if (it == g.out_edges.end()) continue;
    for (TxnId to : it->second) {
      if (--indegree[to] == 0) ready.push_back(to);
    }
  }
  if (order.size() == g.nodes.size()) {
    // Keep any violation found earlier (e.g. overlapping conflicting
    // leaves); acyclicity alone does not override it.
    if (result->violations.empty()) {
      result->serial_order = std::move(order);
    } else {
      result->serializable = false;
    }
    return;
  }
  result->serializable = false;
  // Find a cycle among the unresolved nodes for the report.
  std::set<TxnId> remaining;
  for (const auto& [n, d] : indegree) {
    if (d > 0) remaining.insert(n);
  }
  // Walk forward from any remaining node until we revisit one.
  // Start from a remaining node that actually has outgoing edges into the
  // remaining set (lasso tails may not).
  TxnId start = *remaining.begin();
  for (TxnId candidate : remaining) {
    auto oit = g.out_edges.find(candidate);
    if (oit == g.out_edges.end()) continue;
    for (TxnId t : oit->second) {
      if (remaining.count(t) > 0) {
        start = candidate;
        break;
      }
    }
  }
  std::vector<TxnId> path;
  std::map<TxnId, size_t> pos;
  TxnId cur = start;
  while (pos.find(cur) == pos.end()) {
    pos[cur] = path.size();
    path.push_back(cur);
    auto oit = g.out_edges.find(cur);
    TxnId next = kInvalidOid;
    if (oit != g.out_edges.end()) {
      for (TxnId t : oit->second) {
        if (remaining.count(t) > 0) {
          next = t;
          break;
        }
      }
    }
    if (next == kInvalidOid) break;  // defensive: no forward edge
    cur = next;
  }
  if (pos.find(cur) != pos.end()) {
    std::ostringstream msg;
    msg << "cycle:";
    for (size_t i = pos[cur]; i < path.size(); ++i) {
      TxnId from = path[i];
      TxnId to = (i + 1 < path.size()) ? path[i + 1] : cur;
      auto rit = g.reasons.find({from, to});
      msg << " T" << from << " -> T" << to;
      if (rit != g.reasons.end()) msg << " (" << rit->second << ")";
      if (i + 1 < path.size()) msg << ";";
    }
    result->violations.push_back(msg.str());
  } else {
    result->violations.push_back("cycle detected (unable to reconstruct path)");
  }
}

std::vector<ActionCtx> CollectCommittedActions(
    const std::vector<TxnRecord>& history, Graph* graph) {
  std::vector<ActionCtx> actions;
  for (const TxnRecord& txn : history) {
    if (!txn.committed) continue;
    graph->nodes.insert(txn.id);
    std::map<TxnId, const ActionRecord*> by_id;
    std::set<TxnId> parents;
    for (const ActionRecord& a : txn.actions) by_id[a.id] = &a;
    for (const ActionRecord& a : txn.actions) {
      if (a.id != a.parent_id) parents.insert(a.parent_id);
    }
    for (const ActionRecord& a : txn.actions) {
      if (!a.committed()) continue;
      if (a.id == a.parent_id) continue;  // skip the root action itself
      ActionCtx ctx;
      ctx.rec = &a;
      ctx.txn = &txn;
      ctx.is_leaf = parents.count(a.id) == 0;
      TxnId p = a.parent_id;
      while (true) {
        auto it = by_id.find(p);
        if (it == by_id.end()) break;
        ctx.ancestors.push_back(it->second);
        if (it->second->id == it->second->parent_id) break;  // reached root
        p = it->second->parent_id;
      }
      actions.push_back(std::move(ctx));
    }
  }
  return actions;
}

}  // namespace

CheckResult SemanticSerializabilityChecker::Check(
    const std::vector<TxnRecord>& history) const {
  CheckResult result;
  Graph graph;
  std::vector<ActionCtx> actions = CollectCommittedActions(history, &graph);

  // Group by object to limit the pairwise scan.
  std::map<Oid, std::vector<const ActionCtx*>> by_object;
  for (const ActionCtx& a : actions) by_object[a.rec->object].push_back(&a);

  for (const auto& [object, group] : by_object) {
    (void)object;
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        const ActionCtx* a = group[i];
        const ActionCtx* b = group[j];
        if (a->rec->root_id == b->rec->root_id) continue;
        if (compat_->Commute(a->rec->type, a->rec->method, a->rec->args,
                             b->rec->method, b->rec->args)) {
          continue;
        }
        // Order the conflicting pair (p completed before q was granted).
        const ActionCtx* p = nullptr;
        const ActionCtx* q = nullptr;
        if (a->rec->end_seq <= b->rec->grant_seq) {
          p = a;
          q = b;
        } else if (b->rec->end_seq <= a->rec->grant_seq) {
          p = b;
          q = a;
        } else {
          // Overlapping execution of a conflicting pair. For leaves this
          // must never happen (locks are exclusive while both are active);
          // for method actions an overlap is resolved by their descendants'
          // conflicts, which generate their own obligations.
          if (a->is_leaf && b->is_leaf) {
            result.serializable = false;
            result.violations.push_back(
                "overlapping conflicting leaf actions " + a->rec->Label() +
                " (T" + std::to_string(a->rec->root_id) + ") and " +
                b->rec->Label() + " (T" + std::to_string(b->rec->root_id) +
                ")");
          }
          continue;
        }
        // Masking: a commuting ancestor pair on the same object, with the
        // earlier side completed before q was granted (Case 1 / Case 2 of
        // the paper), turns this into a pseudo-conflict.
        bool masked = false;
        for (const ActionRecord* p_anc : p->ancestors) {
          if (masked) break;
          for (const ActionRecord* q_anc : q->ancestors) {
            if (p_anc->object != q_anc->object) continue;
            if (!compat_->Commute(p_anc->type, p_anc->method, p_anc->args,
                                  q_anc->method, q_anc->args)) {
              continue;
            }
            if (p_anc->end_seq <= q->rec->grant_seq) {
              masked = true;
              break;
            }
          }
        }
        if (masked) continue;
        graph.AddEdge(p->rec->root_id, q->rec->root_id,
                      p->rec->Label() + " before " + q->rec->Label());
      }
    }
  }
  Finish(graph, &result);
  return result;
}

CheckResult CheckRWConflictSerializability(
    const std::vector<TxnRecord>& history) {
  CheckResult result;
  Graph graph;
  std::vector<ActionCtx> actions = CollectCommittedActions(history, &graph);

  auto is_write = [](const std::string& m) {
    return m == generic_ops::kPut || m == generic_ops::kInsert ||
           m == generic_ops::kRemove;
  };
  auto is_leaf_op = [&](const std::string& m) {
    return is_write(m) || m == generic_ops::kGet || m == generic_ops::kSelect ||
           m == generic_ops::kScan || m == generic_ops::kSize;
  };

  std::map<Oid, std::vector<const ActionCtx*>> by_object;
  for (const ActionCtx& a : actions) {
    if (is_leaf_op(a.rec->method)) by_object[a.rec->object].push_back(&a);
  }
  for (const auto& [object, group] : by_object) {
    (void)object;
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        const ActionCtx* a = group[i];
        const ActionCtx* b = group[j];
        if (a->rec->root_id == b->rec->root_id) continue;
        if (!is_write(a->rec->method) && !is_write(b->rec->method)) continue;
        const ActionCtx* p = nullptr;
        const ActionCtx* q = nullptr;
        if (a->rec->end_seq <= b->rec->grant_seq) {
          p = a;
          q = b;
        } else if (b->rec->end_seq <= a->rec->grant_seq) {
          p = b;
          q = a;
        } else {
          result.serializable = false;
          result.violations.push_back("overlapping R/W conflict on object " +
                                      std::to_string(a->rec->object));
          continue;
        }
        graph.AddEdge(p->rec->root_id, q->rec->root_id,
                      p->rec->Label() + " before " + q->rec->Label());
      }
    }
  }
  Finish(graph, &result);
  return result;
}

CheckResult CheckSnapshotReads(const std::vector<TxnRecord>& history,
                               const std::vector<VersionInstall>& installs) {
  CheckResult result;

  // Per-oid sorted list of install timestamps. Install groups are stamped
  // under one mutex, so the log order is already ascending in ts; sort
  // defensively anyway (the checker must not trust its input's invariants).
  std::map<Oid, std::vector<uint64_t>> by_oid;
  for (const VersionInstall& inst : installs) {
    for (Oid oid : inst.oids) by_oid[oid].push_back(inst.ts);
  }
  for (auto& [oid, ts_list] : by_oid) {
    (void)oid;
    std::sort(ts_list.begin(), ts_list.end());
  }

  auto is_read = [](const std::string& m) {
    return m == generic_ops::kGet || m == generic_ops::kSelect ||
           m == generic_ops::kScan || m == generic_ops::kSize;
  };

  for (const TxnRecord& txn : history) {
    if (!txn.snapshot || !txn.committed) continue;
    result.serial_order.push_back(txn.id);
    for (const ActionRecord& a : txn.actions) {
      if (a.id == a.parent_id) continue;  // root carries no access
      if (!is_read(a.method)) continue;
      // Expected version: newest install ts <= S covering this object,
      // else 0 (base version / live fallback on a never-installed object).
      uint64_t expected = 0;
      auto it = by_oid.find(a.object);
      if (it != by_oid.end()) {
        auto ub = std::upper_bound(it->second.begin(), it->second.end(),
                                   txn.snapshot_ts);
        if (ub != it->second.begin()) expected = *(ub - 1);
      }
      if (a.observed_ts != expected) {
        result.serializable = false;
        result.violations.push_back(
            "snapshot T" + std::to_string(txn.id) + " (S=" +
            std::to_string(txn.snapshot_ts) + ") read " + a.Label() +
            " from version ts=" + std::to_string(a.observed_ts) +
            ", expected ts=" + std::to_string(expected) +
            " (newest install <= S)");
      }
    }
  }
  return result;
}

}  // namespace semcc
