// Database: the public facade of the semcc library.
//
// Wires together the storage substrate (disk manager, buffer pool, record
// manager), the object store, the compatibility registry, the semantic lock
// manager, and the open-nested transaction manager.
//
// Typical use:
//
//   semcc::DatabaseOptions options;                     // semantic ONT
//   semcc::Database db(options);
//   ... define types (db.schema()), methods (db.RegisterMethod),
//       compatibilities (db.compat()) ...
//   auto r = db.RunTransaction("T1", [&](semcc::TxnCtx& ctx) {
//     return ctx.Invoke(item, "ShipOrder", {order_no});
//   });
#ifndef SEMCC_CORE_DATABASE_H_
#define SEMCC_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "cc/adaptive_controller.h"
#include "cc/compatibility.h"
#include "cc/lock_manager.h"
#include "object/object_store.h"
#include "object/schema.h"
#include "object/versioned_store.h"
#include "storage/buffer_pool.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "storage/disk_manager.h"
#include "storage/record_manager.h"
#include "txn/history.h"
#include "txn/method_registry.h"
#include "txn/txn_manager.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

struct DatabaseOptions {
  ProtocolOptions protocol;
  /// Enable write-ahead logging for multi-level recovery (see
  /// recovery/recovery_manager.h). Off by default: the paper defers
  /// recovery; this is the future-work extension.
  bool enable_wal = false;
  /// Durability policy and log device selection (group commit, file-backed
  /// vs in-memory log, flush retry) — see RecoveryOptions.
  RecoveryOptions recovery;
  size_t buffer_pool_pages = 4096;
  /// Busy-wait per simulated page I/O (0 = pure in-memory).
  uint32_t simulated_io_micros = 0;
  /// Record finished transaction trees (needed by the serializability
  /// checker and the figure benches; disable for long perf runs).
  bool record_history = true;
};

/// \brief One consistent-at-quiesce snapshot of every subsystem's counters
/// (see DESIGN.md §5.5 for the exactness contract).
struct DatabaseStats {
  LockStats locks;
  TxnStats txns;
  bool wal_enabled = false;
  WalStats wal;  ///< zeroes unless wal_enabled
  bool mvcc_enabled = false;
  VersionStats versions;  ///< zeroes unless mvcc_enabled
  bool adaptive_enabled = false;
  AdaptiveStats adaptive;  ///< zeroes unless adaptive_enabled

  /// One JSON object with "locks"/"txns" (and "wal"/"versions" when the
  /// corresponding subsystem is enabled) fields.
  std::string ToJson() const;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(Database);

  // --- component access ---------------------------------------------------
  Schema* schema() { return &schema_; }
  ObjectStore* store() { return store_.get(); }
  CompatibilityRegistry* compat() { return &compat_; }
  MethodRegistry* methods() { return &methods_; }
  LockManager* locks() { return lock_manager_.get(); }
  TxnManager* txns() { return txn_manager_.get(); }
  HistoryRecorder* history() { return &history_; }
  BufferPool* buffer_pool() { return buffer_pool_.get(); }
  /// Null unless options.enable_wal.
  WriteAheadLog* wal() { return wal_.get(); }
  RecoveryManager* recovery() { return recovery_.get(); }
  /// Null unless options.protocol.mvcc_reads.
  VersionedObjectStore* versions() { return versioned_store_.get(); }
  /// Null unless options.protocol.adaptive_mode (under kSemanticONT).
  AdaptiveController* adaptive() { return adaptive_.get(); }

  const DatabaseOptions& options() const { return options_; }

  /// Snapshot of lock, transaction, and (when enabled) WAL statistics.
  DatabaseStats Stats() const;

  // --- convenience ----------------------------------------------------------

  /// Register a method and declare its name for matrix printing.
  Status RegisterMethod(MethodDef def);

  /// Run a transaction with system-abort retry (see TxnManager::Run).
  Result<Value> RunTransaction(const std::string& name,
                               const TxnManager::Body& body,
                               int max_retries = 16);
  /// Run exactly one attempt (scenario tests).
  Result<Value> RunTransactionOnce(const std::string& name,
                                   const TxnManager::Body& body);

  /// Run a read-only transaction. With options.protocol.mvcc_reads this is
  /// a lock-free snapshot read (TxnManager::RunSnapshot); without the flag
  /// it degrades to the ordinary locking path, which is what makes the
  /// flag a clean on/off ablation for identical workload code.
  Result<Value> RunReadTransaction(const std::string& name,
                                   const TxnManager::Body& body,
                                   int max_retries = 16);

  // --- durable named roots & restart --------------------------------------

  /// Bind a well-known name to an entry-point object (logged when the WAL
  /// is enabled, so restart can find the object graph's roots again).
  Status SetNamedRoot(const std::string& name, Oid oid);
  Result<Oid> GetNamedRoot(const std::string& name) const;

  /// Take an online fuzzy checkpoint: dump the live object graph into the
  /// log between kCkptBegin/kCkptEnd markers, force it stable, and (per
  /// options.recovery.checkpoint_truncate) truncate the log prefix the
  /// checkpoint covers — bounding both the WAL's memory and the replay work
  /// of the next restart. Runs concurrently with transactions (see
  /// RecoveryManager::Checkpoint); with
  /// options.recovery.checkpoint_every_records > 0 it also fires
  /// automatically as the log grows. Needs enable_wal.
  Status Checkpoint();

  /// Rebuild this (freshly constructed, schema- and method-installed but
  /// object-empty) database from a log. See RecoveryManager::Recover.
  /// Re-logs everything into this database's own WAL (if enabled), so the
  /// new log is self-contained — a chained checkpoint.
  Result<RecoveryManager::RecoveryStats> RecoverFrom(
      const std::vector<LogRecord>& log);

  /// Restart in place from this database's own log device: scan the
  /// durable image (truncating a torn tail, refusing mid-log corruption),
  /// REDO the physical records, compensate the losers, and mark each loser
  /// abort-complete in the same log. Requires enable_wal and an
  /// object-empty database; with options.recovery.log_dir set this is the
  /// real restart-after-crash path.
  Result<RecoveryManager::RecoveryStats> RestartFromLog();

 private:
  const DatabaseOptions options_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> buffer_pool_;
  std::unique_ptr<RecordManager> records_;
  Schema schema_;
  std::unique_ptr<ObjectStore> store_;
  CompatibilityRegistry compat_;
  MethodRegistry methods_;
  HistoryRecorder history_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::unique_ptr<RecoveryManager> recovery_;
  std::unique_ptr<VersionedObjectStore> versioned_store_;
  std::unique_ptr<LockManager> lock_manager_;
  std::unique_ptr<TxnManager> txn_manager_;
  /// Declared after the managers it is attached to, so it is destroyed
  /// first (stopping its sampler thread while they still exist).
  std::unique_ptr<AdaptiveController> adaptive_;
  mutable Mutex roots_mu_;
  std::map<std::string, Oid> named_roots_ SEMCC_GUARDED_BY(roots_mu_);
};

}  // namespace semcc

#endif  // SEMCC_CORE_DATABASE_H_
