#include "recovery/recovery_manager.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "util/logging.h"

namespace semcc {

RecoveryManager::RecoveryManager(WriteAheadLog* wal, RecoveryOptions options)
    : wal_(wal), options_(options) {
  if (options_.checkpoint_every_records > 0) {
    ckpt_next_at_.store(options_.checkpoint_every_records,
                        std::memory_order_relaxed);
  }
  if (options_.group_commit) {
    const int n = std::max(1, options_.flusher_threads);
    gc_live_ = n;
    for (int i = 0; i < n; ++i) {
      gc_pool_.emplace_back([this]() { GroupFlusherLoop(); });
    }
  }
}

RecoveryManager::~RecoveryManager() { Shutdown(); }

void RecoveryManager::Shutdown() {
  if (gc_pool_.empty()) return;
  {
    MutexLock guard(gc_mu_);
    gc_stop_ = true;
  }
  gc_cv_.NotifyAll();
  for (std::thread& t : gc_pool_) t.join();
  gc_pool_.clear();
}

std::chrono::microseconds RecoveryManager::AdaptiveWindow() const {
  if (!options_.adaptive_group_window) return options_.group_window;
  // Adaptive mode never sleeps a timed window: the in-flight fsync *is* the
  // window. The first commit's demand starts a sync immediately; every
  // commit that arrives while it runs is claimed by the listening pool
  // thread into the next pipelined batch and absorbed for free when that
  // batch wins the device. Batch size then self-tunes to the device: a slow
  // sync accumulates more followers, a fast one fewer, and the device never
  // idles. A timed gather-window is strictly worse here — any variant that
  // waits for committers to pile up (measured on this device with an
  // all-aboard window capped at one p50 sync) parks every closed-loop
  // thread before syncing, so nothing is appended *during* the fsync, the
  // pipeline never forms, and each cycle restarts cold: window + sync
  // serialize instead of overlapping, and group commit loses to
  // force-per-commit. The fixed-window option preserves the pre-adaptive
  // timed behaviour for comparison.
  return std::chrono::microseconds(0);
}

void RecoveryManager::GroupFlusherLoop() {
  MutexLock lock(gc_mu_);
  while (true) {
    // Sleep until there is *unclaimed* demand. The demand signal is the
    // requested-LSN watermark compared against what an in-flight batch has
    // already claimed: a request covered by a running flush needs no second
    // flusher (its publisher wakes the committer), but a request beyond it
    // wakes another pool thread, which leads the next pipelined batch while
    // the first one's fsync is still in flight.
    while (!gc_stop_ && gc_status_.ok() &&
           gc_requested_ <= wal_->claimed_lsn()) {
      gc_cv_.Wait(lock);
    }
    if (!gc_status_.ok()) break;
    // On stop, drain: keep flushing until the watermark is stable, so a
    // committer already waiting in MakeStable is never abandoned.
    if (gc_requested_ <= wal_->stable_lsn()) {
      if (gc_stop_) break;
      continue;  // claimed and already published between checks
    }
    if (!gc_stop_) {
      // Batching window. In adaptive mode this is zero — see
      // AdaptiveWindow(): the in-flight fsync is the window, and sleeping
      // here on top of it only idles the device. With the fixed-window
      // option the configured window is slept so concurrent committers can
      // pile in behind the first one (the pre-adaptive behaviour, kept for
      // comparison); a stop request cuts it short.
      const auto window = AdaptiveWindow();
      if (window.count() > 0) {
        const auto deadline = std::chrono::steady_clock::now() + window;
        while (!gc_stop_ &&
               gc_cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
        }
      }
    }
    const Lsn target = gc_requested_;
    // Both pool threads wake on the same demand; only one can lead. If a
    // concurrent flusher already claimed this target, tailgating it into
    // FlushTo would just block as a follower until its publish — leaving
    // NOBODY listening for the commits that arrive during its fsync, which
    // serializes the pipeline back into lockstep. Loop back to the
    // demand-wait instead: this thread becomes the listener that leads the
    // next batch while the claimed one's fsync is in flight. (On stop,
    // fall through: the drain must not spin on a covered-but-unstable
    // watermark.)
    if (target <= wal_->claimed_lsn() && !gc_stop_) continue;
    lock.Unlock();
    const Status st = wal_->FlushTo(target);
    lock.Lock();
    if (!st.ok()) {
      if (gc_status_.ok()) gc_status_ = st;
      break;
    }
    gc_cv_.NotifyAll();
  }
  if (--gc_live_ == 0) gc_exited_ = true;
  gc_cv_.NotifyAll();
}

Status RecoveryManager::MakeStable(Lsn lsn) {
  if (lsn == kInvalidLsn) {
    // The WAL refused the append: it is degraded. Surface why.
    const Status st = wal_->health();
    return st.ok() ? Status::IOError("log append failed") : st;
  }
  // Force-per-commit: this commit pays for its own device sync (FlushForce
  // never rides an earlier sync), which is exactly what the policy's name
  // promises — and the baseline the group-commit policy amortizes.
  if (!options_.group_commit) return wal_->FlushForce(lsn);
  MutexLock lock(gc_mu_);
  if (gc_requested_ < lsn) gc_requested_ = lsn;
  gc_cv_.NotifyAll();
  while (wal_->stable_lsn() < lsn) {
    if (!gc_status_.ok()) return gc_status_;
    if (gc_exited_) {
      return Status::Aborted("log flusher stopped before LSN " +
                             std::to_string(lsn) + " became stable");
    }
    gc_cv_.Wait(lock);
  }
  return Status::OK();
}

Status RecoveryManager::health() const {
  {
    MutexLock guard(gc_mu_);
    if (!health_.ok()) return health_;
  }
  return wal_->health();
}

void RecoveryManager::RecordFailure(const Status& st) {
  SEMCC_LOG(Error) << "commit durability lost: " << st.ToString();
  MutexLock guard(gc_mu_);
  if (health_.ok()) health_ = st;
}

// --- physical stratum ---------------------------------------------------

void RecoveryManager::OnCreateAtomic(Oid oid, TypeId type, const Value& initial) {
  LogRecord rec;
  rec.type = LogType::kCreateAtomic;
  rec.object = oid;
  rec.obj_type = type;
  rec.value = initial;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnCreateTuple(
    Oid oid, TypeId type,
    const std::vector<std::pair<std::string, Oid>>& components) {
  LogRecord rec;
  rec.type = LogType::kCreateTuple;
  rec.object = oid;
  rec.obj_type = type;
  rec.components = components;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnCreateSet(Oid oid, TypeId type) {
  LogRecord rec;
  rec.type = LogType::kCreateSet;
  rec.object = oid;
  rec.obj_type = type;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnDestroy(Oid oid) {
  LogRecord rec;
  rec.type = LogType::kDestroy;
  rec.object = oid;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnPut(Oid oid, const Value& after) {
  LogRecord rec;
  rec.type = LogType::kAtomWrite;
  rec.object = oid;
  rec.value = after;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnSetInsert(Oid set, const Value& key, Oid member) {
  LogRecord rec;
  rec.type = LogType::kSetInsert;
  rec.object = set;
  rec.args = {key};
  rec.aux_oid = member;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnSetRemove(Oid set, const Value& key, Oid member) {
  LogRecord rec;
  rec.type = LogType::kSetRemove;
  rec.object = set;
  rec.args = {key};
  rec.aux_oid = member;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnNamedRoot(const std::string& name, Oid oid) {
  LogRecord rec;
  rec.type = LogType::kNamedRoot;
  rec.name = name;
  rec.object = oid;
  wal_->Append(std::move(rec));
  // Directory entries are rare and precious: force individually.
  const Status st = wal_->Flush();
  if (!st.ok()) RecordFailure(st);
}

// --- online fuzzy checkpoint ----------------------------------------------

Status RecoveryManager::Checkpoint(
    ObjectStore* store, const std::vector<std::pair<std::string, Oid>>& roots) {
  MutexLock run(ckpt_run_mu_);
  SEMCC_RETURN_NOT_OK(health());

  Lsn begin_lsn = kInvalidLsn;
  Lsn trunc_lsn = kInvalidLsn;
  {
    // Atomically append the begin marker and snapshot the active set (see
    // OnTxnBegin): the truncation point must cover every transaction that
    // could still be a loser at a crash after this checkpoint.
    MutexLock guard(ckpt_mu_);
    LogRecord begin;
    begin.type = LogType::kCkptBegin;
    begin_lsn = wal_->Append(std::move(begin));
    if (begin_lsn == kInvalidLsn) {
      const Status st = wal_->health();
      return st.ok() ? Status::IOError("log append failed") : st;
    }
    trunc_lsn = begin_lsn;
    for (const auto& [txn, lsn] : active_txn_begin_) {
      trunc_lsn = std::min(trunc_lsn, lsn);
    }
  }

  // Fuzzy dump: per-object consistent restore records, interleaved in the
  // log with the records of concurrent transactions. Per object, log order
  // equals apply order (both hold the object's lock across apply+log), so
  // REDO can treat the region idempotently.
  SEMCC_RETURN_NOT_OK(store->DumpForCheckpoint());

  // Re-log the named-root directory: truncation may drop the original
  // binding records.
  for (const auto& [name, oid] : roots) {
    LogRecord rec;
    rec.type = LogType::kNamedRoot;
    rec.name = name;
    rec.object = oid;
    wal_->Append(std::move(rec));
  }

  LogRecord end;
  end.type = LogType::kCkptEnd;
  end.txn = begin_lsn;  // ties End to its Begin: only complete pairs count
  const Lsn end_lsn = wal_->Append(std::move(end));
  if (end_lsn == kInvalidLsn) {
    const Status st = wal_->health();
    return st.ok() ? Status::IOError("log append failed") : st;
  }
  // The checkpoint exists only once its End is durable; truncating before
  // that would leave a log whose head is a dump with no End — REDO would
  // rightly ignore it and find the covered records gone.
  SEMCC_RETURN_NOT_OK(MakeStable(end_lsn));

  if (options_.checkpoint_truncate) {
    auto dropped = wal_->TruncateCheckpointed(trunc_lsn);
    SEMCC_RETURN_NOT_OK(dropped.status());
  }
  return Status::OK();
}

void RecoveryManager::MaybeTriggerCheckpoint() {
  if (options_.checkpoint_every_records == 0 || !ckpt_trigger_) return;
  const uint64_t appended = wal_->next_lsn_hint();
  if (appended < ckpt_next_at_.load(std::memory_order_relaxed)) return;
  if (ckpt_in_trigger_.exchange(true)) return;  // one trigger at a time
  const Status st = ckpt_trigger_();
  if (!st.ok()) {
    SEMCC_LOG(Warn) << "automatic checkpoint failed: " << st.ToString();
  }
  // Re-arm from the LSN *after* the checkpoint: the dump appends one record
  // per live object, so arming from the pre-checkpoint LSN would count the
  // dump itself toward the next threshold — and once the object graph
  // outgrows the interval, every checkpoint immediately triggers the next
  // (a checkpoint storm that once logged 12M records for 6400 txns).
  ckpt_next_at_.store(wal_->next_lsn_hint() +
                      options_.checkpoint_every_records);
  ckpt_in_trigger_.store(false);
}

// --- transactional stratum -------------------------------------------------

void RecoveryManager::OnTxnBegin(TxnId txn) {
  LogRecord rec;
  rec.type = LogType::kTxnBegin;
  rec.txn = txn;
  // ckpt_mu_ across append+insert: a concurrent checkpoint either sees the
  // begin in the active map (and keeps its undo records) or the begin lands
  // after the checkpoint's own kCkptBegin (and is past the truncation
  // point). Without the lock a begin could slip between the two and have
  // its undo information truncated.
  MutexLock guard(ckpt_mu_);
  const Lsn lsn = wal_->Append(std::move(rec));
  if (lsn != kInvalidLsn) active_txn_begin_.emplace(txn, lsn);
}

void RecoveryManager::OnTxnCommit(TxnId txn) {
  LogRecord rec;
  rec.type = LogType::kTxnCommit;
  rec.txn = txn;
  const Lsn lsn = wal_->Append(std::move(rec));
  // Force at commit (individually or via group commit).
  const Status st = MakeStable(lsn);
  if (!st.ok()) {
    RecordFailure(st);
    return;  // still possibly a loser: keep it pinned in the active map
  }
  {
    // Only now — with the commit record stable — may a checkpoint truncate
    // this transaction's records.
    MutexLock guard(ckpt_mu_);
    active_txn_begin_.erase(txn);
  }
  MaybeTriggerCheckpoint();
}

void RecoveryManager::OnTxnAbort(TxnId txn) {
  LogRecord rec;
  rec.type = LogType::kTxnAbort;
  rec.txn = txn;
  const Lsn lsn = wal_->Append(std::move(rec));
  // Abort is complete: restart must not re-undo.
  const Status st = MakeStable(lsn);
  if (!st.ok()) {
    RecordFailure(st);
    return;
  }
  MutexLock guard(ckpt_mu_);
  active_txn_begin_.erase(txn);
}

LogRecord RecoveryManager::ActionBase(const SubTxn& node, LogType type) {
  LogRecord rec;
  rec.type = type;
  rec.txn = node.root()->id();
  rec.subtxn = node.id();
  rec.parent = node.parent() != nullptr ? node.parent()->id() : node.id();
  rec.object = node.object();
  rec.obj_type = node.type();
  rec.method = node.method();
  rec.args = node.args();
  for (const SubTxn* anc : node.AncestorChain()) rec.path.push_back(anc->id());
  return rec;
}

void RecoveryManager::OnMethodCommitted(const SubTxn& node, const Value& result,
                                        bool has_total_inverse) {
  LogRecord rec = ActionBase(node, LogType::kMethodCommit);
  rec.value = result;
  rec.flag = has_total_inverse;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnLeafPut(const SubTxn& node, const Value& before) {
  LogRecord rec = ActionBase(node, LogType::kLeafPut);
  rec.value = before;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnLeafSetInsert(const SubTxn& node) {
  wal_->Append(ActionBase(node, LogType::kLeafSetInsert));
}

void RecoveryManager::OnLeafSetRemove(const SubTxn& node, Oid removed_member) {
  LogRecord rec = ActionBase(node, LogType::kLeafSetRemove);
  rec.aux_oid = removed_member;
  wal_->Append(std::move(rec));
}

// --- restart -----------------------------------------------------------------

std::string RecoveryManager::RecoveryStats::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "records=%zu redo=%zu skipped=%zu ckpt=%d winners=%zu "
                "losers=%zu inverses=%zu leaf_undos=%zu",
                records, redo_applied, redo_skipped, used_checkpoint ? 1 : 0,
                winners, losers, inverses_run, leaf_undos);
  return buf;
}

Result<RecoveryManager::RecoveryStats> RecoveryManager::Recover(
    const std::vector<LogRecord>& log, ObjectStore* store,
    MethodRegistry* methods, TxnManager* txns,
    const std::function<void(const std::string&, Oid)>& named_root_sink,
    const std::function<void()>& between_passes) {
  RecoveryStats stats;
  stats.records = log.size();

  // Locate the last *complete* checkpoint region: a kCkptEnd whose txn
  // field names the LSN of a kCkptBegin present in the log. Physical REDO
  // starts at that Begin — everything before it is covered by the fuzzy
  // dump (a truncated log starts there anyway; an untruncated one keeps the
  // prefix only for UNDO information). A Begin without an End is a
  // checkpoint that died mid-dump: ignored entirely.
  size_t redo_start = 0;
  {
    std::map<Lsn, size_t> begin_at;
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i].type == LogType::kCkptBegin) {
        begin_at[log[i].lsn] = i;
      } else if (log[i].type == LogType::kCkptEnd) {
        auto it = begin_at.find(static_cast<Lsn>(log[i].txn));
        if (it != begin_at.end()) {
          redo_start = it->second;
          stats.used_checkpoint = true;
        }
      }
    }
  }

  // Pass 1 — REDO: replay physical records from redo_start; classify
  // transactions and replay the named-root directory over the whole log.
  // Inside the checkpoint region the fuzzy dump and the records of
  // concurrent transactions interleave, so replay there is idempotent:
  // a restore that finds its object already rebuilt, or an online write
  // whose object is not dumped yet, is simply the other copy of the same
  // effect (per object, log order equals apply order) and is skipped.
  std::set<TxnId> begun, committed, aborted;
  bool in_region = false;
  for (size_t i = 0; i < log.size(); ++i) {
    const LogRecord& rec = log[i];
    const bool redo = i >= redo_start;
    switch (rec.type) {
      case LogType::kCkptBegin:
        if (redo) in_region = true;
        break;
      case LogType::kCkptEnd:
        in_region = false;
        break;
      case LogType::kCreateAtomic: {
        if (!redo) { stats.redo_skipped++; break; }
        Status st = store->RestoreAtomic(rec.object, rec.obj_type, rec.value);
        if (!st.ok()) {
          if (!(in_region && st.IsAlreadyExists())) return st;
          stats.redo_skipped++;
          break;
        }
        stats.redo_applied++;
        break;
      }
      case LogType::kCreateTuple: {
        if (!redo) { stats.redo_skipped++; break; }
        Status st = store->RestoreTuple(rec.object, rec.obj_type, rec.components);
        if (!st.ok()) {
          if (!(in_region && st.IsAlreadyExists())) return st;
          stats.redo_skipped++;
          break;
        }
        stats.redo_applied++;
        break;
      }
      case LogType::kCreateSet: {
        if (!redo) { stats.redo_skipped++; break; }
        Status st = store->RestoreSet(rec.object, rec.obj_type);
        if (!st.ok()) {
          if (!(in_region && st.IsAlreadyExists())) return st;
          stats.redo_skipped++;
          break;
        }
        stats.redo_applied++;
        break;
      }
      case LogType::kDestroy: {
        if (!redo) { stats.redo_skipped++; break; }
        Status st = store->Destroy(rec.object);
        if (!st.ok() && !st.IsNotFound()) return st;
        stats.redo_applied++;
        break;
      }
      case LogType::kAtomWrite: {
        if (!redo) { stats.redo_skipped++; break; }
        Status st = store->Put(rec.object, rec.value);
        if (!st.ok()) {
          if (!(in_region && st.IsNotFound())) return st;
          stats.redo_skipped++;  // object dumped later in the region
          break;
        }
        stats.redo_applied++;
        break;
      }
      case LogType::kSetInsert: {
        if (!redo) { stats.redo_skipped++; break; }
        Status st = store->SetInsert(rec.object, rec.args[0], rec.aux_oid);
        if (!st.ok()) {
          if (!(in_region && (st.IsNotFound() || st.IsAlreadyExists()))) {
            return st;
          }
          stats.redo_skipped++;
          break;
        }
        stats.redo_applied++;
        break;
      }
      case LogType::kSetRemove: {
        if (!redo) { stats.redo_skipped++; break; }
        Status st = store->SetRemove(rec.object, rec.args[0]);
        if (!st.ok() && !st.IsNotFound()) return st;
        stats.redo_applied++;
        break;
      }
      case LogType::kNamedRoot:
        // Applied over the whole log: the checkpoint re-logs the directory,
        // and later bindings overwrite earlier ones in log order.
        if (named_root_sink) named_root_sink(rec.name, rec.object);
        break;
      case LogType::kTxnBegin:
        begun.insert(rec.txn);
        break;
      case LogType::kTxnCommit:
        committed.insert(rec.txn);
        break;
      case LogType::kTxnAbort:
        aborted.insert(rec.txn);  // abort fully compensated before the record
        break;
      default:
        break;  // transactional undo info, handled in pass 2
    }
  }

  if (between_passes) between_passes();

  // Pass 2 — UNDO the losers: begun, neither committed nor abort-complete.
  std::set<TxnId> losers;
  for (TxnId t : begun) {
    if (committed.count(t) == 0 && aborted.count(t) == 0) losers.insert(t);
  }
  stats.winners = begun.size() - losers.size();
  stats.losers = losers.size();
  stats.loser_ids.assign(losers.begin(), losers.end());
  if (losers.empty()) return stats;

  // Subtransactions of losers that committed WITH a registered total
  // inverse: anything underneath them is compensated by that inverse.
  std::set<TxnId> total_inverse_subtxns;
  for (const LogRecord& rec : log) {
    if (rec.type == LogType::kMethodCommit && rec.flag &&
        losers.count(rec.txn) > 0) {
      total_inverse_subtxns.insert(rec.subtxn);
    }
  }
  auto covered = [&](const LogRecord& rec) {
    for (TxnId anc : rec.path) {
      if (total_inverse_subtxns.count(anc) > 0) return true;
    }
    return false;
  };

  // Reverse LSN order = reverse completion order (the online abort order).
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    const LogRecord& rec = *it;
    if (losers.count(rec.txn) == 0) continue;
    if (covered(rec)) continue;
    switch (rec.type) {
      case LogType::kMethodCommit: {
        if (!rec.flag) break;  // read-only method: nothing to do
        auto def = methods->Find(rec.obj_type, rec.method);
        if (!def.ok()) {
          SEMCC_LOG(Error) << "recovery: method " << rec.method
                           << " not registered; cannot compensate";
          break;
        }
        const MethodDef* d = def.ValueOrDie();
        Args args = rec.args;
        Value result = rec.value;
        Oid object = rec.object;
        auto r = txns->Run("recovery-undo", [&](TxnCtx& ctx) -> Result<Value> {
          SEMCC_RETURN_NOT_OK(d->inverse(ctx, object, args, result));
          return Value();
        });
        if (!r.ok()) {
          SEMCC_LOG(Error) << "recovery compensation failed: "
                           << r.status().ToString();
        } else {
          stats.inverses_run++;
        }
        break;
      }
      case LogType::kLeafPut:
        SEMCC_RETURN_NOT_OK(store->Put(rec.object, rec.value));
        stats.leaf_undos++;
        break;
      case LogType::kLeafSetInsert: {
        Status st = store->SetRemove(rec.object, rec.args[0]);
        if (!st.ok() && !st.IsNotFound()) return st;
        stats.leaf_undos++;
        break;
      }
      case LogType::kLeafSetRemove: {
        // AlreadyExists: the crash hit between the undo record and the
        // physical remove, so the member never left the set.
        Status st = store->SetInsert(rec.object, rec.args[0], rec.aux_oid);
        if (!st.ok() && !st.IsAlreadyExists()) return st;
        stats.leaf_undos++;
        break;
      }
      default:
        break;
    }
  }
  return stats;
}

}  // namespace semcc
