#include "recovery/recovery_manager.h"

#include <cstdio>
#include <map>
#include <set>

#include "util/logging.h"

namespace semcc {

RecoveryManager::RecoveryManager(WriteAheadLog* wal, RecoveryOptions options)
    : wal_(wal), options_(options) {
  if (options_.group_commit) {
    gc_flusher_ = std::thread([this]() { GroupFlusherLoop(); });
  }
}

RecoveryManager::~RecoveryManager() { Shutdown(); }

void RecoveryManager::Shutdown() {
  if (!gc_flusher_.joinable()) return;
  {
    MutexLock guard(gc_mu_);
    gc_stop_ = true;
  }
  gc_cv_.NotifyAll();
  gc_flusher_.join();
}

void RecoveryManager::GroupFlusherLoop() {
  MutexLock lock(gc_mu_);
  while (true) {
    // Sleep until there is unflushed demand. The demand signal is the
    // requested-LSN watermark compared against what is already stable, so
    // a request that arrives while a flush is in flight stays visible — a
    // boolean batch flag would be wiped by the post-flush reset and leave
    // that committer waiting forever.
    while (!gc_stop_ && gc_requested_ <= wal_->stable_lsn()) {
      gc_cv_.Wait(lock);
    }
    // On stop, drain: keep flushing until the watermark is stable, so a
    // committer already waiting in MakeStable is never abandoned.
    if (gc_requested_ <= wal_->stable_lsn()) break;
    if (!gc_stop_) {
      // Batching window: let concurrent committers pile in behind the
      // first one. Interruptible (a stop request cuts it short) — the old
      // uninterruptible sleep also missed every record appended after the
      // flush snapshot it preceded; waiting on the condvar keeps the
      // window exact without losing wakeups, because the watermark re-check
      // above catches anything that arrived meanwhile.
      const auto deadline =
          std::chrono::steady_clock::now() + options_.group_window;
      while (!gc_stop_ &&
             gc_cv_.WaitUntil(lock, deadline) != std::cv_status::timeout) {
      }
    }
    lock.Unlock();
    const Status st = wal_->Flush();
    lock.Lock();
    if (!st.ok()) {
      gc_status_ = st;
      break;
    }
    gc_cv_.NotifyAll();
  }
  gc_exited_ = true;
  gc_cv_.NotifyAll();
}

Status RecoveryManager::MakeStable(Lsn lsn) {
  if (lsn == kInvalidLsn) {
    // The WAL refused the append: it is degraded. Surface why.
    const Status st = wal_->health();
    return st.ok() ? Status::IOError("log append failed") : st;
  }
  if (!options_.group_commit) return wal_->Flush();
  MutexLock lock(gc_mu_);
  if (gc_requested_ < lsn) gc_requested_ = lsn;
  gc_cv_.NotifyAll();
  while (wal_->stable_lsn() < lsn) {
    if (!gc_status_.ok()) return gc_status_;
    if (gc_exited_) {
      return Status::Aborted("log flusher stopped before LSN " +
                             std::to_string(lsn) + " became stable");
    }
    gc_cv_.Wait(lock);
  }
  return Status::OK();
}

Status RecoveryManager::health() const {
  {
    MutexLock guard(gc_mu_);
    if (!health_.ok()) return health_;
  }
  return wal_->health();
}

void RecoveryManager::RecordFailure(const Status& st) {
  SEMCC_LOG(Error) << "commit durability lost: " << st.ToString();
  MutexLock guard(gc_mu_);
  if (health_.ok()) health_ = st;
}

// --- physical stratum ---------------------------------------------------

void RecoveryManager::OnCreateAtomic(Oid oid, TypeId type, const Value& initial) {
  LogRecord rec;
  rec.type = LogType::kCreateAtomic;
  rec.object = oid;
  rec.obj_type = type;
  rec.value = initial;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnCreateTuple(
    Oid oid, TypeId type,
    const std::vector<std::pair<std::string, Oid>>& components) {
  LogRecord rec;
  rec.type = LogType::kCreateTuple;
  rec.object = oid;
  rec.obj_type = type;
  rec.components = components;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnCreateSet(Oid oid, TypeId type) {
  LogRecord rec;
  rec.type = LogType::kCreateSet;
  rec.object = oid;
  rec.obj_type = type;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnDestroy(Oid oid) {
  LogRecord rec;
  rec.type = LogType::kDestroy;
  rec.object = oid;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnPut(Oid oid, const Value& after) {
  LogRecord rec;
  rec.type = LogType::kAtomWrite;
  rec.object = oid;
  rec.value = after;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnSetInsert(Oid set, const Value& key, Oid member) {
  LogRecord rec;
  rec.type = LogType::kSetInsert;
  rec.object = set;
  rec.args = {key};
  rec.aux_oid = member;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnSetRemove(Oid set, const Value& key, Oid member) {
  LogRecord rec;
  rec.type = LogType::kSetRemove;
  rec.object = set;
  rec.args = {key};
  rec.aux_oid = member;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnNamedRoot(const std::string& name, Oid oid) {
  LogRecord rec;
  rec.type = LogType::kNamedRoot;
  rec.name = name;
  rec.object = oid;
  wal_->Append(std::move(rec));
  // Directory entries are rare and precious: force individually.
  const Status st = wal_->Flush();
  if (!st.ok()) RecordFailure(st);
}

// --- transactional stratum -------------------------------------------------

void RecoveryManager::OnTxnBegin(TxnId txn) {
  LogRecord rec;
  rec.type = LogType::kTxnBegin;
  rec.txn = txn;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnTxnCommit(TxnId txn) {
  LogRecord rec;
  rec.type = LogType::kTxnCommit;
  rec.txn = txn;
  const Lsn lsn = wal_->Append(std::move(rec));
  // Force at commit (individually or via group commit).
  const Status st = MakeStable(lsn);
  if (!st.ok()) RecordFailure(st);
}

void RecoveryManager::OnTxnAbort(TxnId txn) {
  LogRecord rec;
  rec.type = LogType::kTxnAbort;
  rec.txn = txn;
  const Lsn lsn = wal_->Append(std::move(rec));
  // Abort is complete: restart must not re-undo.
  const Status st = MakeStable(lsn);
  if (!st.ok()) RecordFailure(st);
}

LogRecord RecoveryManager::ActionBase(const SubTxn& node, LogType type) {
  LogRecord rec;
  rec.type = type;
  rec.txn = node.root()->id();
  rec.subtxn = node.id();
  rec.parent = node.parent() != nullptr ? node.parent()->id() : node.id();
  rec.object = node.object();
  rec.obj_type = node.type();
  rec.method = node.method();
  rec.args = node.args();
  for (const SubTxn* anc : node.AncestorChain()) rec.path.push_back(anc->id());
  return rec;
}

void RecoveryManager::OnMethodCommitted(const SubTxn& node, const Value& result,
                                        bool has_total_inverse) {
  LogRecord rec = ActionBase(node, LogType::kMethodCommit);
  rec.value = result;
  rec.flag = has_total_inverse;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnLeafPut(const SubTxn& node, const Value& before) {
  LogRecord rec = ActionBase(node, LogType::kLeafPut);
  rec.value = before;
  wal_->Append(std::move(rec));
}

void RecoveryManager::OnLeafSetInsert(const SubTxn& node) {
  wal_->Append(ActionBase(node, LogType::kLeafSetInsert));
}

void RecoveryManager::OnLeafSetRemove(const SubTxn& node, Oid removed_member) {
  LogRecord rec = ActionBase(node, LogType::kLeafSetRemove);
  rec.aux_oid = removed_member;
  wal_->Append(std::move(rec));
}

// --- restart -----------------------------------------------------------------

std::string RecoveryManager::RecoveryStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "records=%zu redo=%zu winners=%zu losers=%zu inverses=%zu "
                "leaf_undos=%zu",
                records, redo_applied, winners, losers, inverses_run,
                leaf_undos);
  return buf;
}

Result<RecoveryManager::RecoveryStats> RecoveryManager::Recover(
    const std::vector<LogRecord>& log, ObjectStore* store,
    MethodRegistry* methods, TxnManager* txns,
    const std::function<void(const std::string&, Oid)>& named_root_sink,
    const std::function<void()>& between_passes) {
  RecoveryStats stats;
  stats.records = log.size();

  // Pass 1 — REDO: replay physical records; classify transactions.
  std::set<TxnId> begun, committed, aborted;
  for (const LogRecord& rec : log) {
    switch (rec.type) {
      case LogType::kCreateAtomic:
        SEMCC_RETURN_NOT_OK(store->RestoreAtomic(rec.object, rec.obj_type, rec.value));
        stats.redo_applied++;
        break;
      case LogType::kCreateTuple:
        SEMCC_RETURN_NOT_OK(
            store->RestoreTuple(rec.object, rec.obj_type, rec.components));
        stats.redo_applied++;
        break;
      case LogType::kCreateSet:
        SEMCC_RETURN_NOT_OK(store->RestoreSet(rec.object, rec.obj_type));
        stats.redo_applied++;
        break;
      case LogType::kDestroy: {
        Status st = store->Destroy(rec.object);
        if (!st.ok() && !st.IsNotFound()) return st;
        stats.redo_applied++;
        break;
      }
      case LogType::kAtomWrite:
        SEMCC_RETURN_NOT_OK(store->Put(rec.object, rec.value));
        stats.redo_applied++;
        break;
      case LogType::kSetInsert:
        SEMCC_RETURN_NOT_OK(store->SetInsert(rec.object, rec.args[0], rec.aux_oid));
        stats.redo_applied++;
        break;
      case LogType::kSetRemove: {
        Status st = store->SetRemove(rec.object, rec.args[0]);
        if (!st.ok() && !st.IsNotFound()) return st;
        stats.redo_applied++;
        break;
      }
      case LogType::kNamedRoot:
        if (named_root_sink) named_root_sink(rec.name, rec.object);
        break;
      case LogType::kTxnBegin:
        begun.insert(rec.txn);
        break;
      case LogType::kTxnCommit:
        committed.insert(rec.txn);
        break;
      case LogType::kTxnAbort:
        aborted.insert(rec.txn);  // abort fully compensated before the record
        break;
      default:
        break;  // transactional undo info, handled in pass 2
    }
  }

  if (between_passes) between_passes();

  // Pass 2 — UNDO the losers: begun, neither committed nor abort-complete.
  std::set<TxnId> losers;
  for (TxnId t : begun) {
    if (committed.count(t) == 0 && aborted.count(t) == 0) losers.insert(t);
  }
  stats.winners = begun.size() - losers.size();
  stats.losers = losers.size();
  stats.loser_ids.assign(losers.begin(), losers.end());
  if (losers.empty()) return stats;

  // Subtransactions of losers that committed WITH a registered total
  // inverse: anything underneath them is compensated by that inverse.
  std::set<TxnId> total_inverse_subtxns;
  for (const LogRecord& rec : log) {
    if (rec.type == LogType::kMethodCommit && rec.flag &&
        losers.count(rec.txn) > 0) {
      total_inverse_subtxns.insert(rec.subtxn);
    }
  }
  auto covered = [&](const LogRecord& rec) {
    for (TxnId anc : rec.path) {
      if (total_inverse_subtxns.count(anc) > 0) return true;
    }
    return false;
  };

  // Reverse LSN order = reverse completion order (the online abort order).
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    const LogRecord& rec = *it;
    if (losers.count(rec.txn) == 0) continue;
    if (covered(rec)) continue;
    switch (rec.type) {
      case LogType::kMethodCommit: {
        if (!rec.flag) break;  // read-only method: nothing to do
        auto def = methods->Find(rec.obj_type, rec.method);
        if (!def.ok()) {
          SEMCC_LOG(Error) << "recovery: method " << rec.method
                           << " not registered; cannot compensate";
          break;
        }
        const MethodDef* d = def.ValueOrDie();
        Args args = rec.args;
        Value result = rec.value;
        Oid object = rec.object;
        auto r = txns->Run("recovery-undo", [&](TxnCtx& ctx) -> Result<Value> {
          SEMCC_RETURN_NOT_OK(d->inverse(ctx, object, args, result));
          return Value();
        });
        if (!r.ok()) {
          SEMCC_LOG(Error) << "recovery compensation failed: "
                           << r.status().ToString();
        } else {
          stats.inverses_run++;
        }
        break;
      }
      case LogType::kLeafPut:
        SEMCC_RETURN_NOT_OK(store->Put(rec.object, rec.value));
        stats.leaf_undos++;
        break;
      case LogType::kLeafSetInsert: {
        Status st = store->SetRemove(rec.object, rec.args[0]);
        if (!st.ok() && !st.IsNotFound()) return st;
        stats.leaf_undos++;
        break;
      }
      case LogType::kLeafSetRemove: {
        // AlreadyExists: the crash hit between the undo record and the
        // physical remove, so the member never left the set.
        Status st = store->SetInsert(rec.object, rec.args[0], rec.aux_oid);
        if (!st.ok() && !st.IsAlreadyExists()) return st;
        stats.leaf_undos++;
        break;
      }
      default:
        break;
    }
  }
  return stats;
}

}  // namespace semcc
