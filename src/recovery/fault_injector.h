// FaultInjector: a LogDevice decorator that makes the failure modes of a
// real log device happen deterministically, on demand:
//
//   * short writes — the next Append passes only a prefix to the inner
//     device and fails, leaving a torn frame exactly as an interrupted
//     write() would;
//   * fsync EIO — the next N (or all) Sync calls fail without syncing the
//     inner device, modelling a transient or dead disk;
//   * power cuts — once the cumulative byte stream reaches a configured
//     offset, the bytes up to that offset are forced onto the inner device
//     (the worst case: the torn prefix did reach the platter) and every
//     further operation fails with "power lost". ReadDurable keeps working:
//     it is the post-reboot view.
//
// The injector composes: WriteAheadLog owns the injector, the injector owns
// the inner device, and tests reconfigure the plan mid-run through its own
// lock (devices are otherwise externally serialized by the WAL).
#ifndef SEMCC_RECOVERY_FAULT_INJECTOR_H_
#define SEMCC_RECOVERY_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>

#include "recovery/log_device.h"
#include "util/annotations.h"

namespace semcc {

struct FaultPlan {
  /// ≥ 0: simulate power loss once this many total bytes have been
  /// appended; bytes up to the offset reach the inner device (and are
  /// force-synced), everything after is gone. -1 = off.
  int64_t power_cut_after_bytes = -1;
  /// ≥ 0: the next Append passes only this many of its bytes to the inner
  /// device, then fails (one-shot torn write). -1 = off.
  int64_t short_write_bytes = -1;
  /// Fail this many upcoming Sync calls with IOError, then recover
  /// (transient fsync EIO).
  int fail_next_syncs = 0;
  /// Fail every Sync (dead device).
  bool fail_all_syncs = false;
};

class FaultInjector : public LogDevice {
 public:
  explicit FaultInjector(std::unique_ptr<LogDevice> inner,
                         FaultPlan plan = FaultPlan())
      : inner_(std::move(inner)), plan_(plan) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(FaultInjector);

  Status Append(std::string_view bytes) override SEMCC_EXCLUDES(mu_);
  Status Sync() override SEMCC_EXCLUDES(mu_);
  Result<std::string> ReadDurable() override SEMCC_EXCLUDES(mu_);
  Status Truncate(uint64_t size) override SEMCC_EXCLUDES(mu_);
  Result<uint64_t> DropPrefix(uint64_t bytes) override SEMCC_EXCLUDES(mu_);

  uint64_t written_bytes() const override { return inner_->written_bytes(); }
  uint64_t synced_bytes() const override { return inner_->synced_bytes(); }
  uint64_t sync_count() const override { return inner_->sync_count(); }

  /// Replace the pending plan (counters keep accumulating).
  void SetPlan(FaultPlan plan) SEMCC_EXCLUDES(mu_);

  LogDevice* inner() { return inner_.get(); }
  bool powered_off() const SEMCC_EXCLUDES(mu_);
  uint64_t injected_sync_failures() const SEMCC_EXCLUDES(mu_);
  uint64_t injected_short_writes() const SEMCC_EXCLUDES(mu_);

 private:
  const std::unique_ptr<LogDevice> inner_;
  mutable Mutex mu_;
  FaultPlan plan_ SEMCC_GUARDED_BY(mu_);
  bool powered_off_ SEMCC_GUARDED_BY(mu_) = false;
  uint64_t sync_failures_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t short_writes_ SEMCC_GUARDED_BY(mu_) = 0;
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_FAULT_INJECTOR_H_
