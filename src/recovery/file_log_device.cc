#include "recovery/file_log_device.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/macros.h"

namespace semcc {

namespace {
constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";

/// wal-%06u.log → index, or 0 if the name is not a segment.
uint32_t ParseSegmentName(const std::string& name) {
  if (name.size() <= std::strlen(kSegmentPrefix) + std::strlen(kSegmentSuffix)) {
    return 0;
  }
  if (name.rfind(kSegmentPrefix, 0) != 0) return 0;
  if (name.size() < std::strlen(kSegmentSuffix) ||
      name.compare(name.size() - std::strlen(kSegmentSuffix),
                   std::strlen(kSegmentSuffix), kSegmentSuffix) != 0) {
    return 0;
  }
  const std::string digits =
      name.substr(std::strlen(kSegmentPrefix),
                  name.size() - std::strlen(kSegmentPrefix) -
                      std::strlen(kSegmentSuffix));
  if (digits.empty()) return 0;
  uint32_t index = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    index = index * 10 + static_cast<uint32_t>(c - '0');
  }
  return index;
}
}  // namespace

std::string FileLogDevice::SegmentPath(uint32_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06u%s", kSegmentPrefix, index,
                kSegmentSuffix);
  return dir_ + "/" + name;
}

Result<std::unique_ptr<FileLogDevice>> FileLogDevice::Open(
    const std::string& dir, FileLogDeviceOptions options) {
  SEMCC_RETURN_NOT_OK(EnsureDirectory(dir));
  auto device =
      std::unique_ptr<FileLogDevice>(new FileLogDevice(dir, options));
  SEMCC_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDirectory(dir));
  std::vector<Segment> segments;
  for (const std::string& name : names) {
    const uint32_t index = ParseSegmentName(name);
    if (index == 0) continue;  // not ours (0 is never a valid segment index)
    SEMCC_ASSIGN_OR_RETURN(uint64_t size,
                           FileSize(device->SegmentPath(index)));
    segments.push_back({index, size});
  }
  // ListDirectory sorts lexically; zero-padded names make that index order.
  // A gap in the sequence means someone deleted a middle segment — the
  // image would silently skip bytes, so refuse.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].index != segments[i].index + 1) {
      return Status::Corruption("log segment gap: " +
                                device->SegmentPath(segments[i].index) +
                                " is followed by " +
                                device->SegmentPath(segments[i + 1].index));
    }
  }
  if (segments.empty()) {
    device->current_index_ = 1;
  } else {
    device->current_index_ = segments.back().index;
    segments.pop_back();
    device->closed_ = std::move(segments);
    for (const Segment& s : device->closed_) device->closed_bytes_ += s.size;
  }
  SEMCC_RETURN_NOT_OK(
      device->current_.Open(device->SegmentPath(device->current_index_)));
  // Only a *fresh* tail segment is preallocated here: a reopened tail may
  // carry padding (or a torn frame) from the previous run, and recovery
  // truncates it to the last valid frame before anything is appended —
  // padding added now would just be cut again.
  if (options.preallocate && device->current_.size() == 0) {
    SEMCC_RETURN_NOT_OK(device->current_.PreallocateTo(options.segment_bytes));
  }
  SEMCC_RETURN_NOT_OK(SyncDirectory(dir));
  device->synced_ = device->written_bytes();
  return device;
}

Status FileLogDevice::Rotate() {
  SEMCC_RETURN_NOT_OK(current_.Sync());
  const uint64_t size = current_.size();
  SEMCC_RETURN_NOT_OK(current_.Close());
  closed_.push_back({current_index_, size});
  closed_bytes_ += size;
  current_index_++;
  SEMCC_RETURN_NOT_OK(current_.Open(SegmentPath(current_index_)));
  if (options_.preallocate) {
    SEMCC_RETURN_NOT_OK(current_.PreallocateTo(options_.segment_bytes));
  }
  return SyncDirectory(dir_);
}

Status FileLogDevice::Append(std::string_view bytes) {
  if (current_.size() >= options_.segment_bytes) {
    SEMCC_RETURN_NOT_OK(Rotate());
  }
  return current_.Append(bytes.data(), bytes.size());
}

Status FileLogDevice::Sync() {
  SEMCC_RETURN_NOT_OK(current_.Sync());
  synced_ = written_bytes();
  syncs_++;
  return Status::OK();
}

Result<std::string> FileLogDevice::ReadDurable() {
  std::string image;
  std::string chunk;
  for (const Segment& s : closed_) {
    SEMCC_RETURN_NOT_OK(ReadFileToString(SegmentPath(s.index), &chunk));
    image += chunk;
  }
  SEMCC_RETURN_NOT_OK(ReadFileToString(SegmentPath(current_index_), &chunk));
  // Cap the tail at its logical size: bytes past it are preallocation
  // padding, not content. (After a reopen the logical size *includes* any
  // padding left by the previous process — recovery sees those zeros, scans
  // them as a torn tail, and truncates; see FileLogDeviceOptions.)
  if (chunk.size() > current_.size()) chunk.resize(current_.size());
  image += chunk;
  return image;
}

Result<uint64_t> FileLogDevice::DropPrefix(uint64_t bytes) {
  uint64_t dropped = 0;
  size_t n = 0;
  for (const Segment& s : closed_) {
    if (dropped + s.size > bytes) break;
    dropped += s.size;
    n++;
  }
  if (n == 0) return uint64_t{0};
  // Unlink in index order: a crash mid-way leaves a contiguous suffix of
  // segments, which Open accepts (only a *gap* is corruption).
  for (size_t i = 0; i < n; ++i) {
    SEMCC_RETURN_NOT_OK(RemoveFile(SegmentPath(closed_[i].index)));
  }
  closed_.erase(closed_.begin(), closed_.begin() + n);
  closed_bytes_ -= dropped;
  // Closed segments were fsynced at rotation, so they are inside synced_.
  synced_ -= dropped;
  SEMCC_RETURN_NOT_OK(SyncDirectory(dir_));
  return dropped;
}

Status FileLogDevice::Truncate(uint64_t size) {
  if (size >= written_bytes()) return Status::OK();
  // Find the segment containing logical offset `size`; truncate it, delete
  // everything after it, and make it the append target again.
  std::vector<Segment> all = closed_;
  all.push_back({current_index_, current_.size()});
  SEMCC_RETURN_NOT_OK(current_.Close());
  uint64_t base = 0;
  size_t keep = 0;  // index into `all` of the segment that becomes current
  for (size_t i = 0; i < all.size(); ++i) {
    if (size <= base + all[i].size) {
      keep = i;
      break;
    }
    base += all[i].size;
  }
  // Remember the kept segment's on-disk extent: repair restores padding up
  // to it (zero-scrubbing whatever the truncated region held, so torn bytes
  // cannot resurface as a fake tail) but never *grows* the file — a log
  // written without preallocation stays unpadded, which keeps sweep-style
  // tests that restart thousands of times from rewriting a full segment of
  // zeros per restart.
  SEMCC_ASSIGN_OR_RETURN(const uint64_t keep_physical,
                         FileSize(SegmentPath(all[keep].index)));
  SEMCC_RETURN_NOT_OK(TruncateFile(SegmentPath(all[keep].index), size - base));
  for (size_t i = keep + 1; i < all.size(); ++i) {
    SEMCC_RETURN_NOT_OK(RemoveFile(SegmentPath(all[i].index)));
  }
  closed_.assign(all.begin(), all.begin() + keep);
  closed_bytes_ = base;
  current_index_ = all[keep].index;
  SEMCC_RETURN_NOT_OK(current_.Open(SegmentPath(current_index_)));
  SEMCC_RETURN_NOT_OK(current_.Sync());
  if (options_.preallocate && keep_physical > size - base) {
    SEMCC_RETURN_NOT_OK(current_.PreallocateTo(keep_physical));
  }
  SEMCC_RETURN_NOT_OK(SyncDirectory(dir_));
  synced_ = std::min<uint64_t>(synced_, size);
  return Status::OK();
}

}  // namespace semcc
